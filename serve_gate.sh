#!/usr/bin/env bash
# The mmm-serve CI gate: boot the daemon, run 4 concurrent tenants, and
# demand (a) every tenant's output byte-identical to a solo `manymap map`
# run, (b) a live stats endpoint that accounts for all of them, and (c) a
# clean drain that flushes everything and exits 0. Uses the release
# binaries, building the three it needs (the tier-1 build only covers the
# root package).
set -euo pipefail
cd "$(dirname "$0")"

BIN=target/release
cargo build --release -q -p mmm-simreads -p manymap --bins
WORK=$(mktemp -d "${TMPDIR:-/tmp}/mmm-serve-gate.XXXXXX")
SOCK="$WORK/daemon.sock"
DAEMON_PID=""

cleanup() {
    if [[ -n "$DAEMON_PID" ]] && kill -0 "$DAEMON_PID" 2>/dev/null; then
        kill -9 "$DAEMON_PID" 2>/dev/null || true
    fi
    rm -rf "$WORK"
}
trap cleanup EXIT

echo "  -> fixture: 80 kb genome, 16 nanopore reads"
"$BIN/simreads" --genome 80000 --reads 16 --platform ont --seed 7 \
    --out-ref "$WORK/ref.fa" --out-reads "$WORK/reads.fa" >/dev/null
"$BIN/manymap" index "$WORK/ref.fa" "$WORK/ref.mmx" 2>/dev/null

echo "  -> solo CLI reference run"
"$BIN/manymap" map "$WORK/ref.mmx" "$WORK/reads.fa" \
    --threads 2 --backend cpu >"$WORK/solo.paf" 2>/dev/null
[[ -s "$WORK/solo.paf" ]] || { echo "serve_gate: solo run produced no output"; exit 1; }

echo "  -> boot daemon"
"$BIN/mmm-serve" daemon "$WORK/ref.mmx" --socket "$SOCK" \
    --threads 2 --backend cpu 2>"$WORK/daemon.stderr" &
DAEMON_PID=$!
for _ in $(seq 1 200); do
    [[ -S "$SOCK" ]] && break
    kill -0 "$DAEMON_PID" 2>/dev/null || { cat "$WORK/daemon.stderr"; exit 1; }
    sleep 0.05
done
[[ -S "$SOCK" ]] || { echo "serve_gate: daemon socket never appeared"; exit 1; }

echo "  -> 4 concurrent tenants"
CLIENT_PIDS=()
for i in 1 2 3 4; do
    "$BIN/mmm-serve" client "$SOCK" "tenant$i" "$WORK/reads.fa" \
        >"$WORK/t$i.paf" 2>"$WORK/t$i.stderr" &
    CLIENT_PIDS+=($!)
done
for pid in "${CLIENT_PIDS[@]}"; do
    wait "$pid" || { echo "serve_gate: a client failed"; cat "$WORK"/t*.stderr; exit 1; }
done
for i in 1 2 3 4; do
    cmp -s "$WORK/solo.paf" "$WORK/t$i.paf" || {
        echo "serve_gate: tenant$i output diverged from the solo CLI"
        exit 1
    }
done

echo "  -> stats endpoint"
"$BIN/mmm-serve" stats "$SOCK" >"$WORK/stats.txt"
grep -q "tenant tenant1:" "$WORK/stats.txt" || {
    echo "serve_gate: stats endpoint missing tenant lines"; cat "$WORK/stats.txt"; exit 1
}
grep -q "64 read(s) accepted" "$WORK/stats.txt" || {
    echo "serve_gate: stats totals wrong"; cat "$WORK/stats.txt"; exit 1
}

echo "  -> drain"
"$BIN/mmm-serve" drain "$SOCK"
wait "$DAEMON_PID" || { echo "serve_gate: daemon exited non-zero"; cat "$WORK/daemon.stderr"; exit 1; }
DAEMON_PID=""
grep -q "\[mmm-serve\] up " "$WORK/daemon.stderr" || {
    echo "serve_gate: final report missing"; cat "$WORK/daemon.stderr"; exit 1
}
[[ -S "$SOCK" ]] && { echo "serve_gate: drained daemon left its socket"; exit 1; }

echo "  serve gate OK"
