//! Compare every base-level alignment kernel on one sequence pair: the two
//! DP layouts × four CPU vector widths, plus the simulated GPU kernels.
//!
//! ```sh
//! cargo run --release --example kernel_shootout -- 4000
//! ```

use std::time::Instant;

use mmm_align::{AlignMode, Engine, Scoring, Width};
use mmm_gpu::{run_kernel, DeviceSpec, GpuKernelKind};

fn noisy_pair(len: usize, seed: u64) -> (Vec<u8>, Vec<u8>) {
    let mut state = seed;
    let mut rnd = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
        (state >> 33) as usize
    };
    let t: Vec<u8> = (0..len).map(|_| (rnd() % 4) as u8).collect();
    let mut q = t.clone();
    for _ in 0..len / 8 {
        let p = rnd() % q.len();
        match rnd() % 3 {
            0 => q[p] = (rnd() % 4) as u8,
            1 => q.insert(p, (rnd() % 4) as u8),
            _ => {
                q.remove(p);
            }
        }
    }
    (t, q)
}

fn main() {
    let len: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(4000);
    let (t, q) = noisy_pair(len, 99);
    let sc = Scoring::MAP_ONT;
    let cells = (t.len() as f64) * (q.len() as f64);

    println!("{len} bp pair, {} total cells\n", cells as u64);
    println!("{:<22} {:>10} {:>12}", "kernel", "score", "GCUPS");

    for e in Engine::all() {
        if !e.is_available() {
            println!("{:<22} {:>10}", e.label(), "(unavailable)");
            continue;
        }
        let reps = if e.width == Width::Scalar { 1 } else { 5 };
        let start = Instant::now();
        let mut score = 0;
        for _ in 0..reps {
            score = e.align(&t, &q, &sc, AlignMode::Global, false).score;
        }
        let secs = start.elapsed().as_secs_f64() / reps as f64;
        println!(
            "{:<22} {:>10} {:>12.3}",
            e.label(),
            score,
            cells / secs / 1e9
        );
    }

    // Simulated GPU kernels: one block of 512 threads each (per-kernel
    // throughput; the stream engine multiplies this by concurrency).
    for kind in [GpuKernelKind::Mm2, GpuKernelKind::Manymap] {
        let run = run_kernel(
            &t,
            &q,
            &sc,
            kind,
            AlignMode::Global,
            false,
            512,
            &DeviceSpec::V100,
        );
        println!(
            "{:<22} {:>10} {:>12.3}   (simulated; {} cycles, shared={})",
            kind.label(),
            run.result.score,
            cells / run.exec_seconds / 1e9,
            run.cycles,
            run.used_shared
        );
    }
}
