//! Structural-variant detection — the downstream task minimap2's two-piece
//! gap model exists for (and the motivation behind tools like NGMLR).
//!
//! A donor genome is derived from the reference by planting one deletion
//! and one insertion. Reads simulated from the donor are mapped back to
//! the reference; mappings whose CIGARs contain long indel runs vote for
//! SV breakpoints. The gap regions are then re-aligned with the two-piece
//! affine kernel, which charges long gaps `q2 + l·e2` instead of
//! `q + l·e` and therefore keeps them as single events instead of
//! splitting them.
//!
//! ```sh
//! cargo run --release --example sv_detection
//! ```

use std::collections::HashMap;

use manymap::{MapOpts, Mapper};
use mmm_align::CigarOp;
use mmm_index::MinimizerIndex;
use mmm_seq::{nt4_decode, SeqRecord};
use mmm_simreads::{generate_genome, simulate_reads, GenomeOpts, Platform, SimOpts};

const DEL_POS: usize = 150_000;
const DEL_LEN: usize = 150;
const INS_POS: usize = 300_000;
const INS_LEN: usize = 200;

fn main() {
    let reference = generate_genome(&GenomeOpts {
        len: 450_000,
        repeat_frac: 0.0,
        seed: 2024,
        ..Default::default()
    });

    // Donor: reference with a deletion at DEL_POS and an insertion at INS_POS.
    let mut donor = reference.clone();
    donor.splice(DEL_POS..DEL_POS + DEL_LEN, std::iter::empty());
    let novel: Vec<u8> = (0..INS_LEN).map(|i| ((i * 13 + 5) % 4) as u8).collect();
    let ins_pos_in_donor = INS_POS - DEL_LEN;
    donor.splice(ins_pos_in_donor..ins_pos_in_donor, novel);
    println!("planted truth: DEL {DEL_LEN} bp @ ref:{DEL_POS}, INS {INS_LEN} bp @ ref:{INS_POS}");

    // Index the reference; sequence the donor.
    let opts = MapOpts::map_ont();
    let index =
        MinimizerIndex::build(&[SeqRecord::new("ref", nt4_decode(&reference))], &opts.idx).unwrap();
    let mapper = Mapper::new(&index, opts);
    let reads = simulate_reads(
        &donor,
        &SimOpts {
            platform: Platform::Nanopore,
            num_reads: 250,
            seed: 31,
        },
    );

    // Collect long-gap evidence from the CIGARs.
    let mut votes: HashMap<(char, u32), u32> = HashMap::new(); // (kind, pos/100) -> count
    for r in &reads {
        for m in mapper.map_read(&r.seq).iter().filter(|m| m.primary) {
            let Some(c) = &m.cigar else { continue };
            let mut rpos = m.ref_start;
            for &(op, len) in c.runs() {
                match op {
                    CigarOp::Del => {
                        if len >= 50 {
                            *votes.entry(('D', rpos / 100)).or_default() += 1;
                        }
                        rpos += len;
                    }
                    CigarOp::Ins => {
                        if len >= 50 {
                            *votes.entry(('I', rpos / 100)).or_default() += 1;
                        }
                    }
                    CigarOp::Match => rpos += len,
                    CigarOp::SoftClip => {}
                }
            }
        }
    }

    // Report loci with ≥3 supporting reads.
    let mut calls: Vec<((char, u32), u32)> = votes.into_iter().filter(|&(_, n)| n >= 3).collect();
    calls.sort();
    println!("\nSV calls (kind, ~position, support):");
    let mut found_del = false;
    let mut found_ins = false;
    for ((kind, bucket), support) in &calls {
        let pos = bucket * 100;
        println!("  {kind} @ ~{pos}  ({support} reads)");
        if *kind == 'D' && (pos as i64 - DEL_POS as i64).abs() < 500 {
            found_del = true;
        }
        if *kind == 'I' && (pos as i64 - INS_POS as i64).abs() < 500 {
            found_ins = true;
        }
    }
    println!("\ndeletion recovered: {found_del};  insertion recovered: {found_ins}");

    // Refine the deletion locus with the two-piece model: one long gap
    // should survive as a single event with a better score than one-piece.
    let window_ref = &reference[DEL_POS - 300..DEL_POS + DEL_LEN + 300];
    let window_donor = &donor[DEL_POS - 300..DEL_POS + 300];
    let two = mmm_align::align_manymap_2p(
        window_ref,
        window_donor,
        &mmm_align::Scoring2::LONG_READ,
        mmm_align::AlignMode::Global,
        true,
    );
    let one = mmm_align::best_engine().align(
        window_ref,
        window_donor,
        &mmm_align::Scoring::MAP_ONT,
        mmm_align::AlignMode::Global,
        true,
    );
    let longest_del = |c: &mmm_align::Cigar| {
        c.runs()
            .iter()
            .filter(|(op, _)| *op == CigarOp::Del)
            .map(|&(_, l)| l)
            .max()
            .unwrap_or(0)
    };
    println!(
        "\ntwo-piece refinement at the deletion: score {} (longest D run {}), one-piece score {} (longest D run {})",
        two.score,
        longest_del(two.cigar.as_ref().unwrap()),
        one.score,
        longest_del(one.cigar.as_ref().unwrap()),
    );
    println!(
        "(two-piece keeps the {DEL_LEN} bp deletion as one event and scores it {} points higher)",
        two.score - one.score
    );
}
