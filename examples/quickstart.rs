//! Quickstart: index a reference, map reads, print PAF.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use manymap::{paf_line, MapOpts, Mapper};
use mmm_index::{IdxOpts, MinimizerIndex};
use mmm_seq::{nt4_decode, SeqRecord};
use mmm_simreads::{generate_genome, simulate_reads, GenomeOpts, Platform, SimOpts};

fn main() {
    // 1. A synthetic 500 kb reference (stand-in for a FASTA file).
    let genome = generate_genome(&GenomeOpts {
        len: 500_000,
        seed: 42,
        ..Default::default()
    });
    let reference = SeqRecord::new("chr1", nt4_decode(&genome));

    // 2. Build the minimizer index (the equivalent of `minimap2 -d ref.mmi`).
    let index = MinimizerIndex::build(&[reference], &IdxOpts::MAP_ONT).unwrap();
    println!(
        "indexed {} bp: {} minimizers, {} positions, occ cutoff {}",
        genome.len(),
        index.num_minimizers(),
        index.num_positions(),
        index.max_occ
    );

    // 3. Simulate a handful of Nanopore reads with known origins.
    let reads = simulate_reads(
        &genome,
        &SimOpts {
            platform: Platform::Nanopore,
            num_reads: 5,
            seed: 7,
        },
    );

    // 4. Map them (the equivalent of `minimap2 -ax map-ont ref.mmi reads.fq`).
    let mapper = Mapper::new(&index, MapOpts::map_ont());
    for r in &reads {
        for m in mapper.map_read(&r.seq) {
            println!(
                "{}",
                paf_line(
                    &r.name,
                    r.seq.len(),
                    &index.seqs[m.rid as usize].name,
                    genome.len(),
                    &m
                )
            );
        }
        println!(
            "#   truth: {}..{} strand {}",
            r.origin.start,
            r.origin.end,
            if r.origin.rev { '-' } else { '+' }
        );
    }
}
