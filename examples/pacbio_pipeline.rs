//! The paper's macro workload in miniature: map a simulated PacBio dataset
//! through manymap's 3-thread pipeline and report accuracy plus the stage
//! overlap statistics.
//!
//! ```sh
//! cargo run --release --example pacbio_pipeline
//! ```

use std::sync::Mutex;

use manymap::{MapOpts, Mapper};
use mmm_index::{IdxOpts, MinimizerIndex};
use mmm_pipeline::run_three_thread;
use mmm_seq::{nt4_decode, SeqRecord};
use mmm_simreads::{
    evaluate, generate_genome, simulate_reads, GenomeOpts, MappingCall, Platform, SimOpts,
};

fn main() {
    let genome = generate_genome(&GenomeOpts {
        len: 1_000_000,
        seed: 11,
        ..Default::default()
    });
    let index = MinimizerIndex::build(
        &[SeqRecord::new("chr1", nt4_decode(&genome))],
        &IdxOpts::MAP_PB,
    )
    .unwrap();
    let reads = simulate_reads(
        &genome,
        &SimOpts {
            platform: Platform::PacBio,
            num_reads: 300,
            seed: 3,
        },
    );
    println!(
        "dataset: {} reads, {} bases",
        reads.len(),
        reads.iter().map(|r| r.seq.len()).sum::<usize>()
    );

    let mapper = Mapper::new(&index, MapOpts::map_pb());
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    // Feed the pipeline in batches of ~64 reads.
    let mut batches: Vec<Vec<(usize, Vec<u8>)>> = reads
        .chunks(64)
        .enumerate()
        .map(|(b, c)| {
            c.iter()
                .enumerate()
                .map(|(i, r)| (b * 64 + i, r.seq.clone()))
                .collect()
        })
        .collect();
    batches.reverse();

    let calls = Mutex::new(Vec::new());
    let stats = run_three_thread(
        move || batches.pop(),
        |(id, seq): &(usize, Vec<u8>)| {
            let ms = mapper.map_read(seq);
            ms.into_iter().find(|m| m.primary).map(|m| MappingCall {
                read_id: *id,
                rid: m.rid,
                ref_start: m.ref_start,
                ref_end: m.ref_end,
                rev: m.rev,
                mapq: m.mapq,
            })
        },
        |(_, seq)| seq.len(),
        |results| calls.lock().unwrap().extend(results.into_iter().flatten()),
        threads,
        true, // long reads first
    );

    let truths: Vec<_> = reads.iter().map(|r| r.origin).collect();
    let summary = evaluate(&calls.into_inner().unwrap(), &truths);
    println!(
        "pipeline: {} batches, {:.2}s wall ({:.2}s compute, {:.2}s I/O overlap)",
        stats.batches,
        stats.wall_seconds,
        stats.compute_seconds,
        stats.in_seconds + stats.out_seconds
    );
    println!(
        "accuracy: {}/{} mapped, error rate {:.3}%",
        summary.mapped,
        summary.total_reads,
        summary.error_rate_pct()
    );
}
