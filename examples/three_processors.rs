//! "Accelerating long read alignment on three processors" in one program:
//! run the same base-level alignment workload on the real CPU, the
//! simulated Tesla V100 and the simulated Xeon Phi, and print a Figure
//! 11-style comparison.
//!
//! ```sh
//! cargo run --release --example three_processors
//! ```

use std::time::Instant;

use mmm_align::{best_engine, AlignMode, Scoring};
use mmm_gpu::{simulate_batch, DeviceSpec, GpuKernelKind, KernelJob, StreamConfig};
use mmm_knl::{
    simulate_pipeline, AffinityPolicy, PipelineParams, WorkBatch, KNL_7210, XEON_GOLD_5115,
};

fn noisy_pair(len: usize, seed: u64) -> (Vec<u8>, Vec<u8>) {
    let mut state = seed;
    let mut rnd = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
        (state >> 33) as usize
    };
    let t: Vec<u8> = (0..len).map(|_| (rnd() % 4) as u8).collect();
    let mut q = t.clone();
    for _ in 0..len / 10 {
        let p = rnd() % q.len();
        q[p] = (rnd() % 4) as u8;
    }
    (t, q)
}

fn main() {
    let sc = Scoring::MAP_PB;
    let pairs: Vec<(Vec<u8>, Vec<u8>)> = (0..48).map(|k| noisy_pair(3000, k as u64)).collect();
    let cells: f64 = pairs
        .iter()
        .map(|(t, q)| t.len() as f64 * q.len() as f64)
        .sum();

    // CPU: real execution with the widest manymap kernel, then projected to
    // the paper's 40-thread Xeon Gold via the machine model.
    let engine = best_engine();
    let start = Instant::now();
    let mut per_read = Vec::new();
    for (t, q) in &pairs {
        let t0 = Instant::now();
        std::hint::black_box(engine.align(t, q, &sc, AlignMode::Global, false));
        per_read.push(t0.elapsed().as_secs_f64());
    }
    let cpu_single = start.elapsed().as_secs_f64();
    println!(
        "CPU  ({}, 1 thread, measured): {:.4}s  {:.2} GCUPS",
        engine.label(),
        cpu_single,
        cells / cpu_single / 1e9
    );

    let batch = WorkBatch {
        chain_cost: vec![0.0; per_read.len()],
        align_cost: per_read.clone(),
        in_cost: 0.001,
        out_cost: 0.001,
    };
    let params = PipelineParams {
        affinity: AffinityPolicy::Scatter,
        ..Default::default()
    };
    let cpu40 = simulate_pipeline(&XEON_GOLD_5115, 40, std::slice::from_ref(&batch), &params);
    println!(
        "CPU  (Xeon Gold 5115, 40 threads, modeled): {:.4}s",
        cpu40.total
    );

    // GPU: simulated V100, 128 streams × 512 threads.
    let jobs: Vec<KernelJob> = pairs
        .iter()
        .map(|(t, q)| KernelJob {
            target: t.clone(),
            query: q.clone(),
            with_path: false,
        })
        .collect();
    let cfg = StreamConfig {
        kind: GpuKernelKind::Manymap,
        ..Default::default()
    };
    let rep = simulate_batch(&jobs, &sc, &cfg, &DeviceSpec::V100);
    println!(
        "GPU  (Tesla V100, simulated): {:.4}s  {:.2} GCUPS  (peak concurrency {})",
        rep.sim_seconds,
        rep.gcups(),
        rep.max_concurrency
    );

    // KNL: simulated Xeon Phi 7210, 256 threads, optimized affinity.
    let knl = simulate_pipeline(
        &KNL_7210,
        256,
        std::slice::from_ref(&batch),
        &PipelineParams::default(),
    );
    println!(
        "KNL  (Xeon Phi 7210, 256 threads, modeled): {:.4}s",
        knl.total
    );

    println!("\n(the GPU wins the kernel micro-benchmark; the CPU stays the most efficient end-to-end platform — the paper's conclusion)");
}
