#!/usr/bin/env bash
# Local CI gate: formatting, lints, and the tier-1 build+test cycle.
# Everything runs offline — the only dependencies are the vendored shims
# in shims/ (see Cargo.toml's workspace.dependencies).
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (workspace, all targets, warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> xtask verify: lints, kernel oracle, proto fuzzer, miri, interleavings"
cargo run -p xtask -- verify

echo "==> cargo doc (workspace, warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "==> tier-1: cargo build --release"
cargo build --release

echo "==> tier-1: cargo test -q"
cargo test -q

echo "==> accelerator models + execution seam: mmm-knl, mmm-gpu, mmm-exec"
cargo test -q -p mmm-knl -p mmm-gpu -p mmm-exec

echo "==> fault suite: hostile inputs, injected faults, degradation paths"
cargo test -q -p mmm-index --test truncated_index
cargo test -q -p mmm-pipeline --test faults
cargo test -q -p manymap --test cli_faults

echo "==> chaos suite: supervised backend under every injected fault class"
cargo test -q -p mmm-exec --test chaos
cargo test -q -p mmm-exec --test watchdog_interleavings
cargo test -q -p manymap --test backend_cli

echo "==> scheduler suite: binned dispatch ordering, routing, chaos replay"
cargo test -q -p mmm-exec --test sched
MMM_SCHED=bins cargo test -q -p manymap --test backend_cli

echo "==> serve suite: multi-tenant daemon byte-identity, backpressure, drain"
cargo test -q -p mmm-index --test hit_budget
cargo test -q -p manymap --test serve

echo "==> serve gate: boot daemon, 4 concurrent clients, clean drain"
./serve_gate.sh

echo "==> serve ingestion bench: quick smoke (baseline lives in BENCH_serve_queue.json)"
BENCH_QUICK=1 BENCH_JSON_OUT="" cargo bench -p bench --bench serve_queue

echo "CI OK"
