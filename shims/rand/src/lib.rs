//! Vendored stand-in for the `rand` crate (0.9 API subset).
//!
//! The build environment has no network access to a crates registry, so the
//! workspace vendors the small slice of `rand` it actually uses: a seedable
//! RNG (`rngs::StdRng`), `Rng::random` for `f64`/`bool`, and
//! `Rng::random_range` over half-open integer ranges.
//!
//! The generator is SplitMix64 — statistically solid for simulation
//! workloads, deterministic for a given seed, and trivially portable. The
//! streams differ from upstream `rand`'s ChaCha12-based `StdRng`, which only
//! matters to tests that hard-code expected sequences; this workspace has
//! none (its tests assert distributional or structural properties).

use std::ops::Range;

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling interface, mirroring the parts of `rand::Rng` the workspace uses.
pub trait Rng {
    fn next_u64(&mut self) -> u64;

    /// Uniform sample of `T` (`f64` in `[0, 1)`, `bool` fair coin, full-range
    /// integers).
    fn random<T: Random>(&mut self) -> T {
        T::random(self)
    }

    /// Uniform sample from a half-open range. Panics if the range is empty.
    fn random_range<T: RangeSample>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range)
    }

    /// Bernoulli sample with probability `p` of `true`.
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

pub mod rngs {
    use super::{Rng, SeedableRng};

    /// SplitMix64. Passes BigCrush for the output function used here; 2^64
    /// period is ample for test/simulation use.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    /// Alias: the workspace treats small and standard RNGs identically.
    pub type SmallRng = StdRng;

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

/// Types producible by [`Rng::random`].
pub trait Random: Sized {
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Random for f64 {
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 high-quality bits -> [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Random for bool {
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Random for u64 {
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Random for u32 {
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

/// Integer types usable with [`Rng::random_range`].
pub trait RangeSample: Sized {
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

macro_rules! impl_range_sample {
    ($($t:ty),*) => {$(
        impl RangeSample for $t {
            fn sample_range<R: Rng + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "cannot sample empty range");
                let span = (range.end as i128 - range.start as i128) as u128;
                // Multiply-shift bounded sampling (Lemire); bias is < 2^-64
                // per draw, irrelevant at test scale.
                let v = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (range.start as i128 + v) as $t
            }
        }
    )*};
}

impl_range_sample!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut seen = [false; 4];
        for _ in 0..1_000 {
            let v = rng.random_range(0..4usize);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues hit: {seen:?}");
        for _ in 0..1_000 {
            let v = rng.random_range(-5i32..5);
            assert!((-5..5).contains(&v));
        }
    }

    #[test]
    fn bool_is_roughly_fair() {
        let mut rng = StdRng::seed_from_u64(3);
        let trues = (0..10_000).filter(|_| rng.random::<bool>()).count();
        assert!((4_000..6_000).contains(&trues), "{trues}");
    }
}
