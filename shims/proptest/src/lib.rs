//! Vendored stand-in for the `proptest` crate (API subset).
//!
//! The build environment has no network access to a crates registry, so the
//! workspace vendors the slice of `proptest` its test suites use:
//!
//! * the `proptest!` macro with an optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]` header,
//! * `prop_assume!`, `prop_assert!`, `prop_assert_eq!`, `prop_assert_ne!`,
//! * integer-range strategies (`0u8..5`, `1i32..6`, ...),
//! * `proptest::collection::vec(elem, len_range)`,
//! * `proptest::bool::ANY`.
//!
//! Semantics differ from upstream in two deliberate ways: case generation is
//! deterministic (seeded from the test's module path and name, so failures
//! reproduce exactly under plain `cargo test`), and there is no shrinking —
//! a failing case panics with the standard assertion message. Rejected cases
//! (`prop_assume!`) simply skip to the next iteration and do not count
//! against the case budget beyond their slot.

pub mod test_runner {
    /// Configuration for a `proptest!` block; only `cases` is honored.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Deterministic SplitMix64 stream, seeded per test from its name.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed from the test's fully-qualified name (FNV-1a), so every test
        /// has an independent, stable stream.
        pub fn for_test(name: &str) -> Self {
            let mut h: u64 = 0xCBF2_9CE4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01B3);
            }
            TestRng { state: h | 1 }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Value generator. Upstream proptest's `Strategy` produces shrinkable
    /// value trees; this stand-in only samples.
    pub trait Strategy {
        type Value;
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let v = ((rng.next_u64() as u128 * span) >> 64) as i128;
                    (self.start as i128 + v) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    pub struct VecStrategy<S> {
        elem: S,
        len: Range<usize>,
    }

    /// `proptest::collection::vec(elem, min..max)`: a `Vec` whose length is
    /// drawn from `min..max` and whose elements come from `elem`.
    pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = Strategy::sample(&self.len, rng);
            (0..n).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    pub struct Any;

    /// `proptest::bool::ANY`: a fair coin.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Defines property tests. Each `fn name(arg in strategy, ...) { .. }` item
/// becomes a `#[test]` that runs the body `cases` times with freshly sampled
/// arguments.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_items!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!(
            (<$crate::test_runner::ProptestConfig as ::std::default::Default>::default())
            $($rest)*
        );
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::TestRng::for_test(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for __case in 0..__cfg.cases {
                let _ = __case;
                #[allow(clippy::redundant_closure_call)]
                (|| {
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)*
                    $body
                })();
            }
        }
        $crate::__proptest_items!(($cfg) $($rest)*);
    };
}

/// Skip the current case when its precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return;
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return;
        }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_vecs_respect_bounds(
            x in 3u8..17,
            v in crate::collection::vec(0i32..5, 2..9),
            b in crate::bool::ANY,
        ) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((2..9).contains(&v.len()));
            prop_assert!(v.iter().all(|&e| (0..5).contains(&e)));
            let _ = b;
        }

        #[test]
        fn assume_skips_case(n in 0u32..10) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    #[test]
    fn streams_are_deterministic() {
        let mut a = crate::test_runner::TestRng::for_test("x::y");
        let mut b = crate::test_runner::TestRng::for_test("x::y");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
