//! `loom-lite` — a vendored, dependency-free model checker for small
//! lock/condvar protocols, in the spirit of `loom` (the build environment has
//! no registry access, so the workspace vendors the slice it needs, same as
//! the `rand`/`proptest` shims).
//!
//! A *model* is a closure that spawns a handful of threads which communicate
//! only through this crate's [`sync::Mutex`], [`sync::Condvar`],
//! [`sync::atomic`] types and [`thread::spawn`]/[`thread::JoinHandle::join`].
//! [`model`] (or [`Builder::check`]) runs the closure many times, each time
//! under a different thread schedule, until **every** schedule reachable at
//! the configured preemption bound has been executed:
//!
//! * Only one model thread ever runs at a time. Every synchronization
//!   operation is a *scheduling point*: the running thread hands control to
//!   a scheduler which picks the next runnable thread.
//! * The scheduler explores schedules depth-first: the first execution always
//!   lets the running thread continue; backtracking replays a recorded
//!   decision prefix and takes the next branch.
//! * A state where no thread is runnable but some are blocked is reported as
//!   a **deadlock** together with the decision trace that reached it. A lost
//!   wakeup (a notify that fires before the matching wait) manifests as
//!   exactly such a state, so the checker catches those too.
//! * Assertion failures inside the model abort the exploration and report
//!   the offending schedule.
//!
//! Exhaustive exploration is exponential in the number of scheduling points,
//! so [`Builder::max_preemptions`] optionally bounds the number of
//! *pre-emptive* context switches per schedule (switching away from a thread
//! that could have continued), the CHESS-style bound that finds almost all
//! real interleaving bugs at 2–3 preemptions while keeping schedule counts
//! polynomial. `None` means fully exhaustive.
//!
//! Beyond schedule enumeration, every explored interleaving is also checked
//! for two whole-execution properties (DESIGN.md §13):
//!
//! * **Happens-before data races.** The checker maintains vector clocks:
//!   one per thread, advanced on every synchronization release, and one per
//!   mutex / condvar / atomic, carrying the clock published by the last
//!   release through that object. Plain shared memory is modeled with
//!   [`sync::RaceCell`]; two accesses to the same cell where at least one is
//!   a write and neither happens-before the other fail the model with a
//!   `data race` report, even on schedules where the observed values happen
//!   to be right.
//! * **Lock-order inversions.** Each mutex acquisition while other mutexes
//!   are held records a static order edge; observing both `A → B` and
//!   `B → A` within one execution fails the model as a *potential* deadlock
//!   — without needing to reach the schedule that actually deadlocks.
//!
//! Both detectors are on by default and can be switched off per
//! [`Builder`] (`detect_races`, `detect_lock_order`) when a model
//! deliberately exercises a broken protocol some other way.
//!
//! Timed waits: [`sync::Condvar::wait_timeout`] parks like `wait`, but when
//! the whole model reaches quiescence (no thread runnable, timed waiters
//! parked) the abstract timeout fires and wakes every timed waiter with its
//! timed-out flag set, instead of declaring a deadlock. This is the
//! "timeout fires last" abstraction: it verifies that timed-wait protocols
//! terminate and re-check their predicates without exploding the schedule
//! space with timing choices.
//!
//! Determinism contract: the model closure must behave identically given the
//! same schedule (no OS time, no OS randomness, no real threads); violations
//! are detected and reported as `nondeterministic model`.

use std::cell::{Cell, RefCell, UnsafeCell};
use std::collections::BTreeSet;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar as OsCondvar, Mutex as OsMutex, MutexGuard as OsGuard, Once};

/// One recorded scheduling decision: which of `options` runnable threads ran.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Choice {
    chosen: usize,
    options: usize,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum TState {
    Runnable,
    BlockedMutex(usize),
    BlockedCv(usize),
    /// Parked in `wait_timeout`; woken by a notify or, at quiescence, by
    /// the abstract timeout.
    BlockedCvTimed(usize),
    BlockedJoin(usize),
    Finished,
}

/// Panic payload used to unwind model threads when an execution is being
/// torn down (deadlock found, another thread failed, exploration aborted).
struct AbortSignal;

/// A vector clock: `clock[t]` is the latest event of thread `t` known to
/// happen-before the clock's owner. Clocks grow lazily as threads spawn;
/// a missing entry reads as 0.
type VClock = Vec<u32>;

fn vc_join(dst: &mut VClock, src: &[u32]) {
    if dst.len() < src.len() {
        dst.resize(src.len(), 0);
    }
    for (d, s) in dst.iter_mut().zip(src.iter()) {
        if *s > *d {
            *d = *s;
        }
    }
}

fn vc_get(v: &[u32], i: usize) -> u32 {
    v.get(i).copied().unwrap_or(0)
}

/// Access history of one [`sync::RaceCell`], FastTrack-style: the last
/// write as an epoch, plus every thread's last read since that write.
#[derive(Default)]
struct CellState {
    /// `(tid, that thread's clock component at the write)`.
    write: Option<(usize, u32)>,
    /// `reads[t]` = thread `t`'s clock component at its last read since the
    /// last write; 0 = no such read.
    reads: Vec<u32>,
}

struct Inner {
    threads: Vec<TState>,
    /// Per-thread wakeup condvars: a context switch wakes exactly the thread
    /// being switched to, not the whole herd.
    cvs: Vec<Arc<OsCondvar>>,
    /// The single thread allowed to execute model code right now.
    active: usize,
    /// `mutex_owner[id]` is the tid holding model mutex `id`, if any.
    mutex_owner: Vec<Option<usize>>,
    /// Per-thread vector clocks (happens-before tracking).
    clocks: Vec<VClock>,
    /// `mutex_clocks[id]` carries the clock published by the last release.
    mutex_clocks: Vec<VClock>,
    /// `cv_clocks[id]` carries the clocks published by notifiers.
    cv_clocks: Vec<VClock>,
    /// `atomic_clocks[id]` accumulates the clocks of every store/RMW.
    atomic_clocks: Vec<VClock>,
    /// Access histories of registered `RaceCell`s.
    cells: Vec<CellState>,
    /// `held[t]` = model mutex ids thread `t` currently holds, in
    /// acquisition order.
    held: Vec<Vec<usize>>,
    /// Static lock-order edges observed this execution: `(a, b)` means some
    /// thread acquired `b` while holding `a`.
    lock_edges: BTreeSet<(usize, usize)>,
    /// `timed_out[t]`: thread `t`'s pending `wait_timeout` result.
    timed_out: Vec<bool>,
    detect_races: bool,
    detect_lock_order: bool,
    /// Decision prefix to replay this execution.
    prefix: Vec<Choice>,
    depth: usize,
    /// Decisions actually taken this execution.
    trace: Vec<Choice>,
    preemptions: usize,
    max_preemptions: Option<usize>,
    steps: usize,
    max_steps: usize,
    failure: Option<String>,
    done: bool,
}

struct Exec {
    inner: OsMutex<Inner>,
    cv: OsCondvar,
    /// OS handles of spawned model threads, joined by the driver after each
    /// execution so no stragglers leak into the next one.
    handles: OsMutex<Vec<std::thread::JoinHandle<()>>>,
}

thread_local! {
    static CTX: RefCell<Option<(Arc<Exec>, usize)>> = const { RefCell::new(None) };
}

fn ctx() -> (Arc<Exec>, usize) {
    CTX.with(|c| {
        c.borrow()
            .clone()
            .unwrap_or_else(|| panic!("loom-lite primitives may only be used inside model()"))
    })
}

fn with_inner(exec: &Exec) -> OsGuard<'_, Inner> {
    exec.inner.lock().unwrap_or_else(|e| e.into_inner())
}

/// Abort the current model thread if the execution already failed.
fn abort_if_failed(exec: &Exec, g: &OsGuard<'_, Inner>) {
    if g.failure.is_some() {
        let _ = exec; // guard drops before the unwind below
        std::panic::panic_any(AbortSignal);
    }
}

/// Record a failure (first one wins), wake every parked thread, and unwind.
fn fail(exec: &Exec, mut g: OsGuard<'_, Inner>, msg: String) -> ! {
    if g.failure.is_none() {
        g.failure = Some(format!("{msg}\n  decision trace: {:?}", g.trace));
    }
    for cv in &g.cvs {
        cv.notify_all();
    }
    exec.cv.notify_all();
    drop(g);
    std::panic::panic_any(AbortSignal)
}

/// Pick the next thread to run. `me` is the thread yielding control; its
/// state must already reflect why it yields (still `Runnable` for a plain
/// scheduling point, `Blocked*` when parking, `Finished` on exit).
fn reschedule<'a>(exec: &'a Exec, mut g: OsGuard<'a, Inner>, me: usize) -> OsGuard<'a, Inner> {
    g.steps += 1;
    if g.steps > g.max_steps {
        let max = g.max_steps;
        fail(
            exec,
            g,
            format!("execution exceeded {max} scheduling points (livelock?)"),
        );
    }
    let mut runnable: Vec<usize> = g
        .threads
        .iter()
        .enumerate()
        .filter(|(_, s)| **s == TState::Runnable)
        .map(|(t, _)| t)
        .collect();
    if runnable.is_empty() {
        // Quiescence with timed waiters parked: the abstract timeout fires
        // and wakes them all (timed_out = true) instead of deadlocking.
        let timed: Vec<usize> = g
            .threads
            .iter()
            .enumerate()
            .filter(|(_, s)| matches!(s, TState::BlockedCvTimed(_)))
            .map(|(t, _)| t)
            .collect();
        if !timed.is_empty() {
            for &t in &timed {
                g.threads[t] = TState::Runnable;
                g.timed_out[t] = true;
            }
            runnable = timed;
        } else {
            if g.threads.iter().any(|s| *s != TState::Finished) {
                let states = format!("{:?}", g.threads);
                fail(exec, g, format!("deadlock: thread states {states}"));
            }
            g.done = true;
            exec.cv.notify_all();
            return g;
        }
    }
    // Deterministic option order: the yielding thread first (so the default
    // DFS branch is "keep running", giving run-to-completion schedules
    // first), then the others by tid.
    let me_runnable = g.threads[me] == TState::Runnable;
    let mut ordered = Vec::with_capacity(runnable.len());
    if me_runnable {
        ordered.push(me);
    }
    ordered.extend(runnable.iter().copied().filter(|&t| t != me));
    // Preemption bound: once spent, a thread that can continue must.
    let bound_hit = me_runnable && g.max_preemptions.is_some_and(|b| g.preemptions >= b);
    let options = if bound_hit { vec![me] } else { ordered };
    let chosen_idx = if options.len() == 1 {
        0
    } else {
        let c = if g.depth < g.prefix.len() {
            let p = g.prefix[g.depth];
            if p.options != options.len() {
                let (po, ol) = (p.options, options.len());
                fail(
                    exec,
                    g,
                    format!(
                        "nondeterministic model: replay saw {ol} options where {po} were recorded"
                    ),
                );
            }
            p.chosen
        } else {
            0
        };
        g.depth += 1;
        g.trace.push(Choice {
            chosen: c,
            options: options.len(),
        });
        c
    };
    let next = options[chosen_idx];
    if next == me {
        // Fast path: the running thread keeps running — no context switch,
        // no wakeup. The leftmost DFS branch (run-to-completion) costs
        // almost no OS scheduling this way.
        return g;
    }
    if me_runnable {
        g.preemptions += 1;
    }
    g.active = next;
    let cv = Arc::clone(&g.cvs[next]);
    cv.notify_all();
    g
}

/// Park until the scheduler hands control back to `me` (or the execution
/// fails, in which case the thread unwinds).
fn park_until_active(exec: &Exec, mut g: OsGuard<'_, Inner>, me: usize) {
    let _ = exec;
    if g.failure.is_none() && g.active == me {
        return;
    }
    let cv = Arc::clone(&g.cvs[me]);
    while g.failure.is_none() && g.active != me {
        g = cv.wait(g).unwrap_or_else(|e| e.into_inner());
    }
    if g.failure.is_some() {
        drop(g);
        std::panic::panic_any(AbortSignal);
    }
}

/// A plain scheduling point: let the scheduler run anyone, then continue.
fn schedule_point(exec: &Exec, me: usize) {
    let g = with_inner(exec);
    abort_if_failed(exec, &g);
    let g = reschedule(exec, g, me);
    park_until_active(exec, g, me);
}

/// Park as `state` until woken *and* scheduled.
fn block_current(exec: &Exec, me: usize, state: TState) {
    let mut g = with_inner(exec);
    abort_if_failed(exec, &g);
    g.threads[me] = state;
    let g = reschedule(exec, g, me);
    park_until_active(exec, g, me);
}

pub mod sync {
    //! Model-checked stand-ins for `std::sync` primitives.

    use super::*;

    /// Model mutex. API is deliberately simpler than `std`'s: `lock` cannot
    /// poison (a panicking model thread aborts the whole execution).
    pub struct Mutex<T> {
        id: usize,
        exec: Arc<Exec>,
        data: UnsafeCell<T>,
    }

    // SAFETY: the scheduler runs exactly one model thread at a time, and the
    // data is only touched through a `MutexGuard`, which is handed out only
    // to the thread recorded as the mutex owner — so `&mut T` access is
    // exclusive even though the OS threads are real.
    unsafe impl<T: Send> Send for Mutex<T> {}
    // SAFETY: as above; shared access is serialized by the model scheduler.
    unsafe impl<T: Send> Sync for Mutex<T> {}

    impl<T> Mutex<T> {
        /// Register a new mutex with the current model execution.
        pub fn new(value: T) -> Self {
            let (exec, _) = ctx();
            let id = {
                let mut g = with_inner(&exec);
                g.mutex_owner.push(None);
                g.mutex_clocks.push(Vec::new());
                g.mutex_owner.len() - 1
            };
            Mutex {
                id,
                exec,
                data: UnsafeCell::new(value),
            }
        }

        /// Acquire the mutex, parking (in model time) while it is held.
        pub fn lock(&self) -> MutexGuard<'_, T> {
            let (_, me) = ctx();
            schedule_point(&self.exec, me);
            {
                // Record static lock-order edges (held → acquiring) and flag
                // an inversion the moment both directions have been seen —
                // no need to reach the schedule that actually deadlocks.
                let mut g = with_inner(&self.exec);
                abort_if_failed(&self.exec, &g);
                let held = g.held[me].clone();
                let mut inverted = None;
                for &h in &held {
                    if h == self.id {
                        continue;
                    }
                    g.lock_edges.insert((h, self.id));
                    if g.detect_lock_order && g.lock_edges.contains(&(self.id, h)) {
                        inverted = Some(h);
                    }
                }
                if let Some(a) = inverted {
                    let b = self.id;
                    fail(
                        &self.exec,
                        g,
                        format!(
                            "lock-order inversion (potential deadlock): thread {me} \
                             acquires mutex #{b} while holding mutex #{a}, but the \
                             opposite order #{b} -> #{a} was also taken"
                        ),
                    );
                }
            }
            self.acquire(me)
        }

        /// The acquire loop shared by `lock` and `Condvar::wait` re-entry.
        fn acquire(&self, me: usize) -> MutexGuard<'_, T> {
            loop {
                {
                    let mut g = with_inner(&self.exec);
                    abort_if_failed(&self.exec, &g);
                    if g.mutex_owner[self.id].is_none() {
                        g.mutex_owner[self.id] = Some(me);
                        // Acquire edge: inherit the clock the last release
                        // published through this mutex.
                        let mc = g.mutex_clocks[self.id].clone();
                        vc_join(&mut g.clocks[me], &mc);
                        g.held[me].push(self.id);
                        return MutexGuard { m: self };
                    }
                }
                block_current(&self.exec, me, TState::BlockedMutex(self.id));
            }
        }
    }

    /// Exclusive access token for a locked [`Mutex`].
    pub struct MutexGuard<'a, T> {
        pub(super) m: &'a Mutex<T>,
    }

    impl<T> std::ops::Deref for MutexGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            // SAFETY: this guard is the unique owner token for the mutex and
            // only the active model thread can be executing this code.
            unsafe { &*self.m.data.get() }
        }
    }

    impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
        fn deref_mut(&mut self) -> &mut T {
            // SAFETY: as in `deref` — ownership is exclusive by construction.
            unsafe { &mut *self.m.data.get() }
        }
    }

    impl<T> Drop for MutexGuard<'_, T> {
        fn drop(&mut self) {
            // Release without a scheduling point and without panicking: this
            // also runs while unwinding aborted executions.
            let mut g = with_inner(&self.m.exec);
            let id = self.m.id;
            if let Some(owner) = g.mutex_owner[id] {
                // Release edge: publish the owner's clock through the mutex
                // and advance the owner past the release.
                let c = g.clocks[owner].clone();
                vc_join(&mut g.mutex_clocks[id], &c);
                g.clocks[owner][owner] += 1;
                if let Some(pos) = g.held[owner].iter().rposition(|&h| h == id) {
                    g.held[owner].remove(pos);
                }
            }
            g.mutex_owner[id] = None;
            for s in g.threads.iter_mut() {
                if *s == TState::BlockedMutex(id) {
                    *s = TState::Runnable;
                }
            }
        }
    }

    /// Model condition variable with `std` semantics: a notify with no
    /// parked waiter is lost, waits must be predicate-guarded by the caller.
    pub struct Condvar {
        id: usize,
        exec: Arc<Exec>,
    }

    impl Condvar {
        /// Register a new condvar with the current model execution.
        pub fn new() -> Self {
            let (exec, _) = ctx();
            let id = {
                let mut g = with_inner(&exec);
                g.cv_clocks.push(Vec::new());
                g.cv_clocks.len() - 1
            };
            Condvar { id, exec }
        }

        /// Release the guard's mutex and enqueue `me` as a waiter in one
        /// atomic step (exactly like the futex-backed std implementation),
        /// publishing the release clock through the mutex.
        fn park_as_waiter<T>(&self, guard: MutexGuard<'_, T>, me: usize, state: TState) {
            let m_id = guard.m.id;
            let mut g = with_inner(&self.exec);
            abort_if_failed(&self.exec, &g);
            let c = g.clocks[me].clone();
            vc_join(&mut g.mutex_clocks[m_id], &c);
            g.clocks[me][me] += 1;
            if let Some(pos) = g.held[me].iter().rposition(|&h| h == m_id) {
                g.held[me].remove(pos);
            }
            g.mutex_owner[m_id] = None;
            for s in g.threads.iter_mut() {
                if *s == TState::BlockedMutex(m_id) {
                    *s = TState::Runnable;
                }
            }
            g.threads[me] = state;
            std::mem::forget(guard);
            let g = reschedule(&self.exec, g, me);
            park_until_active(&self.exec, g, me);
        }

        /// Atomically release the guard's mutex and park until notified,
        /// then re-acquire. No spurious wakeups are modeled; protocols must
        /// still re-check their predicate (a notify may race past).
        pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
            let m = guard.m;
            let (_, me) = ctx();
            // Scheduling point *before* registering as a waiter: a notifier
            // that does not hold the guard's mutex can fire exactly here and
            // be lost, which is the race this checker exists to find. (A
            // notifier that does hold the mutex cannot reach its notify while
            // the caller still owns the guard, so correct predicate-guarded
            // protocols are unaffected.)
            schedule_point(&self.exec, me);
            self.park_as_waiter(guard, me, TState::BlockedCv(self.id));
            {
                // Acquire edge from whichever notify woke this thread.
                let mut g = with_inner(&self.exec);
                abort_if_failed(&self.exec, &g);
                let cc = g.cv_clocks[self.id].clone();
                vc_join(&mut g.clocks[me], &cc);
            }
            // Notified and scheduled: contend for the mutex again.
            m.acquire(me)
        }

        /// Like [`wait`](Self::wait) with a timeout. The duration is not
        /// modeled; the abstract timeout fires only at quiescence (see the
        /// crate docs). Returns the re-acquired guard and `true` when the
        /// wakeup was the timeout rather than a notify.
        pub fn wait_timeout<'a, T>(
            &self,
            guard: MutexGuard<'a, T>,
            _timeout: std::time::Duration,
        ) -> (MutexGuard<'a, T>, bool) {
            let m = guard.m;
            let (_, me) = ctx();
            schedule_point(&self.exec, me);
            {
                let mut g = with_inner(&self.exec);
                abort_if_failed(&self.exec, &g);
                g.timed_out[me] = false;
            }
            self.park_as_waiter(guard, me, TState::BlockedCvTimed(self.id));
            let timed_out = {
                let mut g = with_inner(&self.exec);
                abort_if_failed(&self.exec, &g);
                let t = g.timed_out[me];
                g.timed_out[me] = false;
                if !t {
                    // A notify (not the timeout) woke us: acquire its clock.
                    let cc = g.cv_clocks[self.id].clone();
                    vc_join(&mut g.clocks[me], &cc);
                }
                t
            };
            (m.acquire(me), timed_out)
        }

        /// Wake every thread parked on this condvar.
        pub fn notify_all(&self) {
            let (_, me) = ctx();
            schedule_point(&self.exec, me);
            let mut g = with_inner(&self.exec);
            abort_if_failed(&self.exec, &g);
            let id = self.id;
            let c = g.clocks[me].clone();
            vc_join(&mut g.cv_clocks[id], &c);
            g.clocks[me][me] += 1;
            for s in g.threads.iter_mut() {
                if *s == TState::BlockedCv(id) || *s == TState::BlockedCvTimed(id) {
                    *s = TState::Runnable;
                }
            }
        }

        /// Wake one parked thread (the lowest tid, deterministically).
        pub fn notify_one(&self) {
            let (_, me) = ctx();
            schedule_point(&self.exec, me);
            let mut g = with_inner(&self.exec);
            abort_if_failed(&self.exec, &g);
            let id = self.id;
            let c = g.clocks[me].clone();
            vc_join(&mut g.cv_clocks[id], &c);
            g.clocks[me][me] += 1;
            if let Some(s) = g
                .threads
                .iter_mut()
                .find(|s| **s == TState::BlockedCv(id) || **s == TState::BlockedCvTimed(id))
            {
                *s = TState::Runnable;
            }
        }
    }

    impl Default for Condvar {
        fn default() -> Self {
            Self::new()
        }
    }

    pub mod atomic {
        //! Model atomics. Every access is a scheduling point; orderings are
        //! not modeled (the interleaving exploration is sequentially
        //! consistent, which is what the audited protocols assume). For
        //! happens-before tracking, each atomic carries a clock: stores and
        //! RMWs publish (release), loads and RMWs inherit (acquire) — a
        //! conservative SC-clock model that never reports false races
        //! through properly flag-published data.

        use super::super::*;

        macro_rules! model_atomic {
            ($name:ident, $t:ty) => {
                pub struct $name {
                    id: usize,
                    exec: Arc<Exec>,
                    v: Cell<$t>,
                }

                // SAFETY: only the single active model thread ever touches
                // `v`; the scheduler serializes all access.
                unsafe impl Sync for $name {}
                // SAFETY: as above.
                unsafe impl Send for $name {}

                impl $name {
                    pub fn new(v: $t) -> Self {
                        let (exec, _) = ctx();
                        let id = {
                            let mut g = with_inner(&exec);
                            g.atomic_clocks.push(Vec::new());
                            g.atomic_clocks.len() - 1
                        };
                        $name {
                            id,
                            exec,
                            v: Cell::new(v),
                        }
                    }

                    /// Acquire edge: inherit the clock of every prior
                    /// store/RMW through this atomic.
                    fn clock_acquire(&self, me: usize) {
                        let mut g = with_inner(&self.exec);
                        abort_if_failed(&self.exec, &g);
                        let ac = g.atomic_clocks[self.id].clone();
                        vc_join(&mut g.clocks[me], &ac);
                    }

                    /// Release edge (plus acquire, for RMWs): merge clocks
                    /// both ways and advance past the operation.
                    fn clock_release(&self, me: usize) {
                        let mut g = with_inner(&self.exec);
                        abort_if_failed(&self.exec, &g);
                        let c = g.clocks[me].clone();
                        vc_join(&mut g.atomic_clocks[self.id], &c);
                        let ac = g.atomic_clocks[self.id].clone();
                        vc_join(&mut g.clocks[me], &ac);
                        g.clocks[me][me] += 1;
                    }

                    pub fn load(&self) -> $t {
                        let (_, me) = ctx();
                        schedule_point(&self.exec, me);
                        self.clock_acquire(me);
                        self.v.get()
                    }

                    pub fn store(&self, v: $t) {
                        let (_, me) = ctx();
                        schedule_point(&self.exec, me);
                        self.clock_release(me);
                        self.v.set(v);
                    }

                    pub fn swap(&self, v: $t) -> $t {
                        let (_, me) = ctx();
                        schedule_point(&self.exec, me);
                        self.clock_release(me);
                        self.v.replace(v)
                    }
                }
            };
        }

        model_atomic!(AtomicBool, bool);
        model_atomic!(AtomicUsize, usize);

        impl AtomicUsize {
            /// Atomic add returning the previous value — the claim counter
            /// primitive the worker pool is built on.
            pub fn fetch_add(&self, n: usize) -> usize {
                let (_, me) = ctx();
                schedule_point(&self.exec, me);
                self.clock_release(me);
                let old = self.v.get();
                self.v.set(old.wrapping_add(n));
                old
            }
        }
    }

    /// Plain (non-atomic) shared memory under happens-before race
    /// detection. Accesses go through `with`/`with_mut` (or the `Copy`
    /// conveniences `get`/`set`); each is a scheduling point, and two
    /// accesses where at least one is a write and neither happens-before
    /// the other fail the model with a `data race` report — even on
    /// schedules where the observed values happen to be correct.
    pub struct RaceCell<T> {
        id: usize,
        exec: Arc<Exec>,
        data: UnsafeCell<T>,
    }

    // SAFETY: the scheduler runs exactly one model thread at a time, so the
    // cell is never touched concurrently at the OS level; cross-thread
    // *model* races are exactly what the vector-clock check reports.
    unsafe impl<T: Send> Send for RaceCell<T> {}
    // SAFETY: as above; all access is serialized by the model scheduler.
    unsafe impl<T: Send> Sync for RaceCell<T> {}

    impl<T> RaceCell<T> {
        /// Register a new tracked cell with the current model execution.
        pub fn new(value: T) -> Self {
            let (exec, _) = ctx();
            let id = {
                let mut g = with_inner(&exec);
                g.cells.push(CellState::default());
                g.cells.len() - 1
            };
            RaceCell {
                id,
                exec,
                data: UnsafeCell::new(value),
            }
        }

        /// The FastTrack check: a read races with an unordered write; a
        /// write races with an unordered write *or* read.
        fn check(&self, me: usize, is_write: bool) {
            schedule_point(&self.exec, me);
            let mut g = with_inner(&self.exec);
            abort_if_failed(&self.exec, &g);
            let clock = g.clocks[me].clone();
            let cell = &mut g.cells[self.id];
            let mut race: Option<(usize, &'static str)> = None;
            if let Some((wt, we)) = cell.write {
                if wt != me && we > vc_get(&clock, wt) {
                    race = Some((wt, "write"));
                }
            }
            if is_write && race.is_none() {
                for (t, &re) in cell.reads.iter().enumerate() {
                    if t != me && re > 0 && re > vc_get(&clock, t) {
                        race = Some((t, "read"));
                        break;
                    }
                }
            }
            if race.is_none() {
                if is_write {
                    cell.write = Some((me, vc_get(&clock, me)));
                    cell.reads.iter_mut().for_each(|r| *r = 0);
                } else {
                    if cell.reads.len() <= me {
                        cell.reads.resize(me + 1, 0);
                    }
                    cell.reads[me] = vc_get(&clock, me);
                }
            }
            if let Some((other, kind)) = race {
                if g.detect_races {
                    let id = self.id;
                    let access = if is_write { "write" } else { "read" };
                    fail(
                        &self.exec,
                        g,
                        format!(
                            "data race: {access} of RaceCell #{id} by thread {me} is \
                             concurrent with a {kind} by thread {other}"
                        ),
                    );
                }
            }
        }

        /// Read access under race checking.
        pub fn with<R>(&self, f: impl FnOnce(&T) -> R) -> R {
            let (_, me) = ctx();
            self.check(me, false);
            // SAFETY: the model scheduler serializes all access; the
            // happens-before check above reports (rather than permits)
            // model-level races.
            f(unsafe { &*self.data.get() })
        }

        /// Write access under race checking.
        pub fn with_mut<R>(&self, f: impl FnOnce(&mut T) -> R) -> R {
            let (_, me) = ctx();
            self.check(me, true);
            // SAFETY: as in `with` — serialized by the scheduler.
            f(unsafe { &mut *self.data.get() })
        }

        pub fn get(&self) -> T
        where
            T: Copy,
        {
            self.with(|v| *v)
        }

        pub fn set(&self, value: T) {
            self.with_mut(|p| *p = value);
        }
    }
}

pub mod thread {
    //! Model threads: real OS threads whose execution is serialized and
    //! scheduled by the checker.

    use super::*;

    /// Handle to a spawned model thread.
    pub struct JoinHandle {
        tid: usize,
        exec: Arc<Exec>,
    }

    /// Spawn a model thread. The closure runs only when scheduled; a panic
    /// in it fails the whole model with the offending schedule.
    pub fn spawn<F: FnOnce() + Send + 'static>(f: F) -> JoinHandle {
        let (exec, me) = ctx();
        let tid = {
            let mut g = with_inner(&exec);
            abort_if_failed(&exec, &g);
            g.threads.push(TState::Runnable);
            g.cvs.push(Arc::new(OsCondvar::new()));
            let tid = g.threads.len() - 1;
            // The child inherits everything that happened-before the spawn;
            // parent events after the spawn are concurrent with it.
            let mut child_clock = g.clocks[me].clone();
            if child_clock.len() <= tid {
                child_clock.resize(tid + 1, 0);
            }
            child_clock[tid] = 1;
            g.clocks.push(child_clock);
            g.clocks[me][me] += 1;
            g.held.push(Vec::new());
            g.timed_out.push(false);
            tid
        };
        let exec2 = Arc::clone(&exec);
        let os = match std::thread::Builder::new()
            .name(format!("loom-lite-{tid}"))
            .spawn(move || worker_main(exec2, tid, f))
        {
            Ok(h) => h,
            Err(e) => panic!("loom-lite could not spawn an OS thread: {e}"),
        };
        exec.handles
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(os);
        // The child is runnable from this point on; branch on whether it or
        // the parent runs first.
        schedule_point(&exec, me);
        JoinHandle { tid, exec }
    }

    impl JoinHandle {
        /// Park until the thread finishes. Unlike `std`, panics are not
        /// returned here — any model-thread panic fails the whole model.
        pub fn join(self) {
            let (_, me) = ctx();
            schedule_point(&self.exec, me);
            loop {
                {
                    let mut g = with_inner(&self.exec);
                    abort_if_failed(&self.exec, &g);
                    if g.threads[self.tid] == TState::Finished {
                        // Everything the child did happens-before the join.
                        let c = g.clocks[self.tid].clone();
                        vc_join(&mut g.clocks[me], &c);
                        return;
                    }
                }
                block_current(&self.exec, me, TState::BlockedJoin(self.tid));
            }
        }
    }
}

/// Body of every model OS thread (including the root running the closure).
fn worker_main(exec: Arc<Exec>, tid: usize, f: impl FnOnce()) {
    CTX.with(|c| *c.borrow_mut() = Some((Arc::clone(&exec), tid)));
    let result = catch_unwind(AssertUnwindSafe(|| {
        {
            let g = with_inner(&exec);
            abort_if_failed(&exec, &g);
            park_until_active(&exec, g, tid);
        }
        f();
        let mut g = with_inner(&exec);
        g.threads[tid] = TState::Finished;
        for s in g.threads.iter_mut() {
            if *s == TState::BlockedJoin(tid) {
                *s = TState::Runnable;
            }
        }
        let _g = reschedule(&exec, g, tid);
    }));
    if let Err(payload) = result {
        if !payload.is::<AbortSignal>() {
            let msg = if let Some(s) = payload.downcast_ref::<&str>() {
                (*s).to_string()
            } else if let Some(s) = payload.downcast_ref::<String>() {
                s.clone()
            } else {
                "non-string panic payload".to_string()
            };
            let mut g = with_inner(&exec);
            if g.failure.is_none() {
                let trace = format!("{:?}", g.trace);
                g.failure = Some(format!(
                    "model thread {tid} panicked: {msg}\n  decision trace: {trace}"
                ));
            }
            // Wake every parked sibling, not just the controller: threads
            // blocked in `park_until_active` wait on their own condvar and
            // would otherwise park forever, wedging the handle drain.
            for cv in &g.cvs {
                cv.notify_all();
            }
            exec.cv.notify_all();
        }
    }
    CTX.with(|c| *c.borrow_mut() = None);
}

/// Outcome of an exploration that found no failures.
#[derive(Clone, Copy, Debug)]
pub struct Report {
    /// Number of distinct schedules executed.
    pub schedules: usize,
    /// True when every schedule at the configured bound was enumerated;
    /// false when `max_schedules` cut the exploration short.
    pub complete: bool,
}

/// Exploration configuration.
#[derive(Clone, Copy, Debug)]
pub struct Builder {
    /// Stop (with `Report::complete == false`) after this many schedules.
    pub max_schedules: usize,
    /// Fail any single execution exceeding this many scheduling points.
    pub max_steps: usize,
    /// CHESS-style preemption bound; `None` explores exhaustively.
    pub max_preemptions: Option<usize>,
    /// Fail on happens-before data races through [`sync::RaceCell`].
    pub detect_races: bool,
    /// Fail on AB/BA mutex acquisition orders (potential deadlocks), even
    /// on schedules that do not actually deadlock.
    pub detect_lock_order: bool,
}

impl Default for Builder {
    fn default() -> Self {
        Builder {
            max_schedules: 500_000,
            max_steps: 20_000,
            max_preemptions: None,
            detect_races: true,
            detect_lock_order: true,
        }
    }
}

/// Silence the default panic printer for the internal `AbortSignal` unwinds
/// that tear down aborted executions; real panics still print.
fn install_quiet_hook() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if !info.payload().is::<AbortSignal>() {
                prev(info);
            }
        }));
    });
}

impl Builder {
    /// Explore every schedule of `f` at this configuration. Panics with the
    /// failing decision trace on deadlock, lost wakeup (which parks forever
    /// and is reported as deadlock), assertion failure, or nondeterminism.
    pub fn check(self, f: impl Fn() + Send + Sync + 'static) -> Report {
        install_quiet_hook();
        let f = Arc::new(f);
        let mut prefix: Vec<Choice> = Vec::new();
        let mut schedules = 0usize;
        loop {
            if schedules >= self.max_schedules {
                return Report {
                    schedules,
                    complete: false,
                };
            }
            schedules += 1;
            let exec = Arc::new(Exec {
                inner: OsMutex::new(Inner {
                    threads: vec![TState::Runnable],
                    cvs: vec![Arc::new(OsCondvar::new())],
                    active: 0,
                    mutex_owner: Vec::new(),
                    clocks: vec![vec![1]],
                    mutex_clocks: Vec::new(),
                    cv_clocks: Vec::new(),
                    atomic_clocks: Vec::new(),
                    cells: Vec::new(),
                    held: vec![Vec::new()],
                    lock_edges: BTreeSet::new(),
                    timed_out: vec![false],
                    detect_races: self.detect_races,
                    detect_lock_order: self.detect_lock_order,
                    prefix: std::mem::take(&mut prefix),
                    depth: 0,
                    trace: Vec::new(),
                    preemptions: 0,
                    max_preemptions: self.max_preemptions,
                    steps: 0,
                    max_steps: self.max_steps,
                    failure: None,
                    done: false,
                }),
                cv: OsCondvar::new(),
                handles: OsMutex::new(Vec::new()),
            });
            // The root model thread (tid 0) runs inline on this thread — one
            // fewer OS spawn per execution, and the common run-to-completion
            // schedules finish with almost no context switching.
            let exec2 = Arc::clone(&exec);
            let fc = Arc::clone(&f);
            worker_main(exec2, 0, move || fc());
            {
                let mut g = with_inner(&exec);
                while !g.done && g.failure.is_none() {
                    g = exec.cv.wait(g).unwrap_or_else(|e| e.into_inner());
                }
            }
            // Children may still be between "spawned" and "exited"; drain
            // until the registry stays empty.
            loop {
                let hs: Vec<_> = {
                    let mut reg = exec.handles.lock().unwrap_or_else(|e| e.into_inner());
                    std::mem::take(&mut *reg)
                };
                if hs.is_empty() {
                    break;
                }
                for h in hs {
                    let _ = h.join();
                }
            }
            let (trace, failure) = {
                let g = with_inner(&exec);
                (g.trace.clone(), g.failure.clone())
            };
            if let Some(msg) = failure {
                panic!("loom-lite: model failed on schedule {schedules}: {msg}");
            }
            // Depth-first backtrack: advance the deepest branch point that
            // still has untried options; exploration is complete when none
            // remains.
            let mut tr = trace;
            loop {
                match tr.last_mut() {
                    None => {
                        return Report {
                            schedules,
                            complete: true,
                        }
                    }
                    Some(c) if c.chosen + 1 < c.options => {
                        c.chosen += 1;
                        break;
                    }
                    Some(_) => {
                        tr.pop();
                    }
                }
            }
            prefix = tr;
        }
    }
}

/// Exhaustively model-check `f` with the default configuration.
pub fn model(f: impl Fn() + Send + Sync + 'static) -> Report {
    Builder::default().check(f)
}

#[cfg(test)]
mod tests {
    use super::sync::atomic::{AtomicBool, AtomicUsize};
    use super::sync::{Condvar, Mutex, RaceCell};
    use super::{model, thread, Builder};
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn mutex_counter_is_race_free() {
        let report = model(|| {
            let m = Arc::new(Mutex::new(0u32));
            let mut hs = Vec::new();
            for _ in 0..2 {
                let m = Arc::clone(&m);
                hs.push(thread::spawn(move || {
                    for _ in 0..2 {
                        *m.lock() += 1;
                    }
                }));
            }
            for h in hs {
                h.join();
            }
            assert_eq!(*m.lock(), 4);
        });
        assert!(report.complete, "exploration hit the schedule cap");
        assert!(report.schedules > 1, "no interleavings were explored");
    }

    #[test]
    fn condvar_handoff_completes() {
        let report = model(|| {
            let m = Arc::new(Mutex::new(false));
            let cv = Arc::new(Condvar::new());
            let (m2, cv2) = (Arc::clone(&m), Arc::clone(&cv));
            let h = thread::spawn(move || {
                let mut g = m2.lock();
                while !*g {
                    g = cv2.wait(g);
                }
            });
            {
                let mut g = m.lock();
                *g = true;
                cv.notify_all();
            }
            h.join();
        });
        assert!(report.complete);
    }

    #[test]
    fn lock_order_inversion_is_reported_as_deadlock() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            model(|| {
                let a = Arc::new(Mutex::new(()));
                let b = Arc::new(Mutex::new(()));
                let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
                let h = thread::spawn(move || {
                    let _g1 = a2.lock();
                    let _g2 = b2.lock();
                });
                let _g1 = b.lock();
                let _g2 = a.lock();
                drop(_g2);
                drop(_g1);
                h.join();
            });
        }));
        let msg = match result {
            Ok(_) => panic!("the AB/BA lock inversion was not detected"),
            Err(p) => p.downcast_ref::<String>().cloned().unwrap_or_default(),
        };
        assert!(msg.contains("deadlock"), "unexpected failure: {msg}");
    }

    #[test]
    fn lost_wakeup_is_reported() {
        // The waiter parks unconditionally, so the schedule where the
        // notifier runs first loses the wakeup and the waiter parks forever.
        let result = catch_unwind(AssertUnwindSafe(|| {
            model(|| {
                let m = Arc::new(Mutex::new(()));
                let cv = Arc::new(Condvar::new());
                let (m2, cv2) = (Arc::clone(&m), Arc::clone(&cv));
                let h = thread::spawn(move || {
                    let g = m2.lock();
                    let _g = cv2.wait(g); // no predicate: broken by design
                });
                cv.notify_all();
                h.join();
            });
        }));
        assert!(result.is_err(), "the lost wakeup was not detected");
    }

    #[test]
    fn assertion_failures_surface_with_a_schedule() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            model(|| {
                let c = Arc::new(AtomicUsize::new(0));
                let c2 = Arc::clone(&c);
                // Unsynchronized read-modify-write: some schedule loses an
                // increment and the assert below fires.
                let h = thread::spawn(move || {
                    let v = c2.load();
                    c2.store(v + 1);
                });
                let v = c.load();
                c.store(v + 1);
                h.join();
                assert_eq!(c.load(), 2, "lost update");
            });
        }));
        assert!(result.is_err(), "the lost update was not found");
    }

    #[test]
    fn unsynchronized_racecell_writes_are_a_data_race() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            model(|| {
                let c = Arc::new(RaceCell::new(0u32));
                let c2 = Arc::clone(&c);
                let h = thread::spawn(move || c2.set(1));
                c.set(2);
                h.join();
            });
        }));
        let msg = match result {
            Ok(_) => panic!("the unsynchronized write pair was not detected"),
            Err(p) => p.downcast_ref::<String>().cloned().unwrap_or_default(),
        };
        assert!(msg.contains("data race"), "unexpected failure: {msg}");
    }

    #[test]
    fn mutex_protected_racecell_is_race_free() {
        let report = model(|| {
            let c = Arc::new(RaceCell::new(0u32));
            let m = Arc::new(Mutex::new(()));
            let mut hs = Vec::new();
            for _ in 0..2 {
                let (c, m) = (Arc::clone(&c), Arc::clone(&m));
                hs.push(thread::spawn(move || {
                    let _g = m.lock();
                    let v = c.get();
                    c.set(v + 1);
                }));
            }
            for h in hs {
                h.join();
            }
            // Reading after both joins is ordered by the join edges.
            assert_eq!(c.get(), 2);
        });
        assert!(report.complete);
        assert!(report.schedules > 1);
    }

    #[test]
    fn atomic_flag_publication_is_race_free() {
        let report = model(|| {
            let data = Arc::new(RaceCell::new(0u32));
            let flag = Arc::new(AtomicBool::new(false));
            let (d2, f2) = (Arc::clone(&data), Arc::clone(&flag));
            let h = thread::spawn(move || {
                d2.set(42);
                f2.store(true);
            });
            // The store's release clock carries the data write, so reading
            // behind an observed flag is ordered, not racy.
            if flag.load() {
                assert_eq!(data.get(), 42);
            }
            h.join();
        });
        assert!(report.complete);
    }

    #[test]
    fn race_detection_can_be_disabled() {
        let report = Builder {
            detect_races: false,
            ..Builder::default()
        }
        .check(|| {
            let c = Arc::new(RaceCell::new(0u32));
            let c2 = Arc::clone(&c);
            let h = thread::spawn(move || c2.set(1));
            c.set(2);
            h.join();
        });
        assert!(report.complete, "disabled detector must not abort the run");
    }

    #[test]
    fn consistent_lock_order_is_clean() {
        let report = model(|| {
            let a = Arc::new(Mutex::new(()));
            let b = Arc::new(Mutex::new(()));
            let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
            let h = thread::spawn(move || {
                let _g1 = a2.lock();
                let _g2 = b2.lock();
            });
            let _g1 = a.lock();
            let _g2 = b.lock();
            drop(_g2);
            drop(_g1);
            h.join();
        });
        assert!(report.complete);
    }

    #[test]
    fn wait_timeout_fires_at_quiescence_instead_of_deadlocking() {
        let report = model(|| {
            let m = Arc::new(Mutex::new(false));
            let cv = Arc::new(Condvar::new());
            let (m2, cv2) = (Arc::clone(&m), Arc::clone(&cv));
            let h = thread::spawn(move || {
                let mut g = m2.lock();
                let mut timed = false;
                while !*g && !timed {
                    let (g2, t) = cv2.wait_timeout(g, Duration::from_millis(1));
                    g = g2;
                    timed = t;
                }
                // No notifier exists: the only way out is the timeout.
                assert!(timed);
            });
            h.join();
        });
        assert!(report.complete);
    }

    #[test]
    fn wait_timeout_notify_still_wins() {
        let report = model(|| {
            let m = Arc::new(Mutex::new(false));
            let cv = Arc::new(Condvar::new());
            let (m2, cv2) = (Arc::clone(&m), Arc::clone(&cv));
            let h = thread::spawn(move || {
                let mut g = m2.lock();
                while !*g {
                    let (g2, timed) = cv2.wait_timeout(g, Duration::from_millis(1));
                    g = g2;
                    if timed {
                        break;
                    }
                }
                // Whether woken by the notify or by the quiescence timeout,
                // the predicate must hold by then: the notifier set it
                // before notifying, and the timeout only fires once the
                // notifier can no longer run.
                assert!(*g);
            });
            {
                let mut g = m.lock();
                *g = true;
                cv.notify_one();
            }
            h.join();
        });
        assert!(report.complete);
    }

    #[test]
    fn preemption_bound_prunes_schedules() {
        let run = |bound| {
            Builder {
                max_preemptions: bound,
                ..Builder::default()
            }
            .check(|| {
                let m = Arc::new(Mutex::new(0u32));
                let mut hs = Vec::new();
                for _ in 0..3 {
                    let m = Arc::clone(&m);
                    hs.push(thread::spawn(move || {
                        *m.lock() += 1;
                    }));
                }
                for h in hs {
                    h.join();
                }
                assert_eq!(*m.lock(), 3);
            })
        };
        let bounded = run(Some(1));
        let free = run(None);
        assert!(bounded.complete && free.complete);
        assert!(
            bounded.schedules < free.schedules,
            "bound {} !< free {}",
            bounded.schedules,
            free.schedules
        );
    }
}
