//! Cross-platform integration: the three processors agree functionally and
//! their simulated performance relations hold (the paper's headline
//! claims as invariants).

use mmm_align::{best_engine, best_mm2_engine, AlignMode, Scoring};
use mmm_gpu::{simulate_batch, DeviceSpec, GpuKernelKind, KernelJob, StreamConfig};
use mmm_knl::{
    simulate_pipeline, AffinityPolicy, MemoryMode, PipelineParams, WorkBatch, KNL_7210,
    XEON_GOLD_5115,
};

fn pairs(n: usize, len: usize) -> Vec<(Vec<u8>, Vec<u8>)> {
    (0..n)
        .map(|k| {
            let t: Vec<u8> = (0..len).map(|i| ((i * 7 + k) % 4) as u8).collect();
            let mut q = t.clone();
            for i in (0..len).step_by(11) {
                q[i] = (q[i] + 1) % 4;
            }
            (t, q)
        })
        .collect()
}

#[test]
fn gpu_simulation_is_bit_identical_to_cpu() {
    let sc = Scoring::MAP_PB;
    let jobs: Vec<KernelJob> = pairs(10, 700)
        .into_iter()
        .map(|(t, q)| KernelJob {
            target: t,
            query: q,
            with_path: true,
        })
        .collect();
    let cfg = StreamConfig::default();
    let rep = simulate_batch(&jobs, &sc, &cfg, &DeviceSpec::V100);
    for (run, job) in rep.runs.iter().zip(&jobs) {
        let cpu = best_engine().align(&job.target, &job.query, &sc, AlignMode::Global, true);
        assert_eq!(run.result, cpu);
    }
}

#[test]
fn headline_claim_gpu_kernel_speedup() {
    // §Abstract: up to 4.5× on the base-level alignment step; the GPU
    // kernel comparison lands at ~3× (Figure 8).
    let sc = Scoring::MAP_PB;
    let jobs: Vec<KernelJob> = pairs(32, 4_000)
        .into_iter()
        .map(|(t, q)| KernelJob {
            target: t,
            query: q,
            with_path: false,
        })
        .collect();
    let t_many = simulate_batch(
        &jobs,
        &sc,
        &StreamConfig {
            kind: GpuKernelKind::Manymap,
            ..Default::default()
        },
        &DeviceSpec::V100,
    )
    .sim_seconds;
    let t_mm2 = simulate_batch(
        &jobs,
        &sc,
        &StreamConfig {
            kind: GpuKernelKind::Mm2,
            ..Default::default()
        },
        &DeviceSpec::V100,
    )
    .sim_seconds;
    let speedup = t_mm2 / t_many;
    assert!(speedup > 2.0 && speedup < 4.5, "gpu speedup {speedup}");
}

#[test]
fn headline_claim_cpu_kernel_speedup() {
    // CPU micro: manymap ≥ minimap2 (measured; the margin depends on the
    // host, §5.2.1 reports 1.1–2.2×). Use medians to tame timing noise.
    let sc = Scoring::MAP_PB;
    let (t, q) = &pairs(1, 4_000)[0];
    let measure = |e: mmm_align::Engine| {
        let mut v: Vec<f64> = (0..7)
            .map(|_| {
                let s = std::time::Instant::now();
                std::hint::black_box(e.align(t, q, &sc, AlignMode::Global, false));
                s.elapsed().as_secs_f64()
            })
            .collect();
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        v[3]
    };
    let many = measure(best_engine());
    let mm2 = measure(best_mm2_engine());
    // Generous noise margin: manymap must not be meaningfully slower.
    assert!(many < mm2 * 1.15, "manymap {many} vs minimap2 {mm2}");
}

#[test]
fn knl_overall_beats_its_minimap2_port() {
    // Figure 11 / Table 5: manymap's KNL configuration (mmap + 3-thread
    // pipeline + optimized affinity + sorting) outruns the direct port.
    let batch = WorkBatch {
        chain_cost: vec![0.003; 128],
        align_cost: vec![0.012; 128],
        in_cost: 1.0,
        out_cost: 1.0,
    };
    let batches = vec![batch.clone(), batch.clone(), batch];
    let manymap = PipelineParams::default();
    let port = PipelineParams {
        dedicated_io: false,
        mmap_input: false,
        sort_by_length: false,
        affinity: AffinityPolicy::Scatter,
    };
    let t_many = simulate_pipeline(&KNL_7210, 256, &batches, &manymap).total;
    let t_port = simulate_pipeline(&KNL_7210, 256, &batches, &port).total;
    assert!(t_many < t_port, "manymap {t_many} vs port {t_port}");
}

#[test]
fn cpu_remains_most_efficient_end_to_end() {
    // §6: "a high-end server CPU is still the most efficient platform for
    // long read alignment tasks" — the 40-thread CPU model beats the
    // 256-thread KNL model on the same workload.
    let batch = WorkBatch {
        chain_cost: vec![0.003; 256],
        align_cost: vec![0.012; 256],
        in_cost: 0.5,
        out_cost: 0.5,
    };
    let batches = vec![batch.clone(), batch];
    let p = PipelineParams::default();
    let cpu = simulate_pipeline(&XEON_GOLD_5115, 40, &batches, &p).total;
    let knl = simulate_pipeline(&KNL_7210, 256, &batches, &p).total;
    assert!(cpu < knl, "cpu {cpu} vs knl {knl}");
}

#[test]
fn mcdram_policy_matches_capacity() {
    use mmm_knl::memory::choose_mode;
    assert_eq!(choose_mode(8 << 30), MemoryMode::Mcdram);
    assert_eq!(choose_mode(20 << 30), MemoryMode::Ddr);
}
