//! End-to-end integration: genome → index → serialize → map → evaluate.

use manymap::{MapOpts, Mapper};
use mmm_index::{load_index, load_index_mmap, save_index, MinimizerIndex};
use mmm_seq::{nt4_decode, SeqRecord};
use mmm_simreads::{
    evaluate, generate_genome, simulate_reads, GenomeOpts, MappingCall, Platform, SimOpts,
};

fn dataset(platform: Platform, n: usize) -> (Vec<u8>, Vec<mmm_simreads::SimulatedRead>) {
    let genome = generate_genome(&GenomeOpts {
        len: 300_000,
        repeat_frac: 0.05,
        seed: 99,
        ..Default::default()
    });
    let reads = simulate_reads(
        &genome,
        &SimOpts {
            platform,
            num_reads: n,
            seed: 5,
        },
    );
    (genome, reads)
}

fn map_all(mapper: &Mapper<'_>, reads: &[mmm_simreads::SimulatedRead]) -> Vec<MappingCall> {
    reads
        .iter()
        .enumerate()
        .filter_map(|(i, r)| {
            mapper
                .map_read(&r.seq)
                .into_iter()
                .find(|m| m.primary)
                .map(|m| MappingCall {
                    read_id: i,
                    rid: m.rid,
                    ref_start: m.ref_start,
                    ref_end: m.ref_end,
                    rev: m.rev,
                    mapq: m.mapq,
                })
        })
        .collect()
}

#[test]
fn pacbio_reads_map_accurately() {
    let (genome, reads) = dataset(Platform::PacBio, 60);
    let opts = MapOpts::map_pb();
    let index =
        MinimizerIndex::build(&[SeqRecord::new("chr1", nt4_decode(&genome))], &opts.idx).unwrap();
    let mapper = Mapper::new(&index, opts);
    let calls = map_all(&mapper, &reads);
    let truths: Vec<_> = reads.iter().map(|r| r.origin).collect();
    let s = evaluate(&calls, &truths);
    assert!(
        s.mapped_frac() > 0.9,
        "mapped {}/{}",
        s.mapped,
        s.total_reads
    );
    assert!(
        s.error_rate_pct() < 5.0,
        "error rate {:.2}%",
        s.error_rate_pct()
    );
}

#[test]
fn nanopore_reads_map_accurately() {
    let (genome, reads) = dataset(Platform::Nanopore, 60);
    let opts = MapOpts::map_ont();
    let index =
        MinimizerIndex::build(&[SeqRecord::new("chr1", nt4_decode(&genome))], &opts.idx).unwrap();
    let mapper = Mapper::new(&index, opts);
    let calls = map_all(&mapper, &reads);
    let truths: Vec<_> = reads.iter().map(|r| r.origin).collect();
    let s = evaluate(&calls, &truths);
    assert!(
        s.mapped_frac() > 0.9,
        "mapped {}/{}",
        s.mapped,
        s.total_reads
    );
    assert!(
        s.error_rate_pct() < 5.0,
        "error rate {:.2}%",
        s.error_rate_pct()
    );
}

#[test]
fn serialized_index_maps_identically_via_both_loaders() {
    let (genome, reads) = dataset(Platform::PacBio, 15);
    let opts = MapOpts::map_pb();
    let index =
        MinimizerIndex::build(&[SeqRecord::new("chr1", nt4_decode(&genome))], &opts.idx).unwrap();
    let path = std::env::temp_dir().join(format!("e2e-idx-{}.mmx", std::process::id()));
    save_index(&index, &path).unwrap();
    let (buffered, stats_b) = load_index(&path).unwrap();
    let (mapped, stats_m) = load_index_mmap(&path).unwrap();
    std::fs::remove_file(&path).unwrap();

    // The mmap loader touches the file once; the buffered loader is
    // fragmented — the I/O contrast of §4.4.2.
    assert_eq!(stats_m.read_calls, 1);
    assert!(stats_b.read_calls > 100 * stats_m.read_calls);

    let m0 = Mapper::new(&index, opts);
    let m1 = Mapper::new(&buffered, opts);
    let m2 = Mapper::new(&mapped, opts);
    for r in &reads {
        let a = m0.map_read(&r.seq);
        let b = m1.map_read(&r.seq);
        let c = m2.map_read(&r.seq);
        assert_eq!(a.len(), b.len());
        assert_eq!(b.len(), c.len());
        for ((x, y), z) in a.iter().zip(&b).zip(&c) {
            assert_eq!(x.align_score, y.align_score);
            assert_eq!(y.align_score, z.align_score);
            assert_eq!(x.cigar, z.cigar);
        }
    }
}

#[test]
fn every_kernel_engine_maps_identically() {
    use mmm_align::Engine;
    let (genome, reads) = dataset(Platform::PacBio, 8);
    let base_opts = MapOpts::map_pb();
    let index = MinimizerIndex::build(
        &[SeqRecord::new("chr1", nt4_decode(&genome))],
        &base_opts.idx,
    )
    .unwrap();
    let reference = Mapper::new(&index, base_opts);
    let ref_maps: Vec<_> = reads.iter().map(|r| reference.map_read(&r.seq)).collect();
    for e in Engine::all().into_iter().filter(|e| e.is_available()) {
        let m = Mapper::new(&index, base_opts.with_engine(e));
        for (r, expect) in reads.iter().zip(&ref_maps) {
            let got = m.map_read(&r.seq);
            assert_eq!(got.len(), expect.len(), "{}", e.label());
            for (g, x) in got.iter().zip(expect) {
                assert_eq!(g.align_score, x.align_score, "{}", e.label());
                assert_eq!(g.cigar, x.cigar, "{}", e.label());
                assert_eq!(
                    (g.ref_start, g.ref_end),
                    (x.ref_start, x.ref_end),
                    "{}",
                    e.label()
                );
            }
        }
    }
}

#[test]
fn paf_output_is_well_formed() {
    let (genome, reads) = dataset(Platform::Nanopore, 10);
    let opts = MapOpts::map_ont();
    let index =
        MinimizerIndex::build(&[SeqRecord::new("chr1", nt4_decode(&genome))], &opts.idx).unwrap();
    let mapper = Mapper::new(&index, opts);
    for r in &reads {
        for m in mapper.map_read(&r.seq) {
            let line = manymap::paf_line(&r.name, r.seq.len(), "chr1", genome.len(), &m);
            let cols: Vec<&str> = line.split('\t').collect();
            assert!(cols.len() >= 12, "{line}");
            let qs: usize = cols[2].parse().unwrap();
            let qe: usize = cols[3].parse().unwrap();
            let ts: usize = cols[7].parse().unwrap();
            let te: usize = cols[8].parse().unwrap();
            assert!(qs < qe && qe <= r.seq.len(), "{line}");
            assert!(ts < te && te <= genome.len(), "{line}");
            let matches: u64 = cols[9].parse().unwrap();
            let block: u64 = cols[10].parse().unwrap();
            assert!(matches <= block, "{line}");
        }
    }
}
