//! Cross-crate property tests: invariants that must hold for arbitrary
//! inputs, spanning index → chain → align.

use proptest::prelude::*;

use mmm_align::{
    align_manymap_2p, best_engine, fullmatrix2, AlignMode, Cigar, CigarOp, Scoring, Scoring2,
};
use mmm_chain::{chain_anchors, ChainOpts};
use mmm_index::{IdxOpts, MinimizerIndex};
use mmm_seq::{nt4_decode, revcomp4, SeqRecord};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The minimizer sketch is a subsequence-sampling scheme: mapping an
    /// exact substring of an indexed genome always produces anchors lying
    /// on the true diagonal.
    #[test]
    fn exact_substrings_always_anchor_on_the_diagonal(
        seed in 0u64..1000,
        start in 0usize..10_000,
        len in 1_000usize..3_000,
    ) {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let genome: Vec<u8> = (0..20_000).map(|_| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) % 4) as u8
        }).collect();
        let idx = MinimizerIndex::build(
            &[SeqRecord::new("g", nt4_decode(&genome))],
            &IdxOpts::MAP_ONT,
        )
        .unwrap();
        let start = start.min(genome.len() - len);
        let query = genome[start..start + len].to_vec();
        let anchors = idx.collect_anchors(&query);
        prop_assume!(!anchors.is_empty());
        let on_diag = anchors
            .iter()
            .filter(|a| !a.rev && a.rpos as i64 - a.qpos as i64 == start as i64)
            .count();
        // Random 20 kb sequences can have chance k-mer repeats, but the
        // true diagonal must dominate.
        prop_assert!(on_diag * 2 > anchors.len(), "{on_diag}/{}", anchors.len());
    }

    /// Chains returned by the chaining DP are strictly colinear.
    #[test]
    fn chains_are_strictly_colinear(
        seed in 0u64..1000,
        n_anchors in 5usize..80,
    ) {
        let mut state = seed | 1;
        let mut rnd = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 33) as u32
        };
        let anchors: Vec<mmm_chain::Anchor> = (0..n_anchors)
            .map(|_| mmm_chain::Anchor {
                rid: rnd() % 2,
                rpos: 100 + rnd() % 50_000,
                qpos: 100 + rnd() % 5_000,
                rev: rnd() % 2 == 0,
                span: 15,
            })
            .collect();
        let opts = ChainOpts { min_score: 1, min_cnt: 1, ..Default::default() };
        for chain in chain_anchors(anchors, &opts) {
            for w in chain.anchors.windows(2) {
                prop_assert_eq!(w[0].rid, w[1].rid);
                prop_assert_eq!(w[0].rev, w[1].rev);
                prop_assert!(w[0].rpos < w[1].rpos);
                prop_assert!(w[0].qpos < w[1].qpos);
            }
        }
    }

    /// Aligning (T, Q) and (revcomp T, revcomp Q) must give the same global
    /// score — affine-gap alignment is strand-symmetric.
    #[test]
    fn alignment_is_strand_symmetric(
        t in proptest::collection::vec(0u8..4, 10..200),
        q in proptest::collection::vec(0u8..4, 10..200),
    ) {
        let sc = Scoring::MAP_ONT;
        let e = best_engine();
        let fwd = e.align(&t, &q, &sc, AlignMode::Global, false).score;
        let rev = e.align(&revcomp4(&t), &revcomp4(&q), &sc, AlignMode::Global, false).score;
        prop_assert_eq!(fwd, rev);
    }

    /// Global score is an upper-boundable function: semi-global ≥ global
    /// (free ends can only help), and both are ≤ perfect-match score.
    #[test]
    fn mode_score_ordering(
        t in proptest::collection::vec(0u8..4, 5..150),
        q in proptest::collection::vec(0u8..4, 5..150),
    ) {
        let sc = Scoring::MAP_ONT;
        let e = best_engine();
        let global = e.align(&t, &q, &sc, AlignMode::Global, false).score;
        let semi = e.align(&t, &q, &sc, AlignMode::SemiGlobal, false).score;
        prop_assert!(semi >= global);
        let perfect = sc.a * t.len().min(q.len()) as i32;
        prop_assert!(semi <= perfect);
    }

    /// Backtracked CIGARs are well-formed and re-score to the reported
    /// score, which itself matches the 32-bit full-matrix reference — in
    /// every alignment mode.
    #[test]
    fn backtracked_cigars_rescore_to_the_reported_score(
        t in proptest::collection::vec(0u8..4, 5..180),
        q in proptest::collection::vec(0u8..4, 5..180),
    ) {
        let sc = Scoring::MAP_ONT;
        let e = best_engine();
        for mode in [
            AlignMode::Global,
            AlignMode::SemiGlobal,
            AlignMode::TargetSuffixFree,
            AlignMode::QuerySuffixFree,
        ] {
            let r = e.align(&t, &q, &sc, mode, true);
            let gold = mmm_align::fullmatrix::align(&t, &q, &sc, mode, false);
            prop_assert_eq!(r.score, gold.score, "mode={:?}", mode);
            let cigar = r.cigar.expect("with_path must produce a cigar");
            prop_assert!(cigar.target_len() as usize <= t.len());
            prop_assert!(cigar.query_len() as usize <= q.len());
            prop_assert_eq!(cigar.score(&t, &q, &sc), r.score, "mode={:?}", mode);
            if mode == AlignMode::Global {
                // A global path consumes both sequences exactly.
                prop_assert_eq!(cigar.target_len() as usize, t.len());
                prop_assert_eq!(cigar.query_len() as usize, q.len());
            }
        }
    }

    /// The two-piece kernel's backtrack (backtrack2) produces paths that
    /// re-score — under the two-piece gap model — to the score of the
    /// 32-bit two-piece reference.
    #[test]
    fn twopiece_backtrack_rescores_under_the_two_piece_model(
        t in proptest::collection::vec(0u8..4, 5..150),
        q in proptest::collection::vec(0u8..4, 5..150),
    ) {
        let sc = Scoring2::LONG_READ;
        for mode in [AlignMode::Global, AlignMode::SemiGlobal] {
            let r = align_manymap_2p(&t, &q, &sc, mode, true);
            let gold = fullmatrix2(&t, &q, &sc, mode, false);
            prop_assert_eq!(r.score, gold.score, "mode={:?}", mode);
            let cigar = r.cigar.expect("with_path must produce a cigar");
            prop_assert_eq!(score2(&cigar, &t, &q, &sc), r.score, "mode={:?}", mode);
            if mode == AlignMode::Global {
                prop_assert_eq!(cigar.target_len() as usize, t.len());
                prop_assert_eq!(cigar.query_len() as usize, q.len());
            }
        }
    }
}

/// Re-derive a path's score under the two-piece gap model
/// `gap(l) = min(q + l·e, q2 + l·e2)`.
fn score2(cigar: &Cigar, target: &[u8], query: &[u8], sc: &Scoring2) -> i32 {
    let (mut i, mut j, mut s) = (0usize, 0usize, 0i32);
    for &(op, len) in cigar.runs() {
        match op {
            CigarOp::Match => {
                for _ in 0..len {
                    s += sc.subst(target[i], query[j]);
                    i += 1;
                    j += 1;
                }
            }
            CigarOp::Del => {
                s -= sc.gap_cost(len);
                i += len as usize;
            }
            CigarOp::Ins => {
                s -= sc.gap_cost(len);
                j += len as usize;
            }
            CigarOp::SoftClip => j += len as usize,
        }
    }
    s
}
