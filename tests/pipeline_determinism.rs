//! The parallel pipelines must produce byte-identical output to a serial
//! run, regardless of thread count, batch sorting or pipeline design.

use std::sync::Mutex;

use manymap::{MapOpts, Mapper};
use mmm_index::MinimizerIndex;
use mmm_pipeline::{run_three_thread, run_two_thread};
use mmm_seq::{nt4_decode, SeqRecord};
use mmm_simreads::{generate_genome, simulate_reads, GenomeOpts, Platform, SimOpts};

fn workload() -> (MinimizerIndex, Vec<Vec<u8>>, MapOpts) {
    let genome = generate_genome(&GenomeOpts {
        len: 200_000,
        repeat_frac: 0.0,
        seed: 31,
        ..Default::default()
    });
    let opts = MapOpts::map_ont();
    let index =
        MinimizerIndex::build(&[SeqRecord::new("chr1", nt4_decode(&genome))], &opts.idx).unwrap();
    let reads = simulate_reads(
        &genome,
        &SimOpts {
            platform: Platform::Nanopore,
            num_reads: 40,
            seed: 13,
        },
    );
    (index, reads.into_iter().map(|r| r.seq).collect(), opts)
}

fn serial_output(mapper: &Mapper<'_>, reads: &[Vec<u8>]) -> Vec<String> {
    reads
        .iter()
        .map(|r| {
            mapper
                .map_read(r)
                .iter()
                .map(|m| {
                    format!(
                        "{}:{}-{} {} {}",
                        m.rid, m.ref_start, m.ref_end, m.rev, m.align_score
                    )
                })
                .collect::<Vec<_>>()
                .join(";")
        })
        .collect()
}

fn feeder(reads: &[Vec<u8>], batch: usize) -> impl FnMut() -> Option<Vec<Vec<u8>>> + Send {
    let mut chunks: Vec<Vec<Vec<u8>>> = reads.chunks(batch).map(|c| c.to_vec()).collect();
    chunks.reverse();
    move || chunks.pop()
}

#[test]
fn three_thread_pipeline_matches_serial() {
    let (index, reads, opts) = workload();
    let mapper = Mapper::new(&index, opts);
    let expect = serial_output(&mapper, &reads);

    for threads in [1, 2, 4] {
        for sort in [false, true] {
            let out = Mutex::new(Vec::new());
            run_three_thread(
                feeder(&reads, 7),
                |r: &Vec<u8>| {
                    mapper
                        .map_read(r)
                        .iter()
                        .map(|m| {
                            format!(
                                "{}:{}-{} {} {}",
                                m.rid, m.ref_start, m.ref_end, m.rev, m.align_score
                            )
                        })
                        .collect::<Vec<_>>()
                        .join(";")
                },
                |r| r.len(),
                |batch| out.lock().unwrap().extend(batch),
                threads,
                sort,
            );
            assert_eq!(
                out.into_inner().unwrap(),
                expect,
                "threads={threads} sort={sort}"
            );
        }
    }
}

#[test]
fn two_thread_pipeline_matches_serial() {
    let (index, reads, opts) = workload();
    let mapper = Mapper::new(&index, opts);
    let expect = serial_output(&mapper, &reads);

    let out = Mutex::new(Vec::new());
    run_two_thread(
        feeder(&reads, 9),
        |r: &Vec<u8>| {
            mapper
                .map_read(r)
                .iter()
                .map(|m| {
                    format!(
                        "{}:{}-{} {} {}",
                        m.rid, m.ref_start, m.ref_end, m.rev, m.align_score
                    )
                })
                .collect::<Vec<_>>()
                .join(";")
        },
        |batch| out.lock().unwrap().extend(batch),
        3,
    );
    assert_eq!(out.into_inner().unwrap(), expect);
}
