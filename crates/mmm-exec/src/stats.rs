//! Per-backend execution statistics.
//!
//! Every [`submit`](crate::AlignBackend::submit) returns the stats for that
//! batch; callers accumulate them with [`BackendStats::merge`] and print
//! one [`summary`](BackendStats::summary) line at the end of a run.

/// Counters from one batch (or, after merging, a whole run).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct BackendStats {
    /// Batches submitted.
    pub batches: u64,
    /// Jobs executed.
    pub jobs: u64,
    /// Total DP cells across all jobs.
    pub cells: u64,
    /// Jobs routed to the CPU because the device could not take them
    /// (oversized footprint or unsupported boundary mode). Always zero for
    /// the CPU backend.
    pub fallbacks: u64,
    /// Peak concurrently-executing kernels observed on the device.
    pub max_stream_concurrency: usize,
    /// Bytes served from the device memory pool.
    pub bytes_pooled: u64,
    /// Pool requests too large for a per-stream slab.
    pub pool_rejections: u64,
    /// Simulated device wall time, seconds.
    pub device_seconds: f64,
    /// Host wall time spent on fallback jobs, seconds.
    pub fallback_seconds: f64,
}

impl BackendStats {
    /// Fold another batch's counters into this accumulator.
    pub fn merge(&mut self, other: &BackendStats) {
        self.batches += other.batches;
        self.jobs += other.jobs;
        self.cells += other.cells;
        self.fallbacks += other.fallbacks;
        self.max_stream_concurrency = self
            .max_stream_concurrency
            .max(other.max_stream_concurrency);
        self.bytes_pooled += other.bytes_pooled;
        self.pool_rejections += other.pool_rejections;
        self.device_seconds += other.device_seconds;
        self.fallback_seconds += other.fallback_seconds;
    }

    /// One stderr-ready line, e.g. for the CLI's run summary.
    pub fn summary(&self, label: &str) -> String {
        let mut line = format!(
            "backend {label}: {} jobs in {} batches, {:.2} Gcells",
            self.jobs,
            self.batches,
            self.cells as f64 / 1e9
        );
        if label != "cpu" {
            line.push_str(&format!(
                ", {} cpu-fallbacks, peak {} concurrent kernels, {:.1} MB pooled ({} slab rejections)",
                self.fallbacks,
                self.max_stream_concurrency,
                self.bytes_pooled as f64 / 1e6,
                self.pool_rejections,
            ));
        }
        line
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_adds_counts_and_maxes_concurrency() {
        let mut a = BackendStats {
            batches: 1,
            jobs: 10,
            cells: 100,
            fallbacks: 1,
            max_stream_concurrency: 4,
            bytes_pooled: 50,
            pool_rejections: 0,
            device_seconds: 0.5,
            fallback_seconds: 0.1,
        };
        let b = BackendStats {
            batches: 2,
            jobs: 5,
            cells: 10,
            fallbacks: 0,
            max_stream_concurrency: 9,
            bytes_pooled: 25,
            pool_rejections: 3,
            device_seconds: 0.25,
            fallback_seconds: 0.0,
        };
        a.merge(&b);
        assert_eq!(a.batches, 3);
        assert_eq!(a.jobs, 15);
        assert_eq!(a.cells, 110);
        assert_eq!(a.fallbacks, 1);
        assert_eq!(a.max_stream_concurrency, 9);
        assert_eq!(a.bytes_pooled, 75);
        assert_eq!(a.pool_rejections, 3);
    }

    #[test]
    fn summary_mentions_fallbacks_for_device_backends() {
        let s = BackendStats {
            fallbacks: 2,
            ..Default::default()
        };
        assert!(s.summary("gpu-sim").contains("2 cpu-fallbacks"));
        assert!(!s.summary("cpu").contains("fallbacks"));
    }
}
