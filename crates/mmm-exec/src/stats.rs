//! Per-backend execution statistics.
//!
//! Every [`submit`](crate::AlignBackend::submit) returns the stats for that
//! batch; callers accumulate them with [`BackendStats::merge`] and print
//! one [`summary`](BackendStats::summary) line at the end of a run.

/// Counters from one batch (or, after merging, a whole run).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct BackendStats {
    /// Batches submitted.
    pub batches: u64,
    /// Jobs executed.
    pub jobs: u64,
    /// Total DP cells across all jobs.
    pub cells: u64,
    /// Jobs routed to the CPU because the device could not take them
    /// (oversized footprint or unsupported boundary mode). Always zero for
    /// the CPU backend.
    pub fallbacks: u64,
    /// Peak concurrently-executing kernels observed on the device.
    pub max_stream_concurrency: usize,
    /// Bytes served from the device memory pool.
    pub bytes_pooled: u64,
    /// Pool requests too large for a per-stream slab.
    pub pool_rejections: u64,
    /// Simulated device wall time, seconds.
    pub device_seconds: f64,
    /// Host wall time spent on fallback jobs, seconds.
    pub fallback_seconds: f64,
    /// Fallbacks caused by a query too long for any device kernel.
    pub fallback_too_long: u64,
    /// Fallbacks caused by a non-global boundary mode the device kernels do
    /// not implement.
    pub fallback_non_global: u64,
    /// Fallbacks caused by device-memory pressure at placement time.
    pub fallback_mempool: u64,
    /// Supervisor: per-job retry attempts issued after a batch failure.
    pub retries: u64,
    /// Supervisor: jobs that ultimately succeeded after at least one failure.
    pub retried_ok: u64,
    /// Supervisor: jobs rerouted from the primary to the standby backend.
    pub rerouted: u64,
    /// Supervisor: jobs that failed on every backend and were quarantined.
    pub quarantined: u64,
    /// Supervisor: circuit-breaker Closed→Open transitions (demotions).
    pub breaker_trips: u64,
    /// Supervisor: batches abandoned by the deadline watchdog.
    pub deadline_kills: u64,
    /// Supervisor: results that arrived after their slot was poisoned and
    /// were discarded.
    pub late_results: u64,
    /// Scheduler: length-binned batches a scheduled submission was split
    /// into (zero on fifo/unscheduled submissions).
    pub sched_batches: u64,
    /// Scheduler: jobs routed pre-batch to the host executor because the
    /// primary reported them statically ineligible (giants, unsupported
    /// modes). Distinct from `fallbacks` (detected inside a device submit)
    /// and `rerouted` (a supervisor *recovery* action).
    pub sched_host_jobs: u64,
}

impl BackendStats {
    /// Fold another batch's counters into this accumulator.
    pub fn merge(&mut self, other: &BackendStats) {
        self.batches += other.batches;
        self.jobs += other.jobs;
        self.cells += other.cells;
        self.fallbacks += other.fallbacks;
        self.max_stream_concurrency = self
            .max_stream_concurrency
            .max(other.max_stream_concurrency);
        self.bytes_pooled += other.bytes_pooled;
        self.pool_rejections += other.pool_rejections;
        self.device_seconds += other.device_seconds;
        self.fallback_seconds += other.fallback_seconds;
        self.fallback_too_long += other.fallback_too_long;
        self.fallback_non_global += other.fallback_non_global;
        self.fallback_mempool += other.fallback_mempool;
        self.retries += other.retries;
        self.retried_ok += other.retried_ok;
        self.rerouted += other.rerouted;
        self.quarantined += other.quarantined;
        self.breaker_trips += other.breaker_trips;
        self.deadline_kills += other.deadline_kills;
        self.late_results += other.late_results;
        self.sched_batches += other.sched_batches;
        self.sched_host_jobs += other.sched_host_jobs;
    }

    /// Did the supervisor intervene at all during the run?
    pub fn supervised_activity(&self) -> bool {
        self.retries
            + self.retried_ok
            + self.rerouted
            + self.quarantined
            + self.breaker_trips
            + self.deadline_kills
            + self.late_results
            > 0
    }

    /// One stderr-ready line, e.g. for the CLI's run summary.
    pub fn summary(&self, label: &str) -> String {
        let mut line = format!(
            "backend {label}: {} jobs in {} batches, {:.2} Gcells",
            self.jobs,
            self.batches,
            self.cells as f64 / 1e9
        );
        if label != "cpu" {
            line.push_str(&format!(
                ", {} cpu-fallbacks, peak {} concurrent kernels, {:.1} MB pooled ({} slab rejections)",
                self.fallbacks,
                self.max_stream_concurrency,
                self.bytes_pooled as f64 / 1e6,
                self.pool_rejections,
            ));
            if self.fallbacks > 0 {
                line.push_str(&format!(
                    " [fallback reasons: {} too-long, {} non-global, {} mempool]",
                    self.fallback_too_long, self.fallback_non_global, self.fallback_mempool,
                ));
            }
        }
        if self.sched_batches > 0 {
            line.push_str(&format!(
                ", scheduler: {} binned batch(es), {} host-routed job(s)",
                self.sched_batches, self.sched_host_jobs,
            ));
        }
        line
    }

    /// Supervisor activity line, or `None` when the run needed no
    /// intervention (keeps clean-run stderr identical to pre-supervisor
    /// output).
    pub fn supervisor_summary(&self, label: &str) -> Option<String> {
        if !self.supervised_activity() {
            return None;
        }
        Some(format!(
            "supervisor {label}: {} retries ({} jobs recovered), {} rerouted, \
             {} quarantined, {} breaker-trips, {} deadline-kills, {} late-results",
            self.retries,
            self.retried_ok,
            self.rerouted,
            self.quarantined,
            self.breaker_trips,
            self.deadline_kills,
            self.late_results,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_adds_counts_and_maxes_concurrency() {
        let mut a = BackendStats {
            batches: 1,
            jobs: 10,
            cells: 100,
            fallbacks: 1,
            max_stream_concurrency: 4,
            bytes_pooled: 50,
            pool_rejections: 0,
            device_seconds: 0.5,
            fallback_seconds: 0.1,
            retries: 2,
            quarantined: 1,
            ..Default::default()
        };
        let b = BackendStats {
            batches: 2,
            jobs: 5,
            cells: 10,
            fallbacks: 0,
            max_stream_concurrency: 9,
            bytes_pooled: 25,
            pool_rejections: 3,
            device_seconds: 0.25,
            fallback_seconds: 0.0,
            retries: 3,
            breaker_trips: 1,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.batches, 3);
        assert_eq!(a.jobs, 15);
        assert_eq!(a.cells, 110);
        assert_eq!(a.fallbacks, 1);
        assert_eq!(a.max_stream_concurrency, 9);
        assert_eq!(a.bytes_pooled, 75);
        assert_eq!(a.pool_rejections, 3);
        assert_eq!(a.retries, 5);
        assert_eq!(a.quarantined, 1);
        assert_eq!(a.breaker_trips, 1);
    }

    #[test]
    fn summary_mentions_fallbacks_for_device_backends() {
        let s = BackendStats {
            fallbacks: 2,
            ..Default::default()
        };
        assert!(s.summary("gpu-sim").contains("2 cpu-fallbacks"));
        assert!(!s.summary("cpu").contains("fallbacks"));
    }

    #[test]
    fn summary_breaks_down_fallback_reasons_when_present() {
        let s = BackendStats {
            fallbacks: 3,
            fallback_too_long: 1,
            fallback_non_global: 0,
            fallback_mempool: 2,
            ..Default::default()
        };
        let line = s.summary("gpu-sim");
        assert!(line.contains("1 too-long"), "{line}");
        assert!(line.contains("2 mempool"), "{line}");
        let clean = BackendStats::default().summary("gpu-sim");
        assert!(!clean.contains("fallback reasons"), "{clean}");
    }

    #[test]
    fn summary_reports_scheduler_activity_only_when_present() {
        let mut s = BackendStats {
            sched_batches: 3,
            sched_host_jobs: 2,
            ..Default::default()
        };
        let line = s.summary("gpu-sim");
        assert!(line.contains("3 binned batch(es)"), "{line}");
        assert!(line.contains("2 host-routed job(s)"), "{line}");
        assert!(!BackendStats::default()
            .summary("gpu-sim")
            .contains("scheduler"));
        let other = BackendStats {
            sched_batches: 1,
            sched_host_jobs: 4,
            ..Default::default()
        };
        s.merge(&other);
        assert_eq!(s.sched_batches, 4);
        assert_eq!(s.sched_host_jobs, 6);
    }

    #[test]
    fn supervisor_summary_is_silent_on_clean_runs() {
        assert_eq!(BackendStats::default().supervisor_summary("cpu"), None);
        let s = BackendStats {
            retries: 4,
            retried_ok: 2,
            quarantined: 1,
            ..Default::default()
        };
        let line = s.supervisor_summary("gpu-sim").unwrap();
        assert!(line.contains("4 retries"), "{line}");
        assert!(line.contains("2 jobs recovered"), "{line}");
        assert!(line.contains("1 quarantined"), "{line}");
    }
}
