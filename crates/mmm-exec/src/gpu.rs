//! The simulated GPU/SIMT backend.
//!
//! Wraps [`GpuAligner`] — concurrent streams, a resident per-stream memory
//! pool, the paper's §4.5 launch configuration — and routes jobs the device
//! model cannot take (with-path footprints past device memory, or boundary
//! modes the batch kernel does not implement) to the CPU executor, exactly
//! the oversized-pair fallback of §4.5.2. Functional results are
//! bit-identical to the CPU backend by construction: the simulated kernels
//! compute with the same difference-recurrence semantics the host SIMD
//! tiers are property-tested against.

use mmm_align::{AlignMode, AlignResult};
use mmm_gpu::kernel::kernel_footprint;
use mmm_gpu::{DeviceSpec, GpuAligner, KernelJob, StreamConfig};

use crate::backend::{AlignBackend, BackendOptions};
use crate::cpu::CpuSimdBackend;
use crate::error::BackendError;
use crate::fault::FaultHook;
use crate::job::AlignJob;
use crate::stats::BackendStats;

/// Why a job could not run on the device and was routed to the host.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum FallbackReason {
    /// Device footprint exceeds global memory — the pair is too long.
    TooLong,
    /// Boundary mode the batch kernel does not implement.
    NonGlobal,
}

/// Simulated-device execution session.
pub struct GpuSimtBackend {
    aligner: GpuAligner,
    /// Host executor for routed fallbacks. Built without a fault plan: the
    /// fallback path is internal to one submit, not a separate seam.
    cpu: CpuSimdBackend,
    /// Chaos-testing schedule for this session's `submit` calls.
    fault: FaultHook,
}

impl GpuSimtBackend {
    pub fn new(opts: &BackendOptions) -> Self {
        let mut device = DeviceSpec::V100;
        if let Some(mem) = opts.device_mem {
            device.global_mem = mem;
        }
        let mut config = StreamConfig::default();
        if let Some(streams) = opts.streams {
            config.streams = streams.max(1);
        }
        let host_opts = BackendOptions {
            fault: None,
            ..opts.clone()
        };
        GpuSimtBackend {
            aligner: GpuAligner::with_config(device, config, opts.scoring),
            cpu: CpuSimdBackend::new(&host_opts),
            fault: FaultHook::new(opts.fault.clone()),
        }
    }

    /// Why the device model cannot execute a job, if it can't: the batch
    /// kernel implements global alignment only, and the job's device
    /// footprint must fit in global memory.
    fn fallback_reason(&self, job: &AlignJob) -> Option<FallbackReason> {
        if job.mode != AlignMode::Global {
            return Some(FallbackReason::NonGlobal);
        }
        if kernel_footprint(job.target.len(), job.query.len(), job.with_path)
            > self.aligner.device.global_mem
        {
            return Some(FallbackReason::TooLong);
        }
        None
    }

    /// Pool high-water mark since the session was prepared (bytes).
    pub fn pool_peak_used(&self) -> u64 {
        self.aligner.pool_peak_used()
    }
}

impl AlignBackend for GpuSimtBackend {
    fn label(&self) -> &'static str {
        "gpu-sim"
    }

    fn submit(
        &self,
        jobs: Vec<AlignJob>,
    ) -> Result<(Vec<AlignResult>, BackendStats), BackendError> {
        let drop_last = self.fault.begin_submit()?;
        let total = jobs.len();
        let cells: u64 = jobs.iter().map(AlignJob::cells).sum();

        // Split: device-eligible jobs go to the stream scheduler, the rest
        // to the host. Indices remember where each result belongs.
        let mut device_jobs: Vec<KernelJob> = Vec::new();
        let mut device_idx: Vec<usize> = Vec::new();
        let mut host_jobs: Vec<AlignJob> = Vec::new();
        let mut host_idx: Vec<usize> = Vec::new();
        let mut too_long = 0u64;
        let mut non_global = 0u64;
        for (i, job) in jobs.into_iter().enumerate() {
            match self.fallback_reason(&job) {
                None => {
                    device_idx.push(i);
                    device_jobs.push(KernelJob {
                        target: job.target,
                        query: job.query,
                        with_path: job.with_path,
                    });
                }
                Some(reason) => {
                    match reason {
                        FallbackReason::TooLong => too_long += 1,
                        FallbackReason::NonGlobal => non_global += 1,
                    }
                    host_idx.push(i);
                    host_jobs.push(job);
                }
            }
        }

        let routed = host_jobs.len();
        let host_start = std::time::Instant::now();
        let host_results = self.cpu.execute(&host_jobs)?;
        let routed_seconds = host_start.elapsed().as_secs_f64();

        let (device_results, gstats) = self.aligner.align_batch(device_jobs)?;

        let mut results: Vec<Option<AlignResult>> = (0..total).map(|_| None).collect();
        for (i, r) in device_idx.into_iter().zip(device_results) {
            results[i] = Some(r);
        }
        for (i, r) in host_idx.into_iter().zip(host_results) {
            results[i] = Some(r);
        }
        let mut results: Vec<AlignResult> = results.into_iter().flatten().collect();
        debug_assert_eq!(results.len(), total);
        if drop_last {
            results.pop();
        }

        // Supervisor counters (retries, trips, quarantines…) belong to
        // SupervisedBackend; a raw device session reports them as zero.
        // xtask-allow: stats-forwarding — only supervisor counters are omitted, correctly zero here.
        let stats = BackendStats {
            batches: 1,
            jobs: total as u64,
            cells,
            fallbacks: routed as u64 + gstats.fallbacks as u64,
            max_stream_concurrency: gstats.max_concurrency,
            bytes_pooled: gstats.bytes_pooled,
            pool_rejections: gstats.pool_rejections,
            device_seconds: gstats.device_seconds,
            fallback_seconds: gstats.fallback_seconds + routed_seconds,
            fallback_too_long: too_long,
            fallback_non_global: non_global,
            // Scheduler-detected placement fallbacks: device-memory pressure
            // at launch time rather than a statically oversized pair.
            fallback_mempool: gstats.fallbacks as u64,
            ..Default::default()
        };
        Ok((results, stats))
    }
}
