//! The simulated GPU/SIMT backend.
//!
//! Wraps [`GpuAligner`] — concurrent streams, a resident per-stream memory
//! pool, the paper's §4.5 launch configuration — and routes jobs the device
//! model cannot take (with-path footprints past device memory, or boundary
//! modes the batch kernel does not implement) to the CPU executor, exactly
//! the oversized-pair fallback of §4.5.2. Functional results are
//! bit-identical to the CPU backend by construction: the simulated kernels
//! compute with the same difference-recurrence semantics the host SIMD
//! tiers are property-tested against.

use mmm_align::{AlignMode, AlignResult};
use mmm_gpu::kernel::kernel_footprint;
use mmm_gpu::{DeviceSpec, GpuAligner, KernelJob, StreamConfig};

use crate::backend::{AlignBackend, BackendOptions};
use crate::cpu::CpuSimdBackend;
use crate::error::BackendError;
use crate::fault::FaultHook;
use crate::job::AlignJob;
use crate::stats::BackendStats;

/// Why a job could not run on the device and was routed to the host.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum FallbackReason {
    /// Device footprint exceeds global memory — the pair is too long.
    TooLong,
    /// Boundary mode the batch kernel does not implement.
    NonGlobal,
}

/// Simulated-device execution session.
pub struct GpuSimtBackend {
    aligner: GpuAligner,
    /// Host executor for routed fallbacks. Built without a fault plan: the
    /// fallback path is internal to one submit, not a separate seam.
    cpu: CpuSimdBackend,
    /// Chaos-testing schedule for this session's `submit` calls.
    fault: FaultHook,
}

impl GpuSimtBackend {
    pub fn new(opts: &BackendOptions) -> Self {
        let mut device = DeviceSpec::V100;
        if let Some(mem) = opts.device_mem {
            device.global_mem = mem;
        }
        let mut config = StreamConfig::default();
        if let Some(streams) = opts.streams {
            config.streams = streams.max(1);
        }
        let host_opts = BackendOptions {
            fault: None,
            ..opts.clone()
        };
        GpuSimtBackend {
            aligner: GpuAligner::with_config(device, config, opts.scoring),
            cpu: CpuSimdBackend::new(&host_opts),
            fault: FaultHook::new(opts.fault.clone()),
        }
    }

    /// Why the device model cannot execute a job, if it can't: the batch
    /// kernel implements global alignment only, and the job's device
    /// footprint must fit in global memory.
    fn fallback_reason(&self, job: &AlignJob) -> Option<FallbackReason> {
        if job.mode != AlignMode::Global {
            return Some(FallbackReason::NonGlobal);
        }
        if kernel_footprint(job.target.len(), job.query.len(), job.with_path)
            > self.aligner.device.global_mem
        {
            return Some(FallbackReason::TooLong);
        }
        None
    }

    /// Pool high-water mark since the session was prepared (bytes).
    pub fn pool_peak_used(&self) -> u64 {
        self.aligner.pool_peak_used()
    }
}

impl AlignBackend for GpuSimtBackend {
    fn label(&self) -> &'static str {
        "gpu-sim"
    }

    /// A job is device-eligible exactly when `submit` would not route it to
    /// the internal host fallback — the scheduler's pre-batch routing and
    /// the submit-time split can never disagree.
    fn device_eligible(&self, job: &AlignJob) -> bool {
        self.fallback_reason(job).is_none()
    }

    fn submit(
        &self,
        jobs: Vec<AlignJob>,
    ) -> Result<(Vec<AlignResult>, BackendStats), BackendError> {
        let drop_last = self.fault.begin_submit()?;
        let total = jobs.len();
        let cells: u64 = jobs.iter().map(AlignJob::cells).sum();

        // Split: device-eligible jobs go to the stream scheduler, the rest
        // to the host. Indices remember where each result belongs.
        let mut device_jobs: Vec<KernelJob> = Vec::new();
        let mut device_idx: Vec<usize> = Vec::new();
        let mut host_jobs: Vec<AlignJob> = Vec::new();
        let mut host_idx: Vec<usize> = Vec::new();
        let mut too_long = 0u64;
        let mut non_global = 0u64;
        for (i, job) in jobs.into_iter().enumerate() {
            match self.fallback_reason(&job) {
                None => {
                    device_idx.push(i);
                    device_jobs.push(KernelJob {
                        target: job.target,
                        query: job.query,
                        with_path: job.with_path,
                    });
                }
                Some(reason) => {
                    match reason {
                        FallbackReason::TooLong => too_long += 1,
                        FallbackReason::NonGlobal => non_global += 1,
                    }
                    host_idx.push(i);
                    host_jobs.push(job);
                }
            }
        }

        // Host fallbacks overlap the device batch instead of serializing in
        // front of it: a scoped thread runs the routed jobs while the
        // calling thread drives `align_batch`, so one oversized pair no
        // longer adds its full CPU time to the batch's critical path. The
        // honest cost of the fallbacks is only the host wall time NOT
        // hidden under the device batch.
        let routed = host_jobs.len();
        let (host_results, routed_seconds, device_results, gstats) = if host_jobs.is_empty() {
            let (device_results, gstats) = self.aligner.align_batch(device_jobs)?;
            (Vec::new(), 0.0, device_results, gstats)
        } else {
            let start = std::time::Instant::now();
            let (host_out, device_out, device_wall) = std::thread::scope(|scope| {
                let host = scope.spawn(|| self.cpu.execute(&host_jobs));
                let dev_start = std::time::Instant::now();
                let device = self.aligner.align_batch(device_jobs);
                let device_wall = dev_start.elapsed().as_secs_f64();
                let host = host.join().unwrap_or_else(|payload| {
                    Err(BackendError::JobPanic {
                        index: 0,
                        message: format!("host fallback thread panicked: {payload:?}"),
                    })
                });
                (host, device, device_wall)
            });
            let total_wall = start.elapsed().as_secs_f64();
            let host_results = host_out?;
            let (device_results, gstats) = device_out?;
            // Wall time the fallbacks added beyond the device batch itself.
            let exposed = (total_wall - device_wall).max(0.0);
            (host_results, exposed, device_results, gstats)
        };

        let mut results: Vec<Option<AlignResult>> = (0..total).map(|_| None).collect();
        for (i, r) in device_idx.into_iter().zip(device_results) {
            results[i] = Some(r);
        }
        for (i, r) in host_idx.into_iter().zip(host_results) {
            results[i] = Some(r);
        }
        let mut results: Vec<AlignResult> = results.into_iter().flatten().collect();
        debug_assert_eq!(results.len(), total);
        if drop_last {
            results.pop();
        }

        // Supervisor counters (retries, trips, quarantines…) belong to
        // SupervisedBackend; a raw device session reports them as zero.
        // xtask-allow: stats-forwarding — only supervisor counters are omitted, correctly zero here.
        let stats = BackendStats {
            batches: 1,
            jobs: total as u64,
            cells,
            fallbacks: routed as u64 + gstats.fallbacks as u64,
            max_stream_concurrency: gstats.max_concurrency,
            bytes_pooled: gstats.bytes_pooled,
            pool_rejections: gstats.pool_rejections,
            device_seconds: gstats.device_seconds,
            // Routed fallbacks run concurrently with the device batch;
            // `routed_seconds` is only the host wall time that was NOT
            // hidden under it — the fallbacks' honest critical-path cost.
            fallback_seconds: gstats.fallback_seconds + routed_seconds,
            fallback_too_long: too_long,
            fallback_non_global: non_global,
            // Scheduler-detected placement fallbacks: device-memory pressure
            // at launch time rather than a statically oversized pair.
            fallback_mempool: gstats.fallbacks as u64,
            ..Default::default()
        };
        Ok((results, stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::MAX_PLAN_SEGMENT;
    use mmm_align::Scoring;

    /// The satellite reconciliation test: the plan-time segment cap and the
    /// submit-time too-long test must agree. A maximal planned job — both
    /// sides at [`MAX_PLAN_SEGMENT`], with path — must fit the default
    /// device, so nothing the mapper accepts can surprise-fallback at
    /// submit time on an unshrunken device.
    #[test]
    fn max_planned_job_is_device_eligible_on_the_default_device() {
        assert!(
            kernel_footprint(MAX_PLAN_SEGMENT, MAX_PLAN_SEGMENT, true)
                <= DeviceSpec::V100.global_mem,
            "a maximal plan-time job ({} bp square, with path) overflows the \
             default device — the shared limit no longer reconciles",
            MAX_PLAN_SEGMENT
        );
        let backend = GpuSimtBackend::new(&BackendOptions::new(Scoring::MAP_ONT));
        let job = AlignJob::global(
            vec![0u8; MAX_PLAN_SEGMENT],
            vec![1u8; MAX_PLAN_SEGMENT],
            true,
        );
        assert!(backend.device_eligible(&job));
    }

    /// Eligibility mirrors `fallback_reason` exactly: shrinking the device
    /// makes the same job ineligible, and non-global modes never qualify.
    #[test]
    fn eligibility_tracks_fallback_reason() {
        let mut opts = BackendOptions::new(Scoring::MAP_ONT);
        opts.device_mem = Some(16_384);
        let tiny = GpuSimtBackend::new(&opts);
        let big = AlignJob::global(vec![0u8; 200], vec![1u8; 200], true);
        assert!(!tiny.device_eligible(&big));
        let small = AlignJob::global(vec![0u8; 8], vec![1u8; 8], true);
        assert!(tiny.device_eligible(&small));
        let mut semi = small.clone();
        semi.mode = AlignMode::SemiGlobal;
        assert!(!tiny.device_eligible(&semi));
    }

    /// The overlap bugfix: with both routed host fallbacks and device work
    /// in one submit, results stay bit-identical in job order and the
    /// fallback accounting still reports every routed job.
    #[test]
    fn mixed_batch_overlaps_host_and_device_and_stays_ordered() {
        let mut opts = BackendOptions::new(Scoring::MAP_ONT);
        opts.device_mem = Some(16_384);
        let backend = GpuSimtBackend::new(&opts);
        let jobs: Vec<AlignJob> = (0..10)
            .map(|k| {
                let len = if k % 3 == 0 { 300 } else { 20 };
                AlignJob::global(
                    (0..len).map(|i| ((i * 3 + k) % 4) as u8).collect(),
                    (0..len).map(|i| ((i * 7 + k) % 4) as u8).collect(),
                    true,
                )
            })
            .collect();
        let (results, stats) = backend.submit(jobs.clone()).expect("submit");
        assert_eq!(results.len(), jobs.len());
        assert!(stats.fallback_too_long >= 1, "{stats:?}");
        assert!(stats.fallbacks < stats.jobs, "{stats:?}");
        for (r, j) in results.iter().zip(&jobs) {
            let gold = mmm_align::scalar::align_manymap(
                &j.target,
                &j.query,
                &Scoring::MAP_ONT,
                AlignMode::Global,
                true,
            );
            assert_eq!(*r, gold);
        }
    }
}
