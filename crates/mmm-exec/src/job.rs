//! The unit of work a backend executes.

use mmm_align::AlignMode;

/// Hard cap, in bases, on either side of a plan-time alignment segment.
///
/// This is the single size limit shared by the two layers that must agree
/// on it: the mapper's gap classifier (`MapOpts::max_fill`) refuses to emit
/// an [`AlignJob`] whose target or query exceeds it (oversized chain gaps
/// are approximated inline instead), and the device backends size-check
/// submitted jobs against device memory. Keeping one constant — plus the
/// reconciliation test in `gpu.rs` proving a maximal planned job still fits
/// the default device — guarantees a job can never be accepted at plan time
/// only to surprise-fallback at submit time.
pub const MAX_PLAN_SEGMENT: usize = 20_000;

/// One base-level alignment problem, owned so a backend can ship it to a
/// device queue (or another thread) without borrowing the mapper's state.
#[derive(Clone, Debug)]
pub struct AlignJob {
    /// Target (reference) segment, 2-bit nucleotide codes.
    pub target: Vec<u8>,
    /// Query (read) segment, 2-bit nucleotide codes.
    pub query: Vec<u8>,
    /// DP boundary condition.
    pub mode: AlignMode,
    /// Whether the caller needs the traceback path (CIGAR).
    pub with_path: bool,
}

impl AlignJob {
    /// A global-alignment job, the shape the mapper's gap-fill step emits.
    pub fn global(target: Vec<u8>, query: Vec<u8>, with_path: bool) -> Self {
        AlignJob {
            target,
            query,
            mode: AlignMode::Global,
            with_path,
        }
    }

    /// DP matrix size — the scheduling weight used for longest-first
    /// ordering and throughput accounting.
    pub fn cells(&self) -> u64 {
        (self.target.len() as u64 + 1) * (self.query.len() as u64 + 1)
    }
}
