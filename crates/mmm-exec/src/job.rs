//! The unit of work a backend executes.

use mmm_align::AlignMode;

/// One base-level alignment problem, owned so a backend can ship it to a
/// device queue (or another thread) without borrowing the mapper's state.
#[derive(Clone, Debug)]
pub struct AlignJob {
    /// Target (reference) segment, 2-bit nucleotide codes.
    pub target: Vec<u8>,
    /// Query (read) segment, 2-bit nucleotide codes.
    pub query: Vec<u8>,
    /// DP boundary condition.
    pub mode: AlignMode,
    /// Whether the caller needs the traceback path (CIGAR).
    pub with_path: bool,
}

impl AlignJob {
    /// A global-alignment job, the shape the mapper's gap-fill step emits.
    pub fn global(target: Vec<u8>, query: Vec<u8>, with_path: bool) -> Self {
        AlignJob {
            target,
            query,
            mode: AlignMode::Global,
            with_path,
        }
    }

    /// DP matrix size — the scheduling weight used for longest-first
    /// ordering and throughput accounting.
    pub fn cells(&self) -> u64 {
        (self.target.len() as u64 + 1) * (self.query.len() as u64 + 1)
    }
}
