//! The CPU SIMD backend: batches over the persistent worker-pool machinery
//! with one recycled [`AlignScratch`] arena per worker.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Mutex, PoisonError};

use mmm_align::{AlignResult, AlignScratch, Engine, Scoring};
use mmm_pipeline::pool::with_worker_pool;

use crate::backend::{AlignBackend, BackendOptions};
use crate::error::BackendError;
use crate::fault::FaultHook;
use crate::job::AlignJob;
use crate::stats::BackendStats;

/// Align a batch of jobs serially on the calling thread with a fresh
/// scratch arena. Convenience wrapper over [`align_jobs_with_scratch`].
pub fn align_jobs(engine: Engine, jobs: &[AlignJob], sc: &Scoring) -> Vec<AlignResult> {
    let mut scratch = AlignScratch::new();
    align_jobs_with_scratch(engine, jobs, sc, &mut scratch)
}

/// Align a batch of jobs serially, reusing the caller's scratch arena —
/// the zero-allocation building block every backend executor reduces to.
pub fn align_jobs_with_scratch(
    engine: Engine,
    jobs: &[AlignJob],
    sc: &Scoring,
    scratch: &mut AlignScratch,
) -> Vec<AlignResult> {
    jobs.iter()
        .map(|j| engine.align_with_scratch(&j.target, &j.query, sc, j.mode, j.with_path, scratch))
        .collect()
}

/// Borrow a scratch arena from the backend's spare pool, returning it on
/// drop — so arenas stay warm across batches even though the worker threads
/// themselves are scoped to one batch.
struct ScratchLease<'a> {
    home: &'a Mutex<Vec<AlignScratch>>,
    scratch: Option<AlignScratch>,
}

impl<'a> ScratchLease<'a> {
    fn take(home: &'a Mutex<Vec<AlignScratch>>) -> Self {
        let scratch = lock_spares(home).pop().unwrap_or_default();
        ScratchLease {
            home,
            scratch: Some(scratch),
        }
    }
}

impl Drop for ScratchLease<'_> {
    fn drop(&mut self) {
        if let Some(s) = self.scratch.take() {
            lock_spares(self.home).push(s);
        }
    }
}

fn lock_spares(home: &Mutex<Vec<AlignScratch>>) -> std::sync::MutexGuard<'_, Vec<AlignScratch>> {
    // The spare list is plain data; a panicked pusher can't corrupt it.
    home.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Host SIMD execution session.
pub struct CpuSimdBackend {
    engine: Engine,
    scoring: Scoring,
    threads: usize,
    /// Warm scratch arenas recycled across submits.
    spares: Mutex<Vec<AlignScratch>>,
    /// Chaos-testing schedule for this session's `submit` calls.
    fault: FaultHook,
}

impl CpuSimdBackend {
    pub fn new(opts: &BackendOptions) -> Self {
        CpuSimdBackend {
            engine: opts.engine,
            scoring: opts.scoring,
            threads: opts.threads.max(1),
            spares: Mutex::new(Vec::new()),
            fault: FaultHook::new(opts.fault.clone()),
        }
    }

    /// Run a batch and return the results in job order; used both by
    /// [`submit`](AlignBackend::submit) and as the device backends'
    /// fallback executor.
    pub(crate) fn execute(&self, jobs: &[AlignJob]) -> Result<Vec<AlignResult>, BackendError> {
        if jobs.is_empty() {
            return Ok(Vec::new());
        }
        // Longest first: big DP problems anchor the schedule, small ones
        // backfill (the same policy the per-read pipeline uses).
        let mut order: Vec<usize> = (0..jobs.len()).collect();
        order.sort_by_key(|&i| std::cmp::Reverse(jobs[i].cells()));

        let threads = self.threads.min(jobs.len());
        if threads <= 1 {
            // No fan-out: run on the calling thread, catching kernel panics
            // so a backend bug surfaces as a typed error, not an unwind
            // through the pipeline.
            let mut lease = ScratchLease::take(&self.spares);
            let mut results: Vec<Option<AlignResult>> = (0..jobs.len()).map(|_| None).collect();
            for &i in &order {
                let j = &jobs[i];
                let scratch = match lease.scratch.as_mut() {
                    Some(s) => s,
                    None => {
                        return Err(BackendError::JobPanic {
                            index: i,
                            message: "scratch arena lost after a previous panic".into(),
                        })
                    }
                };
                let out = catch_unwind(AssertUnwindSafe(|| {
                    self.engine.align_with_scratch(
                        &j.target,
                        &j.query,
                        &self.scoring,
                        j.mode,
                        j.with_path,
                        scratch,
                    )
                }));
                match out {
                    Ok(r) => results[i] = Some(r),
                    Err(payload) => {
                        // The arena may be mid-resize; discard it.
                        lease.scratch = None;
                        return Err(BackendError::JobPanic {
                            index: i,
                            message: panic_text(payload),
                        });
                    }
                }
            }
            return Ok(results.into_iter().flatten().collect());
        }

        let engine = self.engine;
        let sc = self.scoring;
        let outcome = with_worker_pool(
            threads,
            |_| ScratchLease::take(&self.spares),
            |lease: &mut ScratchLease<'_>, job: &AlignJob| {
                // A worker whose arena was lost to a panic is rebuilt by the
                // pool (make_state reruns); the expect-free unwrap below is
                // the panic the pool catches per item.
                let scratch = match lease.scratch.as_mut() {
                    Some(s) => s,
                    None => panic!("scratch arena missing"),
                };
                engine.align_with_scratch(
                    &job.target,
                    &job.query,
                    &sc,
                    job.mode,
                    job.with_path,
                    scratch,
                )
            },
            |pool| pool.run_batch_catching(jobs, &order),
        );
        if let Some(p) = outcome.panics.first() {
            return Err(BackendError::JobPanic {
                index: p.index,
                message: p.message.clone(),
            });
        }
        let results: Vec<AlignResult> = outcome.results.into_iter().flatten().collect();
        debug_assert_eq!(results.len(), jobs.len());
        Ok(results)
    }
}

fn panic_text(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

impl AlignBackend for CpuSimdBackend {
    fn label(&self) -> &'static str {
        "cpu"
    }

    fn submit(
        &self,
        jobs: Vec<AlignJob>,
    ) -> Result<(Vec<AlignResult>, BackendStats), BackendError> {
        let drop_last = self.fault.begin_submit()?;
        let cells: u64 = jobs.iter().map(AlignJob::cells).sum();
        let mut results = self.execute(&jobs)?;
        if drop_last {
            results.pop();
        }
        // The CPU backend owns no device or supervisor counters.
        // xtask-allow: stats-forwarding — every omitted field is correctly zero for a raw CPU session.
        let stats = BackendStats {
            batches: 1,
            jobs: jobs.len() as u64,
            cells,
            ..Default::default()
        };
        Ok((results, stats))
    }
}
