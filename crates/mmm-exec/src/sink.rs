//! `StatsSink` — atomic delivery of assembled stats reports.
//!
//! The CLI's run summary used to be several independent `eprintln!` calls.
//! One process, one run: fine. Concurrent sessions sharing a stderr (the
//! `mmm-serve` daemon, parallel test harnesses) interleave those lines into
//! garbage. The fix is structural: a report is *assembled first* — every
//! line collected into a [`StatsReport`] — and then *delivered once*,
//! through a [`StatsSink`], as a single write. Sinks decide where the bytes
//! go (stderr, a capture buffer, a tenant's stats response); the report
//! renders byte-identically to the old per-line output, so existing
//! stderr-parsing tests and operators see no change.

use std::io::Write;
use std::sync::Mutex;

use crate::stats::BackendStats;

/// Destination for fully-assembled stats reports. Implementations must
/// deliver each report atomically with respect to other reports — one
/// report never interleaves with another.
pub trait StatsSink: Send + Sync {
    /// Deliver one rendered report (may span multiple lines; includes its
    /// trailing newline) in a single write.
    fn write_report(&self, report: &str);
}

/// Production sink: one locked `write_all` to stderr per report. The lock
/// spans the whole report, so concurrent sessions' reports serialize at
/// report granularity instead of shredding line by line.
#[derive(Clone, Copy, Debug, Default)]
pub struct StderrSink;

impl StatsSink for StderrSink {
    fn write_report(&self, report: &str) {
        let mut err = std::io::stderr().lock();
        // Stats are best-effort diagnostics: a dead stderr must not take
        // the run down with it.
        let _ = err.write_all(report.as_bytes());
        let _ = err.flush();
    }
}

/// Capturing sink: reports accumulate in memory. Used by tests asserting
/// report contents and by `mmm-serve`'s stats endpoint, which renders the
/// captured reports into a protocol response instead of a terminal.
#[derive(Debug, Default)]
pub struct BufferSink {
    reports: Mutex<Vec<String>>,
}

impl BufferSink {
    pub fn new() -> Self {
        Self::default()
    }

    /// All reports delivered so far, in delivery order.
    pub fn reports(&self) -> Vec<String> {
        self.reports
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clone()
    }

    /// Drain the captured reports.
    pub fn take(&self) -> Vec<String> {
        std::mem::take(
            &mut self
                .reports
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner),
        )
    }
}

impl StatsSink for BufferSink {
    fn write_report(&self, report: &str) {
        self.reports
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .push(report.to_string());
    }
}

/// A multi-line stats report under one line prefix. Lines are collected,
/// then rendered and emitted in a single [`StatsSink::write_report`] call.
///
/// Rendering is byte-identical to the historical per-line output: each line
/// becomes `{prefix}{line}\n`.
#[derive(Clone, Debug)]
pub struct StatsReport {
    prefix: String,
    lines: Vec<String>,
}

impl StatsReport {
    /// A report whose lines all start with `prefix` (e.g. `"[manymap] "`).
    pub fn new(prefix: impl Into<String>) -> Self {
        StatsReport {
            prefix: prefix.into(),
            lines: Vec::new(),
        }
    }

    /// Append one line (without prefix or newline).
    pub fn line(&mut self, line: impl Into<String>) -> &mut Self {
        self.lines.push(line.into());
        self
    }

    /// Append a line when present (e.g. the supervisor's clean-run-silent
    /// summary).
    pub fn maybe_line(&mut self, line: Option<String>) -> &mut Self {
        if let Some(l) = line {
            self.lines.push(l);
        }
        self
    }

    /// Append the standard backend block for `stats`: the always-present
    /// execution summary plus the supervisor line when it intervened.
    pub fn backend_block(&mut self, stats: &BackendStats, label: &str) -> &mut Self {
        self.line(stats.summary(label));
        self.maybe_line(stats.supervisor_summary(label))
    }

    pub fn is_empty(&self) -> bool {
        self.lines.is_empty()
    }

    /// Render to the exact bytes the old `eprintln!`-per-line code wrote.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for l in &self.lines {
            out.push_str(&self.prefix);
            out.push_str(l);
            out.push('\n');
        }
        out
    }

    /// Deliver through `sink` as one write; empty reports emit nothing.
    pub fn emit(&self, sink: &dyn StatsSink) {
        if !self.is_empty() {
            sink.write_report(&self.render());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_matches_eprintln_per_line_bytes() {
        let mut r = StatsReport::new("[manymap] ");
        r.line("mapped 10 reads");
        r.line("backend cpu: 5 jobs");
        assert_eq!(
            r.render(),
            "[manymap] mapped 10 reads\n[manymap] backend cpu: 5 jobs\n"
        );
    }

    #[test]
    fn empty_report_emits_nothing() {
        let sink = BufferSink::new();
        StatsReport::new("[x] ").emit(&sink);
        assert!(sink.reports().is_empty());
        let mut r = StatsReport::new("[x] ");
        r.maybe_line(None);
        r.emit(&sink);
        assert!(sink.reports().is_empty());
    }

    #[test]
    fn buffer_sink_captures_whole_reports() {
        let sink = BufferSink::new();
        let mut a = StatsReport::new("[a] ");
        a.line("one").line("two");
        a.emit(&sink);
        let mut b = StatsReport::new("[b] ");
        b.line("three");
        b.emit(&sink);
        assert_eq!(sink.reports(), vec!["[a] one\n[a] two\n", "[b] three\n"]);
        assert_eq!(sink.take().len(), 2);
        assert!(sink.reports().is_empty());
    }

    #[test]
    fn backend_block_is_summary_plus_optional_supervisor() {
        let clean = BackendStats::default();
        let mut r = StatsReport::new("");
        r.backend_block(&clean, "cpu");
        assert_eq!(r.lines.len(), 1, "clean run has no supervisor line");

        let busy = BackendStats {
            retries: 2,
            ..Default::default()
        };
        let mut r = StatsReport::new("");
        r.backend_block(&busy, "gpu-sim");
        assert_eq!(r.lines.len(), 2);
        assert!(r.render().contains("2 retries"));
    }

    /// The atomicity contract: many threads emitting multi-line reports
    /// through one sink never interleave lines across reports.
    #[test]
    fn concurrent_reports_never_interleave() {
        let sink = std::sync::Arc::new(BufferSink::new());
        std::thread::scope(|s| {
            for t in 0..8 {
                let sink = sink.clone();
                s.spawn(move || {
                    for i in 0..50 {
                        let mut r = StatsReport::new(format!("[t{t}] "));
                        r.line(format!("first {i}"));
                        r.line(format!("second {i}"));
                        r.emit(&*sink);
                    }
                });
            }
        });
        let reports = sink.reports();
        assert_eq!(reports.len(), 8 * 50);
        for rep in &reports {
            let lines: Vec<&str> = rep.lines().collect();
            assert_eq!(lines.len(), 2, "{rep:?}");
            // Both lines belong to the same thread's same iteration.
            let tag = lines[0].split_whitespace().next().unwrap();
            let n = lines[0].rsplit(' ').next().unwrap();
            assert_eq!(lines[1].split_whitespace().next().unwrap(), tag);
            assert_eq!(lines[1].rsplit(' ').next().unwrap(), n);
        }
    }
}
