//! Per-backend health tracking: a deterministic circuit breaker.
//!
//! The breaker is counted in *submit attempts*, not wall time, so its
//! behaviour is identical across machines and replayable in tests. State
//! machine (DESIGN.md §10):
//!
//! ```text
//!            trip_failures failures in window
//!   Closed ────────────────────────────────────▶ Open
//!     ▲                                           │
//!     │ probe succeeds                            │ cooldown submits
//!     │                                           ▼
//!     └─────────────────────────────────────── HalfOpen
//!                     probe fails ──▶ back to Open (cooldown restarts)
//! ```
//!
//! While Open the supervisor routes every batch to the standby backend;
//! each routed batch advances the cooldown. In HalfOpen exactly one batch
//! is sent to the primary as a probe.

/// Breaker tuning. Defaults trip after 3 failures and probe again after 8
/// standby-routed submits.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Sliding window length, in recorded outcomes.
    pub window: usize,
    /// Failures within the window that trip the breaker.
    pub trip_failures: usize,
    /// Submits routed to standby before a half-open probe is allowed.
    pub cooldown: usize,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            window: 8,
            trip_failures: 3,
            cooldown: 8,
        }
    }
}

/// Breaker state, exported for stats and tests.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BreakerState {
    /// Primary healthy: batches go to the primary backend.
    Closed,
    /// Primary demoted: batches go to the standby until cooldown elapses.
    Open,
    /// Cooldown elapsed: the next primary attempt is a probe.
    HalfOpen,
}

/// Deterministic circuit breaker over one primary backend.
#[derive(Clone, Debug)]
pub struct CircuitBreaker {
    cfg: BreakerConfig,
    state: BreakerState,
    /// Ring of recent outcomes, `true` = failure. Length ≤ cfg.window.
    recent: Vec<bool>,
    next: usize,
    /// Standby submits seen since the breaker opened.
    cooldown_left: usize,
    /// Closed→Open transitions over the breaker's lifetime.
    trips: u64,
}

impl CircuitBreaker {
    pub fn new(cfg: BreakerConfig) -> Self {
        CircuitBreaker {
            cfg,
            state: BreakerState::Closed,
            recent: Vec::new(),
            next: 0,
            cooldown_left: 0,
            trips: 0,
        }
    }

    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Lifetime Closed→Open transition count.
    pub fn trips(&self) -> u64 {
        self.trips
    }

    /// Should the next batch go to the primary? `HalfOpen` answers yes —
    /// that batch is the probe.
    pub fn allow_primary(&self) -> bool {
        !matches!(self.state, BreakerState::Open)
    }

    /// Record the outcome of a batch sent to the primary.
    pub fn record(&mut self, ok: bool) {
        match self.state {
            BreakerState::Closed => {
                if self.recent.len() < self.cfg.window {
                    self.recent.push(!ok);
                } else if self.cfg.window > 0 {
                    self.recent[self.next % self.cfg.window] = !ok;
                }
                self.next += 1;
                let failures = self.recent.iter().filter(|&&f| f).count();
                if failures >= self.cfg.trip_failures {
                    self.trip();
                }
            }
            BreakerState::HalfOpen => {
                if ok {
                    self.state = BreakerState::Closed;
                    self.recent.clear();
                    self.next = 0;
                } else {
                    // Failed probe: reopen without counting a new trip.
                    self.state = BreakerState::Open;
                    self.cooldown_left = self.cfg.cooldown;
                }
            }
            // A record while Open can only come from a probe raced by the
            // caller; treat it like a probe outcome.
            BreakerState::Open => {
                if ok {
                    self.state = BreakerState::Closed;
                    self.recent.clear();
                    self.next = 0;
                }
            }
        }
    }

    /// Note a batch routed to the standby while the primary is demoted;
    /// advances the cooldown toward the half-open probe.
    pub fn note_standby_submit(&mut self) {
        if self.state == BreakerState::Open {
            self.cooldown_left = self.cooldown_left.saturating_sub(1);
            if self.cooldown_left == 0 {
                self.state = BreakerState::HalfOpen;
            }
        }
    }

    fn trip(&mut self) {
        self.state = BreakerState::Open;
        self.cooldown_left = self.cfg.cooldown.max(1);
        self.trips += 1;
        self.recent.clear();
        self.next = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn breaker() -> CircuitBreaker {
        CircuitBreaker::new(BreakerConfig {
            window: 4,
            trip_failures: 3,
            cooldown: 2,
        })
    }

    #[test]
    fn trips_after_n_failures_in_window() {
        let mut b = breaker();
        b.record(false);
        b.record(true);
        b.record(false);
        assert_eq!(b.state(), BreakerState::Closed);
        b.record(false);
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.trips(), 1);
        assert!(!b.allow_primary());
    }

    #[test]
    fn successes_age_out_of_window() {
        let mut b = breaker();
        b.record(false);
        b.record(false);
        for _ in 0..4 {
            b.record(true);
        }
        // The two failures rolled out of the 4-wide window.
        b.record(false);
        b.record(false);
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn cooldown_leads_to_half_open_probe_and_repromotion() {
        let mut b = breaker();
        for _ in 0..3 {
            b.record(false);
        }
        assert_eq!(b.state(), BreakerState::Open);
        b.note_standby_submit();
        assert_eq!(b.state(), BreakerState::Open);
        b.note_standby_submit();
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert!(b.allow_primary());
        b.record(true);
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.trips(), 1, "re-promotion is not a trip");
    }

    #[test]
    fn failed_probe_reopens_without_new_trip() {
        let mut b = breaker();
        for _ in 0..3 {
            b.record(false);
        }
        b.note_standby_submit();
        b.note_standby_submit();
        assert_eq!(b.state(), BreakerState::HalfOpen);
        b.record(false);
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.trips(), 1);
        // Cooldown restarts after the failed probe.
        b.note_standby_submit();
        assert_eq!(b.state(), BreakerState::Open);
        b.note_standby_submit();
        assert_eq!(b.state(), BreakerState::HalfOpen);
    }

    #[test]
    fn trip_count_accumulates_across_cycles() {
        let mut b = breaker();
        for cycle in 1..=3u64 {
            for _ in 0..3 {
                b.record(false);
            }
            assert_eq!(b.trips(), cycle);
            b.note_standby_submit();
            b.note_standby_submit();
            b.record(true); // successful probe closes it again
            assert_eq!(b.state(), BreakerState::Closed);
        }
    }
}
