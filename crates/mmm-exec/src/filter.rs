//! Pre-alignment filtering (DESIGN.md §11).
//!
//! Full DP on a hopeless candidate region is the most expensive way to
//! discover it was hopeless. Following the shifted-Hamming family of
//! pre-alignment filters in its cheapest form, this module estimates a
//! candidate's quality from a few *anchored* windows — short stretches
//! sampled immediately after exact seed matches, where target and query are
//! in exact register — and rejects candidates no real alignment could
//! produce, before any [`AlignJob`](crate::AlignJob) is planned for them.
//!
//! The verdict statistic is the **longest exact match run** observed across
//! all sampled windows, not the raw mismatch fraction: long-read errors are
//! indel-dominant, and a single indel inside a window shifts the register
//! and turns every following base into a "mismatch" even on a true mapping.
//! Match runs are immune to that failure mode — any error, of any kind,
//! merely ends a run — while random noise is exponentially unlikely to
//! produce a long one (a 12-base run occurs by chance once per ~17M window
//! positions). Calibration: at long-read error rates (10–15%) a true
//! mapping's windows contain an 8+-base run with near certainty and a
//! 12+-base run with high probability; unrelated sequence essentially never
//! does. `Safe` demands an 8-run somewhere, `Aggressive` a 12-run — the
//! latter also prices out heavily diverged (but real) candidates, which is
//! the advertised recall trade. Too little sampled evidence, or a low
//! overall mismatch fraction (short clean windows), is always an accept:
//! the filter only ever rejects on strong evidence.

/// How conservative the pre-alignment filter is (`--prefilter`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum PrefilterMode {
    /// No filtering; every candidate is planned. The default.
    #[default]
    Off,
    /// Reject only candidates indistinguishable from random noise.
    Safe,
    /// Also reject marginal candidates; trades recall for planned work.
    Aggressive,
}

impl PrefilterMode {
    /// Parse a `--prefilter` value.
    pub fn parse(name: &str) -> Result<Self, String> {
        match name {
            "off" => Ok(PrefilterMode::Off),
            "safe" => Ok(PrefilterMode::Safe),
            "aggressive" => Ok(PrefilterMode::Aggressive),
            other => Err(format!(
                "unknown prefilter mode {other:?} (off|safe|aggressive)"
            )),
        }
    }

    /// The `MMM_PREFILTER` environment selection, if set.
    pub fn from_env() -> Option<Result<Self, String>> {
        std::env::var("MMM_PREFILTER").ok().map(|v| Self::parse(&v))
    }

    /// Name as accepted by [`parse`](Self::parse).
    pub fn label(self) -> &'static str {
        match self {
            PrefilterMode::Off => "off",
            PrefilterMode::Safe => "safe",
            PrefilterMode::Aggressive => "aggressive",
        }
    }

    /// Shortest exact match run that counts as evidence of a real mapping;
    /// a probe whose best run falls short is rejected. `None` disables
    /// filtering.
    pub fn min_match_run(self) -> Option<u32> {
        match self {
            PrefilterMode::Off => None,
            PrefilterMode::Safe => Some(8),
            PrefilterMode::Aggressive => Some(12),
        }
    }
}

/// Bases to sample per anchored window.
pub const PREFILTER_WINDOW: usize = 24;

/// Minimum sampled bases before a verdict may reject. Below this the
/// estimate is too noisy and the probe always accepts.
pub const PREFILTER_MIN_SAMPLED: u32 = 32;

/// Sampled mismatch fraction at or below which a candidate is accepted
/// without consulting match runs: short-but-clean windows are real evidence
/// even when they are too short to contain a qualifying run.
pub const PREFILTER_CLEAN_FRAC: f64 = 0.25;

/// Evidence accumulated from anchored windows of one candidate.
#[derive(Clone, Copy, Debug, Default)]
pub struct PrefilterProbe {
    mismatches: u32,
    sampled: u32,
    max_run: u32,
}

impl PrefilterProbe {
    /// Fold in one anchored window: `t` and `q` start in exact register
    /// (both begin right after the same exact seed match) and are compared
    /// base-for-base over their common prefix length.
    pub fn observe(&mut self, t: &[u8], q: &[u8]) {
        let n = t.len().min(q.len());
        self.sampled += n as u32;
        let mut run = 0u32;
        for (a, b) in t[..n].iter().zip(&q[..n]) {
            if a == b {
                run += 1;
                self.max_run = self.max_run.max(run);
            } else {
                run = 0;
                self.mismatches += 1;
            }
        }
    }

    /// Total bases sampled so far.
    pub fn sampled(&self) -> u32 {
        self.sampled
    }

    /// Longest exact match run seen in any window so far.
    pub fn max_run(&self) -> u32 {
        self.max_run
    }

    /// Sampled mismatch fraction (0.0 when nothing was sampled).
    pub fn mismatch_frac(&self) -> f64 {
        if self.sampled == 0 {
            0.0
        } else {
            f64::from(self.mismatches) / f64::from(self.sampled)
        }
    }

    /// Does `mode` reject this candidate? Conservative by construction:
    /// `Off`, fewer than [`PREFILTER_MIN_SAMPLED`] bases, or a mostly-clean
    /// sample ([`PREFILTER_CLEAN_FRAC`]) never reject.
    pub fn rejects(&self, mode: PrefilterMode) -> bool {
        let Some(min_run) = mode.min_match_run() else {
            return false;
        };
        self.sampled >= PREFILTER_MIN_SAMPLED
            && self.mismatch_frac() > PREFILTER_CLEAN_FRAC
            && self.max_run < min_run
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn probe_of(t: &[u8], q: &[u8]) -> PrefilterProbe {
        let mut p = PrefilterProbe::default();
        p.observe(t, q);
        p
    }

    #[test]
    fn identical_windows_always_pass() {
        let t: Vec<u8> = (0..64).map(|i| (i % 4) as u8).collect();
        let p = probe_of(&t, &t);
        assert_eq!(p.mismatch_frac(), 0.0);
        assert_eq!(p.max_run(), 64);
        assert!(!p.rejects(PrefilterMode::Safe));
        assert!(!p.rejects(PrefilterMode::Aggressive));
    }

    #[test]
    fn noise_rejected_marginal_runs_only_by_aggressive() {
        // Periodic noise: a match every 4th base, runs never exceed 1 —
        // what unrelated sequence looks like, minus the randomness.
        let t = vec![0u8; 64];
        let q: Vec<u8> = (0..64).map(|i| (i % 4) as u8).collect();
        let noise = probe_of(&t, &q);
        assert_eq!(noise.max_run(), 1);
        assert!(noise.rejects(PrefilterMode::Safe));
        assert!(noise.rejects(PrefilterMode::Aggressive));
        assert!(!noise.rejects(PrefilterMode::Off));

        // Runs of exactly 8 split by bursts of mismatch: enough evidence
        // for safe, not for the aggressive knob.
        let q2: Vec<u8> = (0..64)
            .map(|i| if i % 16 < 8 { 0u8 } else { 1u8 })
            .collect();
        let marginal = probe_of(&t, &q2);
        assert_eq!(marginal.max_run(), 8);
        assert!(marginal.mismatch_frac() > PREFILTER_CLEAN_FRAC);
        assert!(!marginal.rejects(PrefilterMode::Safe));
        assert!(marginal.rejects(PrefilterMode::Aggressive));
    }

    #[test]
    fn sparse_evidence_never_rejects() {
        let t = vec![0u8; 8];
        let q = vec![1u8; 8]; // 100% mismatch, but only 8 bases sampled
        let p = probe_of(&t, &q);
        assert!(p.sampled() < PREFILTER_MIN_SAMPLED);
        assert!(!p.rejects(PrefilterMode::Aggressive));
    }

    #[test]
    fn clean_short_windows_accepted_without_a_qualifying_run() {
        // Many 6-base perfect windows: no single window can hold a 12-run,
        // but the sample is nearly mismatch-free — must accept.
        let mut p = PrefilterProbe::default();
        for _ in 0..8 {
            p.observe(&[0u8; 6], &[0u8; 6]);
        }
        assert!(p.sampled() >= PREFILTER_MIN_SAMPLED);
        assert!(p.max_run() < 12);
        assert!(p.mismatch_frac() <= PREFILTER_CLEAN_FRAC);
        assert!(!p.rejects(PrefilterMode::Aggressive));
    }

    #[test]
    fn windows_accumulate_across_anchors() {
        let mut p = PrefilterProbe::default();
        for _ in 0..4 {
            p.observe(&[0u8; 12], &[1u8; 12]);
        }
        assert_eq!(p.sampled(), 48);
        assert_eq!(p.max_run(), 0);
        assert!(p.rejects(PrefilterMode::Safe));
        // Runs do not leak across windows: two 7-base perfect windows are
        // not a 14-base run.
        let mut split = PrefilterProbe::default();
        split.observe(&[0u8; 7], &[0u8; 7]);
        split.observe(&[0u8; 7], &[0u8; 7]);
        assert_eq!(split.max_run(), 7);
    }

    #[test]
    fn mode_parsing_round_trips() {
        for mode in [
            PrefilterMode::Off,
            PrefilterMode::Safe,
            PrefilterMode::Aggressive,
        ] {
            assert_eq!(PrefilterMode::parse(mode.label()).unwrap(), mode);
        }
        assert!(PrefilterMode::parse("fast").is_err());
        assert_eq!(PrefilterMode::default(), PrefilterMode::Off);
    }
}
