//! The length-binned batch scheduler (DESIGN.md §11).
//!
//! Batch kernels stay full only when the work they execute is similarly
//! sized: one oversized pair in a SIMT batch stalls every stream behind it
//! or forces a serial host fallback. This module reorders a submission's
//! [`AlignJob`]s *before* they reach a backend: jobs are binned by DP-matrix
//! size ([`AlignJob::cells`], log2 buckets), bins are chunked into batches
//! under a per-batch cell and job budget, and each batch is routed to the
//! backend that fits it best — device-eligible bins to the primary,
//! statically ineligible giants (and unsupported boundary modes) straight
//! to the host executor, pre-batch.
//!
//! Scheduling is pure *reordering*: every input index appears in exactly
//! one scheduled batch, and the executor scatters per-job outcomes back to
//! their original positions, so callers observe the same one-result-per-job
//! in-order contract as an unscheduled submit. Output (PAF/SAM) is
//! byte-identical by construction; the xtask oracle and the backend CLI
//! tests enforce it end to end.

use crate::job::AlignJob;

/// Scheduling policy for a supervised submission.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SchedMode {
    /// Legacy passthrough: one batch, input order, no routing. The default.
    #[default]
    Fifo,
    /// Length-binned batches with per-backend routing.
    Bins,
}

impl SchedMode {
    /// Parse a `--sched` value.
    pub fn parse(name: &str) -> Result<Self, String> {
        match name {
            "fifo" => Ok(SchedMode::Fifo),
            "bins" => Ok(SchedMode::Bins),
            other => Err(format!("unknown scheduler mode {other:?} (fifo|bins)")),
        }
    }

    /// The `MMM_SCHED` environment selection, if set.
    pub fn from_env() -> Option<Result<Self, String>> {
        std::env::var("MMM_SCHED").ok().map(|v| Self::parse(&v))
    }

    /// Name as accepted by [`parse`](Self::parse).
    pub fn label(self) -> &'static str {
        match self {
            SchedMode::Fifo => "fifo",
            SchedMode::Bins => "bins",
        }
    }
}

/// Scheduler tuning. The defaults keep batches large enough to amortize
/// dispatch overhead while bounding the cell spread any single batch can
/// carry.
#[derive(Clone, Debug)]
pub struct SchedConfig {
    pub mode: SchedMode,
    /// Cell budget per scheduled batch; a batch closes when the next job
    /// would push it past this (a single job larger than the budget still
    /// gets its own batch).
    pub max_batch_cells: u64,
    /// Job-count budget per scheduled batch.
    pub max_batch_jobs: usize,
    /// Test-only knob: deterministically permute the order scheduled
    /// batches are *dispatched* in (seeded Fisher–Yates). Output must not
    /// change — this is how the property tests prove the ordering
    /// guarantee. `None` in production.
    pub permute_seed: Option<u64>,
}

impl Default for SchedConfig {
    fn default() -> Self {
        SchedConfig {
            mode: SchedMode::default(),
            max_batch_cells: 64_000_000,
            max_batch_jobs: 512,
            permute_seed: None,
        }
    }
}

impl SchedConfig {
    /// Defaults with `MMM_SCHED`, `MMM_SCHED_BATCH_CELLS` and
    /// `MMM_SCHED_BATCH_JOBS` applied on top, if set.
    pub fn from_env() -> Result<Self, String> {
        let mut cfg = SchedConfig::default();
        if let Some(mode) = SchedMode::from_env() {
            cfg.mode = mode?;
        }
        if let Ok(v) = std::env::var("MMM_SCHED_BATCH_CELLS") {
            cfg.max_batch_cells = v
                .trim()
                .parse()
                .map_err(|_| format!("MMM_SCHED_BATCH_CELLS={v:?} is not an integer"))?;
        }
        if let Ok(v) = std::env::var("MMM_SCHED_BATCH_JOBS") {
            cfg.max_batch_jobs = v
                .trim()
                .parse()
                .map_err(|_| format!("MMM_SCHED_BATCH_JOBS={v:?} is not an integer"))?;
        }
        Ok(cfg)
    }
}

/// Which executor a scheduled batch is routed to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Route {
    /// The primary backend (device path, under the full supervisor ladder).
    Primary,
    /// The host executor, pre-batch: the primary reported the jobs
    /// statically ineligible, so sending them through it would only force
    /// its internal fallback onto the batch's critical path.
    Host,
}

/// One scheduled batch: the route plus the *original* indices of its jobs.
#[derive(Clone, Debug)]
pub struct SchedBatch {
    pub route: Route,
    pub indices: Vec<usize>,
}

/// The schedule for one submission. Every input index appears in exactly
/// one batch, exactly once.
#[derive(Clone, Debug, Default)]
pub struct SchedulePlan {
    pub batches: Vec<SchedBatch>,
}

impl SchedulePlan {
    /// Total jobs routed to the host executor.
    pub fn host_jobs(&self) -> usize {
        self.batches
            .iter()
            .filter(|b| b.route == Route::Host)
            .map(|b| b.indices.len())
            .sum()
    }
}

/// Splitmix64 step — same generator family as the fault plan and the
/// supervisor backoff, keyed independently, so permuted dispatch orders are
/// replayable.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// log2 size class of a job — jobs in one bin differ by at most 2x in DP
/// cells, which keeps stream occupancy even within a device batch.
fn size_class(cells: u64) -> u32 {
    64 - cells.max(1).leading_zeros()
}

/// Bin jobs by size class, chunk the bins under the batch budgets, and
/// route each batch. `eligible` is the primary backend's
/// [`device_eligible`](crate::AlignBackend::device_eligible) answer per
/// job; ineligible jobs are collected into host-routed batches.
pub fn plan_schedule<F: Fn(&AlignJob) -> bool>(
    jobs: &[AlignJob],
    eligible: F,
    cfg: &SchedConfig,
) -> SchedulePlan {
    let mut host: Vec<usize> = Vec::new();
    // Bins keyed by size class; within a bin, original order is preserved
    // (the sort below is stable), so equal-sized jobs dispatch in input
    // order and schedules are deterministic.
    let mut device: Vec<usize> = Vec::new();
    for (i, job) in jobs.iter().enumerate() {
        if eligible(job) {
            device.push(i);
        } else {
            host.push(i);
        }
    }
    device.sort_by_key(|&i| size_class(jobs[i].cells()));

    let mut plan = SchedulePlan::default();
    for (route, indices) in [(Route::Primary, device), (Route::Host, host)] {
        let mut batch: Vec<usize> = Vec::new();
        let mut batch_cells = 0u64;
        let mut batch_class = 0u32;
        for i in indices {
            let cells = jobs[i].cells();
            let class = size_class(cells);
            let full = !batch.is_empty()
                && (batch.len() >= cfg.max_batch_jobs.max(1)
                    || batch_cells + cells > cfg.max_batch_cells
                    // A batch never spans size classes: mixing a bin
                    // boundary would reintroduce the stragglers binning
                    // exists to remove. Host batches are exempt — they run
                    // on the CPU executor, which sorts internally.
                    || (route == Route::Primary && class != batch_class));
            if full {
                plan.batches.push(SchedBatch {
                    route,
                    indices: std::mem::take(&mut batch),
                });
                batch_cells = 0;
            }
            batch_class = class;
            batch_cells += cells;
            batch.push(i);
        }
        if !batch.is_empty() {
            plan.batches.push(SchedBatch {
                route,
                indices: batch,
            });
        }
    }

    if let Some(seed) = cfg.permute_seed {
        permute(&mut plan.batches, seed);
    }
    debug_assert_eq!(
        plan.batches.iter().map(|b| b.indices.len()).sum::<usize>(),
        jobs.len(),
        "schedule must cover every job exactly once"
    );
    plan
}

/// Seeded Fisher–Yates over the batch order (test-only dispatch shuffling).
fn permute(batches: &mut [SchedBatch], seed: u64) {
    let mut state = seed;
    for k in (1..batches.len()).rev() {
        state = splitmix64(state);
        let j = (state % (k as u64 + 1)) as usize;
        batches.swap(k, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(tlen: usize, qlen: usize) -> AlignJob {
        AlignJob::global(vec![0u8; tlen], vec![1u8; qlen], true)
    }

    fn covered_indices(plan: &SchedulePlan, n: usize) {
        let mut seen = vec![0usize; n];
        for b in &plan.batches {
            for &i in &b.indices {
                seen[i] += 1;
            }
        }
        assert!(
            seen.iter().all(|&c| c == 1),
            "schedule must cover every index exactly once: {seen:?}"
        );
    }

    #[test]
    fn every_index_scheduled_exactly_once() {
        let jobs: Vec<AlignJob> = (0..50).map(|k| job(10 + k * 7, 5 + k * 3)).collect();
        for seed in [None, Some(1), Some(0xBEEF)] {
            let cfg = SchedConfig {
                mode: SchedMode::Bins,
                max_batch_jobs: 4,
                max_batch_cells: 5_000,
                permute_seed: seed,
            };
            let plan = plan_schedule(&jobs, |_| true, &cfg);
            covered_indices(&plan, jobs.len());
        }
    }

    #[test]
    fn ineligible_jobs_route_to_host() {
        let jobs: Vec<AlignJob> = (0..10).map(|k| job(20 + k, 20)).collect();
        // Every third job "too big" for the device.
        let plan = plan_schedule(
            &jobs,
            |j| j.target.len() % 3 != 0,
            &SchedConfig {
                mode: SchedMode::Bins,
                ..Default::default()
            },
        );
        covered_indices(&plan, jobs.len());
        let host: Vec<usize> = plan
            .batches
            .iter()
            .filter(|b| b.route == Route::Host)
            .flat_map(|b| b.indices.iter().copied())
            .collect();
        let expect: Vec<usize> = (0..10).filter(|i| (20 + i) % 3 == 0).collect();
        assert_eq!(host, expect);
        assert_eq!(plan.host_jobs(), expect.len());
    }

    #[test]
    fn primary_batches_never_span_size_classes() {
        let jobs: Vec<AlignJob> = (0..30)
            .map(|k| if k % 2 == 0 { job(8, 8) } else { job(512, 512) })
            .collect();
        let plan = plan_schedule(
            &jobs,
            |_| true,
            &SchedConfig {
                mode: SchedMode::Bins,
                ..Default::default()
            },
        );
        for b in &plan.batches {
            let classes: std::collections::BTreeSet<u32> = b
                .indices
                .iter()
                .map(|&i| size_class(jobs[i].cells()))
                .collect();
            assert_eq!(classes.len(), 1, "batch mixes size classes: {b:?}");
        }
    }

    #[test]
    fn budgets_bound_batches_and_giants_still_schedule() {
        let jobs = vec![job(4, 4), job(4, 4), job(4, 4), job(4_000, 4_000)];
        let cfg = SchedConfig {
            mode: SchedMode::Bins,
            max_batch_jobs: 2,
            max_batch_cells: 100, // smaller than the giant alone
            permute_seed: None,
        };
        let plan = plan_schedule(&jobs, |_| true, &cfg);
        covered_indices(&plan, jobs.len());
        for b in &plan.batches {
            assert!(b.indices.len() <= 2);
        }
    }

    #[test]
    fn permutation_is_deterministic_per_seed() {
        let jobs: Vec<AlignJob> = (0..40).map(|k| job(10 + 11 * k, 10 + 5 * k)).collect();
        let cfg = |seed| SchedConfig {
            mode: SchedMode::Bins,
            max_batch_jobs: 3,
            max_batch_cells: 10_000,
            permute_seed: seed,
        };
        let a = plan_schedule(&jobs, |_| true, &cfg(Some(7)));
        let b = plan_schedule(&jobs, |_| true, &cfg(Some(7)));
        let orders = |p: &SchedulePlan| -> Vec<Vec<usize>> {
            p.batches.iter().map(|b| b.indices.clone()).collect()
        };
        assert_eq!(orders(&a), orders(&b), "same seed must replay");
        let c = plan_schedule(&jobs, |_| true, &cfg(Some(8)));
        assert_ne!(orders(&a), orders(&c), "different seed should shuffle");
    }

    #[test]
    fn mode_parsing_round_trips() {
        assert_eq!(SchedMode::parse("fifo").unwrap(), SchedMode::Fifo);
        assert_eq!(SchedMode::parse("bins").unwrap(), SchedMode::Bins);
        assert!(SchedMode::parse("magic").is_err());
        assert_eq!(SchedMode::Bins.label(), "bins");
        assert_eq!(SchedMode::default(), SchedMode::Fifo);
    }
}
