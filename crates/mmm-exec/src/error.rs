//! Typed backend errors, composing with the pipeline's `DynError` chain.

use std::fmt;

use mmm_gpu::GpuError;

use crate::fault::FaultClass;

/// Why a backend could not be prepared or a batch could not run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BackendError {
    /// The scoring parameters overflow the 8-bit SIMD/SIMT arithmetic every
    /// backend is built on.
    ScoringOverflow,
    /// The requested backend name is not one of the known kinds.
    UnknownKind(String),
    /// The simulated device rejected the batch.
    Gpu(GpuError),
    /// A kernel panicked while executing one job — a backend bug, reported
    /// with the job's index in the submitted batch.
    JobPanic { index: usize, message: String },
    /// A [`FaultPlan`](crate::FaultPlan) rule fired on this submit.
    Injected { class: FaultClass, submit: u64 },
    /// The backend broke the submit contract: it returned a result vector
    /// of the wrong length.
    WrongResultCount { expected: usize, got: usize },
    /// The supervisor's watchdog abandoned the batch at its deadline.
    DeadlineExceeded,
    /// One or more jobs failed on every available backend; the supervisor
    /// quarantined them. Only surfaced through the plain `AlignBackend`
    /// trait — `submit_supervised` reports quarantines per job instead.
    Quarantined { jobs: usize },
}

impl fmt::Display for BackendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BackendError::ScoringOverflow => {
                write!(f, "scoring parameters overflow 8-bit backend arithmetic")
            }
            BackendError::UnknownKind(name) => {
                write!(
                    f,
                    "unknown backend {name:?} (expected \"cpu\" or \"gpu-sim\")"
                )
            }
            BackendError::Gpu(e) => write!(f, "gpu backend: {e}"),
            BackendError::JobPanic { index, message } => {
                write!(f, "kernel panicked on job {index}: {message}")
            }
            BackendError::Injected { class, submit } => {
                write!(f, "injected fault {} on submit {submit}", class.label())
            }
            BackendError::WrongResultCount { expected, got } => {
                write!(f, "backend returned {got} results for {expected} jobs")
            }
            BackendError::DeadlineExceeded => {
                write!(f, "batch abandoned at its deadline by the watchdog")
            }
            BackendError::Quarantined { jobs } => {
                write!(
                    f,
                    "{jobs} job(s) failed on every backend and were quarantined"
                )
            }
        }
    }
}

impl std::error::Error for BackendError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BackendError::Gpu(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GpuError> for BackendError {
    fn from(e: GpuError) -> Self {
        match e {
            GpuError::ScoringOverflow => BackendError::ScoringOverflow,
            other => BackendError::Gpu(other),
        }
    }
}
