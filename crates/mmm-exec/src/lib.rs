//! `mmm-exec` — the unified alignment-execution layer.
//!
//! The paper's system is one pipeline that routes base-level alignment to
//! whichever processor is present: CPU SIMD lanes, a GPU running one
//! sequence pair per thread block over up to 128 concurrent streams with a
//! per-stream memory pool and CPU fallback for oversized pairs (§4.5), or
//! KNL. This crate is that seam: the mapper emits batches of [`AlignJob`]s
//! and an [`AlignBackend`] session executes them —
//!
//! * [`CpuSimdBackend`] fans a batch across the worker-pool machinery with
//!   one recycled scratch arena per worker (the PR-1 zero-allocation
//!   contract);
//! * [`GpuSimtBackend`] feeds the simulated SIMT device and routes
//!   oversized or unsupported jobs back to the CPU executor.
//!
//! All backends are bit-identical: the simulated kernels delegate their
//! functional pass to the same difference-recurrence engines the CPU uses,
//! so backend choice changes *throughput accounting*, never output. The
//! xtask differential oracle enforces this cross-backend (DESIGN.md §9).

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod backend;
pub mod cpu;
pub mod error;
pub mod fault;
pub mod filter;
pub mod gpu;
pub mod health;
pub mod job;
pub mod sched;
pub mod sink;
pub mod stats;
pub mod supervisor;

pub use backend::{prepare, prepare_supervised, AlignBackend, BackendKind, BackendOptions};
pub use cpu::{align_jobs, align_jobs_with_scratch, CpuSimdBackend};
pub use error::BackendError;
pub use fault::{FaultAction, FaultClass, FaultPlan};
pub use filter::{PrefilterMode, PrefilterProbe, PREFILTER_MIN_SAMPLED, PREFILTER_WINDOW};
pub use gpu::GpuSimtBackend;
pub use health::{BreakerConfig, BreakerState, CircuitBreaker};
pub use job::{AlignJob, MAX_PLAN_SEGMENT};
pub use sched::{plan_schedule, Route, SchedBatch, SchedConfig, SchedMode, SchedulePlan};
pub use sink::{BufferSink, StatsReport, StatsSink, StderrSink};
pub use stats::BackendStats;
pub use supervisor::{JobOutcome, SupervisedBackend, SupervisorConfig};
