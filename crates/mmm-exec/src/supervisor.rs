//! The backend supervisor: retries, deadlines, demotion, quarantine.
//!
//! [`SupervisedBackend`] wraps a primary [`AlignBackend`] session (and an
//! optional standby, normally the CPU) and turns whole-batch backend
//! failures into the same per-item degradation discipline the rest of the
//! pipeline uses (DESIGN.md §10):
//!
//! 1. a failed batch `submit` is split and retried per job with bounded
//!    attempts and deterministic, seeded exponential backoff;
//! 2. an optional per-batch deadline is enforced by a watchdog runner
//!    thread — a hung submit is abandoned (its result slot poisoned, the
//!    batch rerouted) instead of wedging the compute thread;
//! 3. a [`CircuitBreaker`] demotes a repeatedly failing primary to the
//!    standby mid-run, with half-open probes to re-promote it;
//! 4. jobs that fail on *every* backend are quarantined and surfaced as
//!    per-job outcomes, never a fatal error (unless `fail_fast` asks for
//!    the old behaviour).
//!
//! Everything the supervisor does is counted in [`BackendStats`] so the
//! CLI and profiler can report interventions.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, PoisonError};
use std::time::Duration;

use mmm_align::AlignResult;

use crate::backend::AlignBackend;
use crate::error::BackendError;
use crate::health::{BreakerConfig, BreakerState, CircuitBreaker};
use crate::job::AlignJob;
use crate::sched::{plan_schedule, Route, SchedConfig, SchedMode};
use crate::stats::BackendStats;

/// Injectable time source so backoff-heavy paths are testable without
/// real sleeping. The watchdog deadline itself uses the real
/// `Condvar::wait_timeout` — it guards against *wall-clock* hangs.
pub trait Clock: Send + Sync {
    fn sleep(&self, d: Duration);
}

/// Production clock: actually sleeps.
#[derive(Debug, Default)]
pub struct SystemClock;

impl Clock for SystemClock {
    fn sleep(&self, d: Duration) {
        if !d.is_zero() {
            std::thread::sleep(d);
        }
    }
}

/// Test clock: records requested sleeps and returns immediately.
#[derive(Debug, Default)]
pub struct TestClock {
    slept: Mutex<Vec<Duration>>,
}

impl TestClock {
    pub fn sleeps(&self) -> Vec<Duration> {
        lock(&self.slept).clone()
    }
}

impl Clock for TestClock {
    fn sleep(&self, d: Duration) {
        lock(&self.slept).push(d);
    }
}

/// Supervisor tuning. [`Default`] keeps retries cheap enough for tests;
/// the CLI maps `--backend-retries`, `--batch-deadline-ms` and
/// `MMM_BACKEND_RETRIES` onto this.
#[derive(Clone, Debug)]
pub struct SupervisorConfig {
    /// Per-job attempts on the primary after a failed batch (0 = reroute
    /// straight to the standby).
    pub max_retries: usize,
    /// First backoff delay; attempt `k` waits `base * 2^k` plus seeded
    /// jitter in `[0, base)`.
    pub backoff_base: Duration,
    /// Seed for the deterministic backoff jitter.
    pub backoff_seed: u64,
    /// Watchdog deadline per backend call. `None` disables the watchdog.
    pub batch_deadline: Option<Duration>,
    /// Circuit-breaker tuning for the primary backend.
    pub breaker: BreakerConfig,
    /// Restore the pre-supervisor contract: the first unrecovered backend
    /// error aborts the batch instead of quarantining jobs.
    pub fail_fast: bool,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig {
            max_retries: 2,
            backoff_base: Duration::from_millis(1),
            backoff_seed: 0x5EED_CAFE,
            batch_deadline: None,
            breaker: BreakerConfig::default(),
            fail_fast: false,
        }
    }
}

impl SupervisorConfig {
    /// Apply `MMM_BACKEND_RETRIES` on top of the defaults, if set.
    pub fn from_env() -> Result<Self, String> {
        let mut cfg = SupervisorConfig::default();
        if let Ok(v) = std::env::var("MMM_BACKEND_RETRIES") {
            cfg.max_retries = v
                .trim()
                .parse()
                .map_err(|_| format!("MMM_BACKEND_RETRIES={v:?} is not an integer"))?;
        }
        Ok(cfg)
    }
}

/// Per-job result of a supervised batch.
#[derive(Clone, Debug, PartialEq)]
pub enum JobOutcome {
    /// The job completed on some backend.
    Done(AlignResult),
    /// The job failed on every available backend and was dropped; `reason`
    /// is the last error seen, for the CLI's degradation accounting.
    Quarantined { reason: String },
}

/// How a submission reached the runner thread.
type RunnerWork = (Arc<dyn AlignBackend>, Vec<AlignJob>, Arc<ResultSlot>);

/// One-shot rendezvous between the compute thread and the runner thread.
/// The watchdog poisons it (`Abandoned`) at the deadline; a result arriving
/// later is discarded and counted, never double-completed.
struct ResultSlot {
    state: Mutex<SlotState>,
    cv: Condvar,
}

enum SlotState {
    Pending,
    Done(Result<(Vec<AlignResult>, BackendStats), BackendError>),
    Abandoned,
}

impl ResultSlot {
    fn new() -> Self {
        ResultSlot {
            state: Mutex::new(SlotState::Pending),
            cv: Condvar::new(),
        }
    }
}

/// The detached thread that actually calls `submit` when a deadline is
/// armed. Dropping the sender lets a wedged thread exit once its backend
/// call finally returns.
struct Runner {
    tx: mpsc::Sender<RunnerWork>,
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    // Supervisor state is plain data; a panicking backend thread cannot
    // leave it half-updated in a way recovery would observe.
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

fn spawn_runner(late: Arc<AtomicU64>) -> Option<Runner> {
    let (tx, rx) = mpsc::channel::<RunnerWork>();
    let spawned = std::thread::Builder::new()
        .name("mmm-supervisor-runner".into())
        .spawn(move || {
            while let Ok((backend, jobs, slot)) = rx.recv() {
                let res = backend.submit(jobs);
                let mut st = lock(&slot.state);
                match *st {
                    SlotState::Pending => {
                        *st = SlotState::Done(res);
                        slot.cv.notify_all();
                    }
                    // The watchdog already gave up on this call; the result
                    // must not be delivered twice, only counted.
                    SlotState::Abandoned => {
                        late.fetch_add(1, Ordering::Relaxed);
                    }
                    SlotState::Done(_) => {}
                }
            }
        });
    spawned.ok().map(|_| Runner { tx })
}

/// Splitmix64 step — the same generator the fault plan uses, keyed
/// differently, so backoff schedules are replayable.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A supervised backend session (DESIGN.md §10).
pub struct SupervisedBackend {
    primary: Arc<dyn AlignBackend>,
    standby: Option<Arc<dyn AlignBackend>>,
    cfg: SupervisorConfig,
    clock: Arc<dyn Clock>,
    breaker: Mutex<CircuitBreaker>,
    runner: Mutex<Option<Runner>>,
    /// Results that arrived after their slot was poisoned.
    late: Arc<AtomicU64>,
    late_reported: AtomicU64,
}

impl SupervisedBackend {
    pub fn new(
        primary: Arc<dyn AlignBackend>,
        standby: Option<Arc<dyn AlignBackend>>,
        cfg: SupervisorConfig,
    ) -> Self {
        Self::with_clock(primary, standby, cfg, Arc::new(SystemClock))
    }

    /// Same, with an injected clock (tests).
    pub fn with_clock(
        primary: Arc<dyn AlignBackend>,
        standby: Option<Arc<dyn AlignBackend>>,
        cfg: SupervisorConfig,
        clock: Arc<dyn Clock>,
    ) -> Self {
        let breaker = CircuitBreaker::new(cfg.breaker);
        SupervisedBackend {
            primary,
            standby,
            cfg,
            clock,
            breaker: Mutex::new(breaker),
            runner: Mutex::new(None),
            late: Arc::new(AtomicU64::new(0)),
            late_reported: AtomicU64::new(0),
        }
    }

    /// Current breaker state (stats, tests).
    pub fn breaker_state(&self) -> BreakerState {
        lock(&self.breaker).state()
    }

    /// Deterministic backoff before retry `attempt` of job `salt`.
    fn backoff(&self, attempt: usize, salt: u64) -> Duration {
        let base = self.cfg.backoff_base;
        let exp = 1u32 << attempt.min(10) as u32;
        let jitter_ns = if base.is_zero() {
            0
        } else {
            splitmix64(self.cfg.backoff_seed ^ salt.rotate_left(17) ^ attempt as u64)
                % base.as_nanos().max(1) as u64
        };
        base * exp + Duration::from_nanos(jitter_ns)
    }

    /// One backend call, watched. Without a deadline this is a plain
    /// `submit`; with one, the call runs on the runner thread and is
    /// abandoned (slot poisoned, runner replaced) if it outlives the
    /// budget.
    fn guarded_submit(
        &self,
        backend: &Arc<dyn AlignBackend>,
        jobs: Vec<AlignJob>,
        stats: &mut BackendStats,
    ) -> Result<Vec<AlignResult>, BackendError> {
        let expected = jobs.len();
        let outcome = match self.cfg.batch_deadline {
            None => backend.submit(jobs),
            Some(deadline) => self.watched_submit(backend, jobs, deadline, stats),
        };
        let (results, inner) = outcome?;
        stats.merge(&inner);
        if results.len() != expected {
            return Err(BackendError::WrongResultCount {
                expected,
                got: results.len(),
            });
        }
        Ok(results)
    }

    fn watched_submit(
        &self,
        backend: &Arc<dyn AlignBackend>,
        jobs: Vec<AlignJob>,
        deadline: Duration,
        stats: &mut BackendStats,
    ) -> Result<(Vec<AlignResult>, BackendStats), BackendError> {
        let mut runner = lock(&self.runner);
        if runner.is_none() {
            *runner = spawn_runner(Arc::clone(&self.late));
        }
        let Some(r) = runner.as_ref() else {
            // Could not spawn a watchdog thread: degrade to an unwatched
            // call rather than failing the batch.
            return backend.submit(jobs);
        };
        let slot = Arc::new(ResultSlot::new());
        if let Err(send_err) = r.tx.send((Arc::clone(backend), jobs, Arc::clone(&slot))) {
            // The runner thread died; recover the jobs, run unwatched, and
            // respawn next time.
            *runner = None;
            let (_, jobs, _) = send_err.0;
            return backend.submit(jobs);
        }

        let guard = lock(&slot.state);
        let (mut st, timeout) = self
            .cv_wait(&slot, guard, deadline)
            .unwrap_or_else(PoisonError::into_inner);
        if matches!(*st, SlotState::Pending) && timeout {
            *st = SlotState::Abandoned;
            stats.deadline_kills += 1;
            // Drop the wedged runner: its sender disconnects, so the thread
            // exits once the hung submit returns (and is counted late).
            *runner = None;
            return Err(BackendError::DeadlineExceeded);
        }
        match std::mem::replace(&mut *st, SlotState::Abandoned) {
            SlotState::Done(res) => res,
            // Pending here would mean a spurious non-timeout wake with no
            // result; treat as a kill to stay safe.
            _ => {
                stats.deadline_kills += 1;
                *runner = None;
                Err(BackendError::DeadlineExceeded)
            }
        }
    }

    #[allow(clippy::type_complexity)]
    fn cv_wait<'a>(
        &self,
        slot: &'a ResultSlot,
        guard: std::sync::MutexGuard<'a, SlotState>,
        deadline: Duration,
    ) -> Result<
        (std::sync::MutexGuard<'a, SlotState>, bool),
        PoisonError<(std::sync::MutexGuard<'a, SlotState>, bool)>,
    > {
        match slot
            .cv
            .wait_timeout_while(guard, deadline, |s| matches!(s, SlotState::Pending))
        {
            Ok((g, t)) => Ok((g, t.timed_out())),
            Err(e) => {
                let (g, t) = e.into_inner();
                Ok((g, t.timed_out()))
            }
        }
    }

    /// Execute a batch under supervision. Every job gets an outcome; the
    /// only `Err` paths are `fail_fast` aborts.
    pub fn submit_supervised(
        &self,
        jobs: Vec<AlignJob>,
    ) -> Result<(Vec<JobOutcome>, BackendStats), BackendError> {
        let n = jobs.len();
        let cells: u64 = jobs.iter().map(AlignJob::cells).sum();
        let mut inner = BackendStats::default();
        let mut outcomes: Vec<Option<JobOutcome>> = (0..n).map(|_| None).collect();
        let trips_before = lock(&self.breaker).trips();

        let mut pending: Vec<usize> = (0..n).collect();
        if n > 0 {
            pending = self.primary_phase(&jobs, pending, &mut outcomes, &mut inner)?;
            pending = self.standby_phase(&jobs, pending, &mut outcomes, &mut inner)?;
            for &i in &pending {
                // fail_fast would have returned already; whatever reason the
                // phases recorded stands, but a job can only reach here with
                // no outcome if both phases were unavailable.
                if outcomes[i].is_none() {
                    outcomes[i] = Some(JobOutcome::Quarantined {
                        reason: "no backend available".into(),
                    });
                }
            }
        }

        let mut stats = inner;
        // The wrapper presents one batch of n jobs regardless of how many
        // inner submissions the recovery needed.
        stats.batches = 1;
        stats.jobs = n as u64;
        stats.cells = cells;
        stats.breaker_trips = lock(&self.breaker).trips() - trips_before;
        let late_total = self.late.load(Ordering::Relaxed);
        stats.late_results = late_total - self.late_reported.swap(late_total, Ordering::Relaxed);
        let quarantined = outcomes
            .iter()
            .filter(|o| matches!(o, Some(JobOutcome::Quarantined { .. })))
            .count();
        stats.quarantined = quarantined as u64;
        let outcomes: Vec<JobOutcome> = outcomes
            .into_iter()
            .map(|o| {
                o.unwrap_or(JobOutcome::Quarantined {
                    reason: "job lost by supervisor (bug)".into(),
                })
            })
            .collect();
        Ok((outcomes, stats))
    }

    /// Execute a batch through the length-binned scheduler (DESIGN.md §11):
    /// jobs are binned by DP size, bins are chunked under the config's
    /// batch budgets, device-eligible batches run through the full
    /// supervision ladder on the primary, and statically ineligible jobs
    /// are routed to the standby host executor pre-batch. Per-job outcomes
    /// are scattered back to their original indices, so callers observe
    /// exactly the [`submit_supervised`](Self::submit_supervised) contract
    /// — in `Fifo` mode this *is* a passthrough to it.
    pub fn submit_scheduled(
        &self,
        jobs: Vec<AlignJob>,
        sched: &SchedConfig,
    ) -> Result<(Vec<JobOutcome>, BackendStats), BackendError> {
        if sched.mode == SchedMode::Fifo || jobs.is_empty() {
            return self.submit_supervised(jobs);
        }
        let plan = plan_schedule(&jobs, |j| self.primary.device_eligible(j), sched);
        let n = jobs.len();
        let mut outcomes: Vec<Option<JobOutcome>> = (0..n).map(|_| None).collect();
        let mut stats = BackendStats::default();
        for batch in &plan.batches {
            let batch_jobs: Vec<AlignJob> =
                batch.indices.iter().map(|&i| jobs[i].clone()).collect();
            let (os, st) = match batch.route {
                Route::Primary => self.submit_supervised(batch_jobs)?,
                Route::Host => self.submit_host(batch_jobs)?,
            };
            stats.merge(&st);
            if batch.route == Route::Host {
                stats.sched_host_jobs += batch.indices.len() as u64;
            }
            for (&i, o) in batch.indices.iter().zip(os) {
                outcomes[i] = Some(o);
            }
        }
        stats.sched_batches = plan.batches.len() as u64;
        let outcomes: Vec<JobOutcome> = outcomes
            .into_iter()
            .map(|o| {
                o.unwrap_or(JobOutcome::Quarantined {
                    reason: "job lost by scheduler (bug)".into(),
                })
            })
            .collect();
        Ok((outcomes, stats))
    }

    /// Execute a host-routed scheduled batch: the standby executor first
    /// (the jobs are statically ineligible for the primary's device, so
    /// attempting it would only force its internal fallback), with the full
    /// supervision ladder as the recovery path if the standby itself fails.
    fn submit_host(
        &self,
        jobs: Vec<AlignJob>,
    ) -> Result<(Vec<JobOutcome>, BackendStats), BackendError> {
        let Some(standby) = self.standby.as_ref() else {
            // No standby means the primary is already the host executor.
            return self.submit_supervised(jobs);
        };
        let standby = Arc::clone(standby);
        let cells: u64 = jobs.iter().map(AlignJob::cells).sum();
        let n = jobs.len();
        let mut stats = BackendStats::default();
        match self.guarded_submit(&standby, jobs.clone(), &mut stats) {
            Ok(results) => {
                stats.batches = 1;
                stats.jobs = n as u64;
                stats.cells = cells;
                Ok((results.into_iter().map(JobOutcome::Done).collect(), stats))
            }
            Err(e) if self.cfg.fail_fast => Err(e),
            Err(_) => {
                // The host executor refused a whole batch (injected fault,
                // panic): degrade to the ordinary ladder, which retries and
                // quarantines per job. The failed attempt's counters (e.g. a
                // deadline kill) ride along.
                let (outcomes, mut inner) = self.submit_supervised(jobs)?;
                inner.merge(&stats);
                Ok((outcomes, inner))
            }
        }
    }

    /// Whole-batch primary attempt, then bounded per-job retries. Returns
    /// the indices still unresolved.
    fn primary_phase(
        &self,
        jobs: &[AlignJob],
        pending: Vec<usize>,
        outcomes: &mut [Option<JobOutcome>],
        stats: &mut BackendStats,
    ) -> Result<Vec<usize>, BackendError> {
        if !lock(&self.breaker).allow_primary() {
            return Ok(pending);
        }
        let batch: Vec<AlignJob> = pending.iter().map(|&i| jobs[i].clone()).collect();
        match self.guarded_submit(&self.primary, batch, stats) {
            Ok(results) => {
                lock(&self.breaker).record(true);
                for (&i, r) in pending.iter().zip(results) {
                    outcomes[i] = Some(JobOutcome::Done(r));
                }
                return Ok(Vec::new());
            }
            Err(e) => {
                lock(&self.breaker).record(false);
                if self.cfg.fail_fast {
                    return Err(e);
                }
                if matches!(e, BackendError::DeadlineExceeded) {
                    // A hung backend is not retried job-by-job — each retry
                    // could burn another full deadline. Reroute the batch.
                    return Ok(pending);
                }
            }
        }

        // Per-job retry rounds with backoff; stop early if the breaker
        // opens (each failed attempt is recorded against it).
        let mut still: Vec<usize> = Vec::new();
        'jobs: for &i in &pending {
            for attempt in 0..self.cfg.max_retries {
                if !lock(&self.breaker).allow_primary() {
                    break;
                }
                self.clock.sleep(self.backoff(attempt, i as u64));
                stats.retries += 1;
                match self.guarded_submit(&self.primary, vec![jobs[i].clone()], stats) {
                    Ok(mut results) => {
                        lock(&self.breaker).record(true);
                        if let Some(r) = results.pop() {
                            outcomes[i] = Some(JobOutcome::Done(r));
                            stats.retried_ok += 1;
                            continue 'jobs;
                        }
                    }
                    Err(e) => {
                        lock(&self.breaker).record(false);
                        if self.cfg.fail_fast {
                            return Err(e);
                        }
                    }
                }
            }
            still.push(i);
        }
        Ok(still)
    }

    /// Route unresolved jobs to the standby: whole batch first, then per
    /// job; anything that still fails is quarantined.
    fn standby_phase(
        &self,
        jobs: &[AlignJob],
        pending: Vec<usize>,
        outcomes: &mut [Option<JobOutcome>],
        stats: &mut BackendStats,
    ) -> Result<Vec<usize>, BackendError> {
        if pending.is_empty() {
            return Ok(pending);
        }
        let Some(standby) = self.standby.as_ref() else {
            if self.cfg.fail_fast {
                return Err(BackendError::Quarantined {
                    jobs: pending.len(),
                });
            }
            for &i in &pending {
                outcomes[i] = Some(JobOutcome::Quarantined {
                    reason: "primary failed and no standby backend".into(),
                });
            }
            return Ok(pending);
        };

        stats.rerouted += pending.len() as u64;
        let standby = Arc::clone(standby);
        lock(&self.breaker).note_standby_submit();
        let batch: Vec<AlignJob> = pending.iter().map(|&i| jobs[i].clone()).collect();
        match self.guarded_submit(&standby, batch, stats) {
            Ok(results) => {
                for (&i, r) in pending.iter().zip(results) {
                    outcomes[i] = Some(JobOutcome::Done(r));
                    stats.retried_ok += 1;
                }
                return Ok(Vec::new());
            }
            Err(e) if self.cfg.fail_fast => return Err(e),
            Err(_) => {}
        }

        let mut still = Vec::new();
        for &i in &pending {
            lock(&self.breaker).note_standby_submit();
            match self.guarded_submit(&standby, vec![jobs[i].clone()], stats) {
                Ok(mut results) => {
                    if let Some(r) = results.pop() {
                        outcomes[i] = Some(JobOutcome::Done(r));
                        stats.retried_ok += 1;
                    }
                }
                Err(e) => {
                    if self.cfg.fail_fast {
                        return Err(e);
                    }
                    outcomes[i] = Some(JobOutcome::Quarantined {
                        reason: format!("all backends failed, last: {e}"),
                    });
                    still.push(i);
                }
            }
        }
        Ok(still)
    }
}

impl AlignBackend for SupervisedBackend {
    fn label(&self) -> &'static str {
        self.primary.label()
    }

    /// Eligibility is the primary's: supervision changes recovery, not
    /// what the device can natively execute.
    fn device_eligible(&self, job: &AlignJob) -> bool {
        self.primary.device_eligible(job)
    }

    /// The plain trait surface: quarantines become a single typed error,
    /// because this signature has no per-job channel. Callers that can
    /// degrade per job should use
    /// [`submit_supervised`](SupervisedBackend::submit_supervised).
    fn submit(
        &self,
        jobs: Vec<AlignJob>,
    ) -> Result<(Vec<AlignResult>, BackendStats), BackendError> {
        let (outcomes, stats) = self.submit_supervised(jobs)?;
        let mut results = Vec::with_capacity(outcomes.len());
        let mut quarantined = 0usize;
        for o in outcomes {
            match o {
                JobOutcome::Done(r) => results.push(r),
                JobOutcome::Quarantined { .. } => quarantined += 1,
            }
        }
        if quarantined > 0 {
            return Err(BackendError::Quarantined { jobs: quarantined });
        }
        Ok((results, stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{prepare, BackendKind, BackendOptions};
    use crate::fault::FaultPlan;
    use mmm_align::Scoring;

    fn test_jobs(n: usize) -> Vec<AlignJob> {
        (0..n)
            .map(|k| {
                AlignJob::global(
                    (0..60).map(|i| ((i * 3 + k) % 4) as u8).collect(),
                    (0..50).map(|i| ((i * 7 + k) % 4) as u8).collect(),
                    true,
                )
            })
            .collect()
    }

    fn cpu_with_plan(plan: Option<&str>) -> Arc<dyn AlignBackend> {
        let mut opts = BackendOptions::new(Scoring::MAP_ONT);
        opts.fault = plan.map(|p| FaultPlan::parse(p).expect("test plan"));
        Arc::from(prepare(BackendKind::Cpu, &opts).expect("cpu backend"))
    }

    fn expected_results(jobs: &[AlignJob]) -> Vec<AlignResult> {
        let (results, _) = cpu_with_plan(None)
            .submit(jobs.to_vec())
            .expect("clean run");
        results
    }

    #[test]
    fn clean_batch_passes_through_untouched() {
        let sup = SupervisedBackend::with_clock(
            cpu_with_plan(None),
            None,
            SupervisorConfig::default(),
            Arc::new(TestClock::default()),
        );
        let jobs = test_jobs(4);
        let (outcomes, stats) = sup.submit_supervised(jobs.clone()).expect("supervised");
        let gold = expected_results(&jobs);
        for (o, g) in outcomes.iter().zip(&gold) {
            assert_eq!(*o, JobOutcome::Done(g.clone()));
        }
        assert_eq!(stats.jobs, 4);
        assert_eq!(stats.batches, 1);
        assert!(!stats.supervised_activity(), "{stats:?}");
    }

    #[test]
    fn failed_batch_recovers_via_per_job_retries() {
        // Submit 0 (the whole batch) fails; per-job retries (submits 1..)
        // succeed on the same backend.
        let clock = Arc::new(TestClock::default());
        let sup = SupervisedBackend::with_clock(
            cpu_with_plan(Some("launch-fail:batches=0..1")),
            None,
            SupervisorConfig::default(),
            Arc::clone(&clock) as Arc<dyn Clock>,
        );
        let jobs = test_jobs(3);
        let (outcomes, stats) = sup.submit_supervised(jobs.clone()).expect("supervised");
        let gold = expected_results(&jobs);
        for (o, g) in outcomes.iter().zip(&gold) {
            assert_eq!(*o, JobOutcome::Done(g.clone()));
        }
        assert_eq!(stats.retries, 3);
        assert_eq!(stats.retried_ok, 3);
        assert_eq!(stats.quarantined, 0);
        assert_eq!(stats.jobs, 3);
        // One backoff sleep per retry, and the schedule replays exactly.
        assert_eq!(clock.sleeps().len(), 3);
        let clock2 = Arc::new(TestClock::default());
        let sup2 = SupervisedBackend::with_clock(
            cpu_with_plan(Some("launch-fail:batches=0..1")),
            None,
            SupervisorConfig::default(),
            Arc::clone(&clock2) as Arc<dyn Clock>,
        );
        sup2.submit_supervised(jobs).expect("supervised");
        assert_eq!(clock.sleeps(), clock2.sleeps(), "backoff not deterministic");
    }

    #[test]
    fn wrong_length_result_is_caught_and_retried() {
        let sup = SupervisedBackend::with_clock(
            cpu_with_plan(Some("wrong-len:batches=0..1")),
            None,
            SupervisorConfig::default(),
            Arc::new(TestClock::default()),
        );
        let jobs = test_jobs(3);
        let (outcomes, stats) = sup.submit_supervised(jobs.clone()).expect("supervised");
        let gold = expected_results(&jobs);
        for (o, g) in outcomes.iter().zip(&gold) {
            assert_eq!(*o, JobOutcome::Done(g.clone()));
        }
        assert_eq!(stats.quarantined, 0);
        assert!(stats.retried_ok >= 1);
    }

    #[test]
    fn total_primary_failure_demotes_to_standby_and_trips_breaker() {
        let cfg = SupervisorConfig {
            breaker: BreakerConfig {
                window: 4,
                trip_failures: 2,
                cooldown: 100,
            },
            ..Default::default()
        };
        let sup = SupervisedBackend::with_clock(
            cpu_with_plan(Some("launch-fail")),
            Some(cpu_with_plan(None)),
            cfg,
            Arc::new(TestClock::default()),
        );
        let jobs = test_jobs(3);
        let (outcomes, stats) = sup.submit_supervised(jobs.clone()).expect("supervised");
        let gold = expected_results(&jobs);
        for (o, g) in outcomes.iter().zip(&gold) {
            assert_eq!(*o, JobOutcome::Done(g.clone()));
        }
        assert_eq!(stats.quarantined, 0);
        assert_eq!(stats.rerouted, 3);
        assert_eq!(stats.breaker_trips, 1);
        assert_eq!(sup.breaker_state(), BreakerState::Open);
        // Next batch goes straight to the standby, no primary attempts.
        let (_, stats2) = sup.submit_supervised(jobs).expect("supervised");
        assert_eq!(stats2.rerouted, 3);
        assert_eq!(stats2.retries, 0);
        assert_eq!(stats2.breaker_trips, 0);
    }

    #[test]
    fn half_open_probe_repromotes_recovered_primary() {
        let cfg = SupervisorConfig {
            max_retries: 0,
            breaker: BreakerConfig {
                window: 1,
                trip_failures: 1,
                cooldown: 1,
            },
            ..Default::default()
        };
        // Primary fails submits 0..2, healthy afterwards.
        let sup = SupervisedBackend::with_clock(
            cpu_with_plan(Some("launch-fail:batches=0..2")),
            Some(cpu_with_plan(None)),
            cfg,
            Arc::new(TestClock::default()),
        );
        let jobs = test_jobs(2);
        // Batch 1: trips open, reroutes; cooldown=1 moves it to half-open.
        let (_, s1) = sup.submit_supervised(jobs.clone()).expect("b1");
        assert_eq!(s1.breaker_trips, 1);
        assert_eq!(sup.breaker_state(), BreakerState::HalfOpen);
        // Batch 2: probe (submit 1) fails, reopen, reroute, half-open again.
        let (_, s2) = sup.submit_supervised(jobs.clone()).expect("b2");
        assert_eq!(s2.breaker_trips, 0, "failed probe is not a new trip");
        assert_eq!(sup.breaker_state(), BreakerState::HalfOpen);
        // Batch 3: probe (submit 2) succeeds → closed, served by primary.
        let (outcomes, s3) = sup.submit_supervised(jobs.clone()).expect("b3");
        assert_eq!(sup.breaker_state(), BreakerState::Closed);
        assert_eq!(s3.rerouted, 0);
        let gold = expected_results(&jobs);
        for (o, g) in outcomes.iter().zip(&gold) {
            assert_eq!(*o, JobOutcome::Done(g.clone()));
        }
    }

    #[test]
    fn exhausted_backends_quarantine_instead_of_erroring() {
        let sup = SupervisedBackend::with_clock(
            cpu_with_plan(Some("launch-fail")),
            None,
            SupervisorConfig::default(),
            Arc::new(TestClock::default()),
        );
        let jobs = test_jobs(2);
        let (outcomes, stats) = sup.submit_supervised(jobs.clone()).expect("supervised");
        assert_eq!(stats.quarantined, 2);
        for o in &outcomes {
            assert!(matches!(o, JobOutcome::Quarantined { .. }), "{o:?}");
        }
        // The plain trait surface reports the same thing as a typed error.
        let err = sup.submit(jobs).expect_err("quarantine error");
        assert_eq!(err, BackendError::Quarantined { jobs: 2 });
    }

    #[test]
    fn fail_fast_restores_fatal_errors() {
        let cfg = SupervisorConfig {
            fail_fast: true,
            ..Default::default()
        };
        let sup = SupervisedBackend::with_clock(
            cpu_with_plan(Some("launch-fail")),
            None,
            cfg,
            Arc::new(TestClock::default()),
        );
        let err = sup.submit_supervised(test_jobs(2)).expect_err("fail fast");
        assert!(matches!(err, BackendError::Injected { .. }), "{err:?}");
    }

    #[test]
    fn hang_is_killed_by_deadline_and_rerouted() {
        let cfg = SupervisorConfig {
            batch_deadline: Some(Duration::from_millis(40)),
            ..Default::default()
        };
        let sup = SupervisedBackend::with_clock(
            cpu_with_plan(Some("hang:ms=400:batches=0..1")),
            Some(cpu_with_plan(None)),
            cfg,
            Arc::new(TestClock::default()),
        );
        let jobs = test_jobs(2);
        let start = std::time::Instant::now();
        let (outcomes, stats) = sup.submit_supervised(jobs.clone()).expect("supervised");
        assert!(
            start.elapsed() < Duration::from_millis(350),
            "watchdog did not cut the hang short"
        );
        assert_eq!(stats.deadline_kills, 1);
        assert_eq!(stats.rerouted, 2);
        assert_eq!(stats.quarantined, 0);
        let gold = expected_results(&jobs);
        for (o, g) in outcomes.iter().zip(&gold) {
            assert_eq!(*o, JobOutcome::Done(g.clone()));
        }
        // The abandoned submit eventually completes on the runner thread
        // and must be discarded, not delivered: wait for the late counter.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while sup.late.load(Ordering::Relaxed) == 0 {
            assert!(
                std::time::Instant::now() < deadline,
                "late result never counted"
            );
            std::thread::sleep(Duration::from_millis(10));
        }
        let (_, stats2) = sup.submit_supervised(jobs).expect("second batch");
        assert_eq!(stats2.late_results, 1);
        assert_eq!(stats2.deadline_kills, 0);
    }

    #[test]
    fn empty_batch_is_a_noop() {
        let sup = SupervisedBackend::with_clock(
            cpu_with_plan(Some("launch-fail")),
            None,
            SupervisorConfig::default(),
            Arc::new(TestClock::default()),
        );
        let (outcomes, stats) = sup.submit_supervised(Vec::new()).expect("empty");
        assert!(outcomes.is_empty());
        assert_eq!(stats.jobs, 0);
        assert_eq!(stats.quarantined, 0);
    }
}
