//! The `AlignBackend` trait and backend selection.

use std::sync::Arc;

use mmm_align::{best_engine, AlignResult, Engine, Scoring};

use crate::cpu::CpuSimdBackend;
use crate::error::BackendError;
use crate::fault::FaultPlan;
use crate::gpu::GpuSimtBackend;
use crate::job::AlignJob;
use crate::stats::BackendStats;
use crate::supervisor::{SupervisedBackend, SupervisorConfig};

/// A batched alignment executor. One session is prepared per run (scoring
/// is fixed up front, like a device context) and then fed job batches; the
/// pipeline's compute stage is backend-agnostic above this trait, which is
/// the seam a real GPU or KNL backend drops into.
pub trait AlignBackend: Send + Sync {
    /// Short name for summaries ("cpu", "gpu-sim").
    fn label(&self) -> &'static str;

    /// Execute a batch. Returns one result per job, in job order, plus the
    /// batch's statistics. Errors are whole-batch (bad configuration, a
    /// kernel bug) — per-job size limits never fail, they fall back.
    fn submit(&self, jobs: Vec<AlignJob>)
        -> Result<(Vec<AlignResult>, BackendStats), BackendError>;

    /// Whether this backend can execute `job` natively, without routing it
    /// through an internal host fallback. The batch scheduler
    /// (`crate::sched`) uses this to send statically ineligible jobs —
    /// oversized footprints, unsupported boundary modes — straight to the
    /// host executor instead of letting them stall a device batch. The
    /// default claims everything, which is correct for host backends.
    fn device_eligible(&self, _job: &AlignJob) -> bool {
        true
    }
}

/// Which backend implementation to prepare.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BackendKind {
    /// Host SIMD lanes across the worker pool.
    Cpu,
    /// The simulated GPU/SIMT runner (streams, memory pool, CPU fallback).
    GpuSim,
}

impl BackendKind {
    /// Parse a `--backend` value.
    pub fn parse(name: &str) -> Result<Self, BackendError> {
        match name {
            "cpu" => Ok(BackendKind::Cpu),
            "gpu-sim" | "gpu" => Ok(BackendKind::GpuSim),
            other => Err(BackendError::UnknownKind(other.to_string())),
        }
    }

    /// The `MMM_BACKEND` environment selection, if set.
    pub fn from_env() -> Option<Result<Self, BackendError>> {
        std::env::var("MMM_BACKEND").ok().map(|v| Self::parse(&v))
    }

    /// Name as accepted by [`parse`](Self::parse).
    pub fn label(self) -> &'static str {
        match self {
            BackendKind::Cpu => "cpu",
            BackendKind::GpuSim => "gpu-sim",
        }
    }
}

/// Session parameters shared by every backend kind.
#[derive(Clone, Debug)]
pub struct BackendOptions {
    pub scoring: Scoring,
    /// Host engine used by the CPU backend and by device fallbacks.
    pub engine: Engine,
    /// Worker threads the CPU executor may use per batch.
    pub threads: usize,
    /// Override the simulated device's global memory (bytes); small values
    /// force the oversized-pair fallback path. `None` keeps the V100 16 GB.
    pub device_mem: Option<u64>,
    /// Override the number of device streams.
    pub streams: Option<usize>,
    /// Deterministic fault-injection schedule for this session's `submit`
    /// calls (chaos testing). `None` in production.
    pub fault: Option<FaultPlan>,
}

impl BackendOptions {
    /// Defaults: given scoring, best host engine, single-threaded.
    pub fn new(scoring: Scoring) -> Self {
        BackendOptions {
            scoring,
            engine: best_engine(),
            threads: 1,
            device_mem: None,
            streams: None,
            fault: None,
        }
    }
}

/// Prepare a backend session: validate the scoring once, stand up the
/// device context (streams + resident memory pool) if needed.
pub fn prepare(
    kind: BackendKind,
    opts: &BackendOptions,
) -> Result<Box<dyn AlignBackend>, BackendError> {
    if !opts.scoring.fits_i8() {
        return Err(BackendError::ScoringOverflow);
    }
    match kind {
        BackendKind::Cpu => Ok(Box::new(CpuSimdBackend::new(opts))),
        BackendKind::GpuSim => Ok(Box::new(GpuSimtBackend::new(opts))),
    }
}

/// Prepare a backend under the supervisor (DESIGN.md §10): the primary
/// session is wrapped in retry/deadline/circuit-breaker handling, with a
/// fault-free CPU standby for demotion when the primary is not already the
/// CPU. This is what the CLI uses; [`prepare`] remains the raw seam.
pub fn prepare_supervised(
    kind: BackendKind,
    opts: &BackendOptions,
    cfg: SupervisorConfig,
) -> Result<SupervisedBackend, BackendError> {
    let primary: Arc<dyn AlignBackend> = Arc::from(prepare(kind, opts)?);
    let standby: Option<Arc<dyn AlignBackend>> = match kind {
        BackendKind::Cpu => None,
        _ => {
            // The standby must not share the primary's fault plan: it is the
            // recovery path chaos plans are recovered *to*.
            let clean = BackendOptions {
                fault: None,
                ..opts.clone()
            };
            Some(Arc::from(prepare(BackendKind::Cpu, &clean)?))
        }
    };
    Ok(SupervisedBackend::new(primary, standby, cfg))
}
