//! Deterministic fault injection for the execution seam.
//!
//! A [`FaultPlan`] tells a backend to misbehave on chosen `submit` calls —
//! the chaos plane the supervisor (DESIGN.md §10) is tested against. Plans
//! are pure data: given the same plan and the same submit index the same
//! fault fires, so a failing chaos run is replayable from its plan string
//! alone (pass it back via `--inject-backend-fault` or `MMM_FAULT_PLAN`).
//!
//! # Grammar
//!
//! ```text
//! plan    := rule (';' rule)*
//! rule    := class (':' param)*
//! class   := 'launch-fail' | 'mempool-full' | 'hang' | 'wrong-len'
//! param   := 'batches=' N '..' M     fire on submit indices [N, M)
//!          | 'every=' K              fire on every K-th submit (0, K, 2K…)
//!          | 'p=' F ':seed=' S       fire with probability F, seeded
//!          | 'ms=' N                 hang duration (hang only, default 1000)
//! ```
//!
//! With no selector a rule fires on every submit. The first matching rule
//! wins. Examples: `launch-fail` (every submit fails),
//! `hang:ms=400:batches=0..1`, `wrong-len:every=3`,
//! `mempool-full:p=0.25:seed=7`.

use std::time::Duration;

/// What kind of backend failure to inject.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultClass {
    /// The stream launch fails: `submit` returns a typed error without
    /// executing anything.
    LaunchFail,
    /// The device memory pool is exhausted: `submit` returns a typed error.
    MempoolFull,
    /// The backend wedges mid-submit for the configured duration, then
    /// completes normally — the case the watchdog deadline exists for, and
    /// the source of results that arrive after their slot was poisoned.
    Hang,
    /// The backend returns one result fewer than it was given jobs — the
    /// wrong-length contract violation the supervisor must catch.
    WrongLen,
}

impl FaultClass {
    /// Name as written in a plan string.
    pub fn label(self) -> &'static str {
        match self {
            FaultClass::LaunchFail => "launch-fail",
            FaultClass::MempoolFull => "mempool-full",
            FaultClass::Hang => "hang",
            FaultClass::WrongLen => "wrong-len",
        }
    }

    /// All classes, for chaos-matrix tests.
    pub fn all() -> [FaultClass; 4] {
        [
            FaultClass::LaunchFail,
            FaultClass::MempoolFull,
            FaultClass::Hang,
            FaultClass::WrongLen,
        ]
    }
}

/// When a rule fires, relative to the backend's own submit counter.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Selector {
    /// Every submit.
    All,
    /// Submit indices in `[start, end)`.
    Range(u64, u64),
    /// Every `k`-th submit (0, k, 2k, …).
    Every(u64),
    /// Seeded Bernoulli draw per submit index; `p_ppm` is parts-per-million
    /// so the selector stays `Eq` and exactly replayable.
    Seeded { p_ppm: u64, seed: u64 },
}

impl Selector {
    fn fires(self, submit: u64) -> bool {
        match self {
            Selector::All => true,
            Selector::Range(a, b) => (a..b).contains(&submit),
            Selector::Every(k) => k > 0 && submit.is_multiple_of(k),
            Selector::Seeded { p_ppm, seed } => {
                // splitmix64 keyed by (seed, submit): the same pair always
                // draws the same value, independent of call order.
                let mut z = seed ^ submit.wrapping_mul(0x9E37_79B9_7F4A_7C15);
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^= z >> 31;
                (z % 1_000_000) < p_ppm
            }
        }
    }
}

/// One parsed plan rule.
#[derive(Clone, Debug, PartialEq, Eq)]
struct FaultRule {
    class: FaultClass,
    sel: Selector,
    hang: Duration,
}

/// What the backend should do for the current submit, if anything.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultAction {
    /// Return [`BackendError::Injected`] with [`FaultClass::LaunchFail`].
    ///
    /// [`BackendError::Injected`]: crate::BackendError::Injected
    FailLaunch,
    /// Return [`BackendError::Injected`] with [`FaultClass::MempoolFull`].
    ///
    /// [`BackendError::Injected`]: crate::BackendError::Injected
    FailMempool,
    /// Sleep this long before executing the batch normally.
    Hang(Duration),
    /// Execute normally but drop the last result.
    DropResult,
}

/// A deterministic, replayable fault schedule for one backend session.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct FaultPlan {
    rules: Vec<FaultRule>,
}

impl FaultPlan {
    /// Parse a plan string (see the module docs for the grammar).
    pub fn parse(text: &str) -> Result<FaultPlan, String> {
        let mut rules = Vec::new();
        for rule_text in text.split(';') {
            let rule_text = rule_text.trim();
            if rule_text.is_empty() {
                continue;
            }
            let mut parts = rule_text.split(':');
            let class = match parts.next().map(str::trim) {
                Some("launch-fail") => FaultClass::LaunchFail,
                Some("mempool-full") => FaultClass::MempoolFull,
                Some("hang") => FaultClass::Hang,
                Some("wrong-len") => FaultClass::WrongLen,
                other => {
                    return Err(format!(
                        "fault plan: unknown class {:?} (expected launch-fail, \
                         mempool-full, hang or wrong-len)",
                        other.unwrap_or("")
                    ))
                }
            };
            let mut sel = Selector::All;
            let mut hang_ms = 1_000u64;
            let mut p_ppm: Option<u64> = None;
            let mut seed = 0u64;
            for param in parts {
                let (key, value) = param
                    .split_once('=')
                    .ok_or_else(|| format!("fault plan: parameter {param:?} is not key=value"))?;
                match key.trim() {
                    "batches" => {
                        let (a, b) = value
                            .split_once("..")
                            .ok_or_else(|| format!("fault plan: batches={value:?} is not N..M"))?;
                        let a = parse_u64("batches start", a)?;
                        let b = parse_u64("batches end", b)?;
                        if b <= a {
                            return Err(format!("fault plan: empty range batches={value}"));
                        }
                        sel = Selector::Range(a, b);
                    }
                    "every" => {
                        let k = parse_u64("every", value)?;
                        if k == 0 {
                            return Err("fault plan: every=0 never fires".into());
                        }
                        sel = Selector::Every(k);
                    }
                    "p" => {
                        let p: f64 = value
                            .trim()
                            .parse()
                            .map_err(|_| format!("fault plan: p={value:?} is not a number"))?;
                        if !(0.0..=1.0).contains(&p) {
                            return Err(format!("fault plan: p={p} outside [0, 1]"));
                        }
                        p_ppm = Some((p * 1_000_000.0) as u64);
                    }
                    "seed" => seed = parse_u64("seed", value)?,
                    "ms" => hang_ms = parse_u64("ms", value)?,
                    other => return Err(format!("fault plan: unknown parameter {other:?}")),
                }
            }
            if let Some(p_ppm) = p_ppm {
                sel = Selector::Seeded { p_ppm, seed };
            }
            rules.push(FaultRule {
                class,
                sel,
                hang: Duration::from_millis(hang_ms),
            });
        }
        if rules.is_empty() {
            return Err("fault plan: empty plan".into());
        }
        Ok(FaultPlan { rules })
    }

    /// The `MMM_FAULT_PLAN` environment plan, if set.
    pub fn from_env() -> Option<Result<FaultPlan, String>> {
        std::env::var("MMM_FAULT_PLAN")
            .ok()
            .map(|v| Self::parse(&v))
    }

    /// The action (first matching rule) for the backend's `submit` number
    /// `submit`, counted from zero per session.
    pub fn action(&self, submit: u64) -> Option<FaultAction> {
        self.rules
            .iter()
            .find(|r| r.sel.fires(submit))
            .map(|r| match r.class {
                FaultClass::LaunchFail => FaultAction::FailLaunch,
                FaultClass::MempoolFull => FaultAction::FailMempool,
                FaultClass::Hang => FaultAction::Hang(r.hang),
                FaultClass::WrongLen => FaultAction::DropResult,
            })
    }
}

/// Per-session fault state: the plan plus this backend's own submit
/// counter. Backends consult it at the top of `submit`; the internal
/// executors (e.g. the gpu backend's host fallback path) bypass it, so one
/// fired rule maps to exactly one failed `submit`.
#[derive(Debug, Default)]
pub(crate) struct FaultHook {
    plan: Option<FaultPlan>,
    submits: std::sync::atomic::AtomicU64,
}

impl FaultHook {
    pub(crate) fn new(plan: Option<FaultPlan>) -> Self {
        FaultHook {
            plan,
            submits: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// Advance the submit counter and act on any scheduled fault: typed
    /// errors return early, a hang sleeps here (inside the backend call, so
    /// the watchdog sees a wedged submit). Returns whether the completed
    /// batch must drop its last result (`wrong-len`).
    pub(crate) fn begin_submit(&self) -> Result<bool, crate::BackendError> {
        let submit = self
            .submits
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        match self.plan.as_ref().and_then(|p| p.action(submit)) {
            None => Ok(false),
            Some(FaultAction::FailLaunch) => Err(crate::BackendError::Injected {
                class: FaultClass::LaunchFail,
                submit,
            }),
            Some(FaultAction::FailMempool) => Err(crate::BackendError::Injected {
                class: FaultClass::MempoolFull,
                submit,
            }),
            Some(FaultAction::Hang(d)) => {
                std::thread::sleep(d);
                Ok(false)
            }
            Some(FaultAction::DropResult) => Ok(true),
        }
    }
}

fn parse_u64(what: &str, value: &str) -> Result<u64, String> {
    value
        .trim()
        .parse()
        .map_err(|_| format!("fault plan: {what}={value:?} is not an integer"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bare_class_fires_always() {
        let p = FaultPlan::parse("launch-fail").unwrap();
        for i in [0, 1, 17, 1_000_000] {
            assert_eq!(p.action(i), Some(FaultAction::FailLaunch));
        }
    }

    #[test]
    fn range_selector_is_half_open() {
        let p = FaultPlan::parse("wrong-len:batches=2..4").unwrap();
        assert_eq!(p.action(1), None);
        assert_eq!(p.action(2), Some(FaultAction::DropResult));
        assert_eq!(p.action(3), Some(FaultAction::DropResult));
        assert_eq!(p.action(4), None);
    }

    #[test]
    fn every_selector_includes_zero() {
        let p = FaultPlan::parse("mempool-full:every=3").unwrap();
        assert_eq!(p.action(0), Some(FaultAction::FailMempool));
        assert_eq!(p.action(1), None);
        assert_eq!(p.action(3), Some(FaultAction::FailMempool));
    }

    #[test]
    fn hang_duration_is_configurable() {
        let p = FaultPlan::parse("hang:ms=250:batches=0..1").unwrap();
        assert_eq!(
            p.action(0),
            Some(FaultAction::Hang(Duration::from_millis(250)))
        );
        assert_eq!(p.action(1), None);
    }

    #[test]
    fn seeded_selector_is_replayable_and_roughly_calibrated() {
        let p = FaultPlan::parse("launch-fail:p=0.5:seed=42").unwrap();
        let q = FaultPlan::parse("launch-fail:p=0.5:seed=42").unwrap();
        let hits: usize = (0..1_000).filter(|&i| p.action(i).is_some()).count();
        for i in 0..1_000 {
            assert_eq!(p.action(i), q.action(i), "submit {i} not replayable");
        }
        assert!((350..650).contains(&hits), "p=0.5 drew {hits}/1000");
        // A different seed draws a different schedule.
        let r = FaultPlan::parse("launch-fail:p=0.5:seed=43").unwrap();
        assert!((0..1_000).any(|i| p.action(i) != r.action(i)));
    }

    #[test]
    fn first_matching_rule_wins() {
        let p = FaultPlan::parse("hang:batches=0..1; launch-fail").unwrap();
        assert!(matches!(p.action(0), Some(FaultAction::Hang(_))));
        assert_eq!(p.action(1), Some(FaultAction::FailLaunch));
    }

    #[test]
    fn parse_errors_are_descriptive() {
        for (text, needle) in [
            ("", "empty plan"),
            ("gpu-on-fire", "unknown class"),
            ("hang:ms", "not key=value"),
            ("launch-fail:batches=3..3", "empty range"),
            ("launch-fail:every=0", "never fires"),
            ("launch-fail:p=1.5", "outside [0, 1]"),
            ("launch-fail:frequency=2", "unknown parameter"),
        ] {
            let err = FaultPlan::parse(text).unwrap_err();
            assert!(err.contains(needle), "{text:?} -> {err:?}");
        }
    }
}
