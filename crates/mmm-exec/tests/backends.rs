//! Backend behaviour tests: CPU/GPU parity against the scalar gold,
//! oversized-pair fallback accounting, mempool steady state across batches,
//! and stream round-robin occupancy.

use mmm_align::{AlignMode, Layout, Scoring, Width};
use mmm_exec::{prepare, AlignJob, BackendKind, BackendOptions, BackendStats, GpuSimtBackend};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const SC: Scoring = Scoring::MAP_ONT;

fn random_seq(rng: &mut StdRng, len: usize) -> Vec<u8> {
    (0..len).map(|_| rng.random_range(0u32..4) as u8).collect()
}

fn job_stream(n: usize, seed: u64, max_len: usize) -> Vec<AlignJob> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let tlen = rng.random_range(1..max_len);
            let qlen = rng.random_range(1..max_len);
            let t = random_seq(&mut rng, tlen);
            let q = random_seq(&mut rng, qlen);
            AlignJob::global(t, q, i % 2 == 0)
        })
        .collect()
}

fn scalar_gold(job: &AlignJob) -> mmm_align::AlignResult {
    mmm_align::Engine::new(Layout::Manymap, Width::Scalar).align(
        &job.target,
        &job.query,
        &SC,
        job.mode,
        job.with_path,
    )
}

#[test]
fn both_backends_match_scalar_gold() {
    let jobs = job_stream(24, 0xBEEF, 200);
    let mut opts = BackendOptions::new(SC);
    opts.threads = 3;
    for kind in [BackendKind::Cpu, BackendKind::GpuSim] {
        let backend = prepare(kind, &opts).unwrap();
        let (results, stats) = backend.submit(jobs.clone()).unwrap();
        assert_eq!(results.len(), jobs.len());
        assert_eq!(stats.jobs, jobs.len() as u64);
        for (i, (r, j)) in results.iter().zip(&jobs).enumerate() {
            assert_eq!(*r, scalar_gold(j), "{} job {i}", backend.label());
        }
    }
}

#[test]
fn gpu_routes_oversized_pairs_to_cpu_and_counts_them() {
    // A 32 MB simulated device cannot hold a 5 kbp with-path pair
    // (~50 MB footprint); the answer must still come back, via the CPU,
    // and be identical to what the CPU backend produces.
    let mut opts = BackendOptions::new(SC);
    opts.device_mem = Some(32 << 20);
    let gpu = prepare(BackendKind::GpuSim, &opts).unwrap();
    let cpu = prepare(BackendKind::Cpu, &opts).unwrap();

    let mut rng = StdRng::seed_from_u64(7);
    let small = AlignJob::global(random_seq(&mut rng, 300), random_seq(&mut rng, 310), true);
    let big = AlignJob::global(
        random_seq(&mut rng, 5_000),
        random_seq(&mut rng, 5_000),
        true,
    );
    let jobs = vec![small, big];

    let (gpu_results, gpu_stats) = gpu.submit(jobs.clone()).unwrap();
    let (cpu_results, cpu_stats) = cpu.submit(jobs).unwrap();
    assert_eq!(gpu_results, cpu_results);
    assert_eq!(gpu_stats.fallbacks, 1, "exactly the big pair fell back");
    assert_eq!(cpu_stats.fallbacks, 0);
    assert!(gpu_stats.fallback_seconds > 0.0);
}

#[test]
fn non_global_modes_fall_back() {
    // The device batch kernel only implements global alignment; a
    // semi-global job must route to the CPU executor, not crash or return
    // a wrong-mode answer.
    let opts = BackendOptions::new(SC);
    let gpu = prepare(BackendKind::GpuSim, &opts).unwrap();
    let mut rng = StdRng::seed_from_u64(11);
    let job = AlignJob {
        target: random_seq(&mut rng, 120),
        query: random_seq(&mut rng, 100),
        mode: AlignMode::SemiGlobal,
        with_path: true,
    };
    let (results, stats) = gpu.submit(vec![job.clone()]).unwrap();
    assert_eq!(results[0], scalar_gold(&job));
    assert_eq!(stats.fallbacks, 1);
}

#[test]
fn mempool_reaches_steady_state_across_batches() {
    let opts = BackendOptions::new(SC);
    let gpu = GpuSimtBackend::new(&opts);
    let jobs = job_stream(16, 0xABCD, 300);
    let (_, first) = mmm_exec::AlignBackend::submit(&gpu, jobs.clone()).unwrap();
    let peak = gpu.pool_peak_used();
    assert!(peak > 0, "warm-up must touch the pool");
    for _ in 0..3 {
        let (_, stats) = mmm_exec::AlignBackend::submit(&gpu, jobs.clone()).unwrap();
        assert_eq!(stats.bytes_pooled, first.bytes_pooled);
    }
    assert_eq!(
        gpu.pool_peak_used(),
        peak,
        "resident pool grew after warm-up"
    );
}

#[test]
fn streams_fill_round_robin() {
    // 4 streams × equal-footprint jobs: round-robin assignment puts one
    // kernel in every slab, so the pool's high-water mark is ~4 slabs'
    // worth, not one. A single-stream pile-up would peak at one footprint.
    let mut opts = BackendOptions::new(SC);
    opts.streams = Some(4);
    let gpu = GpuSimtBackend::new(&opts);
    let jobs: Vec<AlignJob> = (0..8)
        .map(|k| {
            let t: Vec<u8> = (0..400).map(|i| ((i * 3 + k) % 4) as u8).collect();
            let q: Vec<u8> = (0..400).map(|i| ((i * 7 + k) % 4) as u8).collect();
            AlignJob::global(t, q, false)
        })
        .collect();
    let (_, stats) = mmm_exec::AlignBackend::submit(&gpu, jobs).unwrap();
    assert_eq!(stats.fallbacks, 0);
    let per_job = stats.bytes_pooled / 8;
    assert_eq!(
        gpu.pool_peak_used(),
        4 * per_job,
        "peak occupancy must span all four stream slabs"
    );
}

#[test]
fn stats_merge_accumulates_across_batches() {
    let opts = BackendOptions::new(SC);
    let cpu = prepare(BackendKind::Cpu, &opts).unwrap();
    let mut acc = BackendStats::default();
    for seed in 0..3u64 {
        let (_, stats) = cpu.submit(job_stream(5, seed, 100)).unwrap();
        acc.merge(&stats);
    }
    assert_eq!(acc.batches, 3);
    assert_eq!(acc.jobs, 15);
    assert!(acc.cells > 0);
}

#[test]
fn backend_kind_parsing() {
    assert_eq!(BackendKind::parse("cpu").unwrap(), BackendKind::Cpu);
    assert_eq!(BackendKind::parse("gpu-sim").unwrap(), BackendKind::GpuSim);
    assert_eq!(BackendKind::parse("gpu").unwrap(), BackendKind::GpuSim);
    assert!(BackendKind::parse("tpu").is_err());
}
