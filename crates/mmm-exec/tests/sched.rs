//! Scheduler property suite (DESIGN.md §11).
//!
//! The length-binned scheduler is pure reordering, so three properties
//! must hold on top of the chaos suite's guarantees:
//!
//! 1. **order restoration** — whatever order batches are dispatched in
//!    (including adversarial seeded permutations of the bin order), the
//!    per-job outcomes come back scattered to their original indices and
//!    every `Done` result is bit-identical to the scalar gold;
//! 2. **routing accounting** — jobs the device statically cannot take are
//!    counted in `sched_host_jobs`, never in `rerouted` (host routing is a
//!    plan, not a recovery), and a clean scheduled run reports no
//!    supervisor interventions;
//! 3. **fault transparency** — with a fault plan injected under the
//!    scheduler, the counters still reconcile exactly: outcomes cover
//!    every job, `quarantined` equals the quarantined outcomes observed,
//!    and a standby-equipped gpu-sim session quarantines nothing.

use mmm_align::{Layout, Scoring, Width};
use mmm_exec::{
    prepare_supervised, AlignJob, BackendKind, BackendOptions, FaultClass, FaultPlan, JobOutcome,
    SchedConfig, SchedMode, SupervisedBackend, SupervisorConfig,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const SC: Scoring = Scoring::MAP_ONT;

/// Shrunken simulated device: straddles the job stream below, so every
/// scheduled run exercises both the device route and the host route.
const TINY_DEVICE_MEM: u64 = 16_384;

fn random_seq(rng: &mut StdRng, len: usize) -> Vec<u8> {
    (0..len).map(|_| rng.random_range(0u32..4) as u8).collect()
}

fn job_stream(n: usize, seed: u64, max_len: usize) -> Vec<AlignJob> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let tlen = rng.random_range(1..max_len);
            let qlen = rng.random_range(1..max_len);
            let t = random_seq(&mut rng, tlen);
            let q = random_seq(&mut rng, qlen);
            AlignJob::global(t, q, i % 2 == 0)
        })
        .collect()
}

fn scalar_gold(job: &AlignJob) -> mmm_align::AlignResult {
    mmm_align::Engine::new(Layout::Manymap, Width::Scalar).align(
        &job.target,
        &job.query,
        &SC,
        job.mode,
        job.with_path,
    )
}

fn supervised(kind: BackendKind, device_mem: Option<u64>, plan: Option<&str>) -> SupervisedBackend {
    let mut opts = BackendOptions::new(SC);
    opts.threads = 2;
    opts.device_mem = device_mem;
    opts.fault = plan.map(|p| FaultPlan::parse(p).expect("test plan must parse"));
    let cfg = SupervisorConfig {
        backoff_base: std::time::Duration::ZERO,
        ..Default::default()
    };
    prepare_supervised(kind, &opts, cfg).expect("prepare_supervised")
}

fn bins(permute_seed: Option<u64>) -> SchedConfig {
    SchedConfig {
        mode: SchedMode::Bins,
        // Small budgets force many batches, so permutations actually move
        // work around.
        max_batch_jobs: 5,
        max_batch_cells: 40_000,
        permute_seed,
    }
}

#[test]
fn permuted_bin_dispatch_restores_exact_output_order() {
    let jobs = job_stream(40, 0x5CED, 200);
    let golds: Vec<_> = jobs.iter().map(scalar_gold).collect();
    let sup = supervised(BackendKind::GpuSim, Some(TINY_DEVICE_MEM), None);

    let mut host_routed_seen = false;
    for seed in [None, Some(1), Some(42), Some(0xDEADBEEF), Some(u64::MAX)] {
        let (outcomes, stats) = sup
            .submit_scheduled(jobs.clone(), &bins(seed))
            .expect("scheduled submit");
        assert_eq!(outcomes.len(), jobs.len(), "seed {seed:?}");
        for (i, o) in outcomes.iter().enumerate() {
            match o {
                JobOutcome::Done(r) => assert_eq!(
                    *r, golds[i],
                    "seed {seed:?}: job {i} result out of place or corrupted"
                ),
                JobOutcome::Quarantined { reason } => {
                    panic!("seed {seed:?}: clean run quarantined job {i}: {reason}")
                }
            }
        }
        assert_eq!(stats.jobs, jobs.len() as u64, "seed {seed:?}");
        assert!(stats.sched_batches > 1, "seed {seed:?}: {stats:?}");
        assert_eq!(
            stats.rerouted, 0,
            "seed {seed:?}: host routing must not count as a supervisor reroute"
        );
        assert!(
            !stats.supervised_activity(),
            "seed {seed:?}: clean scheduled run reported interventions: {stats:?}"
        );
        host_routed_seen |= stats.sched_host_jobs > 0;
        // The tiny device must make routing real: some jobs host-routed,
        // but never all of them.
        assert!(
            stats.sched_host_jobs < stats.jobs,
            "seed {seed:?}: every job host-routed — the device saw nothing"
        );
    }
    assert!(
        host_routed_seen,
        "tiny device produced no host-routed jobs; the stream no longer straddles"
    );
}

#[test]
fn fifo_mode_is_an_exact_passthrough() {
    let jobs = job_stream(20, 0xF1F0, 150);
    let sup = supervised(BackendKind::GpuSim, None, None);
    let fifo = SchedConfig::default();
    assert_eq!(fifo.mode, SchedMode::Fifo);
    let (sched_out, sched_stats) = sup.submit_scheduled(jobs.clone(), &fifo).unwrap();
    let (direct_out, direct_stats) = sup.submit_supervised(jobs).unwrap();
    assert_eq!(sched_out, direct_out);
    assert_eq!(sched_stats.sched_batches, 0);
    assert_eq!(sched_stats.sched_host_jobs, 0);
    assert_eq!(sched_stats.jobs, direct_stats.jobs);
    assert_eq!(sched_stats.batches, direct_stats.batches);
}

#[test]
fn scheduling_on_a_cpu_primary_degenerates_gracefully() {
    // The CPU backend has no standby and declares every job eligible, so
    // a scheduled submit is just re-batched supervised execution.
    let jobs = job_stream(15, 0xCB0, 120);
    let golds: Vec<_> = jobs.iter().map(scalar_gold).collect();
    let sup = supervised(BackendKind::Cpu, None, None);
    let (outcomes, stats) = sup.submit_scheduled(jobs, &bins(Some(7))).unwrap();
    for (i, o) in outcomes.iter().enumerate() {
        assert_eq!(*o, JobOutcome::Done(golds[i].clone()), "job {i}");
    }
    assert_eq!(stats.sched_host_jobs, 0);
    assert!(stats.sched_batches > 0);
}

#[test]
fn chaos_under_the_scheduler_reconciles_counters() {
    let jobs = job_stream(24, 0xC405, 200);
    let golds: Vec<_> = jobs.iter().map(scalar_gold).collect();

    for class in FaultClass::all() {
        // The hang class needs a deadline to be observable; the chaos suite
        // covers it. Here every non-hang class runs under the scheduler.
        if matches!(class, FaultClass::Hang) {
            continue;
        }
        let plan = match class {
            FaultClass::LaunchFail => "launch-fail:every=2",
            FaultClass::MempoolFull => "mempool-full:every=2",
            FaultClass::WrongLen => "wrong-len:every=2",
            FaultClass::Hang => unreachable!(),
        };
        let sup = supervised(BackendKind::GpuSim, Some(TINY_DEVICE_MEM), Some(plan));
        let (outcomes, stats) = sup
            .submit_scheduled(jobs.clone(), &bins(Some(3)))
            .expect("scheduled submit never errors without fail_fast");
        let tag = format!("scheduled gpu-sim under {plan}");

        assert_eq!(outcomes.len(), jobs.len(), "{tag}");
        let mut quarantined = 0u64;
        for (i, o) in outcomes.iter().enumerate() {
            match o {
                JobOutcome::Done(r) => {
                    assert_eq!(*r, golds[i], "{tag}: job {i} corrupted by recovery")
                }
                JobOutcome::Quarantined { .. } => quarantined += 1,
            }
        }
        assert_eq!(
            stats.quarantined, quarantined,
            "{tag}: stats disagree with observed outcomes"
        );
        // A standby-equipped session absorbs every fault class: the
        // scheduler must not open a quarantine hole the plain supervisor
        // does not have.
        assert_eq!(quarantined, 0, "{tag}: standby failed to absorb faults");
        assert_eq!(stats.jobs, jobs.len() as u64, "{tag}");
        assert!(
            stats.retries + stats.rerouted > 0,
            "{tag}: plan injected nothing — the chaos run was a no-op"
        );
    }
}

#[test]
fn scheduled_chaos_is_replayable() {
    let jobs = job_stream(18, 0xD1CE, 160);
    let run = || {
        let sup = supervised(
            BackendKind::GpuSim,
            Some(TINY_DEVICE_MEM),
            Some("launch-fail:p=0.5:seed=99"),
        );
        sup.submit_scheduled(jobs.clone(), &bins(Some(11))).unwrap()
    };
    let (out_a, stats_a) = run();
    let (out_b, stats_b) = run();
    assert_eq!(
        out_a, out_b,
        "seeded scheduled run produced different outcomes"
    );
    assert_eq!(
        stats_a, stats_b,
        "seeded scheduled run produced different counters"
    );
}
