//! Deterministic chaos suite for the supervised backend (DESIGN.md §10).
//!
//! Every fault class the injection layer knows (`FaultClass::all()`) is
//! driven through both backend kinds under supervision, and three
//! properties must hold regardless of the fault:
//!
//! 1. **output integrity** — every job the supervisor reports as `Done`
//!    is bit-identical to the scalar manymap gold; recovery may reroute
//!    or retry, but it must never alter a result;
//! 2. **accounting** — the counters reconcile exactly: outcomes cover
//!    every job, `quarantined` in the stats equals the quarantined
//!    outcomes observed, and a standby-equipped session quarantines
//!    nothing;
//! 3. **determinism** — the same seeded plan over the same job stream
//!    produces the same outcomes and the same counters on a fresh
//!    session (chaos runs are replayable bug reports).

use std::time::Duration;

use mmm_align::{Layout, Scoring, Width};
use mmm_exec::{
    prepare_supervised, AlignJob, BackendKind, BackendOptions, BackendStats, BreakerState,
    FaultClass, FaultPlan, JobOutcome, SupervisedBackend, SupervisorConfig,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const SC: Scoring = Scoring::MAP_ONT;

fn random_seq(rng: &mut StdRng, len: usize) -> Vec<u8> {
    (0..len).map(|_| rng.random_range(0u32..4) as u8).collect()
}

fn job_stream(n: usize, seed: u64, max_len: usize) -> Vec<AlignJob> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let tlen = rng.random_range(1..max_len);
            let qlen = rng.random_range(1..max_len);
            let t = random_seq(&mut rng, tlen);
            let q = random_seq(&mut rng, qlen);
            AlignJob::global(t, q, i % 2 == 0)
        })
        .collect()
}

fn scalar_gold(job: &AlignJob) -> mmm_align::AlignResult {
    mmm_align::Engine::new(Layout::Manymap, Width::Scalar).align(
        &job.target,
        &job.query,
        &SC,
        job.mode,
        job.with_path,
    )
}

/// A supervised session whose *primary* runs under the given fault plan.
/// The standby (gpu-sim sessions only) is always clean, as in production.
fn supervised(kind: BackendKind, plan: &str, deadline_ms: Option<u64>) -> SupervisedBackend {
    let mut opts = BackendOptions::new(SC);
    opts.threads = 2;
    opts.fault = Some(FaultPlan::parse(plan).expect("test plan must parse"));
    let cfg = SupervisorConfig {
        // The backoff schedule is still computed (and deterministic); a
        // zero base keeps the chaos suite from actually sleeping.
        backoff_base: Duration::ZERO,
        batch_deadline: deadline_ms.map(Duration::from_millis),
        ..Default::default()
    };
    prepare_supervised(kind, &opts, cfg).expect("prepare_supervised")
}

/// A plan for each fault class that leaves some submits clean, so every
/// run exercises both the failure path and the recovery path. The hang
/// plan wedges only the first submit — each kill costs a full deadline.
fn plan_for(class: FaultClass) -> (&'static str, Option<u64>) {
    match class {
        FaultClass::LaunchFail => ("launch-fail:every=2", None),
        FaultClass::MempoolFull => ("mempool-full:every=2", None),
        FaultClass::Hang => ("hang:ms=2000:batches=0..1", Some(100)),
        FaultClass::WrongLen => ("wrong-len:every=2", None),
    }
}

/// Feed the stream through in fixed-size batches, collecting per-job
/// outcomes and merged stats.
fn run_batches(
    sup: &SupervisedBackend,
    jobs: &[AlignJob],
    batch: usize,
) -> (Vec<JobOutcome>, BackendStats) {
    let mut outcomes = Vec::with_capacity(jobs.len());
    let mut stats = BackendStats::default();
    for chunk in jobs.chunks(batch) {
        let (out, st) = sup
            .submit_supervised(chunk.to_vec())
            .expect("supervised submit never errors without fail_fast");
        assert_eq!(out.len(), chunk.len(), "every job must get an outcome");
        assert_eq!(st.jobs, chunk.len() as u64);
        assert_eq!(st.batches, 1, "the wrapper presents one batch per call");
        outcomes.extend(out);
        stats.merge(&st);
    }
    (outcomes, stats)
}

#[test]
fn every_fault_class_on_both_backends_preserves_done_results() {
    let jobs = job_stream(12, 0xC4A05, 120);
    let golds: Vec<_> = jobs.iter().map(scalar_gold).collect();

    for kind in [BackendKind::Cpu, BackendKind::GpuSim] {
        for class in FaultClass::all() {
            let (plan, deadline) = plan_for(class);
            let sup = supervised(kind, plan, deadline);
            let (outcomes, stats) = run_batches(&sup, &jobs, 4);
            let tag = format!("{} under {plan}", kind.label());

            let mut quarantined = 0u64;
            for (i, o) in outcomes.iter().enumerate() {
                match o {
                    JobOutcome::Done(r) => {
                        assert_eq!(*r, golds[i], "{tag}: job {i} result corrupted by recovery");
                    }
                    JobOutcome::Quarantined { reason } => {
                        assert!(!reason.is_empty(), "{tag}: empty quarantine reason");
                        quarantined += 1;
                    }
                }
            }
            assert_eq!(
                stats.quarantined, quarantined,
                "{tag}: stats disagree with observed outcomes"
            );
            assert_eq!(stats.jobs, jobs.len() as u64, "{tag}");
            if matches!(kind, BackendKind::GpuSim) {
                // A standby-equipped session must absorb every fault class
                // without losing a single job.
                assert_eq!(quarantined, 0, "{tag}: standby failed to absorb faults");
                assert!(
                    stats.retries + stats.rerouted > 0,
                    "{tag}: plan injected nothing — the chaos run was a no-op"
                );
            }
            if matches!(class, FaultClass::Hang) {
                assert!(
                    stats.deadline_kills >= 1,
                    "{tag}: the watchdog never fired on a wedged submit"
                );
            }
        }
    }
}

#[test]
fn seeded_chaos_runs_are_replayable() {
    let jobs = job_stream(10, 0xD1CE, 100);
    let plan = "launch-fail:p=0.5:seed=99";
    let run = || {
        let sup = supervised(BackendKind::GpuSim, plan, None);
        run_batches(&sup, &jobs, 3)
    };
    let (out_a, stats_a) = run();
    let (out_b, stats_b) = run();
    assert_eq!(out_a, out_b, "seeded plan produced different outcomes");
    assert_eq!(stats_a, stats_b, "seeded plan produced different counters");
}

#[test]
fn total_primary_failure_trips_the_breaker_and_loses_nothing() {
    let jobs = job_stream(16, 0xF00D, 100);
    let golds: Vec<_> = jobs.iter().map(scalar_gold).collect();
    let sup = supervised(BackendKind::GpuSim, "launch-fail", None);
    let (outcomes, stats) = run_batches(&sup, &jobs, 4);
    for (i, o) in outcomes.iter().enumerate() {
        match o {
            JobOutcome::Done(r) => assert_eq!(*r, golds[i], "job {i}"),
            JobOutcome::Quarantined { reason } => {
                panic!("job {i} quarantined despite a healthy standby: {reason}")
            }
        }
    }
    assert!(stats.breaker_trips >= 1, "breaker never tripped: {stats:?}");
    assert_eq!(
        sup.breaker_state(),
        BreakerState::Open,
        "a 100%-failing primary must be demoted"
    );
    assert_eq!(stats.rerouted, jobs.len() as u64, "{stats:?}");
}

#[test]
fn clean_plan_counts_nothing() {
    // `batches=1000..1001` never matches a real submit: the supervised
    // session must behave exactly like an unsupervised one.
    let jobs = job_stream(8, 0xCAFE, 100);
    let golds: Vec<_> = jobs.iter().map(scalar_gold).collect();
    for kind in [BackendKind::Cpu, BackendKind::GpuSim] {
        let sup = supervised(kind, "launch-fail:batches=1000..1001", Some(60_000));
        let (outcomes, stats) = run_batches(&sup, &jobs, 4);
        for (i, o) in outcomes.iter().enumerate() {
            assert_eq!(
                *o,
                JobOutcome::Done(golds[i].clone()),
                "{} job {i}",
                kind.label()
            );
        }
        assert!(
            !stats.supervised_activity(),
            "{}: clean run must report no interventions: {stats:?}",
            kind.label()
        );
    }
}
