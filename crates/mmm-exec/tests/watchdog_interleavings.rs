//! Model-checked interleavings of the supervisor's watchdog rendezvous
//! (`supervisor.rs`: `ResultSlot` / `watched_submit` / the runner thread),
//! explored with the vendored `loom-lite` cooperative scheduler.
//!
//! The protocol under test is a one-shot slot with three states —
//! `Pending`, `Done(result)`, `Abandoned` — shared by three parties:
//!
//! * the **runner** finishes the backend call and, under the slot lock,
//!   publishes `Done` (notifying the waiter) *unless* the slot was already
//!   poisoned, in which case it only bumps the late counter;
//! * the **compute thread** waits on the condvar; when the deadline fires
//!   while the slot is still `Pending` it poisons the slot (`Abandoned`)
//!   and reroutes; when it observes `Done` it consumes the result — even
//!   if the deadline fired in the same instant;
//! * the **deadline** itself is wall-clock in production
//!   (`Condvar::wait_timeout_while`). `loom-lite` has no timed waits, so
//!   the model makes the timeout an explicit third thread that can fire at
//!   *any* point — a strictly larger set of interleavings than real time
//!   allows, which is exactly what we want to enumerate.
//!
//! Safety properties checked on every schedule:
//!
//! 1. **exactly-once decision** — the batch is either delivered or killed,
//!    never both, never neither;
//! 2. **no double-completion** — the runner's result is consumed exactly
//!    once: by the waiter (delivered) or by the late counter (discarded);
//! 3. **no deadlock / lost wakeup** — `loom-lite` reports any schedule
//!    where a thread parks forever (ISSUE: deadline-fires-during-submit
//!    and result-arrives-after-poison are specific schedules inside this
//!    enumeration).
//!
//! A deliberately broken variant — the historical bug shape where the
//! runner publishes `Done` *without* checking for `Abandoned` — asserts
//! that the checker catches double-completion, so a regression in the
//! model itself cannot silently pass.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

use loom_lite::sync::atomic::AtomicUsize;
use loom_lite::sync::{Condvar, Mutex};
use loom_lite::{thread, Builder, Report};

/// Slot states, mirroring `supervisor::SlotState`.
const PENDING: usize = 0;
const DONE: usize = 1;
const ABANDONED: usize = 2;

/// One explored execution of the rendezvous. `runner_checks_poison`
/// selects the real protocol (`true`) or the broken historical variant
/// that overwrites the slot unconditionally (`false`).
fn rendezvous_execution(runner_checks_poison: bool) {
    // (slot state, deadline fired?) — both live under the one slot mutex,
    // exactly as `wait_timeout_while` evaluates timeout and predicate
    // under the lock in the real code.
    let slot = Arc::new(Mutex::new((PENDING, false)));
    let cv = Arc::new(Condvar::new());
    let late = Arc::new(AtomicUsize::new(0));
    let delivered = Arc::new(AtomicUsize::new(0));
    let killed = Arc::new(AtomicUsize::new(0));

    // Runner: the backend call returns at some arbitrary point and the
    // result is published under the lock.
    let runner = {
        let slot = Arc::clone(&slot);
        let cv = Arc::clone(&cv);
        let late = Arc::clone(&late);
        thread::spawn(move || {
            let mut st = slot.lock();
            if !runner_checks_poison {
                // Broken variant: publish unconditionally.
                st.0 = DONE;
                cv.notify_all();
                return;
            }
            match st.0 {
                PENDING => {
                    st.0 = DONE;
                    cv.notify_all();
                }
                // The watchdog gave up on this call: count, don't deliver.
                ABANDONED => {
                    late.fetch_add(1);
                }
                _ => {}
            }
        })
    };

    // Timer: the deadline can fire at any point relative to the other two
    // threads. Firing sets the flag under the lock and wakes the waiter,
    // which is how a `wait_timeout` return materializes in the model.
    let timer = {
        let slot = Arc::clone(&slot);
        let cv = Arc::clone(&cv);
        thread::spawn(move || {
            let mut st = slot.lock();
            st.1 = true;
            cv.notify_all();
        })
    };

    // Compute thread (the `watched_submit` caller): wait until the slot
    // leaves `Pending` or the deadline fires; `Done` wins a tie.
    {
        let mut st = slot.lock();
        loop {
            if st.0 == DONE {
                // Consume the result exactly once (the real code
                // `mem::replace`s the state with `Abandoned`).
                st.0 = ABANDONED;
                delivered.fetch_add(1);
                break;
            }
            if st.1 {
                // Timed out while still pending: poison and reroute.
                assert_eq!(st.0, PENDING, "slot corrupted before poison");
                st.0 = ABANDONED;
                killed.fetch_add(1);
                break;
            }
            st = cv.wait(st);
        }
    }

    runner.join();
    timer.join();

    // No orphaned completion: once everyone is done the slot is always
    // `Abandoned` — either the waiter consumed the result (and replaced it)
    // or the runner saw the poison and backed off. A final `Done` means a
    // result was published into a rendezvous nobody owns: exactly the
    // double-completion shape the poison check exists to prevent.
    assert_eq!(
        slot.lock().0,
        ABANDONED,
        "result published into an abandoned rendezvous"
    );

    let delivered = delivered.load();
    let killed = killed.load();
    let late = late.load();
    assert_eq!(
        delivered + killed,
        1,
        "the batch must be decided exactly once (delivered={delivered}, killed={killed})"
    );
    if runner_checks_poison {
        assert_eq!(
            delivered + late,
            1,
            "the runner's result must be consumed exactly once \
             (delivered={delivered}, late={late})"
        );
        if killed == 1 {
            assert_eq!(
                late, 1,
                "a result arriving after the poison must be counted late"
            );
        }
    }
}

/// The three-thread rendezvous is small; explore it exhaustively.
fn exhaustive() -> Builder {
    Builder {
        max_schedules: 500_000,
        max_steps: 20_000,
        max_preemptions: None,
        ..Builder::default()
    }
}

#[test]
fn watchdog_rendezvous_is_safe_under_every_schedule() {
    let report: Report = exhaustive().check(|| rendezvous_execution(true));
    assert!(report.complete, "exploration truncated: {report:?}");
    // Sanity: the model has real concurrency to explore (deadline before
    // submit finishes, result after poison, notify before wait, ...).
    assert!(report.schedules > 10, "{report:?}");
}

/// Canary: the broken runner (publishes `Done` over an `Abandoned` slot)
/// must be caught as a double-completion. If this stops failing, the model
/// has lost its teeth — not the protocol its bugs.
#[test]
fn checker_catches_unconditional_publish() {
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        exhaustive().check(|| rendezvous_execution(false))
    }));
    assert!(
        outcome.is_err(),
        "the broken variant explored clean — the model no longer distinguishes \
         poisoned slots from pending ones"
    );
}

/// Directed replay of the two schedules the ISSUE names, as plain unit
/// interleavings (subsets of the exhaustive run, kept as explicit
/// regression anchors):
/// deadline-fires-during-submit — timer first, runner last;
/// result-arrives-after-poison — runner's publish races past the kill.
#[test]
fn named_schedules_hold() {
    // Timer fires before the runner finishes: the waiter kills, the late
    // result is discarded and counted.
    let report = Builder {
        max_schedules: 500_000,
        max_steps: 20_000,
        // Preemption-bounded pass: the named schedules need at most two
        // forced switches, so this still covers them while running fast
        // enough to keep in the default test profile.
        max_preemptions: Some(2),
        ..Builder::default()
    }
    .check(|| rendezvous_execution(true));
    assert!(report.schedules > 0);
}
