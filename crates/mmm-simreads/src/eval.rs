//! Mapping accuracy evaluation (Table 5's error-rate column).
//!
//! Following the minimap2 paper's criterion, a read is *correctly mapped*
//! when its primary alignment lands on the true reference sequence and
//! strand and the reported interval overlaps the true interval by at least
//! 10% of the true length. The error rate is the number of wrongly mapped
//! reads divided by the number of mapped reads, exactly as §5.3.3 defines.

use crate::pbsim::TrueOrigin;

/// One primary mapping produced by an aligner.
#[derive(Clone, Copy, Debug)]
pub struct MappingCall {
    /// Index of the read in the simulated set.
    pub read_id: usize,
    pub rid: u32,
    pub ref_start: u32,
    pub ref_end: u32,
    pub rev: bool,
    pub mapq: u8,
}

/// Aggregate accuracy numbers.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct EvalSummary {
    pub total_reads: usize,
    pub mapped: usize,
    pub correct: usize,
    pub wrong: usize,
}

impl EvalSummary {
    /// Wrong / mapped — the paper's "Error Rate (%)", already scaled to %.
    pub fn error_rate_pct(&self) -> f64 {
        if self.mapped == 0 {
            return 0.0;
        }
        100.0 * self.wrong as f64 / self.mapped as f64
    }

    /// Mapped / total.
    pub fn mapped_frac(&self) -> f64 {
        if self.total_reads == 0 {
            return 0.0;
        }
        self.mapped as f64 / self.total_reads as f64
    }
}

/// Is this call correct for the given truth?
pub fn is_correct(call: &MappingCall, truth: &TrueOrigin) -> bool {
    if call.rid != truth.rid || call.rev != truth.rev {
        return false;
    }
    let inter = call
        .ref_end
        .min(truth.end)
        .saturating_sub(call.ref_start.max(truth.start));
    let true_len = (truth.end - truth.start).max(1);
    inter as f64 >= 0.1 * true_len as f64
}

/// Evaluate a set of primary calls against the ground truth.
pub fn evaluate(calls: &[MappingCall], truths: &[TrueOrigin]) -> EvalSummary {
    let mut s = EvalSummary {
        total_reads: truths.len(),
        ..Default::default()
    };
    for c in calls {
        s.mapped += 1;
        if is_correct(c, &truths[c.read_id]) {
            s.correct += 1;
        } else {
            s.wrong += 1;
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn truth() -> TrueOrigin {
        TrueOrigin {
            rid: 0,
            start: 1000,
            end: 3000,
            rev: false,
        }
    }

    fn call(rs: u32, re: u32, rev: bool) -> MappingCall {
        MappingCall {
            read_id: 0,
            rid: 0,
            ref_start: rs,
            ref_end: re,
            rev,
            mapq: 60,
        }
    }

    #[test]
    fn exact_call_is_correct() {
        assert!(is_correct(&call(1000, 3000, false), &truth()));
    }

    #[test]
    fn partial_overlap_counts() {
        // 250 bp overlap of a 2000 bp truth = 12.5% ≥ 10%.
        assert!(is_correct(&call(2750, 4750, false), &truth()));
        // 100 bp overlap = 5% < 10%.
        assert!(!is_correct(&call(2900, 4900, false), &truth()));
    }

    #[test]
    fn wrong_strand_or_rid_is_wrong() {
        assert!(!is_correct(&call(1000, 3000, true), &truth()));
        let mut c = call(1000, 3000, false);
        c.rid = 1;
        assert!(!is_correct(&c, &truth()));
    }

    #[test]
    fn summary_counts() {
        let truths = vec![
            truth(),
            TrueOrigin {
                rid: 0,
                start: 50_000,
                end: 52_000,
                rev: true,
            },
        ];
        let calls = vec![
            call(1000, 3000, false), // correct for read 0
            MappingCall {
                read_id: 1,
                rid: 0,
                ref_start: 0,
                ref_end: 100,
                rev: true,
                mapq: 3,
            },
        ];
        let s = evaluate(&calls, &truths);
        assert_eq!(s.total_reads, 2);
        assert_eq!(s.mapped, 2);
        assert_eq!(s.correct, 1);
        assert_eq!(s.wrong, 1);
        assert!((s.error_rate_pct() - 50.0).abs() < 1e-9);
        assert!((s.mapped_frac() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn unmapped_reads_lower_mapped_frac_not_error_rate() {
        let truths = vec![truth(), truth()];
        let calls = vec![call(1000, 3000, false)];
        let s = evaluate(&calls, &truths);
        assert_eq!(s.mapped, 1);
        assert_eq!(s.error_rate_pct(), 0.0);
        assert!((s.mapped_frac() - 0.5).abs() < 1e-9);
    }
}
