//! Sequencing platform profiles.
//!
//! Error rates follow the third-generation characteristics the paper cites
//! (§1): PacBio CLR reads are ~85% accurate and insertion-dominant; Oxford
//! Nanopore reads are ~90% accurate with a deletion bias and a famously
//! heavy length tail (Table 4's real dataset has mean ≈ 4 kb but maximum
//! 514 kb).

use rand::Rng;

/// Which platform to imitate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Platform {
    /// PacBio SMRT CLR — the paper's simulated dataset.
    PacBio,
    /// Oxford Nanopore — the paper's real dataset (flowcell FAB23716).
    Nanopore,
}

/// Per-base error rates.
#[derive(Clone, Copy, Debug)]
pub struct ErrorProfile {
    pub sub: f64,
    pub ins: f64,
    pub del: f64,
}

impl ErrorProfile {
    /// PacBio CLR: ~15% total error, insertion-heavy (PBSIM's CLR model).
    pub const PACBIO: ErrorProfile = ErrorProfile {
        sub: 0.015,
        ins: 0.09,
        del: 0.045,
    };
    /// Nanopore R9: ~10% total error, deletion-biased.
    pub const NANOPORE: ErrorProfile = ErrorProfile {
        sub: 0.03,
        ins: 0.03,
        del: 0.04,
    };

    /// Total error rate.
    pub fn total(&self) -> f64 {
        self.sub + self.ins + self.del
    }
}

/// Read length distribution: log-normal with clamping, matching PBSIM's
/// sampled profiles. `sigma` controls the tail; Nanopore uses a much larger
/// sigma to reproduce its ultra-long tail.
#[derive(Clone, Copy, Debug)]
pub struct LengthModel {
    pub mu: f64,
    pub sigma: f64,
    pub min_len: usize,
    pub max_len: usize,
}

impl LengthModel {
    /// Tuned so the mean lands near Table 4's 5,567 bp with max ≈ 25 kb.
    pub const PACBIO: LengthModel = LengthModel {
        mu: 8.45,
        sigma: 0.55,
        min_len: 200,
        max_len: 25_000,
    };
    /// Mean near 3,958 bp with a very long tail (paper max: 514 kb).
    pub const NANOPORE: LengthModel = LengthModel {
        mu: 7.8,
        sigma: 1.05,
        min_len: 200,
        max_len: 520_000,
    };

    /// Draw one read length (log-normal via Box–Muller, clamped).
    pub fn sample<R: Rng>(&self, rng: &mut R) -> usize {
        let u1: f64 = rng.random::<f64>().max(1e-12);
        let u2: f64 = rng.random();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        let len = (self.mu + self.sigma * z).exp();
        (len as usize).clamp(self.min_len, self.max_len)
    }
}

impl Platform {
    /// The platform's error profile.
    pub fn errors(&self) -> ErrorProfile {
        match self {
            Platform::PacBio => ErrorProfile::PACBIO,
            Platform::Nanopore => ErrorProfile::NANOPORE,
        }
    }

    /// The platform's length model.
    pub fn lengths(&self) -> LengthModel {
        match self {
            Platform::PacBio => LengthModel::PACBIO,
            Platform::Nanopore => LengthModel::NANOPORE,
        }
    }

    /// minimap2 preset name (`-ax` option in the paper's experiments).
    pub fn preset(&self) -> &'static str {
        match self {
            Platform::PacBio => "map-pb",
            Platform::Nanopore => "map-ont",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    #[allow(clippy::assertions_on_constants)] // the constants ARE the claim
    fn error_totals_match_platform_lore() {
        assert!((ErrorProfile::PACBIO.total() - 0.15).abs() < 0.01);
        assert!((ErrorProfile::NANOPORE.total() - 0.10).abs() < 0.01);
        // PacBio is insertion-dominant; Nanopore is deletion-biased.
        assert!(ErrorProfile::PACBIO.ins > ErrorProfile::PACBIO.del);
        assert!(ErrorProfile::NANOPORE.del > ErrorProfile::NANOPORE.sub);
    }

    #[test]
    fn pacbio_lengths_match_table4_shape() {
        let mut rng = StdRng::seed_from_u64(1);
        let lens: Vec<usize> = (0..20_000)
            .map(|_| LengthModel::PACBIO.sample(&mut rng))
            .collect();
        let mean = lens.iter().sum::<usize>() as f64 / lens.len() as f64;
        let max = *lens.iter().max().unwrap();
        assert!((mean - 5_567.0).abs() < 800.0, "mean={mean}");
        assert!(max <= 25_000);
    }

    #[test]
    fn nanopore_tail_is_much_longer_than_mean() {
        let mut rng = StdRng::seed_from_u64(2);
        let lens: Vec<usize> = (0..20_000)
            .map(|_| LengthModel::NANOPORE.sample(&mut rng))
            .collect();
        let mean = lens.iter().sum::<usize>() as f64 / lens.len() as f64;
        let max = *lens.iter().max().unwrap();
        assert!((mean - 3_958.0).abs() < 1_200.0, "mean={mean}");
        assert!(max as f64 > 10.0 * mean, "max={max} mean={mean}");
    }
}
