//! PBSIM-style read sampling with ground truth.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use mmm_seq::revcomp4;

use crate::profile::Platform;

/// Where a simulated read truly came from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TrueOrigin {
    pub rid: u32,
    /// Reference interval [start, end) the read was sampled from.
    pub start: u32,
    pub end: u32,
    /// True when the read is the reverse complement of the interval.
    pub rev: bool,
}

/// A simulated read: nt4 bases plus its origin.
#[derive(Clone, Debug)]
pub struct SimulatedRead {
    pub name: String,
    pub seq: Vec<u8>,
    pub origin: TrueOrigin,
}

/// Simulation parameters.
#[derive(Clone, Copy, Debug)]
pub struct SimOpts {
    pub platform: Platform,
    /// Number of reads to draw.
    pub num_reads: usize,
    pub seed: u64,
}

/// Sample `num_reads` reads from `genome` (one reference, nt4 codes).
///
/// Each read picks a uniform start, a platform length, a strand, then
/// applies per-base substitution/insertion/deletion errors.
pub fn simulate_reads(genome: &[u8], opts: &SimOpts) -> Vec<SimulatedRead> {
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let errors = opts.platform.errors();
    let lengths = opts.platform.lengths();
    let mut out = Vec::with_capacity(opts.num_reads);
    for i in 0..opts.num_reads {
        let want = lengths
            .sample(&mut rng)
            .min(genome.len() / 2)
            .max(lengths.min_len);
        let start = rng.random_range(0..genome.len().saturating_sub(want).max(1));
        let end = (start + want).min(genome.len());
        let rev = rng.random::<bool>();
        let template: Vec<u8> = if rev {
            revcomp4(&genome[start..end])
        } else {
            genome[start..end].to_vec()
        };
        let seq = corrupt(&template, &errors, &mut rng);
        out.push(SimulatedRead {
            name: format!("read{:06}", i),
            seq,
            origin: TrueOrigin {
                rid: 0,
                start: start as u32,
                end: end as u32,
                rev,
            },
        });
    }
    out
}

/// Apply the error profile to a template.
fn corrupt(template: &[u8], e: &crate::profile::ErrorProfile, rng: &mut StdRng) -> Vec<u8> {
    let mut out = Vec::with_capacity(template.len() + template.len() / 8);
    for &b in template {
        // Insertions before the base (possibly several).
        while rng.random::<f64>() < e.ins {
            out.push(rng.random_range(0..4) as u8);
        }
        let r: f64 = rng.random();
        if r < e.del {
            continue; // base deleted
        } else if r < e.del + e.sub {
            // Substitute with a different base.
            let nb = (b + rng.random_range(1..4) as u8) % 4;
            out.push(nb);
        } else {
            out.push(b);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::genome::{generate_genome, GenomeOpts};
    use crate::profile::Platform;

    fn genome() -> Vec<u8> {
        generate_genome(&GenomeOpts {
            len: 200_000,
            repeat_frac: 0.0,
            ..Default::default()
        })
    }

    #[test]
    fn reads_have_origins_within_genome() {
        let g = genome();
        let reads = simulate_reads(
            &g,
            &SimOpts {
                platform: Platform::PacBio,
                num_reads: 50,
                seed: 3,
            },
        );
        assert_eq!(reads.len(), 50);
        for r in &reads {
            assert!(r.origin.end as usize <= g.len());
            assert!(r.origin.start < r.origin.end);
            assert!(!r.seq.is_empty());
        }
    }

    #[test]
    fn error_rate_is_near_profile() {
        // With errors applied, the read length deviates from the template
        // by roughly (ins - del) and the identity drops accordingly. Check
        // length ratio as a cheap proxy.
        let g = genome();
        let reads = simulate_reads(
            &g,
            &SimOpts {
                platform: Platform::PacBio,
                num_reads: 200,
                seed: 4,
            },
        );
        let mut ratio_sum = 0.0;
        for r in &reads {
            let tpl = (r.origin.end - r.origin.start) as f64;
            ratio_sum += r.seq.len() as f64 / tpl;
        }
        let mean_ratio = ratio_sum / reads.len() as f64;
        // PacBio: +9% insertions, −4.5% deletions ⇒ ≈ +5% length.
        assert!((mean_ratio - 1.048).abs() < 0.02, "ratio={mean_ratio}");
    }

    #[test]
    fn both_strands_are_sampled() {
        let g = genome();
        let reads = simulate_reads(
            &g,
            &SimOpts {
                platform: Platform::Nanopore,
                num_reads: 100,
                seed: 5,
            },
        );
        let rev = reads.iter().filter(|r| r.origin.rev).count();
        assert!(rev > 20 && rev < 80, "rev={rev}");
    }

    #[test]
    fn deterministic_per_seed() {
        let g = genome();
        let o = SimOpts {
            platform: Platform::PacBio,
            num_reads: 10,
            seed: 9,
        };
        let a = simulate_reads(&g, &o);
        let b = simulate_reads(&g, &o);
        assert_eq!(a.len(), b.len());
        assert!(a
            .iter()
            .zip(&b)
            .all(|(x, y)| x.seq == y.seq && x.origin == y.origin));
    }

    #[test]
    fn forward_read_resembles_its_interval() {
        let g = genome();
        let reads = simulate_reads(
            &g,
            &SimOpts {
                platform: Platform::Nanopore,
                num_reads: 20,
                seed: 6,
            },
        );
        let r = reads.iter().find(|r| !r.origin.rev).unwrap();
        // Count matching bases at the same offsets for the first 100
        // positions — identity must be far above random (25%).
        let tpl = &g[r.origin.start as usize..r.origin.end as usize];
        let n = 100.min(tpl.len()).min(r.seq.len());
        let same = (0..n).filter(|&i| tpl[i] == r.seq[i]).count();
        assert!(
            same as f64 / n as f64 > 0.5,
            "identity={}",
            same as f64 / n as f64
        );
    }
}
