//! `mmm-simreads` — synthetic genomes and long reads with ground truth.
//!
//! Substitute for the paper's datasets (hg38 + PacBio SMRT + Oxford
//! Nanopore, Table 4): a reference generator with controllable GC content
//! and planted repeats, plus a PBSIM-style read sampler with per-platform
//! error and length profiles. Every simulated read carries its true origin
//! interval, which the accuracy evaluation (Table 5's error-rate column)
//! compares against mapping output.

pub mod eval;
pub mod genome;
pub mod pbsim;
pub mod profile;

pub use eval::{evaluate, EvalSummary, MappingCall};
pub use genome::{generate_genome, GenomeOpts};
pub use pbsim::{simulate_reads, SimOpts, SimulatedRead, TrueOrigin};
pub use profile::{ErrorProfile, LengthModel, Platform};
