//! Synthetic reference genomes.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Genome generation parameters.
#[derive(Clone, Copy, Debug)]
pub struct GenomeOpts {
    /// Total length in bases.
    pub len: usize,
    /// GC fraction (human ≈ 0.41).
    pub gc: f64,
    /// Fraction of the genome covered by planted repeat copies
    /// (human ≈ 0.5; we default lower so scaled-down mapping stays
    /// well-posed).
    pub repeat_frac: f64,
    /// Length of each planted repeat unit.
    pub repeat_unit: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for GenomeOpts {
    fn default() -> Self {
        GenomeOpts {
            len: 1_000_000,
            gc: 0.41,
            repeat_frac: 0.1,
            repeat_unit: 2_000,
            seed: 42,
        }
    }
}

/// Generate an nt4-encoded genome: i.i.d. bases at the requested GC
/// content, with repeat units copied to random positions until the target
/// repeat fraction is reached (repeats are what make the occurrence filter
/// and MAPQ meaningful).
pub fn generate_genome(opts: &GenomeOpts) -> Vec<u8> {
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let mut g: Vec<u8> = (0..opts.len)
        .map(|_| {
            if rng.random::<f64>() < opts.gc {
                if rng.random::<bool>() {
                    1
                } else {
                    2
                } // C or G
            } else if rng.random::<bool>() {
                0
            } else {
                3 // A or T
            }
        })
        .collect();

    if opts.repeat_frac > 0.0 && opts.len > 4 * opts.repeat_unit {
        let unit_len = opts.repeat_unit;
        let copies = ((opts.len as f64 * opts.repeat_frac) / unit_len as f64) as usize;
        // Source unit from the start of the genome.
        let unit: Vec<u8> = g[..unit_len].to_vec();
        for _ in 0..copies {
            let dst = rng.random_range(0..opts.len - unit_len);
            g[dst..dst + unit_len].copy_from_slice(&unit);
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn length_and_alphabet() {
        let g = generate_genome(&GenomeOpts {
            len: 10_000,
            ..Default::default()
        });
        assert_eq!(g.len(), 10_000);
        assert!(g.iter().all(|&b| b < 4));
    }

    #[test]
    fn gc_content_is_respected() {
        let g = generate_genome(&GenomeOpts {
            len: 200_000,
            gc: 0.6,
            repeat_frac: 0.0,
            ..Default::default()
        });
        let gc = g.iter().filter(|&&b| b == 1 || b == 2).count() as f64 / g.len() as f64;
        assert!((gc - 0.6).abs() < 0.02, "gc={gc}");
    }

    #[test]
    fn deterministic_per_seed() {
        let o = GenomeOpts {
            len: 5_000,
            seed: 7,
            ..Default::default()
        };
        assert_eq!(generate_genome(&o), generate_genome(&o));
        let o2 = GenomeOpts { seed: 8, ..o };
        assert_ne!(generate_genome(&o), generate_genome(&o2));
    }

    #[test]
    fn repeats_are_planted() {
        let o = GenomeOpts {
            len: 100_000,
            repeat_frac: 0.3,
            repeat_unit: 1_000,
            ..Default::default()
        };
        let g = generate_genome(&o);
        let unit = &g[..1_000];
        // Count exact copies of the unit's first 100 bases elsewhere.
        let probe = &unit[..100];
        let hits = (1..g.len() - 100)
            .filter(|&i| &g[i..i + 100] == probe)
            .count();
        assert!(hits >= 10, "hits={hits}");
    }
}
