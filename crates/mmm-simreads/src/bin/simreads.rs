//! `simreads` — generate a synthetic reference and long-read dataset.
//!
//! ```sh
//! simreads --genome 1000000 --reads 2000 --platform pacbio \
//!          --out-ref ref.fa --out-reads reads.fa [--seed 42]
//! ```
//!
//! Read names encode the ground truth as
//! `read{N}!{rname}!{start}!{end}!{+|-}` so `mapeval` can score any PAF
//! produced from them (the convention of pbsim + paftools mapeval).

use std::fs::File;
use std::io::BufWriter;
use std::process::ExitCode;

use mmm_seq::{nt4_decode, write_fasta, DatasetStats, SeqRecord};
use mmm_simreads::{generate_genome, simulate_reads, GenomeOpts, Platform, SimOpts};

fn arg(flags: &std::collections::HashMap<String, String>, k: &str, default: &str) -> String {
    flags.get(k).cloned().unwrap_or_else(|| default.to_string())
}

fn main() -> ExitCode {
    let mut flags = std::collections::HashMap::new();
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        if let Some(name) = a.strip_prefix("--") {
            flags.insert(name.to_string(), it.next().unwrap_or_default());
        }
    }

    let genome_len: usize = arg(&flags, "genome", "1000000")
        .parse()
        .unwrap_or(1_000_000);
    let n_reads: usize = arg(&flags, "reads", "2000").parse().unwrap_or(2_000);
    let seed: u64 = arg(&flags, "seed", "42").parse().unwrap_or(42);
    let platform = match arg(&flags, "platform", "pacbio").as_str() {
        "ont" | "nanopore" => Platform::Nanopore,
        _ => Platform::PacBio,
    };
    let out_ref = arg(&flags, "out-ref", "ref.fa");
    let out_reads = arg(&flags, "out-reads", "reads.fa");

    let genome = generate_genome(&GenomeOpts {
        len: genome_len,
        seed,
        ..Default::default()
    });
    let reads = simulate_reads(
        &genome,
        &SimOpts {
            platform,
            num_reads: n_reads,
            seed,
        },
    );

    let ref_rec = SeqRecord::new("chr1", nt4_decode(&genome));
    let read_recs: Vec<SeqRecord> = reads
        .iter()
        .map(|r| {
            let name = format!(
                "{}!chr1!{}!{}!{}",
                r.name,
                r.origin.start,
                r.origin.end,
                if r.origin.rev { '-' } else { '+' }
            );
            SeqRecord::new(name, nt4_decode(&r.seq))
        })
        .collect();

    let write = |path: &str, recs: &[SeqRecord]| -> std::io::Result<()> {
        let mut w = BufWriter::new(File::create(path)?);
        write_fasta(&mut w, recs, 80)
    };
    if let Err(e) = write(&out_ref, std::slice::from_ref(&ref_rec)) {
        eprintln!("simreads: writing {out_ref}: {e}");
        return ExitCode::FAILURE;
    }
    if let Err(e) = write(&out_reads, &read_recs) {
        eprintln!("simreads: writing {out_reads}: {e}");
        return ExitCode::FAILURE;
    }

    let stats = DatasetStats::from_records(&read_recs);
    eprintln!(
        "[simreads] {} ({:?}): {} reads, mean {:.0} bp, max {} bp, {} total bases -> {out_reads}; {} bp reference -> {out_ref}",
        platform_label(platform),
        seed,
        stats.num_reads,
        stats.mean_len,
        stats.max_len,
        stats.total_bases,
        genome_len,
    );
    ExitCode::SUCCESS
}

fn platform_label(p: Platform) -> &'static str {
    match p {
        Platform::PacBio => "PacBio SMRT",
        Platform::Nanopore => "Nanopore",
    }
}
