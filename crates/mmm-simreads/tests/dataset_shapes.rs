//! Dataset-level shape checks: the synthetic generators must keep the
//! statistical properties the experiments rely on (Table 4's profile
//! contrasts), across seeds — not just for the single seed the unit tests
//! pin.

use mmm_simreads::{
    evaluate, generate_genome, simulate_reads, GenomeOpts, MappingCall, Platform, SimOpts,
};

#[test]
fn pacbio_and_nanopore_contrast_holds_across_seeds() {
    let genome = generate_genome(&GenomeOpts {
        len: 400_000,
        repeat_frac: 0.0,
        ..Default::default()
    });
    for seed in [1u64, 17, 99] {
        let pb = simulate_reads(
            &genome,
            &SimOpts {
                platform: Platform::PacBio,
                num_reads: 800,
                seed,
            },
        );
        let ont = simulate_reads(
            &genome,
            &SimOpts {
                platform: Platform::Nanopore,
                num_reads: 800,
                seed,
            },
        );
        let mean = |rs: &[mmm_simreads::SimulatedRead]| {
            rs.iter().map(|r| r.seq.len()).sum::<usize>() as f64 / rs.len() as f64
        };
        let max =
            |rs: &[mmm_simreads::SimulatedRead]| rs.iter().map(|r| r.seq.len()).max().unwrap();
        // PacBio: longer mean; Nanopore: much longer tail relative to mean.
        assert!(mean(&pb) > mean(&ont), "seed={seed}");
        assert!(
            max(&ont) as f64 / mean(&ont) > max(&pb) as f64 / mean(&pb),
            "seed={seed}: tail ratio"
        );
    }
}

#[test]
fn pacbio_reads_are_net_longer_than_their_template() {
    // Insertion-dominant errors ⇒ read length > template length on average.
    let genome = generate_genome(&GenomeOpts {
        len: 300_000,
        repeat_frac: 0.0,
        ..Default::default()
    });
    let reads = simulate_reads(
        &genome,
        &SimOpts {
            platform: Platform::PacBio,
            num_reads: 400,
            seed: 3,
        },
    );
    let net: f64 = reads
        .iter()
        .map(|r| r.seq.len() as f64 / (r.origin.end - r.origin.start) as f64)
        .sum::<f64>()
        / reads.len() as f64;
    assert!(net > 1.02, "net={net}");

    // Nanopore is deletion-biased ⇒ slightly shorter than template.
    let reads = simulate_reads(
        &genome,
        &SimOpts {
            platform: Platform::Nanopore,
            num_reads: 400,
            seed: 3,
        },
    );
    let net: f64 = reads
        .iter()
        .map(|r| r.seq.len() as f64 / (r.origin.end - r.origin.start) as f64)
        .sum::<f64>()
        / reads.len() as f64;
    assert!(net < 1.0, "net={net}");
}

#[test]
fn origins_cover_the_genome_roughly_uniformly() {
    let genome = generate_genome(&GenomeOpts {
        len: 200_000,
        repeat_frac: 0.0,
        ..Default::default()
    });
    let reads = simulate_reads(
        &genome,
        &SimOpts {
            platform: Platform::Nanopore,
            num_reads: 2_000,
            seed: 8,
        },
    );
    // Bucket start positions into 10 deciles; no decile may be empty or
    // hold more than 3× the uniform share.
    let mut buckets = [0usize; 10];
    for r in &reads {
        buckets[(r.origin.start as usize * 10 / genome.len()).min(9)] += 1;
    }
    for (i, &b) in buckets.iter().enumerate() {
        assert!(b > 0, "decile {i} empty");
        assert!(b < 3 * reads.len() / 10, "decile {i} overloaded: {b}");
    }
}

#[test]
fn evaluate_is_exactly_the_papers_error_rate_definition() {
    // error rate = wrong / mapped (not / total): unmapped reads must not
    // change it.
    let truths = vec![
        mmm_simreads::TrueOrigin {
            rid: 0,
            start: 0,
            end: 1000,
            rev: false
        };
        10
    ];
    let calls: Vec<MappingCall> = (0..4)
        .map(|i| MappingCall {
            read_id: i,
            rid: 0,
            ref_start: if i < 3 { 0 } else { 500_000 },
            ref_end: if i < 3 { 1000 } else { 501_000 },
            rev: false,
            mapq: 60,
        })
        .collect();
    let s = evaluate(&calls, &truths);
    assert_eq!(s.mapped, 4);
    assert_eq!(s.wrong, 1);
    assert!((s.error_rate_pct() - 25.0).abs() < 1e-9);
    assert!((s.mapped_frac() - 0.4).abs() < 1e-9);
}
