//! File-level round trips through real temp files (the unit tests use
//! in-memory buffers; these exercise the OS path end to end).

use std::fs::File;
use std::io::{BufReader, BufWriter};

use mmm_seq::{write_fasta, write_fastq, DatasetStats, FastxFormat, FastxReader, SeqRecord};

fn tmp(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("mmm-seq-it-{name}-{}", std::process::id()))
}

fn sample_records(n: usize) -> Vec<SeqRecord> {
    (0..n)
        .map(|i| {
            let len = 50 + (i * 37) % 400;
            let seq: Vec<u8> = (0..len).map(|k| b"ACGT"[(k * 7 + i) % 4]).collect();
            SeqRecord {
                name: format!("read{i:04}"),
                comment: (i % 3 == 0).then(|| format!("batch={}", i / 3)),
                seq,
                qual: None,
            }
        })
        .collect()
}

#[test]
fn fasta_file_round_trip_with_wrapping() {
    let recs = sample_records(64);
    let p = tmp("fasta");
    {
        let mut w = BufWriter::new(File::create(&p).unwrap());
        write_fasta(&mut w, &recs, 60).unwrap();
    }
    let mut r = FastxReader::new(BufReader::new(File::open(&p).unwrap()));
    let back = r.read_all().unwrap();
    assert_eq!(r.format(), Some(FastxFormat::Fasta));
    assert_eq!(back, recs);
    std::fs::remove_file(&p).unwrap();
}

#[test]
fn fastq_file_round_trip() {
    let mut recs = sample_records(32);
    for (i, r) in recs.iter_mut().enumerate() {
        r.qual = Some(vec![b'!' + (i % 40) as u8; r.seq.len()]);
    }
    let p = tmp("fastq");
    {
        let mut w = BufWriter::new(File::create(&p).unwrap());
        write_fastq(&mut w, &recs).unwrap();
    }
    let back = FastxReader::new(BufReader::new(File::open(&p).unwrap()))
        .read_all()
        .unwrap();
    assert_eq!(back, recs);
    std::fs::remove_file(&p).unwrap();
}

#[test]
fn batched_reading_covers_the_whole_file_once() {
    let recs = sample_records(100);
    let p = tmp("batched");
    {
        let mut w = BufWriter::new(File::create(&p).unwrap());
        write_fasta(&mut w, &recs, 0).unwrap();
    }
    let mut r = FastxReader::new(BufReader::new(File::open(&p).unwrap()));
    let mut names = Vec::new();
    loop {
        let batch = r.next_batch(5_000).unwrap();
        if batch.is_empty() {
            break;
        }
        names.extend(batch.into_iter().map(|x| x.name));
    }
    assert_eq!(names.len(), 100);
    assert_eq!(
        names,
        recs.iter().map(|r| r.name.clone()).collect::<Vec<_>>()
    );
    std::fs::remove_file(&p).unwrap();
}

#[test]
fn stats_survive_the_file_round_trip() {
    let recs = sample_records(40);
    let before = DatasetStats::from_records(&recs);
    let p = tmp("stats");
    {
        let mut w = BufWriter::new(File::create(&p).unwrap());
        write_fasta(&mut w, &recs, 70).unwrap();
    }
    let back = FastxReader::new(BufReader::new(File::open(&p).unwrap()))
        .read_all()
        .unwrap();
    assert_eq!(DatasetStats::from_records(&back), before);
    std::fs::remove_file(&p).unwrap();
}
