//! Nucleotide encodings.
//!
//! minimap2 works internally on the *nt4* code: `A=0, C=1, G=2, T/U=3,
//! anything else = 4` (ambiguous). The alignment kernels consume nt4 slices;
//! the index additionally packs references into 2 bits per base (ambiguous
//! bases are randomized at encode time by the caller, mirroring minimap2's
//! index construction which skips non-ACGT minimizers).

/// ASCII → nt4 lookup table, identical in spirit to minimap2's `seq_nt4_table`.
pub static SEQ_NT4_TABLE: [u8; 256] = {
    let mut t = [4u8; 256];
    t[b'A' as usize] = 0;
    t[b'a' as usize] = 0;
    t[b'C' as usize] = 1;
    t[b'c' as usize] = 1;
    t[b'G' as usize] = 2;
    t[b'g' as usize] = 2;
    t[b'T' as usize] = 3;
    t[b't' as usize] = 3;
    t[b'U' as usize] = 3;
    t[b'u' as usize] = 3;
    t
};

/// nt4 code → ASCII base character.
pub static BASE_CHARS: [u8; 5] = *b"ACGTN";

/// Encode one ASCII base to nt4.
#[inline(always)]
pub fn encode_base(b: u8) -> u8 {
    SEQ_NT4_TABLE[b as usize]
}

/// Encode an ASCII sequence into a fresh nt4 vector.
pub fn to_nt4(seq: &[u8]) -> Vec<u8> {
    seq.iter().map(|&b| SEQ_NT4_TABLE[b as usize]).collect()
}

/// Decode an nt4 slice back into ASCII.
pub fn nt4_decode(seq: &[u8]) -> Vec<u8> {
    seq.iter()
        .map(|&c| BASE_CHARS[(c as usize).min(4)])
        .collect()
}

/// Complement of one nt4 code (`N` maps to `N`).
#[inline(always)]
pub fn comp4(c: u8) -> u8 {
    if c < 4 {
        3 - c
    } else {
        4
    }
}

/// Reverse complement of an nt4 slice into a fresh vector.
pub fn revcomp4(seq: &[u8]) -> Vec<u8> {
    seq.iter().rev().map(|&c| comp4(c)).collect()
}

/// Reverse-complement an nt4 slice in place without allocation.
pub fn revcomp_in_place(seq: &mut [u8]) {
    let n = seq.len();
    for i in 0..n / 2 {
        let (a, b) = (seq[i], seq[n - 1 - i]);
        seq[i] = comp4(b);
        seq[n - 1 - i] = comp4(a);
    }
    if n % 2 == 1 {
        let m = n / 2;
        seq[m] = comp4(seq[m]);
    }
}

/// A 2-bit packed DNA sequence (16 bases per `u32` word).
///
/// The minimizer index stores the reference this way — the same layout
/// minimap2 uses for `mm_idx_t::S` — so that a multi-gigabase reference fits
/// in a quarter of its ASCII footprint and minimizer re-extraction during
/// seeding stays cache-friendly. Ambiguous (`N`) bases must be substituted
/// *before* packing; [`PackedSeq::from_nt4_lossy`] maps them to `A` and the
/// index builder independently skips minimizers spanning them.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PackedSeq {
    words: Vec<u32>,
    len: usize,
}

impl PackedSeq {
    /// Pack an nt4 sequence. Codes ≥ 4 are mapped to `A` (code 0).
    pub fn from_nt4_lossy(seq: &[u8]) -> Self {
        let mut words = vec![0u32; seq.len().div_ceil(16)];
        for (i, &c) in seq.iter().enumerate() {
            let code = if c < 4 { c as u32 } else { 0 };
            words[i >> 4] |= code << ((i & 15) << 1);
        }
        PackedSeq {
            words,
            len: seq.len(),
        }
    }

    /// Number of bases stored.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no bases are stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Fetch the nt4 code of base `i` (0..=3; packed sequences never hold `N`).
    #[inline(always)]
    pub fn get(&self, i: usize) -> u8 {
        debug_assert!(i < self.len);
        ((self.words[i >> 4] >> ((i & 15) << 1)) & 3) as u8
    }

    /// Copy bases `start..end` into an nt4 vector.
    pub fn slice(&self, start: usize, end: usize) -> Vec<u8> {
        assert!(start <= end && end <= self.len, "slice out of range");
        (start..end).map(|i| self.get(i)).collect()
    }

    /// Copy bases `start..end` reverse-complemented into an nt4 vector.
    pub fn slice_revcomp(&self, start: usize, end: usize) -> Vec<u8> {
        assert!(start <= end && end <= self.len, "slice out of range");
        (start..end).rev().map(|i| 3 - self.get(i)).collect()
    }

    /// Raw packed words (16 bases per word), for serialization.
    pub fn words(&self) -> &[u32] {
        &self.words
    }

    /// Rebuild from serialized parts.
    pub fn from_raw(words: Vec<u32>, len: usize) -> Self {
        assert!(words.len() == len.div_ceil(16), "word count mismatch");
        PackedSeq { words, len }
    }

    /// Heap bytes used by the packed representation.
    pub fn heap_bytes(&self) -> usize {
        self.words.len() * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nt4_table_round_trip() {
        assert_eq!(to_nt4(b"ACGTN"), vec![0, 1, 2, 3, 4]);
        assert_eq!(to_nt4(b"acgtu"), vec![0, 1, 2, 3, 3]);
        assert_eq!(nt4_decode(&[0, 1, 2, 3, 4]), b"ACGTN".to_vec());
    }

    #[test]
    fn unknown_chars_are_ambiguous() {
        for b in [b'X', b'-', b' ', b'8', 0u8, 255u8] {
            assert_eq!(encode_base(b), 4);
        }
    }

    #[test]
    fn complement_pairs() {
        assert_eq!(comp4(0), 3); // A<->T
        assert_eq!(comp4(1), 2); // C<->G
        assert_eq!(comp4(2), 1);
        assert_eq!(comp4(3), 0);
        assert_eq!(comp4(4), 4); // N stays N
    }

    #[test]
    fn revcomp_matches_manual() {
        let s = to_nt4(b"AACGT");
        assert_eq!(revcomp4(&s), to_nt4(b"ACGTT"));
    }

    #[test]
    fn revcomp_in_place_matches_alloc() {
        for n in 0..20 {
            let seq: Vec<u8> = (0..n).map(|i| (i * 7 % 4) as u8).collect();
            let mut inplace = seq.clone();
            revcomp_in_place(&mut inplace);
            assert_eq!(inplace, revcomp4(&seq), "length {n}");
        }
    }

    #[test]
    fn revcomp_is_involution() {
        let s = to_nt4(b"GATTACAGATTACA");
        assert_eq!(revcomp4(&revcomp4(&s)), s);
    }

    #[test]
    fn packed_round_trip() {
        let seq = to_nt4(b"ACGTACGTACGTACGTA"); // 17 bases crosses a word
        let p = PackedSeq::from_nt4_lossy(&seq);
        assert_eq!(p.len(), 17);
        for (i, &c) in seq.iter().enumerate() {
            assert_eq!(p.get(i), c, "base {i}");
        }
        assert_eq!(p.slice(0, 17), seq);
        assert_eq!(p.slice(3, 9), seq[3..9].to_vec());
    }

    #[test]
    fn packed_lossy_maps_n_to_a() {
        let p = PackedSeq::from_nt4_lossy(&to_nt4(b"ANT"));
        assert_eq!(p.slice(0, 3), vec![0, 0, 3]);
    }

    #[test]
    fn packed_revcomp_slice() {
        let seq = to_nt4(b"AACCGGTT");
        let p = PackedSeq::from_nt4_lossy(&seq);
        assert_eq!(p.slice_revcomp(0, 8), revcomp4(&seq));
        assert_eq!(p.slice_revcomp(2, 5), revcomp4(&seq[2..5]));
    }

    #[test]
    fn packed_serial_round_trip() {
        let seq = to_nt4(b"ACGTACGTTGCA");
        let p = PackedSeq::from_nt4_lossy(&seq);
        let q = PackedSeq::from_raw(p.words().to_vec(), p.len());
        assert_eq!(p, q);
    }

    #[test]
    fn packed_empty() {
        let p = PackedSeq::from_nt4_lossy(&[]);
        assert!(p.is_empty());
        assert_eq!(p.slice(0, 0), Vec::<u8>::new());
    }
}
