//! Error type shared by the sequence I/O layer.

use std::fmt;

/// Errors produced while parsing or writing FASTA/FASTQ data.
#[derive(Debug)]
pub enum SeqError {
    /// Underlying I/O failure with no position information (e.g. from the
    /// writers, via `From<std::io::Error>`).
    Io(std::io::Error),
    /// I/O failure at a known position in the input stream. The reader
    /// produces these so a mid-file device error can be reported with the
    /// byte offset and line where the stream died.
    IoAt {
        offset: u64,
        line: u64,
        source: std::io::Error,
    },
    /// Structurally malformed input (message, approximate line number).
    Parse { msg: String, line: u64 },
}

impl SeqError {
    /// True for errors caused by the underlying byte stream (as opposed to
    /// well-delivered but malformed records).
    pub fn is_io(&self) -> bool {
        matches!(self, SeqError::Io(_) | SeqError::IoAt { .. })
    }
}

impl fmt::Display for SeqError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SeqError::Io(e) => write!(f, "I/O error: {e}"),
            SeqError::IoAt {
                offset,
                line,
                source,
            } => write!(f, "I/O error at byte {offset} (line {line}): {source}"),
            SeqError::Parse { msg, line } => write!(f, "parse error at line {line}: {msg}"),
        }
    }
}

impl std::error::Error for SeqError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SeqError::Io(e) => Some(e),
            SeqError::IoAt { source, .. } => Some(source),
            SeqError::Parse { .. } => None,
        }
    }
}

impl From<std::io::Error> for SeqError {
    fn from(e: std::io::Error) -> Self {
        SeqError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let e = SeqError::Parse {
            msg: "bad record".into(),
            line: 7,
        };
        assert_eq!(e.to_string(), "parse error at line 7: bad record");
        let io = SeqError::from(std::io::Error::other("boom"));
        assert!(io.to_string().contains("boom"));
    }
}
