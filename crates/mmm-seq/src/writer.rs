//! FASTA/FASTQ emission, used by the synthetic dataset generators.

use std::io::{self, Write};

use crate::record::SeqRecord;

/// Write records as FASTA, wrapping sequence lines at `wrap` columns
/// (0 = no wrapping).
pub fn write_fasta<W: Write>(w: &mut W, records: &[SeqRecord], wrap: usize) -> io::Result<()> {
    for r in records {
        match &r.comment {
            Some(c) => writeln!(w, ">{} {}", r.name, c)?,
            None => writeln!(w, ">{}", r.name)?,
        }
        if wrap == 0 {
            w.write_all(&r.seq)?;
            writeln!(w)?;
        } else {
            for chunk in r.seq.chunks(wrap) {
                w.write_all(chunk)?;
                writeln!(w)?;
            }
        }
    }
    Ok(())
}

/// Write records as FASTQ. Records lacking quality get a constant `I` string
/// (Phred 40), matching what read simulators emit for perfect-confidence data.
pub fn write_fastq<W: Write>(w: &mut W, records: &[SeqRecord]) -> io::Result<()> {
    for r in records {
        match &r.comment {
            Some(c) => writeln!(w, "@{} {}", r.name, c)?,
            None => writeln!(w, "@{}", r.name)?,
        }
        w.write_all(&r.seq)?;
        writeln!(w, "\n+")?;
        match &r.qual {
            Some(q) => w.write_all(q)?,
            None => w.write_all(&vec![b'I'; r.seq.len()])?,
        }
        writeln!(w)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fasta::FastxReader;
    use std::io::Cursor;

    #[test]
    fn fasta_round_trip() {
        let recs = vec![
            SeqRecord::new("a", b"ACGTACGT".to_vec()),
            SeqRecord {
                name: "b".into(),
                comment: Some("note".into()),
                seq: b"TT".to_vec(),
                qual: None,
            },
        ];
        let mut buf = Vec::new();
        write_fasta(&mut buf, &recs, 3).unwrap();
        let back = FastxReader::new(Cursor::new(buf)).read_all().unwrap();
        assert_eq!(back, recs);
    }

    #[test]
    fn fastq_round_trip() {
        let recs = vec![SeqRecord {
            name: "q".into(),
            comment: None,
            seq: b"ACG".to_vec(),
            qual: Some(b"ABC".to_vec()),
        }];
        let mut buf = Vec::new();
        write_fastq(&mut buf, &recs).unwrap();
        let back = FastxReader::new(Cursor::new(buf)).read_all().unwrap();
        assert_eq!(back, recs);
    }

    #[test]
    fn fastq_synthesizes_quality() {
        let recs = vec![SeqRecord::new("q", b"ACG".to_vec())];
        let mut buf = Vec::new();
        write_fastq(&mut buf, &recs).unwrap();
        let back = FastxReader::new(Cursor::new(buf)).read_all().unwrap();
        assert_eq!(back[0].qual.as_deref(), Some(b"III".as_slice()));
    }
}
