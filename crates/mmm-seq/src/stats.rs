//! Dataset statistics — the quantities reported in Table 4 of the paper
//! (number of reads, average/maximum length, total bases) plus N50 and GC
//! content, which the generators use to check the synthetic profiles.

use crate::record::SeqRecord;

/// Summary statistics for a read set.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct DatasetStats {
    pub num_reads: usize,
    pub total_bases: u64,
    pub mean_len: f64,
    pub max_len: usize,
    pub min_len: usize,
    pub n50: usize,
    pub gc_fraction: f64,
}

impl DatasetStats {
    /// Compute statistics over a record set.
    pub fn from_records(records: &[SeqRecord]) -> Self {
        Self::from_lengths_and_gc(
            records.iter().map(|r| r.len()),
            records
                .iter()
                .flat_map(|r| r.seq.iter())
                .filter(|&&b| matches!(b, b'G' | b'g' | b'C' | b'c'))
                .count() as u64,
        )
    }

    /// Compute from raw lengths (GC count supplied separately).
    pub fn from_lengths_and_gc(lengths: impl IntoIterator<Item = usize>, gc_bases: u64) -> Self {
        let mut lens: Vec<usize> = lengths.into_iter().collect();
        if lens.is_empty() {
            return DatasetStats::default();
        }
        let total: u64 = lens.iter().map(|&l| l as u64).sum();
        let max = lens.iter().max().copied().unwrap_or(0);
        let min = lens.iter().min().copied().unwrap_or(0);
        lens.sort_unstable_by(|a, b| b.cmp(a));
        let mut acc = 0u64;
        let mut n50 = 0usize;
        for &l in &lens {
            acc += l as u64;
            if acc * 2 >= total {
                n50 = l;
                break;
            }
        }
        DatasetStats {
            num_reads: lens.len(),
            total_bases: total,
            mean_len: total as f64 / lens.len() as f64,
            max_len: max,
            min_len: min,
            n50,
            gc_fraction: if total > 0 {
                gc_bases as f64 / total as f64
            } else {
                0.0
            },
        }
    }

    /// Render the stats as rows shaped like the paper's Table 4 column.
    pub fn table4_rows(&self) -> Vec<(String, String)> {
        vec![
            ("Number of Reads".into(), format!("{}", self.num_reads)),
            (
                "Average Length (bp)".into(),
                format!("{:.1}", self.mean_len),
            ),
            ("Maximum Length (bp)".into(), format!("{}", self.max_len)),
            ("Total Bases".into(), format!("{}", self.total_bases)),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_set_is_all_zero() {
        let s = DatasetStats::from_records(&[]);
        assert_eq!(s, DatasetStats::default());
    }

    #[test]
    fn basic_stats() {
        let recs = vec![
            SeqRecord::new("a", b"ACGT".to_vec()),     // 50% GC
            SeqRecord::new("b", b"AAAAAAAA".to_vec()), // 0% GC
        ];
        let s = DatasetStats::from_records(&recs);
        assert_eq!(s.num_reads, 2);
        assert_eq!(s.total_bases, 12);
        assert_eq!(s.max_len, 8);
        assert_eq!(s.min_len, 4);
        assert!((s.mean_len - 6.0).abs() < 1e-9);
        assert!((s.gc_fraction - 2.0 / 12.0).abs() < 1e-9);
    }

    #[test]
    fn n50_definition() {
        // Lengths 10, 5, 3, 2 — total 20; cumulative from largest: 10 ≥ 10.
        let s = DatasetStats::from_lengths_and_gc([5, 3, 10, 2], 0);
        assert_eq!(s.n50, 10);
        // Lengths 4,4,4 — total 12; cumulative 4, 8 ≥ 6 ⇒ n50 = 4.
        let s = DatasetStats::from_lengths_and_gc([4, 4, 4], 0);
        assert_eq!(s.n50, 4);
    }

    #[test]
    fn table4_shape() {
        let s = DatasetStats::from_lengths_and_gc([100, 200], 30);
        let rows = s.table4_rows();
        assert_eq!(rows.len(), 4);
        assert_eq!(rows[0].1, "2");
        assert_eq!(rows[3].1, "300");
    }
}
