//! Owned sequence records.

use crate::encode::to_nt4;

/// One FASTA/FASTQ record: name, optional comment, raw ASCII bases and
/// (for FASTQ) quality string.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SeqRecord {
    /// Record identifier (text up to the first whitespace of the header).
    pub name: String,
    /// Remainder of the header line, if any.
    pub comment: Option<String>,
    /// Raw ASCII sequence.
    pub seq: Vec<u8>,
    /// Phred+33 quality string; `None` for FASTA records.
    pub qual: Option<Vec<u8>>,
}

impl SeqRecord {
    /// Convenience constructor for a FASTA-style record.
    pub fn new(name: impl Into<String>, seq: impl Into<Vec<u8>>) -> Self {
        SeqRecord {
            name: name.into(),
            comment: None,
            seq: seq.into(),
            qual: None,
        }
    }

    /// Sequence length in bases.
    #[inline]
    pub fn len(&self) -> usize {
        self.seq.len()
    }

    /// True for zero-length sequences.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.seq.is_empty()
    }

    /// nt4-encode the sequence.
    pub fn nt4(&self) -> Vec<u8> {
        to_nt4(&self.seq)
    }

    /// Approximate heap footprint, used by RAM-usage accounting in the
    /// macro-benchmark harnesses.
    pub fn heap_bytes(&self) -> usize {
        self.name.capacity()
            + self.comment.as_ref().map_or(0, |c| c.capacity())
            + self.seq.capacity()
            + self.qual.as_ref().map_or(0, |q| q.capacity())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_accessors() {
        let r = SeqRecord::new("read1", b"ACGT".to_vec());
        assert_eq!(r.len(), 4);
        assert!(!r.is_empty());
        assert_eq!(r.nt4(), vec![0, 1, 2, 3]);
        assert!(r.qual.is_none());
    }

    #[test]
    fn heap_bytes_counts_all_fields() {
        let mut r = SeqRecord::new("x", b"ACGT".to_vec());
        let base = r.heap_bytes();
        r.qual = Some(b"IIII".to_vec());
        assert!(r.heap_bytes() > base);
    }
}
