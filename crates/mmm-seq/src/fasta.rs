//! Streaming FASTA/FASTQ reader in the style of `kseq.h`.
//!
//! minimap2 reads queries in batches through a tiny pull parser; this is the
//! Rust equivalent. The format (FASTA vs FASTQ) is auto-detected from the
//! first non-empty line and records of both kinds may not be mixed. Sequence
//! lines may be wrapped arbitrarily; FASTQ records must have single-line
//! sequence/quality sections of equal length (the universal modern layout,
//! and the one every long-read basecaller emits).

use std::io::BufRead;

use crate::error::SeqError;
use crate::record::SeqRecord;

/// Detected input format.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FastxFormat {
    Fasta,
    Fastq,
}

/// Pull parser yielding [`SeqRecord`]s from any [`BufRead`].
pub struct FastxReader<R: BufRead> {
    inner: R,
    line: Vec<u8>,
    /// Lookahead header line (without the leading marker) carried between
    /// records.
    pending_header: Option<Vec<u8>>,
    format: Option<FastxFormat>,
    line_no: u64,
    byte_no: u64,
}

impl<R: BufRead> FastxReader<R> {
    /// Wrap a buffered reader.
    pub fn new(inner: R) -> Self {
        FastxReader {
            inner,
            line: Vec::new(),
            pending_header: None,
            format: None,
            line_no: 0,
            byte_no: 0,
        }
    }

    /// The detected format, once at least one record has been read.
    pub fn format(&self) -> Option<FastxFormat> {
        self.format
    }

    /// 1-based line number of the last line read.
    pub fn line_number(&self) -> u64 {
        self.line_no
    }

    /// Bytes consumed from the underlying stream so far.
    pub fn byte_offset(&self) -> u64 {
        self.byte_no
    }

    fn read_line(&mut self) -> Result<bool, SeqError> {
        self.line.clear();
        let n = self
            .inner
            .read_until(b'\n', &mut self.line)
            .map_err(|e| SeqError::IoAt {
                offset: self.byte_no,
                line: self.line_no,
                source: e,
            })?;
        if n == 0 {
            return Ok(false);
        }
        self.byte_no += n as u64;
        self.line_no += 1;
        while matches!(self.line.last(), Some(b'\n') | Some(b'\r')) {
            self.line.pop();
        }
        Ok(true)
    }

    fn parse_err(&self, msg: impl Into<String>) -> SeqError {
        SeqError::Parse {
            msg: msg.into(),
            line: self.line_no,
        }
    }

    fn split_header(header: &[u8]) -> (String, Option<String>) {
        let text = String::from_utf8_lossy(header);
        match text.split_once(char::is_whitespace) {
            Some((name, rest)) => {
                let rest = rest.trim();
                (
                    name.to_string(),
                    if rest.is_empty() {
                        None
                    } else {
                        Some(rest.to_string())
                    },
                )
            }
            None => (text.trim().to_string(), None),
        }
    }

    /// Read the next record, or `Ok(None)` at end of input.
    pub fn next_record(&mut self) -> Result<Option<SeqRecord>, SeqError> {
        // Find a header: either carried over from the previous record or the
        // next non-empty line.
        let header = if let Some(h) = self.pending_header.take() {
            h
        } else {
            loop {
                if !self.read_line()? {
                    return Ok(None);
                }
                if self.line.is_empty() {
                    continue;
                }
                break;
            }
            let marker = self.line[0];
            let fmt = match marker {
                b'>' => FastxFormat::Fasta,
                b'@' => FastxFormat::Fastq,
                _ => return Err(self.parse_err("expected '>' or '@' header")),
            };
            match self.format {
                None => self.format = Some(fmt),
                Some(f) if f != fmt => {
                    return Err(self.parse_err("mixed FASTA/FASTQ records in one stream"))
                }
                _ => {}
            }
            self.line[1..].to_vec()
        };

        let (name, comment) = Self::split_header(&header);
        if name.is_empty() {
            return Err(self.parse_err("empty record name"));
        }

        // The format is always set by the time a header exists; a `None`
        // here would be an internal inconsistency, surfaced as a parse
        // error rather than a panic.
        let format = match self.format {
            Some(f) => f,
            None => return Err(self.parse_err("record body before any format-setting header")),
        };
        match format {
            FastxFormat::Fasta => {
                let mut seq = Vec::new();
                loop {
                    if !self.read_line()? {
                        break;
                    }
                    if self.line.is_empty() {
                        continue;
                    }
                    if self.line[0] == b'>' {
                        self.pending_header = Some(self.line[1..].to_vec());
                        break;
                    }
                    if self.line[0] == b'@' {
                        return Err(self.parse_err("mixed FASTA/FASTQ records in one stream"));
                    }
                    seq.extend_from_slice(&self.line);
                }
                Ok(Some(SeqRecord {
                    name,
                    comment,
                    seq,
                    qual: None,
                }))
            }
            FastxFormat::Fastq => {
                if !self.read_line()? {
                    return Err(self.parse_err("truncated FASTQ record: missing sequence"));
                }
                let seq = self.line.clone();
                if !self.read_line()? || self.line.first() != Some(&b'+') {
                    return Err(self.parse_err("truncated FASTQ record: missing '+' separator"));
                }
                if !self.read_line()? {
                    return Err(self.parse_err("truncated FASTQ record: missing quality"));
                }
                let qual = self.line.clone();
                if qual.len() != seq.len() {
                    return Err(self.parse_err(format!(
                        "quality length {} != sequence length {}",
                        qual.len(),
                        seq.len()
                    )));
                }
                Ok(Some(SeqRecord {
                    name,
                    comment,
                    seq,
                    qual: Some(qual),
                }))
            }
        }
    }

    /// Read up to `max_bases` worth of records (at least one if available).
    /// This mirrors minimap2's `mini_batch_size` batching: the pipeline pulls
    /// batches of roughly constant base count, not record count.
    pub fn next_batch(&mut self, max_bases: usize) -> Result<Vec<SeqRecord>, SeqError> {
        let mut out = Vec::new();
        let mut bases = 0usize;
        while bases < max_bases {
            match self.next_record()? {
                Some(r) => {
                    bases += r.len();
                    out.push(r);
                }
                None => break,
            }
        }
        Ok(out)
    }

    /// Drain the stream into a vector.
    pub fn read_all(&mut self) -> Result<Vec<SeqRecord>, SeqError> {
        let mut out = Vec::new();
        while let Some(r) = self.next_record()? {
            out.push(r);
        }
        Ok(out)
    }
}

impl<R: BufRead> Iterator for FastxReader<R> {
    type Item = Result<SeqRecord, SeqError>;

    fn next(&mut self) -> Option<Self::Item> {
        self.next_record().transpose()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn reader(s: &str) -> FastxReader<Cursor<&[u8]>> {
        FastxReader::new(Cursor::new(s.as_bytes()))
    }

    #[test]
    fn parses_multiline_fasta() {
        let mut r = reader(">r1 a comment\nACGT\nTTGG\n\n>r2\nA\n");
        let a = r.next_record().unwrap().unwrap();
        assert_eq!(a.name, "r1");
        assert_eq!(a.comment.as_deref(), Some("a comment"));
        assert_eq!(a.seq, b"ACGTTTGG");
        let b = r.next_record().unwrap().unwrap();
        assert_eq!(b.name, "r2");
        assert_eq!(b.seq, b"A");
        assert!(r.next_record().unwrap().is_none());
        assert_eq!(r.format(), Some(FastxFormat::Fasta));
    }

    #[test]
    fn parses_fastq() {
        let mut r = reader("@q1\nACGT\n+\nIIII\n@q2 c\nGG\n+q2\nJJ\n");
        let a = r.next_record().unwrap().unwrap();
        assert_eq!(a.name, "q1");
        assert_eq!(a.qual.as_deref(), Some(b"IIII".as_slice()));
        let b = r.next_record().unwrap().unwrap();
        assert_eq!(b.name, "q2");
        assert_eq!(b.comment.as_deref(), Some("c"));
        assert_eq!(b.seq, b"GG");
        assert!(r.next_record().unwrap().is_none());
        assert_eq!(r.format(), Some(FastxFormat::Fastq));
    }

    #[test]
    fn windows_line_endings() {
        let mut r = reader(">r\r\nAC\r\nGT\r\n");
        let a = r.next_record().unwrap().unwrap();
        assert_eq!(a.seq, b"ACGT");
    }

    #[test]
    fn rejects_garbage_start() {
        let mut r = reader("ACGT\n");
        assert!(matches!(r.next_record(), Err(SeqError::Parse { .. })));
    }

    #[test]
    fn rejects_mixed_formats() {
        // The '@' header is seen while scanning record `a`'s sequence lines,
        // so the error surfaces on the first pull.
        let mut r = reader(">a\nACGT\n@b\nAC\n+\nII\n");
        assert!(r.next_record().is_err());
    }

    #[test]
    fn rejects_quality_length_mismatch() {
        let mut r = reader("@q\nACGT\n+\nII\n");
        assert!(r.next_record().is_err());
    }

    #[test]
    fn rejects_truncated_fastq() {
        let mut r = reader("@q\nACGT\n");
        assert!(r.next_record().is_err());
    }

    #[test]
    fn batching_by_base_count() {
        let mut r = reader(">a\nAAAA\n>b\nCCCC\n>c\nGGGG\n");
        let batch = r.next_batch(6).unwrap();
        assert_eq!(batch.len(), 2); // 4 bases, then 8 ≥ 6 stops after the 2nd
        let rest = r.next_batch(100).unwrap();
        assert_eq!(rest.len(), 1);
        assert!(r.next_batch(100).unwrap().is_empty());
    }

    #[test]
    fn iterator_interface() {
        let names: Vec<String> = reader(">a\nA\n>b\nC\n").map(|r| r.unwrap().name).collect();
        assert_eq!(names, vec!["a", "b"]);
    }

    #[test]
    fn empty_input_is_empty() {
        assert!(reader("").next_record().unwrap().is_none());
        assert!(reader("\n\n").next_record().unwrap().is_none());
    }

    /// A mid-stream device error must surface as `SeqError::IoAt` carrying
    /// the byte offset where the stream died — not as end-of-input.
    #[test]
    fn mid_stream_io_error_carries_offset() {
        struct Dying {
            data: Cursor<Vec<u8>>,
            ok_bytes: u64,
        }
        impl std::io::Read for Dying {
            fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
                if self.data.position() >= self.ok_bytes {
                    return Err(std::io::Error::other("device died"));
                }
                let left = (self.ok_bytes - self.data.position()) as usize;
                let n = left.min(buf.len());
                self.data.read(&mut buf[..n])
            }
        }
        let text = b">a\nACGT\n>b\nGGGG\n".to_vec();
        let mut r = FastxReader::new(std::io::BufReader::with_capacity(
            4,
            Dying {
                data: Cursor::new(text),
                ok_bytes: 11,
            },
        ));
        let a = r.next_record().unwrap().unwrap();
        assert_eq!(a.name, "a");
        let err = loop {
            match r.next_record() {
                Ok(Some(_)) => {}
                Ok(None) => panic!("error swallowed as end-of-input"),
                Err(e) => break e,
            }
        };
        assert!(err.is_io());
        let text = err.to_string();
        assert!(text.contains("at byte"), "{text}");
        assert!(text.contains("device died"), "{text}");
    }

    #[test]
    fn offsets_track_consumed_bytes() {
        let mut r = reader(">a\nACGT\n>b\nC\n");
        r.next_record().unwrap().unwrap();
        // Reading record `a` consumes through `>b`'s header (lookahead).
        assert_eq!(r.byte_offset(), 11);
        assert_eq!(r.line_number(), 3);
    }
}
