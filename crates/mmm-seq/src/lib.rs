//! `mmm-seq` — DNA sequence primitives for the manymap aligner.
//!
//! This crate provides the sequence substrate every other crate builds on:
//!
//! * [`encode`] — the `nt4` nucleotide code (A/C/G/T/N → 0..4), 2-bit packed
//!   sequences, reverse complement;
//! * [`record`] — owned sequence records with optional quality strings;
//! * [`fasta`] — a streaming FASTA/FASTQ parser in the style of `kseq.h`
//!   (minimap2's reader), working over any [`std::io::BufRead`];
//! * [`writer`] — FASTA/FASTQ emission, used by the dataset generators;
//! * [`stats`] — dataset statistics (read counts, mean/max length, N50,
//!   total bases) used to regenerate Table 4 of the paper.
//!
//! Everything here is deliberately free of dependencies so the hot aligner
//! crates stay lightweight.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod encode;
pub mod error;
pub mod fasta;
pub mod record;
pub mod stats;
pub mod writer;

pub use encode::{
    comp4, encode_base, nt4_decode, revcomp4, revcomp_in_place, to_nt4, PackedSeq, BASE_CHARS,
    SEQ_NT4_TABLE,
};
pub use error::SeqError;
pub use fasta::{FastxFormat, FastxReader};
pub use record::SeqRecord;
pub use stats::DatasetStats;
pub use writer::{write_fasta, write_fastq};
