//! Integration-level shape checks of the KNL machine model: the paper's
//! qualitative findings expressed as invariants over wide parameter ranges
//! (the unit tests pin single calibration points; these sweep).

use mmm_knl::{
    affinity_assignment, simulate_pipeline, AffinityPolicy, MemoryMode, PipelineParams, WorkBatch,
    KNL_7210, XEON_GOLD_5115,
};

fn batch(reads: usize, align_each: f64, io: f64) -> WorkBatch {
    WorkBatch {
        chain_cost: vec![align_each / 4.0; reads],
        align_cost: vec![align_each; reads],
        in_cost: io,
        out_cost: io,
    }
}

#[test]
fn speedup_is_monotone_in_threads_for_any_affinity() {
    // The paper's scaling claim (Figures 9/10) is about compute-bound
    // workloads with many more reads than threads. Two deliberate choices
    // keep the sweep inside that regime:
    // * I/O ≪ compute, so the full-occupancy I/O-contention cliff (the
    //   very effect the Optimized policy's reserved core removes — see
    //   `only_optimized_stays_monotone_under_heavy_io`) cannot dominate;
    // * 2560 reads ≥ 10 per thread at 256 threads, so list scheduling is
    //   near the fluid limit and the Optimized policy's 252-vs-256 thread
    //   quantization cannot flip the ordering.
    let batches = vec![batch(2560, 0.004, 0.02); 4];
    for policy in AffinityPolicy::ALL {
        let params = PipelineParams {
            affinity: policy,
            ..Default::default()
        };
        let mut prev = f64::INFINITY;
        for t in [1usize, 2, 4, 8, 16, 32, 64, 128, 256] {
            let total = simulate_pipeline(&KNL_7210, t, &batches, &params).total;
            assert!(
                total <= prev * 1.0001,
                "{policy:?} threads={t}: {total} > {prev}"
            );
            prev = total;
        }
    }
}

#[test]
fn only_optimized_stays_monotone_under_heavy_io() {
    // The cliff the reserved core exists for (§4.4.3, Figure 10): with
    // I/O-heavy batches, Compact and Scatter regress from 128 to 256
    // threads — full occupancy leaves no idle core, so the I/O thread
    // pays the contention penalty and the pipeline becomes I/O-bound.
    // Optimized holds a core back and keeps improving (or at worst flat).
    let batches = vec![batch(2560, 0.004, 4.0); 4];
    let total = |policy, t| {
        simulate_pipeline(
            &KNL_7210,
            t,
            &batches,
            &PipelineParams {
                affinity: policy,
                ..Default::default()
            },
        )
        .total
    };
    // Compact still has idle cores at 128 threads (32 cores × 4 threads),
    // so its cliff sits at the 128 → 256 step.
    let c128 = total(AffinityPolicy::Compact, 128);
    let c256 = total(AffinityPolicy::Compact, 256);
    assert!(
        c256 > c128 * 1.01,
        "Compact must hit the contention cliff: {c128} -> {c256}"
    );
    // Scatter occupies every core from 64 threads on, so it pays the
    // penalty throughout the upper range; at full occupancy both
    // non-reserved policies land well behind Optimized.
    let o256 = total(AffinityPolicy::Optimized, 256);
    for policy in [AffinityPolicy::Compact, AffinityPolicy::Scatter] {
        let t256 = total(policy, 256);
        assert!(
            t256 > o256 * 1.01,
            "{policy:?} must trail Optimized under heavy I/O: {t256} vs {o256}"
        );
    }
    let o128 = total(AffinityPolicy::Optimized, 128);
    assert!(
        o256 <= o128 * 1.0001,
        "Optimized must not regress: {o128} -> {o256}"
    );
}

#[test]
fn affinities_converge_at_full_occupancy() {
    // At 256 threads every policy drives every core it uses at 4
    // threads/core (Optimized: 63 compute cores + the reserved I/O core).
    // With ≥10 reads per thread the compute makespans differ only by the
    // one-core throughput gap (~64/63) plus the I/O contention factor on
    // a modest I/O share — well within 15%.
    let batches = vec![batch(2560, 0.004, 0.1); 4];
    let times: Vec<f64> = AffinityPolicy::ALL
        .iter()
        .map(|&a| {
            simulate_pipeline(
                &KNL_7210,
                256,
                &batches,
                &PipelineParams {
                    affinity: a,
                    ..Default::default()
                },
            )
            .total
        })
        .collect();
    let (min, max) = times.iter().fold((f64::INFINITY, 0.0f64), |(lo, hi), &t| {
        (lo.min(t), hi.max(t))
    });
    assert!(max / min < 1.15, "spread {times:?}");
}

#[test]
fn compute_bound_workloads_do_not_care_about_mmap() {
    let batches = vec![batch(512, 0.05, 0.001); 3];
    let a = simulate_pipeline(
        &KNL_7210,
        256,
        &batches,
        &PipelineParams {
            mmap_input: true,
            ..Default::default()
        },
    );
    let b = simulate_pipeline(
        &KNL_7210,
        256,
        &batches,
        &PipelineParams {
            mmap_input: false,
            ..Default::default()
        },
    );
    assert!((a.total - b.total).abs() / a.total < 0.02);
}

#[test]
fn knl_single_thread_is_an_order_of_magnitude_behind_cpu() {
    // Table 2's headline: the same single-thread run is ~15× slower.
    let batches = vec![batch(64, 0.02, 0.1)];
    let p = PipelineParams::default();
    let cpu = simulate_pipeline(&XEON_GOLD_5115, 1, &batches, &p).total;
    let knl = simulate_pipeline(&KNL_7210, 1, &batches, &p).total;
    let ratio = knl / cpu;
    assert!(ratio > 10.0 && ratio < 20.0, "ratio={ratio}");
}

#[test]
fn assignments_place_every_thread_exactly_once() {
    for policy in AffinityPolicy::ALL {
        for t in [1usize, 17, 63, 64, 65, 200, 256] {
            let load = affinity_assignment(&KNL_7210, t, policy);
            let placed: usize = load.per_core.iter().sum();
            let cap = if policy == AffinityPolicy::Optimized {
                (KNL_7210.cores - 1) * KNL_7210.threads_per_core
            } else {
                KNL_7210.cores * KNL_7210.threads_per_core
            };
            assert_eq!(placed, t.min(cap), "{policy:?} t={t}");
            assert!(load
                .per_core
                .iter()
                .all(|&h| h <= KNL_7210.threads_per_core));
        }
    }
}

#[test]
fn memory_mode_ordering_is_stable_in_capacity() {
    use mmm_knl::memory::effective_bandwidth;
    for ws_gb in [1u64, 4, 10, 15] {
        let ws = ws_gb << 30;
        let ddr = effective_bandwidth(ws, MemoryMode::Ddr);
        let cache = effective_bandwidth(ws, MemoryMode::Cache);
        let flat = effective_bandwidth(ws, MemoryMode::Mcdram);
        assert!(
            ddr < cache && cache < flat,
            "ws={ws_gb}GB: {ddr} {cache} {flat}"
        );
    }
}
