//! Thread affinity policies (§4.4.3).
//!
//! `compact` packs threads onto the fewest cores, `scatter` spreads them
//! round-robin, and `optimized` (manymap's policy) scatters compute threads
//! over all but one core, reserving that core for the pipeline's I/O
//! thread so input/output never contends with alignment workers.

use crate::platform::MachineModel;

/// The three policies of Figure 10.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AffinityPolicy {
    Compact,
    Scatter,
    Optimized,
}

impl AffinityPolicy {
    /// Figure 10 legend labels.
    pub fn label(self) -> &'static str {
        match self {
            AffinityPolicy::Compact => "compact",
            AffinityPolicy::Scatter => "scatter",
            AffinityPolicy::Optimized => "optimized",
        }
    }

    /// All policies.
    pub const ALL: [AffinityPolicy; 3] = [
        AffinityPolicy::Compact,
        AffinityPolicy::Scatter,
        AffinityPolicy::Optimized,
    ];
}

/// Result of placing `t` compute threads on a machine.
#[derive(Clone, Debug, PartialEq)]
pub struct CoreLoad {
    /// threads assigned to each core (length = machine cores).
    pub per_core: Vec<usize>,
    /// Whether one core is held free for I/O.
    pub io_reserved: bool,
}

impl CoreLoad {
    /// Per-thread speed factors (reference-thread units): each of the `h`
    /// threads on a core delivers `agg(h)/h`.
    pub fn thread_speeds(&self, m: &MachineModel) -> Vec<f64> {
        let mut v = Vec::new();
        for &h in &self.per_core {
            for _ in 0..h {
                v.push(m.core_agg(h) / h as f64);
            }
        }
        v
    }

    /// Total compute throughput in reference-thread units.
    pub fn total_throughput(&self, m: &MachineModel) -> f64 {
        self.per_core.iter().map(|&h| m.core_agg(h)).sum()
    }

    /// Does the I/O thread run uncontended? True when a core is reserved or
    /// some core is entirely idle.
    pub fn io_uncontended(&self) -> bool {
        self.io_reserved || self.per_core.contains(&0)
    }
}

/// Place `threads` compute threads according to `policy` (thread i → core
/// ⌊i/k⌋ for compact, i mod P for scatter, as defined in §4.4.3).
pub fn affinity_assignment(m: &MachineModel, threads: usize, policy: AffinityPolicy) -> CoreLoad {
    let threads = threads.min(m.max_threads());
    let mut per_core = vec![0usize; m.cores];
    match policy {
        AffinityPolicy::Compact => {
            for i in 0..threads {
                per_core[(i / m.threads_per_core).min(m.cores - 1)] += 1;
            }
            CoreLoad {
                per_core,
                io_reserved: false,
            }
        }
        AffinityPolicy::Scatter => {
            for i in 0..threads {
                per_core[i % m.cores] += 1;
            }
            CoreLoad {
                per_core,
                io_reserved: false,
            }
        }
        AffinityPolicy::Optimized => {
            // Reserve the last core for I/O; scatter compute over the rest.
            let avail = m.cores - 1;
            let threads = threads.min(avail * m.threads_per_core);
            for i in 0..threads {
                per_core[i % avail] += 1;
            }
            CoreLoad {
                per_core,
                io_reserved: true,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::KNL_7210;

    #[test]
    fn compact_uses_fewest_cores() {
        let l = affinity_assignment(&KNL_7210, 64, AffinityPolicy::Compact);
        assert_eq!(l.per_core.iter().filter(|&&h| h > 0).count(), 16);
        assert!(l.per_core.iter().all(|&h| h == 0 || h == 4));
    }

    #[test]
    fn scatter_uses_all_cores() {
        let l = affinity_assignment(&KNL_7210, 64, AffinityPolicy::Scatter);
        assert!(l.per_core.iter().all(|&h| h == 1));
        let l2 = affinity_assignment(&KNL_7210, 100, AffinityPolicy::Scatter);
        assert_eq!(l2.per_core.iter().sum::<usize>(), 100);
        assert!(l2.per_core.iter().all(|&h| h == 1 || h == 2));
    }

    #[test]
    fn optimized_reserves_one_core() {
        let l = affinity_assignment(&KNL_7210, 256, AffinityPolicy::Optimized);
        assert!(l.io_reserved);
        assert_eq!(l.per_core[63], 0);
        assert!(l.io_uncontended());
    }

    #[test]
    fn scatter_equals_optimized_below_core_count() {
        // §5.3.2: same thread assignment when T ≤ cores.
        let a = affinity_assignment(&KNL_7210, 48, AffinityPolicy::Scatter);
        let b = affinity_assignment(&KNL_7210, 48, AffinityPolicy::Optimized);
        assert_eq!(a.total_throughput(&KNL_7210), b.total_throughput(&KNL_7210));
        // Scatter with idle cores is also effectively uncontended for I/O.
        assert!(a.io_uncontended());
    }

    #[test]
    fn compact_throughput_about_half_of_scatter() {
        // Figure 10: compact ≈ 2× slower when T ≤ #cores.
        let c =
            affinity_assignment(&KNL_7210, 64, AffinityPolicy::Compact).total_throughput(&KNL_7210);
        let s =
            affinity_assignment(&KNL_7210, 64, AffinityPolicy::Scatter).total_throughput(&KNL_7210);
        let ratio = s / c;
        assert!(ratio > 1.7 && ratio < 2.3, "ratio={ratio}");
    }

    #[test]
    fn thread_speeds_sum_to_throughput() {
        let l = affinity_assignment(&KNL_7210, 100, AffinityPolicy::Scatter);
        let sum: f64 = l.thread_speeds(&KNL_7210).iter().sum();
        assert!((sum - l.total_throughput(&KNL_7210)).abs() < 1e-9);
    }

    #[test]
    fn oversubscription_clamps() {
        let l = affinity_assignment(&KNL_7210, 10_000, AffinityPolicy::Scatter);
        assert_eq!(l.per_core.iter().sum::<usize>(), 256);
    }
}
