//! Discrete pipeline simulator (§4.4.4, Figures 9–11).
//!
//! Work arrives as batches of per-read costs measured on the reference
//! host core; the simulator scales them by the machine model, schedules
//! them over the modeled threads (greedy list scheduling — LPT when the
//! batch is length-sorted, arrival order otherwise) and plays the batches
//! through one of the two pipeline designs:
//!
//! * **minimap2's 2-thread pipeline** — two pipeline threads alternate
//!   batches; each executes load → compute → output, so a batch's
//!   computation overlaps the *other* thread's I/O, but input and output
//!   share one I/O resource;
//! * **manymap's 3-thread pipeline** — a dedicated I/O design where input
//!   and output also overlap each other.

use crate::affinity::{affinity_assignment, AffinityPolicy};
use crate::platform::MachineModel;

/// One input batch, in reference-core seconds.
#[derive(Clone, Debug, Default)]
pub struct WorkBatch {
    /// Per-read seeding + chaining cost.
    pub chain_cost: Vec<f64>,
    /// Per-read base-level alignment cost (parallel index-matched with
    /// `chain_cost`).
    pub align_cost: Vec<f64>,
    /// Input (read loading) cost.
    pub in_cost: f64,
    /// Output (formatting + writing) cost.
    pub out_cost: f64,
}

/// Pipeline configuration.
#[derive(Clone, Copy, Debug)]
pub struct PipelineParams {
    /// manymap's 3-thread design (true) vs minimap2's 2-thread (false).
    pub dedicated_io: bool,
    /// Load input through mmap (§4.4.2).
    pub mmap_input: bool,
    /// Sort each batch by descending cost before scheduling (§4.4.4's
    /// long-reads-first balancing).
    pub sort_by_length: bool,
    pub affinity: AffinityPolicy,
}

impl Default for PipelineParams {
    fn default() -> Self {
        PipelineParams {
            dedicated_io: true,
            mmap_input: true,
            sort_by_length: true,
            affinity: AffinityPolicy::Optimized,
        }
    }
}

/// Simulation outcome.
#[derive(Clone, Copy, Debug, Default)]
pub struct PipelineReport {
    /// End-to-end wall time (simulated seconds).
    pub total: f64,
    /// Aggregate stage times (not wall time — stages overlap).
    pub in_time: f64,
    pub compute_time: f64,
    pub out_time: f64,
}

/// Extra I/O slowdown when the I/O thread shares a busy core.
const IO_CONTENTION: f64 = 1.25;

/// Makespan of one batch's reads over the modeled threads.
pub fn batch_compute_makespan(
    m: &MachineModel,
    threads: usize,
    batch: &WorkBatch,
    sort: bool,
    affinity: AffinityPolicy,
) -> f64 {
    let load = affinity_assignment(m, threads, affinity);
    let speeds = load.thread_speeds(m);
    if speeds.is_empty() {
        return f64::INFINITY;
    }
    let mut costs: Vec<f64> = batch
        .chain_cost
        .iter()
        .zip(&batch.align_cost)
        .map(|(&c, &a)| m.seedchain_time(c) + m.align_time(a))
        .collect();
    if sort {
        costs.sort_by(|x, y| y.total_cmp(x));
    }
    // Greedy list scheduling onto heterogeneous threads.
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    #[derive(PartialEq)]
    struct T(f64, usize);
    impl Eq for T {}
    impl PartialOrd for T {
        fn partial_cmp(&self, o: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(o))
        }
    }
    impl Ord for T {
        fn cmp(&self, o: &Self) -> std::cmp::Ordering {
            self.0.total_cmp(&o.0).then(self.1.cmp(&o.1))
        }
    }
    let mut heap: BinaryHeap<Reverse<T>> = (0..speeds.len()).map(|i| Reverse(T(0.0, i))).collect();
    let mut makespan: f64 = 0.0;
    for c in costs {
        // Seeded with one entry per thread; empty only if `speeds` is empty.
        let Some(Reverse(T(avail, i))) = heap.pop() else {
            break;
        };
        let done = avail + c / speeds[i];
        makespan = makespan.max(done);
        heap.push(Reverse(T(done, i)));
    }
    makespan
}

/// Play the batches through the selected pipeline design.
///
/// ```
/// use mmm_knl::{simulate_pipeline, PipelineParams, WorkBatch, KNL_7210};
/// // 640 reads = 10 per thread at 64 threads, so list scheduling is near
/// // the fluid limit (64 reads would leave the makespan quantized by
/// // whichever core carries one read more than its neighbours).
/// let batch = WorkBatch {
///     chain_cost: vec![0.001; 640],
///     align_cost: vec![0.004; 640],
///     in_cost: 0.01,
///     out_cost: 0.01,
/// };
/// let p = PipelineParams::default();
/// let t1 = simulate_pipeline(&KNL_7210, 1, std::slice::from_ref(&batch), &p).total;
/// let t64 = simulate_pipeline(&KNL_7210, 64, std::slice::from_ref(&batch), &p).total;
/// assert!(t1 / t64 > 30.0); // near-linear scaling on physical cores
/// ```
pub fn simulate_pipeline(
    m: &MachineModel,
    threads: usize,
    batches: &[WorkBatch],
    p: &PipelineParams,
) -> PipelineReport {
    let load = affinity_assignment(m, threads, p.affinity);
    let io_factor = if load.io_uncontended() {
        1.0
    } else {
        IO_CONTENTION
    };

    let mut rep = PipelineReport::default();
    let in_t: Vec<f64> = batches
        .iter()
        .map(|b| m.read_time(b.in_cost, p.mmap_input) * io_factor)
        .collect();
    let out_t: Vec<f64> = batches
        .iter()
        .map(|b| m.write_time(b.out_cost) * io_factor)
        .collect();
    let comp_t: Vec<f64> = batches
        .iter()
        .map(|b| batch_compute_makespan(m, threads, b, p.sort_by_length, p.affinity))
        .collect();
    rep.in_time = in_t.iter().sum();
    rep.out_time = out_t.iter().sum();
    rep.compute_time = comp_t.iter().sum();

    let n = batches.len();
    if n == 0 {
        return rep;
    }

    if p.dedicated_io {
        // 3-thread design: input, compute and output each own a resource.
        let mut in_free = 0.0f64;
        let mut comp_free = 0.0f64;
        let mut out_free = 0.0f64;
        let mut end_comp = vec![0.0f64; n];
        for b in 0..n {
            // Bounded look-ahead: the reader may run at most 2 batches
            // ahead of the compute stage.
            let gate = if b >= 2 { end_comp[b - 2] } else { 0.0 };
            let end_in = in_free.max(gate) + in_t[b];
            in_free = end_in;
            let start_comp = end_in.max(comp_free);
            end_comp[b] = start_comp + comp_t[b];
            comp_free = end_comp[b];
            let start_out = end_comp[b].max(out_free);
            out_free = start_out + out_t[b];
        }
        rep.total = out_free;
    } else {
        // minimap2's 2-thread design: threads alternate batches; all I/O
        // (input and output) shares one resource, compute shares another.
        let mut thread_free = [0.0f64; 2];
        let mut io_free = 0.0f64;
        let mut comp_free = 0.0f64;
        let mut last_end = 0.0f64;
        for b in 0..n {
            let t = b % 2;
            let start_in = thread_free[t].max(io_free);
            let end_in = start_in + in_t[b];
            io_free = end_in;
            let start_comp = end_in.max(comp_free);
            let end_comp = start_comp + comp_t[b];
            comp_free = end_comp;
            let start_out = end_comp.max(io_free);
            let end_out = start_out + out_t[b];
            io_free = end_out;
            thread_free[t] = end_out;
            last_end = end_out;
        }
        rep.total = last_end;
    }
    rep
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::KNL_7210;

    /// Batches shaped like the macro workload: compute-heavy with modest
    /// I/O; costs in reference-core seconds.
    fn workload(io_weight: f64) -> Vec<WorkBatch> {
        let mut batches = Vec::new();
        let mut s = 1234u64;
        for _ in 0..8 {
            let mut rnd = || {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
                ((s >> 33) % 1000) as f64 / 1000.0
            };
            let reads = 512;
            let chain: Vec<f64> = (0..reads).map(|_| 0.002 + 0.004 * rnd()).collect();
            let align: Vec<f64> = (0..reads).map(|_| 0.004 + 0.016 * rnd()).collect();
            batches.push(WorkBatch {
                chain_cost: chain,
                align_cost: align,
                in_cost: 0.05 * io_weight,
                out_cost: 0.1 * io_weight,
            });
        }
        batches
    }

    fn run(threads: usize, p: &PipelineParams, io_weight: f64) -> f64 {
        simulate_pipeline(&KNL_7210, threads, &workload(io_weight), p).total
    }

    #[test]
    fn near_linear_scaling_to_64_threads() {
        // Figure 9: 79% parallel efficiency at 64 threads.
        let p = PipelineParams::default();
        let t1 = run(1, &p, 1.0);
        let t64 = run(64, &p, 1.0);
        let speedup = t1 / t64;
        assert!(speedup > 45.0 && speedup <= 64.0, "speedup={speedup}");
    }

    #[test]
    fn hyperthread_gain_is_modest() {
        // Figure 9: past 64 threads "the performance increase slows down".
        let p = PipelineParams::default();
        let t64 = run(64, &p, 1.2);
        let t256 = run(256, &p, 1.2);
        let gain = t64 / t256;
        assert!(gain > 1.1 && gain < 1.9, "gain={gain}");
    }

    #[test]
    fn compact_is_about_twice_slower_at_64() {
        // Figure 10, T ≤ #cores regime.
        let scatter = PipelineParams {
            affinity: AffinityPolicy::Scatter,
            ..PipelineParams::default()
        };
        let compact = PipelineParams {
            affinity: AffinityPolicy::Compact,
            ..PipelineParams::default()
        };
        let ratio = run(64, &compact, 0.5) / run(64, &scatter, 0.5);
        assert!(ratio > 1.6 && ratio < 2.4, "ratio={ratio}");
    }

    #[test]
    fn compact_catches_up_at_full_occupancy() {
        // Figure 10: compact approaches scatter as T → 256.
        let scatter = PipelineParams {
            affinity: AffinityPolicy::Scatter,
            ..PipelineParams::default()
        };
        let compact = PipelineParams {
            affinity: AffinityPolicy::Compact,
            ..PipelineParams::default()
        };
        let ratio = run(256, &compact, 0.5) / run(256, &scatter, 0.5);
        assert!(ratio < 1.1, "ratio={ratio}");
    }

    #[test]
    fn optimized_beats_scatter_when_io_matters() {
        // Figure 10: up to ~22% at ≥150 threads on the I/O-heavy dataset.
        let scatter = PipelineParams {
            affinity: AffinityPolicy::Scatter,
            ..PipelineParams::default()
        };
        let optimized = PipelineParams {
            affinity: AffinityPolicy::Optimized,
            ..PipelineParams::default()
        };
        let gain = run(200, &scatter, 12.0) / run(200, &optimized, 12.0);
        assert!(gain > 1.05 && gain < 1.35, "gain={gain}");
    }

    #[test]
    fn dedicated_io_pipeline_wins_on_knl() {
        // §4.4.4: the 2-thread pipeline cannot hide KNL's I/O cost.
        let two = PipelineParams {
            dedicated_io: false,
            ..PipelineParams::default()
        };
        let three = PipelineParams {
            dedicated_io: true,
            ..PipelineParams::default()
        };
        let t2 = run(256, &two, 12.0);
        let t3 = run(256, &three, 12.0);
        assert!(t3 < t2, "3-thread {t3} vs 2-thread {t2}");
    }

    #[test]
    fn length_sorting_reduces_makespan() {
        // One giant read scheduled last straggles; longest-first hides it.
        let mut batch = WorkBatch {
            chain_cost: vec![0.001; 129],
            align_cost: vec![0.01; 129],
            in_cost: 0.0,
            out_cost: 0.0,
        };
        batch.align_cost[128] = 1.0; // the straggler arrives last
        let unsorted =
            batch_compute_makespan(&KNL_7210, 64, &batch, false, AffinityPolicy::Scatter);
        let sorted = batch_compute_makespan(&KNL_7210, 64, &batch, true, AffinityPolicy::Scatter);
        assert!(sorted < unsorted, "sorted={sorted} unsorted={unsorted}");
    }

    #[test]
    fn mmap_reduces_total_when_input_bound() {
        let plain = PipelineParams {
            mmap_input: false,
            ..PipelineParams::default()
        };
        let mapped = PipelineParams {
            mmap_input: true,
            ..PipelineParams::default()
        };
        let tp = run(256, &plain, 20.0);
        let tm = run(256, &mapped, 20.0);
        assert!(tm < tp);
    }

    #[test]
    fn empty_input_is_zero() {
        let rep = simulate_pipeline(&KNL_7210, 64, &[], &PipelineParams::default());
        assert_eq!(rep.total, 0.0);
    }
}
