//! Platform specifications (Table 3) and the calibrated cost model.

/// One modeled machine.
///
/// `*_slowdown` factors are the per-stage single-thread slowdowns relative
/// to a reference host core; the KNL values are calibrated directly against
/// the paper's Table 2 (e.g. Align: 1481.59 s / 79.22 s ≈ 18.7×).
#[derive(Clone, Copy, Debug)]
pub struct MachineModel {
    pub name: &'static str,
    pub cores: usize,
    pub threads_per_core: usize,
    /// Base frequency in MHz (Table 3).
    pub base_mhz: u32,
    /// Aggregate per-core throughput with 1..=4 hyper-threads, relative to
    /// one thread. KNL cores are 2-wide in-order: a second thread helps a
    /// lot, the fourth barely (§5.3.1's 21% and Figure 10's compact gap).
    pub ht_agg: [f64; 4],
    /// Single-thread slowdown of the base-level alignment stage vs the
    /// reference core.
    pub align_slowdown: f64,
    /// Slowdown of the seeding + chaining stage.
    pub seedchain_slowdown: f64,
    /// Slowdown of single-thread buffered file reads.
    pub io_read_slowdown: f64,
    /// Slowdown of single-thread formatted output.
    pub io_write_slowdown: f64,
    /// Speedup of index loading when memory-mapped instead of fragmented
    /// reads (§4.4.2: "two times faster ... on KNL").
    pub mmap_speedup: f64,
    /// Total L2 (MiB) — bandwidth-bound phases spill past this.
    pub l2_mib: usize,
}

/// The paper's CPU server: Xeon Gold 5115, 20 cores / 40 threads.
///
/// Reference platform: per-stage slowdowns are 1 by definition. SMT on a
/// big out-of-order core adds ~25%.
pub const XEON_GOLD_5115: MachineModel = MachineModel {
    name: "Xeon Gold 5115",
    cores: 20,
    threads_per_core: 2,
    base_mhz: 2400,
    ht_agg: [1.0, 1.25, 1.25, 1.25],
    align_slowdown: 1.0,
    seedchain_slowdown: 1.0,
    io_read_slowdown: 1.0,
    io_write_slowdown: 1.0,
    mmap_speedup: 1.25,
    l2_mib: 20,
};

/// The paper's Xeon Phi 7210: 64 cores / 256 threads, 1.3 GHz.
///
/// Calibration sources: Table 2 (single-thread per-stage ratios KNL/CPU:
/// load index 6.1×, load query 8.3×, seed & chain 7.5×, align 18.7×,
/// output 10.6×), §4.4.2 (mmap halves index loading), §5.3.1 (hyper-thread
/// yield), Figure 10 (compact ≈ 2× slower below 64 threads ⇒ 4-thread
/// aggregate ≈ 2).
pub const KNL_7210: MachineModel = MachineModel {
    name: "Xeon Phi 7210",
    cores: 64,
    threads_per_core: 4,
    base_mhz: 1300,
    ht_agg: [1.0, 1.55, 1.8, 2.0],
    align_slowdown: 18.7,
    seedchain_slowdown: 7.5,
    io_read_slowdown: 6.1,
    io_write_slowdown: 10.6,
    mmap_speedup: 2.0,
    l2_mib: 32,
};

impl MachineModel {
    /// Time to run `ref_seconds` of reference-core alignment work on one
    /// thread of this machine.
    pub fn align_time(&self, ref_seconds: f64) -> f64 {
        ref_seconds * self.align_slowdown
    }

    /// Time for `ref_seconds` of reference-core seeding/chaining work.
    pub fn seedchain_time(&self, ref_seconds: f64) -> f64 {
        ref_seconds * self.seedchain_slowdown
    }

    /// Single-thread input time for `ref_seconds` of reference I/O,
    /// optionally memory-mapped.
    pub fn read_time(&self, ref_seconds: f64, mmap: bool) -> f64 {
        let t = ref_seconds * self.io_read_slowdown;
        if mmap {
            t / self.mmap_speedup
        } else {
            t
        }
    }

    /// Single-thread output time.
    pub fn write_time(&self, ref_seconds: f64) -> f64 {
        ref_seconds * self.io_write_slowdown
    }

    /// Total hardware threads.
    pub fn max_threads(&self) -> usize {
        self.cores * self.threads_per_core
    }

    /// Aggregate throughput (in reference-thread units of this machine) of
    /// one core running `h` threads.
    pub fn core_agg(&self, h: usize) -> f64 {
        if h == 0 {
            0.0
        } else {
            self.ht_agg[(h - 1).min(3)]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_constants() {
        assert_eq!(KNL_7210.cores, 64);
        assert_eq!(KNL_7210.max_threads(), 256);
        assert_eq!(XEON_GOLD_5115.cores, 20);
        assert_eq!(XEON_GOLD_5115.max_threads(), 40);
        assert_eq!(KNL_7210.base_mhz, 1300);
    }

    #[test]
    fn knl_single_thread_matches_table2_ratios() {
        // Reproduce Table 2's single-thread totals from the CPU column.
        let cpu = [4.71, 0.43, 35.79, 79.22, 0.93];
        let knl_pred = [
            KNL_7210.read_time(cpu[0], false),
            KNL_7210.read_time(cpu[1], false) * (8.3 / 6.1), // query parse skew
            KNL_7210.seedchain_time(cpu[2]),
            KNL_7210.align_time(cpu[3]),
            KNL_7210.write_time(cpu[4]),
        ];
        let knl_paper = [28.74, 3.58, 266.90, 1481.59, 9.85];
        for (i, (p, m)) in knl_paper.iter().zip(&knl_pred).enumerate() {
            let rel = (p - m).abs() / p;
            assert!(rel < 0.05, "stage {i}: paper {p} model {m}");
        }
    }

    #[test]
    fn mmap_halves_knl_index_load() {
        let plain = KNL_7210.read_time(10.0, false);
        let mapped = KNL_7210.read_time(10.0, true);
        assert!((plain / mapped - 2.0).abs() < 1e-9);
    }

    #[test]
    fn ht_aggregation_shape() {
        // Monotone, diminishing, and ≈2 at 4 threads (Figure 10's compact
        // gap); CPU SMT saturates at 2 threads.
        let a = KNL_7210.ht_agg;
        assert!(a[0] < a[1] && a[1] < a[2] && a[2] < a[3]);
        assert!(a[1] - a[0] > a[3] - a[2]);
        assert!((a[3] - 2.0).abs() < 0.2);
        assert_eq!(XEON_GOLD_5115.core_agg(2), XEON_GOLD_5115.core_agg(4));
    }
}
