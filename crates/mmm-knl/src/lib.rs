//! `mmm-knl` — machine models for the Knights Landing and CPU platforms.
//!
//! The paper's KNL results (Tables 2 and 5, Figures 6, 9, 10, 11) come from
//! a Xeon Phi 7210 we do not have. This crate substitutes a calibrated
//! machine model (see DESIGN.md §2): per-stage single-thread slowdowns are
//! calibrated against the paper's own Table 2 measurements, hyper-thread
//! aggregation against §5.3.1, and the MCDRAM bandwidth model against
//! Figure 6. On top of the model sits a discrete pipeline simulator that
//! reproduces minimap2's 2-thread pipeline and manymap's 3-thread
//! (dedicated-I/O) redesign, with compute makespans from list scheduling of
//! per-read costs over the modeled cores.
//!
//! The same machinery models the paper's 20-core Xeon Gold 5115 so that
//! CPU/KNL macro numbers are produced by one code path, with the CPU's
//! per-core costs measured on the host.

pub mod affinity;
pub mod des;
pub mod memory;
pub mod platform;

pub use affinity::{affinity_assignment, AffinityPolicy, CoreLoad};
pub use des::{simulate_pipeline, PipelineParams, PipelineReport, WorkBatch};
pub use memory::{effective_bandwidth, mem_throughput_factor, MemoryMode};
pub use platform::{MachineModel, KNL_7210, XEON_GOLD_5115};
