//! MCDRAM vs DDR memory model (§4.4.1, Figure 6).
//!
//! KNL's 16 GB on-package MCDRAM delivers ~420 GB/s versus ~90 GB/s from
//! DDR4. The alignment kernel is compute-bound while its working set fits
//! in L2; past that it becomes bandwidth-bound and its throughput scales
//! with the memory system feeding it. When the working set exceeds the
//! MCDRAM *capacity*, flat-mode allocations spill to DDR and the advantage
//! disappears — exactly the three regimes of Figure 6.

/// Which memory serves the working set (flat mode: chosen via `numactl`,
/// §4.4.1; the capacity check mirrors manymap's "use MCDRAM only if the
/// data fits" policy).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MemoryMode {
    /// Flat mode, allocations directed to DDR.
    Ddr,
    /// Flat mode, allocations directed to MCDRAM (`numactl --preferred`).
    Mcdram,
    /// Cache mode: MCDRAM is a direct-mapped memory-side cache in front of
    /// DDR — near-MCDRAM bandwidth while the working set fits, degrading
    /// toward DDR (plus a miss-detection overhead) beyond 16 GB.
    Cache,
}

/// MCDRAM stream bandwidth, GB/s.
pub const MCDRAM_GBPS: f64 = 420.0;
/// DDR4 stream bandwidth on KNL, GB/s.
pub const DDR_GBPS: f64 = 90.0;
/// MCDRAM capacity, bytes.
pub const MCDRAM_BYTES: u64 = 16 << 30;
/// Aggregate L2 on KNL (32 tiles × 1 MiB), bytes.
pub const KNL_L2_BYTES: u64 = 32 << 20;

/// Bandwidth the kernel *demands* at full compute speed, GB/s. Calibrated
/// so that a fully bandwidth-bound DDR run is ~5× slower than MCDRAM
/// (Figure 6a's large-length gap): demand ≈ MCDRAM bandwidth.
pub const KERNEL_DEMAND_GBPS: f64 = 420.0;

/// Relative kernel throughput (1.0 = compute-bound peak) for a working set
/// of `ws_bytes` under `mode`.
///
/// * Working set within L2 → 1.0 for both modes.
/// * Bandwidth-bound → `min(1, bw_eff / demand)`, with a smooth ramp as the
///   L2 hit rate decays.
/// * MCDRAM requests larger than its capacity spill: effective bandwidth
///   degrades toward DDR (Figure 6b's "comparable" regime).
pub fn mem_throughput_factor(ws_bytes: u64, mode: MemoryMode) -> f64 {
    let bw = effective_bandwidth(ws_bytes, mode);
    if ws_bytes <= KNL_L2_BYTES {
        return 1.0;
    }
    // L2 miss fraction grows with the working set; fully streaming beyond
    // 8× L2.
    let miss = ((ws_bytes as f64 / KNL_L2_BYTES as f64 - 1.0) / 7.0).clamp(0.0, 1.0);
    let bound = (bw / KERNEL_DEMAND_GBPS).min(1.0);
    1.0 - miss * (1.0 - bound)
}

/// Raw effective stream bandwidth (GB/s) feeding a working set of
/// `ws_bytes` under `mode` — the quantity the Figure 6 harness divides the
/// kernel's bandwidth demand by. Past 16 GB the flat-MCDRAM policy spills
/// under pressure and the streaming tail runs at DDR speed; the paper
/// observes near-parity there (Figure 6b), calibrated by the 1.2 factor.
pub fn effective_bandwidth(ws_bytes: u64, mode: MemoryMode) -> f64 {
    match mode {
        MemoryMode::Ddr => DDR_GBPS,
        MemoryMode::Mcdram => {
            if ws_bytes <= MCDRAM_BYTES {
                MCDRAM_GBPS
            } else {
                DDR_GBPS * 1.2
            }
        }
        MemoryMode::Cache => {
            if ws_bytes <= MCDRAM_BYTES {
                // Tag checks cost a few percent vs flat MCDRAM.
                MCDRAM_GBPS * 0.93
            } else {
                // Direct-mapped cache thrashes under a streaming working
                // set larger than itself: every miss pays DDR *and* the
                // cache fill, ending below plain DDR.
                let hit = MCDRAM_BYTES as f64 / ws_bytes as f64;
                DDR_GBPS * (0.85 + 0.15 * hit)
            }
        }
    }
}

/// manymap's flat-mode policy (§4.4.1): prefer MCDRAM iff the data fits.
pub fn choose_mode(ws_bytes: u64) -> MemoryMode {
    if ws_bytes <= MCDRAM_BYTES {
        MemoryMode::Mcdram
    } else {
        MemoryMode::Ddr
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_working_sets_see_no_difference() {
        // Figure 6a, short sequences: MCDRAM has "no significant advantage".
        let ws = 8 << 20; // 8 MiB
        let d = mem_throughput_factor(ws, MemoryMode::Ddr);
        let m = mem_throughput_factor(ws, MemoryMode::Mcdram);
        assert_eq!(d, 1.0);
        assert_eq!(m, 1.0);
    }

    #[test]
    fn large_score_only_working_set_gains_up_to_5x() {
        // Figure 6a, ≥16 kbp: "using MCDRAM brings up to 5 times speedup".
        let ws = 2 << 30; // 2 GiB, far past L2
        let d = mem_throughput_factor(ws, MemoryMode::Ddr);
        let m = mem_throughput_factor(ws, MemoryMode::Mcdram);
        let speedup = m / d;
        assert!(speedup > 4.0 && speedup < 5.5, "speedup={speedup}");
    }

    #[test]
    fn spill_past_capacity_equalizes() {
        // Figure 6b, 8 kbp with-path needs 18 GB (> 16 GB MCDRAM):
        // "performance of MCDRAM and DDR RAM are comparable".
        let ws = 18 << 30;
        let d = mem_throughput_factor(ws, MemoryMode::Ddr);
        let m = mem_throughput_factor(ws, MemoryMode::Mcdram);
        assert!(m / d < 1.6, "ratio={}", m / d);
    }

    #[test]
    fn monotone_in_working_set() {
        let mut prev = f64::INFINITY;
        for ws in [1u64 << 20, 64 << 20, 256 << 20, 1 << 30, 8 << 30] {
            let f = mem_throughput_factor(ws, MemoryMode::Ddr);
            assert!(f <= prev + 1e-12, "not monotone at ws={ws}");
            prev = f;
        }
    }

    #[test]
    fn policy_prefers_mcdram_when_it_fits() {
        assert_eq!(choose_mode(1 << 30), MemoryMode::Mcdram);
        assert_eq!(choose_mode(20 << 30), MemoryMode::Ddr);
    }

    #[test]
    fn cache_mode_sits_between_flat_modes_in_capacity() {
        // In capacity: close to flat MCDRAM, slightly below.
        let ws = 2u64 << 30;
        let flat = effective_bandwidth(ws, MemoryMode::Mcdram);
        let cache = effective_bandwidth(ws, MemoryMode::Cache);
        assert!(cache < flat && cache > 0.85 * flat);
    }

    #[test]
    fn cache_mode_thrashes_past_capacity() {
        // Past capacity a streaming workload makes cache mode *worse* than
        // plain DDR — the reason manymap chooses flat mode (§4.4.1).
        let ws = 64u64 << 30;
        let cache = effective_bandwidth(ws, MemoryMode::Cache);
        assert!(cache < DDR_GBPS, "cache {cache} vs ddr {DDR_GBPS}");
        // And flat-MCDRAM spill stays at least as good as DDR.
        assert!(effective_bandwidth(ws, MemoryMode::Mcdram) >= DDR_GBPS);
    }
}
