//! Scheduling-level invariants of the stream simulator that unit tests
//! don't cover: conservation, monotonicity and work-equivalence properties
//! that must hold for any cost model.

use mmm_align::Scoring;
use mmm_gpu::stream::{execute_jobs, schedule_runs};
use mmm_gpu::{simulate_batch, DeviceSpec, GpuKernelKind, KernelJob, StreamConfig};

const SC: Scoring = Scoring::MAP_ONT;

fn jobs(n: usize, len: usize) -> Vec<KernelJob> {
    (0..n)
        .map(|k| KernelJob {
            target: (0..len).map(|i| ((i * 3 + k) % 4) as u8).collect(),
            query: (0..len + 7).map(|i| ((i * 11 + k) % 4) as u8).collect(),
            with_path: false,
        })
        .collect()
}

#[test]
fn makespan_never_improves_with_fewer_streams() {
    let js = jobs(48, 800);
    let dev = DeviceSpec::V100;
    let runs = execute_jobs(&js, &SC, GpuKernelKind::Manymap, 512, &dev);
    let mut prev = f64::INFINITY;
    for s in [1usize, 2, 4, 16, 48] {
        let cfg = StreamConfig {
            streams: s,
            ..Default::default()
        };
        let t = schedule_runs(&js, runs.clone(), &cfg, &dev).sim_seconds;
        assert!(t <= prev * 1.0001, "streams={s}: {t} > {prev}");
        prev = t;
    }
}

#[test]
fn single_stream_time_is_the_sum_of_kernels() {
    let js = jobs(10, 600);
    let dev = DeviceSpec::V100;
    let cfg = StreamConfig {
        streams: 1,
        ..Default::default()
    };
    let rep = simulate_batch(&js, &SC, &cfg, &dev);
    let serial: f64 = rep.runs.iter().map(|r| r.exec_seconds).sum();
    // Makespan must be at least the pure kernel time and not much more
    // (transfers add a bounded overhead).
    assert!(rep.sim_seconds >= serial);
    assert!(
        rep.sim_seconds < serial * 1.5,
        "{} vs {}",
        rep.sim_seconds,
        serial
    );
}

#[test]
fn total_device_cells_are_conserved() {
    let js = jobs(20, 500);
    let cfg = StreamConfig::default();
    let rep = simulate_batch(&js, &SC, &cfg, &DeviceSpec::V100);
    let expect: u64 = js
        .iter()
        .map(|j| (j.target.len() * j.query.len()) as u64)
        .sum();
    assert_eq!(rep.device_cells, expect);
    assert!(rep.fallbacks.is_empty());
}

#[test]
fn heterogeneous_jobs_schedule_without_loss() {
    // Mixed lengths: every job's result must still be present and correct.
    let mut js = jobs(6, 300);
    js.extend(jobs(6, 1_500));
    let cfg = StreamConfig {
        streams: 4,
        ..Default::default()
    };
    let rep = simulate_batch(&js, &SC, &cfg, &DeviceSpec::V100);
    assert_eq!(rep.runs.len(), 12);
    for (run, job) in rep.runs.iter().zip(&js) {
        let gold = mmm_align::best_engine().align(
            &job.target,
            &job.query,
            &SC,
            mmm_align::AlignMode::Global,
            false,
        );
        assert_eq!(run.result.score, gold.score);
    }
}

#[test]
fn kernel_kind_does_not_change_results_only_time() {
    let js = jobs(8, 700);
    let dev = DeviceSpec::V100;
    let a = simulate_batch(
        &js,
        &SC,
        &StreamConfig {
            kind: GpuKernelKind::Mm2,
            ..Default::default()
        },
        &dev,
    );
    let b = simulate_batch(
        &js,
        &SC,
        &StreamConfig {
            kind: GpuKernelKind::Manymap,
            ..Default::default()
        },
        &dev,
    );
    for (x, y) in a.runs.iter().zip(&b.runs) {
        assert_eq!(x.result, y.result);
    }
    assert!(a.sim_seconds > b.sim_seconds);
}
