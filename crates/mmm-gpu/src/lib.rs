//! `mmm-gpu` — a functional simulator of manymap's GPU backend.
//!
//! The paper evaluates manymap on a Tesla V100 (Figures 4, 7, 8; §4.5). We
//! do not have that hardware; this crate substitutes a simulator that is
//! *functional* — every kernel computes real alignment scores and paths,
//! bit-identical to the CPU kernels — while its *timing* comes from an
//! explicit model of the SIMT execution structure:
//!
//! * one sequence pair per kernel, one thread block of ≤512 threads
//!   (§4.5.1), each diagonal processed in `⌈width/threads⌉` lock-step
//!   chunks;
//! * the minimap2-layout kernel pays the `tid == 0` branch divergence and a
//!   `__syncthreads` barrier per chunk (Figure 4a); the manymap-layout
//!   kernel is branch-free (Figure 4b);
//! * DP state lives in shared memory when it fits (96 KiB/block on Volta),
//!   otherwise in global memory at higher access cost (§4.5.2);
//! * concurrent kernel execution over CUDA streams with the Volta limits:
//!   80 SMs, 128 resident grids, 16 GB device memory (§4.5.1, Figure 7);
//! * a per-stream memory pool removes the per-launch allocation latency
//!   (§4.5.2), and oversized problems fall back to the CPU.

pub mod device;
pub mod error;
pub mod kernel;
pub mod mempool;
pub mod runner;
pub mod simt;
pub mod stream;

pub use device::DeviceSpec;
pub use error::GpuError;
pub use kernel::{run_kernel, try_run_kernel, GpuKernelKind, KernelRun};
pub use mempool::MemoryPool;
pub use runner::{GpuAligner, GpuBatchStats};
pub use simt::{execute_block, SimtTrace};
pub use stream::{simulate_batch, try_execute_jobs, BatchReport, KernelJob, StreamConfig};
