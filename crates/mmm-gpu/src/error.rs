//! Typed errors for the simulated device, consistent with the pipeline's
//! error chain: callers get a `GpuError` they can degrade on instead of a
//! panic or a silently dropped job.

use std::fmt;

/// Why a batch (or a single kernel) could not run on the simulated device.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GpuError {
    /// The launch configuration's block size is outside the device's
    /// supported range (a warp to 1024 threads).
    BlockSize { threads: usize },
    /// A stream configuration with zero streams cannot schedule anything.
    NoStreams,
    /// The scoring parameters overflow the 8-bit device arithmetic the
    /// kernels are modeled on (same contract as the CPU SIMD tiers).
    ScoringOverflow,
}

impl fmt::Display for GpuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GpuError::BlockSize { threads } => write!(
                f,
                "block size {threads} out of range (the device supports 32..=1024 threads/block)"
            ),
            GpuError::NoStreams => write!(f, "stream configuration has zero streams"),
            GpuError::ScoringOverflow => {
                write!(f, "scoring parameters overflow 8-bit device arithmetic")
            }
        }
    }
}

impl std::error::Error for GpuError {}
