//! The simulated GPU alignment kernels.
//!
//! Functional results are produced by the same difference-recurrence
//! semantics as the CPU kernels (delegating to `mmm_align::scalar`, whose
//! lock-step-per-diagonal structure *is* the SIMT execution order — the
//! crate's property tests guarantee bit-identical output across all
//! layouts). Timing is accumulated per diagonal from the SIMT structure:
//! chunks of `threads` lanes, per-lane issue-slot counts, shared vs global
//! memory costs, and — for the minimap2 layout — the per-chunk divergent
//! branch and `__syncthreads` barrier of Figure 4a.

use mmm_align::types::{AlignMode, AlignResult};
use mmm_align::{best_engine, best_mm2_engine, Scoring};

use crate::device::DeviceSpec;
use crate::error::GpuError;

/// Which DP layout the kernel implements.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GpuKernelKind {
    /// Equation (3): divergent `tid == 0` branch + barrier per chunk.
    Mm2,
    /// Equation (4): branch-free (Figure 4b).
    Manymap,
}

impl GpuKernelKind {
    /// Figure label used by the harnesses.
    pub fn label(self) -> &'static str {
        match self {
            GpuKernelKind::Mm2 => "minimap2/GPU",
            GpuKernelKind::Manymap => "manymap/GPU",
        }
    }
}

/// Outcome of one simulated kernel.
#[derive(Clone, Debug)]
pub struct KernelRun {
    pub result: AlignResult,
    /// Simulated SM cycles.
    pub cycles: u64,
    /// Device memory footprint (sequences + DP state + backtrack matrix).
    pub footprint: u64,
    /// Whether the DP state fit in shared memory.
    pub used_shared: bool,
    /// Kernel execution time (excludes transfers), seconds.
    pub exec_seconds: f64,
}

/// Issue slots per lane per cell, manymap layout (arithmetic + shared-mem
/// state accesses; calibrated so one block sustains ~0.4 GCUPS and 80
/// concurrent blocks land in the tens of GCUPS, the V100 class).
const SLOTS_MANYMAP: u64 = 120;
/// Issue slots per lane per cell for the ported minimap2 layout: the
/// shifted accesses, the `tid == 0` special case executed by *all* warps
/// (divergence), and extra index arithmetic. Together with the per-chunk
/// barrier this calibrates the manymap-vs-minimap2 GPU gap to Figure 8's
/// ≈3.2× at 4 kbp.
const SLOTS_MM2: u64 = 380;
/// `__syncthreads` barrier latency per chunk (mm2 kernel only), cycles.
const SYNC_CYCLES: u64 = 300;
/// Multiplier on state-access slots when the DP arrays spill to global
/// memory (§4.5.2: coalesced but uncached).
const GLOBAL_MEM_FACTOR: u64 = 3;
/// Extra per-cell slots for writing the backtrack matrix (always global).
const PATH_STORE_SLOTS: u64 = 60;

/// Device memory needed by one kernel.
pub fn kernel_footprint(tlen: usize, qlen: usize, with_path: bool) -> u64 {
    let seqs = (tlen + qlen) as u64;
    let state = (4 * tlen + 2 * qlen + 64) as u64;
    // Two bytes per cell with path: direction bits plus the packed z
    // values the backtracking pass re-reads (matches §4.5.2's "32 kbp pair
    // needs 2 GB" example).
    let dir = if with_path {
        2 * tlen as u64 * qlen as u64
    } else {
        0
    };
    seqs + state + dir + 4096
}

/// DP-state bytes that compete for shared memory.
fn state_bytes(tlen: usize, qlen: usize) -> usize {
    4 * tlen + 2 * qlen + 64
}

/// Execute one alignment kernel on the simulated device.
///
/// ```
/// use mmm_align::{AlignMode, Scoring};
/// use mmm_gpu::{run_kernel, DeviceSpec, GpuKernelKind};
/// let t = mmm_seq::to_nt4(b"ACGTACGTACGT");
/// let run = run_kernel(&t, &t, &Scoring::MAP_ONT, GpuKernelKind::Manymap,
///                      AlignMode::Global, false, 512, &DeviceSpec::V100);
/// assert_eq!(run.result.score, 24);
/// assert!(run.used_shared && run.cycles > 0);
/// ```
#[allow(clippy::too_many_arguments)]
pub fn run_kernel(
    target: &[u8],
    query: &[u8],
    sc: &Scoring,
    kind: GpuKernelKind,
    mode: AlignMode,
    with_path: bool,
    threads: usize,
    dev: &DeviceSpec,
) -> KernelRun {
    match try_run_kernel(target, query, sc, kind, mode, with_path, threads, dev) {
        Ok(run) => run,
        Err(e) => panic!("run_kernel: {e}"),
    }
}

/// Fallible variant of [`run_kernel`]: an invalid launch configuration or
/// overflowing scoring comes back as a [`GpuError`] instead of a panic, so
/// batch drivers can degrade through the pipeline's error chain.
#[allow(clippy::too_many_arguments)]
pub fn try_run_kernel(
    target: &[u8],
    query: &[u8],
    sc: &Scoring,
    kind: GpuKernelKind,
    mode: AlignMode,
    with_path: bool,
    threads: usize,
    dev: &DeviceSpec,
) -> Result<KernelRun, GpuError> {
    if !(32..=1024).contains(&threads) {
        return Err(GpuError::BlockSize { threads });
    }
    if !sc.fits_i8() {
        return Err(GpuError::ScoringOverflow);
    }
    let (tlen, qlen) = (target.len(), query.len());

    // Functional pass — lock-step diagonal semantics. All kernel variants
    // are bit-identical (property-tested in mmm-align), so the simulator
    // may use the fastest host kernel of the matching layout for the
    // values.
    let result = match kind {
        GpuKernelKind::Mm2 => best_mm2_engine().align(target, query, sc, mode, with_path),
        GpuKernelKind::Manymap => best_engine().align(target, query, sc, mode, with_path),
    };

    let used_shared = state_bytes(tlen, qlen) <= dev.shared_mem_per_block;
    let mem_factor = if used_shared { 1 } else { GLOBAL_MEM_FACTOR };
    let base_slots = match kind {
        GpuKernelKind::Mm2 => SLOTS_MM2,
        GpuKernelKind::Manymap => SLOTS_MANYMAP,
    } * mem_factor
        + if with_path { PATH_STORE_SLOTS } else { 0 };

    // Timing pass over the anti-diagonals.
    let mut cycles: u64 = 0;
    if tlen > 0 && qlen > 0 {
        let lanes = dev.lanes_per_sm as u64;
        for r in 0..tlen + qlen - 1 {
            let st = r.saturating_sub(qlen - 1);
            let en = r.min(tlen - 1);
            let width = (en - st + 1) as u64;
            let chunks = width.div_ceil(threads as u64);
            // Each chunk retires `threads` cells; the SM issues `lanes`
            // lanes per cycle, so a chunk costs `slots × ⌈threads/lanes⌉`
            // cycles plus fixed loop/addressing overhead.
            let issue = (threads as u64).div_ceil(lanes);
            cycles += chunks * (base_slots * issue + 40);
            if kind == GpuKernelKind::Mm2 {
                cycles += chunks * SYNC_CYCLES;
            }
            cycles += 12; // diagonal loop overhead
        }
    }
    let exec_seconds = cycles as f64 / (dev.clock_ghz * 1e9);

    Ok(KernelRun {
        result,
        cycles,
        footprint: kernel_footprint(tlen, qlen, with_path),
        used_shared,
        exec_seconds,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmm_align::AlignMode;

    const SC: Scoring = Scoring::MAP_ONT;

    fn pair(n: usize) -> (Vec<u8>, Vec<u8>) {
        let t: Vec<u8> = (0..n).map(|i| ((i * 7 + 1) % 4) as u8).collect();
        let q: Vec<u8> = (0..n).map(|i| ((i * 5 + 2) % 4) as u8).collect();
        (t, q)
    }

    #[test]
    fn results_match_cpu_kernels() {
        let (t, q) = pair(600);
        for kind in [GpuKernelKind::Mm2, GpuKernelKind::Manymap] {
            let g = run_kernel(
                &t,
                &q,
                &SC,
                kind,
                AlignMode::Global,
                true,
                512,
                &DeviceSpec::V100,
            );
            let c = mmm_align::scalar::align_manymap(&t, &q, &SC, AlignMode::Global, true);
            assert_eq!(g.result, c, "{kind:?}");
        }
    }

    #[test]
    fn manymap_kernel_is_faster_than_mm2_port() {
        // Figure 8a: up to ~3.2× at 4 kbp.
        let (t, q) = pair(4000);
        let a = run_kernel(
            &t,
            &q,
            &SC,
            GpuKernelKind::Mm2,
            AlignMode::Global,
            false,
            512,
            &DeviceSpec::V100,
        );
        let b = run_kernel(
            &t,
            &q,
            &SC,
            GpuKernelKind::Manymap,
            AlignMode::Global,
            false,
            512,
            &DeviceSpec::V100,
        );
        let speedup = a.cycles as f64 / b.cycles as f64;
        assert!(speedup > 2.0 && speedup < 4.5, "speedup={speedup}");
    }

    #[test]
    fn long_sequences_spill_to_global_memory() {
        // §5.2.4: past ~16 kbp the score arrays exceed 96 KiB shared.
        let (t8, q8) = pair(8_000);
        let (t32, q32) = pair(32_000);
        let short = run_kernel(
            &t8,
            &q8,
            &SC,
            GpuKernelKind::Manymap,
            AlignMode::Global,
            false,
            512,
            &DeviceSpec::V100,
        );
        let long = run_kernel(
            &t32,
            &q32,
            &SC,
            GpuKernelKind::Manymap,
            AlignMode::Global,
            false,
            512,
            &DeviceSpec::V100,
        );
        assert!(short.used_shared);
        assert!(!long.used_shared);
        // Per-cell cost jumps when spilled.
        let cpc_short = short.cycles as f64 / (8e3 * 8e3);
        let cpc_long = long.cycles as f64 / (32e3 * 32e3);
        assert!(cpc_long > 2.0 * cpc_short, "{cpc_long} vs {cpc_short}");
    }

    #[test]
    fn with_path_footprint_matches_paper_example() {
        // §4.5.2: "two sequences of 32 thousands bp each, then 2 GB memory
        // is required to calculate the alignment path".
        let f = kernel_footprint(32_000, 32_000, true);
        assert!(
            f > 900 << 20 && f < (2u64 << 30) + (1 << 20),
            "footprint={f}"
        );
        // Score-only stays linear.
        assert!(kernel_footprint(32_000, 32_000, false) < 1 << 20);
    }

    #[test]
    fn more_threads_reduce_cycles() {
        let (t, q) = pair(4000);
        let t128 = run_kernel(
            &t,
            &q,
            &SC,
            GpuKernelKind::Manymap,
            AlignMode::Global,
            false,
            128,
            &DeviceSpec::V100,
        );
        let t512 = run_kernel(
            &t,
            &q,
            &SC,
            GpuKernelKind::Manymap,
            AlignMode::Global,
            false,
            512,
            &DeviceSpec::V100,
        );
        assert!(t512.cycles < t128.cycles);
    }
}
