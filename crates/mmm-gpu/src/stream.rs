//! Concurrent kernel execution over CUDA streams (§4.5.1, Figure 7).
//!
//! Kernels within one stream serialize; kernels of different streams run
//! concurrently up to three limits: the number of streams, the device's
//! resident-grid limit (128 on Volta), the SM count (one block per SM slot)
//! and free device memory. The event loop advances simulated time over
//! kernel completions, which reproduces Figure 7's linear-then-saturating
//! stream scaling and Figure 8b's concurrency collapse for long with-path
//! problems.

use mmm_align::types::AlignMode;
use mmm_align::Scoring;

use crate::device::DeviceSpec;
use crate::error::GpuError;
use crate::kernel::{try_run_kernel, GpuKernelKind, KernelRun};
use crate::mempool::MemoryPool;

/// One alignment job.
#[derive(Clone, Debug)]
pub struct KernelJob {
    pub target: Vec<u8>,
    pub query: Vec<u8>,
    pub with_path: bool,
}

/// Stream/launch configuration.
#[derive(Clone, Copy, Debug)]
pub struct StreamConfig {
    pub streams: usize,
    pub threads_per_block: usize,
    pub kind: GpuKernelKind,
    /// Use the per-stream memory pool (§4.5.2); without it every launch
    /// pays the allocation latency.
    pub use_pool: bool,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            streams: 128,
            threads_per_block: 512,
            kind: GpuKernelKind::Manymap,
            use_pool: true,
        }
    }
}

/// Batch outcome.
#[derive(Debug)]
pub struct BatchReport {
    pub runs: Vec<KernelRun>,
    /// Simulated wall time for the whole batch.
    pub sim_seconds: f64,
    /// Highest number of concurrently executing kernels observed.
    pub max_concurrency: usize,
    /// Jobs that exceeded device memory and must fall back to the CPU.
    pub fallbacks: Vec<usize>,
    /// Total DP cells of the jobs executed on the device.
    pub device_cells: u64,
    /// Bytes served from the per-stream memory pool this batch.
    pub bytes_pooled: u64,
    /// Pool allocations served this batch (each one a `cudaMalloc` avoided).
    pub pool_allocs: u64,
    /// Requests too large for a slab this batch (paid direct-alloc latency).
    pub pool_rejections: u64,
    /// Pool high-water mark over its lifetime (persists across batches when
    /// the caller reuses a pool).
    pub pool_peak_used: u64,
}

impl BatchReport {
    /// Aggregate device GCUPS over the batch.
    pub fn gcups(&self) -> f64 {
        if self.sim_seconds <= 0.0 {
            return 0.0;
        }
        self.device_cells as f64 / self.sim_seconds / 1e9
    }
}

/// Functional pass only: execute every job's kernel once. The result can
/// be scheduled repeatedly under different stream configurations (the
/// Figure 7 sweep) without recomputing alignments. Fails with a typed
/// error on an invalid launch configuration instead of panicking.
pub fn try_execute_jobs(
    jobs: &[KernelJob],
    sc: &Scoring,
    kind: GpuKernelKind,
    threads_per_block: usize,
    dev: &DeviceSpec,
) -> Result<Vec<KernelRun>, GpuError> {
    jobs.iter()
        .map(|j| {
            try_run_kernel(
                &j.target,
                &j.query,
                sc,
                kind,
                AlignMode::Global,
                j.with_path,
                threads_per_block,
                dev,
            )
        })
        .collect()
}

/// Panicking convenience wrapper over [`try_execute_jobs`] for harnesses
/// whose configurations are static and known-valid.
pub fn execute_jobs(
    jobs: &[KernelJob],
    sc: &Scoring,
    kind: GpuKernelKind,
    threads_per_block: usize,
    dev: &DeviceSpec,
) -> Vec<KernelRun> {
    match try_execute_jobs(jobs, sc, kind, threads_per_block, dev) {
        Ok(runs) => runs,
        Err(e) => panic!("execute_jobs: {e}"),
    }
}

/// Schedule pre-executed kernels over the streams and device limits, using
/// a caller-owned memory pool (so a resident aligner can reuse one pool
/// across batches, §4.5.2). Every slab is returned to the pool before this
/// function returns — lifetime counters (`allocs_served`, `peak_used`)
/// keep accumulating across batches.
pub fn schedule_runs_with_pool(
    jobs: &[KernelJob],
    runs: Vec<KernelRun>,
    cfg: &StreamConfig,
    dev: &DeviceSpec,
    pool: &mut MemoryPool,
) -> BatchReport {
    let nstreams = cfg.streams.max(1);
    let allocs0 = pool.allocs_served;
    let rejections0 = pool.rejections;
    let bytes0 = pool.bytes_served;
    let mut fallbacks = Vec::new();
    let mut durations = Vec::with_capacity(jobs.len());
    let mut device_cells = 0u64;
    for (i, (j, run)) in jobs.iter().zip(&runs).enumerate() {
        // Transfers: sequences down, result (and path matrix) up, over
        // pinned host memory.
        let bytes = (j.target.len() + j.query.len()) as f64;
        let transfer = bytes / (dev.pcie_gbps * 1e9) + 2.0 * dev.transfer_latency;
        if run.footprint > dev.global_mem {
            // Impossible to place on the device: CPU fallback (§4.5.2).
            fallbacks.push(i);
            durations.push(None);
            continue;
        }
        // Device buffers: kernels within a stream serialize, so by the time
        // job `i` launches on stream `i % nstreams` the previous kernel on
        // that stream has retired and its slab is reusable. A request too
        // large for the slab falls through to a direct allocation and pays
        // the per-launch latency the pool exists to avoid.
        let alloc = if cfg.use_pool {
            let s = i % nstreams;
            pool.release_stream(s);
            match pool.acquire(s, run.footprint) {
                Some(_) => 0.0,
                None => dev.alloc_latency,
            }
        } else {
            dev.alloc_latency
        };
        device_cells += run.result.cells;
        durations.push(Some(run.exec_seconds + transfer + alloc));
    }
    // Nothing may stay resident after the batch, whatever path got here.
    pool.release_all();
    let runs: Vec<Option<KernelRun>> = runs.into_iter().map(Some).collect();

    // Event loop: assign jobs round-robin to streams, respect concurrency
    // limits (streams, resident grids, SMs) and device memory.
    let max_conc = cfg.streams.min(dev.max_resident_grids);
    let mut stream_free = vec![0.0f64; cfg.streams.max(1)];
    let mut running: Vec<(f64, u64)> = Vec::new(); // (end_time, footprint)
    let mut mem_used = 0u64;
    let mut clock = 0.0f64;
    let mut max_seen = 0usize;
    let mut makespan = 0.0f64;

    for (i, d) in durations.iter().enumerate() {
        let Some(dur) = d else { continue };
        let s = i % cfg.streams.max(1);
        // A recorded duration implies a recorded run; skip defensively if not.
        let Some(run) = runs[i].as_ref() else {
            continue;
        };
        let fp = run.footprint;
        // Earliest start: stream free, and capacity available.
        let mut start = stream_free[s].max(clock);
        loop {
            running.retain(|&(end, f)| {
                if end <= start {
                    mem_used -= f;
                    false
                } else {
                    true
                }
            });
            // One block occupies one SM; grids past the SM count stay
            // resident but wait for an execution slot.
            let sm_ok = running.len() < max_conc.min(dev.sms);
            let mem_ok = mem_used + fp <= dev.global_mem;
            if sm_ok && mem_ok {
                break;
            }
            // Wait for the next completion.
            let next = running
                .iter()
                .map(|&(e, _)| e)
                .fold(f64::INFINITY, f64::min);
            start = start.max(next);
        }
        let end = start + dur;
        running.push((end, fp));
        mem_used += fp;
        stream_free[s] = end;
        clock = start;
        max_seen = max_seen.max(running.len());
        makespan = makespan.max(end);
    }

    BatchReport {
        runs: runs.into_iter().flatten().collect(),
        sim_seconds: makespan,
        max_concurrency: max_seen,
        fallbacks,
        device_cells,
        bytes_pooled: pool.bytes_served - bytes0,
        pool_allocs: pool.allocs_served - allocs0,
        pool_rejections: pool.rejections - rejections0,
        pool_peak_used: pool.peak_used(),
    }
}

/// Schedule pre-executed kernels with a fresh single-batch pool.
pub fn schedule_runs(
    jobs: &[KernelJob],
    runs: Vec<KernelRun>,
    cfg: &StreamConfig,
    dev: &DeviceSpec,
) -> BatchReport {
    let mut pool = MemoryPool::new(dev.global_mem, cfg.streams.max(1));
    schedule_runs_with_pool(jobs, runs, cfg, dev, &mut pool)
}

/// Execute a batch of jobs over the simulated device (functional pass +
/// scheduling in one call).
pub fn simulate_batch(
    jobs: &[KernelJob],
    sc: &Scoring,
    cfg: &StreamConfig,
    dev: &DeviceSpec,
) -> BatchReport {
    let runs = execute_jobs(jobs, sc, cfg.kind, cfg.threads_per_block, dev);
    schedule_runs(jobs, runs, cfg, dev)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SC: Scoring = Scoring::MAP_ONT;

    fn jobs(n: usize, len: usize, with_path: bool) -> Vec<KernelJob> {
        (0..n)
            .map(|k| KernelJob {
                target: (0..len).map(|i| ((i * 7 + k) % 4) as u8).collect(),
                query: (0..len).map(|i| ((i * 5 + k) % 4) as u8).collect(),
                with_path,
            })
            .collect()
    }

    fn run_streams(streams: usize, n_jobs: usize, len: usize, with_path: bool) -> BatchReport {
        let cfg = StreamConfig {
            streams,
            ..Default::default()
        };
        simulate_batch(&jobs(n_jobs, len, with_path), &SC, &cfg, &DeviceSpec::V100)
    }

    #[test]
    fn stream_scaling_is_linear_to_64() {
        // Figure 7: linear speedup from 1 to 64 streams.
        let t1 = run_streams(1, 64, 1000, false).sim_seconds;
        let t16 = run_streams(16, 64, 1000, false).sim_seconds;
        let t64 = run_streams(64, 64, 1000, false).sim_seconds;
        assert!(t1 / t16 > 12.0, "16-stream speedup {}", t1 / t16);
        assert!(t1 / t64 > 40.0, "64-stream speedup {}", t1 / t64);
    }

    #[test]
    fn stream_scaling_saturates_at_128() {
        // Figure 7: "With 128 streams ... the performance slightly
        // increases" — well short of 2× over 64.
        let t64 = run_streams(64, 256, 1000, false).sim_seconds;
        let t128 = run_streams(128, 256, 1000, false).sim_seconds;
        let gain = t64 / t128;
        assert!((1.0..1.6).contains(&gain), "gain={gain}");
    }

    #[test]
    fn long_with_path_jobs_lose_concurrency() {
        // Figure 8b's memory-capacity collapse, scaled down: a device with
        // 64 MB can hold only a few 2 kbp with-path kernels (8 MB each),
        // while 300 bp kernels (0.18 MB) run at full concurrency.
        let dev = DeviceSpec {
            global_mem: 64 << 20,
            ..DeviceSpec::V100
        };
        let cfg = StreamConfig::default();
        let rep = simulate_batch(&jobs(32, 2_000, true), &SC, &cfg, &dev);
        assert!(
            rep.max_concurrency <= 8,
            "concurrency={}",
            rep.max_concurrency
        );
        let short = simulate_batch(&jobs(32, 300, true), &SC, &cfg, &dev);
        assert!(
            short.max_concurrency > 8,
            "concurrency={}",
            short.max_concurrency
        );
    }

    #[test]
    fn oversized_jobs_fall_back_to_cpu() {
        // A job whose with-path footprint exceeds device memory must be
        // flagged for CPU fallback (scaled: 6 kbp pair on a 64 MB device).
        let dev = DeviceSpec {
            global_mem: 64 << 20,
            ..DeviceSpec::V100
        };
        let j = jobs(1, 6_000, true); // 72 MB footprint
        let cfg = StreamConfig::default();
        let rep = simulate_batch(&j, &SC, &cfg, &dev);
        assert_eq!(rep.fallbacks, vec![0]);
        // The functional result still exists (computed for the CPU path).
        assert_eq!(rep.runs.len(), 1);
    }

    #[test]
    fn results_are_functional() {
        let rep = run_streams(8, 8, 500, true);
        for (r, j) in rep.runs.iter().zip(jobs(8, 500, true)) {
            let gold =
                mmm_align::scalar::align_manymap(&j.target, &j.query, &SC, AlignMode::Global, true);
            assert_eq!(r.result, gold);
        }
    }

    #[test]
    fn memory_pool_saves_alloc_latency() {
        let with_pool = StreamConfig {
            streams: 4,
            use_pool: true,
            ..Default::default()
        };
        let no_pool = StreamConfig {
            streams: 4,
            use_pool: false,
            ..Default::default()
        };
        let a = simulate_batch(&jobs(64, 300, false), &SC, &with_pool, &DeviceSpec::V100);
        let b = simulate_batch(&jobs(64, 300, false), &SC, &no_pool, &DeviceSpec::V100);
        assert!(a.sim_seconds < b.sim_seconds);
    }

    #[test]
    fn pool_accounting_reported_per_batch() {
        let cfg = StreamConfig {
            streams: 4,
            ..Default::default()
        };
        let js = jobs(16, 400, false);
        let rep = simulate_batch(&js, &SC, &cfg, &DeviceSpec::V100);
        // Every on-device job was served from the pool, none rejected.
        assert_eq!(rep.pool_allocs, 16);
        assert_eq!(rep.pool_rejections, 0);
        assert!(rep.bytes_pooled > 0);
        assert!(rep.pool_peak_used > 0);
    }

    #[test]
    fn slab_overflow_pays_direct_alloc_not_fallback() {
        // Footprint fits the device but not a single slab: the job still
        // runs on-device via the direct-allocation path (no CPU fallback),
        // and the rejection is counted.
        let dev = DeviceSpec {
            global_mem: 64 << 20,
            ..DeviceSpec::V100
        };
        let cfg = StreamConfig {
            streams: 8, // slab = 8 MB
            ..Default::default()
        };
        let js = jobs(2, 2_200, true); // ~9.7 MB with-path footprint
        let rep = simulate_batch(&js, &SC, &cfg, &dev);
        assert!(rep.fallbacks.is_empty());
        assert_eq!(rep.pool_rejections, 2);
        assert_eq!(rep.pool_allocs, 0);
    }

    #[test]
    fn reused_pool_reaches_steady_state() {
        // A resident pool serves identical batches without growing: the
        // high-water mark is set by the first batch and never moves.
        let cfg = StreamConfig {
            streams: 4,
            ..Default::default()
        };
        let dev = DeviceSpec::V100;
        let js = jobs(16, 400, false);
        let runs = || execute_jobs(&js, &SC, cfg.kind, cfg.threads_per_block, &dev);
        let mut pool = MemoryPool::new(dev.global_mem, cfg.streams);
        let first = schedule_runs_with_pool(&js, runs(), &cfg, &dev, &mut pool);
        let peak_after_warmup = pool.peak_used();
        for _ in 0..3 {
            let rep = schedule_runs_with_pool(&js, runs(), &cfg, &dev, &mut pool);
            assert_eq!(rep.bytes_pooled, first.bytes_pooled);
        }
        assert_eq!(pool.peak_used(), peak_after_warmup);
        assert_eq!(pool.used(), 0, "slabs must all be returned between batches");
    }

    #[test]
    fn invalid_block_size_is_a_typed_error() {
        let js = jobs(1, 100, false);
        let err = try_execute_jobs(&js, &SC, GpuKernelKind::Manymap, 7, &DeviceSpec::V100);
        assert_eq!(err.unwrap_err(), GpuError::BlockSize { threads: 7 });
    }

    #[test]
    fn gcups_metric_sane() {
        let rep = run_streams(128, 128, 4_000, false);
        let g = rep.gcups();
        // V100-class aggregate throughput: tens of GCUPS.
        assert!(g > 5.0 && g < 500.0, "gcups={g}");
    }
}
