//! A lane-level lock-step SIMT engine executing the two GPU kernels of
//! Figure 4.
//!
//! [`crate::kernel::run_kernel`] prices kernels analytically; this module
//! *executes* them the way a thread block would — diagonals processed in
//! chunks of `threads` lanes, every lane computing one DP cell per step —
//! and records an execution trace (instruction issues, divergent branches,
//! barriers, memory accesses). Two purposes:
//!
//! * demonstrating the semantic difference between the kernels: the
//!   minimap2-layout kernel needs a read phase, a carry hand-off by lane 0
//!   and a barrier before the write phase (Figure 4a), while the
//!   manymap-layout kernel is a single dependency-free phase (Figure 4b);
//! * validating the analytic model: the trace's issue counts must scale
//!   with the model's cycle counts (tested below).

use mmm_align::diff::{cell_update, Tracker};
use mmm_align::types::AlignMode;
use mmm_align::Scoring;

use crate::kernel::GpuKernelKind;

/// Execution trace of one block.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SimtTrace {
    /// Lock-step chunk issues (each retires ≤ `threads` cells).
    pub chunks: u64,
    /// `__syncthreads` barriers executed.
    pub barriers: u64,
    /// Chunks in which a divergent branch forced both sides to issue.
    pub divergent_chunks: u64,
    /// State-array loads (lane-steps).
    pub loads: u64,
    /// State-array stores (lane-steps).
    pub stores: u64,
}

/// Execute one kernel over a block of `threads` lanes; returns the global
/// alignment score and the trace.
pub fn execute_block(
    target: &[u8],
    query: &[u8],
    sc: &Scoring,
    kind: GpuKernelKind,
    threads: usize,
) -> (i32, SimtTrace) {
    assert!(
        !target.is_empty() && !query.is_empty(),
        "block needs non-empty sequences"
    );
    assert!(sc.fits_i8());
    let (tlen, qlen) = (target.len(), query.len());
    let (q, e) = (sc.q, sc.e);
    let qe = q + e;
    let mut trace = SimtTrace::default();
    let mut tracker = Tracker::new(tlen, qlen);

    match kind {
        GpuKernelKind::Manymap => {
            // Figure 4b: one in-place phase, no barrier, no carry.
            let mut u = vec![-e as i8; tlen];
            let mut y = vec![-qe as i8; tlen];
            u[0] = -qe as i8;
            let mut v = vec![-e as i8; qlen + 1];
            let mut x = vec![-qe as i8; qlen + 1];
            v[qlen] = -qe as i8;

            for r in 0..tlen + qlen - 1 {
                let st = r.saturating_sub(qlen - 1);
                let en = r.min(tlen - 1);
                let off = st + qlen - r;
                let mut t = st;
                while t <= en {
                    let lanes = threads.min(en - t + 1);
                    trace.chunks += 1;
                    trace.loads += 6 * lanes as u64; // tv, qv, x, v, u, y
                    trace.stores += 4 * lanes as u64;
                    for lane in 0..lanes {
                        let tt = t + lane;
                        let tp = tt - st + off;
                        let s = sc.subst(target[tt], query[r - tt]);
                        let (un, vn, xn, yn, _) = cell_update(
                            s,
                            x[tp] as i32,
                            v[tp] as i32,
                            y[tt] as i32,
                            u[tt] as i32,
                            q,
                            qe,
                        );
                        u[tt] = un;
                        v[tp] = vn;
                        x[tp] = xn;
                        y[tt] = yn;
                    }
                    t += lanes;
                }
                let v_st0 = v[qlen - r.min(qlen)] as i32;
                let v_en = v[en + qlen - r] as i32;
                tracker.diag(r, st, en, u[st] as i32, u[en] as i32, v_st0, v_en, qe);
            }
        }
        GpuKernelKind::Mm2 => {
            // Figure 4a: read phase (lane 0 takes the carry and saves the
            // next one), barrier, write phase — per chunk.
            let mut u = vec![-e as i8; tlen];
            let mut v = vec![0i8; tlen];
            let mut x = vec![0i8; tlen];
            let mut y = vec![-qe as i8; tlen];
            u[0] = -qe as i8;

            for r in 0..tlen + qlen - 1 {
                let st = r.saturating_sub(qlen - 1);
                let en = r.min(tlen - 1);
                let (mut xcarry, mut vcarry) = if st == 0 {
                    (-qe, if r == 0 { -qe } else { -e })
                } else {
                    (x[st - 1] as i32, v[st - 1] as i32)
                };
                let mut t = st;
                while t <= en {
                    let lanes = threads.min(en - t + 1);
                    trace.chunks += 1;
                    trace.divergent_chunks += 1; // the tid==0 branch
                    trace.barriers += 1; // __syncthreads between read & write
                    trace.loads += 6 * lanes as u64;
                    trace.stores += 4 * lanes as u64;

                    // Read phase: every lane latches its operands; lane 0
                    // uses the carry; the carry for the NEXT chunk is the
                    // old value at this chunk's last cell.
                    let mut regs = Vec::with_capacity(lanes);
                    for lane in 0..lanes {
                        let tt = t + lane;
                        let (xin, vin) = if lane == 0 {
                            (xcarry, vcarry)
                        } else {
                            (x[tt - 1] as i32, v[tt - 1] as i32)
                        };
                        regs.push((xin, vin, y[tt] as i32, u[tt] as i32));
                    }
                    let next_carry = (x[t + lanes - 1] as i32, v[t + lanes - 1] as i32);

                    // ---- barrier ----

                    // Write phase.
                    for (lane, &(xin, vin, yin, uin)) in regs.iter().enumerate() {
                        let tt = t + lane;
                        let s = sc.subst(target[tt], query[r - tt]);
                        let (un, vn, xn, yn, _) = cell_update(s, xin, vin, yin, uin, q, qe);
                        u[tt] = un;
                        v[tt] = vn;
                        x[tt] = xn;
                        y[tt] = yn;
                    }
                    xcarry = next_carry.0;
                    vcarry = next_carry.1;
                    t += lanes;
                }
                tracker.diag(
                    r,
                    st,
                    en,
                    u[st] as i32,
                    u[en] as i32,
                    v[0] as i32,
                    v[en] as i32,
                    qe,
                );
            }
        }
    }

    let (score, _, _) = tracker.finalize(AlignMode::Global);
    (score, trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceSpec;
    use crate::kernel::run_kernel;
    use mmm_align::scalar;

    const SC: Scoring = Scoring::MAP_ONT;

    fn pair(n: usize, seed: u64) -> (Vec<u8>, Vec<u8>) {
        let mut s = seed | 1;
        let mut rnd = move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            (s >> 33) as usize
        };
        let t: Vec<u8> = (0..n).map(|_| (rnd() % 4) as u8).collect();
        let mut q = t.clone();
        for _ in 0..n / 9 {
            let p = rnd() % q.len();
            q[p] = (rnd() % 4) as u8;
        }
        (t, q)
    }

    #[test]
    fn both_kernels_compute_the_scalar_score() {
        for len in [63usize, 250, 700] {
            let (t, q) = pair(len, len as u64);
            let gold = scalar::align_manymap(&t, &q, &SC, AlignMode::Global, false).score;
            for kind in [GpuKernelKind::Mm2, GpuKernelKind::Manymap] {
                for threads in [32, 128, 512] {
                    let (score, _) = execute_block(&t, &q, &SC, kind, threads);
                    assert_eq!(score, gold, "{kind:?} len={len} threads={threads}");
                }
            }
        }
    }

    #[test]
    fn mm2_kernel_pays_barriers_and_divergence_manymap_does_not() {
        let (t, q) = pair(600, 7);
        let (_, mm2) = execute_block(&t, &q, &SC, GpuKernelKind::Mm2, 128);
        let (_, many) = execute_block(&t, &q, &SC, GpuKernelKind::Manymap, 128);
        assert_eq!(many.barriers, 0);
        assert_eq!(many.divergent_chunks, 0);
        assert_eq!(mm2.barriers, mm2.chunks);
        assert_eq!(mm2.divergent_chunks, mm2.chunks);
        assert_eq!(mm2.chunks, many.chunks); // same work decomposition
    }

    #[test]
    fn chunk_count_matches_the_analytic_model() {
        // The trace's chunk count is exactly what run_kernel charges per
        // diagonal: Σ ⌈width/threads⌉.
        let (t, q) = pair(900, 3);
        let (_, trace) = execute_block(&t, &q, &SC, GpuKernelKind::Manymap, 256);
        let mut expect = 0u64;
        let (tlen, qlen) = (t.len(), q.len());
        for r in 0..tlen + qlen - 1 {
            let st = r.saturating_sub(qlen - 1);
            let en = r.min(tlen - 1);
            expect += ((en - st + 1) as u64).div_ceil(256);
        }
        assert_eq!(trace.chunks, expect);
    }

    #[test]
    fn analytic_cycle_ratio_tracks_trace_ratio() {
        // The model's mm2/manymap cycle ratio must agree in *direction and
        // rough magnitude* with the trace-level extra work (barrier +
        // divergence per chunk).
        let (t, q) = pair(2_000, 5);
        let dev = DeviceSpec::V100;
        let a = run_kernel(
            &t,
            &q,
            &SC,
            GpuKernelKind::Mm2,
            AlignMode::Global,
            false,
            512,
            &dev,
        );
        let b = run_kernel(
            &t,
            &q,
            &SC,
            GpuKernelKind::Manymap,
            AlignMode::Global,
            false,
            512,
            &dev,
        );
        let model_ratio = a.cycles as f64 / b.cycles as f64;
        assert!(
            model_ratio > 1.5 && model_ratio < 5.0,
            "model ratio {model_ratio}"
        );
        let (_, tr_mm2) = execute_block(&t, &q, &SC, GpuKernelKind::Mm2, 512);
        assert!(tr_mm2.barriers > 0);
    }

    #[test]
    fn loads_and_stores_scale_with_cells() {
        let (t, q) = pair(300, 11);
        let (_, tr) = execute_block(&t, &q, &SC, GpuKernelKind::Manymap, 512);
        let cells = (t.len() * q.len()) as u64;
        assert_eq!(tr.loads, 6 * cells);
        assert_eq!(tr.stores, 4 * cells);
    }
}
