//! Per-stream device memory pool (§4.5.2).
//!
//! The host feeds small batches to the GPU at high frequency; allocating
//! device buffers per launch would serialize on `cudaMalloc`. The pool
//! carves the device memory into per-stream slabs that kernels reuse —
//! functionally an offset allocator, with statistics the ablation bench
//! uses to quantify the avoided allocation latency.

/// Offset-based slab allocator over the device memory.
#[derive(Debug)]
pub struct MemoryPool {
    capacity: u64,
    slab: u64,
    streams: usize,
    /// Bytes currently held per stream.
    in_use: Vec<u64>,
    /// Allocations served (each would otherwise be a cudaMalloc).
    pub allocs_served: u64,
    /// Requests too large for a slab (caller must fall back).
    pub rejections: u64,
    /// Total bytes ever served from the pool.
    pub bytes_served: u64,
    /// Highest total occupancy observed over the pool's lifetime.
    peak_used: u64,
}

impl MemoryPool {
    /// Split `capacity` bytes across `streams` equal slabs.
    pub fn new(capacity: u64, streams: usize) -> Self {
        assert!(streams > 0);
        MemoryPool {
            capacity,
            slab: capacity / streams as u64,
            streams,
            in_use: vec![0; streams],
            allocs_served: 0,
            rejections: 0,
            bytes_served: 0,
            peak_used: 0,
        }
    }

    /// Bytes each stream owns.
    pub fn slab_size(&self) -> u64 {
        self.slab
    }

    /// Acquire `bytes` in `stream`'s slab; returns the device offset.
    pub fn acquire(&mut self, stream: usize, bytes: u64) -> Option<u64> {
        let s = stream % self.streams;
        if self.in_use[s] + bytes > self.slab {
            self.rejections += 1;
            return None;
        }
        let off = s as u64 * self.slab + self.in_use[s];
        self.in_use[s] += bytes;
        self.allocs_served += 1;
        self.bytes_served += bytes;
        self.peak_used = self.peak_used.max(self.used());
        Some(off)
    }

    /// Release everything a stream holds (kernels in one stream serialize,
    /// so slab reuse is per-kernel).
    pub fn release_stream(&mut self, stream: usize) {
        self.in_use[stream % self.streams] = 0;
    }

    /// Return every slab to the device. Batch drivers call this on *every*
    /// exit path — normal completion and error returns alike — so a failed
    /// batch never strands slots.
    pub fn release_all(&mut self) {
        for s in &mut self.in_use {
            *s = 0;
        }
    }

    /// Total bytes currently held.
    pub fn used(&self) -> u64 {
        self.in_use.iter().sum()
    }

    /// Highest total occupancy observed over the pool's lifetime.
    pub fn peak_used(&self) -> u64 {
        self.peak_used
    }

    /// Device capacity backing the pool.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Number of per-stream slabs.
    pub fn streams(&self) -> usize {
        self.streams
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slabs_partition_capacity() {
        let p = MemoryPool::new(16 << 30, 128);
        assert_eq!(p.slab_size(), (16u64 << 30) / 128);
    }

    #[test]
    fn acquire_release_cycle() {
        let mut p = MemoryPool::new(1024, 4);
        let a = p.acquire(0, 100).unwrap();
        let b = p.acquire(0, 100).unwrap();
        assert_eq!(a, 0);
        assert_eq!(b, 100);
        assert_eq!(p.used(), 200);
        p.release_stream(0);
        assert_eq!(p.used(), 0);
        assert_eq!(p.acquire(0, 100).unwrap(), 0);
        assert_eq!(p.allocs_served, 3);
    }

    #[test]
    fn streams_have_disjoint_offsets() {
        let mut p = MemoryPool::new(1000, 2);
        let a = p.acquire(0, 10).unwrap();
        let b = p.acquire(1, 10).unwrap();
        assert_ne!(a / 500, b / 500);
    }

    #[test]
    fn oversize_requests_rejected() {
        let mut p = MemoryPool::new(1000, 2);
        assert!(p.acquire(0, 501).is_none());
        assert_eq!(p.rejections, 1);
    }

    #[test]
    fn release_all_empties_every_slab() {
        let mut p = MemoryPool::new(1000, 4);
        for s in 0..4 {
            p.acquire(s, 200).unwrap();
        }
        assert_eq!(p.used(), 800);
        p.release_all();
        assert_eq!(p.used(), 0);
        // Lifetime counters survive the release.
        assert_eq!(p.peak_used(), 800);
        assert_eq!(p.bytes_served, 800);
    }

    #[test]
    fn peak_tracks_high_water_not_current() {
        let mut p = MemoryPool::new(1000, 2);
        p.acquire(0, 300).unwrap();
        p.release_stream(0);
        p.acquire(0, 100).unwrap();
        assert_eq!(p.used(), 100);
        assert_eq!(p.peak_used(), 300);
    }
}
