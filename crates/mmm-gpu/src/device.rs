//! Device specification (Table 3's Tesla V100 column + Volta limits).

/// A CUDA-class device model.
#[derive(Clone, Copy, Debug)]
pub struct DeviceSpec {
    pub name: &'static str,
    /// Streaming multiprocessors; one resident block occupies one SM slot.
    pub sms: usize,
    /// Boost clock, GHz (Table 3: 1380 MHz).
    pub clock_ghz: f64,
    /// INT8/INT32 lanes issuing per SM per cycle.
    pub lanes_per_sm: usize,
    /// Shared memory available to one block, bytes (Volta: 96 KiB).
    pub shared_mem_per_block: usize,
    /// Device memory, bytes (16 GB HBM2).
    pub global_mem: u64,
    /// Maximum concurrently resident grids (128 on compute ≥ 7.0, §4.5.1).
    pub max_resident_grids: usize,
    /// Host↔device bandwidth over pinned memory, GB/s.
    pub pcie_gbps: f64,
    /// Fixed per-transfer latency, seconds.
    pub transfer_latency: f64,
    /// cudaMalloc/cudaFree latency avoided by the memory pool, seconds.
    pub alloc_latency: f64,
}

impl DeviceSpec {
    /// The paper's Tesla V100 (Table 3).
    pub const V100: DeviceSpec = DeviceSpec {
        name: "Tesla V100",
        sms: 80,
        clock_ghz: 1.38,
        lanes_per_sm: 64,
        shared_mem_per_block: 96 * 1024,
        global_mem: 16 << 30,
        max_resident_grids: 128,
        pcie_gbps: 12.0,
        transfer_latency: 10e-6,
        alloc_latency: 50e-6,
    };

    /// Total cores (Table 3 reports 5120 = 80 × 64).
    pub fn cores(&self) -> usize {
        self.sms * self.lanes_per_sm
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn v100_matches_table3() {
        let d = DeviceSpec::V100;
        assert_eq!(d.cores(), 5120);
        assert_eq!(d.global_mem, 16 << 30);
        assert_eq!(d.max_resident_grids, 128);
        assert!((d.clock_ghz - 1.38).abs() < 1e-9);
    }
}
