//! The GPU-backed batch aligner the mapper and harnesses call.
//!
//! Wraps [`crate::stream::simulate_batch`] behind the same result types the
//! CPU path returns, and implements §4.5.2's CPU fallback: jobs whose
//! footprint cannot fit on the device are executed with the host's best
//! kernel instead, and their time is charged separately.

use mmm_align::types::{AlignMode, AlignResult};
use mmm_align::{best_engine, Scoring};

use crate::device::DeviceSpec;
use crate::stream::{simulate_batch, KernelJob, StreamConfig};

/// Statistics from one batch.
#[derive(Clone, Copy, Debug, Default)]
pub struct GpuBatchStats {
    /// Simulated device wall time.
    pub device_seconds: f64,
    /// Real host time spent on CPU fallbacks.
    pub fallback_seconds: f64,
    /// Number of jobs that fell back to the CPU.
    pub fallbacks: usize,
    /// Peak kernel concurrency.
    pub max_concurrency: usize,
    /// Aggregate device GCUPS.
    pub gcups: f64,
}

/// A batch aligner over the simulated device.
pub struct GpuAligner {
    pub device: DeviceSpec,
    pub config: StreamConfig,
    pub scoring: Scoring,
}

impl GpuAligner {
    /// Aligner with the paper's launch configuration (128 streams × 512
    /// threads).
    pub fn new(scoring: Scoring) -> Self {
        GpuAligner {
            device: DeviceSpec::V100,
            config: StreamConfig::default(),
            scoring,
        }
    }

    /// Align a batch of pairs; oversize problems run on the host CPU.
    pub fn align_batch(&self, jobs: Vec<KernelJob>) -> (Vec<AlignResult>, GpuBatchStats) {
        let report = simulate_batch(&jobs, &self.scoring, &self.config, &self.device);
        let mut results: Vec<AlignResult> = report.runs.iter().map(|r| r.result.clone()).collect();

        // Re-run fallbacks on the real CPU with the best host kernel.
        let engine = best_engine();
        let mut fallback_seconds = 0.0;
        for &i in &report.fallbacks {
            let start = std::time::Instant::now();
            results[i] = engine.align(
                &jobs[i].target,
                &jobs[i].query,
                &self.scoring,
                AlignMode::Global,
                jobs[i].with_path,
            );
            fallback_seconds += start.elapsed().as_secs_f64();
        }

        let stats = GpuBatchStats {
            device_seconds: report.sim_seconds,
            fallback_seconds,
            fallbacks: report.fallbacks.len(),
            max_concurrency: report.max_concurrency,
            gcups: report.gcups(),
        };
        (results, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_results_match_cpu() {
        let aligner = GpuAligner::new(Scoring::MAP_ONT);
        let jobs: Vec<KernelJob> = (0..6)
            .map(|k| KernelJob {
                target: (0..400).map(|i| ((i * 3 + k) % 4) as u8).collect(),
                query: (0..380).map(|i| ((i * 11 + k) % 4) as u8).collect(),
                with_path: true,
            })
            .collect();
        let (results, stats) = aligner.align_batch(jobs.clone());
        assert_eq!(results.len(), 6);
        assert_eq!(stats.fallbacks, 0);
        assert!(stats.device_seconds > 0.0);
        for (r, j) in results.iter().zip(&jobs) {
            let gold = mmm_align::scalar::align_manymap(
                &j.target,
                &j.query,
                &Scoring::MAP_ONT,
                AlignMode::Global,
                true,
            );
            assert_eq!(*r, gold);
        }
    }

    #[test]
    fn oversize_job_falls_back_and_still_answers() {
        let aligner = GpuAligner::new(Scoring::MAP_ONT);
        // 100k × 100k with path ⇒ 20 GB footprint > 16 GB device. Use
        // score-only CPU verification on a smaller core to keep the test
        // fast: the job itself is score-only? No — fallback requires the
        // with-path footprint, so use modest lengths that still exceed
        // memory: 95k × 95k × 2B ≈ 18 GB.
        let t: Vec<u8> = vec![0; 95_000];
        let q: Vec<u8> = vec![0; 95_000];
        let jobs = vec![
            KernelJob {
                target: t,
                query: q,
                with_path: false,
            },
            KernelJob {
                target: vec![0, 1, 2, 3],
                query: vec![0, 1, 2, 3],
                with_path: true,
            },
        ];
        // Score-only 95k is tiny footprint — no fallback expected here;
        // this test only checks the plumbing doesn't panic on mixed sizes.
        let (results, stats) = aligner.align_batch(jobs);
        assert_eq!(results.len(), 2);
        assert_eq!(stats.fallbacks, 0);
    }
}
