//! The GPU-backed batch aligner the mapper and harnesses call.
//!
//! Wraps [`crate::stream::simulate_batch`] behind the same result types the
//! CPU path returns, and implements §4.5.2's CPU fallback: jobs whose
//! footprint cannot fit on the device are executed with the host's best
//! kernel instead, and their time is charged separately. The aligner is
//! resident: one per-stream [`MemoryPool`] survives across batches, so the
//! warm-up allocations of the first batch are the only ones ever made.

use std::sync::{Mutex, PoisonError};

use mmm_align::types::{AlignMode, AlignResult};
use mmm_align::{best_engine, Scoring};

use crate::device::DeviceSpec;
use crate::error::GpuError;
use crate::mempool::MemoryPool;
use crate::stream::{schedule_runs_with_pool, try_execute_jobs, KernelJob, StreamConfig};

/// Statistics from one batch.
#[derive(Clone, Copy, Debug, Default)]
pub struct GpuBatchStats {
    /// Jobs submitted in the batch.
    pub jobs: usize,
    /// Simulated device wall time.
    pub device_seconds: f64,
    /// Real host time spent on CPU fallbacks.
    pub fallback_seconds: f64,
    /// Number of jobs that fell back to the CPU.
    pub fallbacks: usize,
    /// Peak kernel concurrency.
    pub max_concurrency: usize,
    /// Aggregate device GCUPS.
    pub gcups: f64,
    /// Bytes served from the resident memory pool this batch.
    pub bytes_pooled: u64,
    /// Pool requests too large for a slab (paid direct-alloc latency).
    pub pool_rejections: u64,
    /// Pool high-water mark since the aligner was built.
    pub pool_peak_used: u64,
}

/// A batch aligner over the simulated device.
pub struct GpuAligner {
    pub device: DeviceSpec,
    pub config: StreamConfig,
    pub scoring: Scoring,
    /// Per-stream slab pool, resident across batches (§4.5.2).
    pool: Mutex<MemoryPool>,
}

impl GpuAligner {
    /// Aligner with the paper's launch configuration (128 streams × 512
    /// threads).
    pub fn new(scoring: Scoring) -> Self {
        Self::with_config(DeviceSpec::V100, StreamConfig::default(), scoring)
    }

    /// Aligner over an explicit device and launch configuration.
    pub fn with_config(device: DeviceSpec, config: StreamConfig, scoring: Scoring) -> Self {
        let pool = MemoryPool::new(device.global_mem, config.streams.max(1));
        GpuAligner {
            device,
            config,
            scoring,
            pool: Mutex::new(pool),
        }
    }

    /// Pool high-water mark since construction (bytes).
    pub fn pool_peak_used(&self) -> u64 {
        self.lock_pool().peak_used()
    }

    /// Bytes currently held in the pool (zero between batches — every batch
    /// returns all slabs on every exit path).
    pub fn pool_used(&self) -> u64 {
        self.lock_pool().used()
    }

    fn lock_pool(&self) -> std::sync::MutexGuard<'_, MemoryPool> {
        // A panic while holding the lock cannot leave slots stranded: the
        // scheduler releases every slab before returning, and the pool is
        // plain counters — recover the guard rather than propagate poison.
        self.pool.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Align a batch of pairs; oversize problems run on the host CPU.
    ///
    /// An invalid launch configuration or overflowing scoring is a typed
    /// [`GpuError`] — never a panic, never a silently dropped job.
    pub fn align_batch(
        &self,
        jobs: Vec<KernelJob>,
    ) -> Result<(Vec<AlignResult>, GpuBatchStats), GpuError> {
        if self.config.streams == 0 {
            return Err(GpuError::NoStreams);
        }
        let runs = try_execute_jobs(
            &jobs,
            &self.scoring,
            self.config.kind,
            self.config.threads_per_block,
            &self.device,
        )?;
        let report = {
            let mut pool = self.lock_pool();
            schedule_runs_with_pool(&jobs, runs, &self.config, &self.device, &mut pool)
        };
        let mut results: Vec<AlignResult> = report.runs.iter().map(|r| r.result.clone()).collect();

        // Re-run fallbacks on the real CPU with the best host kernel.
        let engine = best_engine();
        let mut fallback_seconds = 0.0;
        for &i in &report.fallbacks {
            let start = std::time::Instant::now();
            results[i] = engine.align(
                &jobs[i].target,
                &jobs[i].query,
                &self.scoring,
                AlignMode::Global,
                jobs[i].with_path,
            );
            fallback_seconds += start.elapsed().as_secs_f64();
        }

        let stats = GpuBatchStats {
            jobs: jobs.len(),
            device_seconds: report.sim_seconds,
            fallback_seconds,
            fallbacks: report.fallbacks.len(),
            max_concurrency: report.max_concurrency,
            gcups: report.gcups(),
            bytes_pooled: report.bytes_pooled,
            pool_rejections: report.pool_rejections,
            pool_peak_used: report.pool_peak_used,
        };
        debug_assert_eq!(
            results.len(),
            jobs.len(),
            "scheduler must keep 1:1 job/run order"
        );
        Ok((results, stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_results_match_cpu() {
        let aligner = GpuAligner::new(Scoring::MAP_ONT);
        let jobs: Vec<KernelJob> = (0..6)
            .map(|k| KernelJob {
                target: (0..400).map(|i| ((i * 3 + k) % 4) as u8).collect(),
                query: (0..380).map(|i| ((i * 11 + k) % 4) as u8).collect(),
                with_path: true,
            })
            .collect();
        let (results, stats) = aligner.align_batch(jobs.clone()).unwrap();
        assert_eq!(results.len(), 6);
        assert_eq!(stats.jobs, 6);
        assert_eq!(stats.fallbacks, 0);
        assert!(stats.device_seconds > 0.0);
        assert!(stats.bytes_pooled > 0);
        for (r, j) in results.iter().zip(&jobs) {
            let gold = mmm_align::scalar::align_manymap(
                &j.target,
                &j.query,
                &Scoring::MAP_ONT,
                AlignMode::Global,
                true,
            );
            assert_eq!(*r, gold);
        }
    }

    #[test]
    fn oversize_job_falls_back_and_matches_cpu() {
        // A 64 MB device cannot hold a 6 kbp with-path kernel (~72 MB):
        // the job must come back through the CPU-fallback path with the
        // identical functional answer.
        let dev = DeviceSpec {
            global_mem: 64 << 20,
            ..DeviceSpec::V100
        };
        let aligner = GpuAligner::with_config(dev, StreamConfig::default(), Scoring::MAP_ONT);
        let t: Vec<u8> = (0..6_000).map(|i| ((i * 7 + 1) % 4) as u8).collect();
        let q: Vec<u8> = (0..6_000).map(|i| ((i * 5 + 2) % 4) as u8).collect();
        let small = KernelJob {
            target: vec![0, 1, 2, 3],
            query: vec![0, 1, 2, 3],
            with_path: true,
        };
        let big = KernelJob {
            target: t.clone(),
            query: q.clone(),
            with_path: true,
        };
        let (results, stats) = aligner.align_batch(vec![small, big]).unwrap();
        assert_eq!(results.len(), 2);
        assert_eq!(stats.fallbacks, 1);
        let gold =
            mmm_align::scalar::align_manymap(&t, &q, &Scoring::MAP_ONT, AlignMode::Global, true);
        assert_eq!(results[1], gold);
    }

    #[test]
    fn bad_block_size_is_typed_error() {
        let cfg = StreamConfig {
            threads_per_block: 4,
            ..Default::default()
        };
        let aligner = GpuAligner::with_config(DeviceSpec::V100, cfg, Scoring::MAP_ONT);
        let job = KernelJob {
            target: vec![0, 1],
            query: vec![0, 1],
            with_path: false,
        };
        let err = aligner.align_batch(vec![job]).unwrap_err();
        assert_eq!(err, GpuError::BlockSize { threads: 4 });
        // The failed batch left nothing resident in the pool.
        assert_eq!(aligner.pool_used(), 0);
    }

    #[test]
    fn pool_is_resident_across_batches() {
        let aligner = GpuAligner::new(Scoring::MAP_ONT);
        let jobs: Vec<KernelJob> = (0..8)
            .map(|k| KernelJob {
                target: (0..300).map(|i| ((i * 3 + k) % 4) as u8).collect(),
                query: (0..300).map(|i| ((i * 11 + k) % 4) as u8).collect(),
                with_path: false,
            })
            .collect();
        let (_, first) = aligner.align_batch(jobs.clone()).unwrap();
        let peak = aligner.pool_peak_used();
        for _ in 0..3 {
            let (_, stats) = aligner.align_batch(jobs.clone()).unwrap();
            assert_eq!(stats.bytes_pooled, first.bytes_pooled);
        }
        assert_eq!(aligner.pool_peak_used(), peak, "pool grew after warm-up");
        assert_eq!(aligner.pool_used(), 0);
    }
}
