//! Shared scaffolding for the difference-recurrence kernels.
//!
//! Both memory layouts (minimap2's Eq. 3 and manymap's Eq. 4) iterate the DP
//! matrix by anti-diagonal `r = i + j` with `t = i` inside the diagonal, and
//! both need the same three pieces implemented here:
//!
//! * [`DirMatrix`] — the quadratic backtracking matrix for with-path
//!   alignment, stored diagonal-major so SIMD kernels can write direction
//!   bytes with contiguous stores;
//! * [`Tracker`] — 32-bit score recovery along the diagonal boundary cells
//!   (the difference recurrence only keeps 8-bit deltas; absolute scores are
//!   rebuilt incrementally at the `st`/`en` edges of each diagonal);
//! * [`backtrack`] — the state-machine CIGAR reconstruction shared by every
//!   with-path kernel.
//!
//! Direction byte layout (one byte per cell): bits 0–1 hold the source of
//! `z` (0 = diagonal/substitution, 1 = E-term ⇒ `D`, 2 = F-term ⇒ `I`);
//! bit 2 is set when the E gap *continues* into the next row (the
//! `max(0, ·)` in Eq. 3 selected the non-zero branch); bit 3 likewise for F.

use crate::cigar::{Cigar, CigarOp};
use crate::score::Scoring;
use crate::types::{AlignMode, AlignResult};

/// `z` came from the substitution term.
pub const SRC_DIAG: u8 = 0;
/// `z` came from the E term (gap in query, CIGAR `D`).
pub const SRC_E: u8 = 1;
/// `z` came from the F term (gap in target, CIGAR `I`).
pub const SRC_F: u8 = 2;
/// Mask for the source bits.
pub const SRC_MASK: u8 = 3;
/// E gap continues (x chose the non-zero branch).
pub const E_CONT: u8 = 4;
/// F gap continues (y chose the non-zero branch).
pub const F_CONT: u8 = 8;

/// Quadratic direction matrix in diagonal-major layout.
///
/// Row `r` holds the cells of anti-diagonal `r` (indices `t - st(r)`), so a
/// kernel sweeping `t` writes one contiguous byte run per diagonal. Total
/// size is exactly `|T|·|Q|` bytes, the same quadratic footprint the paper
/// charges for with-path alignment.
pub struct DirMatrix {
    data: Vec<u8>,
    offsets: Vec<usize>,
    tlen: usize,
    qlen: usize,
}

impl Default for DirMatrix {
    fn default() -> Self {
        DirMatrix::empty()
    }
}

impl DirMatrix {
    /// An unsized matrix holding no storage; size it with
    /// [`reset`](Self::reset) before use. This is what [`crate::AlignScratch`]
    /// embeds so the backing store can be recycled across align calls.
    pub fn empty() -> Self {
        DirMatrix {
            data: Vec::new(),
            offsets: Vec::new(),
            tlen: 0,
            qlen: 0,
        }
    }

    /// Allocate for a `|T| × |Q|` problem.
    ///
    /// # Panics
    /// If either dimension is zero (the diagonal layout is undefined for an
    /// empty matrix; every kernel routes empty inputs through its
    /// `degenerate()` gate before building a `DirMatrix`).
    pub fn new(tlen: usize, qlen: usize) -> Self {
        let mut m = DirMatrix::empty();
        m.reset(tlen, qlen);
        m
    }

    /// Re-size for a `|T| × |Q|` problem, reusing the existing backing store
    /// (grow-only: no allocation when the new problem fits the old
    /// capacity). All direction bytes are cleared to zero.
    ///
    /// # Panics
    /// If either dimension is zero — see [`new`](Self::new).
    pub fn reset(&mut self, tlen: usize, qlen: usize) {
        assert!(
            tlen > 0 && qlen > 0,
            "DirMatrix is undefined for empty inputs ({tlen}x{qlen}); \
             kernels must take their degenerate() path first"
        );
        let diags = tlen + qlen - 1;
        self.offsets.clear();
        self.offsets.reserve(diags + 1);
        let mut acc = 0usize;
        self.offsets.push(0);
        for r in 0..diags {
            let st = r.saturating_sub(qlen - 1);
            let en = r.min(tlen - 1);
            acc += en - st + 1;
            self.offsets.push(acc);
        }
        debug_assert_eq!(acc, tlen * qlen);
        self.data.clear();
        self.data.resize(acc, 0);
        self.tlen = tlen;
        self.qlen = qlen;
    }

    /// Mutable slice of diagonal `r` (length `en - st + 1`).
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [u8] {
        let (s, e) = (self.offsets[r], self.offsets[r + 1]);
        &mut self.data[s..e]
    }

    /// Direction byte of cell `(i, j)`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> u8 {
        let r = i + j;
        let st = r.saturating_sub(self.qlen - 1);
        self.data[self.offsets[r] + (i - st)]
    }

    /// Bytes held (the quadratic-space term of the paper's memory model).
    pub fn heap_bytes(&self) -> usize {
        self.data.len() + self.offsets.len() * std::mem::size_of::<usize>()
    }

    /// Target length this matrix was sized for.
    pub fn tlen(&self) -> usize {
        self.tlen
    }

    /// Query length this matrix was sized for.
    pub fn qlen(&self) -> usize {
        self.qlen
    }
}

/// Rebuilds absolute 32-bit scores along each diagonal's first (`st`) and
/// last (`en`) cells and tracks the best last-row / last-column cell for the
/// free-end modes.
///
/// Identities used (derived from the definitions of `u`, `v`):
/// `H(r,en) = H(r-1,en) + u(r,en)` while the `en` cell walks down column 0,
/// and `H(r,en) = H(r-1,en) + v(r,en)` once it walks along the last row;
/// symmetrically for the `st` cell with `v` (first row) and `u` (last
/// column).
pub struct Tracker {
    hen: i32,
    hst: i32,
    row_best: (i32, usize, usize),
    col_best: (i32, usize, usize),
    tlen: usize,
    qlen: usize,
}

impl Tracker {
    /// Tracker for a `|T| × |Q|` problem.
    ///
    /// # Panics
    /// If either dimension is zero: `diag`'s boundary identities divide the
    /// walk at `tlen - 1` / `qlen - 1`, which underflow for empty inputs.
    /// Kernels route empty inputs through `degenerate()` before building a
    /// `Tracker`.
    pub fn new(tlen: usize, qlen: usize) -> Self {
        assert!(
            tlen > 0 && qlen > 0,
            "Tracker is undefined for empty inputs ({tlen}x{qlen}); \
             kernels must take their degenerate() path first"
        );
        Tracker {
            hen: 0,
            hst: 0,
            row_best: (i32::MIN / 4, 0, 0),
            col_best: (i32::MIN / 4, 0, 0),
            tlen,
            qlen,
        }
    }

    /// Account diagonal `r` after its cells are written. `u_st`, `u_en` are
    /// the freshly written `u` values at `t = st`/`t = en`; `v_st` / `v_en`
    /// the freshly written `v` values (callers pass the layout-appropriate
    /// slots). `qe = q + e`.
    #[inline]
    #[allow(clippy::too_many_arguments)]
    pub fn diag(
        &mut self,
        r: usize,
        st: usize,
        en: usize,
        u_st: i32,
        u_en: i32,
        v_st: i32,
        v_en: i32,
        qe: i32,
    ) {
        if r == 0 {
            // H(0,0) = u(0,0) + H(-1,0) = u(0,0) - (q+e).
            self.hen = u_en - qe;
            self.hst = self.hen;
        } else {
            if en == r {
                self.hen += u_en; // walking down column j = 0
            } else {
                self.hen += v_en; // walking along the last row
            }
            if st == 0 {
                self.hst += v_st; // walking along the first row
            } else {
                self.hst += u_st; // walking down the last column
            }
        }
        if en == self.tlen - 1 && self.hen > self.row_best.0 {
            self.row_best = (self.hen, en, r - en);
        }
        if r - st == self.qlen - 1 && self.hst > self.col_best.0 {
            self.col_best = (self.hst, st, r - st);
        }
    }

    /// Resolve the score and end cell for `mode`.
    pub fn finalize(&self, mode: AlignMode) -> (i32, usize, usize) {
        match mode {
            AlignMode::Global => {
                debug_assert_eq!(self.hen, self.hst, "both walks must meet at the corner");
                (self.hen, self.tlen - 1, self.qlen - 1)
            }
            AlignMode::QuerySuffixFree => self.row_best,
            AlignMode::TargetSuffixFree => self.col_best,
            // Prefer the last-row cell on ties, matching the reference
            // implementation's scan order.
            AlignMode::SemiGlobal => {
                if self.col_best.0 > self.row_best.0 {
                    self.col_best
                } else {
                    self.row_best
                }
            }
        }
    }
}

/// Reconstruct the CIGAR from a direction matrix, starting at cell
/// `(end_i, end_j)` and walking back to the `(0,0)` boundary.
pub fn backtrack(dir: &DirMatrix, end_i: usize, end_j: usize) -> Cigar {
    let mut cig = Cigar::new();
    backtrack_into(dir, end_i, end_j, &mut cig);
    cig
}

/// [`backtrack`] writing into caller-provided (recyclable) CIGAR storage.
pub fn backtrack_into(dir: &DirMatrix, end_i: usize, end_j: usize, cig: &mut Cigar) {
    cig.clear();
    let mut i = end_i as isize;
    let mut j = end_j as isize;
    #[derive(PartialEq)]
    enum State {
        M,
        E,
        F,
    }
    let mut state = State::M;
    while i >= 0 && j >= 0 {
        match state {
            State::M => match dir.get(i as usize, j as usize) & SRC_MASK {
                SRC_DIAG => {
                    cig.push(CigarOp::Match, 1);
                    i -= 1;
                    j -= 1;
                }
                SRC_E => state = State::E,
                _ => state = State::F,
            },
            State::E => {
                // We arrived via E(i,j); the open/continue decision for this
                // gap step is the E_CONT bit of cell (i-1, j). (`j >= 0`
                // holds throughout the loop, so only `i` needs guarding.)
                cig.push(CigarOp::Del, 1);
                let cont = i > 0 && dir.get(i as usize - 1, j as usize) & E_CONT != 0;
                i -= 1;
                if !cont {
                    state = State::M;
                }
            }
            State::F => {
                cig.push(CigarOp::Ins, 1);
                let cont = j > 0 && dir.get(i as usize, j as usize - 1) & F_CONT != 0;
                j -= 1;
                if !cont {
                    state = State::M;
                }
            }
        }
    }
    if i >= 0 {
        cig.push(CigarOp::Del, i as u32 + 1);
    }
    if j >= 0 {
        cig.push(CigarOp::Ins, j as u32 + 1);
    }
    cig.reverse();
}

/// Reconstruct a CIGAR from a two-piece direction matrix (see
/// [`crate::twopiece`]): bits 0–2 select the source of `z` (0 diag, 1 E,
/// 2 F, 3 E2, 4 F2); bits 3–6 are the continuation flags of E/F/E2/F2.
pub fn backtrack2(dir: &DirMatrix, end_i: usize, end_j: usize) -> Cigar {
    let mut cig = Cigar::new();
    backtrack2_into(dir, end_i, end_j, &mut cig);
    cig
}

/// [`backtrack2`] writing into caller-provided (recyclable) CIGAR storage.
pub fn backtrack2_into(dir: &DirMatrix, end_i: usize, end_j: usize, cig: &mut Cigar) {
    cig.clear();
    let mut i = end_i as isize;
    let mut j = end_j as isize;
    #[derive(Clone, Copy, PartialEq)]
    enum St {
        M,
        Gap { del: bool, cont_bit: u8 },
    }
    let mut st = St::M;
    while i >= 0 && j >= 0 {
        match st {
            St::M => match dir.get(i as usize, j as usize) & 0b111 {
                0 => {
                    cig.push(CigarOp::Match, 1);
                    i -= 1;
                    j -= 1;
                }
                1 => {
                    st = St::Gap {
                        del: true,
                        cont_bit: 8,
                    }
                }
                2 => {
                    st = St::Gap {
                        del: false,
                        cont_bit: 16,
                    }
                }
                3 => {
                    st = St::Gap {
                        del: true,
                        cont_bit: 32,
                    }
                }
                _ => {
                    st = St::Gap {
                        del: false,
                        cont_bit: 64,
                    }
                }
            },
            St::Gap { del, cont_bit } => {
                if del {
                    cig.push(CigarOp::Del, 1);
                    let cont = i > 0 && dir.get(i as usize - 1, j as usize) & cont_bit != 0;
                    i -= 1;
                    if !cont {
                        st = St::M;
                    }
                } else {
                    cig.push(CigarOp::Ins, 1);
                    let cont = j > 0 && dir.get(i as usize, j as usize - 1) & cont_bit != 0;
                    j -= 1;
                    if !cont {
                        st = St::M;
                    }
                }
            }
        }
    }
    if i >= 0 {
        cig.push(CigarOp::Del, i as u32 + 1);
    }
    if j >= 0 {
        cig.push(CigarOp::Ins, j as u32 + 1);
    }
    cig.reverse();
}

/// One difference-recurrence cell update (Eq. 3/4 right-hand sides), shared
/// by the scalar kernels and the scalar tails of the SIMD kernels so every
/// code path computes bit-identical values.
///
/// Inputs are the 8-bit state values promoted to i32; returns
/// `(u, v, x, y, dir)` for the cell.
#[inline(always)]
pub fn cell_update(
    s: i32,
    x_in: i32,
    v_in: i32,
    y_in: i32,
    u_in: i32,
    q: i32,
    qe: i32,
) -> (i8, i8, i8, i8, u8) {
    let a = x_in + v_in;
    let b = y_in + u_in;
    let mut z = s;
    let mut dir = SRC_DIAG;
    if a > z {
        z = a;
        dir = SRC_E;
    }
    if b > z {
        z = b;
        dir = SRC_F;
    }
    let xt = a - z + q;
    let yt = b - z + q;
    if xt > 0 {
        dir |= E_CONT;
    }
    if yt > 0 {
        dir |= F_CONT;
    }
    (
        clamp_i8(z - v_in),
        clamp_i8(z - u_in),
        clamp_i8(xt.max(0) - qe),
        clamp_i8(yt.max(0) - qe),
        dir,
    )
}

#[inline(always)]
pub(crate) fn clamp_i8(v: i32) -> i8 {
    debug_assert!(
        (i8::MIN as i32..=i8::MAX as i32).contains(&v),
        "difference value {v} escapes i8; scoring violates fits_i8"
    );
    // Saturate rather than truncate: a release build fed a scoring that
    // violates fits_i8 (callers are expected to reject those via
    // `Engine::try_align`) degrades like the SIMD kernels' saturating
    // arithmetic instead of silently wrapping to a garbage score.
    v.clamp(i8::MIN as i32, i8::MAX as i32) as i8
}

/// Shared empty-input handling for all kernels (delegates to the reference
/// implementation's conventions).
pub(crate) fn degenerate(
    target: &[u8],
    query: &[u8],
    sc: &Scoring,
    mode: AlignMode,
    with_path: bool,
) -> Option<AlignResult> {
    if target.is_empty() || query.is_empty() {
        Some(crate::fullmatrix::align(target, query, sc, mode, with_path))
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dir_matrix_layout_covers_all_cells() {
        let m = DirMatrix::new(4, 3);
        assert!(m.heap_bytes() >= 12);
        // Mark every cell via row_mut and read back via get.
        let mut m = DirMatrix::new(4, 3);
        for r in 0usize..(4 + 3 - 1) {
            let st = r.saturating_sub(2);
            for (k, b) in m.row_mut(r).iter_mut().enumerate() {
                *b = (r * 10 + k) as u8;
            }
            let en = r.min(3);
            assert_eq!(m.row_mut(r).len(), en - st + 1, "diag {r}");
        }
        for i in 0usize..4 {
            for j in 0..3 {
                let r = i + j;
                let st = r.saturating_sub(2);
                assert_eq!(m.get(i, j), (r * 10 + (i - st)) as u8);
            }
        }
    }

    #[test]
    fn tracker_pure_match_path() {
        // 2x2 all-match with a=2, q=4, e=2 (qe=6): H(0,0)=2 so u(0,0)=8.
        let mut t = Tracker::new(2, 2);
        t.diag(0, 0, 0, 8, 8, 0, 0, 6);
        // r=1: en==r ⇒ hen += u_en; st==0 ⇒ hst += v_st.
        t.diag(1, 0, 1, 0, -6, -6, 0, 6);
        // r=2: single cell (1,1), en=1<r ⇒ hen += v_en; st=1>0 ⇒ hst += u_st.
        t.diag(2, 1, 1, 8, 0, 0, 8, 6);
        let (score, i, j) = t.finalize(AlignMode::Global);
        assert_eq!((score, i, j), (4, 1, 1));
    }
}
