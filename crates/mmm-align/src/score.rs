//! Scoring schemes for base-level alignment.
//!
//! The paper (§3.2) uses a one-piece affine gap penalty `q + k·e` and a
//! substitution score `s(T_i, Q_j)`. Like ksw2's vectorized kernels, the
//! difference-recurrence kernels restrict the substitution function to
//! match / mismatch / ambiguous so the per-diagonal score vector can be
//! produced with a single byte compare; the full-matrix reference uses the
//! same function, keeping every kernel bit-comparable.

/// Match/mismatch/affine-gap scoring parameters.
///
/// All fields are stored as the *positive magnitudes* of the respective
/// penalties, mirroring minimap2's `-A/-B/-O/-E` options.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Scoring {
    /// Match score (`A`), > 0.
    pub a: i32,
    /// Mismatch penalty (`B`), ≥ 0 (applied as `-b`).
    pub b: i32,
    /// Penalty for aligning against an ambiguous base (`N`), ≥ 0.
    pub ambi: i32,
    /// Gap open cost (`q` in Eq. 1), ≥ 0.
    pub q: i32,
    /// Gap extension cost (`e` in Eq. 1), > 0. A gap of length k costs
    /// `q + k·e`.
    pub e: i32,
}

impl Scoring {
    /// minimap2's defaults for PacBio CLR reads (`-ax map-pb`:
    /// A=2 B=5 O=4 E=2, collapsed to one-piece affine as in the paper).
    pub const MAP_PB: Scoring = Scoring {
        a: 2,
        b: 5,
        ambi: 1,
        q: 4,
        e: 2,
    };

    /// minimap2's defaults for Oxford Nanopore reads (`-ax map-ont`).
    pub const MAP_ONT: Scoring = Scoring {
        a: 2,
        b: 4,
        ambi: 1,
        q: 4,
        e: 2,
    };

    /// Substitution score between two nt4 codes.
    #[inline(always)]
    pub fn subst(&self, x: u8, y: u8) -> i32 {
        if x >= 4 || y >= 4 {
            -self.ambi
        } else if x == y {
            self.a
        } else {
            -self.b
        }
    }

    /// Validate that the parameters keep all difference-recurrence state in
    /// `i8` range (Suzuki–Kasahara bound: every delta lies within
    /// `[-(q+e), a+q+e]` and every `z` within `[-2(q+e)-b, a+q+e]`).
    pub fn fits_i8(&self) -> bool {
        let hi = self.a + self.q + self.e;
        let lo = 2 * (self.q + self.e) + self.b.max(self.ambi);
        self.a > 0 && self.e > 0 && hi <= 127 && lo <= 127
    }

    /// Cost of a gap of length `len` (`q + len·e`), as a positive magnitude.
    #[inline]
    pub fn gap_cost(&self, len: u32) -> i32 {
        if len == 0 {
            0
        } else {
            self.q + len as i32 * self.e
        }
    }
}

impl Default for Scoring {
    fn default() -> Self {
        Scoring::MAP_ONT
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subst_cases() {
        let s = Scoring::MAP_ONT;
        assert_eq!(s.subst(0, 0), 2);
        assert_eq!(s.subst(0, 3), -4);
        assert_eq!(s.subst(4, 0), -1);
        assert_eq!(s.subst(2, 4), -1);
    }

    #[test]
    fn presets_fit_i8() {
        assert!(Scoring::MAP_PB.fits_i8());
        assert!(Scoring::MAP_ONT.fits_i8());
    }

    #[test]
    fn extreme_params_rejected() {
        let s = Scoring {
            a: 100,
            b: 100,
            ambi: 1,
            q: 50,
            e: 30,
        };
        assert!(!s.fits_i8());
    }

    #[test]
    fn gap_cost_is_affine() {
        let s = Scoring::MAP_ONT;
        assert_eq!(s.gap_cost(0), 0);
        assert_eq!(s.gap_cost(1), 6);
        assert_eq!(s.gap_cost(10), 24);
    }
}
