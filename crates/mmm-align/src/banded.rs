//! Banded affine-gap alignment (minimap2's `-r` bandwidth).
//!
//! For inter-anchor fills the optimal path is known to stay near the
//! anchor diagonal (chaining already bounded `|dq − dr|`), so the DP can be
//! restricted to a diagonal band of half-width `w`, reducing work from
//! `|T|·|Q|` to roughly `(|T|+|Q|)·w` cells. This module provides a 32-bit
//! banded global aligner with traceback; the band follows the corner-to-
//! corner diagonal like minimap2's `ksw2` band. When the band covers the
//! whole matrix the result is identical to [`crate::fullmatrix::align`]
//! (property-tested); a too-narrow band yields the best path *within the
//! band* — the same degradation minimap2 accepts.

use crate::cigar::CigarOp;
use crate::score::Scoring;
use crate::scratch::{reset_fill, AlignScratch};
use crate::types::{AlignMode, AlignResult};

const NEG_INF: i32 = i32::MIN / 4;

/// Banded global alignment with half-width `band`. Returns `None` when the
/// band is so narrow that no path from (0,0) to the corner exists (callers
/// fall back to a wider band or the full DP).
pub fn align_banded(
    target: &[u8],
    query: &[u8],
    sc: &Scoring,
    band: usize,
    with_path: bool,
) -> Option<AlignResult> {
    align_banded_with_scratch(target, query, sc, band, with_path, &mut AlignScratch::new())
}

/// [`align_banded`] with caller-provided buffers (the 32-bit `H`/`E`/`F`
/// bands live in the scratch arena's `h32`/`e32`/`f32`).
pub fn align_banded_with_scratch(
    target: &[u8],
    query: &[u8],
    sc: &Scoring,
    band: usize,
    with_path: bool,
    scratch: &mut AlignScratch,
) -> Option<AlignResult> {
    let (tlen, qlen) = (target.len(), query.len());
    if tlen == 0 || qlen == 0 {
        return Some(crate::fullmatrix::align(
            target,
            query,
            sc,
            AlignMode::Global,
            with_path,
        ));
    }
    // The corner diagonal offset is qlen - tlen; a connected band must
    // cover both 0 and that offset.
    if (qlen as i64 - tlen as i64).unsigned_abs() as usize > band {
        return None;
    }

    // Row-banded storage: row i covers j ∈ [lo(i), hi(i)] with
    // lo = clamp(i·qlen/tlen − band), width ≤ 2·band+1.
    let width = 2 * band + 1;
    let lo = |i: usize| -> usize {
        let center = i * qlen / tlen;
        center.saturating_sub(band)
    };
    let hi = |i: usize| -> usize { (i * qlen / tlen + band).min(qlen) };

    let rows = tlen + 1;
    let AlignScratch {
        h32: h,
        e32: e,
        f32: f,
        cigars,
        ..
    } = scratch;
    reset_fill(h, rows * (width + 2), NEG_INF);
    reset_fill(e, rows * (width + 2), NEG_INF);
    reset_fill(f, rows * (width + 2), NEG_INF);
    // idx(i, j) valid only when lo(i) ≤ j ≤ hi(i).
    let idx = move |i: usize, j: usize| i * (width + 2) + (j - lo(i)) + 1;

    let get = |arr: &[i32], i: usize, j: usize| -> i32 {
        if j < lo(i) || j > hi(i) {
            NEG_INF
        } else {
            arr[i * (width + 2) + (j - lo(i)) + 1]
        }
    };

    // Boundaries.
    h[idx(0, 0)] = 0;
    for j in 1..=hi(0) {
        h[idx(0, j)] = -sc.gap_cost(j as u32);
    }
    for i in 1..=tlen {
        if lo(i) == 0 {
            h[idx(i, 0)] = -sc.gap_cost(i as u32);
        }
    }

    for i in 1..=tlen {
        for j in lo(i).max(1)..=hi(i) {
            let ev = (get(h, i - 1, j) - sc.q).max(get(e, i - 1, j)) - sc.e;
            let fv = (get(h, i, j - 1) - sc.q).max(get(f, i, j - 1)) - sc.e;
            let diag = get(h, i - 1, j - 1) + sc.subst(target[i - 1], query[j - 1]);
            let id = idx(i, j);
            e[id] = ev.max(NEG_INF);
            f[id] = fv.max(NEG_INF);
            h[id] = diag.max(ev).max(fv);
        }
    }

    let score = get(h, tlen, qlen);
    if score <= NEG_INF / 2 {
        return None; // band disconnected the corner
    }

    let cigar = with_path.then(|| {
        let mut cig = AlignScratch::take_cigar(cigars);
        let (mut i, mut j) = (tlen, qlen);
        #[derive(PartialEq)]
        enum St {
            M,
            E,
            F,
        }
        let mut st = St::M;
        while i > 0 && j > 0 {
            match st {
                St::M => {
                    let hv = get(h, i, j);
                    let diag = get(h, i - 1, j - 1) + sc.subst(target[i - 1], query[j - 1]);
                    if hv == diag {
                        cig.push(CigarOp::Match, 1);
                        i -= 1;
                        j -= 1;
                    } else if hv == get(e, i, j) {
                        st = St::E;
                    } else {
                        st = St::F;
                    }
                }
                St::E => {
                    cig.push(CigarOp::Del, 1);
                    let open = get(h, i - 1, j) - sc.q - sc.e;
                    let cur = get(e, i, j);
                    i -= 1;
                    if cur == open {
                        st = St::M;
                    }
                }
                St::F => {
                    cig.push(CigarOp::Ins, 1);
                    let open = get(h, i, j - 1) - sc.q - sc.e;
                    let cur = get(f, i, j);
                    j -= 1;
                    if cur == open {
                        st = St::M;
                    }
                }
            }
        }
        if i > 0 {
            cig.push(CigarOp::Del, i as u32);
        }
        if j > 0 {
            cig.push(CigarOp::Ins, j as u32);
        }
        cig.reverse();
        cig
    });

    // Banded cell count ≈ rows × band width actually computed.
    let cells: u64 = (1..=tlen).map(|i| (hi(i) - lo(i).max(1) + 1) as u64).sum();
    Some(AlignResult {
        score,
        end_i: tlen - 1,
        end_j: qlen - 1,
        cigar,
        cells,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fullmatrix;
    use proptest::prelude::*;

    const SC: Scoring = Scoring::MAP_ONT;

    #[test]
    fn full_band_equals_full_matrix() {
        let t = mmm_seq::to_nt4(b"ACGTACGTTGCAACGGTC");
        let q = mmm_seq::to_nt4(b"ACGTACGTGCAACGGTTC");
        let full = fullmatrix::align(&t, &q, &SC, AlignMode::Global, true);
        let banded = align_banded(&t, &q, &SC, t.len().max(q.len()), true).unwrap();
        assert_eq!(banded.score, full.score);
        assert_eq!(banded.cigar, full.cigar);
    }

    #[test]
    fn narrow_band_rejects_disconnected_corner() {
        let t = mmm_seq::to_nt4(b"ACGT");
        let q = mmm_seq::to_nt4(b"ACGTACGTACGTACGT");
        assert!(align_banded(&t, &q, &SC, 3, false).is_none());
    }

    #[test]
    fn band_saves_cells() {
        let n = 300;
        let t: Vec<u8> = (0..n).map(|i| ((i * 7 + 1) % 4) as u8).collect();
        let q = t.clone();
        let full = fullmatrix::align(&t, &q, &SC, AlignMode::Global, false);
        let banded = align_banded(&t, &q, &SC, 16, false).unwrap();
        assert_eq!(banded.score, full.score); // identical path is in-band
        assert!(
            banded.cells < full.cells / 4,
            "{} vs {}",
            banded.cells,
            full.cells
        );
    }

    #[test]
    fn too_narrow_band_cannot_beat_optimum() {
        // A 40-base insertion needs the path to leave a ±8 band; the banded
        // score must be ≤ the true optimum.
        let t: Vec<u8> = (0..100).map(|i| ((i * 5 + 2) % 4) as u8).collect();
        let mut q = t.clone();
        let ins: Vec<u8> = (0..40).map(|i| ((i * 3) % 4) as u8).collect();
        q.splice(50..50, ins);
        let full = fullmatrix::align(&t, &q, &SC, AlignMode::Global, false);
        if let Some(banded) = align_banded(&t, &q, &SC, 45, false) {
            assert!(banded.score <= full.score);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn wide_band_matches_reference(
            t in proptest::collection::vec(0u8..4, 1..80),
            q in proptest::collection::vec(0u8..4, 1..80),
        ) {
            let band = t.len().max(q.len());
            let full = fullmatrix::align(&t, &q, &SC, AlignMode::Global, true);
            let banded = align_banded(&t, &q, &SC, band, true).unwrap();
            prop_assert_eq!(banded.score, full.score);
            prop_assert_eq!(banded.cigar, full.cigar);
        }

        #[test]
        fn any_band_is_a_lower_bound(
            t in proptest::collection::vec(0u8..4, 2..80),
            q in proptest::collection::vec(0u8..4, 2..80),
            band in 1usize..100,
        ) {
            let full = fullmatrix::align(&t, &q, &SC, AlignMode::Global, false);
            if let Some(banded) = align_banded(&t, &q, &SC, band, false) {
                prop_assert!(banded.score <= full.score);
            }
        }
    }
}
