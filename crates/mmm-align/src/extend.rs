//! Gap filling and end extension — the mapper's two uses of the kernels.
//!
//! Between two adjacent chain anchors the mapper aligns the inter-anchor
//! segments *globally* ([`fill_align`]). At the ends of a chain it extends
//! the remaining read tail across a reference window ([`extend_align`]):
//! the window is aligned semi-globally (both ends free) and the resulting
//! path is then trimmed back to its best-scoring prefix, which emulates
//! minimap2's z-drop extension stop — the alignment ends where the score
//! peaks instead of being dragged through a noisy tail.

use crate::cigar::{Cigar, CigarOp};
use crate::dispatch::Engine;
use crate::score::Scoring;
use crate::scratch::AlignScratch;
use crate::types::{AlignMode, AlignResult};

/// Result of an end extension.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ExtendResult {
    /// Score of the trimmed alignment.
    pub score: i32,
    /// Target bases consumed by the trimmed alignment.
    pub t_consumed: usize,
    /// Query bases consumed by the trimmed alignment.
    pub q_consumed: usize,
    /// The trimmed path.
    pub cigar: Cigar,
}

/// Global alignment of an inter-anchor segment.
pub fn fill_align(
    target: &[u8],
    query: &[u8],
    sc: &Scoring,
    engine: Engine,
    with_path: bool,
) -> AlignResult {
    engine.align(target, query, sc, AlignMode::Global, with_path)
}

/// [`fill_align`] with caller-provided buffers.
pub fn fill_align_with_scratch(
    target: &[u8],
    query: &[u8],
    sc: &Scoring,
    engine: Engine,
    with_path: bool,
    scratch: &mut AlignScratch,
) -> AlignResult {
    engine.align_with_scratch(target, query, sc, AlignMode::Global, with_path, scratch)
}

/// Extend across `target` × `query` from their common origin, stopping at
/// the best-scoring point on the optimal semi-global path.
pub fn extend_align(target: &[u8], query: &[u8], sc: &Scoring, engine: Engine) -> ExtendResult {
    extend_align_with_scratch(target, query, sc, engine, &mut AlignScratch::new())
}

/// [`extend_align`] with caller-provided buffers. The trimmed CIGAR is
/// rebuilt from the recycle pool, so a warmed scratch makes the whole
/// extension allocation-free.
pub fn extend_align_with_scratch(
    target: &[u8],
    query: &[u8],
    sc: &Scoring,
    engine: Engine,
    scratch: &mut AlignScratch,
) -> ExtendResult {
    if target.is_empty() || query.is_empty() {
        return ExtendResult {
            score: 0,
            t_consumed: 0,
            q_consumed: 0,
            cigar: Cigar::new(),
        };
    }
    let r = engine.align_with_scratch(target, query, sc, AlignMode::SemiGlobal, true, scratch);
    // `with_path = true` always yields a path; an absent one degrades to an
    // empty extension rather than panicking mid-pipeline.
    let cigar = r.cigar.unwrap_or_default();
    let mut out = AlignScratch::take_cigar(&mut scratch.cigars);
    let trimmed = trim_to_best_prefix_into(&cigar, target, query, sc, &mut out);
    scratch.recycle(cigar);
    trimmed
}

/// Walk the path accumulating score and keep the best-scoring prefix.
///
/// Since gaps only lower the score, a best prefix never ends inside a gap
/// run; inside match runs every base is a candidate endpoint.
pub fn trim_to_best_prefix(
    cigar: &Cigar,
    target: &[u8],
    query: &[u8],
    sc: &Scoring,
) -> ExtendResult {
    trim_to_best_prefix_into(cigar, target, query, sc, &mut Cigar::new())
}

/// [`trim_to_best_prefix`] writing the trimmed path into `out` (cleared
/// first) so its storage can come from a scratch pool.
pub fn trim_to_best_prefix_into(
    cigar: &Cigar,
    target: &[u8],
    query: &[u8],
    sc: &Scoring,
    out: &mut Cigar,
) -> ExtendResult {
    out.clear();
    let mut score = 0i32;
    let (mut i, mut j) = (0usize, 0usize);
    // (score, t_pos, q_pos, ops completed, bases into the next op)
    let mut best = (0i32, 0usize, 0usize, 0usize, 0u32);
    for (op_idx, &(op, len)) in cigar.runs().iter().enumerate() {
        match op {
            CigarOp::Match => {
                for k in 0..len {
                    score += sc.subst(target[i], query[j]);
                    i += 1;
                    j += 1;
                    if score > best.0 {
                        best = (score, i, j, op_idx, k + 1);
                    }
                }
            }
            CigarOp::Del => {
                score -= sc.gap_cost(len);
                i += len as usize;
            }
            CigarOp::Ins => {
                score -= sc.gap_cost(len);
                j += len as usize;
            }
            CigarOp::SoftClip => {
                j += len as usize;
            }
        }
    }
    // Rebuild the trimmed cigar.
    for (op_idx, &(op, len)) in cigar.runs().iter().enumerate() {
        if op_idx < best.3 {
            out.push(op, len);
        } else if op_idx == best.3 {
            out.push(op, best.4);
            break;
        }
    }
    ExtendResult {
        score: best.0,
        t_consumed: best.1,
        q_consumed: best.2,
        cigar: std::mem::take(out),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dispatch::best_engine;

    const SC: Scoring = Scoring::MAP_ONT;

    fn nt(s: &[u8]) -> Vec<u8> {
        mmm_seq::to_nt4(s)
    }

    #[test]
    fn fill_is_global() {
        let t = nt(b"ACGTAC");
        let q = nt(b"ACGAC");
        let r = fill_align(&t, &q, &SC, best_engine(), true);
        let c = r.cigar.unwrap();
        assert_eq!(c.target_len(), 6);
        assert_eq!(c.query_len(), 5);
    }

    #[test]
    fn extension_stops_before_noisy_tail() {
        // Query matches the first 12 target bases, then diverges completely.
        // The trimmed extension must stop at (or within a base of) the clean
        // prefix instead of being dragged through the divergent tail.
        let t = nt(b"ACGTACGTACGTTTTTTTTTT");
        let q = nt(b"ACGTACGTACGTGGGGGGGGG");
        let r = extend_align(&t, &q, &SC, best_engine());
        assert!(
            r.q_consumed >= 11 && r.q_consumed <= 13,
            "q_consumed={}",
            r.q_consumed
        );
        assert!(r.score >= 22, "score={}", r.score);
        assert_eq!(r.cigar.query_len() as usize, r.q_consumed);
        assert_eq!(r.cigar.target_len() as usize, r.t_consumed);
        assert_eq!(r.cigar.score(&t, &q, &SC), r.score);
    }

    #[test]
    fn clean_extension_consumes_everything() {
        let t = nt(b"ACGTACGTACGT");
        let q = nt(b"ACGTACGTACGT");
        let r = extend_align(&t, &q, &SC, best_engine());
        assert_eq!(r.q_consumed, 12);
        assert_eq!(r.t_consumed, 12);
        assert_eq!(r.score, 24);
    }

    #[test]
    fn empty_inputs_give_empty_extension() {
        let r = extend_align(&[], &nt(b"ACG"), &SC, best_engine());
        assert_eq!(r.q_consumed, 0);
        assert!(r.cigar.is_empty());
    }

    #[test]
    fn extension_survives_internal_gap() {
        // 8 matches, 2-base deletion, 8 matches, then junk: the extension
        // must reach past the gap into the second match block rather than
        // stopping at the gap.
        let t = nt(b"ACGTACGTGGACGTACGTTTTTTTT");
        let q = nt(b"ACGTACGTACGTACGTCCCCCCC");
        let r = extend_align(&t, &q, &SC, best_engine());
        assert!(r.q_consumed >= 15, "q_consumed={}", r.q_consumed);
        assert!(r.t_consumed >= 17, "t_consumed={}", r.t_consumed);
        assert!(r.score >= 20, "score={}", r.score);
        assert_eq!(r.cigar.score(&t, &q, &SC), r.score);
    }

    #[test]
    fn trim_handles_all_negative_path() {
        // Nothing scores positive: empty extension.
        let t = nt(b"AAAA");
        let q = nt(b"CCCC");
        let r = extend_align(&t, &q, &SC, best_engine());
        assert_eq!(r.score, 0);
        assert_eq!(r.q_consumed, 0);
        assert!(r.cigar.is_empty());
    }
}
