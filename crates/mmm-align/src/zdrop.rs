//! Exact z-drop extension — ksw2/minimap2's real extension semantics.
//!
//! [`crate::extend`] approximates extension by trimming the semi-global
//! path to its best prefix. This module implements the exact version: the
//! alignment starts at (0,0), may end at *any* cell, and the DP stops
//! early once every cell of a diagonal scores more than `zdrop` below the
//! best cell seen so far (minimap2's `-z`). Absolute scores are
//! reconstructed per diagonal from the difference recurrence with one
//! extra O(width) 32-bit pass — the same trick ksw2's exact mode uses:
//! `H(r,t) = H(r-1,t-1) + z(r,t)`, which telescopes in place when `t` is
//! swept downward.
//!
//! The kernel itself is the dependency-free Eq. 4 layout, so the extension
//! inherits manymap's memory behaviour.

use crate::cigar::Cigar;
use crate::diff::{backtrack_into, cell_update, Tracker};
use crate::extend::ExtendResult;
use crate::score::Scoring;
use crate::scratch::{reset_fill, AlignScratch};

/// Extension alignment with exact per-cell scores and z-drop termination.
///
/// Returns the best-cell score, the consumed prefix lengths and (when
/// `with_path`) the CIGAR of the path ending at the best cell. A `zdrop`
/// of `i32::MAX` disables early termination (full local-end search).
pub fn extend_zdrop(
    target: &[u8],
    query: &[u8],
    sc: &Scoring,
    zdrop: i32,
    with_path: bool,
) -> ExtendResult {
    extend_zdrop_with_scratch(
        target,
        query,
        sc,
        zdrop,
        with_path,
        &mut AlignScratch::new(),
    )
}

/// [`extend_zdrop`] with caller-provided buffers.
pub fn extend_zdrop_with_scratch(
    target: &[u8],
    query: &[u8],
    sc: &Scoring,
    zdrop: i32,
    with_path: bool,
    scratch: &mut AlignScratch,
) -> ExtendResult {
    if target.is_empty() || query.is_empty() {
        return ExtendResult {
            score: 0,
            t_consumed: 0,
            q_consumed: 0,
            cigar: Cigar::new(),
        };
    }
    assert!(sc.fits_i8(), "scoring parameters must satisfy fits_i8()");
    assert!(zdrop > 0, "zdrop must be positive");
    let (tlen, qlen) = (target.len(), query.len());
    let (q, e) = (sc.q, sc.e);
    let qe = q + e;

    let AlignScratch {
        u,
        v,
        x,
        y,
        h32,
        dir,
        cigars,
        ..
    } = scratch;
    reset_fill(u, tlen, -e as i8);
    reset_fill(y, tlen, -qe as i8);
    u[0] = -qe as i8;
    reset_fill(v, qlen + 1, -e as i8);
    reset_fill(x, qlen + 1, -qe as i8);
    v[qlen] = -qe as i8;

    // Exact 32-bit scores: h32[t] always holds H at the most recent
    // diagonal that touched row t, maintained via the column identity
    // H(i, j) = H(i, j-1) + v(i, j) — one add per cell, no cross-lane
    // dependency (ksw2's exact-score pass).
    reset_fill(h32, tlen, 0i32);

    let mut dir = if with_path {
        dir.reset(tlen, qlen);
        Some(dir)
    } else {
        None
    };
    let mut tracker = Tracker::new(tlen, qlen); // keeps invariants exercised
    let mut best = (i32::MIN, 0usize, 0usize); // (score, i, j)

    for r in 0..tlen + qlen - 1 {
        let st = r.saturating_sub(qlen - 1);
        let en = r.min(tlen - 1);
        let off = st + qlen - r;
        let mut dir_row = dir.as_mut().map(|d| d.row_mut(r));
        let mut diag_best = i32::MIN;
        for t in st..=en {
            let tp = t - st + off;
            let s = sc.subst(target[t], query[r - t]);
            let (un, vn, xn, yn, d) = cell_update(
                s,
                x[tp] as i32,
                v[tp] as i32,
                y[t] as i32,
                u[t] as i32,
                q,
                qe,
            );
            u[t] = un;
            v[tp] = vn;
            x[tp] = xn;
            y[t] = yn;
            if let Some(row) = dir_row.as_deref_mut() {
                row[t - st] = d;
            }
            if t == r {
                // First visit of row t (j = 0): H(t, -1) = -gap(t+1).
                h32[t] = -sc.gap_cost(t as u32 + 1);
            }
            h32[t] += vn as i32;
            let h = h32[t];
            if h > diag_best {
                diag_best = h;
            }
            if h > best.0 {
                best = (h, t, r - t);
            }
        }
        let v_st0 = v[qlen - r.min(qlen)] as i32;
        let v_en = v[en + qlen - r] as i32;
        tracker.diag(r, st, en, u[st] as i32, u[en] as i32, v_st0, v_en, qe);

        // z-drop: the whole frontier fell too far below the best cell.
        if best.0 - diag_best > zdrop {
            break;
        }
    }
    // The tracker's global invariant only holds if we ran to completion;
    // consume it without asserting.
    let _ = tracker;

    if best.0 <= 0 {
        return ExtendResult {
            score: 0,
            t_consumed: 0,
            q_consumed: 0,
            cigar: Cigar::new(),
        };
    }
    let cigar = dir
        .map(|d| {
            let mut c = AlignScratch::take_cigar(cigars);
            backtrack_into(d, best.1, best.2, &mut c);
            c
        })
        .unwrap_or_default();
    ExtendResult {
        score: best.0,
        t_consumed: best.1 + 1,
        q_consumed: best.2 + 1,
        cigar,
    }
}

/// Convenience: minimap2's default z-drop for long reads (`-z 400`).
pub const DEFAULT_ZDROP: i32 = 400;

#[allow(unused_imports)]
use crate::types::AlignResult; // referenced by docs

#[cfg(test)]
mod tests {
    use super::*;

    const SC: Scoring = Scoring::MAP_ONT;

    /// Independent reference: max-cell score of a global-start DP.
    fn reference_extension(target: &[u8], query: &[u8], sc: &Scoring) -> (i32, usize, usize) {
        let (tl, ql) = (target.len(), query.len());
        let neg = i32::MIN / 4;
        let cols = ql + 1;
        let mut h = vec![neg; (tl + 1) * cols];
        let mut e = vec![neg; (tl + 1) * cols];
        let mut f = vec![neg; (tl + 1) * cols];
        h[0] = 0;
        for i in 1..=tl {
            h[i * cols] = -sc.gap_cost(i as u32);
        }
        for (j, hj) in h.iter_mut().enumerate().take(ql + 1).skip(1) {
            *hj = -sc.gap_cost(j as u32);
        }
        let mut best = (i32::MIN, 0usize, 0usize);
        for i in 1..=tl {
            for j in 1..=ql {
                let ev = (h[(i - 1) * cols + j] - sc.q).max(e[(i - 1) * cols + j]) - sc.e;
                let fv = (h[i * cols + j - 1] - sc.q).max(f[i * cols + j - 1]) - sc.e;
                let dg = h[(i - 1) * cols + j - 1] + sc.subst(target[i - 1], query[j - 1]);
                let hv = dg.max(ev).max(fv);
                e[i * cols + j] = ev;
                f[i * cols + j] = fv;
                h[i * cols + j] = hv;
                if hv > best.0 {
                    best = (hv, i, j);
                }
            }
        }
        best
    }

    fn noisy(len: usize, seed: u64) -> (Vec<u8>, Vec<u8>) {
        let mut s = seed | 1;
        let mut rnd = move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            (s >> 33) as usize
        };
        let t: Vec<u8> = (0..len).map(|_| (rnd() % 4) as u8).collect();
        let mut q = t.clone();
        for _ in 0..len / 10 {
            let p = rnd() % q.len();
            q[p] = (rnd() % 4) as u8;
        }
        (t, q)
    }

    #[test]
    fn matches_max_cell_reference_without_zdrop() {
        for (len, seed) in [(40usize, 1u64), (120, 2), (300, 3)] {
            let (t, q) = noisy(len, seed);
            let (score, bi, bj) = reference_extension(&t, &q, &SC);
            let r = extend_zdrop(&t, &q, &SC, i32::MAX, true);
            assert_eq!(r.score, score.max(0), "len={len}");
            if score > 0 {
                assert_eq!((r.t_consumed, r.q_consumed), (bi, bj), "len={len}");
                assert_eq!(r.cigar.score(&t, &q, &SC), r.score);
                assert_eq!(r.cigar.target_len() as usize, r.t_consumed);
                assert_eq!(r.cigar.query_len() as usize, r.q_consumed);
            }
        }
    }

    #[test]
    fn stops_inside_a_noise_wall() {
        // 200 matching bases then 1 kb of unrelated sequence: with z-drop
        // the DP must terminate long before the far corner while still
        // reporting the 200-base extension.
        let (mut t, _) = noisy(200, 9);
        let clean = t.clone();
        let mut s = 77u64;
        let mut rnd = move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((s >> 33) % 4) as u8
        };
        t.extend((0..1000).map(|_| rnd()));
        let mut q = clean;
        q.extend((0..1000).map(|_| rnd().wrapping_add(1) % 4));
        let r = extend_zdrop(&t, &q, &SC, DEFAULT_ZDROP, false);
        assert!(r.score >= 390, "score={}", r.score); // ~200 matches
        assert!(
            r.t_consumed >= 190 && r.t_consumed <= 460,
            "t={}",
            r.t_consumed
        );
    }

    #[test]
    fn zdrop_never_increases_the_score() {
        let (t, q) = noisy(250, 5);
        let full = extend_zdrop(&t, &q, &SC, i32::MAX, false);
        for z in [50, 200, 1000] {
            let dropped = extend_zdrop(&t, &q, &SC, z, false);
            assert!(dropped.score <= full.score, "z={z}");
        }
        // A huge zdrop is equivalent to no zdrop.
        assert_eq!(extend_zdrop(&t, &q, &SC, 1 << 20, false).score, full.score);
    }

    #[test]
    fn hopeless_extension_is_empty() {
        let t = vec![0u8; 50];
        let q = vec![1u8; 50];
        let r = extend_zdrop(&t, &q, &SC, DEFAULT_ZDROP, true);
        assert_eq!(r.score, 0);
        assert_eq!(r.t_consumed, 0);
        assert!(r.cigar.is_empty());
    }

    #[test]
    fn empty_inputs() {
        let r = extend_zdrop(&[], &[0, 1, 2], &SC, 100, false);
        assert_eq!(r.score, 0);
    }
}
