//! Runtime kernel selection.
//!
//! An [`Engine`] names one of the eight kernel variants benchmarked in the
//! paper: {minimap2 layout, manymap layout} × {scalar, SSE, AVX2, AVX-512}.
//! `Engine::align` dispatches to the right implementation; [`best_engine`]
//! picks manymap's layout at the widest vector unit the CPU supports, which
//! is what the mapper uses by default.

use crate::scalar;
use crate::score::Scoring;
use crate::scratch::AlignScratch;
use crate::simd::{avx2, avx512, sse};
use crate::types::{AlignError, AlignMode, AlignResult};

/// Vector width tier. Labels follow the paper's naming (its baseline tier is
/// "SSE2"; our 128-bit kernels use SSE4.1 instructions — see `simd`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Width {
    Scalar,
    Sse,
    Avx2,
    Avx512,
}

impl Width {
    /// 8-bit lanes processed per vector op.
    pub fn lanes(self) -> usize {
        match self {
            Width::Scalar => 1,
            Width::Sse => 16,
            Width::Avx2 => 32,
            Width::Avx512 => 64,
        }
    }

    /// The paper's tier label.
    pub fn label(self) -> &'static str {
        match self {
            Width::Scalar => "scalar",
            Width::Sse => "SSE2",
            Width::Avx2 => "AVX2",
            Width::Avx512 => "AVX-512",
        }
    }

    /// Does the running CPU support this tier?
    pub fn is_available(self) -> bool {
        match self {
            Width::Scalar => true,
            Width::Sse => sse::available(),
            Width::Avx2 => avx2::available(),
            Width::Avx512 => avx512::available(),
        }
    }

    /// All tiers, narrowest first.
    pub const ALL: [Width; 4] = [Width::Scalar, Width::Sse, Width::Avx2, Width::Avx512];
}

/// DP memory layout.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Layout {
    /// Equation (3) — minimap2's layout with the intra-loop dependency.
    Mm2,
    /// Equation (4) — manymap's dependency-free layout.
    Manymap,
}

impl Layout {
    /// The paper's series label.
    pub fn label(self) -> &'static str {
        match self {
            Layout::Mm2 => "minimap2",
            Layout::Manymap => "manymap",
        }
    }
}

/// One concrete kernel variant.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Engine {
    pub layout: Layout,
    pub width: Width,
}

impl Engine {
    /// Construct a variant.
    pub const fn new(layout: Layout, width: Width) -> Self {
        Engine { layout, width }
    }

    /// All eight variants in Figure 5/8 order.
    pub fn all() -> Vec<Engine> {
        let mut v = Vec::with_capacity(8);
        for layout in [Layout::Mm2, Layout::Manymap] {
            for width in Width::ALL {
                v.push(Engine::new(layout, width));
            }
        }
        v
    }

    /// Is the variant runnable on this CPU?
    pub fn is_available(&self) -> bool {
        self.width.is_available()
    }

    /// Series label, e.g. `manymap/AVX2`.
    pub fn label(&self) -> String {
        format!("{}/{}", self.layout.label(), self.width.label())
    }

    /// Run the kernel. Panics if the width is unsupported on this CPU
    /// (check [`Engine::is_available`] first).
    ///
    /// ```
    /// use mmm_align::{best_engine, AlignMode, Scoring};
    /// let t = mmm_seq::to_nt4(b"ACGTACGT");
    /// let r = best_engine().align(&t, &t, &Scoring::MAP_ONT, AlignMode::Global, true);
    /// assert_eq!(r.score, 16); // 8 matches x 2
    /// assert_eq!(r.cigar.unwrap().to_string(), "8M");
    /// ```
    pub fn align(
        &self,
        target: &[u8],
        query: &[u8],
        sc: &Scoring,
        mode: AlignMode,
        with_path: bool,
    ) -> AlignResult {
        self.align_with_scratch(target, query, sc, mode, with_path, &mut AlignScratch::new())
    }

    /// [`Engine::align`] with caller-provided buffers: after one warm-up
    /// call at the largest problem size, repeated calls perform zero heap
    /// allocations (see [`AlignScratch`]).
    pub fn align_with_scratch(
        &self,
        target: &[u8],
        query: &[u8],
        sc: &Scoring,
        mode: AlignMode,
        with_path: bool,
        scratch: &mut AlignScratch,
    ) -> AlignResult {
        match (self.layout, self.width) {
            (Layout::Mm2, Width::Scalar) => {
                scalar::align_mm2_with_scratch(target, query, sc, mode, with_path, scratch)
            }
            (Layout::Manymap, Width::Scalar) => {
                scalar::align_manymap_with_scratch(target, query, sc, mode, with_path, scratch)
            }
            (Layout::Mm2, Width::Sse) => {
                sse::align_mm2_with_scratch(target, query, sc, mode, with_path, scratch)
            }
            (Layout::Manymap, Width::Sse) => {
                sse::align_manymap_with_scratch(target, query, sc, mode, with_path, scratch)
            }
            (Layout::Mm2, Width::Avx2) => {
                avx2::align_mm2_with_scratch(target, query, sc, mode, with_path, scratch)
            }
            (Layout::Manymap, Width::Avx2) => {
                avx2::align_manymap_with_scratch(target, query, sc, mode, with_path, scratch)
            }
            (Layout::Mm2, Width::Avx512) => {
                avx512::align_mm2_with_scratch(target, query, sc, mode, with_path, scratch)
            }
            (Layout::Manymap, Width::Avx512) => {
                avx512::align_manymap_with_scratch(target, query, sc, mode, with_path, scratch)
            }
        }
    }

    /// [`Engine::align`] with scoring validation: parameters that would
    /// overflow the kernels' `i8` difference range are rejected with
    /// [`AlignError::ScoringOverflowsI8`] instead of tripping the kernels'
    /// assert (or, before that assert existed, silently wrapping in release
    /// builds).
    pub fn try_align(
        &self,
        target: &[u8],
        query: &[u8],
        sc: &Scoring,
        mode: AlignMode,
        with_path: bool,
    ) -> Result<AlignResult, AlignError> {
        self.try_align_with_scratch(target, query, sc, mode, with_path, &mut AlignScratch::new())
    }

    /// [`Engine::try_align`] with caller-provided buffers.
    pub fn try_align_with_scratch(
        &self,
        target: &[u8],
        query: &[u8],
        sc: &Scoring,
        mode: AlignMode,
        with_path: bool,
        scratch: &mut AlignScratch,
    ) -> Result<AlignResult, AlignError> {
        if !sc.fits_i8() {
            return Err(AlignError::ScoringOverflowsI8(*sc));
        }
        Ok(self.align_with_scratch(target, query, sc, mode, with_path, scratch))
    }
}

/// The widest available manymap kernel — the mapper default.
pub fn best_engine() -> Engine {
    for width in [Width::Avx512, Width::Avx2, Width::Sse] {
        if width.is_available() {
            return Engine::new(Layout::Manymap, width);
        }
    }
    Engine::new(Layout::Manymap, Width::Scalar)
}

/// The widest available minimap2-layout kernel — the baseline the macro
/// benchmarks compare against.
pub fn best_mm2_engine() -> Engine {
    for width in [Width::Avx512, Width::Avx2, Width::Sse] {
        if width.is_available() {
            return Engine::new(Layout::Mm2, width);
        }
    }
    Engine::new(Layout::Mm2, Width::Scalar)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eight_variants_exist() {
        assert_eq!(Engine::all().len(), 8);
    }

    #[test]
    fn scalar_always_available() {
        assert!(Engine::new(Layout::Manymap, Width::Scalar).is_available());
    }

    #[test]
    fn best_engine_is_manymap() {
        let e = best_engine();
        assert_eq!(e.layout, Layout::Manymap);
        assert!(e.is_available());
    }

    #[test]
    fn all_available_engines_agree() {
        let t = mmm_seq::to_nt4(b"ACGTTTACGGGACTACGT");
        let q = mmm_seq::to_nt4(b"ACGTTACGGGCACTAGT");
        let sc = Scoring::MAP_ONT;
        let gold = scalar::align_manymap(&t, &q, &sc, AlignMode::Global, true);
        for e in Engine::all().into_iter().filter(|e| e.is_available()) {
            assert_eq!(
                e.align(&t, &q, &sc, AlignMode::Global, true),
                gold,
                "{}",
                e.label()
            );
        }
    }

    #[test]
    fn labels_are_paper_series() {
        assert_eq!(
            Engine::new(Layout::Mm2, Width::Sse).label(),
            "minimap2/SSE2"
        );
        assert_eq!(
            Engine::new(Layout::Manymap, Width::Avx512).label(),
            "manymap/AVX-512"
        );
    }
}
