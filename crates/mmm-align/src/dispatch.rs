//! Runtime kernel selection.
//!
//! An [`Engine`] names one of the eight kernel variants benchmarked in the
//! paper: {minimap2 layout, manymap layout} × {scalar, SSE, AVX2, AVX-512}.
//! `Engine::align` dispatches to the right implementation; [`best_engine`]
//! picks manymap's layout at the widest vector unit the CPU supports, which
//! is what the mapper uses by default.

use std::sync::OnceLock;

use crate::scalar;
use crate::score::Scoring;
use crate::scratch::AlignScratch;
use crate::simd::{avx2, avx512, sse};
use crate::types::{AlignError, AlignMode, AlignResult};

/// SIMD tiers turned off by the `MMM_DISABLE_SIMD` environment override —
/// the escape hatch for debugging a suspect kernel in production and for
/// forcing the scalar fallback path in tests.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DisabledTiers {
    pub sse: bool,
    pub avx2: bool,
    pub avx512: bool,
}

impl DisabledTiers {
    /// No tier disabled (the default when the variable is unset).
    pub const NONE: DisabledTiers = DisabledTiers {
        sse: false,
        avx2: false,
        avx512: false,
    };

    /// Every SIMD tier disabled: scalar kernels only.
    pub const ALL_SIMD: DisabledTiers = DisabledTiers {
        sse: true,
        avx2: true,
        avx512: true,
    };
}

/// Parse an `MMM_DISABLE_SIMD` value: a comma/space-separated list of tier
/// names (`sse`, `avx2`, `avx512`/`avx-512`), or `all`/`1` for every tier.
/// Unknown tokens are ignored rather than rejected — a typo in a debugging
/// override must never take the mapper down.
pub fn parse_disable_list(value: &str) -> DisabledTiers {
    let mut d = DisabledTiers::NONE;
    for token in value.split([',', ' ', ';']) {
        match token.trim().to_ascii_lowercase().as_str() {
            "sse" | "sse2" | "sse4.1" => d.sse = true,
            "avx2" => d.avx2 = true,
            "avx512" | "avx-512" | "avx512f" => d.avx512 = true,
            "all" | "1" | "true" => d = DisabledTiers::ALL_SIMD,
            _ => {}
        }
    }
    d
}

/// The process-wide override, read from `MMM_DISABLE_SIMD` once on first
/// dispatch and cached (the hot path must not re-read the environment).
fn env_disabled() -> DisabledTiers {
    static CACHE: OnceLock<DisabledTiers> = OnceLock::new();
    *CACHE.get_or_init(|| match std::env::var("MMM_DISABLE_SIMD") {
        Ok(v) => parse_disable_list(&v),
        Err(_) => DisabledTiers::NONE,
    })
}

/// Vector width tier. Labels follow the paper's naming (its baseline tier is
/// "SSE2"; our 128-bit kernels use SSE4.1 instructions — see `simd`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Width {
    Scalar,
    Sse,
    Avx2,
    Avx512,
}

impl Width {
    /// 8-bit lanes processed per vector op.
    pub fn lanes(self) -> usize {
        match self {
            Width::Scalar => 1,
            Width::Sse => 16,
            Width::Avx2 => 32,
            Width::Avx512 => 64,
        }
    }

    /// The paper's tier label.
    pub fn label(self) -> &'static str {
        match self {
            Width::Scalar => "scalar",
            Width::Sse => "SSE2",
            Width::Avx2 => "AVX2",
            Width::Avx512 => "AVX-512",
        }
    }

    /// Does the running CPU support this tier, and is it not disabled by
    /// the `MMM_DISABLE_SIMD` override?
    pub fn is_available(self) -> bool {
        self.is_available_unless(env_disabled())
    }

    /// [`Width::is_available`] against an explicit disable mask — the pure
    /// form the env-independent tests drive directly.
    pub fn is_available_unless(self, disabled: DisabledTiers) -> bool {
        match self {
            Width::Scalar => true,
            Width::Sse => !disabled.sse && sse::available(),
            Width::Avx2 => !disabled.avx2 && avx2::available(),
            Width::Avx512 => !disabled.avx512 && avx512::available(),
        }
    }

    /// All tiers, narrowest first.
    pub const ALL: [Width; 4] = [Width::Scalar, Width::Sse, Width::Avx2, Width::Avx512];
}

/// DP memory layout.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Layout {
    /// Equation (3) — minimap2's layout with the intra-loop dependency.
    Mm2,
    /// Equation (4) — manymap's dependency-free layout.
    Manymap,
}

impl Layout {
    /// The paper's series label.
    pub fn label(self) -> &'static str {
        match self {
            Layout::Mm2 => "minimap2",
            Layout::Manymap => "manymap",
        }
    }
}

/// One concrete kernel variant.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Engine {
    pub layout: Layout,
    pub width: Width,
}

impl Engine {
    /// Construct a variant.
    pub const fn new(layout: Layout, width: Width) -> Self {
        Engine { layout, width }
    }

    /// All eight variants in Figure 5/8 order.
    pub fn all() -> Vec<Engine> {
        let mut v = Vec::with_capacity(8);
        for layout in [Layout::Mm2, Layout::Manymap] {
            for width in Width::ALL {
                v.push(Engine::new(layout, width));
            }
        }
        v
    }

    /// Is the variant runnable on this CPU?
    pub fn is_available(&self) -> bool {
        self.width.is_available()
    }

    /// Series label, e.g. `manymap/AVX2`.
    pub fn label(&self) -> String {
        format!("{}/{}", self.layout.label(), self.width.label())
    }

    /// Run the kernel. Panics if the width is unsupported on this CPU
    /// (check [`Engine::is_available`] first).
    ///
    /// ```
    /// use mmm_align::{best_engine, AlignMode, Scoring};
    /// let t = mmm_seq::to_nt4(b"ACGTACGT");
    /// let r = best_engine().align(&t, &t, &Scoring::MAP_ONT, AlignMode::Global, true);
    /// assert_eq!(r.score, 16); // 8 matches x 2
    /// assert_eq!(r.cigar.unwrap().to_string(), "8M");
    /// ```
    pub fn align(
        &self,
        target: &[u8],
        query: &[u8],
        sc: &Scoring,
        mode: AlignMode,
        with_path: bool,
    ) -> AlignResult {
        self.align_with_scratch(target, query, sc, mode, with_path, &mut AlignScratch::new())
    }

    /// [`Engine::align`] with caller-provided buffers: after one warm-up
    /// call at the largest problem size, repeated calls perform zero heap
    /// allocations (see [`AlignScratch`]).
    pub fn align_with_scratch(
        &self,
        target: &[u8],
        query: &[u8],
        sc: &Scoring,
        mode: AlignMode,
        with_path: bool,
        scratch: &mut AlignScratch,
    ) -> AlignResult {
        match (self.layout, self.width) {
            (Layout::Mm2, Width::Scalar) => {
                scalar::align_mm2_with_scratch(target, query, sc, mode, with_path, scratch)
            }
            (Layout::Manymap, Width::Scalar) => {
                scalar::align_manymap_with_scratch(target, query, sc, mode, with_path, scratch)
            }
            (Layout::Mm2, Width::Sse) => {
                sse::align_mm2_with_scratch(target, query, sc, mode, with_path, scratch)
            }
            (Layout::Manymap, Width::Sse) => {
                sse::align_manymap_with_scratch(target, query, sc, mode, with_path, scratch)
            }
            (Layout::Mm2, Width::Avx2) => {
                avx2::align_mm2_with_scratch(target, query, sc, mode, with_path, scratch)
            }
            (Layout::Manymap, Width::Avx2) => {
                avx2::align_manymap_with_scratch(target, query, sc, mode, with_path, scratch)
            }
            (Layout::Mm2, Width::Avx512) => {
                avx512::align_mm2_with_scratch(target, query, sc, mode, with_path, scratch)
            }
            (Layout::Manymap, Width::Avx512) => {
                avx512::align_manymap_with_scratch(target, query, sc, mode, with_path, scratch)
            }
        }
    }

    /// [`Engine::align`] with scoring validation: parameters that would
    /// overflow the kernels' `i8` difference range are rejected with
    /// [`AlignError::ScoringOverflowsI8`] instead of tripping the kernels'
    /// assert (or, before that assert existed, silently wrapping in release
    /// builds).
    pub fn try_align(
        &self,
        target: &[u8],
        query: &[u8],
        sc: &Scoring,
        mode: AlignMode,
        with_path: bool,
    ) -> Result<AlignResult, AlignError> {
        self.try_align_with_scratch(target, query, sc, mode, with_path, &mut AlignScratch::new())
    }

    /// [`Engine::try_align`] with caller-provided buffers.
    pub fn try_align_with_scratch(
        &self,
        target: &[u8],
        query: &[u8],
        sc: &Scoring,
        mode: AlignMode,
        with_path: bool,
        scratch: &mut AlignScratch,
    ) -> Result<AlignResult, AlignError> {
        if !sc.fits_i8() {
            return Err(AlignError::ScoringOverflowsI8(*sc));
        }
        Ok(self.align_with_scratch(target, query, sc, mode, with_path, scratch))
    }
}

/// The widest available manymap kernel — the mapper default. Honors the
/// `MMM_DISABLE_SIMD` override.
pub fn best_engine() -> Engine {
    best_engine_unless(Layout::Manymap, env_disabled())
}

/// The widest available minimap2-layout kernel — the baseline the macro
/// benchmarks compare against. Honors the `MMM_DISABLE_SIMD` override.
pub fn best_mm2_engine() -> Engine {
    best_engine_unless(Layout::Mm2, env_disabled())
}

/// Widest-first selection against an explicit disable mask.
pub fn best_engine_unless(layout: Layout, disabled: DisabledTiers) -> Engine {
    for width in [Width::Avx512, Width::Avx2, Width::Sse] {
        if width.is_available_unless(disabled) {
            return Engine::new(layout, width);
        }
    }
    Engine::new(layout, Width::Scalar)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eight_variants_exist() {
        assert_eq!(Engine::all().len(), 8);
    }

    #[test]
    fn scalar_always_available() {
        assert!(Engine::new(Layout::Manymap, Width::Scalar).is_available());
    }

    #[test]
    fn best_engine_is_manymap() {
        let e = best_engine();
        assert_eq!(e.layout, Layout::Manymap);
        assert!(e.is_available());
    }

    #[test]
    fn all_available_engines_agree() {
        let t = mmm_seq::to_nt4(b"ACGTTTACGGGACTACGT");
        let q = mmm_seq::to_nt4(b"ACGTTACGGGCACTAGT");
        let sc = Scoring::MAP_ONT;
        let gold = scalar::align_manymap(&t, &q, &sc, AlignMode::Global, true);
        for e in Engine::all().into_iter().filter(|e| e.is_available()) {
            assert_eq!(
                e.align(&t, &q, &sc, AlignMode::Global, true),
                gold,
                "{}",
                e.label()
            );
        }
    }

    #[test]
    fn disable_list_parses_each_tier() {
        assert_eq!(parse_disable_list(""), DisabledTiers::NONE);
        assert_eq!(
            parse_disable_list("sse"),
            DisabledTiers {
                sse: true,
                ..DisabledTiers::NONE
            }
        );
        assert_eq!(
            parse_disable_list("AVX2"),
            DisabledTiers {
                avx2: true,
                ..DisabledTiers::NONE
            }
        );
        assert_eq!(
            parse_disable_list("avx-512"),
            DisabledTiers {
                avx512: true,
                ..DisabledTiers::NONE
            }
        );
        assert_eq!(
            parse_disable_list("sse, avx2,avx512"),
            DisabledTiers::ALL_SIMD
        );
        assert_eq!(parse_disable_list("all"), DisabledTiers::ALL_SIMD);
        // Typos never disable (or enable) anything by accident.
        assert_eq!(parse_disable_list("sse3;banana"), DisabledTiers::NONE);
    }

    #[test]
    fn disabling_each_tier_falls_back_to_the_next_narrower() {
        // Scalar survives any mask.
        assert!(Width::Scalar.is_available_unless(DisabledTiers::ALL_SIMD));
        for w in [Width::Sse, Width::Avx2, Width::Avx512] {
            assert!(!w.is_available_unless(DisabledTiers::ALL_SIMD), "{w:?}");
        }
        let e = best_engine_unless(Layout::Manymap, DisabledTiers::ALL_SIMD);
        assert_eq!(e, Engine::new(Layout::Manymap, Width::Scalar));
        // Masking only the widest supported tier steps down one level.
        if Width::Avx512.is_available_unless(DisabledTiers::NONE) {
            let d = DisabledTiers {
                avx512: true,
                ..DisabledTiers::NONE
            };
            assert_eq!(best_engine_unless(Layout::Manymap, d).width, Width::Avx2);
        }
        if Width::Avx2.is_available_unless(DisabledTiers::NONE) {
            let d = DisabledTiers {
                avx2: true,
                avx512: true,
                ..DisabledTiers::NONE
            };
            assert_eq!(best_engine_unless(Layout::Mm2, d).width, Width::Sse);
        }
    }

    #[test]
    fn forced_scalar_output_is_identical_per_tier() {
        // Forcing each tier off must not change results: whatever
        // `best_engine_unless` picks agrees exactly with the scalar gold.
        let t = mmm_seq::to_nt4(b"ACGTTTACGGGACTACGTTACGACT");
        let q = mmm_seq::to_nt4(b"ACGTTACGGGCACTAGTTAGACT");
        let sc = Scoring::MAP_ONT;
        let gold = scalar::align_manymap(&t, &q, &sc, AlignMode::Global, true);
        for d in [
            DisabledTiers::NONE,
            DisabledTiers {
                avx512: true,
                ..DisabledTiers::NONE
            },
            DisabledTiers {
                avx2: true,
                avx512: true,
                ..DisabledTiers::NONE
            },
            DisabledTiers::ALL_SIMD,
        ] {
            let e = best_engine_unless(Layout::Manymap, d);
            assert_eq!(e.align(&t, &q, &sc, AlignMode::Global, true), gold, "{d:?}");
        }
    }

    #[test]
    fn labels_are_paper_series() {
        assert_eq!(
            Engine::new(Layout::Mm2, Width::Sse).label(),
            "minimap2/SSE2"
        );
        assert_eq!(
            Engine::new(Layout::Manymap, Width::Avx512).label(),
            "manymap/AVX-512"
        );
    }
}
