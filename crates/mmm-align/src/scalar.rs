//! Scalar difference-recurrence kernels in both memory layouts.
//!
//! [`align_mm2`] implements Equation (3) with minimap2's linear-array layout:
//! `x`/`v` are indexed by `t`, so cell `(r,t)` must read `X[t-1]`, `V[t-1]`
//! *before* they are overwritten by the current diagonal — the intra-loop
//! dependency §4.3.1 describes. The kernel carries the old values in
//! temporaries (`xlast`/`vlast`), exactly the trick the paper attributes to
//! minimap2 and the reason its vectorization needs shift instructions.
//!
//! [`align_manymap`] implements Equation (4): `x`/`v` are stored at
//! `t' = t - r + |Q|`. Cell `(r,t)` reads and writes the *same* slots
//! (`X[t']`, `V[t']`, `U[t]`, `Y[t]`), so the update is a pure in-place
//! elementwise pass with no temporaries — the paper's contribution, and the
//! shape the SIMD/SIMT kernels exploit.
//!
//! Both kernels produce bit-identical scores and CIGARs to
//! [`crate::fullmatrix::align`] (property-tested below).

use crate::diff::{backtrack_into, cell_update, degenerate, Tracker};
use crate::layout::Eq4;
use crate::score::Scoring;
use crate::scratch::{reset_fill, AlignScratch};
use crate::types::{AlignMode, AlignResult};

/// Equation (3): minimap2's layout with the intra-loop dependency resolved
/// via temporaries.
pub fn align_mm2(
    target: &[u8],
    query: &[u8],
    sc: &Scoring,
    mode: AlignMode,
    with_path: bool,
) -> AlignResult {
    align_mm2_with_scratch(target, query, sc, mode, with_path, &mut AlignScratch::new())
}

/// [`align_mm2`] with caller-provided buffers: zero heap allocations once
/// the scratch has warmed up to the problem size.
pub fn align_mm2_with_scratch(
    target: &[u8],
    query: &[u8],
    sc: &Scoring,
    mode: AlignMode,
    with_path: bool,
    scratch: &mut AlignScratch,
) -> AlignResult {
    if let Some(r) = degenerate(target, query, sc, mode, with_path) {
        return r;
    }
    assert!(sc.fits_i8(), "scoring parameters must satisfy fits_i8()");
    let (tlen, qlen) = (target.len(), query.len());
    let (q, e) = (sc.q, sc.e);
    let qe = q + e;

    let AlignScratch {
        u,
        v,
        x,
        y,
        dir,
        cigars,
        ..
    } = scratch;
    reset_fill(u, tlen, -e as i8);
    reset_fill(v, tlen, 0i8);
    reset_fill(x, tlen, 0i8);
    reset_fill(y, tlen, -qe as i8);
    u[0] = -qe as i8; // u(0,-1): the first gap in column 0 pays the open cost

    let mut dir = if with_path {
        dir.reset(tlen, qlen);
        Some(dir)
    } else {
        None
    };
    let mut tracker = Tracker::new(tlen, qlen);

    let geom = Eq4::new(tlen, qlen);
    for r in 0..geom.diagonals() {
        let (st, en) = geom.band(r);
        // Boundary x(-1,j), v(-1,j) when the diagonal touches the first row;
        // otherwise the previous diagonal's X[st-1], V[st-1].
        let (mut xlast, mut vlast) = if st == 0 {
            (-qe, if r == 0 { -qe } else { -e })
        } else {
            (x[st - 1] as i32, v[st - 1] as i32)
        };
        let mut dir_row = dir.as_deref_mut().map(|d| d.row_mut(r));
        for t in st..=en {
            let s = sc.subst(target[t], query[r - t]);
            let (un, vn, xn, yn, d) = cell_update(s, xlast, vlast, y[t] as i32, u[t] as i32, q, qe);
            // THE DEPENDENCY: save the old X[t]/V[t] for cell t+1 before
            // overwriting them (minimap2's temporary-variable workaround).
            xlast = x[t] as i32;
            vlast = v[t] as i32;
            u[t] = un;
            v[t] = vn;
            x[t] = xn;
            y[t] = yn;
            if let Some(row) = dir_row.as_deref_mut() {
                row[t - st] = d;
            }
        }
        tracker.diag(
            r,
            st,
            en,
            u[st] as i32,
            u[en] as i32,
            v[0] as i32,
            v[en] as i32,
            qe,
        );
    }

    let (score, end_i, end_j) = tracker.finalize(mode);
    let cigar = dir.map(|d| {
        let mut c = AlignScratch::take_cigar(cigars);
        backtrack_into(d, end_i, end_j, &mut c);
        c
    });
    AlignResult {
        score,
        end_i,
        end_j,
        cigar,
        cells: tlen as u64 * qlen as u64,
    }
}

/// Equation (4): manymap's transformed layout, dependency-free in-place
/// updates.
pub fn align_manymap(
    target: &[u8],
    query: &[u8],
    sc: &Scoring,
    mode: AlignMode,
    with_path: bool,
) -> AlignResult {
    align_manymap_with_scratch(target, query, sc, mode, with_path, &mut AlignScratch::new())
}

/// [`align_manymap`] with caller-provided buffers: zero heap allocations
/// once the scratch has warmed up to the problem size.
pub fn align_manymap_with_scratch(
    target: &[u8],
    query: &[u8],
    sc: &Scoring,
    mode: AlignMode,
    with_path: bool,
    scratch: &mut AlignScratch,
) -> AlignResult {
    if let Some(r) = degenerate(target, query, sc, mode, with_path) {
        return r;
    }
    assert!(sc.fits_i8(), "scoring parameters must satisfy fits_i8()");
    let (tlen, qlen) = (target.len(), query.len());
    let (q, e) = (sc.q, sc.e);
    let qe = q + e;

    // u, y keep the Eq. 3 indexing by t; x, v move to t' = t - r + |Q|,
    // which stays in [1, |Q|] — O(|Q|) space, as §4.3.1 notes.
    let AlignScratch {
        u,
        v,
        x,
        y,
        dir,
        cigars,
        ..
    } = scratch;
    reset_fill(u, tlen, -e as i8);
    reset_fill(y, tlen, -qe as i8);
    u[0] = -qe as i8;
    reset_fill(v, qlen + 1, -e as i8);
    reset_fill(x, qlen + 1, -qe as i8);
    v[qlen] = -qe as i8; // v(-1,0): the first-row gap opens here

    let mut dir = if with_path {
        dir.reset(tlen, qlen);
        Some(dir)
    } else {
        None
    };
    let mut tracker = Tracker::new(tlen, qlen);

    let geom = Eq4::new(tlen, qlen);
    for r in 0..geom.diagonals() {
        let (st, en) = geom.band(r);
        let mut dir_row = dir.as_deref_mut().map(|d| d.row_mut(r));
        for t in st..=en {
            let tp = geom.tprime(r, t); // Eq. 4: t' = t - r + |Q|
            let s = sc.subst(target[t], query[r - t]);
            // In-place, dependency-free updates: each slot is read once and
            // written once per diagonal.
            let (un, vn, xn, yn, d) = cell_update(
                s,
                x[tp] as i32,
                v[tp] as i32,
                y[t] as i32,
                u[t] as i32,
                q,
                qe,
            );
            u[t] = un;
            v[tp] = vn;
            x[tp] = xn;
            y[t] = yn;
            if let Some(row) = dir_row.as_deref_mut() {
                row[t - st] = d;
            }
        }
        let v_st0 = v[qlen - r.min(qlen)] as i32; // slot of t = 0 when st == 0
        let v_en = v[en + qlen - r] as i32;
        tracker.diag(r, st, en, u[st] as i32, u[en] as i32, v_st0, v_en, qe);
    }

    let (score, end_i, end_j) = tracker.finalize(mode);
    let cigar = dir.map(|d| {
        let mut c = AlignScratch::take_cigar(cigars);
        backtrack_into(d, end_i, end_j, &mut c);
        c
    });
    AlignResult {
        score,
        end_i,
        end_j,
        cigar,
        cells: tlen as u64 * qlen as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fullmatrix;
    use proptest::prelude::*;

    const SC: Scoring = Scoring::MAP_ONT;

    fn nt(s: &[u8]) -> Vec<u8> {
        mmm_seq::to_nt4(s)
    }

    const MODES: [AlignMode; 4] = [
        AlignMode::Global,
        AlignMode::SemiGlobal,
        AlignMode::TargetSuffixFree,
        AlignMode::QuerySuffixFree,
    ];

    fn check_all(t: &[u8], q: &[u8], sc: &Scoring) {
        for mode in MODES {
            let gold = fullmatrix::align(t, q, sc, mode, true);
            for (name, r) in [
                ("mm2", align_mm2(t, q, sc, mode, true)),
                ("manymap", align_manymap(t, q, sc, mode, true)),
            ] {
                assert_eq!(r.score, gold.score, "{name} score mode={mode:?}");
                assert_eq!(
                    (r.end_i, r.end_j),
                    (gold.end_i, gold.end_j),
                    "{name} end cell mode={mode:?}"
                );
                assert_eq!(r.cigar, gold.cigar, "{name} cigar mode={mode:?}");
            }
        }
    }

    #[test]
    fn tiny_cases_match_reference() {
        check_all(&nt(b"A"), &nt(b"A"), &SC);
        check_all(&nt(b"A"), &nt(b"C"), &SC);
        check_all(&nt(b"AC"), &nt(b"A"), &SC);
        check_all(&nt(b"A"), &nt(b"AC"), &SC);
        check_all(&nt(b"ACGT"), &nt(b"ACGT"), &SC);
        check_all(&nt(b"ACGTACGT"), &nt(b"ACGACGGT"), &SC);
    }

    #[test]
    fn ambiguous_bases_match_reference() {
        check_all(&nt(b"ACNNGT"), &nt(b"ACGTNN"), &SC);
    }

    #[test]
    fn asymmetric_lengths_match_reference() {
        check_all(&nt(b"ACGTACGTACGTACGTACG"), &nt(b"ACG"), &SC);
        check_all(&nt(b"ACG"), &nt(b"ACGTACGTACGTACGTACG"), &SC);
    }

    #[test]
    fn empty_inputs_match_reference() {
        for mode in MODES {
            let gold = fullmatrix::align(&nt(b"ACG"), &[], &SC, mode, true);
            assert_eq!(align_mm2(&nt(b"ACG"), &[], &SC, mode, true), gold);
            assert_eq!(
                align_manymap(&[], &nt(b"AC"), &SC, mode, true),
                fullmatrix::align(&[], &nt(b"AC"), &SC, mode, true)
            );
        }
    }

    #[test]
    fn score_only_equals_with_path_score() {
        let t = nt(b"ACGTTTACGGGACTAC");
        let q = nt(b"ACGTTACGGGCACTAC");
        for mode in MODES {
            let a = align_manymap(&t, &q, &SC, mode, false);
            let b = align_manymap(&t, &q, &SC, mode, true);
            assert_eq!(a.score, b.score);
            assert!(a.cigar.is_none());
        }
    }

    #[test]
    fn long_noisy_pair_matches_reference() {
        // Deterministic pseudo-random pair with ~12% divergence.
        let mut state = 0x12345678u64;
        let mut rnd = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as usize
        };
        let t: Vec<u8> = (0..300).map(|_| (rnd() % 4) as u8).collect();
        let mut q = t.clone();
        for _ in 0..36 {
            let pos = rnd() % q.len();
            match rnd() % 3 {
                0 => q[pos] = (rnd() % 4) as u8,
                1 => {
                    q.insert(pos, (rnd() % 4) as u8);
                }
                _ => {
                    q.remove(pos);
                }
            }
        }
        check_all(&t, &q, &SC);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn kernels_match_reference(
            t in proptest::collection::vec(0u8..5, 1..64),
            q in proptest::collection::vec(0u8..5, 1..64),
            a in 1i32..6,
            b in 0i32..8,
            gq in 0i32..10,
            ge in 1i32..6,
            mode_idx in 0usize..4,
        ) {
            let sc = Scoring { a, b, ambi: 1, q: gq, e: ge };
            prop_assume!(sc.fits_i8());
            let mode = MODES[mode_idx];
            let gold = fullmatrix::align(&t, &q, &sc, mode, true);
            let m1 = align_mm2(&t, &q, &sc, mode, true);
            let m2 = align_manymap(&t, &q, &sc, mode, true);
            prop_assert_eq!(m1.score, gold.score);
            prop_assert_eq!(m2.score, gold.score);
            prop_assert_eq!((m1.end_i, m1.end_j), (gold.end_i, gold.end_j));
            prop_assert_eq!((m2.end_i, m2.end_j), (gold.end_i, gold.end_j));
            prop_assert_eq!(m1.cigar.as_ref(), gold.cigar.as_ref());
            prop_assert_eq!(m2.cigar.as_ref(), gold.cigar.as_ref());
        }

        #[test]
        fn cigar_is_valid_and_score_consistent(
            t in proptest::collection::vec(0u8..4, 1..48),
            q in proptest::collection::vec(0u8..4, 1..48),
        ) {
            let r = align_manymap(&t, &q, &SC, AlignMode::Global, true);
            let c = r.cigar.unwrap();
            prop_assert_eq!(c.target_len(), t.len() as u64);
            prop_assert_eq!(c.query_len(), q.len() as u64);
            prop_assert_eq!(c.score(&t, &q, &SC), r.score);
        }
    }
}
