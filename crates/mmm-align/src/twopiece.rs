//! Two-piece affine gap penalties — minimap2's real long-read gap model.
//!
//! The paper presents one-piece affine gaps "for simplicity" (§3.2);
//! minimap2 itself scores a gap of length `l` as
//! `min(q + l·e, q2 + l·e2)` with a cheap-open/steep-extend piece for small
//! indels and an expensive-open/flat-extend piece for long SV-like gaps
//! (defaults `-O4,24 -E2,1`). This module carries the paper's Eq. 4
//! transformation over to the two-piece recurrence (the analogue of
//! ksw2's `extd` kernel): two extra difference arrays `x2`, `y2` with the
//! same dependency-free in-place layout, plus a 32-bit full-matrix
//! reference it is property-tested against.

use crate::cigar::{Cigar, CigarOp};
use crate::diff::{backtrack2_into, Tracker};
use crate::scratch::{reset_fill, AlignScratch};
use crate::types::{AlignMode, AlignResult};

/// Two-piece scoring: `gap(l) = min(q + l·e, q2 + l·e2)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Scoring2 {
    pub a: i32,
    pub b: i32,
    pub ambi: i32,
    /// Short-gap piece (open, extend).
    pub q: i32,
    pub e: i32,
    /// Long-gap piece: opens dearer, extends cheaper (`q2 > q`, `e2 < e`).
    pub q2: i32,
    pub e2: i32,
}

impl Scoring2 {
    /// minimap2's map-pb/map-ont long-read defaults (`-A2 -B4 -O4,24 -E2,1`).
    pub const LONG_READ: Scoring2 = Scoring2 {
        a: 2,
        b: 4,
        ambi: 1,
        q: 4,
        e: 2,
        q2: 24,
        e2: 1,
    };

    /// Substitution score between two nt4 codes.
    #[inline(always)]
    pub fn subst(&self, x: u8, y: u8) -> i32 {
        if x >= 4 || y >= 4 {
            -self.ambi
        } else if x == y {
            self.a
        } else {
            -self.b
        }
    }

    /// Two-piece gap cost (positive magnitude).
    #[inline]
    pub fn gap_cost(&self, len: u32) -> i32 {
        if len == 0 {
            return 0;
        }
        (self.q + len as i32 * self.e).min(self.q2 + len as i32 * self.e2)
    }

    /// Do all difference values fit in i8?
    pub fn fits_i8(&self) -> bool {
        let qe_max = (self.q + self.e).max(self.q2 + self.e2);
        self.a > 0
            && self.e > 0
            && self.e2 > 0
            && self.a + qe_max <= 127
            && 2 * qe_max + self.b.max(self.ambi) <= 127
    }
}

const NEG_INF: i32 = i32::MIN / 4;

/// 32-bit full-matrix two-piece reference (the gold standard).
pub fn fullmatrix2(
    target: &[u8],
    query: &[u8],
    sc: &Scoring2,
    mode: AlignMode,
    with_path: bool,
) -> AlignResult {
    let (tlen, qlen) = (target.len(), query.len());
    if tlen == 0 || qlen == 0 {
        return degenerate2(tlen, qlen, sc, mode, with_path);
    }
    let cols = qlen + 1;
    let idx = |i: usize, j: usize| i * cols + j;
    let mut h = vec![NEG_INF; (tlen + 1) * cols];
    let mut e = vec![NEG_INF; (tlen + 1) * cols];
    let mut f = vec![NEG_INF; (tlen + 1) * cols];
    let mut e2 = vec![NEG_INF; (tlen + 1) * cols];
    let mut f2 = vec![NEG_INF; (tlen + 1) * cols];

    h[idx(0, 0)] = 0;
    for i in 1..=tlen {
        h[idx(i, 0)] = -sc.gap_cost(i as u32);
    }
    for j in 1..=qlen {
        h[idx(0, j)] = -sc.gap_cost(j as u32);
    }

    for i in 1..=tlen {
        for j in 1..=qlen {
            let ev = (h[idx(i - 1, j)] - sc.q).max(e[idx(i - 1, j)]) - sc.e;
            let fv = (h[idx(i, j - 1)] - sc.q).max(f[idx(i, j - 1)]) - sc.e;
            let e2v = (h[idx(i - 1, j)] - sc.q2).max(e2[idx(i - 1, j)]) - sc.e2;
            let f2v = (h[idx(i, j - 1)] - sc.q2).max(f2[idx(i, j - 1)]) - sc.e2;
            let diag = h[idx(i - 1, j - 1)] + sc.subst(target[i - 1], query[j - 1]);
            e[idx(i, j)] = ev;
            f[idx(i, j)] = fv;
            e2[idx(i, j)] = e2v;
            f2[idx(i, j)] = f2v;
            h[idx(i, j)] = diag.max(ev).max(fv).max(e2v).max(f2v);
        }
    }

    let (score, ei, ej) = match mode {
        AlignMode::Global => (h[idx(tlen, qlen)], tlen, qlen),
        _ => {
            let mut best = (NEG_INF, tlen, qlen);
            if matches!(mode, AlignMode::SemiGlobal | AlignMode::QuerySuffixFree) {
                for j in 1..=qlen {
                    if h[idx(tlen, j)] > best.0 {
                        best = (h[idx(tlen, j)], tlen, j);
                    }
                }
            }
            if matches!(mode, AlignMode::SemiGlobal | AlignMode::TargetSuffixFree) {
                for i in 1..=tlen {
                    if h[idx(i, qlen)] > best.0 {
                        best = (h[idx(i, qlen)], i, qlen);
                    }
                }
            }
            best
        }
    };

    let cigar = with_path.then(|| {
        // Traceback by recomputation with the same preferences as the
        // difference kernel: diag > E > F > E2 > F2; gaps prefer opening.
        let mut cig = Cigar::new();
        let (mut i, mut j) = (ei, ej);
        #[derive(PartialEq, Clone, Copy)]
        enum St {
            M,
            E,
            F,
            E2,
            F2,
        }
        let mut st = St::M;
        while i > 0 && j > 0 {
            match st {
                St::M => {
                    let hv = h[idx(i, j)];
                    let diag = h[idx(i - 1, j - 1)] + sc.subst(target[i - 1], query[j - 1]);
                    if hv == diag {
                        cig.push(CigarOp::Match, 1);
                        i -= 1;
                        j -= 1;
                    } else if hv == e[idx(i, j)] {
                        st = St::E;
                    } else if hv == f[idx(i, j)] {
                        st = St::F;
                    } else if hv == e2[idx(i, j)] {
                        st = St::E2;
                    } else {
                        st = St::F2;
                    }
                }
                St::E => {
                    cig.push(CigarOp::Del, 1);
                    let open = h[idx(i - 1, j)] - sc.q - sc.e;
                    let cur = e[idx(i, j)];
                    i -= 1;
                    if cur == open {
                        st = St::M;
                    }
                }
                St::F => {
                    cig.push(CigarOp::Ins, 1);
                    let open = h[idx(i, j - 1)] - sc.q - sc.e;
                    let cur = f[idx(i, j)];
                    j -= 1;
                    if cur == open {
                        st = St::M;
                    }
                }
                St::E2 => {
                    cig.push(CigarOp::Del, 1);
                    let open = h[idx(i - 1, j)] - sc.q2 - sc.e2;
                    let cur = e2[idx(i, j)];
                    i -= 1;
                    if cur == open {
                        st = St::M;
                    }
                }
                St::F2 => {
                    cig.push(CigarOp::Ins, 1);
                    let open = h[idx(i, j - 1)] - sc.q2 - sc.e2;
                    let cur = f2[idx(i, j)];
                    j -= 1;
                    if cur == open {
                        st = St::M;
                    }
                }
            }
        }
        if i > 0 {
            cig.push(CigarOp::Del, i as u32);
        }
        if j > 0 {
            cig.push(CigarOp::Ins, j as u32);
        }
        cig.reverse();
        cig
    });

    AlignResult {
        score,
        end_i: ei - 1,
        end_j: ej - 1,
        cigar,
        cells: tlen as u64 * qlen as u64,
    }
}

fn degenerate2(
    tlen: usize,
    qlen: usize,
    sc: &Scoring2,
    mode: AlignMode,
    with_path: bool,
) -> AlignResult {
    let free_t = matches!(mode, AlignMode::SemiGlobal | AlignMode::TargetSuffixFree) && qlen == 0;
    let free_q = matches!(mode, AlignMode::SemiGlobal | AlignMode::QuerySuffixFree) && tlen == 0;
    let score = if (tlen == 0 && qlen == 0) || free_t || free_q {
        0
    } else if qlen == 0 {
        -sc.gap_cost(tlen as u32)
    } else {
        -sc.gap_cost(qlen as u32)
    };
    let cigar = with_path.then(|| {
        let mut c = Cigar::new();
        if score != 0 {
            if qlen == 0 {
                c.push(CigarOp::Del, tlen as u32);
            } else {
                c.push(CigarOp::Ins, qlen as u32);
            }
        }
        c
    });
    AlignResult {
        score,
        end_i: tlen.wrapping_sub(1),
        end_j: qlen.wrapping_sub(1),
        cigar,
        cells: 0,
    }
}

/// Two-piece difference-recurrence kernel in manymap's dependency-free
/// layout (Eq. 4 + the `x2`/`y2` arrays).
pub fn align_manymap_2p(
    target: &[u8],
    query: &[u8],
    sc: &Scoring2,
    mode: AlignMode,
    with_path: bool,
) -> AlignResult {
    align_manymap_2p_with_scratch(target, query, sc, mode, with_path, &mut AlignScratch::new())
}

/// [`align_manymap_2p`] with caller-provided buffers.
pub fn align_manymap_2p_with_scratch(
    target: &[u8],
    query: &[u8],
    sc: &Scoring2,
    mode: AlignMode,
    with_path: bool,
    scratch: &mut AlignScratch,
) -> AlignResult {
    let (tlen, qlen) = (target.len(), query.len());
    if tlen == 0 || qlen == 0 {
        return degenerate2(tlen, qlen, sc, mode, with_path);
    }
    assert!(sc.fits_i8(), "two-piece parameters must satisfy fits_i8()");
    let g = |n: usize| sc.gap_cost(n as u32);
    let (q1, e1, q2, e2) = (sc.q, sc.e, sc.q2, sc.e2);
    let (qe1, qe2) = (q1 + e1, q2 + e2);

    // u, y, y2 indexed by t; v, x, x2 indexed by t' = t − r + |Q|.
    // Boundary deltas now follow the two-piece gap function g(·).
    let AlignScratch {
        u,
        v,
        x,
        y,
        x2,
        y2,
        dir,
        cigars,
        ..
    } = scratch;
    u.clear();
    u.extend((0..tlen).map(|t| -(g(t + 1) - g(t)) as i8));
    reset_fill(y, tlen, -qe1 as i8);
    reset_fill(y2, tlen, -qe2 as i8);
    v.clear();
    v.extend((0..=qlen).map(|k| {
        let j = qlen - k; // slot k is first read as v(-1, j)
        -(g(j + 1) - g(j)) as i8
    }));
    reset_fill(x, qlen + 1, -qe1 as i8);
    reset_fill(x2, qlen + 1, -qe2 as i8);

    let mut dir = if with_path {
        dir.reset(tlen, qlen);
        Some(dir)
    } else {
        None
    };
    let mut tracker = Tracker::new(tlen, qlen);

    for r in 0..tlen + qlen - 1 {
        let st = r.saturating_sub(qlen - 1);
        let en = r.min(tlen - 1);
        let off = st + qlen - r;
        let mut dir_row = dir.as_mut().map(|d| d.row_mut(r));
        for t in st..=en {
            let tp = t - st + off;
            let s = sc.subst(target[t], query[r - t]);
            let (vt, ut) = (v[tp] as i32, u[t] as i32);
            let a1 = x[tp] as i32 + vt;
            let b1 = y[t] as i32 + ut;
            let a2 = x2[tp] as i32 + vt;
            let b2 = y2[t] as i32 + ut;
            let mut z = s;
            let mut src = 0u8;
            if a1 > z {
                z = a1;
                src = 1;
            }
            if b1 > z {
                z = b1;
                src = 2;
            }
            if a2 > z {
                z = a2;
                src = 3;
            }
            if b2 > z {
                z = b2;
                src = 4;
            }
            let xt = a1 - z + q1;
            let yt = b1 - z + q1;
            let xt2 = a2 - z + q2;
            let yt2 = b2 - z + q2;
            if xt > 0 {
                src |= 8;
            }
            if yt > 0 {
                src |= 16;
            }
            if xt2 > 0 {
                src |= 32;
            }
            if yt2 > 0 {
                src |= 64;
            }
            u[t] = (z - vt) as i8;
            v[tp] = (z - ut) as i8;
            x[tp] = (xt.max(0) - qe1) as i8;
            y[t] = (yt.max(0) - qe1) as i8;
            x2[tp] = (xt2.max(0) - qe2) as i8;
            y2[t] = (yt2.max(0) - qe2) as i8;
            if let Some(row) = dir_row.as_deref_mut() {
                row[t - st] = src;
            }
        }
        let v_st0 = v[qlen - r.min(qlen)] as i32;
        let v_en = v[en + qlen - r] as i32;
        tracker.diag(r, st, en, u[st] as i32, u[en] as i32, v_st0, v_en, g(1));
    }

    let (score, end_i, end_j) = tracker.finalize(mode);
    let cigar = dir.map(|d| {
        let mut c = AlignScratch::take_cigar(cigars);
        backtrack2_into(d, end_i, end_j, &mut c);
        c
    });
    AlignResult {
        score,
        end_i,
        end_j,
        cigar,
        cells: tlen as u64 * qlen as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    const SC: Scoring2 = Scoring2::LONG_READ;

    fn nt(s: &[u8]) -> Vec<u8> {
        mmm_seq::to_nt4(s)
    }

    #[test]
    fn gap_cost_is_the_min_of_two_pieces() {
        // Crossover at l = (q2-q)/(e-e2) = 20.
        assert_eq!(SC.gap_cost(1), 6);
        assert_eq!(SC.gap_cost(19), 42);
        assert_eq!(SC.gap_cost(20), 44);
        assert_eq!(SC.gap_cost(21), 45); // long piece takes over
        assert_eq!(SC.gap_cost(100), 124);
        // One-piece would charge 204 for the 100-gap.
        assert!(SC.gap_cost(100) < 4 + 100 * 2);
    }

    #[test]
    fn long_deletions_are_cheaper_than_one_piece() {
        // 60-base deletion: two-piece must recover the flanks with one gap.
        let mut t = nt(b"ACGTACGTACGTACGTACGTACGT");
        let insertion: Vec<u8> = (0..60).map(|i| ((i * 7 + 1) % 4) as u8).collect();
        t.splice(12..12, insertion);
        let q = nt(b"ACGTACGTACGTACGTACGTACGT");
        let r = align_manymap_2p(&t, &q, &SC, AlignMode::Global, true);
        let gold = fullmatrix2(&t, &q, &SC, AlignMode::Global, true);
        assert_eq!(r.score, gold.score);
        assert_eq!(r.score, 48 - SC.gap_cost(60));
        let c = r.cigar.unwrap();
        assert_eq!(c.target_len(), t.len() as u64);
        assert_eq!(c.query_len(), q.len() as u64);
    }

    #[test]
    fn matches_reference_on_small_cases() {
        for (t, q) in [
            (nt(b"ACGT"), nt(b"ACGT")),
            (nt(b"ACGTACGTA"), nt(b"ACGA")),
            (nt(b"AC"), nt(b"ACGTACGTACGTACGTACGTACGTACGT")),
        ] {
            for mode in [AlignMode::Global, AlignMode::SemiGlobal] {
                let a = align_manymap_2p(&t, &q, &SC, mode, false);
                let b = fullmatrix2(&t, &q, &SC, mode, false);
                assert_eq!(a.score, b.score, "mode {mode:?}");
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(40))]

        #[test]
        fn two_piece_kernel_matches_reference(
            t in proptest::collection::vec(0u8..5, 1..70),
            q in proptest::collection::vec(0u8..5, 1..70),
            mode_idx in 0usize..4,
        ) {
            let mode = [
                AlignMode::Global,
                AlignMode::SemiGlobal,
                AlignMode::TargetSuffixFree,
                AlignMode::QuerySuffixFree,
            ][mode_idx];
            let a = align_manymap_2p(&t, &q, &SC, mode, true);
            let b = fullmatrix2(&t, &q, &SC, mode, true);
            prop_assert_eq!(a.score, b.score);
            prop_assert_eq!((a.end_i, a.end_j), (b.end_i, b.end_j));
            prop_assert_eq!(a.cigar, b.cigar);
        }

        #[test]
        fn two_piece_never_scores_below_one_piece_with_same_short_gap(
            t in proptest::collection::vec(0u8..4, 1..60),
            q in proptest::collection::vec(0u8..4, 1..60),
        ) {
            // The two-piece model is gap(l) = min(short, long), so its
            // optimum can only be ≥ the pure one-piece optimum.
            let one = crate::scalar::align_manymap(
                &t, &q,
                &crate::score::Scoring { a: 2, b: 4, ambi: 1, q: 4, e: 2 },
                AlignMode::Global, false,
            );
            let two = align_manymap_2p(&t, &q, &SC, AlignMode::Global, false);
            prop_assert!(two.score >= one.score);
        }
    }
}
