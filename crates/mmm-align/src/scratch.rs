//! Reusable allocation arena for the alignment hot path.
//!
//! Every kernel variant needs the same working set per call: the `u/v/x/y`
//! difference vectors (plus `x2/y2` for two-piece gaps), the reversed query
//! for diagonal-contiguous SIMD loads, the 32-bit exact-score column for
//! z-drop extension, the quadratic [`DirMatrix`] for with-path alignment,
//! and a run-length CIGAR. The paper charges the DP itself as the dominant
//! cost (65% of CPU time, Table 2) — paying a fresh heap allocation for each
//! of these on *every* `align` call is pure overhead, and exactly what
//! minimap2 avoids with its per-thread kmalloc pools.
//!
//! [`AlignScratch`] owns all of those buffers grow-only: a kernel entered
//! through a `*_with_scratch` entry point resizes (never shrinks) the
//! buffers it needs, so after one warm-up call at the largest problem size
//! every subsequent call performs **zero heap allocations** (enforced by the
//! `alloc_count` integration test with a counting global allocator). One
//! scratch per worker thread is the intended usage — `mmm-pipeline`'s
//! `WorkerPool` builds one per worker via its state factory.

use crate::cigar::Cigar;
use crate::diff::DirMatrix;

/// Grow-only buffer set threaded through every `*_with_scratch` kernel.
///
/// Buffers are plain `Vec`s reused across calls; their contents between
/// calls are unspecified (each kernel re-initializes what it uses). Create
/// one per worker thread and pass it to repeated align calls:
///
/// ```
/// use mmm_align::{best_engine, AlignMode, AlignScratch, Scoring};
/// let t = mmm_seq::to_nt4(b"ACGTACGT");
/// let mut scratch = AlignScratch::new();
/// let e = best_engine();
/// for _ in 0..4 {
///     let r = e.align_with_scratch(&t, &t, &Scoring::MAP_ONT, AlignMode::Global, true, &mut scratch);
///     assert_eq!(r.score, 16);
///     scratch.recycle(r.cigar.unwrap()); // optional: reuse the CIGAR storage too
/// }
/// ```
#[derive(Default)]
pub struct AlignScratch {
    /// `u` differences, indexed by `t` (length `|T|`).
    pub(crate) u: Vec<i8>,
    /// `v` differences (`|T|` for Eq. 3, `|Q|+1` for Eq. 4).
    pub(crate) v: Vec<i8>,
    /// `x` differences (same sizing as `v`).
    pub(crate) x: Vec<i8>,
    /// `y` differences, indexed by `t`.
    pub(crate) y: Vec<i8>,
    /// Second-piece `x` for two-piece affine gaps.
    pub(crate) x2: Vec<i8>,
    /// Second-piece `y` for two-piece affine gaps.
    pub(crate) y2: Vec<i8>,
    /// Exact 32-bit scores per target row (z-drop extension); also the `H`
    /// band of the banded aligner.
    pub(crate) h32: Vec<i32>,
    /// `E` band of the banded aligner.
    pub(crate) e32: Vec<i32>,
    /// `F` band of the banded aligner.
    pub(crate) f32: Vec<i32>,
    /// Reversed query for diagonal-contiguous access.
    pub(crate) qr: Vec<u8>,
    /// Direction-matrix backing store for with-path alignment.
    pub(crate) dir: DirMatrix,
    /// Recycled CIGAR storage, handed out to with-path calls.
    pub(crate) cigars: Vec<Cigar>,
}

impl AlignScratch {
    /// An empty arena; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Return a CIGAR produced by an earlier with-path call so its storage
    /// is reused by the next one.
    pub fn recycle(&mut self, mut cigar: Cigar) {
        cigar.clear();
        self.cigars.push(cigar);
    }

    /// A cleared CIGAR from the recycle pool (or a fresh one).
    pub(crate) fn take_cigar(cigars: &mut Vec<Cigar>) -> Cigar {
        cigars.pop().unwrap_or_default()
    }

    /// Total bytes currently held by the arena's buffers.
    pub fn heap_bytes(&self) -> usize {
        self.u.capacity()
            + self.v.capacity()
            + self.x.capacity()
            + self.y.capacity()
            + self.x2.capacity()
            + self.y2.capacity()
            + (self.h32.capacity() + self.e32.capacity() + self.f32.capacity())
                * std::mem::size_of::<i32>()
            + self.qr.capacity()
            + self.dir.heap_bytes()
    }
}

/// Re-initialize `buf` to `len` copies of `fill` without shrinking its
/// capacity: the single allocation-free primitive behind every buffer reuse
/// in the kernels.
#[inline]
pub(crate) fn reset_fill<T: Copy>(buf: &mut Vec<T>, len: usize, fill: T) {
    buf.clear();
    buf.resize(len, fill);
}

/// Refill `qr` with the reversed query, giving diagonal-contiguous access:
/// `query[r - t] == qr[t + (qlen - 1 - r)]`.
#[inline]
pub(crate) fn reverse_query_into(query: &[u8], qr: &mut Vec<u8>) {
    qr.clear();
    qr.extend(query.iter().rev());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reset_fill_reuses_capacity() {
        let mut b: Vec<i8> = Vec::new();
        reset_fill(&mut b, 100, -3);
        assert!(b.iter().all(|&x| x == -3));
        let cap = b.capacity();
        let ptr = b.as_ptr();
        reset_fill(&mut b, 60, 7);
        assert_eq!(b.len(), 60);
        assert!(b.iter().all(|&x| x == 7));
        assert_eq!(b.capacity(), cap);
        assert_eq!(b.as_ptr(), ptr);
    }

    #[test]
    fn reverse_query_into_matches_identity() {
        let q = [0u8, 1, 2, 3, 3, 1];
        let mut qr = Vec::new();
        reverse_query_into(&q, &mut qr);
        let qlen = q.len();
        for r in 0..qlen {
            for t in 0..=r {
                assert_eq!(q[r - t], qr[t + (qlen - 1 - r)]);
            }
        }
    }

    #[test]
    fn cigar_recycling_round_trips() {
        let mut s = AlignScratch::new();
        let mut c = Cigar::new();
        c.push(crate::cigar::CigarOp::Match, 5);
        s.recycle(c);
        let c2 = AlignScratch::take_cigar(&mut s.cigars);
        assert!(c2.is_empty());
        assert!(AlignScratch::take_cigar(&mut s.cigars).is_empty()); // pool empty -> fresh
    }
}
