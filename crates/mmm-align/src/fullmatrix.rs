//! Full-matrix affine-gap alignment — the gold reference.
//!
//! A direct, unoptimized implementation of Equation (1) with 32-bit scores
//! and complete `H`/`E`/`F` matrices. Every difference-recurrence kernel
//! (scalar and SIMD, both memory layouts) is property-tested against this
//! implementation for bit-identical scores and CIGARs.
//!
//! Boundary conditions (also the ones the difference kernels encode):
//!
//! * `H(-1,-1) = 0`, `H(i,-1) = -(q+(i+1)e)`, `H(-1,j) = -(q+(j+1)e)`;
//! * `E(0,j) = H(-1,j) - q - e`, `F(i,0) = H(i,-1) - q - e`.
//!
//! Tie-breaking matches the kernels: on equal scores prefer the diagonal,
//! then `E` (gap in query / `D`), then `F` (gap in read / `I`); inside a gap
//! prefer *opening* over continuation on ties.

use crate::cigar::{Cigar, CigarOp};
use crate::score::Scoring;
use crate::types::{AlignMode, AlignResult};

const NEG_INF: i32 = i32::MIN / 4;

/// Full-matrix aligner holding the three score matrices.
struct Matrices {
    h: Vec<i32>,
    e: Vec<i32>,
    f: Vec<i32>,
    cols: usize, // |Q| + 1
}

impl Matrices {
    #[inline]
    fn idx(&self, i1: usize, j1: usize) -> usize {
        i1 * self.cols + j1
    }
}

/// Align `target` against `query` (both nt4) and return score, end cell and
/// (when `with_path`) the CIGAR.
pub fn align(
    target: &[u8],
    query: &[u8],
    sc: &Scoring,
    mode: AlignMode,
    with_path: bool,
) -> AlignResult {
    let (tlen, qlen) = (target.len(), query.len());
    if tlen == 0 || qlen == 0 {
        return degenerate(tlen, qlen, sc, mode, with_path);
    }
    let cols = qlen + 1;
    let mut m = Matrices {
        h: vec![NEG_INF; (tlen + 1) * cols],
        e: vec![NEG_INF; (tlen + 1) * cols],
        f: vec![NEG_INF; (tlen + 1) * cols],
        cols,
    };

    // Boundaries.
    let origin = m.idx(0, 0);
    m.h[origin] = 0;
    for i in 1..=tlen {
        let id = m.idx(i, 0);
        m.h[id] = -sc.gap_cost(i as u32);
    }
    for j in 1..=qlen {
        let id = m.idx(0, j);
        m.h[id] = -sc.gap_cost(j as u32);
    }

    for i in 1..=tlen {
        for j in 1..=qlen {
            let e = (m.h[m.idx(i - 1, j)] - sc.q).max(m.e[m.idx(i - 1, j)]) - sc.e;
            let f = (m.h[m.idx(i, j - 1)] - sc.q).max(m.f[m.idx(i, j - 1)]) - sc.e;
            let diag = m.h[m.idx(i - 1, j - 1)] + sc.subst(target[i - 1], query[j - 1]);
            let id = m.idx(i, j);
            m.e[id] = e;
            m.f[id] = f;
            m.h[id] = diag.max(e).max(f);
        }
    }

    // Locate the end cell per mode.
    let (score, ei1, ej1) = match mode {
        AlignMode::Global => (m.h[m.idx(tlen, qlen)], tlen, qlen),
        AlignMode::SemiGlobal => {
            let mut best = (NEG_INF, tlen, qlen);
            for j in 1..=qlen {
                let v = m.h[m.idx(tlen, j)];
                if v > best.0 {
                    best = (v, tlen, j);
                }
            }
            for i in 1..=tlen {
                let v = m.h[m.idx(i, qlen)];
                if v > best.0 {
                    best = (v, i, qlen);
                }
            }
            best
        }
        AlignMode::TargetSuffixFree => {
            let mut best = (NEG_INF, tlen, qlen);
            for i in 1..=tlen {
                let v = m.h[m.idx(i, qlen)];
                if v > best.0 {
                    best = (v, i, qlen);
                }
            }
            best
        }
        AlignMode::QuerySuffixFree => {
            let mut best = (NEG_INF, tlen, qlen);
            for j in 1..=qlen {
                let v = m.h[m.idx(tlen, j)];
                if v > best.0 {
                    best = (v, tlen, j);
                }
            }
            best
        }
    };

    let cigar = with_path.then(|| backtrack(&m, target, query, sc, ei1, ej1));

    AlignResult {
        score,
        end_i: ei1 - 1,
        end_j: ej1 - 1,
        cigar,
        cells: tlen as u64 * qlen as u64,
    }
}

/// Handle empty-sequence corner cases without touching the matrices.
fn degenerate(
    tlen: usize,
    qlen: usize,
    sc: &Scoring,
    mode: AlignMode,
    with_path: bool,
) -> AlignResult {
    // With one side empty the only path is a single gap (or nothing).
    let free_target_end =
        matches!(mode, AlignMode::SemiGlobal | AlignMode::TargetSuffixFree) && qlen == 0;
    let free_query_end =
        matches!(mode, AlignMode::SemiGlobal | AlignMode::QuerySuffixFree) && tlen == 0;
    let score = if (tlen == 0 && qlen == 0) || free_target_end || free_query_end {
        0
    } else if qlen == 0 {
        -sc.gap_cost(tlen as u32)
    } else {
        -sc.gap_cost(qlen as u32)
    };
    let cigar = with_path.then(|| {
        let mut c = Cigar::new();
        if score != 0 {
            if qlen == 0 {
                c.push(CigarOp::Del, tlen as u32);
            } else {
                c.push(CigarOp::Ins, qlen as u32);
            }
        }
        c
    });
    AlignResult {
        score,
        end_i: tlen.wrapping_sub(1),
        end_j: qlen.wrapping_sub(1),
        cigar,
        cells: 0,
    }
}

#[derive(Clone, Copy, PartialEq)]
enum State {
    M,
    E,
    F,
}

fn backtrack(
    m: &Matrices,
    target: &[u8],
    query: &[u8],
    sc: &Scoring,
    mut i: usize,
    mut j: usize,
) -> Cigar {
    let mut cig = Cigar::new();
    let mut state = State::M;
    while i > 0 && j > 0 {
        match state {
            State::M => {
                let h = m.h[m.idx(i, j)];
                let diag = m.h[m.idx(i - 1, j - 1)] + sc.subst(target[i - 1], query[j - 1]);
                if h == diag {
                    cig.push(CigarOp::Match, 1);
                    i -= 1;
                    j -= 1;
                } else if h == m.e[m.idx(i, j)] {
                    state = State::E;
                } else {
                    debug_assert_eq!(h, m.f[m.idx(i, j)]);
                    state = State::F;
                }
            }
            State::E => {
                // E(i,j) = max(H(i-1,j) - q, E(i-1,j)) - e; prefer open on tie.
                cig.push(CigarOp::Del, 1);
                let e = m.e[m.idx(i, j)];
                let open = m.h[m.idx(i - 1, j)] - sc.q - sc.e;
                i -= 1;
                if e == open {
                    state = State::M;
                }
            }
            State::F => {
                cig.push(CigarOp::Ins, 1);
                let f = m.f[m.idx(i, j)];
                let open = m.h[m.idx(i, j - 1)] - sc.q - sc.e;
                j -= 1;
                if f == open {
                    state = State::M;
                }
            }
        }
    }
    // Leading boundary gaps.
    if i > 0 {
        cig.push(CigarOp::Del, i as u32);
    }
    if j > 0 {
        cig.push(CigarOp::Ins, j as u32);
    }
    cig.reverse();
    cig
}

#[cfg(test)]
mod tests {
    use super::*;

    const SC: Scoring = Scoring::MAP_ONT; // a=2 b=4 q=4 e=2

    fn nt(s: &[u8]) -> Vec<u8> {
        mmm_seq::to_nt4(s)
    }

    #[test]
    fn identical_sequences_score_perfectly() {
        let t = nt(b"ACGTACGT");
        let r = align(&t, &t, &SC, AlignMode::Global, true);
        assert_eq!(r.score, 16);
        assert_eq!(r.cigar.unwrap().to_string(), "8M");
    }

    #[test]
    fn single_mismatch() {
        let t = nt(b"ACGTACGT");
        let q = nt(b"ACGAACGT");
        let r = align(&t, &q, &SC, AlignMode::Global, true);
        assert_eq!(r.score, 14 - 4);
        assert_eq!(r.cigar.unwrap().to_string(), "8M");
    }

    #[test]
    fn single_deletion() {
        let t = nt(b"ACGTACGT");
        let q = nt(b"ACGACGT"); // T deleted
        let r = align(&t, &q, &SC, AlignMode::Global, true);
        assert_eq!(r.score, 14 - 6);
        let c = r.cigar.unwrap();
        assert_eq!(c.target_len(), 8);
        assert_eq!(c.query_len(), 7);
        assert_eq!(c.score(&t, &q, &SC), r.score);
    }

    #[test]
    fn single_insertion() {
        let t = nt(b"ACGACGT");
        let q = nt(b"ACGTACGT");
        let r = align(&t, &q, &SC, AlignMode::Global, true);
        assert_eq!(r.score, 14 - 6);
        let c = r.cigar.unwrap();
        assert_eq!(c.score(&t, &q, &SC), r.score);
    }

    #[test]
    fn affine_gap_prefers_one_long_gap() {
        // Two separate 1-gaps cost 2(q+e)=12; one 2-gap costs q+2e=8.
        let t = nt(b"AAAACCAAAA");
        let q = nt(b"AAAAAAAA");
        let r = align(&t, &q, &SC, AlignMode::Global, true);
        assert_eq!(r.score, 16 - 8);
        assert_eq!(r.cigar.unwrap().to_string(), "4M2D4M");
    }

    #[test]
    fn cigar_score_matches_reported_score() {
        let t = nt(b"ACGTTTACGGGACT");
        let q = nt(b"ACGTTACGGGCACT");
        for mode in [AlignMode::Global, AlignMode::SemiGlobal] {
            let r = align(&t, &q, &SC, mode, true);
            let c = r.cigar.unwrap();
            assert_eq!(c.score(&t, &q, &SC), r.score, "{mode:?}");
        }
    }

    #[test]
    fn semiglobal_trims_target_suffix() {
        let t = nt(b"ACGTACGTTTTTTTTT");
        let q = nt(b"ACGTACGT");
        let r = align(&t, &q, &SC, AlignMode::SemiGlobal, true);
        assert_eq!(r.score, 16);
        assert_eq!(r.end_i, 7);
        assert_eq!(r.end_j, 7);
        assert_eq!(r.cigar.unwrap().to_string(), "8M");
    }

    #[test]
    fn target_suffix_free_requires_full_query() {
        let t = nt(b"ACGTAAAAAAA");
        let q = nt(b"ACGTGG");
        let r = align(&t, &q, &SC, AlignMode::TargetSuffixFree, true);
        // Query must be consumed, so the GG must be aligned (mismatches or
        // insertions), unlike SemiGlobal which would stop at 4M.
        assert_eq!(r.end_j, 5);
        assert!(r.score < 12);
        assert_eq!(r.cigar.unwrap().query_len(), 6);
    }

    #[test]
    fn query_suffix_free_requires_full_target() {
        let t = nt(b"ACGT");
        let q = nt(b"ACGTGGGGGG");
        let r = align(&t, &q, &SC, AlignMode::QuerySuffixFree, true);
        assert_eq!(r.score, 8);
        assert_eq!(r.end_i, 3);
        assert_eq!(r.end_j, 3);
    }

    #[test]
    fn ambiguous_bases_use_ambi_penalty() {
        let t = nt(b"ACNT");
        let q = nt(b"ACGT");
        let r = align(&t, &q, &SC, AlignMode::Global, false);
        assert_eq!(r.score, 6 - 1);
    }

    #[test]
    fn empty_query_is_one_deletion() {
        let t = nt(b"ACGT");
        let r = align(&t, &[], &SC, AlignMode::Global, true);
        assert_eq!(r.score, -(4 + 4 * 2));
        assert_eq!(r.cigar.unwrap().to_string(), "4D");
    }

    #[test]
    fn empty_both_is_zero() {
        let r = align(&[], &[], &SC, AlignMode::Global, true);
        assert_eq!(r.score, 0);
        assert!(r.cigar.unwrap().is_empty());
    }

    #[test]
    fn empty_query_semiglobal_free() {
        let r = align(&nt(b"ACGT"), &[], &SC, AlignMode::SemiGlobal, false);
        assert_eq!(r.score, 0);
    }

    #[test]
    fn global_equals_semiglobal_when_corner_is_best() {
        let t = nt(b"ACGTACGT");
        let g = align(&t, &t, &SC, AlignMode::Global, false);
        let s = align(&t, &t, &SC, AlignMode::SemiGlobal, false);
        assert_eq!(g.score, s.score);
    }
}
