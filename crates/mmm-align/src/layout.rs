//! The Equation 4 anti-diagonal coordinate transform, in one place.
//!
//! The manymap layout walks the DP matrix by anti-diagonals `r = t + q` and
//! stores the query-indexed difference vectors at the shifted column
//!
//! ```text
//! t' = t - r + |Q|        (Eq. 4)
//! ```
//!
//! so that consecutive `t` on one diagonal touch consecutive `t'` slots and
//! the intra-diagonal dependency of minimap2's layout (Eq. 3) disappears.
//! Every kernel — scalar, SSE, AVX2, AVX-512 — walks the same geometry;
//! this module is the single audited definition of that geometry, so the
//! index arithmetic scattered through the kernels can be checked (and
//! property-tested) once.
//!
//! Invariants, each enforced by a property test below over band widths 1,
//! 2 and `|Q|`:
//!
//! * round-trip: `t_of(r, tprime(r, t)) == t` for every in-band `(r, t)`;
//! * range: `tprime` maps the band of diagonal `r` into `1..=|Q|`;
//! * contiguity: `tprime(r, t + 1) == tprime(r, t) + 1` (vector loads are
//!   unit-stride);
//! * coverage: the bands of all `tlen + qlen - 1` diagonals partition the
//!   `tlen × qlen` cell set.

/// Anti-diagonal addressing for a `tlen × qlen` DP matrix (both non-zero;
/// the kernels return early on empty inputs before building one of these).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Eq4 {
    tlen: usize,
    qlen: usize,
}

impl Eq4 {
    /// Addressing for a `tlen × qlen` matrix.
    #[inline]
    pub fn new(tlen: usize, qlen: usize) -> Self {
        debug_assert!(tlen > 0 && qlen > 0, "empty matrices have no diagonals");
        Eq4 { tlen, qlen }
    }

    /// Number of anti-diagonals: `r` ranges over `0..diagonals()`.
    #[inline]
    pub fn diagonals(self) -> usize {
        self.tlen + self.qlen - 1
    }

    /// The in-band target range `(st, en)` of diagonal `r`: cells
    /// `(t, r - t)` for `t` in `st..=en` are exactly the matrix cells on
    /// the diagonal.
    #[inline]
    pub fn band(self, r: usize) -> (usize, usize) {
        debug_assert!(r < self.diagonals());
        (r.saturating_sub(self.qlen - 1), r.min(self.tlen - 1))
    }

    /// Eq. 4: the shifted column `t' = t - r + |Q|` of in-band cell
    /// `(r, t)`. Computed add-first so it never underflows `usize`.
    #[inline]
    pub fn tprime(self, r: usize, t: usize) -> usize {
        debug_assert!({
            let (st, en) = self.band(r);
            (st..=en).contains(&t)
        });
        t + self.qlen - r
    }

    /// Inverse of [`Eq4::tprime`]: the target index of shifted column `tp`
    /// on diagonal `r`.
    #[inline]
    pub fn t_of(self, r: usize, tp: usize) -> usize {
        debug_assert!((1..=self.qlen).contains(&tp));
        tp + r - self.qlen
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Check every documented invariant over the full diagonal sweep.
    fn check_all_invariants(tlen: usize, qlen: usize) {
        let g = Eq4::new(tlen, qlen);
        assert_eq!(g.diagonals(), tlen + qlen - 1);
        let mut cells = 0usize;
        for r in 0..g.diagonals() {
            let (st, en) = g.band(r);
            assert!(st <= en, "band of r={r} is non-empty");
            assert!(en - st < tlen.min(qlen), "band width bounded");
            let mut prev_tp = None;
            for t in st..=en {
                // The cell is really in the matrix.
                let q = r - t;
                assert!(t < tlen && q < qlen, "(r={r}, t={t})");
                cells += 1;
                let tp = g.tprime(r, t);
                // Range: Eq. 4 lands in 1..=qlen.
                assert!((1..=qlen).contains(&tp), "t'={tp} out of range");
                // Round-trip.
                assert_eq!(g.t_of(r, tp), t, "round-trip at (r={r}, t={t})");
                // Contiguity: unit stride along the diagonal.
                if let Some(p) = prev_tp {
                    assert_eq!(tp, p + 1, "stride at (r={r}, t={t})");
                }
                prev_tp = Some(tp);
            }
        }
        // Coverage: the diagonals partition the matrix.
        assert_eq!(cells, tlen * qlen);
    }

    #[test]
    fn matches_the_kernels_inline_arithmetic() {
        // The kernels compute `off = st + qlen - r; tp = t - st + off`.
        // Eq4::tprime must be that exact value.
        for (tlen, qlen) in [(7usize, 5usize), (5, 7), (1, 9), (9, 1), (4, 4)] {
            let g = Eq4::new(tlen, qlen);
            for r in 0..g.diagonals() {
                let (st, en) = g.band(r);
                let off = st + qlen - r;
                for t in st..=en {
                    assert_eq!(g.tprime(r, t), t - st + off);
                }
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        // Band width 1: a single-column query (every diagonal holds one
        // cell on the query axis).
        #[test]
        fn roundtrips_at_band_width_one(tlen in 1usize..80) {
            check_all_invariants(tlen, 1);
            check_all_invariants(1, tlen); // and the single-row transpose
        }

        // Band width 2.
        #[test]
        fn roundtrips_at_band_width_two(tlen in 2usize..80) {
            check_all_invariants(tlen, 2);
            check_all_invariants(2, tlen);
        }

        // Full band |Q|: arbitrary rectangles, including squares, where
        // interior diagonals reach the maximum width min(|T|, |Q|).
        #[test]
        fn roundtrips_at_full_band(tlen in 1usize..48, qlen in 1usize..48) {
            check_all_invariants(tlen, qlen);
        }
    }
}
