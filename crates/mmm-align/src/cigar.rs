//! CIGAR strings — the with-path alignment output.

use std::fmt;

/// One CIGAR operation kind.
///
/// Conventions follow SAM/minimap2 with *query* = read and *target* =
/// reference: `M` consumes both, `I` consumes query only (insertion in the
/// read), `D` consumes target only (deletion from the read), `S` soft-clips
/// query bases.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CigarOp {
    Match,
    Ins,
    Del,
    SoftClip,
}

impl CigarOp {
    /// SAM character for this op.
    pub fn ch(self) -> char {
        match self {
            CigarOp::Match => 'M',
            CigarOp::Ins => 'I',
            CigarOp::Del => 'D',
            CigarOp::SoftClip => 'S',
        }
    }

    /// Does this op consume a query base?
    pub fn consumes_query(self) -> bool {
        matches!(self, CigarOp::Match | CigarOp::Ins | CigarOp::SoftClip)
    }

    /// Does this op consume a target base?
    pub fn consumes_target(self) -> bool {
        matches!(self, CigarOp::Match | CigarOp::Del)
    }
}

/// A run-length encoded CIGAR.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Cigar {
    ops: Vec<(CigarOp, u32)>,
}

impl Cigar {
    /// Empty CIGAR.
    pub fn new() -> Self {
        Cigar::default()
    }

    /// Append `len` copies of `op`, merging with the tail run when equal.
    pub fn push(&mut self, op: CigarOp, len: u32) {
        if len == 0 {
            return;
        }
        if let Some(last) = self.ops.last_mut() {
            if last.0 == op {
                last.1 += len;
                return;
            }
        }
        self.ops.push((op, len));
    }

    /// Append another CIGAR, merging at the junction.
    pub fn extend(&mut self, other: &Cigar) {
        for &(op, len) in &other.ops {
            self.push(op, len);
        }
    }

    /// Reverse the run order in place (used after backtracking, which emits
    /// operations end-to-start).
    pub fn reverse(&mut self) {
        self.ops.reverse();
    }

    /// Remove all runs, keeping the allocation (so the storage can be
    /// recycled through [`crate::AlignScratch`]).
    pub fn clear(&mut self) {
        self.ops.clear();
    }

    /// The runs.
    pub fn runs(&self) -> &[(CigarOp, u32)] {
        &self.ops
    }

    /// True when no operations are stored.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Total query bases consumed.
    pub fn query_len(&self) -> u64 {
        self.ops
            .iter()
            .filter(|(op, _)| op.consumes_query())
            .map(|&(_, l)| l as u64)
            .sum()
    }

    /// Total target bases consumed.
    pub fn target_len(&self) -> u64 {
        self.ops
            .iter()
            .filter(|(op, _)| op.consumes_target())
            .map(|&(_, l)| l as u64)
            .sum()
    }

    /// Number of `M` bases.
    pub fn match_len(&self) -> u64 {
        self.ops
            .iter()
            .filter(|(op, _)| *op == CigarOp::Match)
            .map(|&(_, l)| l as u64)
            .sum()
    }

    /// Re-derive the alignment score of this CIGAR against the given
    /// sequences (nt4). Soft clips score zero. Used to cross-check kernels.
    pub fn score(&self, target: &[u8], query: &[u8], sc: &crate::score::Scoring) -> i32 {
        let (mut i, mut j) = (0usize, 0usize);
        let mut total = 0i32;
        for &(op, len) in &self.ops {
            match op {
                CigarOp::Match => {
                    for _ in 0..len {
                        total += sc.subst(target[i], query[j]);
                        i += 1;
                        j += 1;
                    }
                }
                CigarOp::Del => {
                    total -= sc.gap_cost(len);
                    i += len as usize;
                }
                CigarOp::Ins => {
                    total -= sc.gap_cost(len);
                    j += len as usize;
                }
                CigarOp::SoftClip => j += len as usize,
            }
        }
        total
    }
}

impl fmt::Display for Cigar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.ops.is_empty() {
            return write!(f, "*");
        }
        for &(op, len) in &self.ops {
            write!(f, "{}{}", len, op.ch())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::score::Scoring;

    #[test]
    fn push_merges_runs() {
        let mut c = Cigar::new();
        c.push(CigarOp::Match, 3);
        c.push(CigarOp::Match, 2);
        c.push(CigarOp::Ins, 1);
        c.push(CigarOp::Ins, 0); // no-op
        assert_eq!(c.runs(), &[(CigarOp::Match, 5), (CigarOp::Ins, 1)]);
        assert_eq!(c.to_string(), "5M1I");
    }

    #[test]
    fn lengths() {
        let mut c = Cigar::new();
        c.push(CigarOp::SoftClip, 2);
        c.push(CigarOp::Match, 10);
        c.push(CigarOp::Del, 3);
        c.push(CigarOp::Ins, 1);
        assert_eq!(c.query_len(), 13);
        assert_eq!(c.target_len(), 13);
        assert_eq!(c.match_len(), 10);
    }

    #[test]
    fn extend_merges_junction() {
        let mut a = Cigar::new();
        a.push(CigarOp::Match, 4);
        let mut b = Cigar::new();
        b.push(CigarOp::Match, 6);
        b.push(CigarOp::Del, 1);
        a.extend(&b);
        assert_eq!(a.to_string(), "10M1D");
    }

    #[test]
    fn score_rederivation() {
        let sc = Scoring::MAP_ONT; // a=2 b=4 q=4 e=2
        let t = [0u8, 1, 2, 3]; // ACGT
        let q = [0u8, 1, 3]; // ACT
        let mut c = Cigar::new();
        c.push(CigarOp::Match, 2); // A=A, C=C  -> +4
        c.push(CigarOp::Del, 1); // skip G    -> -6
        c.push(CigarOp::Match, 1); // T=T       -> +2
        assert_eq!(c.score(&t, &q, &sc), 0);
    }

    #[test]
    fn empty_displays_star() {
        assert_eq!(Cigar::new().to_string(), "*");
    }
}
