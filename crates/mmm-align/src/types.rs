//! Shared alignment types.

use crate::cigar::Cigar;

/// Where the alignment is allowed to end.
///
/// All modes anchor the *beginning* of both sequences ("the beginnings of
/// two sequences must be aligned", §3.2); they differ in which ends are
/// penalty-free:
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AlignMode {
    /// Both sequences must be fully consumed; score at cell
    /// `(|T|-1, |Q|-1)`.
    Global,
    /// Both ends free: maximum over the last row and last column.
    SemiGlobal,
    /// The query must be fully consumed; the target may have an unaligned
    /// suffix (maximum over the last column, `j = |Q|-1`). This is the mode
    /// the mapper uses to extend a read end across a reference window.
    TargetSuffixFree,
    /// The target must be fully consumed; the query may have an unaligned
    /// suffix (maximum over the last row, `i = |T|-1`).
    QuerySuffixFree,
}

/// Result of one base-level alignment.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AlignResult {
    /// Alignment score under the requested mode.
    pub score: i32,
    /// Target index (inclusive) of the last aligned cell; `usize::MAX` for
    /// degenerate empty alignments.
    pub end_i: usize,
    /// Query index (inclusive) of the last aligned cell.
    pub end_j: usize,
    /// Alignment path, when a with-path kernel was used.
    pub cigar: Option<Cigar>,
    /// Number of DP cells evaluated (the numerator of GCUPS).
    pub cells: u64,
}

impl AlignResult {
    /// GCUPS (giga cell updates per second) for this alignment given its
    /// runtime — the micro-benchmark metric of §5.1.2.
    pub fn gcups(&self, seconds: f64) -> f64 {
        if seconds <= 0.0 {
            return 0.0;
        }
        self.cells as f64 / seconds / 1e9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gcups_definition() {
        let r = AlignResult { score: 0, end_i: 0, end_j: 0, cigar: None, cells: 2_000_000_000 };
        assert!((r.gcups(2.0) - 1.0).abs() < 1e-12);
        assert_eq!(r.gcups(0.0), 0.0);
    }
}
