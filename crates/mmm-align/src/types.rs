//! Shared alignment types.

use crate::cigar::Cigar;
use crate::score::Scoring;
use std::fmt;

/// Why an alignment request was rejected before any DP ran.
///
/// The difference-recurrence kernels keep every cell delta in `i8`
/// (Suzuki–Kasahara, §3.2); scoring parameters that violate that bound used
/// to be caught only by a `debug_assert!` and silently wrapped in release
/// builds. [`crate::Engine::try_align`] now rejects them up front.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AlignError {
    /// The scoring parameters do not satisfy [`Scoring::fits_i8`]: some
    /// difference value would exceed `i8` range and wrap.
    ScoringOverflowsI8(Scoring),
}

impl fmt::Display for AlignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AlignError::ScoringOverflowsI8(sc) => write!(
                f,
                "scoring parameters {sc:?} overflow the i8 difference range \
                 (need a+q+e <= 127 and 2(q+e)+max(b,ambi) <= 127, a > 0, e > 0)"
            ),
        }
    }
}

impl std::error::Error for AlignError {}

/// Where the alignment is allowed to end.
///
/// All modes anchor the *beginning* of both sequences ("the beginnings of
/// two sequences must be aligned", §3.2); they differ in which ends are
/// penalty-free:
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AlignMode {
    /// Both sequences must be fully consumed; score at cell
    /// `(|T|-1, |Q|-1)`.
    Global,
    /// Both ends free: maximum over the last row and last column.
    SemiGlobal,
    /// The query must be fully consumed; the target may have an unaligned
    /// suffix (maximum over the last column, `j = |Q|-1`). This is the mode
    /// the mapper uses to extend a read end across a reference window.
    TargetSuffixFree,
    /// The target must be fully consumed; the query may have an unaligned
    /// suffix (maximum over the last row, `i = |T|-1`).
    QuerySuffixFree,
}

/// Result of one base-level alignment.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AlignResult {
    /// Alignment score under the requested mode.
    pub score: i32,
    /// Target index (inclusive) of the last aligned cell; `usize::MAX` for
    /// degenerate empty alignments.
    pub end_i: usize,
    /// Query index (inclusive) of the last aligned cell.
    pub end_j: usize,
    /// Alignment path, when a with-path kernel was used.
    pub cigar: Option<Cigar>,
    /// Number of DP cells evaluated (the numerator of GCUPS).
    pub cells: u64,
}

impl AlignResult {
    /// GCUPS (giga cell updates per second) for this alignment given its
    /// runtime — the micro-benchmark metric of §5.1.2.
    pub fn gcups(&self, seconds: f64) -> f64 {
        if seconds <= 0.0 {
            return 0.0;
        }
        self.cells as f64 / seconds / 1e9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gcups_definition() {
        let r = AlignResult {
            score: 0,
            end_i: 0,
            end_j: 0,
            cigar: None,
            cells: 2_000_000_000,
        };
        assert!((r.gcups(2.0) - 1.0).abs() < 1e-12);
        assert_eq!(r.gcups(0.0), 0.0);
    }
}
