//! `mmm-align` — base-level alignment kernels: the paper's core contribution.
//!
//! The crate implements minimap2's difference-recurrence base-level
//! alignment (Suzuki–Kasahara, Eq. 2/3 of the paper) and manymap's
//! dependency-free reformulation (Eq. 4), each as scalar code and as
//! SSE/AVX2/AVX-512BW SIMD kernels, in score-only and with-path variants —
//! the eight kernel combinations benchmarked in Figures 5 and 8.
//!
//! Layering:
//!
//! * [`fullmatrix`] — 32-bit full-matrix affine-gap reference (Eq. 1), the
//!   gold standard every kernel is property-tested against;
//! * [`scalar`] — the two difference-recurrence layouts in plain Rust;
//! * [`simd`] — hand-vectorized x86-64 kernels with runtime dispatch;
//! * [`diff`] — shared machinery (direction matrix, boundary score
//!   tracking, CIGAR backtracking);
//! * [`extend`] — best-prefix extension built on the kernels;
//! * [`zdrop`] — exact z-drop extension (ksw2 semantics), the mapper's
//!   end-extension engine;
//! * [`banded`] — banded global alignment (minimap2's `-r`);
//! * [`twopiece`] — two-piece affine gaps (minimap2's `-O4,24 -E2,1`),
//!   Eq. 4 carried over to the five-state recurrence.

pub mod banded;
pub mod cigar;
pub mod diff;
pub mod dispatch;
pub mod extend;
pub mod fullmatrix;
pub mod layout;
pub mod scalar;
pub mod score;
pub mod scratch;
pub mod simd;
pub mod twopiece;
pub mod types;
pub mod zdrop;

pub use banded::{align_banded, align_banded_with_scratch};
pub use cigar::{Cigar, CigarOp};
pub use dispatch::{
    best_engine, best_engine_unless, best_mm2_engine, parse_disable_list, DisabledTiers, Engine,
    Layout, Width,
};
pub use extend::{
    extend_align, extend_align_with_scratch, fill_align, fill_align_with_scratch,
    trim_to_best_prefix, trim_to_best_prefix_into, ExtendResult,
};
pub use score::Scoring;
pub use scratch::AlignScratch;
pub use twopiece::{align_manymap_2p, align_manymap_2p_with_scratch, fullmatrix2, Scoring2};
pub use types::{AlignError, AlignMode, AlignResult};
pub use zdrop::{extend_zdrop, extend_zdrop_with_scratch, DEFAULT_ZDROP};
