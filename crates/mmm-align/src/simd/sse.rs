//! 128-bit (SSE4.1) kernels — 16 cells per instruction.

use core::arch::x86_64::*;

use crate::diff::{backtrack_into, cell_update, degenerate, Tracker, E_CONT, F_CONT, SRC_E, SRC_F};
use crate::score::Scoring;
use crate::scratch::{reset_fill, reverse_query_into, AlignScratch};
use crate::types::{AlignMode, AlignResult};

const L: usize = 16;

/// Runtime support check for this module's kernels.
pub fn available() -> bool {
    is_x86_feature_detected!("sse4.1")
}

/// Equation (3) layout, vectorized with the `palignr` byte-shift
/// (Figure 3a's access pattern).
pub fn align_mm2(
    target: &[u8],
    query: &[u8],
    sc: &Scoring,
    mode: AlignMode,
    with_path: bool,
) -> AlignResult {
    align_mm2_with_scratch(target, query, sc, mode, with_path, &mut AlignScratch::new())
}

/// [`align_mm2`] with caller-provided buffers.
pub fn align_mm2_with_scratch(
    target: &[u8],
    query: &[u8],
    sc: &Scoring,
    mode: AlignMode,
    with_path: bool,
    scratch: &mut AlignScratch,
) -> AlignResult {
    assert!(available(), "SSE4.1 not available on this CPU");
    if let Some(r) = degenerate(target, query, sc, mode, with_path) {
        return r;
    }
    assert!(sc.fits_i8(), "scoring parameters must satisfy fits_i8()");
    // SAFETY: feature checked above.
    unsafe { mm2_inner(target, query, sc, mode, with_path, scratch) }
}

/// Equation (4) layout, vectorized with plain loads/stores (Figure 3b).
pub fn align_manymap(
    target: &[u8],
    query: &[u8],
    sc: &Scoring,
    mode: AlignMode,
    with_path: bool,
) -> AlignResult {
    align_manymap_with_scratch(target, query, sc, mode, with_path, &mut AlignScratch::new())
}

/// [`align_manymap`] with caller-provided buffers.
pub fn align_manymap_with_scratch(
    target: &[u8],
    query: &[u8],
    sc: &Scoring,
    mode: AlignMode,
    with_path: bool,
    scratch: &mut AlignScratch,
) -> AlignResult {
    assert!(available(), "SSE4.1 not available on this CPU");
    if let Some(r) = degenerate(target, query, sc, mode, with_path) {
        return r;
    }
    assert!(sc.fits_i8(), "scoring parameters must satisfy fits_i8()");
    // SAFETY: feature checked above.
    unsafe { manymap_inner(target, query, sc, mode, with_path, scratch) }
}

/// # Safety
/// Caller must ensure SSE4.1 is available — the public wrappers above assert
/// `available()` before dispatching here.
#[target_feature(enable = "sse4.1")]
unsafe fn mm2_inner(
    target: &[u8],
    query: &[u8],
    sc: &Scoring,
    mode: AlignMode,
    with_path: bool,
    scratch: &mut AlignScratch,
) -> AlignResult {
    let (tlen, qlen) = (target.len(), query.len());
    let (q, e) = (sc.q, sc.e);
    let qe = q + e;

    let AlignScratch {
        u,
        v,
        x,
        y,
        qr,
        dir,
        cigars,
        ..
    } = scratch;
    reverse_query_into(query, qr);
    reset_fill(u, tlen, -e as i8);
    reset_fill(v, tlen, 0i8);
    reset_fill(x, tlen, 0i8);
    reset_fill(y, tlen, -qe as i8);
    u[0] = -qe as i8;

    let mut dir = if with_path {
        dir.reset(tlen, qlen);
        Some(dir)
    } else {
        None
    };
    let mut tracker = Tracker::new(tlen, qlen);

    let vmatch = _mm_set1_epi8(sc.a as i8);
    let vmis = _mm_set1_epi8(-sc.b as i8);
    let vambi = _mm_set1_epi8(-sc.ambi as i8);
    let vfour = _mm_set1_epi8(4);
    let vq = _mm_set1_epi8(q as i8);
    let vqe = _mm_set1_epi8(qe as i8);
    let zero = _mm_setzero_si128();
    let d1 = _mm_set1_epi8(SRC_E as i8);
    let d2 = _mm_set1_epi8(SRC_F as i8);
    let d4 = _mm_set1_epi8(E_CONT as i8);
    let d8 = _mm_set1_epi8(F_CONT as i8);

    for r in 0..tlen + qlen - 1 {
        let st = r.saturating_sub(qlen - 1);
        let en = r.min(tlen - 1);
        let (mut xlast, mut vlast) = if st == 0 {
            (-qe, if r == 0 { -qe } else { -e })
        } else {
            (x[st - 1] as i32, v[st - 1] as i32)
        };
        let qbase = st + qlen - 1 - r; // qr index of the first cell
        let mut dir_row = dir.as_mut().map(|d| d.row_mut(r));
        let n = en - st + 1;
        let mut t = st;

        // ksw2's shift idiom: the byte entering lane 0 is carried in a
        // separate vector; each operand costs a pslldq + por (plus a psrldq
        // to produce the next carry) — the extra shift instructions of
        // Figure 3a.
        let mut xcarry = _mm_insert_epi8(_mm_setzero_si128(), xlast, 0);
        let mut vcarry = _mm_insert_epi8(_mm_setzero_si128(), vlast, 0);
        let mut xtop = xlast; // old X[t-1] for the scalar tail
        let mut vtop = vlast;
        for _ in 0..n / L {
            let tv = _mm_loadu_si128(target.as_ptr().add(t) as *const __m128i);
            let qv = _mm_loadu_si128(qr.as_ptr().add(t - st + qbase) as *const __m128i);
            let eqm = _mm_cmpeq_epi8(tv, qv);
            let amb = _mm_or_si128(_mm_cmpeq_epi8(tv, vfour), _mm_cmpeq_epi8(qv, vfour));
            let mut s = _mm_blendv_epi8(vmis, vmatch, eqm);
            s = _mm_blendv_epi8(s, vambi, amb);

            let xcur = _mm_loadu_si128(x.as_ptr().add(t) as *const __m128i);
            let vcur = _mm_loadu_si128(v.as_ptr().add(t) as *const __m128i);
            let ut = _mm_loadu_si128(u.as_ptr().add(t) as *const __m128i);
            let yt = _mm_loadu_si128(y.as_ptr().add(t) as *const __m128i);
            // Figure 3a: the shifted load of the previous diagonal's X/V.
            let xsh = _mm_or_si128(_mm_bslli_si128(xcur, 1), xcarry);
            let vsh = _mm_or_si128(_mm_bslli_si128(vcur, 1), vcarry);
            xcarry = _mm_bsrli_si128(xcur, 15);
            vcarry = _mm_bsrli_si128(vcur, 15);
            xtop = _mm_extract_epi8(xcur, 15) as i8 as i32;
            vtop = _mm_extract_epi8(vcur, 15) as i8 as i32;

            let a = _mm_adds_epi8(xsh, vsh);
            let b = _mm_adds_epi8(yt, ut);
            let za = _mm_max_epi8(s, a);
            let z = _mm_max_epi8(za, b);
            let un = _mm_subs_epi8(z, vsh);
            let vn = _mm_subs_epi8(z, ut);
            let xt = _mm_adds_epi8(_mm_subs_epi8(a, z), vq);
            let yt2 = _mm_adds_epi8(_mm_subs_epi8(b, z), vq);
            let xn = _mm_subs_epi8(_mm_max_epi8(xt, zero), vqe);
            let yn = _mm_subs_epi8(_mm_max_epi8(yt2, zero), vqe);

            _mm_storeu_si128(u.as_mut_ptr().add(t) as *mut __m128i, un);
            _mm_storeu_si128(v.as_mut_ptr().add(t) as *mut __m128i, vn);
            _mm_storeu_si128(x.as_mut_ptr().add(t) as *mut __m128i, xn);
            _mm_storeu_si128(y.as_mut_ptr().add(t) as *mut __m128i, yn);

            if let Some(row) = dir_row.as_deref_mut() {
                let mut d = _mm_and_si128(_mm_cmpgt_epi8(a, s), d1);
                d = _mm_blendv_epi8(d, d2, _mm_cmpgt_epi8(b, za));
                d = _mm_or_si128(d, _mm_and_si128(_mm_cmpgt_epi8(xt, zero), d4));
                d = _mm_or_si128(d, _mm_and_si128(_mm_cmpgt_epi8(yt2, zero), d8));
                _mm_storeu_si128(row.as_mut_ptr().add(t - st) as *mut __m128i, d);
            }
            t += L;
        }
        if t > st {
            // Hand the last old X/V lane to the scalar tail.
            xlast = xtop;
            vlast = vtop;
        }
        while t <= en {
            let s = sc.subst(target[t], query[r - t]);
            let (unw, vnw, xnw, ynw, d) =
                cell_update(s, xlast, vlast, y[t] as i32, u[t] as i32, q, qe);
            xlast = x[t] as i32;
            vlast = v[t] as i32;
            u[t] = unw;
            v[t] = vnw;
            x[t] = xnw;
            y[t] = ynw;
            if let Some(row) = dir_row.as_deref_mut() {
                row[t - st] = d;
            }
            t += 1;
        }
        tracker.diag(
            r,
            st,
            en,
            u[st] as i32,
            u[en] as i32,
            v[0] as i32,
            v[en] as i32,
            qe,
        );
    }

    let (score, end_i, end_j) = tracker.finalize(mode);
    let cigar = dir.map(|d| {
        let mut c = AlignScratch::take_cigar(cigars);
        backtrack_into(d, end_i, end_j, &mut c);
        c
    });
    AlignResult {
        score,
        end_i,
        end_j,
        cigar,
        cells: tlen as u64 * qlen as u64,
    }
}

/// # Safety
/// Caller must ensure SSE4.1 is available — the public wrappers above assert
/// `available()` before dispatching here.
#[target_feature(enable = "sse4.1")]
unsafe fn manymap_inner(
    target: &[u8],
    query: &[u8],
    sc: &Scoring,
    mode: AlignMode,
    with_path: bool,
    scratch: &mut AlignScratch,
) -> AlignResult {
    let (tlen, qlen) = (target.len(), query.len());
    let (q, e) = (sc.q, sc.e);
    let qe = q + e;

    let AlignScratch {
        u,
        v,
        x,
        y,
        qr,
        dir,
        cigars,
        ..
    } = scratch;
    reverse_query_into(query, qr);
    reset_fill(u, tlen, -e as i8);
    reset_fill(y, tlen, -qe as i8);
    u[0] = -qe as i8;
    reset_fill(v, qlen + 1, -e as i8);
    reset_fill(x, qlen + 1, -qe as i8);
    v[qlen] = -qe as i8;

    let mut dir = if with_path {
        dir.reset(tlen, qlen);
        Some(dir)
    } else {
        None
    };
    let mut tracker = Tracker::new(tlen, qlen);

    let vmatch = _mm_set1_epi8(sc.a as i8);
    let vmis = _mm_set1_epi8(-sc.b as i8);
    let vambi = _mm_set1_epi8(-sc.ambi as i8);
    let vfour = _mm_set1_epi8(4);
    let vq = _mm_set1_epi8(q as i8);
    let vqe = _mm_set1_epi8(qe as i8);
    let zero = _mm_setzero_si128();
    let d1 = _mm_set1_epi8(SRC_E as i8);
    let d2 = _mm_set1_epi8(SRC_F as i8);
    let d4 = _mm_set1_epi8(E_CONT as i8);
    let d8 = _mm_set1_epi8(F_CONT as i8);

    for r in 0..tlen + qlen - 1 {
        let st = r.saturating_sub(qlen - 1);
        let en = r.min(tlen - 1);
        let off = st + qlen - r; // t' of the first cell
        let qbase = st + qlen - 1 - r;
        let mut dir_row = dir.as_mut().map(|d| d.row_mut(r));
        let n = en - st + 1;
        let mut t = st;

        for _ in 0..n / L {
            let tp = t - st + off;
            let tv = _mm_loadu_si128(target.as_ptr().add(t) as *const __m128i);
            let qv = _mm_loadu_si128(qr.as_ptr().add(t - st + qbase) as *const __m128i);
            let eqm = _mm_cmpeq_epi8(tv, qv);
            let amb = _mm_or_si128(_mm_cmpeq_epi8(tv, vfour), _mm_cmpeq_epi8(qv, vfour));
            let mut s = _mm_blendv_epi8(vmis, vmatch, eqm);
            s = _mm_blendv_epi8(s, vambi, amb);

            // Figure 3b: one plain load per operand, no shifts.
            let xt0 = _mm_loadu_si128(x.as_ptr().add(tp) as *const __m128i);
            let vt0 = _mm_loadu_si128(v.as_ptr().add(tp) as *const __m128i);
            let ut = _mm_loadu_si128(u.as_ptr().add(t) as *const __m128i);
            let yt = _mm_loadu_si128(y.as_ptr().add(t) as *const __m128i);

            let a = _mm_adds_epi8(xt0, vt0);
            let b = _mm_adds_epi8(yt, ut);
            let za = _mm_max_epi8(s, a);
            let z = _mm_max_epi8(za, b);
            let un = _mm_subs_epi8(z, vt0);
            let vn = _mm_subs_epi8(z, ut);
            let xt = _mm_adds_epi8(_mm_subs_epi8(a, z), vq);
            let yt2 = _mm_adds_epi8(_mm_subs_epi8(b, z), vq);
            let xn = _mm_subs_epi8(_mm_max_epi8(xt, zero), vqe);
            let yn = _mm_subs_epi8(_mm_max_epi8(yt2, zero), vqe);

            _mm_storeu_si128(u.as_mut_ptr().add(t) as *mut __m128i, un);
            _mm_storeu_si128(v.as_mut_ptr().add(tp) as *mut __m128i, vn);
            _mm_storeu_si128(x.as_mut_ptr().add(tp) as *mut __m128i, xn);
            _mm_storeu_si128(y.as_mut_ptr().add(t) as *mut __m128i, yn);

            if let Some(row) = dir_row.as_deref_mut() {
                let mut d = _mm_and_si128(_mm_cmpgt_epi8(a, s), d1);
                d = _mm_blendv_epi8(d, d2, _mm_cmpgt_epi8(b, za));
                d = _mm_or_si128(d, _mm_and_si128(_mm_cmpgt_epi8(xt, zero), d4));
                d = _mm_or_si128(d, _mm_and_si128(_mm_cmpgt_epi8(yt2, zero), d8));
                _mm_storeu_si128(row.as_mut_ptr().add(t - st) as *mut __m128i, d);
            }
            t += L;
        }
        while t <= en {
            let tp = t - st + off;
            let s = sc.subst(target[t], query[r - t]);
            let (unw, vnw, xnw, ynw, d) = cell_update(
                s,
                x[tp] as i32,
                v[tp] as i32,
                y[t] as i32,
                u[t] as i32,
                q,
                qe,
            );
            u[t] = unw;
            v[tp] = vnw;
            x[tp] = xnw;
            y[t] = ynw;
            if let Some(row) = dir_row.as_deref_mut() {
                row[t - st] = d;
            }
            t += 1;
        }
        let v_st0 = v[qlen - r.min(qlen)] as i32;
        let v_en = v[en + qlen - r] as i32;
        tracker.diag(r, st, en, u[st] as i32, u[en] as i32, v_st0, v_en, qe);
    }

    let (score, end_i, end_j) = tracker.finalize(mode);
    let cigar = dir.map(|d| {
        let mut c = AlignScratch::take_cigar(cigars);
        backtrack_into(d, end_i, end_j, &mut c);
        c
    });
    AlignResult {
        score,
        end_i,
        end_j,
        cigar,
        cells: tlen as u64 * qlen as u64,
    }
}

// Miri cannot execute vendor intrinsics; the simd tests are host-only.
#[cfg(all(test, not(miri)))]
mod tests {
    use super::*;
    use crate::scalar;
    use proptest::prelude::*;

    const SC: Scoring = Scoring::MAP_ONT;

    const MODES: [AlignMode; 4] = [
        AlignMode::Global,
        AlignMode::SemiGlobal,
        AlignMode::TargetSuffixFree,
        AlignMode::QuerySuffixFree,
    ];

    fn random_pair(seed: u64, tlen: usize, edits: usize) -> (Vec<u8>, Vec<u8>) {
        let mut state = seed;
        let mut rnd = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as usize
        };
        let t: Vec<u8> = (0..tlen).map(|_| (rnd() % 4) as u8).collect();
        let mut q = t.clone();
        for _ in 0..edits {
            let pos = rnd() % q.len();
            match rnd() % 3 {
                0 => q[pos] = (rnd() % 4) as u8,
                1 => q.insert(pos, (rnd() % 4) as u8),
                _ => {
                    q.remove(pos);
                }
            }
        }
        (t, q)
    }

    #[test]
    fn matches_scalar_on_long_noisy_pairs() {
        if !available() {
            return;
        }
        for (seed, len) in [(1u64, 64usize), (2, 100), (3, 257), (4, 500)] {
            let (t, q) = random_pair(seed, len, len / 8);
            for mode in MODES {
                let gold = scalar::align_manymap(&t, &q, &SC, mode, true);
                let a = align_mm2(&t, &q, &SC, mode, true);
                let b = align_manymap(&t, &q, &SC, mode, true);
                assert_eq!(a, gold, "sse mm2 len={len} mode={mode:?}");
                assert_eq!(b, gold, "sse manymap len={len} mode={mode:?}");
            }
        }
    }

    #[test]
    fn handles_vector_boundary_lengths() {
        if !available() {
            return;
        }
        // Lengths straddling the 16-lane chunk boundary.
        for len in [15usize, 16, 17, 31, 32, 33, 48] {
            let (t, q) = random_pair(len as u64, len, 2);
            let gold = scalar::align_manymap(&t, &q, &SC, AlignMode::Global, true);
            assert_eq!(
                align_mm2(&t, &q, &SC, AlignMode::Global, true),
                gold,
                "len={len}"
            );
            assert_eq!(
                align_manymap(&t, &q, &SC, AlignMode::Global, true),
                gold,
                "len={len}"
            );
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn sse_kernels_match_scalar(
            t in proptest::collection::vec(0u8..5, 1..128),
            q in proptest::collection::vec(0u8..5, 1..128),
            mode_idx in 0usize..4,
            with_path in proptest::bool::ANY,
        ) {
            prop_assume!(available());
            let mode = MODES[mode_idx];
            let gold = scalar::align_manymap(&t, &q, &SC, mode, with_path);
            prop_assert_eq!(align_mm2(&t, &q, &SC, mode, with_path), gold.clone());
            prop_assert_eq!(align_manymap(&t, &q, &SC, mode, with_path), gold);
        }
    }
}
