//! Hand-vectorized x86-64 kernels (Figures 3 and 5 of the paper).
//!
//! One module per vector width, each containing both memory layouts:
//!
//! * `mm2` kernels vectorize Equation (3). The `t-1` accesses to `X`/`V`
//!   force a byte-shift of the previous iteration's vector — one `palignr`
//!   on SSE, a `vperm2i128 + vpalignr` pair on AVX2 (the cross-lane shift
//!   AVX2 lacks, which is why the paper sees the largest gain there), and a
//!   `vpermt2b` on AVX-512 (VBMI).
//! * `manymap` kernels vectorize Equation (4): every operand is a plain
//!   unaligned load and every result a plain store to the same offset — the
//!   single-instruction load of Figure 3b.
//!
//! All kernels process full vector chunks and finish each anti-diagonal with
//! a scalar tail that reuses [`crate::diff::cell_update`], so results are
//! bit-identical to the scalar kernels (and therefore to the full-matrix
//! reference).
//!
//! Naming note: the paper's baseline tier is "SSE2"; our 128-bit kernels use
//! SSE4.1 (`pblendvb`/`pmaxsb`), universally available on x86-64 since 2008.
//! We keep the paper's tier labels in the harnesses.

#[cfg(target_arch = "x86_64")]
pub mod avx2;
#[cfg(target_arch = "x86_64")]
pub mod avx512;
#[cfg(target_arch = "x86_64")]
pub mod sse;
