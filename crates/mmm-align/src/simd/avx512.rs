//! 512-bit (AVX-512BW + VBMI) kernels — 64 cells per instruction.
//!
//! Comparisons produce `__mmask64` k-registers rather than byte vectors, so
//! the select/blend structure differs slightly from the narrower widths. The
//! Eq. 3 kernel ports ksw2's byte-shift idiom directly: AVX-512BW still only
//! shifts bytes within 128-bit lanes, so each shifted operand costs a
//! `vpslldq` + `vpsrldq` + qword permute + two ORs. The Eq. 4 kernel needs
//! no shuffle at all.

use core::arch::x86_64::*;

use crate::diff::{backtrack_into, cell_update, degenerate, Tracker, E_CONT, F_CONT, SRC_E, SRC_F};
use crate::score::Scoring;
use crate::scratch::{reset_fill, reverse_query_into, AlignScratch};
use crate::types::{AlignMode, AlignResult};

const L: usize = 64;

/// Runtime support check for this module's kernels.
pub fn available() -> bool {
    is_x86_feature_detected!("avx512bw")
}

/// Shift a 512-bit register left by one byte with zero fill. Bytes crossing
/// the four 128-bit lane boundaries need an extra qword permute — the cost a
/// direct port of ksw2's `pslldq` pays at this width.
///
/// # Safety
/// Requires AVX-512F/BW; only called from `#[target_feature]`-gated fns.
#[inline(always)]
unsafe fn shl1_zero(v: __m512i) -> __m512i {
    let within = _mm512_bslli_epi128(v, 1);
    let crossers = _mm512_bsrli_epi128(v, 15); // byte 0 of lane k = v[16k+15]
    let idx = _mm512_set_epi64(5, 4, 3, 2, 1, 0, 0, 0);
    let up = _mm512_maskz_permutexvar_epi64(0b1111_1100, idx, crossers);
    _mm512_or_si512(within, up)
}

/// `[v[63]]` in byte 0, zeros elsewhere — the next iteration's carry.
///
/// # Safety
/// Requires AVX-512F/BW; only called from `#[target_feature]`-gated fns.
#[inline(always)]
unsafe fn shr63_carry(v: __m512i) -> __m512i {
    let crossers = _mm512_bsrli_epi128(v, 15);
    let idx = _mm512_set_epi64(0, 0, 0, 0, 0, 0, 0, 6);
    _mm512_maskz_permutexvar_epi64(0b0000_0001, idx, crossers)
}

/// Equation (3) layout; the byte shift is one `vpermt2b`.
pub fn align_mm2(
    target: &[u8],
    query: &[u8],
    sc: &Scoring,
    mode: AlignMode,
    with_path: bool,
) -> AlignResult {
    align_mm2_with_scratch(target, query, sc, mode, with_path, &mut AlignScratch::new())
}

/// [`align_mm2`] with caller-provided buffers.
pub fn align_mm2_with_scratch(
    target: &[u8],
    query: &[u8],
    sc: &Scoring,
    mode: AlignMode,
    with_path: bool,
    scratch: &mut AlignScratch,
) -> AlignResult {
    assert!(available(), "AVX-512BW not available on this CPU");
    if let Some(r) = degenerate(target, query, sc, mode, with_path) {
        return r;
    }
    assert!(sc.fits_i8(), "scoring parameters must satisfy fits_i8()");
    // SAFETY: features checked above.
    unsafe { mm2_inner(target, query, sc, mode, with_path, scratch) }
}

/// Equation (4) layout — plain loads and stores only.
pub fn align_manymap(
    target: &[u8],
    query: &[u8],
    sc: &Scoring,
    mode: AlignMode,
    with_path: bool,
) -> AlignResult {
    align_manymap_with_scratch(target, query, sc, mode, with_path, &mut AlignScratch::new())
}

/// [`align_manymap`] with caller-provided buffers.
pub fn align_manymap_with_scratch(
    target: &[u8],
    query: &[u8],
    sc: &Scoring,
    mode: AlignMode,
    with_path: bool,
    scratch: &mut AlignScratch,
) -> AlignResult {
    assert!(available(), "AVX-512BW not available on this CPU");
    if let Some(r) = degenerate(target, query, sc, mode, with_path) {
        return r;
    }
    assert!(sc.fits_i8(), "scoring parameters must satisfy fits_i8()");
    // SAFETY: features checked above.
    unsafe { manymap_inner(target, query, sc, mode, with_path, scratch) }
}

#[inline(always)]
unsafe fn extract_last(v: __m512i) -> i32 {
    let lane = _mm512_extracti32x4_epi32(v, 3);
    _mm_extract_epi8(lane, 15) as i8 as i32
}

/// # Safety
/// Caller must ensure AVX-512F/BW are available — the public wrappers above
/// assert `available()` before dispatching here.
#[target_feature(enable = "avx512f,avx512bw")]
unsafe fn mm2_inner(
    target: &[u8],
    query: &[u8],
    sc: &Scoring,
    mode: AlignMode,
    with_path: bool,
    scratch: &mut AlignScratch,
) -> AlignResult {
    let (tlen, qlen) = (target.len(), query.len());
    let (q, e) = (sc.q, sc.e);
    let qe = q + e;

    let AlignScratch {
        u,
        v,
        x,
        y,
        qr,
        dir,
        cigars,
        ..
    } = scratch;
    reverse_query_into(query, qr);
    reset_fill(u, tlen, -e as i8);
    reset_fill(v, tlen, 0i8);
    reset_fill(x, tlen, 0i8);
    reset_fill(y, tlen, -qe as i8);
    u[0] = -qe as i8;

    let mut dir = if with_path {
        dir.reset(tlen, qlen);
        Some(dir)
    } else {
        None
    };
    let mut tracker = Tracker::new(tlen, qlen);

    let vmatch = _mm512_set1_epi8(sc.a as i8);
    let vmis = _mm512_set1_epi8(-sc.b as i8);
    let vambi = _mm512_set1_epi8(-sc.ambi as i8);
    let vfour = _mm512_set1_epi8(4);
    let vq = _mm512_set1_epi8(q as i8);
    let vqe = _mm512_set1_epi8(qe as i8);
    let zero = _mm512_setzero_si512();
    let d1 = _mm512_set1_epi8(SRC_E as i8);
    let d2 = _mm512_set1_epi8(SRC_F as i8);
    let d4 = _mm512_set1_epi8(E_CONT as i8);
    let d8 = _mm512_set1_epi8(F_CONT as i8);

    for r in 0..tlen + qlen - 1 {
        let st = r.saturating_sub(qlen - 1);
        let en = r.min(tlen - 1);
        let (mut xlast, mut vlast) = if st == 0 {
            (-qe, if r == 0 { -qe } else { -e })
        } else {
            (x[st - 1] as i32, v[st - 1] as i32)
        };
        let qbase = st + qlen - 1 - r;
        let mut dir_row = dir.as_mut().map(|d| d.row_mut(r));
        let n = en - st + 1;
        let mut t = st;

        let mut xcarry = _mm512_maskz_set1_epi8(1, xlast as i8);
        let mut vcarry = _mm512_maskz_set1_epi8(1, vlast as i8);
        let mut xtop = xlast;
        let mut vtop = vlast;
        for _ in 0..n / L {
            let tv = _mm512_loadu_si512(target.as_ptr().add(t) as *const __m512i);
            let qv = _mm512_loadu_si512(qr.as_ptr().add(t - st + qbase) as *const __m512i);
            let eqm = _mm512_cmpeq_epi8_mask(tv, qv);
            let amb = _mm512_cmpeq_epi8_mask(tv, vfour) | _mm512_cmpeq_epi8_mask(qv, vfour);
            let mut s = _mm512_mask_blend_epi8(eqm, vmis, vmatch);
            s = _mm512_mask_blend_epi8(amb, s, vambi);

            let xcur = _mm512_loadu_si512(x.as_ptr().add(t) as *const __m512i);
            let vcur = _mm512_loadu_si512(v.as_ptr().add(t) as *const __m512i);
            let ut = _mm512_loadu_si512(u.as_ptr().add(t) as *const __m512i);
            let yt = _mm512_loadu_si512(y.as_ptr().add(t) as *const __m512i);
            // ksw2's shift idiom at 512 bits: within-lane shift, lane-cross
            // permute, carry OR — per operand, per iteration.
            let xsh = _mm512_or_si512(shl1_zero(xcur), xcarry);
            let vsh = _mm512_or_si512(shl1_zero(vcur), vcarry);
            xcarry = shr63_carry(xcur);
            vcarry = shr63_carry(vcur);
            xtop = extract_last(xcur);
            vtop = extract_last(vcur);

            let a = _mm512_adds_epi8(xsh, vsh);
            let b = _mm512_adds_epi8(yt, ut);
            let za = _mm512_max_epi8(s, a);
            let z = _mm512_max_epi8(za, b);
            let un = _mm512_subs_epi8(z, vsh);
            let vn = _mm512_subs_epi8(z, ut);
            let xt = _mm512_adds_epi8(_mm512_subs_epi8(a, z), vq);
            let yt2 = _mm512_adds_epi8(_mm512_subs_epi8(b, z), vq);
            let xn = _mm512_subs_epi8(_mm512_max_epi8(xt, zero), vqe);
            let yn = _mm512_subs_epi8(_mm512_max_epi8(yt2, zero), vqe);

            _mm512_storeu_si512(u.as_mut_ptr().add(t) as *mut __m512i, un);
            _mm512_storeu_si512(v.as_mut_ptr().add(t) as *mut __m512i, vn);
            _mm512_storeu_si512(x.as_mut_ptr().add(t) as *mut __m512i, xn);
            _mm512_storeu_si512(y.as_mut_ptr().add(t) as *mut __m512i, yn);

            if let Some(row) = dir_row.as_deref_mut() {
                let mut d = _mm512_maskz_mov_epi8(_mm512_cmpgt_epi8_mask(a, s), d1);
                d = _mm512_mask_blend_epi8(_mm512_cmpgt_epi8_mask(b, za), d, d2);
                d = _mm512_or_si512(
                    d,
                    _mm512_maskz_mov_epi8(_mm512_cmpgt_epi8_mask(xt, zero), d4),
                );
                d = _mm512_or_si512(
                    d,
                    _mm512_maskz_mov_epi8(_mm512_cmpgt_epi8_mask(yt2, zero), d8),
                );
                _mm512_storeu_si512(row.as_mut_ptr().add(t - st) as *mut __m512i, d);
            }
            t += L;
        }
        if t > st {
            xlast = xtop;
            vlast = vtop;
        }
        while t <= en {
            let s = sc.subst(target[t], query[r - t]);
            let (unw, vnw, xnw, ynw, d) =
                cell_update(s, xlast, vlast, y[t] as i32, u[t] as i32, q, qe);
            xlast = x[t] as i32;
            vlast = v[t] as i32;
            u[t] = unw;
            v[t] = vnw;
            x[t] = xnw;
            y[t] = ynw;
            if let Some(row) = dir_row.as_deref_mut() {
                row[t - st] = d;
            }
            t += 1;
        }
        tracker.diag(
            r,
            st,
            en,
            u[st] as i32,
            u[en] as i32,
            v[0] as i32,
            v[en] as i32,
            qe,
        );
    }

    let (score, end_i, end_j) = tracker.finalize(mode);
    let cigar = dir.map(|d| {
        let mut c = AlignScratch::take_cigar(cigars);
        backtrack_into(d, end_i, end_j, &mut c);
        c
    });
    AlignResult {
        score,
        end_i,
        end_j,
        cigar,
        cells: tlen as u64 * qlen as u64,
    }
}

/// # Safety
/// Caller must ensure AVX-512F/BW are available — the public wrappers above
/// assert `available()` before dispatching here.
#[target_feature(enable = "avx512f,avx512bw")]
unsafe fn manymap_inner(
    target: &[u8],
    query: &[u8],
    sc: &Scoring,
    mode: AlignMode,
    with_path: bool,
    scratch: &mut AlignScratch,
) -> AlignResult {
    let (tlen, qlen) = (target.len(), query.len());
    let (q, e) = (sc.q, sc.e);
    let qe = q + e;

    let AlignScratch {
        u,
        v,
        x,
        y,
        qr,
        dir,
        cigars,
        ..
    } = scratch;
    reverse_query_into(query, qr);
    reset_fill(u, tlen, -e as i8);
    reset_fill(y, tlen, -qe as i8);
    u[0] = -qe as i8;
    reset_fill(v, qlen + 1, -e as i8);
    reset_fill(x, qlen + 1, -qe as i8);
    v[qlen] = -qe as i8;

    let mut dir = if with_path {
        dir.reset(tlen, qlen);
        Some(dir)
    } else {
        None
    };
    let mut tracker = Tracker::new(tlen, qlen);

    let vmatch = _mm512_set1_epi8(sc.a as i8);
    let vmis = _mm512_set1_epi8(-sc.b as i8);
    let vambi = _mm512_set1_epi8(-sc.ambi as i8);
    let vfour = _mm512_set1_epi8(4);
    let vq = _mm512_set1_epi8(q as i8);
    let vqe = _mm512_set1_epi8(qe as i8);
    let zero = _mm512_setzero_si512();
    let d1 = _mm512_set1_epi8(SRC_E as i8);
    let d2 = _mm512_set1_epi8(SRC_F as i8);
    let d4 = _mm512_set1_epi8(E_CONT as i8);
    let d8 = _mm512_set1_epi8(F_CONT as i8);

    for r in 0..tlen + qlen - 1 {
        let st = r.saturating_sub(qlen - 1);
        let en = r.min(tlen - 1);
        let off = st + qlen - r;
        let qbase = st + qlen - 1 - r;
        let mut dir_row = dir.as_mut().map(|d| d.row_mut(r));
        let n = en - st + 1;
        let mut t = st;

        for _ in 0..n / L {
            let tp = t - st + off;
            let tv = _mm512_loadu_si512(target.as_ptr().add(t) as *const __m512i);
            let qv = _mm512_loadu_si512(qr.as_ptr().add(t - st + qbase) as *const __m512i);
            let eqm = _mm512_cmpeq_epi8_mask(tv, qv);
            let amb = _mm512_cmpeq_epi8_mask(tv, vfour) | _mm512_cmpeq_epi8_mask(qv, vfour);
            let mut s = _mm512_mask_blend_epi8(eqm, vmis, vmatch);
            s = _mm512_mask_blend_epi8(amb, s, vambi);

            let xt0 = _mm512_loadu_si512(x.as_ptr().add(tp) as *const __m512i);
            let vt0 = _mm512_loadu_si512(v.as_ptr().add(tp) as *const __m512i);
            let ut = _mm512_loadu_si512(u.as_ptr().add(t) as *const __m512i);
            let yt = _mm512_loadu_si512(y.as_ptr().add(t) as *const __m512i);

            let a = _mm512_adds_epi8(xt0, vt0);
            let b = _mm512_adds_epi8(yt, ut);
            let za = _mm512_max_epi8(s, a);
            let z = _mm512_max_epi8(za, b);
            let un = _mm512_subs_epi8(z, vt0);
            let vn = _mm512_subs_epi8(z, ut);
            let xt = _mm512_adds_epi8(_mm512_subs_epi8(a, z), vq);
            let yt2 = _mm512_adds_epi8(_mm512_subs_epi8(b, z), vq);
            let xn = _mm512_subs_epi8(_mm512_max_epi8(xt, zero), vqe);
            let yn = _mm512_subs_epi8(_mm512_max_epi8(yt2, zero), vqe);

            _mm512_storeu_si512(u.as_mut_ptr().add(t) as *mut __m512i, un);
            _mm512_storeu_si512(v.as_mut_ptr().add(tp) as *mut __m512i, vn);
            _mm512_storeu_si512(x.as_mut_ptr().add(tp) as *mut __m512i, xn);
            _mm512_storeu_si512(y.as_mut_ptr().add(t) as *mut __m512i, yn);

            if let Some(row) = dir_row.as_deref_mut() {
                let mut d = _mm512_maskz_mov_epi8(_mm512_cmpgt_epi8_mask(a, s), d1);
                d = _mm512_mask_blend_epi8(_mm512_cmpgt_epi8_mask(b, za), d, d2);
                d = _mm512_or_si512(
                    d,
                    _mm512_maskz_mov_epi8(_mm512_cmpgt_epi8_mask(xt, zero), d4),
                );
                d = _mm512_or_si512(
                    d,
                    _mm512_maskz_mov_epi8(_mm512_cmpgt_epi8_mask(yt2, zero), d8),
                );
                _mm512_storeu_si512(row.as_mut_ptr().add(t - st) as *mut __m512i, d);
            }
            t += L;
        }
        while t <= en {
            let tp = t - st + off;
            let s = sc.subst(target[t], query[r - t]);
            let (unw, vnw, xnw, ynw, d) = cell_update(
                s,
                x[tp] as i32,
                v[tp] as i32,
                y[t] as i32,
                u[t] as i32,
                q,
                qe,
            );
            u[t] = unw;
            v[tp] = vnw;
            x[tp] = xnw;
            y[t] = ynw;
            if let Some(row) = dir_row.as_deref_mut() {
                row[t - st] = d;
            }
            t += 1;
        }
        let v_st0 = v[qlen - r.min(qlen)] as i32;
        let v_en = v[en + qlen - r] as i32;
        tracker.diag(r, st, en, u[st] as i32, u[en] as i32, v_st0, v_en, qe);
    }

    let (score, end_i, end_j) = tracker.finalize(mode);
    let cigar = dir.map(|d| {
        let mut c = AlignScratch::take_cigar(cigars);
        backtrack_into(d, end_i, end_j, &mut c);
        c
    });
    AlignResult {
        score,
        end_i,
        end_j,
        cigar,
        cells: tlen as u64 * qlen as u64,
    }
}

// Miri cannot execute vendor intrinsics; the simd tests are host-only.
#[cfg(all(test, not(miri)))]
mod tests {
    use super::*;
    use crate::scalar;
    use proptest::prelude::*;

    const SC: Scoring = Scoring::MAP_ONT;

    const MODES: [AlignMode; 4] = [
        AlignMode::Global,
        AlignMode::SemiGlobal,
        AlignMode::TargetSuffixFree,
        AlignMode::QuerySuffixFree,
    ];

    #[test]
    fn handles_vector_boundary_lengths() {
        if !available() {
            return;
        }
        for len in [63usize, 64, 65, 127, 128, 129, 192] {
            let t: Vec<u8> = (0..len).map(|i| ((i * 7 + 3) % 4) as u8).collect();
            let q: Vec<u8> = (0..len).map(|i| ((i * 5 + 1) % 4) as u8).collect();
            let gold = scalar::align_manymap(&t, &q, &SC, AlignMode::Global, true);
            assert_eq!(
                align_mm2(&t, &q, &SC, AlignMode::Global, true),
                gold,
                "len={len}"
            );
            assert_eq!(
                align_manymap(&t, &q, &SC, AlignMode::Global, true),
                gold,
                "len={len}"
            );
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn avx512_kernels_match_scalar(
            t in proptest::collection::vec(0u8..5, 1..300),
            q in proptest::collection::vec(0u8..5, 1..300),
            mode_idx in 0usize..4,
            with_path in proptest::bool::ANY,
        ) {
            prop_assume!(available());
            let mode = MODES[mode_idx];
            let gold = scalar::align_manymap(&t, &q, &SC, mode, with_path);
            prop_assert_eq!(align_mm2(&t, &q, &SC, mode, with_path), gold.clone());
            prop_assert_eq!(align_manymap(&t, &q, &SC, mode, with_path), gold);
        }
    }
}
