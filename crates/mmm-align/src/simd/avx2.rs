//! 256-bit (AVX2) kernels — 32 cells per instruction.
//!
//! AVX2 has no single cross-lane byte shift, so the Eq. 3 kernel's
//! `X[t-1]` access costs a `vperm2i128` + `vpalignr` pair per operand —
//! the extra shift work the paper identifies as the reason manymap's gain
//! is largest at this width (§5.2.1).

use core::arch::x86_64::*;

use crate::diff::{backtrack_into, cell_update, degenerate, Tracker, E_CONT, F_CONT, SRC_E, SRC_F};
use crate::score::Scoring;
use crate::scratch::{reset_fill, reverse_query_into, AlignScratch};
use crate::types::{AlignMode, AlignResult};

const L: usize = 32;

/// Runtime support check for this module's kernels.
pub fn available() -> bool {
    is_x86_feature_detected!("avx2")
}

/// Equation (3) layout with the two-instruction cross-lane byte shift.
pub fn align_mm2(
    target: &[u8],
    query: &[u8],
    sc: &Scoring,
    mode: AlignMode,
    with_path: bool,
) -> AlignResult {
    align_mm2_with_scratch(target, query, sc, mode, with_path, &mut AlignScratch::new())
}

/// [`align_mm2`] with caller-provided buffers.
pub fn align_mm2_with_scratch(
    target: &[u8],
    query: &[u8],
    sc: &Scoring,
    mode: AlignMode,
    with_path: bool,
    scratch: &mut AlignScratch,
) -> AlignResult {
    assert!(available(), "AVX2 not available on this CPU");
    if let Some(r) = degenerate(target, query, sc, mode, with_path) {
        return r;
    }
    assert!(sc.fits_i8(), "scoring parameters must satisfy fits_i8()");
    // SAFETY: feature checked above.
    unsafe { mm2_inner(target, query, sc, mode, with_path, scratch) }
}

/// Equation (4) layout — plain loads and stores only.
pub fn align_manymap(
    target: &[u8],
    query: &[u8],
    sc: &Scoring,
    mode: AlignMode,
    with_path: bool,
) -> AlignResult {
    align_manymap_with_scratch(target, query, sc, mode, with_path, &mut AlignScratch::new())
}

/// [`align_manymap`] with caller-provided buffers.
pub fn align_manymap_with_scratch(
    target: &[u8],
    query: &[u8],
    sc: &Scoring,
    mode: AlignMode,
    with_path: bool,
    scratch: &mut AlignScratch,
) -> AlignResult {
    assert!(available(), "AVX2 not available on this CPU");
    if let Some(r) = degenerate(target, query, sc, mode, with_path) {
        return r;
    }
    assert!(sc.fits_i8(), "scoring parameters must satisfy fits_i8()");
    // SAFETY: feature checked above.
    unsafe { manymap_inner(target, query, sc, mode, with_path, scratch) }
}

/// Shift a 256-bit register left by one byte, filling byte 0 with zero.
/// AVX2 has no cross-lane byte shift, so this costs a `vperm2i128` plus a
/// `vpalignr` — a direct port of ksw2's `pslldq` pays this on every operand.
///
/// # Safety
/// Requires AVX2; only called from `#[target_feature(enable = "avx2")]` fns.
#[inline(always)]
unsafe fn shl1_zero(v: __m256i) -> __m256i {
    let lo_to_hi = _mm256_permute2x128_si256(v, v, 0x08); // [0, v_lo]
    _mm256_alignr_epi8(v, lo_to_hi, 15)
}

/// `[v[31]]` in byte 0, zeros elsewhere — the carry produced by ksw2's
/// `psrldq(v, 15)`, again needing a lane fix-up on AVX2.
///
/// # Safety
/// Requires AVX2; only called from `#[target_feature(enable = "avx2")]` fns.
#[inline(always)]
unsafe fn shr15_carry(v: __m256i) -> __m256i {
    let hi_to_lo = _mm256_permute2x128_si256(v, v, 0x81); // [v_hi, 0]
    _mm256_bsrli_epi128(hi_to_lo, 15)
}

/// # Safety
/// Caller must ensure AVX2 is available — the public wrappers above assert
/// `available()` before dispatching here.
#[target_feature(enable = "avx2")]
unsafe fn mm2_inner(
    target: &[u8],
    query: &[u8],
    sc: &Scoring,
    mode: AlignMode,
    with_path: bool,
    scratch: &mut AlignScratch,
) -> AlignResult {
    let (tlen, qlen) = (target.len(), query.len());
    let (q, e) = (sc.q, sc.e);
    let qe = q + e;

    let AlignScratch {
        u,
        v,
        x,
        y,
        qr,
        dir,
        cigars,
        ..
    } = scratch;
    reverse_query_into(query, qr);
    reset_fill(u, tlen, -e as i8);
    reset_fill(v, tlen, 0i8);
    reset_fill(x, tlen, 0i8);
    reset_fill(y, tlen, -qe as i8);
    u[0] = -qe as i8;

    let mut dir = if with_path {
        dir.reset(tlen, qlen);
        Some(dir)
    } else {
        None
    };
    let mut tracker = Tracker::new(tlen, qlen);

    let vmatch = _mm256_set1_epi8(sc.a as i8);
    let vmis = _mm256_set1_epi8(-sc.b as i8);
    let vambi = _mm256_set1_epi8(-sc.ambi as i8);
    let vfour = _mm256_set1_epi8(4);
    let vq = _mm256_set1_epi8(q as i8);
    let vqe = _mm256_set1_epi8(qe as i8);
    let zero = _mm256_setzero_si256();
    let d1 = _mm256_set1_epi8(SRC_E as i8);
    let d2 = _mm256_set1_epi8(SRC_F as i8);
    let d4 = _mm256_set1_epi8(E_CONT as i8);
    let d8 = _mm256_set1_epi8(F_CONT as i8);

    for r in 0..tlen + qlen - 1 {
        let st = r.saturating_sub(qlen - 1);
        let en = r.min(tlen - 1);
        let (mut xlast, mut vlast) = if st == 0 {
            (-qe, if r == 0 { -qe } else { -e })
        } else {
            (x[st - 1] as i32, v[st - 1] as i32)
        };
        let qbase = st + qlen - 1 - r;
        let mut dir_row = dir.as_mut().map(|d| d.row_mut(r));
        let n = en - st + 1;
        let mut t = st;

        // ksw2's shift idiom extended to 256 bits: carry vector + lane-crossing
        // emulation, five shuffle/logic ops per operand per iteration.
        let mut xcarry = _mm256_insert_epi8(_mm256_setzero_si256(), xlast as i8, 0);
        let mut vcarry = _mm256_insert_epi8(_mm256_setzero_si256(), vlast as i8, 0);
        let mut xtop = xlast;
        let mut vtop = vlast;
        for _ in 0..n / L {
            let tv = _mm256_loadu_si256(target.as_ptr().add(t) as *const __m256i);
            let qv = _mm256_loadu_si256(qr.as_ptr().add(t - st + qbase) as *const __m256i);
            let eqm = _mm256_cmpeq_epi8(tv, qv);
            let amb = _mm256_or_si256(_mm256_cmpeq_epi8(tv, vfour), _mm256_cmpeq_epi8(qv, vfour));
            let mut s = _mm256_blendv_epi8(vmis, vmatch, eqm);
            s = _mm256_blendv_epi8(s, vambi, amb);

            let xcur = _mm256_loadu_si256(x.as_ptr().add(t) as *const __m256i);
            let vcur = _mm256_loadu_si256(v.as_ptr().add(t) as *const __m256i);
            let ut = _mm256_loadu_si256(u.as_ptr().add(t) as *const __m256i);
            let yt = _mm256_loadu_si256(y.as_ptr().add(t) as *const __m256i);
            let xsh = _mm256_or_si256(shl1_zero(xcur), xcarry);
            let vsh = _mm256_or_si256(shl1_zero(vcur), vcarry);
            xcarry = shr15_carry(xcur);
            vcarry = shr15_carry(vcur);
            xtop = _mm256_extract_epi8(xcur, 31) as i8 as i32;
            vtop = _mm256_extract_epi8(vcur, 31) as i8 as i32;

            let a = _mm256_adds_epi8(xsh, vsh);
            let b = _mm256_adds_epi8(yt, ut);
            let za = _mm256_max_epi8(s, a);
            let z = _mm256_max_epi8(za, b);
            let un = _mm256_subs_epi8(z, vsh);
            let vn = _mm256_subs_epi8(z, ut);
            let xt = _mm256_adds_epi8(_mm256_subs_epi8(a, z), vq);
            let yt2 = _mm256_adds_epi8(_mm256_subs_epi8(b, z), vq);
            let xn = _mm256_subs_epi8(_mm256_max_epi8(xt, zero), vqe);
            let yn = _mm256_subs_epi8(_mm256_max_epi8(yt2, zero), vqe);

            _mm256_storeu_si256(u.as_mut_ptr().add(t) as *mut __m256i, un);
            _mm256_storeu_si256(v.as_mut_ptr().add(t) as *mut __m256i, vn);
            _mm256_storeu_si256(x.as_mut_ptr().add(t) as *mut __m256i, xn);
            _mm256_storeu_si256(y.as_mut_ptr().add(t) as *mut __m256i, yn);

            if let Some(row) = dir_row.as_deref_mut() {
                let mut d = _mm256_and_si256(_mm256_cmpgt_epi8(a, s), d1);
                d = _mm256_blendv_epi8(d, d2, _mm256_cmpgt_epi8(b, za));
                d = _mm256_or_si256(d, _mm256_and_si256(_mm256_cmpgt_epi8(xt, zero), d4));
                d = _mm256_or_si256(d, _mm256_and_si256(_mm256_cmpgt_epi8(yt2, zero), d8));
                _mm256_storeu_si256(row.as_mut_ptr().add(t - st) as *mut __m256i, d);
            }
            t += L;
        }
        if t > st {
            xlast = xtop;
            vlast = vtop;
        }
        while t <= en {
            let s = sc.subst(target[t], query[r - t]);
            let (unw, vnw, xnw, ynw, d) =
                cell_update(s, xlast, vlast, y[t] as i32, u[t] as i32, q, qe);
            xlast = x[t] as i32;
            vlast = v[t] as i32;
            u[t] = unw;
            v[t] = vnw;
            x[t] = xnw;
            y[t] = ynw;
            if let Some(row) = dir_row.as_deref_mut() {
                row[t - st] = d;
            }
            t += 1;
        }
        tracker.diag(
            r,
            st,
            en,
            u[st] as i32,
            u[en] as i32,
            v[0] as i32,
            v[en] as i32,
            qe,
        );
    }

    let (score, end_i, end_j) = tracker.finalize(mode);
    let cigar = dir.map(|d| {
        let mut c = AlignScratch::take_cigar(cigars);
        backtrack_into(d, end_i, end_j, &mut c);
        c
    });
    AlignResult {
        score,
        end_i,
        end_j,
        cigar,
        cells: tlen as u64 * qlen as u64,
    }
}

/// # Safety
/// Caller must ensure AVX2 is available — the public wrappers above assert
/// `available()` before dispatching here.
#[target_feature(enable = "avx2")]
unsafe fn manymap_inner(
    target: &[u8],
    query: &[u8],
    sc: &Scoring,
    mode: AlignMode,
    with_path: bool,
    scratch: &mut AlignScratch,
) -> AlignResult {
    let (tlen, qlen) = (target.len(), query.len());
    let (q, e) = (sc.q, sc.e);
    let qe = q + e;

    let AlignScratch {
        u,
        v,
        x,
        y,
        qr,
        dir,
        cigars,
        ..
    } = scratch;
    reverse_query_into(query, qr);
    reset_fill(u, tlen, -e as i8);
    reset_fill(y, tlen, -qe as i8);
    u[0] = -qe as i8;
    reset_fill(v, qlen + 1, -e as i8);
    reset_fill(x, qlen + 1, -qe as i8);
    v[qlen] = -qe as i8;

    let mut dir = if with_path {
        dir.reset(tlen, qlen);
        Some(dir)
    } else {
        None
    };
    let mut tracker = Tracker::new(tlen, qlen);

    let vmatch = _mm256_set1_epi8(sc.a as i8);
    let vmis = _mm256_set1_epi8(-sc.b as i8);
    let vambi = _mm256_set1_epi8(-sc.ambi as i8);
    let vfour = _mm256_set1_epi8(4);
    let vq = _mm256_set1_epi8(q as i8);
    let vqe = _mm256_set1_epi8(qe as i8);
    let zero = _mm256_setzero_si256();
    let d1 = _mm256_set1_epi8(SRC_E as i8);
    let d2 = _mm256_set1_epi8(SRC_F as i8);
    let d4 = _mm256_set1_epi8(E_CONT as i8);
    let d8 = _mm256_set1_epi8(F_CONT as i8);

    for r in 0..tlen + qlen - 1 {
        let st = r.saturating_sub(qlen - 1);
        let en = r.min(tlen - 1);
        let off = st + qlen - r;
        let qbase = st + qlen - 1 - r;
        let mut dir_row = dir.as_mut().map(|d| d.row_mut(r));
        let n = en - st + 1;
        let mut t = st;

        for _ in 0..n / L {
            let tp = t - st + off;
            let tv = _mm256_loadu_si256(target.as_ptr().add(t) as *const __m256i);
            let qv = _mm256_loadu_si256(qr.as_ptr().add(t - st + qbase) as *const __m256i);
            let eqm = _mm256_cmpeq_epi8(tv, qv);
            let amb = _mm256_or_si256(_mm256_cmpeq_epi8(tv, vfour), _mm256_cmpeq_epi8(qv, vfour));
            let mut s = _mm256_blendv_epi8(vmis, vmatch, eqm);
            s = _mm256_blendv_epi8(s, vambi, amb);

            let xt0 = _mm256_loadu_si256(x.as_ptr().add(tp) as *const __m256i);
            let vt0 = _mm256_loadu_si256(v.as_ptr().add(tp) as *const __m256i);
            let ut = _mm256_loadu_si256(u.as_ptr().add(t) as *const __m256i);
            let yt = _mm256_loadu_si256(y.as_ptr().add(t) as *const __m256i);

            let a = _mm256_adds_epi8(xt0, vt0);
            let b = _mm256_adds_epi8(yt, ut);
            let za = _mm256_max_epi8(s, a);
            let z = _mm256_max_epi8(za, b);
            let un = _mm256_subs_epi8(z, vt0);
            let vn = _mm256_subs_epi8(z, ut);
            let xt = _mm256_adds_epi8(_mm256_subs_epi8(a, z), vq);
            let yt2 = _mm256_adds_epi8(_mm256_subs_epi8(b, z), vq);
            let xn = _mm256_subs_epi8(_mm256_max_epi8(xt, zero), vqe);
            let yn = _mm256_subs_epi8(_mm256_max_epi8(yt2, zero), vqe);

            _mm256_storeu_si256(u.as_mut_ptr().add(t) as *mut __m256i, un);
            _mm256_storeu_si256(v.as_mut_ptr().add(tp) as *mut __m256i, vn);
            _mm256_storeu_si256(x.as_mut_ptr().add(tp) as *mut __m256i, xn);
            _mm256_storeu_si256(y.as_mut_ptr().add(t) as *mut __m256i, yn);

            if let Some(row) = dir_row.as_deref_mut() {
                let mut d = _mm256_and_si256(_mm256_cmpgt_epi8(a, s), d1);
                d = _mm256_blendv_epi8(d, d2, _mm256_cmpgt_epi8(b, za));
                d = _mm256_or_si256(d, _mm256_and_si256(_mm256_cmpgt_epi8(xt, zero), d4));
                d = _mm256_or_si256(d, _mm256_and_si256(_mm256_cmpgt_epi8(yt2, zero), d8));
                _mm256_storeu_si256(row.as_mut_ptr().add(t - st) as *mut __m256i, d);
            }
            t += L;
        }
        while t <= en {
            let tp = t - st + off;
            let s = sc.subst(target[t], query[r - t]);
            let (unw, vnw, xnw, ynw, d) = cell_update(
                s,
                x[tp] as i32,
                v[tp] as i32,
                y[t] as i32,
                u[t] as i32,
                q,
                qe,
            );
            u[t] = unw;
            v[tp] = vnw;
            x[tp] = xnw;
            y[t] = ynw;
            if let Some(row) = dir_row.as_deref_mut() {
                row[t - st] = d;
            }
            t += 1;
        }
        let v_st0 = v[qlen - r.min(qlen)] as i32;
        let v_en = v[en + qlen - r] as i32;
        tracker.diag(r, st, en, u[st] as i32, u[en] as i32, v_st0, v_en, qe);
    }

    let (score, end_i, end_j) = tracker.finalize(mode);
    let cigar = dir.map(|d| {
        let mut c = AlignScratch::take_cigar(cigars);
        backtrack_into(d, end_i, end_j, &mut c);
        c
    });
    AlignResult {
        score,
        end_i,
        end_j,
        cigar,
        cells: tlen as u64 * qlen as u64,
    }
}

// Miri cannot execute vendor intrinsics; the simd tests are host-only.
#[cfg(all(test, not(miri)))]
mod tests {
    use super::*;
    use crate::scalar;
    use proptest::prelude::*;

    const SC: Scoring = Scoring::MAP_ONT;

    const MODES: [AlignMode; 4] = [
        AlignMode::Global,
        AlignMode::SemiGlobal,
        AlignMode::TargetSuffixFree,
        AlignMode::QuerySuffixFree,
    ];

    #[test]
    fn handles_vector_boundary_lengths() {
        if !available() {
            return;
        }
        for len in [31usize, 32, 33, 63, 64, 65, 96] {
            let t: Vec<u8> = (0..len).map(|i| ((i * 7 + 3) % 4) as u8).collect();
            let q: Vec<u8> = (0..len).map(|i| ((i * 5 + 1) % 4) as u8).collect();
            let gold = scalar::align_manymap(&t, &q, &SC, AlignMode::Global, true);
            assert_eq!(
                align_mm2(&t, &q, &SC, AlignMode::Global, true),
                gold,
                "len={len}"
            );
            assert_eq!(
                align_manymap(&t, &q, &SC, AlignMode::Global, true),
                gold,
                "len={len}"
            );
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn avx2_kernels_match_scalar(
            t in proptest::collection::vec(0u8..5, 1..200),
            q in proptest::collection::vec(0u8..5, 1..200),
            mode_idx in 0usize..4,
            with_path in proptest::bool::ANY,
        ) {
            prop_assume!(available());
            let mode = MODES[mode_idx];
            let gold = scalar::align_manymap(&t, &q, &SC, mode, with_path);
            prop_assert_eq!(align_mm2(&t, &q, &SC, mode, with_path), gold.clone());
            prop_assert_eq!(align_manymap(&t, &q, &SC, mode, with_path), gold);
        }
    }
}
