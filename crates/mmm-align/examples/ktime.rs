use mmm_align::{AlignMode, Engine, Scoring, Width};
use std::time::Instant;

fn main() {
    let n = 4000usize;
    let mut state = 42u64;
    let mut rnd = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
        (state >> 33) as usize
    };
    let t: Vec<u8> = (0..n).map(|_| (rnd() % 4) as u8).collect();
    let mut q = t.clone();
    for _ in 0..n / 8 {
        let p = rnd() % q.len();
        match rnd() % 3 {
            0 => q[p] = (rnd() % 4) as u8,
            1 => q.insert(p, (rnd() % 4) as u8),
            _ => {
                q.remove(p);
            }
        }
    }
    let sc = Scoring::MAP_ONT;
    for e in Engine::all() {
        if !e.is_available() || e.width == Width::Scalar {
            continue;
        }
        // median of 5 batches of 8 reps
        let mut samples = Vec::new();
        for _ in 0..5 {
            let start = Instant::now();
            for _ in 0..8 {
                std::hint::black_box(e.align(&t, &q, &sc, AlignMode::Global, false));
            }
            samples.push(start.elapsed().as_secs_f64() / 8.0);
        }
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let el = samples[2];
        let gcups = (t.len() as f64 * q.len() as f64) / el / 1e9;
        println!("{:22} {:8.3} GCUPS", e.label(), gcups);
    }
}
