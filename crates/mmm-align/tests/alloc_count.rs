//! The tentpole guarantee: once an [`AlignScratch`] has been warmed up at
//! a workload's largest problem size, the alignment hot path performs
//! **zero heap allocations** — across every kernel, mode and output shape,
//! including the CIGAR (recycled through the scratch pool).
//!
//! A counting global allocator makes the claim checkable: the counter is
//! thread-local so the other tests in this binary can't perturb it.
// Drives every available SIMD tier, which Miri cannot execute.
#![cfg(not(miri))]

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use mmm_align::{
    align_banded_with_scratch, align_manymap_2p_with_scratch, extend_zdrop_with_scratch, AlignMode,
    AlignScratch, Engine, Scoring, Scoring2,
};

struct CountingAlloc;

thread_local! {
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

// SAFETY: pure pass-through to `System` plus a thread-local counter bump —
// every allocator contract obligation is delegated unchanged, and the
// caller-supplied layout/pointer invariants are forwarded verbatim.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.with(|c| c.set(c.get() + 1));
        // SAFETY: same layout the caller passed, forwarded to `System`.
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: `ptr`/`layout` come from a matching `alloc` on `System`.
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.with(|c| c.set(c.get() + 1));
        // SAFETY: `ptr`/`layout` come from a matching `alloc` on `System`.
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn allocs_on_this_thread() -> u64 {
    ALLOCS.with(|c| c.get())
}

fn noisy(len: usize, seed: u64) -> (Vec<u8>, Vec<u8>) {
    let mut s = seed | 1;
    let mut rnd = move || {
        s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
        (s >> 33) as usize
    };
    let t: Vec<u8> = (0..len).map(|_| (rnd() % 4) as u8).collect();
    let mut q = t.clone();
    for _ in 0..len / 10 {
        let p = rnd() % q.len();
        q[p] = (rnd() % 4) as u8;
    }
    (t, q)
}

const MODES: [AlignMode; 4] = [
    AlignMode::Global,
    AlignMode::SemiGlobal,
    AlignMode::TargetSuffixFree,
    AlignMode::QuerySuffixFree,
];

/// One full sweep of the hot path: every available engine × mode × output,
/// plus the two-piece and z-drop kernels. CIGARs go back into the pool.
fn sweep(engines: &[Engine], t: &[u8], q: &[u8], scratch: &mut AlignScratch) -> i64 {
    let sc = Scoring::MAP_ONT;
    let mut acc = 0i64;
    for e in engines {
        for mode in MODES {
            for with_path in [false, true] {
                let r = e.align_with_scratch(t, q, &sc, mode, with_path, scratch);
                acc += r.score as i64;
                if let Some(c) = r.cigar {
                    scratch.recycle(c);
                }
            }
        }
    }
    let r2 =
        align_manymap_2p_with_scratch(t, q, &Scoring2::LONG_READ, AlignMode::Global, true, scratch);
    acc += r2.score as i64;
    if let Some(c) = r2.cigar {
        scratch.recycle(c);
    }
    let rz = extend_zdrop_with_scratch(t, q, &sc, i32::MAX, true, scratch);
    acc += rz.score as i64;
    scratch.recycle(rz.cigar);
    let rb = align_banded_with_scratch(t, q, &sc, 64, true, scratch)
        .expect("band covers the corner for this workload");
    acc += rb.score as i64;
    if let Some(c) = rb.cigar {
        scratch.recycle(c);
    }
    acc
}

#[test]
fn hot_path_allocates_nothing_after_warmup() {
    let engines: Vec<Engine> = Engine::all()
        .into_iter()
        .filter(|e| e.is_available())
        .collect();
    assert!(!engines.is_empty());
    let max_len = 1_500usize;
    let (t0, q0) = noisy(max_len, 3);

    // Warm-up: grow every buffer (and the CIGAR pool) to the workload's
    // largest problem.
    let mut scratch = AlignScratch::new();
    std::hint::black_box(sweep(&engines, &t0, &q0, &mut scratch));
    assert!(scratch.heap_bytes() > 0);

    // Steady state: repeated sweeps over problems up to that size must not
    // touch the allocator at all.
    let (t1, q1) = noisy(max_len / 2, 4);
    let before = allocs_on_this_thread();
    let mut acc = 0i64;
    for _ in 0..3 {
        acc += sweep(&engines, &t0, &q0, &mut scratch);
        acc += sweep(&engines, &t1, &q1, &mut scratch);
    }
    std::hint::black_box(acc);
    let after = allocs_on_this_thread();
    assert_eq!(
        after - before,
        0,
        "hot path allocated {} time(s) after warm-up",
        after - before
    );
}

#[test]
fn smaller_problems_reuse_the_grown_arena() {
    let mut scratch = AlignScratch::new();
    let e = mmm_align::best_engine();
    let sc = Scoring::MAP_ONT;
    let (t, q) = noisy(800, 9);
    let r = e.align_with_scratch(&t, &q, &sc, AlignMode::Global, true, &mut scratch);
    scratch.recycle(r.cigar.unwrap());
    // Any strictly smaller problem fits the grown buffers: no allocator
    // traffic at all, not even for the CIGAR (it comes from the pool).
    let (t2, q2) = noisy(100, 10);
    let before = allocs_on_this_thread();
    let r2 = e.align_with_scratch(&t2, &q2, &sc, AlignMode::Global, true, &mut scratch);
    scratch.recycle(r2.cigar.unwrap());
    assert_eq!(allocs_on_this_thread() - before, 0);
}
