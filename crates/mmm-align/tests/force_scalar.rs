//! End-to-end check of the `MMM_DISABLE_SIMD` environment override: with
//! every SIMD tier disabled, dispatch must settle on the scalar kernels and
//! produce output identical to the scalar reference.
//!
//! The override is read once per process, so this binary holds exactly one
//! test: it sets the variable before the first dispatch and every assertion
//! runs against that state. (Per-tier fallback order is covered
//! env-independently by `dispatch::tests` via explicit `DisabledTiers`
//! masks.)
#![cfg(not(miri))]

use mmm_align::{best_engine, best_mm2_engine, AlignMode, Engine, Layout, Scoring, Width};

#[test]
fn env_override_forces_scalar_with_identical_output() {
    std::env::set_var("MMM_DISABLE_SIMD", "sse,avx2,avx512");

    for w in [Width::Sse, Width::Avx2, Width::Avx512] {
        assert!(!w.is_available(), "{w:?} should be masked off by the env");
    }
    assert!(Width::Scalar.is_available());
    assert_eq!(best_engine(), Engine::new(Layout::Manymap, Width::Scalar));
    assert_eq!(best_mm2_engine(), Engine::new(Layout::Mm2, Width::Scalar));

    // The forced-scalar mapper default produces exactly the scalar result.
    let t = mmm_seq::to_nt4(b"ACGTTTACGGGACTACGTTACGACTAGCATCAGT");
    let q = mmm_seq::to_nt4(b"ACGTTACGGGCACTAGTTAGACTAGCTCAGT");
    let sc = Scoring::MAP_ONT;
    for mode in [
        AlignMode::Global,
        AlignMode::SemiGlobal,
        AlignMode::TargetSuffixFree,
        AlignMode::QuerySuffixFree,
    ] {
        let gold = mmm_align::scalar::align_manymap(&t, &q, &sc, mode, true);
        assert_eq!(
            best_engine().align(&t, &q, &sc, mode, true),
            gold,
            "{mode:?}"
        );
    }
}
