//! Integration matrix over the whole kernel zoo: every engine × every mode
//! × both outputs on workloads shaped like real inter-anchor fills, plus
//! the relationships between the one-piece, two-piece and banded aligners.
// Drives every available SIMD tier, which Miri cannot execute.
#![cfg(not(miri))]

use mmm_align::{
    align_banded, align_manymap_2p, fullmatrix2, AlignMode, Engine, Scoring, Scoring2,
};

fn fill_like_pair(len: usize, indel_every: usize, seed: u64) -> (Vec<u8>, Vec<u8>) {
    let mut s = seed | 1;
    let mut rnd = move || {
        s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
        (s >> 33) as usize
    };
    let t: Vec<u8> = (0..len).map(|_| (rnd() % 4) as u8).collect();
    let mut q = t.clone();
    let mut i = indel_every.max(2);
    while i < q.len() {
        match rnd() % 3 {
            0 => q[i] = (q[i] + 1) % 4,
            1 => q.insert(i, (rnd() % 4) as u8),
            _ => {
                q.remove(i);
            }
        }
        i += indel_every.max(2);
    }
    (t, q)
}

const MODES: [AlignMode; 4] = [
    AlignMode::Global,
    AlignMode::SemiGlobal,
    AlignMode::TargetSuffixFree,
    AlignMode::QuerySuffixFree,
];

#[test]
fn all_engines_agree_on_fill_workloads() {
    let sc = Scoring::MAP_ONT;
    let engines: Vec<Engine> = Engine::all()
        .into_iter()
        .filter(|e| e.is_available())
        .collect();
    assert!(engines.len() >= 2);
    for (len, every, seed) in [(137usize, 9usize, 1u64), (512, 17, 2), (1201, 31, 3)] {
        let (t, q) = fill_like_pair(len, every, seed);
        for mode in MODES {
            for with_path in [false, true] {
                let gold = engines[0].align(&t, &q, &sc, mode, with_path);
                for e in &engines[1..] {
                    let r = e.align(&t, &q, &sc, mode, with_path);
                    assert_eq!(
                        r,
                        gold,
                        "{} len={len} mode={mode:?} path={with_path}",
                        e.label()
                    );
                }
            }
        }
    }
}

#[test]
fn two_piece_upgrades_long_indels_without_hurting_clean_pairs() {
    let sc1 = Scoring::MAP_ONT;
    let sc2 = Scoring2::LONG_READ;
    // Clean pair: identical scores (no gaps at all).
    let t: Vec<u8> = (0..400).map(|i| ((i * 7 + 3) % 4) as u8).collect();
    let one = mmm_align::best_engine()
        .align(&t, &t, &sc1, AlignMode::Global, false)
        .score;
    let two = align_manymap_2p(&t, &t, &sc2, AlignMode::Global, false).score;
    assert_eq!(one, two);

    // 80-base deletion: the two-piece model pays q2 + 80·e2 = 104 instead
    // of 164, so its score must be exactly 60 higher.
    let mut tt = t.clone();
    let ins: Vec<u8> = (0..80).map(|i| ((i * 5 + 1) % 4) as u8).collect();
    tt.splice(200..200, ins);
    let one = mmm_align::best_engine()
        .align(&tt, &t, &sc1, AlignMode::Global, false)
        .score;
    let two = align_manymap_2p(&tt, &t, &sc2, AlignMode::Global, false).score;
    assert_eq!(two - one, (4 + 80 * 2) - (24 + 80));
}

#[test]
fn banded_matches_simd_kernels_when_band_is_sufficient() {
    let sc = Scoring::MAP_ONT;
    let (t, q) = fill_like_pair(800, 23, 9);
    let full = mmm_align::best_engine().align(&t, &q, &sc, AlignMode::Global, true);
    // The pair has ~35 scattered 1-base indels; a ±64 band easily holds
    // the optimum.
    let banded = align_banded(&t, &q, &sc, 64, true).expect("band connects the corner");
    assert_eq!(banded.score, full.score);
    assert_eq!(
        banded.cigar.as_ref().unwrap().score(&t, &q, &sc),
        banded.score
    );
    assert!(banded.cells < full.cells / 3);
}

#[test]
fn two_piece_reference_and_kernel_agree_on_fill_workloads() {
    let sc = Scoring2::LONG_READ;
    for (len, every, seed) in [(90usize, 7usize, 4u64), (300, 13, 5)] {
        let (t, q) = fill_like_pair(len, every, seed);
        for mode in MODES {
            let a = align_manymap_2p(&t, &q, &sc, mode, true);
            let b = fullmatrix2(&t, &q, &sc, mode, true);
            assert_eq!(a.score, b.score, "mode={mode:?}");
            assert_eq!(a.cigar, b.cigar, "mode={mode:?}");
        }
    }
}

#[test]
fn gcups_accounting_is_cells_based() {
    let (t, q) = fill_like_pair(256, 11, 6);
    let r = mmm_align::best_engine().align(&t, &q, &Scoring::MAP_ONT, AlignMode::Global, false);
    assert_eq!(r.cells, t.len() as u64 * q.len() as u64);
    assert!(r.gcups(1.0) > 0.0);
}
