//! Regression tests for the hot-path correctness fixes: out-of-range
//! scoring is rejected with a real error (not a release-mode wraparound),
//! and empty inputs take the degenerate path everywhere instead of
//! underflowing the diagonal bookkeeping.
// Drives every available SIMD tier, which Miri cannot execute.
#![cfg(not(miri))]

use mmm_align::diff::{DirMatrix, Tracker};
use mmm_align::{
    align_manymap_2p, extend_align, extend_zdrop, AlignError, AlignMode, AlignScratch, Engine,
    Scoring, Scoring2,
};

/// `q + e` big enough that the Suzuki–Kasahara deltas overflow `i8`
/// (`2(q+e)+b = 130 > 127`) — the kind of parameters that used to wrap
/// silently in release builds.
const OVERFLOWING: Scoring = Scoring {
    a: 2,
    b: 4,
    ambi: 1,
    q: 60,
    e: 3,
};

const MODES: [AlignMode; 4] = [
    AlignMode::Global,
    AlignMode::SemiGlobal,
    AlignMode::TargetSuffixFree,
    AlignMode::QuerySuffixFree,
];

#[test]
fn try_align_rejects_scoring_that_overflows_i8() {
    assert!(!OVERFLOWING.fits_i8());
    let (t, q) = (vec![0u8, 1, 2, 3], vec![0u8, 1, 2, 3]);
    for e in Engine::all().into_iter().filter(|e| e.is_available()) {
        for mode in MODES {
            let err = e.try_align(&t, &q, &OVERFLOWING, mode, true).unwrap_err();
            assert_eq!(
                err,
                AlignError::ScoringOverflowsI8(OVERFLOWING),
                "{}",
                e.label()
            );
        }
    }
    // Zero extension cost and non-positive match score are also rejected.
    for sc in [
        Scoring {
            e: 0,
            ..Scoring::MAP_ONT
        },
        Scoring {
            a: 0,
            ..Scoring::MAP_ONT
        },
    ] {
        let err = mmm_align::best_engine().try_align(&t, &q, &sc, AlignMode::Global, false);
        assert_eq!(err.unwrap_err(), AlignError::ScoringOverflowsI8(sc));
    }
}

#[test]
fn try_align_accepts_valid_scoring() {
    let (t, q) = (vec![0u8, 1, 2, 3], vec![0u8, 1, 2, 3]);
    let e = mmm_align::best_engine();
    let r = e
        .try_align(&t, &q, &Scoring::MAP_ONT, AlignMode::Global, true)
        .unwrap();
    assert_eq!(r.score, 8);
    assert_eq!(
        e.align(&t, &q, &Scoring::MAP_ONT, AlignMode::Global, true),
        r
    );
}

#[test]
fn align_error_display_names_the_bound() {
    let msg = AlignError::ScoringOverflowsI8(OVERFLOWING).to_string();
    assert!(msg.contains("overflow"), "{msg}");
    assert!(msg.contains("127"), "{msg}");
}

#[test]
fn empty_inputs_take_the_degenerate_path_in_every_kernel() {
    let sc = Scoring::MAP_ONT;
    let seq = vec![0u8, 1, 2, 3, 0, 1];
    let mut scratch = AlignScratch::new();
    for e in Engine::all().into_iter().filter(|e| e.is_available()) {
        for mode in MODES {
            for (t, q) in [(&seq[..], &[][..]), (&[][..], &seq[..]), (&[][..], &[][..])] {
                let r = e.align_with_scratch(t, q, &sc, mode, true, &mut scratch);
                let gold = mmm_align::fullmatrix::align(t, q, &sc, mode, true);
                assert_eq!(r, gold, "{} {mode:?} {}x{}", e.label(), t.len(), q.len());
                let cigar = r.cigar.expect("degenerate path still yields a cigar");
                if mode == AlignMode::Global {
                    // A global path must still consume both sequences.
                    assert_eq!(cigar.target_len() as usize, t.len(), "{}", e.label());
                    assert_eq!(cigar.query_len() as usize, q.len(), "{}", e.label());
                }
            }
        }
    }
    // The satellite kernels share the same gate.
    let r = align_manymap_2p(&seq, &[], &Scoring2::LONG_READ, AlignMode::Global, true);
    assert_eq!(r.cigar.unwrap().target_len() as usize, seq.len());
    assert_eq!(extend_zdrop(&[], &seq, &sc, 100, true).score, 0);
    let ext = extend_align(&[], &[], &sc, mmm_align::best_engine());
    assert_eq!((ext.t_consumed, ext.q_consumed), (0, 0));
}

#[test]
#[should_panic(expected = "DirMatrix is undefined for empty inputs")]
fn dir_matrix_rejects_empty_target() {
    let _ = DirMatrix::new(0, 5);
}

#[test]
#[should_panic(expected = "DirMatrix is undefined for empty inputs")]
fn dir_matrix_reset_rejects_empty_query() {
    let mut m = DirMatrix::empty();
    m.reset(5, 0);
}

#[test]
#[should_panic(expected = "Tracker is undefined for empty inputs")]
fn tracker_rejects_empty_inputs() {
    let _ = Tracker::new(0, 0);
}
