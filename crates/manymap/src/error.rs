//! Top-level error type for mapping runs.
//!
//! Every failure below — an unreadable input, a corrupt index, a dead byte
//! stream mid-file, a pipeline stage error — flows up to the CLI as a
//! [`MapError`] naming the file (and, via the wrapped sources, the byte
//! offset) involved, and exits nonzero. Only per-read alignment failures
//! degrade instead of aborting; see [`crate::mapper::MapReadError`].

use std::fmt;
use std::io;

use mmm_index::IndexError;
use mmm_pipeline::PipelineError;
use mmm_seq::SeqError;

/// A fatal error from an end-to-end mapping run.
#[derive(Debug)]
pub enum MapError {
    /// Plain I/O failure on a named file (or stream).
    Io { path: String, source: io::Error },
    /// FASTA/FASTQ input failed; `SeqError` carries the byte/line position.
    Seq { path: String, source: SeqError },
    /// Index loading failed; `IndexError` distinguishes open/IO/corruption
    /// and carries the byte offset.
    Index { path: String, source: IndexError },
    /// The mapping pipeline stopped early (stage error or worker panic).
    Pipeline(PipelineError),
    /// Bad invocation or unusable input (reported without a source chain).
    Usage(String),
}

impl fmt::Display for MapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MapError::Io { path, source } => write!(f, "{path}: {source}"),
            MapError::Seq { path, source } => write!(f, "{path}: {source}"),
            MapError::Index { path, source } => write!(f, "{path}: {source}"),
            MapError::Pipeline(e) => write!(f, "{e}"),
            MapError::Usage(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for MapError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MapError::Io { source, .. } => Some(source),
            MapError::Seq { source, .. } => Some(source),
            MapError::Index { source, .. } => Some(source),
            MapError::Pipeline(e) => Some(e),
            MapError::Usage(_) => None,
        }
    }
}

impl From<PipelineError> for MapError {
    fn from(e: PipelineError) -> Self {
        MapError::Pipeline(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_path() {
        let e = MapError::Index {
            path: "ref.mmx".into(),
            source: IndexError::Corrupt {
                offset: Some(20),
                what: "bad length".into(),
            },
        };
        let s = e.to_string();
        assert!(s.contains("ref.mmx"), "{s}");
        assert!(s.contains("at byte 20"), "{s}");
    }
}
