//! SAM output (the paper runs minimap2/manymap with `-a`, i.e. SAM).

use std::io::{self, Write};

use mmm_seq::nt4_decode;

use crate::mapper::Mapping;

/// SAM flag bits used here.
const FLAG_REV: u16 = 0x10;
const FLAG_SECONDARY: u16 = 0x100;
const FLAG_UNMAPPED: u16 = 0x4;

/// Write the SAM header for a reference set.
pub fn write_sam_header<W: Write>(w: &mut W, tnames: &[String], tlens: &[usize]) -> io::Result<()> {
    writeln!(w, "@HD\tVN:1.6\tSO:unknown")?;
    for (n, l) in tnames.iter().zip(tlens) {
        writeln!(w, "@SQ\tSN:{n}\tLN:{l}")?;
    }
    writeln!(w, "@PG\tID:manymap\tPN:manymap-rs")
}

/// One SAM record. `query` is the read in nt4 codes (forward orientation);
/// reverse-strand mappings emit the reverse-complemented bases, as SAM
/// requires.
pub fn sam_line(qname: &str, query: &[u8], tnames: &[String], m: &Mapping) -> String {
    let mut flag = 0u16;
    if m.rev {
        flag |= FLAG_REV;
    }
    if !m.primary {
        flag |= FLAG_SECONDARY;
    }
    let seq = if m.rev {
        nt4_decode(&mmm_seq::revcomp4(query))
    } else {
        nt4_decode(query)
    };
    // Soft-clip the unaligned prefix/suffix (in the mapped orientation).
    let (clip5, clip3) = if m.rev {
        (query.len() as u32 - m.q_end, m.q_start)
    } else {
        (m.q_start, query.len() as u32 - m.q_end)
    };
    let cigar = match &m.cigar {
        Some(c) => {
            let mut s = String::new();
            if clip5 > 0 {
                s.push_str(&format!("{clip5}S"));
            }
            s.push_str(&c.to_string());
            if clip3 > 0 {
                s.push_str(&format!("{clip3}S"));
            }
            s
        }
        None => "*".to_string(),
    };
    format!(
        "{qname}\t{flag}\t{}\t{}\t{}\t{cigar}\t*\t0\t0\t{}\t*\tAS:i:{}\ts1:i:{}",
        tnames[m.rid as usize],
        m.ref_start + 1, // SAM is 1-based
        m.mapq,
        String::from_utf8_lossy(&seq),
        m.align_score,
        m.chain_score,
    )
}

/// An unmapped record.
pub fn sam_unmapped(qname: &str, query: &[u8]) -> String {
    format!(
        "{qname}\t{FLAG_UNMAPPED}\t*\t0\t0\t*\t*\t0\t0\t{}\t*",
        String::from_utf8_lossy(&nt4_decode(query))
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmm_align::{Cigar, CigarOp};

    fn mapping(rev: bool) -> Mapping {
        let mut c = Cigar::new();
        c.push(CigarOp::Match, 4);
        Mapping {
            rid: 0,
            ref_start: 99,
            ref_end: 103,
            q_start: 1,
            q_end: 5,
            rev,
            primary: true,
            mapq: 60,
            chain_score: 10,
            align_score: 8,
            matches: 4,
            block_len: 4,
            cigar: Some(c),
        }
    }

    #[test]
    fn header_and_line_shape() {
        let mut buf = Vec::new();
        write_sam_header(&mut buf, &["chr1".into()], &[1000]).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("@SQ\tSN:chr1\tLN:1000"));

        let q = mmm_seq::to_nt4(b"AACGTT");
        let line = sam_line("r1", &q, &["chr1".into()], &mapping(false));
        let cols: Vec<&str> = line.split('\t').collect();
        assert_eq!(cols[1], "0");
        assert_eq!(cols[3], "100"); // 1-based
        assert_eq!(cols[5], "1S4M1S");
        assert_eq!(cols[9], "AACGTT");
    }

    #[test]
    fn reverse_mapping_flips_seq_and_clips() {
        let q = mmm_seq::to_nt4(b"AACGTT");
        let line = sam_line("r1", &q, &["chr1".into()], &mapping(true));
        let cols: Vec<&str> = line.split('\t').collect();
        assert_eq!(cols[1], "16");
        assert_eq!(
            cols[9],
            "AACGTT"
                .chars()
                .rev()
                .map(|c| match c {
                    'A' => 'T',
                    'C' => 'G',
                    'G' => 'C',
                    'T' => 'A',
                    x => x,
                })
                .collect::<String>()
        );
        // clip5 = qlen - q_end = 1, clip3 = q_start = 1.
        assert_eq!(cols[5], "1S4M1S");
    }

    #[test]
    fn unmapped_record() {
        let q = mmm_seq::to_nt4(b"ACGT");
        let line = sam_unmapped("r2", &q);
        assert!(line.starts_with("r2\t4\t*"));
    }
}
