//! `mmm-serve` — alignment-as-a-service over a local socket (DESIGN.md
//! §12).
//!
//! A long-running daemon accepting many concurrent read streams, running
//! them through the standard plan → dispatch → finalize pipeline behind
//! ONE shared supervised backend session:
//!
//! * [`proto`] — the length-prefixed frame protocol and READ encoding;
//! * [`tenant`] — per-tenant queues, admission control, SLO metrics;
//! * [`sched`] — deficit-round-robin fairness across tenants, in bases;
//! * [`server`] — the daemon: accept loop, session threads, the shared
//!   pipeline, stats endpoint, drain-on-signal;
//! * [`signal`] — SIGTERM/SIGINT → drain flag.
//!
//! Every tenant's output is byte-identical to a solo `manymap map` run of
//! the same reads, including under injected backend fault plans — the
//! serve test suite enforces both.

pub mod proto;
pub mod sched;
pub mod server;
pub mod signal;
pub mod tenant;

pub use proto::{
    decode_read, encode_read, read_frame, read_frame_poll, write_frame, Frame, FramePoll, Op,
    MAX_FRAME,
};
pub use sched::{DrrConfig, DrrScheduler};
pub use server::{serve, ServeOpts};
pub use tenant::{LatencyHistogram, ServeItem, TenantRegistry, TenantState};
