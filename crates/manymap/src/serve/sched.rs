//! Fair scheduling across tenants: deficit round robin in bases.
//!
//! The daemon runs ONE shared pipeline over ONE shared backend session, so
//! whatever order reads leave the tenant input queues *is* the service
//! policy. Plain round robin in reads would let a tenant with long reads
//! monopolize the backend (alignment cost scales with bases, not reads);
//! deficit round robin charges each tenant for the bases it ships:
//!
//! * every round, each backlogged tenant's deficit grows by the quantum;
//! * the tenant dequeues reads while its deficit lasts, paying each read's
//!   length (one read of overshoot is allowed — [`BoundedQueue`] has no
//!   peek, and bounding overshoot by the max read length keeps long-run
//!   fairness intact);
//! * a tenant with an empty queue loses its deficit (standard DRR: credit
//!   does not accrue while idle);
//! * a tenant without **output credit** (its in-flight count has reached
//!   its output queue's capacity) is skipped entirely: a slow consumer
//!   stops being scheduled instead of wedging the shared pipeline writer.
//!
//! Dequeued reads are packed into batches of at most `batch_bases` and
//! pushed to the pipeline's input queue — a blocking push, so the pipeline
//! itself backpressures the scheduler.

use std::sync::atomic::Ordering;
use std::sync::Arc;

use mmm_pipeline::BoundedQueue;

use super::tenant::{ServeItem, TenantRegistry, TenantState};

/// Scheduler tuning. Defaults match the CLI's batch geometry: the CLI
/// reads 4 Mbase batches, and the quantum is sized so a handful of tenants
/// fill one batch per round.
#[derive(Clone, Copy, Debug)]
pub struct DrrConfig {
    /// Bases added to each backlogged tenant's deficit per round.
    pub quantum_bases: usize,
    /// Target bases per pipeline batch.
    pub batch_bases: usize,
}

impl Default for DrrConfig {
    fn default() -> Self {
        DrrConfig {
            quantum_bases: 1_000_000,
            batch_bases: 4_000_000,
        }
    }
}

/// Per-round scheduler state (the deficit ledger), separate from the
/// registry so only the scheduler thread touches it.
pub struct DrrScheduler {
    cfg: DrrConfig,
    deficits: Vec<usize>,
    /// Round-robin cursor so the same tenant does not lead every round.
    next: usize,
}

impl DrrScheduler {
    pub fn new(cfg: DrrConfig) -> Self {
        DrrScheduler {
            cfg,
            deficits: Vec::new(),
            next: 0,
        }
    }

    /// Output credit: how many more reads this tenant may have in flight
    /// before its (bounded) output queue could fill.
    fn credit(t: &TenantState) -> u64 {
        (t.outq.capacity() as u64).saturating_sub(t.in_flight())
    }

    /// Run one DRR round over `tenants`, pushing full batches into
    /// `pipe_in`. Returns the number of reads scheduled this round.
    ///
    /// `pipe_in.push` blocks when the pipeline is behind; that is the
    /// intended backpressure edge, not a failure. A closed pipeline queue
    /// ends the round early (daemon shutdown).
    pub fn round(
        &mut self,
        tenants: &[Arc<TenantState>],
        pipe_in: &BoundedQueue<Vec<ServeItem>>,
    ) -> usize {
        if self.deficits.len() < tenants.len() {
            self.deficits.resize(tenants.len(), 0);
        }
        let n = tenants.len();
        if n == 0 {
            return 0;
        }
        let mut batch: Vec<ServeItem> = Vec::new();
        let mut batch_bases = 0usize;
        let mut scheduled = 0usize;
        let start = self.next % n;
        self.next = self.next.wrapping_add(1);
        for k in 0..n {
            let t = &tenants[(start + k) % n];
            let d = &mut self.deficits[t.id];
            if t.inq.is_empty() {
                *d = 0; // idle flows do not accrue credit
                continue;
            }
            *d = d.saturating_add(self.cfg.quantum_bases);
            let mut credit = Self::credit(t);
            while *d > 0 && credit > 0 {
                let Some(item) = t.inq.try_pop() else {
                    *d = 0;
                    break;
                };
                let len = item.rec.len();
                *d = d.saturating_sub(len.max(1));
                credit -= 1;
                t.scheduled.fetch_add(1, Ordering::AcqRel);
                batch_bases += len;
                batch.push(item);
                scheduled += 1;
                if batch_bases >= self.cfg.batch_bases {
                    if pipe_in.push(std::mem::take(&mut batch)).is_err() {
                        return scheduled; // pipeline shut down
                    }
                    batch_bases = 0;
                }
            }
        }
        if !batch.is_empty() {
            let _ = pipe_in.push(batch);
        }
        scheduled
    }

    /// The blocking scheduler loop. Runs until `stop()` goes true *and*
    /// every tenant queue has been flushed, then closes `pipe_in` so the
    /// pipeline drains and returns — the SIGTERM guarantee: every accepted
    /// read is flushed before exit.
    pub fn run(
        &mut self,
        registry: &TenantRegistry,
        pipe_in: &BoundedQueue<Vec<ServeItem>>,
        stop: impl Fn() -> bool,
    ) {
        loop {
            // A closed pipeline queue means the pipeline itself is gone
            // (fatal dispatch error): stop scheduling instead of pushing
            // into the void.
            if pipe_in.is_closed() {
                return;
            }
            let tenants = registry.snapshot();
            let moved = self.round(&tenants, pipe_in);
            if moved == 0 {
                if stop() && tenants.iter().all(|t| t.inq.is_empty()) {
                    break;
                }
                // Idle: nothing schedulable (no input, or no output credit).
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
        }
        pipe_in.close();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmm_seq::SeqRecord;
    use std::time::Instant;

    fn item(tenant: usize, len: usize) -> ServeItem {
        ServeItem {
            tenant,
            rec: SeqRecord::new(format!("r{len}"), vec![b'A'; len]),
            accepted_at: Instant::now(),
        }
    }

    fn registry_with(lens: &[&[usize]]) -> (TenantRegistry, Vec<Arc<TenantState>>) {
        // Queue bounds sized above every backlog below: `inq.push` blocks
        // when full, and no scheduler is draining yet during setup.
        let reg = TenantRegistry::new(16, 256, 64);
        let mut ts = Vec::new();
        for (i, tenant_lens) in lens.iter().enumerate() {
            let t = reg.admit(&format!("t{i}")).unwrap();
            for &l in *tenant_lens {
                assert!(t.inq.push(item(t.id, l)).is_ok());
            }
            ts.push(t);
        }
        (reg, ts)
    }

    /// Equal backlogs get near-equal base shares per round, regardless of
    /// read length mix.
    #[test]
    fn drr_shares_bases_not_reads() {
        // Tenant 0 ships 10k-base reads, tenant 1 ships 1k-base reads.
        let (_reg, ts) = registry_with(&[&[10_000; 20], &[1_000; 200]]);
        let pipe: BoundedQueue<Vec<ServeItem>> = BoundedQueue::new(64);
        let mut s = DrrScheduler::new(DrrConfig {
            quantum_bases: 10_000,
            batch_bases: 1_000_000,
        });
        s.round(&ts, &pipe);
        // One round, one quantum each: ~1 long read vs ~10 short reads.
        let mut by_tenant = [0usize; 2];
        while let Some(b) = pipe.try_pop() {
            for it in b {
                by_tenant[it.tenant] += it.rec.len();
            }
        }
        let (a, b) = (by_tenant[0] as f64, by_tenant[1] as f64);
        assert!(a > 0.0 && b > 0.0);
        assert!(
            (a / b) < 2.5 && (b / a) < 2.5,
            "base shares too skewed: {by_tenant:?}"
        );
    }

    /// A tenant without output credit is skipped; others still progress.
    #[test]
    fn slow_consumer_is_skipped_not_blocking() {
        let (_reg, ts) = registry_with(&[&[100; 8], &[100; 8]]);
        // Tenant 0 is "slow": its output queue is already fully committed.
        ts[0].scheduled.store(64, Ordering::Release);
        let pipe: BoundedQueue<Vec<ServeItem>> = BoundedQueue::new(64);
        let mut s = DrrScheduler::new(DrrConfig::default());
        let n = s.round(&ts, &pipe);
        assert_eq!(n, 8, "only the healthy tenant was scheduled");
        let batch = pipe.try_pop().unwrap();
        assert!(batch.iter().all(|i| i.tenant == 1));
        assert_eq!(ts[0].inq.len(), 8, "slow tenant's backlog is untouched");
    }

    /// Batches respect the base budget (with single-read overshoot).
    #[test]
    fn batches_split_at_the_base_budget() {
        let (_reg, ts) = registry_with(&[&[600; 10]]);
        let pipe: BoundedQueue<Vec<ServeItem>> = BoundedQueue::new(64);
        let mut s = DrrScheduler::new(DrrConfig {
            quantum_bases: 100_000,
            batch_bases: 1_000,
        });
        s.round(&ts, &pipe);
        let mut sizes = Vec::new();
        while let Some(b) = pipe.try_pop() {
            sizes.push(b.iter().map(|i| i.rec.len()).sum::<usize>());
        }
        assert!(sizes.len() >= 5, "{sizes:?}");
        for s in &sizes {
            assert!(
                *s <= 1_000 + 600,
                "batch of {s} bases exceeds budget+overshoot"
            );
        }
    }

    /// `run` flushes every queued read after `stop` flips, then closes the
    /// pipeline queue — the drain contract.
    #[test]
    fn run_drains_then_closes() {
        let (reg, ts) = registry_with(&[&[50; 30], &[50; 30]]);
        for t in &ts {
            t.ended.store(true, Ordering::Release);
        }
        let pipe: BoundedQueue<Vec<ServeItem>> = BoundedQueue::new(64);
        let mut s = DrrScheduler::new(DrrConfig::default());
        s.run(&reg, &pipe, || true);
        let mut total = 0;
        while let Some(b) = pipe.try_pop() {
            total += b.len();
        }
        assert_eq!(total, 60, "every accepted read was flushed");
        assert!(pipe.is_closed());
    }
}
