//! Per-tenant session state: queues, admission, and SLO metrics.
//!
//! Each connected tenant owns two bounded queues — reads in, formatted
//! records out — and a set of counters the stats endpoint reports. The
//! queues are the backpressure story (DESIGN.md §12):
//!
//! * the **input queue** bounds reads accepted but not yet scheduled; when
//!   it fills, the session thread blocks in `push`, the socket buffer
//!   fills, and the *client* stalls — the daemon's memory stays bounded;
//! * the **output queue** bounds records finalized but not yet sent. The
//!   scheduler only takes a read from a tenant when that tenant has output
//!   credit (`outq` capacity minus in-flight reads), so the pipeline's
//!   writer never blocks on a slow consumer and one stalled tenant cannot
//!   wedge the shared pipeline.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use mmm_pipeline::{lock_unpoisoned, BoundedQueue};
use mmm_seq::SeqRecord;

/// One read travelling through the shared pipeline, tagged with its tenant
/// and acceptance time (for the latency histogram).
pub struct ServeItem {
    pub tenant: usize,
    pub rec: SeqRecord,
    pub accepted_at: Instant,
}

/// A fixed-size log₂ latency histogram: bucket `i` counts samples in
/// `[2^i, 2^(i+1))` microseconds. Lock-free recording; quantiles are
/// bucket-upper-bound estimates, plenty for p50/p99 SLO reporting.
pub struct LatencyHistogram {
    buckets: [AtomicU64; 40],
    count: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
        }
    }
}

impl LatencyHistogram {
    pub fn record_micros(&self, micros: u64) {
        let b = (64 - micros.max(1).leading_zeros() as usize - 1).min(self.buckets.len() - 1);
        self.buckets[b].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// The upper bound (µs) of the bucket containing quantile `q` (0..=1),
    /// or `None` before any sample.
    pub fn quantile_micros(&self, q: f64) -> Option<u64> {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return None;
        }
        let rank = ((total as f64 * q).ceil() as u64).clamp(1, total);
        let mut seen = 0;
        for (i, c) in counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(1u64 << (i + 1));
            }
        }
        Some(1u64 << self.buckets.len())
    }

    /// `"p50 ≤2.0ms, p99 ≤16.4ms"`, or `"no samples"` before any read.
    pub fn slo_summary(&self) -> String {
        match (self.quantile_micros(0.50), self.quantile_micros(0.99)) {
            (Some(p50), Some(p99)) => format!(
                "p50 <={:.1}ms, p99 <={:.1}ms",
                p50 as f64 / 1000.0,
                p99 as f64 / 1000.0
            ),
            _ => "no samples".to_string(),
        }
    }
}

/// Everything the daemon tracks for one tenant session.
pub struct TenantState {
    pub id: usize,
    pub name: String,
    /// Reads accepted from the socket, waiting for the fair scheduler.
    pub inq: BoundedQueue<ServeItem>,
    /// Formatted records waiting for the session writer to send.
    pub outq: BoundedQueue<String>,
    /// Reads accepted from the client.
    pub accepted: AtomicU64,
    /// Reads handed to the pipeline by the scheduler.
    pub scheduled: AtomicU64,
    /// Records routed into `outq` by the pipeline writer.
    pub delivered: AtomicU64,
    /// Records actually written to the tenant's socket by its session
    /// writer.
    pub sent: AtomicU64,
    /// Reads degraded to unmapped because the backend quarantined a job.
    pub quarantined: AtomicU64,
    /// Reads degraded for any other reason (panic, over length limit).
    pub degraded: AtomicU64,
    /// Candidate chains the pre-alignment filter rejected.
    pub prefilter_rejected: AtomicU64,
    /// The client sent END (or the daemon is draining): no more reads.
    pub ended: AtomicBool,
    /// Accept-to-deliver latency per read.
    pub latency: LatencyHistogram,
}

impl TenantState {
    pub fn new(id: usize, name: String, inq_reads: usize, outq_records: usize) -> Self {
        TenantState {
            id,
            name,
            inq: BoundedQueue::new(inq_reads),
            outq: BoundedQueue::new(outq_records),
            accepted: AtomicU64::new(0),
            scheduled: AtomicU64::new(0),
            delivered: AtomicU64::new(0),
            sent: AtomicU64::new(0),
            quarantined: AtomicU64::new(0),
            degraded: AtomicU64::new(0),
            prefilter_rejected: AtomicU64::new(0),
            ended: AtomicBool::new(false),
            latency: LatencyHistogram::default(),
        }
    }

    /// Reads scheduled but not yet *sent to the socket* — the scheduler's
    /// credit gate. Measured against `sent` (not `delivered`): records can
    /// pile up in `outq` behind a client that stops reading, and each such
    /// record still occupies the output slot its scheduling reserved. With
    /// `in_flight` capped at `outq.capacity()`, the pipeline writer's push
    /// into `outq` always finds room, so a slow consumer starves only
    /// itself — never the shared pipeline.
    pub fn in_flight(&self) -> u64 {
        self.scheduled
            .load(Ordering::Acquire)
            .saturating_sub(self.sent.load(Ordering::Acquire))
    }

    /// The session is fully settled: no more input, nothing in flight,
    /// every accepted read scheduled, finalized, and sent.
    pub fn settled(&self) -> bool {
        self.ended.load(Ordering::Acquire)
            && self.inq.is_empty()
            && self.sent.load(Ordering::Acquire) == self.accepted.load(Ordering::Acquire)
            && self.scheduled.load(Ordering::Acquire) == self.accepted.load(Ordering::Acquire)
    }

    /// One stats line for the report / DONE summary.
    pub fn summary(&self) -> String {
        format!(
            "tenant {}: {} accepted, {} sent, {} in flight, {} quarantined, \
             {} degraded, {} prefilter-rejected, latency {}",
            self.name,
            self.accepted.load(Ordering::Relaxed),
            self.sent.load(Ordering::Relaxed),
            self.in_flight(),
            self.quarantined.load(Ordering::Relaxed),
            self.degraded.load(Ordering::Relaxed),
            self.prefilter_rejected.load(Ordering::Relaxed),
            self.latency.slo_summary()
        )
    }
}

/// The tenant registry: admission control plus the stats snapshot.
pub struct TenantRegistry {
    tenants: Mutex<Vec<Arc<TenantState>>>,
    pub max_tenants: usize,
    pub inq_reads: usize,
    pub outq_records: usize,
}

impl TenantRegistry {
    pub fn new(max_tenants: usize, inq_reads: usize, outq_records: usize) -> Self {
        TenantRegistry {
            tenants: Mutex::new(Vec::new()),
            max_tenants: max_tenants.max(1),
            inq_reads: inq_reads.max(1),
            outq_records: outq_records.max(1),
        }
    }

    /// Admit a new tenant, or refuse when the live-session cap is reached.
    /// Ended tenants stay in the registry for stats but do not count
    /// against admission.
    pub fn admit(&self, name: &str) -> Result<Arc<TenantState>, String> {
        let mut g = lock_unpoisoned(&self.tenants);
        let live = g
            .iter()
            .filter(|t| !t.ended.load(Ordering::Acquire))
            .count();
        if live >= self.max_tenants {
            return Err(format!(
                "admission denied: {live} live tenant(s) at the --max-tenants cap"
            ));
        }
        let t = Arc::new(TenantState::new(
            g.len(),
            name.to_string(),
            self.inq_reads,
            self.outq_records,
        ));
        g.push(t.clone());
        Ok(t)
    }

    /// Snapshot of every tenant ever admitted (live and ended).
    pub fn snapshot(&self) -> Vec<Arc<TenantState>> {
        lock_unpoisoned(&self.tenants).clone()
    }

    pub fn get(&self, id: usize) -> Option<Arc<TenantState>> {
        lock_unpoisoned(&self.tenants).get(id).cloned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles_bracket_samples() {
        let h = LatencyHistogram::default();
        for _ in 0..99 {
            h.record_micros(1_000); // ~1ms
        }
        h.record_micros(1_000_000); // one 1s outlier
        let p50 = h.quantile_micros(0.50).unwrap();
        let p99 = h.quantile_micros(0.99).unwrap();
        assert!((1_000..=2_048).contains(&p50), "p50 {p50}");
        assert!(p99 <= 2_048, "p99 {p99} should exclude the 1% outlier");
        assert!(h.quantile_micros(1.0).unwrap() >= 1_000_000);
        assert!(h.slo_summary().starts_with("p50"));
    }

    #[test]
    fn admission_caps_live_tenants_only() {
        let reg = TenantRegistry::new(2, 4, 4);
        let a = reg.admit("a").unwrap();
        let _b = reg.admit("b").unwrap();
        let err = match reg.admit("c") {
            Ok(_) => panic!("third tenant admitted past the cap"),
            Err(e) => e,
        };
        assert!(err.contains("admission denied"), "{err}");
        // An ended session frees its slot but stays visible in stats.
        a.ended.store(true, Ordering::Release);
        let _c = reg.admit("c").unwrap();
        assert_eq!(reg.snapshot().len(), 3);
    }

    #[test]
    fn in_flight_and_settled_track_counters() {
        let t = TenantState::new(0, "t".into(), 4, 4);
        assert!(!t.settled());
        t.accepted.store(3, Ordering::Release);
        t.scheduled.store(3, Ordering::Release);
        t.delivered.store(3, Ordering::Release);
        t.sent.store(1, Ordering::Release);
        t.ended.store(true, Ordering::Release);
        // Two records delivered to the output queue but unread by the
        // client still count as in flight: their output slots are held.
        assert_eq!(t.in_flight(), 2);
        assert!(!t.settled());
        t.sent.store(3, Ordering::Release);
        assert!(t.settled());
    }
}
