//! The `mmm-serve` daemon: many tenants, one shared pipeline, one shared
//! backend session (DESIGN.md §12).
//!
//! Thread topology (all scoped; [`serve`] returns only after every thread
//! has exited):
//!
//! ```text
//! accept loop ──spawns──▶ session reader ─┬─▶ tenant.inq ─┐
//!                         (per connection) │              │  DRR
//!                         session writer ◀─┤  tenant.outq │ scheduler
//!                         (per tenant)     │       ▲      ▼
//!                                          │   pipeline writer ◀─ plan →
//!                                          │            dispatch → finalize
//!                                          └──────── (shared, one backend)
//! ```
//!
//! * **session reader** — speaks the frame protocol, pushes accepted reads
//!   into its tenant's bounded input queue (blocking = per-tenant
//!   backpressure to the client's socket);
//! * **DRR scheduler** — [`super::sched`]: fair, credit-gated batching
//!   across tenants into the pipeline's input queue;
//! * **pipeline** — the same plan → dispatch → finalize machinery as the
//!   CLI ([`mmm_pipeline::try_run_three_thread_batched_from_queue`]),
//!   running every tenant's reads through ONE supervised backend session;
//!   its writer routes each finalized record to the owning tenant's output
//!   queue and stamps the latency histogram;
//! * **session writer** — drains its tenant's output queue to the socket
//!   as `REC` frames (submission order), then reports `DONE`.
//!
//! Output is byte-identical to a solo `manymap map` run of the same reads:
//! mapping is per-read deterministic, the scheduler only reorders *between*
//! reads, and each read's records are formatted by the same code paths.
//!
//! Draining: SIGTERM/SIGINT (via [`super::signal`]) or the `DRAIN` opcode
//! stops the accept loop and session readers, the scheduler flushes every
//! accepted read and closes the pipeline queue, the pipeline drains, and
//! session writers deliver everything before `DONE` — no accepted read is
//! ever dropped.

use std::io::Write;
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::Scope;
use std::time::{Duration, Instant};

use mmm_align::{AlignResult, AlignScratch};
use mmm_exec::{
    prepare_supervised, AlignBackend, BackendKind, BackendOptions, BackendStats, JobOutcome,
    SchedConfig, StatsReport, StatsSink, SupervisorConfig,
};
use mmm_index::MinimizerIndex;
use mmm_pipeline::{
    lock_unpoisoned, try_run_three_thread_batched_from_queue, BoundedQueue, DynError,
};
use mmm_seq::SeqRecord;

use crate::mapper::{MapReadError, ReadPlan};
use crate::{paf_line, paf_unmapped, MapError, MapOpts, Mapper};

use super::proto::{decode_read, read_frame_poll, write_frame, FramePoll, Op};
use super::sched::{DrrConfig, DrrScheduler};
use super::signal;
use super::tenant::{ServeItem, TenantRegistry, TenantState};

/// How long a session reader or writer parks before re-checking the drain
/// flag and shutdown state.
const POLL: Duration = Duration::from_millis(50);

/// Daemon configuration. `Default` matches the CLI's geometry (4 Mbase
/// batches) with queue bounds sized for interactive tenants.
pub struct ServeOpts {
    /// Path of the unix socket to bind (removed and re-created).
    pub socket: PathBuf,
    /// Worker threads for the shared pipeline.
    pub threads: usize,
    /// Live tenant sessions admitted at once.
    pub max_tenants: usize,
    /// Per-tenant input queue bound, in reads.
    pub inq_reads: usize,
    /// Per-tenant output queue bound, in records (also the per-tenant
    /// in-flight cap — the scheduler's credit gate).
    pub outq_records: usize,
    /// Fair-scheduler tuning.
    pub drr: DrrConfig,
    /// Mapping parameters (shared by every tenant).
    pub map: MapOpts,
    /// Backend selection for the shared session.
    pub backend_kind: BackendKind,
    pub backend: BackendOptions,
    pub supervisor: SupervisorConfig,
    pub sched: SchedConfig,
}

impl ServeOpts {
    pub fn new(socket: PathBuf, map: MapOpts, backend: BackendOptions) -> Self {
        ServeOpts {
            socket,
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            max_tenants: 16,
            inq_reads: 512,
            outq_records: 512,
            drr: DrrConfig::default(),
            map,
            backend_kind: BackendKind::Cpu,
            backend,
            supervisor: SupervisorConfig::default(),
            sched: SchedConfig::default(),
        }
    }
}

/// Shared daemon state, borrowed by every thread in the scope.
struct Ctx<'a> {
    registry: TenantRegistry,
    pipe_in: BoundedQueue<Vec<ServeItem>>,
    /// Set by the `DRAIN` opcode (signal-initiated drains use the global
    /// flag in [`super::signal`]).
    local_drain: AtomicBool,
    /// The pipeline thread exited (normally or fatally); nothing will pop
    /// `pipe_in` or fill `outq`s anymore.
    pipeline_done: AtomicBool,
    /// Session readers currently serving a tenant (post-HELLO, pre-END).
    active_readers: AtomicUsize,
    /// Backend counters merged across every dispatch, for the stats
    /// endpoint and the final report.
    backend_stats: Mutex<BackendStats>,
    backend_label: &'a str,
    /// First fatal error (pipeline death), surfaced from `serve`.
    fatal: Mutex<Option<MapError>>,
    started: Instant,
}

impl Ctx<'_> {
    fn draining(&self) -> bool {
        self.local_drain.load(Ordering::Acquire) || signal::drain_requested()
    }

    /// Assemble the stats report served on the `STATS` endpoint and
    /// emitted through the [`StatsSink`] at shutdown.
    fn stats_report(&self) -> StatsReport {
        let tenants = self.registry.snapshot();
        let live = tenants
            .iter()
            .filter(|t| !t.ended.load(Ordering::Acquire))
            .count();
        let accepted: u64 = tenants
            .iter()
            .map(|t| t.accepted.load(Ordering::Relaxed))
            .sum();
        let sent: u64 = tenants.iter().map(|t| t.sent.load(Ordering::Relaxed)).sum();
        let mut r = StatsReport::new("[mmm-serve] ");
        r.line(format!(
            "up {:.1}s: {live} live / {} admitted tenant(s), {accepted} read(s) accepted, \
             {sent} record(s) sent",
            self.started.elapsed().as_secs_f64(),
            tenants.len()
        ));
        for t in &tenants {
            r.line(t.summary());
        }
        let stats = lock_unpoisoned(&self.backend_stats);
        r.backend_block(&stats, self.backend_label);
        r
    }
}

/// Bind the socket, run the daemon, and block until a drain completes.
/// The final stats report goes through `sink` (the daemon binary passes a
/// stderr sink; tests pass a buffer).
pub fn serve(
    index: &MinimizerIndex,
    opts: &ServeOpts,
    sink: &dyn StatsSink,
) -> Result<(), MapError> {
    let backend = prepare_supervised(opts.backend_kind, &opts.backend, opts.supervisor.clone())
        .map_err(|e| MapError::Usage(e.to_string()))?;
    let mapper = Mapper::new(index, opts.map);
    let tnames: Vec<String> = index.seqs.iter().map(|s| s.name.clone()).collect();
    let tlens: Vec<usize> = index.seqs.iter().map(|s| s.seq.len()).collect();

    // A stale socket file from a dead daemon would make bind fail.
    let _ = std::fs::remove_file(&opts.socket);
    let listener = UnixListener::bind(&opts.socket).map_err(|e| MapError::Io {
        path: opts.socket.display().to_string(),
        source: e,
    })?;
    listener.set_nonblocking(true).map_err(|e| MapError::Io {
        path: opts.socket.display().to_string(),
        source: e,
    })?;

    let ctx = Ctx {
        registry: TenantRegistry::new(opts.max_tenants, opts.inq_reads, opts.outq_records),
        pipe_in: BoundedQueue::new(4),
        local_drain: AtomicBool::new(false),
        pipeline_done: AtomicBool::new(false),
        active_readers: AtomicUsize::new(0),
        backend_stats: Mutex::new(BackendStats::default()),
        backend_label: backend.label(),
        fatal: Mutex::new(None),
        started: Instant::now(),
    };
    let ctx = &ctx;
    let mapper = &mapper;
    let backend = &backend;
    let tnames = &tnames;
    let tlens = &tlens;

    std::thread::scope(|s| {
        // The shared pipeline.
        s.spawn(move || {
            let result = run_pipeline(
                ctx,
                mapper,
                backend,
                &opts.sched,
                tnames,
                tlens,
                opts.threads,
            );
            ctx.pipeline_done.store(true, Ordering::Release);
            if let Err(e) = result {
                record_fatal(ctx, MapError::Pipeline(e));
                // Nothing will consume queues anymore: force a drain and
                // unblock every parked session thread.
                ctx.local_drain.store(true, Ordering::Release);
                ctx.pipe_in.close();
            }
            for t in ctx.registry.snapshot() {
                t.inq.close();
                t.outq.close();
            }
        });

        // The fair scheduler: feeds the pipeline until drained.
        s.spawn(move || {
            DrrScheduler::new(opts.drr).run(&ctx.registry, &ctx.pipe_in, || {
                ctx.draining() && ctx.active_readers.load(Ordering::Acquire) == 0
            });
        });

        // The accept loop, on this thread.
        loop {
            if ctx.draining() {
                break;
            }
            match listener.accept() {
                Ok((stream, _addr)) => {
                    s.spawn(move || session_reader(ctx, s, stream));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(10));
                }
                Err(e) => {
                    record_fatal(
                        ctx,
                        MapError::Io {
                            path: opts.socket.display().to_string(),
                            source: e,
                        },
                    );
                    ctx.local_drain.store(true, Ordering::Release);
                    break;
                }
            }
        }
        // Scope join: sessions, scheduler, and pipeline all wind down via
        // the drain flag and queue closures.
    });

    let _ = std::fs::remove_file(&opts.socket);
    ctx.stats_report().emit(sink);
    let fatal = lock_unpoisoned(&ctx.fatal).take();
    match fatal {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

fn record_fatal(ctx: &Ctx<'_>, e: MapError) {
    let mut g = lock_unpoisoned(&ctx.fatal);
    if g.is_none() {
        *g = Some(e);
    }
}

/// The unmapped placeholder for a degraded read (serve output is PAF).
fn unmapped(rec: &SeqRecord) -> String {
    let mut s = paf_unmapped(&rec.name, rec.len());
    s.push('\n');
    s
}

/// One read's journey through plan/dispatch/finalize, tagged for routing.
type Planned = (Vec<u8>, Result<ReadPlan, MapReadError>);
type Routed = (usize, Instant, String);

/// Run the shared pipeline over the daemon's input queue until the queue
/// is closed and drained. Mirrors the CLI's `cmd_map` stages; the writer
/// routes records to tenant output queues instead of stdout.
#[allow(clippy::too_many_arguments)]
fn run_pipeline(
    ctx: &Ctx<'_>,
    mapper: &Mapper<'_>,
    backend: &mmm_exec::SupervisedBackend,
    sched: &SchedConfig,
    tnames: &[String],
    tlens: &[usize],
    threads: usize,
) -> Result<(), mmm_pipeline::PipelineError> {
    // A quarantined or panicked read degrades to an unmapped record and is
    // counted against its tenant — never fatal, never cross-tenant.
    let on_panic = |item: &ServeItem, msg: &str| -> Routed {
        if let Some(t) = ctx.registry.get(item.tenant) {
            if msg.starts_with("backend: ") {
                t.quarantined.fetch_add(1, Ordering::Relaxed);
            } else {
                t.degraded.fetch_add(1, Ordering::Relaxed);
            }
        }
        (item.tenant, item.accepted_at, unmapped(&item.rec))
    };

    try_run_three_thread_batched_from_queue(
        &ctx.pipe_in,
        |_worker| AlignScratch::new(),
        // Plan: seed, chain, and describe DP jobs (worker pool).
        |_scratch: &mut AlignScratch, item: &ServeItem| -> Planned {
            let nt4 = item.rec.nt4();
            let plan = mapper.plan_read(&nt4);
            (nt4, plan)
        },
        // Dispatch: flatten the batch into one supervised submission, then
        // deal outcomes back out per read — identical to the CLI.
        |mut plans: Vec<Planned>| {
            let mut counts = Vec::with_capacity(plans.len());
            let mut all_jobs = Vec::new();
            for (_, plan) in &mut plans {
                let n = match plan.as_mut() {
                    Ok(p) => {
                        let jobs = std::mem::take(&mut p.jobs);
                        let n = jobs.len();
                        all_jobs.extend(jobs);
                        n
                    }
                    Err(_) => 0,
                };
                counts.push(n);
            }
            let mut outcomes = Vec::new();
            if !all_jobs.is_empty() {
                let (os, bstats) = backend
                    .submit_scheduled(all_jobs, sched)
                    .map_err(|e| -> DynError { Box::new(e) })?;
                lock_unpoisoned(&ctx.backend_stats).merge(&bstats);
                outcomes = os;
            }
            let mut it = outcomes.into_iter();
            Ok(plans
                .into_iter()
                .zip(counts)
                .map(|(p, n)| {
                    let mut results: Vec<AlignResult> = Vec::with_capacity(n);
                    let mut quarantine: Option<String> = None;
                    for o in it.by_ref().take(n) {
                        match o {
                            JobOutcome::Done(r) => results.push(r),
                            JobOutcome::Quarantined { reason } => {
                                quarantine.get_or_insert(reason);
                            }
                        }
                    }
                    match quarantine {
                        None => (p, Ok(results)),
                        Some(reason) => (p, Err(format!("backend: {reason}"))),
                    }
                })
                .collect())
        },
        // Finalize: splice results, format PAF (worker pool).
        |scratch: &mut AlignScratch,
         item: &ServeItem,
         planned: &Planned,
         results: &Vec<AlignResult>|
         -> Routed {
            let (nt4, plan) = planned;
            let plan = match plan {
                Ok(p) => {
                    let n = p.chained().prefilter_rejected();
                    if n > 0 {
                        if let Some(t) = ctx.registry.get(item.tenant) {
                            t.prefilter_rejected.fetch_add(n as u64, Ordering::Relaxed);
                        }
                    }
                    p
                }
                Err(_e) => {
                    if let Some(t) = ctx.registry.get(item.tenant) {
                        t.degraded.fetch_add(1, Ordering::Relaxed);
                    }
                    return (item.tenant, item.accepted_at, unmapped(&item.rec));
                }
            };
            let ms = mapper.finalize_read_with_scratch(nt4, plan, results, scratch);
            let mut lines = String::new();
            for m in &ms {
                lines.push_str(&paf_line(
                    &item.rec.name,
                    nt4.len(),
                    &tnames[m.rid as usize],
                    tlens[m.rid as usize],
                    m,
                ));
                lines.push('\n');
            }
            (item.tenant, item.accepted_at, lines)
        },
        |item| item.rec.len(),
        // Writer: route each record to its tenant's output queue. The
        // scheduler's credit gate guarantees a free slot, so this push
        // cannot block on a slow consumer.
        |results: Vec<Routed>| {
            for (tid, accepted_at, lines) in results {
                let Some(t) = ctx.registry.get(tid) else {
                    continue;
                };
                t.latency
                    .record_micros(accepted_at.elapsed().as_micros() as u64);
                let _ = t.outq.push(lines);
                t.delivered.fetch_add(1, Ordering::AcqRel);
            }
            Ok(())
        },
        Some(&on_panic),
        threads,
        true,
    )
    .map(|_stats| ())
}

/// Push a read into the tenant's input queue, backing off while full. The
/// blocking is the point (backpressure to this tenant's socket), but it
/// must stay escapable: a dead pipeline closes the queue, which surfaces
/// here as `false`.
fn push_with_backoff(ctx: &Ctx<'_>, t: &TenantState, mut item: ServeItem) -> bool {
    loop {
        match t.inq.try_push(item) {
            Ok(()) => return true,
            Err(e) if e.is_closed() => return false,
            Err(e) => {
                item = e.into_inner();
                if ctx.pipeline_done.load(Ordering::Acquire) {
                    return false;
                }
                std::thread::sleep(Duration::from_millis(1));
            }
        }
    }
}

/// The per-connection protocol thread. Admin frames (`STATS`, `DRAIN`) are
/// served pre-HELLO and close the connection; a `HELLO` turns the
/// connection into a tenant session and spawns its writer.
fn session_reader<'scope>(
    ctx: &'scope Ctx<'scope>,
    scope: &'scope Scope<'scope, '_>,
    mut stream: UnixStream,
) {
    // A read timeout lets the loop observe the drain flag between frames.
    if stream.set_read_timeout(Some(POLL)).is_err() {
        return;
    }
    let mut tenant: Option<Arc<TenantState>> = None;
    loop {
        match read_frame_poll(&mut stream) {
            Ok(FramePoll::TimedOut) => {
                // Drain ends the session as if the client had sent END:
                // reads accepted so far are flushed, no more are taken.
                if ctx.draining() {
                    break;
                }
            }
            Ok(FramePoll::Eof) | Err(_) => break,
            Ok(FramePoll::Frame(f)) => match (f.op, &tenant) {
                (Op::Hello, None) => {
                    if ctx.draining() {
                        let _ = write_frame(&mut stream, Op::Err, b"daemon is draining");
                        return;
                    }
                    match ctx.registry.admit(&f.text()) {
                        Ok(t) => {
                            ctx.active_readers.fetch_add(1, Ordering::AcqRel);
                            let writer_stream = match stream.try_clone() {
                                Ok(ws) => ws,
                                Err(_) => {
                                    t.ended.store(true, Ordering::Release);
                                    ctx.active_readers.fetch_sub(1, Ordering::AcqRel);
                                    return;
                                }
                            };
                            // The HELLO ack is the reader's last write on
                            // this socket: from here on only the writer
                            // thread sends, so frames never interleave.
                            if write_frame(&mut stream, Op::Ok, b"").is_err() {
                                t.ended.store(true, Ordering::Release);
                                ctx.active_readers.fetch_sub(1, Ordering::AcqRel);
                                return;
                            }
                            let tw = t.clone();
                            scope.spawn(move || session_writer(ctx, &tw, writer_stream));
                            tenant = Some(t);
                        }
                        Err(why) => {
                            let _ = write_frame(&mut stream, Op::Err, why.as_bytes());
                            return;
                        }
                    }
                }
                (Op::Read, Some(t)) => {
                    if ctx.draining() {
                        break;
                    }
                    let (name, seq, qual) = match decode_read(&f.payload) {
                        Ok(parts) => parts,
                        Err(_why) => break, // malformed read: end the session
                    };
                    let mut rec = SeqRecord::new(name, seq);
                    if !qual.is_empty() {
                        rec.qual = Some(qual);
                    }
                    let item = ServeItem {
                        tenant: t.id,
                        rec,
                        accepted_at: Instant::now(),
                    };
                    if !push_with_backoff(ctx, t, item) {
                        break; // pipeline gone; writer reports the failure
                    }
                    t.accepted.fetch_add(1, Ordering::AcqRel);
                }
                (Op::End, Some(_)) => break,
                (Op::Stats, None) => {
                    let report = ctx.stats_report().render();
                    let _ = write_frame(&mut stream, Op::StatsReply, report.as_bytes());
                    return;
                }
                (Op::Drain, None) => {
                    ctx.local_drain.store(true, Ordering::Release);
                    let _ = write_frame(&mut stream, Op::Ok, b"draining");
                    return;
                }
                (op, _) => {
                    // Protocol violation. Pre-HELLO the reader still owns
                    // the socket and may say why; mid-session the writer
                    // owns it, so just end the session.
                    if tenant.is_none() {
                        let msg = format!("unexpected {op:?} frame");
                        let _ = write_frame(&mut stream, Op::Err, msg.as_bytes());
                        return;
                    }
                    break;
                }
            },
        }
    }
    if let Some(t) = tenant {
        t.ended.store(true, Ordering::Release);
        ctx.active_readers.fetch_sub(1, Ordering::AcqRel);
    }
}

/// The per-tenant output thread: drain `outq` to the socket in order, then
/// send `DONE` with the tenant's summary.
fn session_writer(ctx: &Ctx<'_>, t: &TenantState, mut stream: UnixStream) {
    loop {
        match t.outq.pop_timeout(POLL) {
            Ok(lines) => {
                if write_frame(&mut stream, Op::Rec, lines.as_bytes()).is_err() {
                    // Client gone: stop sending, but keep accounting so the
                    // scheduler's credit math stays consistent.
                    t.sent.fetch_add(1, Ordering::AcqRel);
                    drain_silently(ctx, t);
                    return;
                }
                t.sent.fetch_add(1, Ordering::AcqRel);
            }
            Err(mmm_pipeline::PopError::TimedOut) => {
                if t.ended.load(Ordering::Acquire)
                    && t.sent.load(Ordering::Acquire) == t.accepted.load(Ordering::Acquire)
                {
                    break;
                }
            }
            Err(mmm_pipeline::PopError::Closed) => {
                // Pipeline terminated. Anything unsent is lost; tell the
                // client rather than leaving it waiting for DONE.
                if t.sent.load(Ordering::Acquire) < t.accepted.load(Ordering::Acquire) {
                    let _ = write_frame(
                        &mut stream,
                        Op::Err,
                        b"pipeline terminated before all reads were served",
                    );
                    return;
                }
                break;
            }
        }
    }
    let summary = t.summary();
    let _ = write_frame(&mut stream, Op::Done, summary.as_bytes());
    let _ = stream.flush();
}

/// Keep consuming a dead client's records so its in-flight count still
/// drains and the pipeline writer's slot-reservation invariant holds.
fn drain_silently(ctx: &Ctx<'_>, t: &TenantState) {
    loop {
        match t.outq.pop_timeout(POLL) {
            Ok(_) => {
                t.sent.fetch_add(1, Ordering::AcqRel);
            }
            Err(mmm_pipeline::PopError::Closed) => return,
            Err(mmm_pipeline::PopError::TimedOut) => {
                if t.ended.load(Ordering::Acquire)
                    && t.sent.load(Ordering::Acquire) == t.accepted.load(Ordering::Acquire)
                {
                    return;
                }
                if ctx.pipeline_done.load(Ordering::Acquire) && t.outq.is_empty() {
                    return;
                }
            }
        }
    }
}
