//! SIGTERM/SIGINT → drain flag, with no libc crate.
//!
//! The daemon's drain contract (flush every accepted read, then exit)
//! starts here: the handler does nothing but flip one process-global
//! `AtomicBool`, which the accept loop, session readers, and scheduler all
//! poll. Everything async-signal-unsafe (logging, queue work, joins)
//! happens on normal threads after the flag is observed.

use std::sync::atomic::{AtomicBool, Ordering};

/// `signal(2)` constants for the two shutdown signals we handle. Linux
/// values; this module is compiled only on unix.
const SIGINT: i32 = 2;
const SIGTERM: i32 = 15;

static DRAIN: AtomicBool = AtomicBool::new(false);

extern "C" fn on_signal(_sig: i32) {
    // Async-signal-safe: a single atomic store, nothing else.
    DRAIN.store(true, Ordering::SeqCst);
}

// xtask-allow(missing-safety-doc): documented at the call site below.
extern "C" {
    /// libc `signal(2)`. The return value (the previous handler) is a
    /// pointer-sized integer we never call through, so `usize` suffices.
    fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
}

/// Install the drain handler for SIGTERM and SIGINT. Call once at daemon
/// startup, before any thread is spawned.
pub fn install_drain_handler() {
    // SAFETY: `signal` is the libc signal(2) entry point; registering a
    // handler that only performs a relaxed-free atomic store on a
    // process-global `AtomicBool` is async-signal-safe, and we ignore the
    // returned previous handler rather than calling through it.
    unsafe {
        signal(SIGTERM, on_signal);
        signal(SIGINT, on_signal);
    }
}

/// Has a shutdown signal arrived?
pub fn drain_requested() -> bool {
    DRAIN.load(Ordering::SeqCst)
}

/// Request a drain programmatically (the `DRAIN` protocol opcode shares
/// the signal path, so every shutdown route converges on one flag).
pub fn request_drain() {
    DRAIN.store(true, Ordering::SeqCst);
}

#[cfg(test)]
pub(crate) fn reset_for_tests() {
    DRAIN.store(false, Ordering::SeqCst);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One test (not several) because the flag is process-global: parallel
    /// test threads resetting it would race each other.
    ///
    /// Covers both paths: the programmatic request and the real signal —
    /// install the handler and raise SIGTERM at ourselves; the flag must
    /// flip without the process dying.
    #[test]
    fn drain_flag_via_request_and_via_sigterm() {
        reset_for_tests();
        assert!(!drain_requested());
        request_drain();
        assert!(drain_requested());
        reset_for_tests();
        install_drain_handler();
        extern "C" {
            fn raise(sig: i32) -> i32;
        }
        // SAFETY: raise(3) with our just-installed SIGTERM handler only
        // invokes the async-signal-safe `on_signal` above.
        unsafe {
            raise(SIGTERM);
        }
        for _ in 0..100 {
            if drain_requested() {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert!(drain_requested());
        reset_for_tests();
    }
}
