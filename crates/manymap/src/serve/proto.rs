//! The `mmm-serve` wire protocol: length-prefixed frames over a local
//! stream socket.
//!
//! Every frame is `u32_le payload_len | u8 opcode | payload`. The length
//! counts payload bytes only (not the opcode), and is capped at
//! [`MAX_FRAME`] so a corrupt or hostile peer cannot make the daemon
//! balloon an allocation.
//!
//! Client → server:
//! * `HELLO <tenant-name>` — open a tenant session (admission-controlled);
//! * `READ  <record>` — submit one read (see [`encode_read`]);
//! * `END` — no more reads; the server flushes this tenant's outputs,
//!   sends one `REC` per accepted read (in submission order), then `DONE`;
//! * `STATS` — admin: no session needed; the server replies with one
//!   `STATS` frame and closes;
//! * `DRAIN` — admin: begin a daemon-wide drain (same as SIGTERM).
//!
//! Server → client:
//! * `OK [text]` — acknowledgement (HELLO, DRAIN);
//! * `REC <lines>` — the formatted output records for one read, in the
//!   read's submission order; byte-identical to what a solo `manymap map`
//!   run writes to stdout for that read;
//! * `STATS <text>` — the rendered stats report;
//! * `DONE <text>` — session complete; payload is the tenant's summary;
//! * `ERR <text>` — protocol or admission failure; the server closes.

use std::io::{ErrorKind, Read, Write};

/// Frame payloads larger than this are a protocol error (64 MiB —
/// generous for a single long read, far below anything sane for one
/// frame).
pub const MAX_FRAME: usize = 64 << 20;

/// Frame opcodes. The high bit marks server → client frames.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum Op {
    Hello = 0x01,
    Read = 0x02,
    End = 0x03,
    Stats = 0x04,
    Drain = 0x05,
    Ok = 0x81,
    Rec = 0x82,
    StatsReply = 0x83,
    Done = 0x84,
    Err = 0x85,
}

impl Op {
    pub fn from_byte(b: u8) -> Option<Op> {
        Some(match b {
            0x01 => Op::Hello,
            0x02 => Op::Read,
            0x03 => Op::End,
            0x04 => Op::Stats,
            0x05 => Op::Drain,
            0x81 => Op::Ok,
            0x82 => Op::Rec,
            0x83 => Op::StatsReply,
            0x84 => Op::Done,
            0x85 => Op::Err,
            _ => return None,
        })
    }
}

/// One decoded frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Frame {
    pub op: Op,
    pub payload: Vec<u8>,
}

impl Frame {
    pub fn new(op: Op, payload: impl Into<Vec<u8>>) -> Self {
        Frame {
            op,
            payload: payload.into(),
        }
    }

    /// The payload as (lossy) text, for `OK`/`ERR`/`DONE`/`STATS` frames.
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.payload).into_owned()
    }
}

/// Write one frame. A single `write_all` of the assembled bytes, so frames
/// from one writer never interleave mid-frame.
pub fn write_frame(w: &mut impl Write, op: Op, payload: &[u8]) -> std::io::Result<()> {
    if payload.len() > MAX_FRAME {
        return Err(std::io::Error::new(
            ErrorKind::InvalidInput,
            format!("frame payload of {} bytes exceeds MAX_FRAME", payload.len()),
        ));
    }
    let mut buf = Vec::with_capacity(5 + payload.len());
    buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    buf.push(op as u8);
    buf.extend_from_slice(payload);
    w.write_all(&buf)
}

/// Fill `buf` from `r`, tolerating read timeouts only while `buf` is still
/// empty and `partial` bytes have been consumed overall. Returns `Ok(false)`
/// on a clean timeout before the first byte (caller polls its drain flag
/// and retries); once any byte of the frame has arrived, timeouts keep the
/// read alive until the frame completes, so a slow sender cannot desync the
/// stream.
fn read_full(
    r: &mut impl Read,
    buf: &mut [u8],
    mut started: bool,
) -> std::io::Result<Option<bool>> {
    let mut off = 0;
    while off < buf.len() {
        match r.read(&mut buf[off..]) {
            Ok(0) => {
                return if off == 0 && !started {
                    Ok(None) // clean EOF between frames
                } else {
                    Err(std::io::Error::new(
                        ErrorKind::UnexpectedEof,
                        "connection closed mid-frame",
                    ))
                };
            }
            Ok(n) => {
                off += n;
                started = true;
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e)
                if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut)
                    && off == 0
                    && !started =>
            {
                return Ok(Some(false));
            }
            // Mid-frame timeout: the peer has committed to this frame;
            // keep waiting for the rest.
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {}
            Err(e) => return Err(e),
        }
    }
    Ok(Some(true))
}

/// What a polling frame read observed. The server's session reader runs
/// with a socket read timeout so it can notice the drain flag between
/// frames; it needs to tell "peer went away" (end the session) apart from
/// "nothing yet" (poll and retry).
#[derive(Debug)]
pub enum FramePoll {
    Frame(Frame),
    /// Read timeout before the frame's first byte; the stream is intact.
    TimedOut,
    /// Clean EOF between frames: the peer closed the connection.
    Eof,
}

/// Read one frame, reporting between-frame timeouts and clean EOF as
/// distinct non-error outcomes. `Err` is an I/O failure, a mid-frame EOF,
/// or a protocol violation (unknown opcode, oversized length).
pub fn read_frame_poll(r: &mut impl Read) -> std::io::Result<FramePoll> {
    let mut header = [0u8; 5];
    match read_full(r, &mut header, false)? {
        None => return Ok(FramePoll::Eof),
        Some(false) => return Ok(FramePoll::TimedOut),
        Some(true) => {}
    }
    let len = u32::from_le_bytes([header[0], header[1], header[2], header[3]]) as usize;
    if len > MAX_FRAME {
        return Err(std::io::Error::new(
            ErrorKind::InvalidData,
            format!("frame length {len} exceeds MAX_FRAME ({MAX_FRAME})"),
        ));
    }
    let op = Op::from_byte(header[4]).ok_or_else(|| {
        std::io::Error::new(
            ErrorKind::InvalidData,
            format!("unknown frame opcode {:#04x}", header[4]),
        )
    })?;
    let mut payload = vec![0u8; len];
    if read_full(r, &mut payload, true)?.is_none() {
        return Err(std::io::Error::new(
            ErrorKind::UnexpectedEof,
            "connection closed mid-frame",
        ));
    }
    Ok(FramePoll::Frame(Frame { op, payload }))
}

/// Blocking convenience wrapper: `Ok(None)` covers both clean EOF and a
/// pre-frame timeout. For callers without a read timeout (the client).
pub fn read_frame(r: &mut impl Read) -> std::io::Result<Option<Frame>> {
    Ok(match read_frame_poll(r)? {
        FramePoll::Frame(f) => Some(f),
        FramePoll::TimedOut | FramePoll::Eof => None,
    })
}

/// Encode one read for a `READ` frame:
/// `u32 name_len | name | u32 seq_len | seq | u32 qual_len | qual`.
/// `seq` is ASCII bases; `qual` may be empty (FASTA).
pub fn encode_read(name: &str, seq: &[u8], qual: &[u8]) -> Vec<u8> {
    let mut p = Vec::with_capacity(12 + name.len() + seq.len() + qual.len());
    for part in [name.as_bytes(), seq, qual] {
        p.extend_from_slice(&(part.len() as u32).to_le_bytes());
        p.extend_from_slice(part);
    }
    p
}

/// Decode a `READ` payload back into `(name, seq, qual)`.
pub fn decode_read(payload: &[u8]) -> Result<(String, Vec<u8>, Vec<u8>), String> {
    let mut off = 0usize;
    let mut take = |what: &str| -> Result<Vec<u8>, String> {
        let end = off
            .checked_add(4)
            .filter(|&e| e <= payload.len())
            .ok_or_else(|| format!("READ payload truncated before {what} length"))?;
        let len = u32::from_le_bytes([
            payload[off],
            payload[off + 1],
            payload[off + 2],
            payload[off + 3],
        ]) as usize;
        off = end;
        let end = off
            .checked_add(len)
            .filter(|&e| e <= payload.len())
            .ok_or_else(|| format!("READ payload truncated inside {what}"))?;
        let bytes = payload[off..end].to_vec();
        off = end;
        Ok(bytes)
    };
    let name =
        String::from_utf8(take("name")?).map_err(|_| "READ name is not valid UTF-8".to_string())?;
    let seq = take("sequence")?;
    let qual = take("quality")?;
    if off != payload.len() {
        return Err(format!(
            "READ payload has {} trailing byte(s)",
            payload.len() - off
        ));
    }
    Ok((name, seq, qual))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, Op::Hello, b"tenant-a").unwrap();
        write_frame(&mut buf, Op::End, b"").unwrap();
        let mut r = &buf[..];
        let f1 = read_frame(&mut r).unwrap().unwrap();
        assert_eq!(f1, Frame::new(Op::Hello, &b"tenant-a"[..]));
        let f2 = read_frame(&mut r).unwrap().unwrap();
        assert_eq!(f2.op, Op::End);
        assert!(f2.payload.is_empty());
        assert!(read_frame(&mut r).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn reads_round_trip() {
        let p = encode_read("read7", b"ACGT", b"IIII");
        let (name, seq, qual) = decode_read(&p).unwrap();
        assert_eq!(
            (name.as_str(), &seq[..], &qual[..]),
            ("read7", &b"ACGT"[..], &b"IIII"[..])
        );
        // FASTA: empty quality.
        let p = encode_read("r", b"A", b"");
        assert_eq!(decode_read(&p).unwrap().2, Vec::<u8>::new());
    }

    #[test]
    fn hostile_frames_are_typed_errors_not_panics() {
        // Unknown opcode.
        let mut buf = Vec::new();
        buf.extend_from_slice(&2u32.to_le_bytes());
        buf.push(0x7f);
        buf.extend_from_slice(b"xy");
        assert!(read_frame(&mut &buf[..]).is_err());
        // Oversized length prefix refuses before allocating.
        let mut buf = Vec::new();
        buf.extend_from_slice(&(u32::MAX).to_le_bytes());
        buf.push(0x01);
        assert!(read_frame(&mut &buf[..]).is_err());
        // Mid-frame EOF.
        let mut buf = Vec::new();
        write_frame(&mut buf, Op::Read, b"half").unwrap();
        buf.truncate(buf.len() - 2);
        assert!(read_frame(&mut &buf[..]).is_err());
    }

    #[test]
    fn hostile_read_payloads_are_typed_errors() {
        assert!(decode_read(b"").is_err());
        assert!(decode_read(&[0xff; 3]).is_err());
        // Length prefix past the end.
        let mut p = Vec::new();
        p.extend_from_slice(&100u32.to_le_bytes());
        p.extend_from_slice(b"short");
        assert!(decode_read(&p).is_err());
        // Trailing garbage.
        let mut p = encode_read("r", b"A", b"");
        p.push(0);
        assert!(decode_read(&p).is_err());
    }
}
