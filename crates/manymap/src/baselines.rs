//! Simplified models of the Table 5 comparator aligners.
//!
//! The paper benchmarks manymap against five external tools (minialign,
//! Kart, BLASR, NGMLR, BWA-MEM). Those codebases are not reimplemented
//! verbatim here; instead each comparator is modeled as a configuration of
//! our own substrates that captures the *algorithmic choice that drives its
//! Table 5 behaviour* (see DESIGN.md §2):
//!
//! * **minimap2** — our pipeline with the Eq. 3 kernels: by construction it
//!   produces bit-identical alignments to manymap (the paper: "manymap
//!   produces the same alignment result as minimap2").
//! * **minialign** — minimizer seeding but a sparser sketch and coarse
//!   gap interpolation instead of per-segment DP: fastest, slightly less
//!   accurate.
//! * **Kart** — divide-and-conquer with long exact matches: on 15%-error
//!   PacBio reads, long exact seeds (k = 24) rarely survive, so chains are
//!   sparse and error rises sharply — the mechanism behind its 4.1% error.
//! * **BLASR** — dense short exact seeds (k = 12, w = 1) with exhaustive
//!   sparse DP (no chaining heuristics) and scalar alignment: accurate but
//!   slow.
//! * **NGMLR** — convex-gap philosophy modeled as a very wide chaining
//!   band with small seeds and scalar kernels: accurate on indels, slow.
//! * **BWA-MEM** — a short-read design: dense exact seeding plus a
//!   short-read chaining distance that fragments long reads: slowest and
//!   least able to anchor noisy long reads.

use mmm_align::{Engine, Layout, Width};
use mmm_chain::{ChainOpts, SelectOpts};
use mmm_index::IdxOpts;

use crate::opts::MapOpts;

/// The aligners of Table 5.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BaselineId {
    Manymap,
    Minimap2,
    Minialign,
    Kart,
    Blasr,
    Ngmlr,
    BwaMem,
}

impl BaselineId {
    /// Table 5 column order.
    pub const ALL: [BaselineId; 7] = [
        BaselineId::Manymap,
        BaselineId::Minimap2,
        BaselineId::Minialign,
        BaselineId::Kart,
        BaselineId::Blasr,
        BaselineId::Ngmlr,
        BaselineId::BwaMem,
    ];

    /// Display name as printed in Table 5.
    pub fn name(&self) -> &'static str {
        match self {
            BaselineId::Manymap => "manymap",
            BaselineId::Minimap2 => "minimap2",
            BaselineId::Minialign => "minialign",
            BaselineId::Kart => "Kart",
            BaselineId::Blasr => "BLASR",
            BaselineId::Ngmlr => "NGMLR",
            BaselineId::BwaMem => "BWA-MEM",
        }
    }

    /// Does the paper run this aligner on the GPU? (Only manymap.)
    pub fn gpu_capable(&self) -> bool {
        matches!(self, BaselineId::Manymap)
    }

    /// Maximum threads the tool survives with on KNL (§5.3.3: minialign,
    /// Kart and BWA-MEM cap at 64).
    pub fn knl_max_threads(&self) -> usize {
        match self {
            BaselineId::Minialign | BaselineId::Kart | BaselineId::BwaMem => 64,
            _ => 256,
        }
    }

    /// The mapping configuration modeling this aligner (PacBio dataset).
    pub fn map_opts(&self) -> MapOpts {
        let base = MapOpts::map_pb();
        match self {
            BaselineId::Manymap => base,
            BaselineId::Minimap2 => base.with_engine(mmm_align::best_mm2_engine()),
            BaselineId::Minialign => MapOpts {
                idx: IdxOpts {
                    k: 17,
                    w: 16,
                    occ_frac: 2e-4,
                    hpc: true,
                },
                // Coarse interpolation instead of per-segment DP.
                max_fill: 0,
                ..base
            },
            BaselineId::Kart => MapOpts {
                idx: IdxOpts {
                    k: 24,
                    w: 12,
                    occ_frac: 2e-4,
                    hpc: false,
                },
                chain: ChainOpts {
                    min_cnt: 2,
                    min_score: 20,
                    ..ChainOpts::default()
                },
                select: SelectOpts {
                    mask_level: 0.9,
                    best_n: 1,
                },
                max_fill: 0,
                ..base
            },
            BaselineId::Blasr => MapOpts {
                idx: IdxOpts {
                    k: 12,
                    w: 1,
                    occ_frac: 1e-3,
                    hpc: false,
                },
                chain: ChainOpts {
                    max_iter: 50_000,
                    max_skip: 1_000,
                    ..ChainOpts::default()
                },
                ..base.with_engine(Engine::new(Layout::Mm2, Width::Scalar))
            },
            BaselineId::Ngmlr => MapOpts {
                idx: IdxOpts {
                    k: 13,
                    w: 5,
                    occ_frac: 2e-4,
                    hpc: false,
                },
                chain: ChainOpts {
                    bandwidth: 2_000,
                    max_dist: 10_000,
                    ..ChainOpts::default()
                },
                ..base.with_engine(Engine::new(Layout::Mm2, Width::Scalar))
            },
            BaselineId::BwaMem => MapOpts {
                idx: IdxOpts {
                    k: 19,
                    w: 1,
                    occ_frac: 1e-3,
                    hpc: false,
                },
                // Short-read chaining: tight insert-size assumptions.
                chain: ChainOpts {
                    max_dist: 100,
                    bandwidth: 100,
                    min_score: 30,
                    ..ChainOpts::default()
                },
                ..base.with_engine(Engine::new(Layout::Mm2, Width::Scalar))
            },
        }
    }

    /// Relative KNL port efficiency: how well the tool's code exploits 256
    /// slow cores when run unmodified (§5.3.3 observes minimap2-class tools
    /// port best). Used by the Table 5 KNL column model.
    pub fn knl_port_efficiency(&self) -> f64 {
        match self {
            BaselineId::Manymap => 1.0,
            BaselineId::Minimap2 | BaselineId::Kart => 0.85,
            BaselineId::Minialign => 0.55,
            BaselineId::Blasr => 0.25,
            BaselineId::Ngmlr => 0.5,
            BaselineId::BwaMem => 0.6,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapper::Mapper;
    use mmm_index::MinimizerIndex;
    use mmm_seq::{nt4_decode, SeqRecord};
    use mmm_simreads::{
        evaluate, generate_genome, simulate_reads, GenomeOpts, MappingCall, Platform, SimOpts,
    };

    #[test]
    fn seven_aligners_in_table_order() {
        assert_eq!(BaselineId::ALL.len(), 7);
        assert_eq!(BaselineId::ALL[0].name(), "manymap");
        assert!(BaselineId::Manymap.gpu_capable());
        assert!(!BaselineId::Blasr.gpu_capable());
    }

    #[test]
    fn minimap2_model_matches_manymap_results() {
        let g = generate_genome(&GenomeOpts {
            len: 80_000,
            repeat_frac: 0.0,
            seed: 17,
            ..Default::default()
        });
        let rec = SeqRecord::new("chr1", nt4_decode(&g));
        let reads = simulate_reads(
            &g,
            &SimOpts {
                platform: Platform::PacBio,
                num_reads: 8,
                seed: 5,
            },
        );
        let om = BaselineId::Manymap.map_opts();
        let o2 = BaselineId::Minimap2.map_opts();
        let idx = MinimizerIndex::build(&[rec], &om.idx).unwrap();
        let a = Mapper::new(&idx, om);
        let b = Mapper::new(&idx, o2);
        for r in &reads {
            let ma = a.map_read(&r.seq);
            let mb = b.map_read(&r.seq);
            assert_eq!(ma.len(), mb.len());
            for (x, y) in ma.iter().zip(&mb) {
                assert_eq!(x.align_score, y.align_score);
                assert_eq!(x.cigar, y.cigar);
            }
        }
    }

    fn error_rate(
        id: BaselineId,
        genome: &[u8],
        reads: &[mmm_simreads::SimulatedRead],
    ) -> (f64, f64) {
        let opts = id.map_opts();
        let idx = MinimizerIndex::build(&[SeqRecord::new("chr1", nt4_decode(genome))], &opts.idx)
            .unwrap();
        let mapper = Mapper::new(&idx, opts);
        let mut calls = Vec::new();
        for (i, r) in reads.iter().enumerate() {
            if let Some(m) = mapper.map_read(&r.seq).into_iter().find(|m| m.primary) {
                calls.push(MappingCall {
                    read_id: i,
                    rid: m.rid,
                    ref_start: m.ref_start,
                    ref_end: m.ref_end,
                    rev: m.rev,
                    mapq: m.mapq,
                });
            }
        }
        let truths: Vec<_> = reads.iter().map(|r| r.origin).collect();
        let s = evaluate(&calls, &truths);
        (s.error_rate_pct(), s.mapped_frac())
    }

    #[test]
    fn kart_model_is_less_reliable_on_noisy_reads() {
        // Long exact seeds barely survive high error rates. Sample reads
        // from an 8%-diverged copy of the reference (on top of the 15%
        // sequencing error): the k=24 Kart model must lose reads the k=19
        // manymap model still anchors.
        let g = generate_genome(&GenomeOpts {
            len: 150_000,
            repeat_frac: 0.0,
            seed: 23,
            ..Default::default()
        });
        let mut diverged = g.clone();
        let mut state = 77u64;
        for b in diverged.iter_mut() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            if (state >> 33) % 100 < 8 {
                *b = (*b + 1 + ((state >> 20) % 3) as u8) % 4;
            }
        }
        let reads = simulate_reads(
            &diverged,
            &SimOpts {
                platform: Platform::PacBio,
                num_reads: 30,
                seed: 11,
            },
        );
        let (mm_err, mm_mapped) = error_rate(BaselineId::Manymap, &g, &reads);
        let (kart_err, kart_mapped) = error_rate(BaselineId::Kart, &g, &reads);
        assert!(
            kart_mapped < mm_mapped || kart_err > mm_err,
            "kart=({kart_err:.2}%, {kart_mapped:.2}) manymap=({mm_err:.2}%, {mm_mapped:.2})"
        );
        assert!(mm_mapped > 0.7, "manymap mapped fraction {mm_mapped}");
    }

    #[test]
    fn knl_caps_match_paper() {
        assert_eq!(BaselineId::BwaMem.knl_max_threads(), 64);
        assert_eq!(BaselineId::Manymap.knl_max_threads(), 256);
    }
}
