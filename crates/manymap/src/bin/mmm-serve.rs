//! `mmm-serve` — the multi-tenant alignment daemon and its client.
//!
//! ```sh
//! mmm-serve daemon <ref.mmx|ref.fa> --socket /path/daemon.sock
//!           [--threads N] [--backend cpu|gpu-sim] [--preset map-pb|map-ont]
//!           [--max-tenants N] [--inq-reads N] [--outq-records N]
//!           [--quantum-bases N] [--batch-bases N]
//!           [--sched fifo|bins] [--prefilter off|safe|aggressive]
//!           [--inject-backend-fault <plan>]
//! mmm-serve client <socket> <tenant-name> <reads.fq>   # PAF on stdout
//! mmm-serve stats  <socket>                            # report on stdout
//! mmm-serve drain  <socket>                            # begin drain
//! ```
//!
//! The daemon accepts many concurrent tenant streams over the unix socket
//! and runs them through one shared pipeline and backend session; each
//! tenant's output is byte-identical to a solo `manymap map` run of the
//! same reads. SIGTERM/SIGINT (or `mmm-serve drain`) flushes every
//! accepted read, emits a final stats report on stderr, and exits.
//!
//! Environment variables mirror the `manymap` CLI: `MMM_BACKEND`,
//! `MMM_GPU_MEM`, `MMM_GPU_STREAMS`, `MMM_FAULT_PLAN`,
//! `MMM_BACKEND_RETRIES`, `MMM_SCHED`, `MMM_SCHED_BATCH_CELLS`,
//! `MMM_SCHED_BATCH_JOBS`, `MMM_PREFILTER`.

use std::io::{BufReader, BufWriter, Write};
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use manymap::serve::{self, encode_read, read_frame, write_frame, DrrConfig, Frame, Op, ServeOpts};
use manymap::{MapError, MapOpts};
use mmm_align::best_mm2_engine;
use mmm_exec::{
    BackendKind, BackendOptions, FaultPlan, PrefilterMode, SchedConfig, SchedMode, StderrSink,
    SupervisorConfig,
};
use mmm_index::{load_index, MinimizerIndex};
use mmm_seq::FastxReader;

struct Args {
    positional: Vec<String>,
    flags: std::collections::HashMap<String, String>,
}

fn parse_args() -> Args {
    let mut positional = Vec::new();
    let mut flags = std::collections::HashMap::new();
    let mut it = std::env::args().skip(1).peekable();
    while let Some(a) = it.next() {
        if let Some(name) = a.strip_prefix("--") {
            let val = match name {
                "socket"
                | "preset"
                | "engine"
                | "backend"
                | "threads"
                | "max-tenants"
                | "inq-reads"
                | "outq-records"
                | "quantum-bases"
                | "batch-bases"
                | "sched"
                | "prefilter"
                | "inject-backend-fault"
                | "backend-retries"
                | "batch-deadline-ms"
                | "max-read-len" => it.next().unwrap_or_default(),
                _ => "true".to_string(),
            };
            flags.insert(name.to_string(), val);
        } else {
            positional.push(a);
        }
    }
    Args { positional, flags }
}

fn flag_num<T: std::str::FromStr>(args: &Args, name: &str) -> Result<Option<T>, MapError> {
    match args.flags.get(name) {
        None => Ok(None),
        Some(v) => v
            .parse()
            .map(Some)
            .map_err(|_| MapError::Usage(format!("--{name} {v:?}: not a number"))),
    }
}

/// Load (or build) the reference index, like the `manymap` CLI.
fn load_reference(path: &str, opts: &MapOpts) -> Result<MinimizerIndex, MapError> {
    if path.ends_with(".mmx") {
        let (idx, _stats) = load_index(Path::new(path)).map_err(|e| MapError::Index {
            path: path.to_string(),
            source: e,
        })?;
        Ok(idx)
    } else {
        let f = std::fs::File::open(path).map_err(|e| MapError::Io {
            path: path.to_string(),
            source: e,
        })?;
        let refs = FastxReader::new(BufReader::new(f))
            .read_all()
            .map_err(|e| MapError::Seq {
                path: path.to_string(),
                source: e,
            })?;
        if refs.is_empty() {
            return Err(MapError::Usage(format!("{path}: no sequences")));
        }
        MinimizerIndex::build(&refs, &opts.idx).map_err(|e| MapError::Index {
            path: path.to_string(),
            source: e,
        })
    }
}

fn map_opts_for(args: &Args) -> Result<MapOpts, MapError> {
    let mut opts = match args.flags.get("preset").map(|s| s.as_str()) {
        Some("map-pb") => MapOpts::map_pb(),
        _ => MapOpts::map_ont(),
    };
    if args.flags.get("engine").map(|s| s.as_str()) == Some("mm2") {
        opts = opts.with_engine(best_mm2_engine());
    }
    if args.flags.contains_key("no-cigar") {
        opts = opts.cigar(false);
    }
    if let Some(n) = flag_num::<usize>(args, "max-read-len")? {
        opts.max_read_len = n;
    }
    opts.prefilter = match args.flags.get("prefilter") {
        Some(v) => PrefilterMode::parse(v),
        None => PrefilterMode::from_env().unwrap_or(Ok(PrefilterMode::Off)),
    }
    .map_err(MapError::Usage)?;
    Ok(opts)
}

fn cmd_daemon(args: &Args) -> Result<(), MapError> {
    let [ref_path] = &args.positional[1..] else {
        return Err(MapError::Usage(
            "usage: mmm-serve daemon <ref.mmx|ref.fa> --socket <path>".into(),
        ));
    };
    let socket = args
        .flags
        .get("socket")
        .filter(|s| !s.is_empty())
        .ok_or_else(|| MapError::Usage("mmm-serve daemon: --socket <path> is required".into()))?;
    let map = map_opts_for(args)?;

    let kind = match args.flags.get("backend") {
        Some(v) => BackendKind::parse(v),
        None => BackendKind::from_env().unwrap_or(Ok(BackendKind::Cpu)),
    }
    .map_err(|e| MapError::Usage(e.to_string()))?;
    let threads = flag_num::<usize>(args, "threads")?.unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    });
    let mut bopts = BackendOptions::new(map.scoring);
    bopts.engine = map.engine;
    bopts.threads = threads;
    bopts.device_mem = std::env::var("MMM_GPU_MEM")
        .ok()
        .and_then(|v| v.parse().ok());
    bopts.streams = std::env::var("MMM_GPU_STREAMS")
        .ok()
        .and_then(|v| v.parse().ok());
    bopts.fault = match args.flags.get("inject-backend-fault") {
        Some(text) => Some(FaultPlan::parse(text).map_err(MapError::Usage)?),
        None => FaultPlan::from_env().transpose().map_err(MapError::Usage)?,
    };

    let mut sup_cfg = SupervisorConfig::from_env().map_err(MapError::Usage)?;
    if let Some(n) = flag_num::<usize>(args, "backend-retries")? {
        sup_cfg.max_retries = n;
    }
    if let Some(ms) = flag_num::<u64>(args, "batch-deadline-ms")? {
        sup_cfg.batch_deadline = Some(std::time::Duration::from_millis(ms));
    }
    let mut sched_cfg = SchedConfig::from_env().map_err(MapError::Usage)?;
    if let Some(v) = args.flags.get("sched") {
        sched_cfg.mode = SchedMode::parse(v).map_err(MapError::Usage)?;
    }

    let mut opts = ServeOpts::new(PathBuf::from(socket), map, bopts);
    opts.threads = threads;
    opts.backend_kind = kind;
    opts.supervisor = sup_cfg;
    opts.sched = sched_cfg;
    if let Some(n) = flag_num(args, "max-tenants")? {
        opts.max_tenants = n;
    }
    if let Some(n) = flag_num(args, "inq-reads")? {
        opts.inq_reads = n;
    }
    if let Some(n) = flag_num(args, "outq-records")? {
        opts.outq_records = n;
    }
    let mut drr = DrrConfig::default();
    if let Some(n) = flag_num(args, "quantum-bases")? {
        drr.quantum_bases = n;
    }
    if let Some(n) = flag_num(args, "batch-bases")? {
        drr.batch_bases = n;
    }
    opts.drr = drr;

    let index = load_reference(ref_path, &opts.map)?;
    serve::signal::install_drain_handler();
    serve::serve(&index, &opts, &StderrSink)
}

fn connect(socket: &str) -> Result<UnixStream, MapError> {
    UnixStream::connect(socket).map_err(|e| MapError::Io {
        path: socket.to_string(),
        source: e,
    })
}

fn io_err(socket: &str, e: std::io::Error) -> MapError {
    MapError::Io {
        path: socket.to_string(),
        source: e,
    }
}

/// Stream a read file through a tenant session: reads out, records to
/// stdout. A dedicated sender thread keeps the socket's two directions
/// independent, so a large read set cannot deadlock against a full output
/// buffer.
fn cmd_client(args: &Args) -> Result<(), MapError> {
    let [socket, tenant, reads_path] = &args.positional[1..] else {
        return Err(MapError::Usage(
            "usage: mmm-serve client <socket> <tenant-name> <reads.fq>".into(),
        ));
    };
    let stream = connect(socket)?;
    let mut rx = stream.try_clone().map_err(|e| io_err(socket, e))?;
    let mut tx = stream;

    write_frame(&mut tx, Op::Hello, tenant.as_bytes()).map_err(|e| io_err(socket, e))?;
    match read_frame(&mut rx).map_err(|e| io_err(socket, e))? {
        Some(Frame { op: Op::Ok, .. }) => {}
        Some(Frame {
            op: Op::Err,
            payload,
        }) => {
            return Err(MapError::Usage(format!(
                "{socket}: {}",
                String::from_utf8_lossy(&payload)
            )));
        }
        other => {
            return Err(MapError::Usage(format!(
                "{socket}: unexpected HELLO response: {other:?}"
            )));
        }
    }

    let f = std::fs::File::open(reads_path).map_err(|e| MapError::Io {
        path: reads_path.to_string(),
        source: e,
    })?;
    let reads_path_owned = reads_path.to_string();

    std::thread::scope(|s| -> Result<(), MapError> {
        // Sender: stream every read, then END.
        let sender = s.spawn(move || -> Result<(), MapError> {
            let mut reader = FastxReader::new(BufReader::new(f));
            loop {
                let batch = reader.next_batch(1_000_000).map_err(|e| MapError::Seq {
                    path: reads_path_owned.clone(),
                    source: e,
                })?;
                if batch.is_empty() {
                    break;
                }
                for rec in &batch {
                    let qual = rec.qual.as_deref().unwrap_or(b"");
                    let payload = encode_read(&rec.name, &rec.seq, qual);
                    write_frame(&mut tx, Op::Read, &payload)
                        .map_err(|e| io_err(&reads_path_owned, e))?;
                }
            }
            write_frame(&mut tx, Op::End, b"").map_err(|e| io_err(&reads_path_owned, e))?;
            tx.flush().map_err(|e| io_err(&reads_path_owned, e))?;
            Ok(())
        });

        // Receiver: RECs to stdout, DONE summary to stderr.
        let mut out = BufWriter::new(std::io::stdout());
        let receive = (|| -> Result<(), MapError> {
            loop {
                match read_frame(&mut rx).map_err(|e| io_err(socket, e))? {
                    Some(Frame {
                        op: Op::Rec,
                        payload,
                    }) => {
                        out.write_all(&payload).map_err(|e| io_err("stdout", e))?;
                    }
                    Some(Frame {
                        op: Op::Done,
                        payload,
                    }) => {
                        out.flush().map_err(|e| io_err("stdout", e))?;
                        eprintln!("[mmm-serve] {}", String::from_utf8_lossy(&payload));
                        return Ok(());
                    }
                    Some(Frame {
                        op: Op::Err,
                        payload,
                    }) => {
                        return Err(MapError::Usage(format!(
                            "{socket}: server error: {}",
                            String::from_utf8_lossy(&payload)
                        )));
                    }
                    Some(other) => {
                        return Err(MapError::Usage(format!(
                            "{socket}: unexpected frame {:?}",
                            other.op
                        )));
                    }
                    None => {
                        return Err(MapError::Usage(format!(
                            "{socket}: connection closed before DONE"
                        )));
                    }
                }
            }
        })();

        match sender.join() {
            Ok(sent) => receive.and(sent),
            Err(p) => std::panic::resume_unwind(p),
        }
    })
}

/// One-frame admin exchanges: STATS and DRAIN.
fn cmd_admin(args: &Args, op: Op, expect: Op) -> Result<(), MapError> {
    let [socket] = &args.positional[1..] else {
        return Err(MapError::Usage(format!(
            "usage: mmm-serve {} <socket>",
            args.positional[0]
        )));
    };
    let mut stream = connect(socket)?;
    write_frame(&mut stream, op, b"").map_err(|e| io_err(socket, e))?;
    match read_frame(&mut stream).map_err(|e| io_err(socket, e))? {
        Some(f) if f.op == expect => {
            let text = f.text();
            if !text.is_empty() {
                let mut out = std::io::stdout();
                out.write_all(text.as_bytes())
                    .and_then(|()| {
                        if text.ends_with('\n') {
                            Ok(())
                        } else {
                            out.write_all(b"\n")
                        }
                    })
                    .map_err(|e| io_err("stdout", e))?;
            }
            Ok(())
        }
        Some(Frame {
            op: Op::Err,
            payload,
        }) => Err(MapError::Usage(format!(
            "{socket}: {}",
            String::from_utf8_lossy(&payload)
        ))),
        other => Err(MapError::Usage(format!(
            "{socket}: unexpected response: {other:?}"
        ))),
    }
}

fn main() -> ExitCode {
    let args = parse_args();
    let result = match args.positional.first().map(|s| s.as_str()) {
        Some("daemon") => cmd_daemon(&args),
        Some("client") => cmd_client(&args),
        Some("stats") => cmd_admin(&args, Op::Stats, Op::StatsReply),
        Some("drain") => cmd_admin(&args, Op::Drain, Op::Ok),
        _ => Err(MapError::Usage(
            "usage: mmm-serve <daemon|client|stats|drain> ... (see crate docs)".into(),
        )),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("mmm-serve: {e}");
            ExitCode::FAILURE
        }
    }
}
