//! `mapeval` — score a PAF against the ground truth encoded in read names.
//!
//! Reads PAF from a file (or `-` for stdin) whose query names follow the
//! `simreads` convention `read{N}!{rname}!{start}!{end}!{+|-}`, and prints
//! the paper's accuracy metrics (Table 5's error-rate definition: wrong
//! primary alignments / mapped reads, with ≥10% overlap of the true
//! interval counting as correct) plus a MAPQ-stratified breakdown.
//!
//! ```sh
//! simreads --out-ref ref.fa --out-reads reads.fa
//! manymap map ref.fa reads.fa > out.paf
//! mapeval out.paf
//! ```

use std::collections::HashMap;
use std::io::{BufRead, BufReader};
use std::process::ExitCode;

#[derive(Clone, Copy)]
struct Truth {
    start: u64,
    end: u64,
    rev: bool,
}

struct Call {
    rname: String,
    start: u64,
    end: u64,
    rev: bool,
    mapq: u8,
}

fn parse_truth(qname: &str) -> Option<(String, Truth)> {
    let parts: Vec<&str> = qname.split('!').collect();
    if parts.len() != 5 {
        return None;
    }
    Some((
        parts[1].to_string(),
        Truth {
            start: parts[2].parse().ok()?,
            end: parts[3].parse().ok()?,
            rev: parts[4] == "-",
        },
    ))
}

fn main() -> ExitCode {
    let path = match std::env::args().nth(1) {
        Some(p) => p,
        None => {
            eprintln!("usage: mapeval <out.paf|->");
            return ExitCode::FAILURE;
        }
    };
    let reader: Box<dyn BufRead> = if path == "-" {
        Box::new(BufReader::new(std::io::stdin()))
    } else {
        match std::fs::File::open(&path) {
            Ok(f) => Box::new(BufReader::new(f)),
            Err(e) => {
                eprintln!("mapeval: {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    };

    // Keep only the primary call per read (tp:A:P, or the first line).
    let mut primary: HashMap<String, (String, Truth, Call)> = HashMap::new();
    let mut lines = 0u64;
    for line in reader.lines() {
        // A mid-stream read error must not silently truncate the evaluation:
        // stats over a partial PAF would look plausible but be wrong.
        let line = match line {
            Ok(line) => line,
            Err(e) => {
                eprintln!("mapeval: {path}: read error after line {lines}: {e}");
                return ExitCode::FAILURE;
            }
        };
        lines += 1;
        let cols: Vec<&str> = line.split('\t').collect();
        if cols.len() < 12 {
            continue;
        }
        let qname = cols[0];
        let Some((truth_rname, truth)) = parse_truth(qname) else {
            continue;
        };
        let is_primary = cols.contains(&"tp:A:P");
        if !is_primary && primary.contains_key(qname) {
            continue;
        }
        let call = Call {
            rname: cols[5].to_string(),
            start: cols[7].parse().unwrap_or(0),
            end: cols[8].parse().unwrap_or(0),
            rev: cols[4] == "-",
            mapq: cols[11].parse().unwrap_or(0),
        };
        primary.insert(qname.to_string(), (truth_rname, truth, call));
    }

    let mut mapped = 0u64;
    let mut wrong = 0u64;
    let mut per_mapq: Vec<(u8, u64, u64)> = Vec::new(); // (mapq floor, mapped, wrong)
    let mut strata: HashMap<u8, (u64, u64)> = HashMap::new();
    for (truth_rname, truth, call) in primary.values() {
        mapped += 1;
        let inter = call
            .end
            .min(truth.end)
            .saturating_sub(call.start.max(truth.start));
        let ok = call.rname == *truth_rname
            && call.rev == truth.rev
            && inter as f64 >= 0.1 * (truth.end - truth.start).max(1) as f64;
        let bucket = call.mapq / 10 * 10;
        let e = strata.entry(bucket).or_insert((0, 0));
        e.0 += 1;
        if !ok {
            wrong += 1;
            e.1 += 1;
        }
    }
    let mut buckets: Vec<u8> = strata.keys().copied().collect();
    buckets.sort_unstable();
    for b in buckets {
        let (m, w) = strata[&b];
        per_mapq.push((b, m, w));
    }

    println!("paf lines:      {lines}");
    println!("primary calls:  {mapped}");
    println!("wrong calls:    {wrong}");
    println!(
        "error rate:     {:.3}%",
        if mapped > 0 {
            100.0 * wrong as f64 / mapped as f64
        } else {
            0.0
        }
    );
    println!("\nmapq     mapped   wrong   err%");
    for (b, m, w) in per_mapq {
        println!(
            "{:>2}-{:>2} {:>9} {:>7}  {:>5.2}",
            b,
            b + 9,
            m,
            w,
            100.0 * w as f64 / m.max(1) as f64
        );
    }
    ExitCode::SUCCESS
}
