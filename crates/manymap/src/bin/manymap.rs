//! The `manymap` command-line aligner.
//!
//! A minimap2-style interface over the library:
//!
//! ```sh
//! manymap index  ref.fa ref.mmx [--preset map-pb|map-ont]
//! manymap map    ref.mmx reads.fq [--preset ...] [--engine mm2|manymap]
//!                [--backend cpu|gpu-sim] [--threads N] [--sam]
//!                [--no-cigar] [--no-mmap] [--max-read-len N]
//!                [--sched fifo|bins] [--prefilter off|safe|aggressive]
//! manymap map    ref.fa  reads.fq   # index built on the fly
//! ```
//!
//! Output (PAF by default, SAM with `--sam`) goes to stdout; stage timings
//! and a per-backend execution summary to stderr.
//!
//! Backend selection: `--backend` (or the `MMM_BACKEND` environment
//! variable) routes the batched gap-fill alignment work to the CPU SIMD
//! executor or the simulated GPU/SIMT runner. All backends are
//! bit-identical, so the choice never changes stdout. `MMM_GPU_MEM` (bytes)
//! and `MMM_GPU_STREAMS` shrink the simulated device — useful to force the
//! oversized-pair CPU fallback path.
//!
//! Scheduling (DESIGN.md §11): `--sched bins` (or `MMM_SCHED=bins`) bins
//! each dispatch's jobs by DP-matrix size before submission — similarly
//! sized jobs batch together for even stream occupancy, and jobs the device
//! statically cannot take are routed to the host executor pre-batch instead
//! of stalling a device batch. Batch budgets: `MMM_SCHED_BATCH_CELLS`,
//! `MMM_SCHED_BATCH_JOBS`. Scheduling is pure reordering, so stdout is
//! byte-identical to the default fifo dispatch.
//!
//! Pre-alignment filtering: `--prefilter safe|aggressive` (or
//! `MMM_PREFILTER`) rejects candidate chains whose anchored sample windows
//! show no real-mapping evidence, before their DP jobs are planned.
//! Rejections are counted and reported on stderr. Default `off`.
//!
//! Fault behavior: fatal input problems (unreadable files, corrupt index,
//! a byte stream dying mid-file) abort with a nonzero exit and a message
//! naming the file and byte offset. Per-read problems (an oversized read, a
//! worker panic) degrade that read to an unmapped record, are counted, and
//! reported on stderr; the run still exits 0. `--inject-panic <read-name>`
//! triggers a deliberate worker panic on the named read, for exercising the
//! degradation path end-to-end.
//!
//! Supervised execution (DESIGN.md §10): every backend session runs under
//! the `mmm-exec` supervisor — failed batches are split and retried with
//! backoff (`--backend-retries N`, `MMM_BACKEND_RETRIES`), hung submissions
//! are killed by a watchdog (`--batch-deadline-ms N`), and a repeatedly
//! failing device backend is demoted to the CPU by a circuit breaker. Jobs
//! that fail everywhere quarantine their read to an unmapped record.
//! `--fail-fast` restores the old fatal behaviour.
//! `--inject-backend-fault <plan>` (or `MMM_FAULT_PLAN`) installs a
//! deterministic fault schedule, e.g. `launch-fail:batches=0..2` or
//! `hang:ms=500:every=3` — see `mmm_exec::FaultPlan` for the grammar.

use std::fs::File;
use std::io::{BufReader, BufWriter, Write};
use std::path::Path;
use std::process::ExitCode;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use manymap::mapper::ReadPlan;
use manymap::sam::{sam_line, sam_unmapped, write_sam_header};
use manymap::{paf_line, paf_unmapped, MapError, MapOpts, MapReadError, Mapper};
use mmm_align::{best_mm2_engine, AlignResult, AlignScratch};
use mmm_exec::{
    prepare_supervised, BackendKind, BackendOptions, BackendStats, FaultPlan, JobOutcome,
    PrefilterMode, SchedConfig, SchedMode, StatsReport, StderrSink, SupervisorConfig,
};
use mmm_index::{load_index, load_index_mmap, save_index, MinimizerIndex};
use mmm_io::{Stage, StageTimer};
use mmm_pipeline::{lock_unpoisoned, try_run_three_thread_batched_with_state, DynError};
use mmm_seq::{FastxReader, SeqRecord};

struct Args {
    positional: Vec<String>,
    flags: std::collections::HashMap<String, String>,
}

fn parse_args() -> Args {
    let mut positional = Vec::new();
    let mut flags = std::collections::HashMap::new();
    let mut it = std::env::args().skip(1).peekable();
    while let Some(a) = it.next() {
        if let Some(name) = a.strip_prefix("--") {
            let val = match name {
                "preset"
                | "engine"
                | "backend"
                | "threads"
                | "max-read-len"
                | "inject-panic"
                | "backend-retries"
                | "batch-deadline-ms"
                | "inject-backend-fault"
                | "sched"
                | "prefilter" => it.next().unwrap_or_default(),
                _ => "true".to_string(),
            };
            flags.insert(name.to_string(), val);
        } else {
            positional.push(a);
        }
    }
    Args { positional, flags }
}

fn opts_for(args: &Args) -> Result<MapOpts, MapError> {
    let mut opts = match args.flags.get("preset").map(|s| s.as_str()) {
        Some("map-pb") => MapOpts::map_pb(),
        _ => MapOpts::map_ont(),
    };
    if args.flags.get("engine").map(|s| s.as_str()) == Some("mm2") {
        opts = opts.with_engine(best_mm2_engine());
    }
    if args.flags.contains_key("no-cigar") {
        opts = opts.cigar(false);
    }
    if let Some(n) = args.flags.get("max-read-len").and_then(|s| s.parse().ok()) {
        opts.max_read_len = n;
    }
    // Prefilter selection: --prefilter wins, then MMM_PREFILTER, default off.
    opts.prefilter = match args.flags.get("prefilter") {
        Some(v) => PrefilterMode::parse(v),
        None => PrefilterMode::from_env().unwrap_or(Ok(PrefilterMode::Off)),
    }
    .map_err(MapError::Usage)?;
    Ok(opts)
}

fn load_reference(path: &str, opts: &MapOpts) -> Result<MinimizerIndex, MapError> {
    if path.ends_with(".mmx") {
        let loader = |p: &Path| load_index_mmap(p);
        let fallback = |p: &Path| load_index(p);
        let (idx, stats) = if std::env::args().any(|a| a == "--no-mmap") {
            fallback(Path::new(path))
        } else {
            loader(Path::new(path))
        }
        .map_err(|e| MapError::Index {
            path: path.to_string(),
            source: e,
        })?;
        eprintln!(
            "[manymap] loaded index: {:.3}s, {} read call(s)",
            stats.seconds, stats.read_calls
        );
        Ok(idx)
    } else {
        let f = File::open(path).map_err(|e| MapError::Io {
            path: path.to_string(),
            source: e,
        })?;
        let refs = FastxReader::new(BufReader::new(f))
            .read_all()
            .map_err(|e| MapError::Seq {
                path: path.to_string(),
                source: e,
            })?;
        if refs.is_empty() {
            return Err(MapError::Usage(format!("{path}: no sequences")));
        }
        eprintln!("[manymap] indexing {} reference sequence(s)...", refs.len());
        MinimizerIndex::build(&refs, &opts.idx).map_err(|e| MapError::Index {
            path: path.to_string(),
            source: e,
        })
    }
}

fn cmd_index(args: &Args) -> Result<(), MapError> {
    let [input, output] = &args.positional[1..] else {
        return Err(MapError::Usage(
            "usage: manymap index <ref.fa> <out.mmx>".into(),
        ));
    };
    let opts = opts_for(args)?;
    let idx = load_reference(input, &opts)?;
    save_index(&idx, Path::new(output)).map_err(|e| MapError::Io {
        path: output.to_string(),
        source: e,
    })?;
    eprintln!(
        "[manymap] wrote {output}: {} minimizers over {} sequence(s)",
        idx.num_minimizers(),
        idx.seqs.len()
    );
    Ok(())
}

/// The record emitted for a degraded read: SAM or PAF unmapped placeholder.
fn unmapped_record(rec: &SeqRecord, sam: bool) -> String {
    let mut s = if sam {
        sam_unmapped(&rec.name, &rec.nt4())
    } else {
        paf_unmapped(&rec.name, rec.len())
    };
    s.push('\n');
    s
}

fn cmd_map(args: &Args) -> Result<(), MapError> {
    let [ref_path, reads_path] = &args.positional[1..] else {
        return Err(MapError::Usage(
            "usage: manymap map <ref.mmx|ref.fa> <reads.fq>".into(),
        ));
    };
    let opts = opts_for(args)?;
    let threads: usize = args
        .flags
        .get("threads")
        .and_then(|t| t.parse().ok())
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        });
    let sam = args.flags.contains_key("sam");
    let inject_panic = args.flags.get("inject-panic").cloned();

    // Backend selection: --backend wins, then MMM_BACKEND, default cpu.
    let kind = match args.flags.get("backend") {
        Some(v) => BackendKind::parse(v),
        None => BackendKind::from_env().unwrap_or(Ok(BackendKind::Cpu)),
    }
    .map_err(|e| MapError::Usage(e.to_string()))?;
    let mut bopts = BackendOptions::new(opts.scoring);
    bopts.engine = opts.engine;
    bopts.threads = threads;
    bopts.device_mem = std::env::var("MMM_GPU_MEM")
        .ok()
        .and_then(|v| v.parse().ok());
    bopts.streams = std::env::var("MMM_GPU_STREAMS")
        .ok()
        .and_then(|v| v.parse().ok());
    // Fault injection: --inject-backend-fault wins, then MMM_FAULT_PLAN.
    bopts.fault = match args.flags.get("inject-backend-fault") {
        Some(text) => Some(FaultPlan::parse(text).map_err(MapError::Usage)?),
        None => FaultPlan::from_env().transpose().map_err(MapError::Usage)?,
    };

    // Supervisor tuning: env defaults, then explicit flags.
    let mut sup_cfg = SupervisorConfig::from_env().map_err(MapError::Usage)?;
    if let Some(v) = args.flags.get("backend-retries") {
        sup_cfg.max_retries = v
            .parse()
            .map_err(|_| MapError::Usage(format!("--backend-retries {v:?}: not an integer")))?;
    }
    if let Some(v) = args.flags.get("batch-deadline-ms") {
        let ms: u64 = v
            .parse()
            .map_err(|_| MapError::Usage(format!("--batch-deadline-ms {v:?}: not an integer")))?;
        sup_cfg.batch_deadline = Some(std::time::Duration::from_millis(ms));
    }
    sup_cfg.fail_fast = args.flags.contains_key("fail-fast");
    // Scheduler: env defaults, then the --sched flag on top.
    let mut sched_cfg = SchedConfig::from_env().map_err(MapError::Usage)?;
    if let Some(v) = args.flags.get("sched") {
        sched_cfg.mode = SchedMode::parse(v).map_err(MapError::Usage)?;
    }
    let backend =
        prepare_supervised(kind, &bopts, sup_cfg).map_err(|e| MapError::Usage(e.to_string()))?;
    let backend_stats = Mutex::new(BackendStats::default());

    let mut timer = StageTimer::new();
    let index = timer.time(Stage::LoadIndex, || load_reference(ref_path, &opts))?;
    let mapper = Mapper::new(&index, opts);
    let tnames: Vec<String> = index.seqs.iter().map(|s| s.name.clone()).collect();
    let tlens: Vec<usize> = index.seqs.iter().map(|s| s.seq.len()).collect();

    let f = File::open(reads_path).map_err(|e| MapError::Io {
        path: reads_path.to_string(),
        source: e,
    })?;
    let reader = Mutex::new(FastxReader::new(BufReader::new(f)));
    let mut out = BufWriter::new(std::io::stdout());
    if sam {
        write_sam_header(&mut out, &tnames, &tlens).map_err(|e| MapError::Io {
            path: "stdout".into(),
            source: e,
        })?;
    }
    let out = Mutex::new(out);

    // Per-read degradation counters, reported on stderr after the run.
    let too_long = AtomicUsize::new(0);
    let align_rejected = AtomicUsize::new(0);
    let panicked = AtomicUsize::new(0);
    let backend_quarantined = AtomicUsize::new(0);
    // Chains the pre-alignment filter rejected before planning.
    let prefilter_rejected = AtomicUsize::new(0);

    // A worker panic or a quarantined backend job degrades the read instead
    // of killing the run: the handler reports the offending read once and
    // substitutes an unmapped record, so output still accounts for every
    // input read. Backend quarantines arrive with a "backend: " prefix from
    // the dispatch stage and are counted separately.
    let on_panic = |rec: &SeqRecord, msg: &str| -> String {
        if let Some(reason) = msg.strip_prefix("backend: ") {
            backend_quarantined.fetch_add(1, Ordering::Relaxed);
            eprintln!(
                "manymap: read '{}' degraded to unmapped: backend quarantined its jobs ({reason})",
                rec.name
            );
        } else {
            panicked.fetch_add(1, Ordering::Relaxed);
            eprintln!(
                "manymap: worker panicked on read '{}' ({msg}); emitting unmapped record",
                rec.name
            );
        }
        unmapped_record(rec, sam)
    };

    // The batched pipeline: plan (seed/chain/describe DP jobs, on the
    // worker pool) → dispatch (one backend submission per read batch) →
    // finalize (splice results, extend ends, format records, on the pool).
    type Planned = (Vec<u8>, Result<ReadPlan, MapReadError>);
    let backend = &backend;
    let sched_cfg = &sched_cfg;
    let stats = try_run_three_thread_batched_with_state(
        // A mid-file read error (device fault, malformed record) aborts the
        // run with the file name and position — it is never EOF.
        || {
            let batch = lock_unpoisoned(&reader)
                .next_batch(4_000_000)
                .map_err(|e| -> DynError { format!("{reads_path}: {e}").into() })?;
            Ok((!batch.is_empty()).then_some(batch))
        },
        // One scratch arena per persistent worker: the alignment hot path
        // stops allocating once the buffers have grown to the batch's
        // largest problem.
        |_worker| AlignScratch::new(),
        // Plan: panics here (including --inject-panic) degrade exactly the
        // one read they hit, and its jobs never reach the backend.
        |_scratch: &mut AlignScratch, rec: &SeqRecord| -> Planned {
            if inject_panic.as_deref() == Some(rec.name.as_str()) {
                panic!("injected panic for read '{}'", rec.name);
            }
            let nt4 = rec.nt4();
            let plan = mapper.plan_read(&nt4);
            (nt4, plan)
        },
        // Dispatch: flatten every read's jobs into one supervised backend
        // batch, then deal the per-job outcomes back out per read, in job
        // order. A read with any quarantined job degrades to unmapped via
        // the panic handler ("backend: " prefix); a `--fail-fast` run
        // surfaces the first unrecovered error as a fatal dispatch error.
        |mut plans: Vec<Planned>| {
            let mut counts = Vec::with_capacity(plans.len());
            let mut all_jobs = Vec::new();
            for (_, plan) in &mut plans {
                let n = match plan.as_mut() {
                    Ok(p) => {
                        let jobs = std::mem::take(&mut p.jobs);
                        let n = jobs.len();
                        all_jobs.extend(jobs);
                        n
                    }
                    Err(_) => 0,
                };
                counts.push(n);
            }
            let mut outcomes = Vec::new();
            if !all_jobs.is_empty() {
                let (os, bstats) = backend
                    .submit_scheduled(all_jobs, sched_cfg)
                    .map_err(|e| -> DynError { Box::new(e) })?;
                lock_unpoisoned(&backend_stats).merge(&bstats);
                outcomes = os;
            }
            let mut it = outcomes.into_iter();
            Ok(plans
                .into_iter()
                .zip(counts)
                .map(|(p, n)| {
                    let mut results: Vec<AlignResult> = Vec::with_capacity(n);
                    let mut quarantine: Option<String> = None;
                    for o in it.by_ref().take(n) {
                        match o {
                            JobOutcome::Done(r) => results.push(r),
                            JobOutcome::Quarantined { reason } => {
                                quarantine.get_or_insert(reason);
                            }
                        }
                    }
                    match quarantine {
                        None => (p, Ok(results)),
                        Some(reason) => (p, Err(format!("backend: {reason}"))),
                    }
                })
                .collect())
        },
        // Finalize: splice backend results into the chain walks and format.
        |scratch: &mut AlignScratch,
         rec: &SeqRecord,
         planned: &Planned,
         results: &Vec<AlignResult>| {
            let (nt4, plan) = planned;
            let plan = match plan {
                Ok(p) => {
                    let n = p.chained().prefilter_rejected();
                    if n > 0 {
                        prefilter_rejected.fetch_add(n, Ordering::Relaxed);
                    }
                    p
                }
                Err(e) => {
                    match e {
                        MapReadError::ReadTooLong { .. } => &too_long,
                        MapReadError::Align(_) => &align_rejected,
                    }
                    .fetch_add(1, Ordering::Relaxed);
                    eprintln!("manymap: read '{}' degraded to unmapped: {e}", rec.name);
                    return unmapped_record(rec, sam);
                }
            };
            let ms = mapper.finalize_read_with_scratch(nt4, plan, results, scratch);
            let mut lines = String::new();
            for m in &ms {
                if sam {
                    lines.push_str(&sam_line(&rec.name, nt4, &tnames, m));
                } else {
                    lines.push_str(&paf_line(
                        &rec.name,
                        nt4.len(),
                        &tnames[m.rid as usize],
                        tlens[m.rid as usize],
                        m,
                    ));
                }
                lines.push('\n');
            }
            lines
        },
        |rec| rec.len(),
        // A write error (e.g. a closed pipe, a full disk) aborts the run.
        |results| {
            let mut w = lock_unpoisoned(&out);
            for lines in results {
                w.write_all(lines.as_bytes())
                    .map_err(|e| -> DynError { format!("writing output: {e}").into() })?;
            }
            Ok(())
        },
        Some(&on_panic),
        threads,
        true,
    )
    .map_err(MapError::Pipeline)?;

    lock_unpoisoned(&out).flush().map_err(|e| MapError::Io {
        path: "stdout".into(),
        source: e,
    })?;

    // The run summary is assembled into one report and delivered as a
    // single stderr write (DESIGN.md §12): concurrent sessions sharing a
    // stderr serialize at report granularity instead of interleaving lines.
    // Rendering is byte-identical to the old eprintln!-per-line output.
    let mut report = StatsReport::new("[manymap] ");
    report.line(format!(
        "mapped {} reads in {:.2}s wall ({} threads; compute {:.2}s, I/O {:.2}s)",
        stats.items,
        stats.wall_seconds,
        threads,
        stats.compute_seconds,
        stats.in_seconds + stats.out_seconds
    ));
    {
        use mmm_exec::AlignBackend;
        let bstats = lock_unpoisoned(&backend_stats);
        report.backend_block(&bstats, backend.label());
    }
    let pf = prefilter_rejected.load(Ordering::Relaxed);
    if pf > 0 {
        report.line(format!(
            "prefilter ({}): {pf} candidate chain(s) rejected before planning",
            opts.prefilter.label()
        ));
    }
    let (tl, ar, pk, bq) = (
        too_long.load(Ordering::Relaxed),
        align_rejected.load(Ordering::Relaxed),
        panicked.load(Ordering::Relaxed),
        backend_quarantined.load(Ordering::Relaxed),
    );
    if tl + ar + pk + bq > 0 {
        report.line(format!(
            "{} read(s) degraded to unmapped: {tl} over the length limit, \
             {ar} alignment-rejected, {pk} worker panic(s), {bq} backend-quarantined",
            tl + ar + pk + bq
        ));
    }
    report.emit(&StderrSink);
    Ok(())
}

fn main() -> ExitCode {
    let args = parse_args();
    let result = match args.positional.first().map(|s| s.as_str()) {
        Some("index") => cmd_index(&args),
        Some("map") => cmd_map(&args),
        _ => Err(MapError::Usage(
            "usage: manymap <index|map> ... (see crate docs)".into(),
        )),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("manymap: {e}");
            ExitCode::FAILURE
        }
    }
}
