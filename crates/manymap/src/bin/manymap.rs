//! The `manymap` command-line aligner.
//!
//! A minimap2-style interface over the library:
//!
//! ```sh
//! manymap index  ref.fa ref.mmx [--preset map-pb|map-ont]
//! manymap map    ref.mmx reads.fq [--preset ...] [--engine mm2|manymap]
//!                [--threads N] [--sam] [--no-cigar] [--no-mmap]
//! manymap map    ref.fa  reads.fq   # index built on the fly
//! ```
//!
//! Output (PAF by default, SAM with `--sam`) goes to stdout; stage timings
//! to stderr.

use std::fs::File;
use std::io::{BufReader, BufWriter, Write};
use std::path::Path;
use std::process::ExitCode;

use std::sync::Mutex;

use manymap::{paf_line, sam::sam_line, sam::write_sam_header, MapOpts, Mapper};
use mmm_align::{best_mm2_engine, AlignScratch};
use mmm_index::{load_index, load_index_mmap, save_index, MinimizerIndex};
use mmm_io::{Stage, StageTimer};
use mmm_pipeline::run_three_thread_with_state;
use mmm_seq::FastxReader;

struct Args {
    positional: Vec<String>,
    flags: std::collections::HashMap<String, String>,
}

fn parse_args() -> Args {
    let mut positional = Vec::new();
    let mut flags = std::collections::HashMap::new();
    let mut it = std::env::args().skip(1).peekable();
    while let Some(a) = it.next() {
        if let Some(name) = a.strip_prefix("--") {
            let val = match name {
                "preset" | "engine" | "threads" => it.next().unwrap_or_default(),
                _ => "true".to_string(),
            };
            flags.insert(name.to_string(), val);
        } else {
            positional.push(a);
        }
    }
    Args { positional, flags }
}

fn opts_for(args: &Args) -> MapOpts {
    let mut opts = match args.flags.get("preset").map(|s| s.as_str()) {
        Some("map-pb") => MapOpts::map_pb(),
        _ => MapOpts::map_ont(),
    };
    if args.flags.get("engine").map(|s| s.as_str()) == Some("mm2") {
        opts = opts.with_engine(best_mm2_engine());
    }
    if args.flags.contains_key("no-cigar") {
        opts = opts.cigar(false);
    }
    opts
}

fn load_reference(path: &str, opts: &MapOpts) -> Result<MinimizerIndex, String> {
    if path.ends_with(".mmx") {
        let loader = |p: &Path| load_index_mmap(p);
        let fallback = |p: &Path| load_index(p);
        let (idx, stats) = if std::env::args().any(|a| a == "--no-mmap") {
            fallback(Path::new(path))
        } else {
            loader(Path::new(path))
        }
        .map_err(|e| format!("loading index {path}: {e}"))?;
        eprintln!(
            "[manymap] loaded index: {:.3}s, {} read call(s)",
            stats.seconds, stats.read_calls
        );
        Ok(idx)
    } else {
        let f = File::open(path).map_err(|e| format!("opening {path}: {e}"))?;
        let refs = FastxReader::new(BufReader::new(f))
            .read_all()
            .map_err(|e| format!("parsing {path}: {e}"))?;
        if refs.is_empty() {
            return Err(format!("{path}: no sequences"));
        }
        eprintln!("[manymap] indexing {} reference sequence(s)...", refs.len());
        Ok(MinimizerIndex::build(&refs, &opts.idx))
    }
}

fn cmd_index(args: &Args) -> Result<(), String> {
    let [input, output] = &args.positional[1..] else {
        return Err("usage: manymap index <ref.fa> <out.mmx>".into());
    };
    let opts = opts_for(args);
    let idx = load_reference(input, &opts)?;
    save_index(&idx, Path::new(output)).map_err(|e| format!("writing {output}: {e}"))?;
    eprintln!(
        "[manymap] wrote {output}: {} minimizers over {} sequence(s)",
        idx.num_minimizers(),
        idx.seqs.len()
    );
    Ok(())
}

fn cmd_map(args: &Args) -> Result<(), String> {
    let [ref_path, reads_path] = &args.positional[1..] else {
        return Err("usage: manymap map <ref.mmx|ref.fa> <reads.fq>".into());
    };
    let opts = opts_for(args);
    let threads: usize = args
        .flags
        .get("threads")
        .and_then(|t| t.parse().ok())
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        });
    let sam = args.flags.contains_key("sam");

    let mut timer = StageTimer::new();
    let index = timer.time(Stage::LoadIndex, || load_reference(ref_path, &opts))?;
    let mapper = Mapper::new(&index, opts);
    let tnames: Vec<String> = index.seqs.iter().map(|s| s.name.clone()).collect();
    let tlens: Vec<usize> = index.seqs.iter().map(|s| s.seq.len()).collect();

    let f = File::open(reads_path).map_err(|e| format!("opening {reads_path}: {e}"))?;
    let reader = Mutex::new(FastxReader::new(BufReader::new(f)));
    let mut out = BufWriter::new(std::io::stdout());
    if sam {
        write_sam_header(&mut out, &tnames, &tlens).map_err(|e| e.to_string())?;
    }
    let out = Mutex::new(out);

    let stats = run_three_thread_with_state(
        || {
            let batch = reader.lock().unwrap().next_batch(4_000_000).ok()?;
            (!batch.is_empty()).then_some(batch)
        },
        // One scratch arena per persistent worker: the alignment hot path
        // stops allocating once the buffers have grown to the batch's
        // largest problem.
        |_worker| AlignScratch::new(),
        |scratch: &mut AlignScratch, rec: &mmm_seq::SeqRecord| {
            let nt4 = rec.nt4();
            let ms = mapper.map_read_with_scratch(&nt4, scratch);
            let mut lines = String::new();
            for m in &ms {
                if sam {
                    lines.push_str(&sam_line(&rec.name, &nt4, &tnames, m));
                } else {
                    lines.push_str(&paf_line(
                        &rec.name,
                        nt4.len(),
                        &tnames[m.rid as usize],
                        tlens[m.rid as usize],
                        m,
                    ));
                }
                lines.push('\n');
            }
            lines
        },
        |rec| rec.len(),
        |results| {
            let mut w = out.lock().unwrap();
            for lines in results {
                let _ = w.write_all(lines.as_bytes());
            }
        },
        threads,
        true,
    );
    eprintln!(
        "[manymap] mapped {} reads in {:.2}s wall ({} threads; compute {:.2}s, I/O {:.2}s)",
        stats.items,
        stats.wall_seconds,
        threads,
        stats.compute_seconds,
        stats.in_seconds + stats.out_seconds
    );
    Ok(())
}

fn main() -> ExitCode {
    let args = parse_args();
    let result = match args.positional.first().map(|s| s.as_str()) {
        Some("index") => cmd_index(&args),
        Some("map") => cmd_map(&args),
        _ => Err("usage: manymap <index|map> ... (see crate docs)".into()),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("manymap: {e}");
            ExitCode::FAILURE
        }
    }
}
