//! PAF output (minimap2's default format, used for all macro benchmarks).

use std::io::{self, Write};

use crate::mapper::Mapping;

/// Format one mapping as a PAF line.
///
/// Columns: qname qlen qstart qend strand tname tlen tstart tend matches
/// blocklen mapq, plus `tp`, `s1`/`AS` and optional `cg` tags.
pub fn paf_line(qname: &str, qlen: usize, tname: &str, tlen: usize, m: &Mapping) -> String {
    let mut s = format!(
        "{qname}\t{qlen}\t{}\t{}\t{}\t{tname}\t{tlen}\t{}\t{}\t{}\t{}\t{}\ttp:A:{}\ts1:i:{}\tAS:i:{}",
        m.q_start,
        m.q_end,
        if m.rev { '-' } else { '+' },
        m.ref_start,
        m.ref_end,
        m.matches,
        m.block_len,
        m.mapq,
        if m.primary { 'P' } else { 'S' },
        m.chain_score,
        m.align_score,
    );
    if let Some(c) = &m.cigar {
        s.push_str("\tcg:Z:");
        s.push_str(&c.to_string());
    }
    s
}

/// Format an unmapped-read placeholder line (12 mandatory columns with `*`
/// target fields and a `tp:A:U` tag). Emitted when a read is degraded —
/// e.g. its worker panicked or it exceeded the length limit — so the output
/// still accounts for every input read.
pub fn paf_unmapped(qname: &str, qlen: usize) -> String {
    format!("{qname}\t{qlen}\t0\t0\t*\t*\t0\t0\t0\t0\t0\t0\ttp:A:U")
}

/// Write a batch of mappings for one read.
pub fn write_paf<W: Write>(
    w: &mut W,
    qname: &str,
    qlen: usize,
    tnames: &[String],
    tlens: &[usize],
    mappings: &[Mapping],
) -> io::Result<usize> {
    let mut bytes = 0usize;
    for m in mappings {
        let line = paf_line(
            qname,
            qlen,
            &tnames[m.rid as usize],
            tlens[m.rid as usize],
            m,
        );
        bytes += line.len() + 1;
        writeln!(w, "{line}")?;
    }
    Ok(bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmm_align::{Cigar, CigarOp};

    fn mapping() -> Mapping {
        let mut c = Cigar::new();
        c.push(CigarOp::Match, 100);
        Mapping {
            rid: 0,
            ref_start: 1000,
            ref_end: 1100,
            q_start: 0,
            q_end: 100,
            rev: true,
            primary: true,
            mapq: 60,
            chain_score: 90,
            align_score: 200,
            matches: 100,
            block_len: 100,
            cigar: Some(c),
        }
    }

    #[test]
    fn paf_has_twelve_mandatory_columns() {
        let line = paf_line("readA", 100, "chr1", 50_000, &mapping());
        let cols: Vec<&str> = line.split('\t').collect();
        assert!(cols.len() >= 12);
        assert_eq!(cols[0], "readA");
        assert_eq!(cols[4], "-");
        assert_eq!(cols[5], "chr1");
        assert_eq!(cols[9], "100");
        assert_eq!(cols[11], "60");
        assert!(line.contains("tp:A:P"));
        assert!(line.contains("cg:Z:100M"));
    }

    #[test]
    fn unmapped_line_has_twelve_columns() {
        let line = paf_unmapped("readB", 777);
        let cols: Vec<&str> = line.split('\t').collect();
        assert_eq!(cols.len(), 13); // 12 mandatory + tp tag
        assert_eq!(cols[0], "readB");
        assert_eq!(cols[1], "777");
        assert_eq!(cols[4], "*");
        assert_eq!(cols[5], "*");
        assert_eq!(cols[12], "tp:A:U");
    }

    #[test]
    fn write_paf_counts_bytes() {
        let mut buf = Vec::new();
        let n = write_paf(
            &mut buf,
            "readA",
            100,
            &["chr1".to_string()],
            &[50_000],
            &[mapping()],
        )
        .unwrap();
        assert_eq!(n, buf.len());
        assert!(buf.ends_with(b"\n"));
    }
}
