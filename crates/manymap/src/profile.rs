//! Instrumented end-to-end runs — the measurement harness behind Table 2
//! and Figure 11.
//!
//! [`profile_run`] executes the full pipeline single-threaded and charges
//! each stage to the paper's five-way breakdown: *Load Index* (either I/O
//! path), *Load Query* (FASTA parsing + encoding), *Seed & Chain*, *Align*,
//! *Output* (PAF formatting and writing).

use std::path::Path;

use mmm_exec::{
    prepare, prepare_supervised, AlignBackend, BackendKind, BackendOptions, BackendStats,
    JobOutcome, SchedConfig, SchedMode, SupervisedBackend, SupervisorConfig,
};
use mmm_io::{Stage, StageTimer};
use mmm_seq::FastxReader;

use crate::error::MapError;
use crate::mapper::Mapper;
use crate::opts::MapOpts;

/// Which variant of the pipeline to profile.
#[derive(Clone, Copy, Debug)]
pub struct ProfileConfig {
    pub opts: MapOpts,
    /// Load the index through `mmap` (manymap, §4.4.2) instead of
    /// fragmented buffered reads (minimap2).
    pub use_mmap: bool,
    /// Sort each batch by descending read length before aligning
    /// (manymap's load-balance tweak, §4.4.4).
    pub sort_by_length: bool,
    /// Route the gap-fill alignment work through an [`AlignBackend`]
    /// session (`Some`) instead of inline host-engine calls (`None`). With
    /// a backend, *Seed & Chain* covers planning and *Align* covers the
    /// batched submission plus finalization — output is bit-identical
    /// either way.
    ///
    /// [`AlignBackend`]: mmm_exec::AlignBackend
    pub backend: Option<BackendKind>,
    /// Wrap the backend session in the supervisor (retry/deadline/breaker,
    /// DESIGN.md §10), as the CLI does — measures the wrapper's overhead on
    /// a clean run. Ignored when `backend` is `None`.
    pub supervised: bool,
    /// Dispatch through the length-binned batch scheduler (DESIGN.md §11)
    /// instead of fifo submission. Requires `supervised` (the scheduler is
    /// a supervisor entry point); ignored when `backend` is `None`.
    pub sched: bool,
    /// Override the simulated device's global memory (bytes) — the bench
    /// uses a shrunken device to surface the oversized-pair fallback path.
    /// `None` keeps the default device.
    pub device_mem: Option<u64>,
}

/// Outcome of a profiled run.
#[derive(Debug)]
pub struct ProfileResult {
    pub timer: StageTimer,
    pub reads: usize,
    pub mappings: usize,
    pub output_bytes: usize,
    /// Bytes of index state resident after loading.
    pub index_bytes: usize,
    /// Execution counters when a backend was configured.
    pub backend_stats: Option<BackendStats>,
}

/// Run the whole pipeline over a serialized index and a FASTA/FASTQ byte
/// buffer, timing each stage.
pub fn profile_run(
    index_path: &Path,
    query_fastx: &[u8],
    cfg: &ProfileConfig,
) -> Result<ProfileResult, MapError> {
    let mut timer = StageTimer::new();

    let index = timer.time(Stage::LoadIndex, || {
        if cfg.use_mmap {
            mmm_index::load_index_mmap(index_path)
        } else {
            mmm_index::load_index(index_path)
        }
    });
    let (index, _stats) = index.map_err(|e| MapError::Index {
        path: index_path.display().to_string(),
        source: e,
    })?;

    let mut reads = timer
        .time(Stage::LoadQuery, || {
            FastxReader::new(std::io::Cursor::new(query_fastx))
                .read_all()
                .map(|rs| {
                    rs.iter()
                        .map(|r| (r.name.clone(), r.nt4()))
                        .collect::<Vec<_>>()
                })
        })
        .map_err(|e| MapError::Seq {
            path: "<query buffer>".into(),
            source: e,
        })?;

    if cfg.sort_by_length {
        reads.sort_by_key(|(_, s)| std::cmp::Reverse(s.len()));
    }

    let mapper = Mapper::new(&index, cfg.opts);
    let tnames: Vec<String> = index.seqs.iter().map(|s| s.name.clone()).collect();
    let tlens: Vec<usize> = index.seqs.iter().map(|s| s.seq.len()).collect();

    // Stand up the backend session once, like the CLI does per run. The
    // supervised session stays concrete so the scheduler entry point
    // (`submit_scheduled`, an inherent method) is reachable.
    enum Session {
        Plain(Box<dyn AlignBackend>),
        Supervised(Box<SupervisedBackend>),
    }
    let backend: Option<Session> = cfg
        .backend
        .map(|kind| {
            let mut bopts = BackendOptions::new(cfg.opts.scoring);
            bopts.engine = cfg.opts.engine;
            bopts.device_mem = cfg.device_mem;
            if cfg.supervised {
                prepare_supervised(kind, &bopts, SupervisorConfig::default())
                    .map(|b| Session::Supervised(Box::new(b)))
            } else {
                prepare(kind, &bopts).map(Session::Plain)
            }
        })
        .transpose()
        .map_err(|e| MapError::Usage(e.to_string()))?;
    let sched_cfg = SchedConfig {
        mode: if cfg.sched {
            SchedMode::Bins
        } else {
            SchedMode::Fifo
        },
        ..SchedConfig::default()
    };
    let mut backend_stats = backend.as_ref().map(|_| BackendStats::default());

    let mut mappings = 0usize;
    let mut sink: Vec<u8> = Vec::new();
    // Single-threaded run: one scratch arena serves every alignment.
    let mut scratch = mmm_align::AlignScratch::new();
    for (name, seq) in &reads {
        let ms = match &backend {
            None => {
                let chained = timer.time(Stage::SeedChain, || mapper.seed_chain(seq));
                timer.time(Stage::Align, || {
                    mapper.extend_with_scratch(seq, &chained, &mut scratch)
                })
            }
            Some(backend) => {
                let plan = timer.time(Stage::SeedChain, || mapper.plan_read(seq));
                let Ok(mut plan) = plan else {
                    continue; // a rejected read maps to nothing
                };
                let ms = timer.time(Stage::Align, || {
                    let jobs = std::mem::take(&mut plan.jobs);
                    let (results, bstats) = match backend {
                        Session::Plain(b) => match b.submit(jobs) {
                            Ok(r) => r,
                            Err(e) => return Err(MapError::Usage(e.to_string())),
                        },
                        Session::Supervised(b) => {
                            let (outcomes, bstats) = match b.submit_scheduled(jobs, &sched_cfg) {
                                Ok(r) => r,
                                Err(e) => return Err(MapError::Usage(e.to_string())),
                            };
                            // Profiled runs are clean by construction: a
                            // quarantine here is a harness bug, not data.
                            let mut results = Vec::with_capacity(outcomes.len());
                            for o in outcomes {
                                match o {
                                    JobOutcome::Done(r) => results.push(r),
                                    JobOutcome::Quarantined { reason } => {
                                        return Err(MapError::Usage(format!(
                                            "profiled run quarantined a job: {reason}"
                                        )))
                                    }
                                }
                            }
                            (results, bstats)
                        }
                    };
                    if let Some(acc) = backend_stats.as_mut() {
                        acc.merge(&bstats);
                    }
                    Ok(mapper.finalize_read_with_scratch(seq, &plan, &results, &mut scratch))
                });
                ms?
            }
        };
        mappings += ms.len();
        timer
            .time(Stage::Output, || {
                crate::paf::write_paf(&mut sink, name, seq.len(), &tnames, &tlens, &ms)
            })
            .map_err(|e| MapError::Io {
                path: "<output buffer>".into(),
                source: e,
            })?;
    }

    Ok(ProfileResult {
        timer,
        reads: reads.len(),
        mappings,
        output_bytes: sink.len(),
        index_bytes: index.heap_bytes(),
        backend_stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmm_index::{save_index, IdxOpts, MinimizerIndex};
    use mmm_seq::{nt4_decode, write_fasta, SeqRecord};
    use mmm_simreads::{generate_genome, simulate_reads, GenomeOpts, Platform, SimOpts};

    #[test]
    fn profiles_all_stages() {
        let g = generate_genome(&GenomeOpts {
            len: 120_000,
            repeat_frac: 0.0,
            seed: 21,
            ..Default::default()
        });
        let idx =
            MinimizerIndex::build(&[SeqRecord::new("chr1", nt4_decode(&g))], &IdxOpts::MAP_ONT)
                .unwrap();
        let path = std::env::temp_dir().join(format!("manymap-prof-{}", std::process::id()));
        save_index(&idx, &path).unwrap();

        let reads = simulate_reads(
            &g,
            &SimOpts {
                platform: Platform::Nanopore,
                num_reads: 10,
                seed: 2,
            },
        );
        let recs: Vec<SeqRecord> = reads
            .iter()
            .map(|r| SeqRecord::new(r.name.clone(), nt4_decode(&r.seq)))
            .collect();
        let mut fasta = Vec::new();
        write_fasta(&mut fasta, &recs, 0).unwrap();

        for use_mmap in [false, true] {
            let cfg = ProfileConfig {
                opts: MapOpts::map_ont(),
                use_mmap,
                sort_by_length: true,
                backend: None,
                supervised: false,
                sched: false,
                device_mem: None,
            };
            let res = profile_run(&path, &fasta, &cfg).unwrap();
            assert_eq!(res.reads, 10);
            assert!(res.mappings >= 8, "mappings={}", res.mappings);
            assert!(res.output_bytes > 0);
            assert!(res.index_bytes > 0);
            assert!(res.backend_stats.is_none());
            let total = res.timer.total().as_secs_f64();
            assert!(total > 0.0);
            // Align must dominate Load Query for this workload.
            assert!(res.timer.get(Stage::Align) > res.timer.get(Stage::LoadQuery));
        }

        // Backend-routed runs must produce identical output and report
        // their execution counters.
        let inline = profile_run(
            &path,
            &fasta,
            &ProfileConfig {
                opts: MapOpts::map_ont(),
                use_mmap: false,
                sort_by_length: true,
                backend: None,
                supervised: false,
                sched: false,
                device_mem: None,
            },
        )
        .unwrap();
        for kind in [mmm_exec::BackendKind::Cpu, mmm_exec::BackendKind::GpuSim] {
            for (supervised, sched) in [(false, false), (true, false), (true, true)] {
                let cfg = ProfileConfig {
                    opts: MapOpts::map_ont(),
                    use_mmap: false,
                    sort_by_length: true,
                    backend: Some(kind),
                    supervised,
                    sched,
                    device_mem: None,
                };
                let res = profile_run(&path, &fasta, &cfg).unwrap();
                let tag = format!("{} supervised={supervised} sched={sched}", kind.label());
                assert_eq!(res.mappings, inline.mappings, "{tag}");
                assert_eq!(res.output_bytes, inline.output_bytes, "{tag}");
                let bstats = res.backend_stats.unwrap();
                assert!(bstats.jobs > 0, "{tag} must execute jobs");
                if supervised {
                    // A clean run needs no interventions.
                    assert!(!bstats.supervised_activity(), "{tag}: {bstats:?}");
                }
                if sched {
                    assert!(bstats.sched_batches > 0, "{tag}: {bstats:?}");
                } else {
                    assert_eq!(bstats.sched_batches, 0, "{tag}");
                }
            }
        }
        std::fs::remove_file(&path).unwrap();
    }
}
