//! The seed–chain–extend mapper (§3.1's workflow).
//!
//! For each read: collect minimizer anchors from the index, chain them,
//! select primary/secondary chains, then produce base-level alignments by
//! globally filling the segments between adjacent anchors and extending
//! both chain ends with score-peak-trimmed semi-global alignment. All
//! base-level work goes through the configured [`mmm_align::Engine`], so a
//! single flag switches the whole mapper between minimap2's kernels and
//! manymap's.

use mmm_align::{
    extend_zdrop_with_scratch, fill_align_with_scratch, AlignError, AlignResult, AlignScratch,
    Cigar, CigarOp,
};
use mmm_chain::select::SelectedChain;
use mmm_chain::{chain_anchors, select_chains, Chain};
use mmm_exec::{AlignJob, PrefilterProbe, PREFILTER_WINDOW};
use mmm_index::MinimizerIndex;
use mmm_seq::revcomp4;

use crate::opts::MapOpts;

/// Why one read could not be aligned. These are per-read conditions: the
/// pipeline degrades the read to an unmapped record (with a counted reason)
/// and keeps going, rather than aborting the whole run.
#[derive(Debug)]
pub enum MapReadError {
    /// The read exceeds [`MapOpts::max_read_len`]; base-level alignment
    /// would need an unreasonable amount of memory.
    ReadTooLong { len: usize, max: usize },
    /// The configured scoring cannot run on the 8-bit kernels.
    Align(AlignError),
}

impl std::fmt::Display for MapReadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MapReadError::ReadTooLong { len, max } => {
                write!(f, "read length {len} exceeds the {max} bp limit")
            }
            MapReadError::Align(e) => write!(f, "alignment rejected: {e}"),
        }
    }
}

impl std::error::Error for MapReadError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MapReadError::ReadTooLong { .. } => None,
            MapReadError::Align(e) => Some(e),
        }
    }
}

/// Output of the seeding + chaining phase, consumed by the alignment phase.
/// Keeping the two phases separate lets the stage profiler (Table 2,
/// Figure 11) time them independently.
pub struct ChainedRead {
    selected: Vec<SelectedChain>,
    q_rc: Option<Vec<u8>>,
    /// Chains discarded by the pre-alignment filter (zero with `--prefilter
    /// off`); surfaced so the CLI can report rejection counts per run.
    prefilter_rejected: usize,
}

impl ChainedRead {
    /// Number of selected chains.
    pub fn num_chains(&self) -> usize {
        self.selected.len()
    }

    /// Chains rejected by the pre-alignment filter before planning.
    pub fn prefilter_rejected(&self) -> usize {
        self.prefilter_rejected
    }
}

/// The plan phase's output for one read: the chained read plus every DP
/// problem its gap-fill step needs, as backend-ready [`AlignJob`]s.
///
/// Produced by [`Mapper::plan_read`]; a batch of plans is executed by an
/// `AlignBackend` and the results spliced back by
/// [`Mapper::finalize_read_with_scratch`]. Jobs are emitted (and must be
/// answered) in chain-walk order: selected chains in order, gaps within
/// each chain left to right.
pub struct ReadPlan {
    chained: ChainedRead,
    /// Deferred gap-fill problems. The dispatcher takes these (e.g. with
    /// `std::mem::take`), runs them through a backend, and hands the
    /// results — one per job, in order — to the finalize phase.
    pub jobs: Vec<AlignJob>,
}

impl ReadPlan {
    /// The seeding/chaining outcome the plan was built from.
    pub fn chained(&self) -> &ChainedRead {
        &self.chained
    }
}

/// Sequential reader over a read's backend results, consumed by the
/// finalize-phase chain walk in the same order the plan emitted jobs.
struct ResultCursor<'r> {
    results: &'r [AlignResult],
    next: usize,
}

impl<'r> ResultCursor<'r> {
    fn next(&mut self) -> Option<&'r AlignResult> {
        let r = self.results.get(self.next)?;
        self.next += 1;
        Some(r)
    }
}

/// One alignment record (a PAF row).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Mapping {
    pub rid: u32,
    /// Reference interval, 0-based end-exclusive.
    pub ref_start: u32,
    pub ref_end: u32,
    /// Query interval in *original read* coordinates, 0-based end-exclusive.
    pub q_start: u32,
    pub q_end: u32,
    pub rev: bool,
    pub primary: bool,
    pub mapq: u8,
    /// Chaining score.
    pub chain_score: i32,
    /// Base-level alignment score (DP score).
    pub align_score: i32,
    /// Number of matching bases (PAF column 10 numerator).
    pub matches: u32,
    /// Alignment block length (PAF column 11).
    pub block_len: u32,
    /// CIGAR on the mapped strand, when requested.
    pub cigar: Option<Cigar>,
}

/// A reusable mapper over one index.
pub struct Mapper<'a> {
    pub index: &'a MinimizerIndex,
    pub opts: MapOpts,
}

impl<'a> Mapper<'a> {
    /// Create a mapper.
    pub fn new(index: &'a MinimizerIndex, opts: MapOpts) -> Self {
        Mapper { index, opts }
    }

    /// Map one read (nt4, forward orientation). Returns primary first.
    pub fn map_read(&self, query: &[u8]) -> Vec<Mapping> {
        self.map_read_with_scratch(query, &mut AlignScratch::new())
    }

    /// [`Mapper::map_read`] with a caller-provided alignment scratch arena.
    /// The pipeline workers each hold one scratch for their whole run, so
    /// the base-level alignment stage stops allocating after warm-up.
    pub fn map_read_with_scratch(&self, query: &[u8], scratch: &mut AlignScratch) -> Vec<Mapping> {
        let chained = self.seed_chain(query);
        self.extend_with_scratch(query, &chained, scratch)
    }

    /// Fallible [`Mapper::map_read_with_scratch`]: per-read conditions that
    /// would trip kernel asserts or exhaust memory are rejected up front as
    /// [`MapReadError`] so the caller can degrade the read instead of
    /// crashing the worker.
    pub fn try_map_read_with_scratch(
        &self,
        query: &[u8],
        scratch: &mut AlignScratch,
    ) -> Result<Vec<Mapping>, MapReadError> {
        if query.len() > self.opts.max_read_len {
            return Err(MapReadError::ReadTooLong {
                len: query.len(),
                max: self.opts.max_read_len,
            });
        }
        if !self.opts.scoring.fits_i8() {
            return Err(MapReadError::Align(AlignError::ScoringOverflowsI8(
                self.opts.scoring,
            )));
        }
        Ok(self.map_read_with_scratch(query, scratch))
    }

    /// Batched-pipeline phase 1: seed, chain, and describe the read's
    /// gap-fill DP problems as backend [`AlignJob`]s without executing
    /// them. Rejects the same per-read conditions as
    /// [`Mapper::try_map_read_with_scratch`], so validation failures
    /// surface before any backend work is queued.
    ///
    /// `plan_read` + backend execution + [`Mapper::finalize_read_with_scratch`]
    /// produces bit-identical mappings to the monolithic
    /// [`Mapper::map_read_with_scratch`]: the deferred jobs are exactly the
    /// `fill_align` calls the monolithic walk would make, and every backend
    /// is bit-identical to the host engines.
    pub fn plan_read(&self, query: &[u8]) -> Result<ReadPlan, MapReadError> {
        if query.len() > self.opts.max_read_len {
            return Err(MapReadError::ReadTooLong {
                len: query.len(),
                max: self.opts.max_read_len,
            });
        }
        if !self.opts.scoring.fits_i8() {
            return Err(MapReadError::Align(AlignError::ScoringOverflowsI8(
                self.opts.scoring,
            )));
        }
        let chained = self.seed_chain(query);
        let mut jobs = Vec::new();
        for sel in &chained.selected {
            let qseq: &[u8] = match (sel.chain.rev, chained.q_rc.as_deref()) {
                (true, Some(rc)) => rc,
                (true, None) => continue,
                (false, _) => query,
            };
            self.plan_chain_jobs(&sel.chain, qseq, &mut jobs);
        }
        Ok(ReadPlan { chained, jobs })
    }

    /// Batched-pipeline phase 3: splice a backend's answers to the plan's
    /// jobs back into the chain walk (scores and CIGAR segments), run the
    /// CPU-side end extensions, and assemble the mappings. `fill_results`
    /// must hold one result per planned job, in job order.
    pub fn finalize_read_with_scratch(
        &self,
        query: &[u8],
        plan: &ReadPlan,
        fill_results: &[AlignResult],
        scratch: &mut AlignScratch,
    ) -> Vec<Mapping> {
        let mut fills = Some(ResultCursor {
            results: fill_results,
            next: 0,
        });
        self.walk_chains(query, &plan.chained, scratch, &mut fills)
    }

    /// Emit the [`AlignJob`]s one chain's gap fills need, in walk order.
    /// This mirrors `align_chain`'s gap classification exactly: only the
    /// `fill_align` case defers to a backend — long-gap approximations and
    /// same-diagonal match runs stay inline in finalize.
    fn plan_chain_jobs(&self, chain: &Chain, qseq: &[u8], jobs: &mut Vec<AlignJob>) {
        let k = self.index.k;
        let first = chain.anchors[0];
        let (mut rcur, mut qcur) = (first.rpos as usize, first.qpos as usize);
        for a in &chain.anchors[1..] {
            let (rn, qn) = (a.rpos as usize, a.qpos as usize);
            let dr = rn - rcur;
            let dq = qn - qcur;
            let inline = dr.max(dq) > self.opts.max_fill || (dr == dq && dr <= k);
            if !inline {
                let rseg = self.index.ref_window(chain.rid, rcur + 1, rn + 1);
                let qseg = qseq[qcur + 1..qn + 1].to_vec();
                jobs.push(AlignJob::global(rseg, qseg, self.opts.with_cigar));
            }
            rcur = rn;
            qcur = qn;
        }
    }

    /// Phase 1: seeding and chaining (the paper's "Seed & Chain" stage),
    /// followed by the optional pre-alignment filter. Filtering happens
    /// here — before any planning — so the monolithic, planned, and
    /// scheduled execution paths all see the identical chain set and stay
    /// bit-identical to each other at any fixed `--prefilter` setting.
    pub fn seed_chain(&self, query: &[u8]) -> ChainedRead {
        let anchors = self.index.collect_anchors(query);
        let mut selected = if anchors.is_empty() {
            Vec::new()
        } else {
            let chains = chain_anchors(anchors, &self.opts.chain);
            select_chains(chains, &self.opts.select)
        };
        let q_rc = selected
            .iter()
            .any(|s| s.chain.rev)
            .then(|| revcomp4(query));
        let before = selected.len();
        if self.opts.prefilter.min_match_run().is_some() {
            selected.retain(|sel| {
                let qseq: &[u8] = match (sel.chain.rev, q_rc.as_deref()) {
                    (true, Some(rc)) => rc,
                    (true, None) => return true,
                    (false, _) => query,
                };
                !self
                    .probe_chain(&sel.chain, qseq)
                    .rejects(self.opts.prefilter)
            });
        }
        ChainedRead {
            prefilter_rejected: before - selected.len(),
            selected,
            q_rc,
        }
    }

    /// Sample anchored windows over one chain for the pre-alignment
    /// filter: short stretches starting right after an anchor's end base,
    /// where reference and query are in exact register. Up to eight evenly
    /// spaced anchors are probed so the cost stays O(1) per chain while the
    /// match-run statistic sees enough independent windows.
    fn probe_chain(&self, chain: &Chain, qseq: &[u8]) -> PrefilterProbe {
        let mut probe = PrefilterProbe::default();
        let n = chain.anchors.len();
        let picks: [usize; 8] = std::array::from_fn(|i| (i * (n - 1)) / 7);
        let mut last = usize::MAX;
        for &i in &picks {
            if i == last {
                continue; // short chains repeat indices; sample each once
            }
            last = i;
            let a = chain.anchors[i];
            let (rs, qs) = (a.rpos as usize + 1, a.qpos as usize + 1);
            if qs >= qseq.len() {
                continue;
            }
            let qe = (qs + PREFILTER_WINDOW).min(qseq.len());
            let rseg = self.index.ref_window(chain.rid, rs, rs + (qe - qs));
            probe.observe(&rseg, &qseq[qs..qe]);
        }
        probe
    }

    /// Phase 2: base-level alignment (the paper's "Align" stage).
    pub fn extend(&self, query: &[u8], chained: &ChainedRead) -> Vec<Mapping> {
        self.extend_with_scratch(query, chained, &mut AlignScratch::new())
    }

    /// [`Mapper::extend`] with a caller-provided alignment scratch arena.
    pub fn extend_with_scratch(
        &self,
        query: &[u8],
        chained: &ChainedRead,
        scratch: &mut AlignScratch,
    ) -> Vec<Mapping> {
        self.walk_chains(query, chained, scratch, &mut None)
    }

    /// The shared chain walk behind the monolithic and batched paths: with
    /// `fills: None` every gap fill runs inline on the host engine; with a
    /// cursor, fills consume pre-computed backend results instead.
    fn walk_chains(
        &self,
        query: &[u8],
        chained: &ChainedRead,
        scratch: &mut AlignScratch,
        fills: &mut Option<ResultCursor<'_>>,
    ) -> Vec<Mapping> {
        let mut out = Vec::with_capacity(chained.selected.len());
        for sel in &chained.selected {
            // `seed_chain` computes `q_rc` whenever any selected chain is
            // reverse; if that invariant ever broke, skip the chain rather
            // than crash the worker.
            let qseq: &[u8] = match (sel.chain.rev, chained.q_rc.as_deref()) {
                (true, Some(rc)) => rc,
                (true, None) => continue,
                (false, _) => query,
            };
            if let Some(m) = self.align_chain(
                &sel.chain,
                qseq,
                query.len(),
                sel.primary,
                sel.mapq,
                scratch,
                fills,
            ) {
                out.push(m);
            }
        }
        // Primary mappings first, then by score.
        out.sort_by_key(|m| (!m.primary, -m.align_score));
        out
    }

    /// Base-level alignment of one chain against the reference. Gap fills
    /// either run inline (`fills: None`) or consume the next backend result
    /// from the cursor; a chain whose results are missing (a backend
    /// contract violation) is skipped rather than crashing the worker.
    #[allow(clippy::too_many_arguments)]
    fn align_chain(
        &self,
        chain: &Chain,
        qseq: &[u8],
        qlen: usize,
        primary: bool,
        mapq: u8,
        scratch: &mut AlignScratch,
        fills: &mut Option<ResultCursor<'_>>,
    ) -> Option<Mapping> {
        let sc = &self.opts.scoring;
        let engine = self.opts.engine;
        let k = self.index.k as u32;
        let rseq_len = self.index.seqs[chain.rid as usize].seq.len();

        let first = chain.anchors[0];
        let last = chain.anchors[chain.anchors.len() - 1];
        // The chain body starts at the first anchor's END base: with
        // homopolymer-compressed seeds an anchor's reference and query
        // spans differ, so only the end coordinates are trustworthy. The
        // left extension recovers everything before it.
        let body_rs = first.rpos as usize;
        let body_qs = first.qpos as usize;

        let mut cigar = self.opts.with_cigar.then(Cigar::new);
        let mut align_score = 0i32;

        // The first anchor's final matched base.
        {
            let rbase = self.index.ref_window(chain.rid, body_rs, body_rs + 1);
            align_score += sc.subst(rbase[0], qseq[body_qs]);
            if let Some(c) = cigar.as_mut() {
                c.push(CigarOp::Match, 1);
            }
        }

        // Fill between consecutive anchors.
        let (mut rcur, mut qcur) = (first.rpos as usize, first.qpos as usize);
        for a in &chain.anchors[1..] {
            let (rn, qn) = (a.rpos as usize, a.qpos as usize);
            let dr = rn - rcur;
            let dq = qn - qcur;
            if dr.max(dq) > self.opts.max_fill {
                // Chain gap too large to fill (paper: fall back / give up on
                // pathological segments) — approximate with one long gap.
                let common = dr.min(dq) as u32;
                if let Some(c) = cigar.as_mut() {
                    c.push(CigarOp::Match, common);
                    if dr > dq {
                        c.push(CigarOp::Del, (dr - dq) as u32);
                    } else if dq > dr {
                        c.push(CigarOp::Ins, (dq - dr) as u32);
                    }
                }
                align_score -= sc.gap_cost(dr.abs_diff(dq) as u32);
            } else if dr == dq && dr <= k as usize {
                // Same diagonal, overlapping k-mers: pure match run.
                align_score += score_segment(
                    &self.index.ref_window(chain.rid, rcur + 1, rn + 1),
                    &qseq[qcur + 1..qn + 1],
                    sc,
                );
                if let Some(c) = cigar.as_mut() {
                    c.push(CigarOp::Match, dr as u32);
                }
            } else {
                let mut owned: Option<AlignResult> = None;
                let r: &AlignResult = match fills.as_mut() {
                    Some(cursor) => cursor.next()?,
                    None => {
                        let rseg = self.index.ref_window(chain.rid, rcur + 1, rn + 1);
                        let qseg = &qseq[qcur + 1..qn + 1];
                        owned.insert(fill_align_with_scratch(
                            &rseg,
                            qseg,
                            sc,
                            engine,
                            cigar.is_some(),
                            scratch,
                        ))
                    }
                };
                align_score += r.score;
                if let (Some(c), Some(rc)) = (cigar.as_mut(), r.cigar.as_ref()) {
                    c.extend(rc);
                }
                if let Some(rc) = owned.take().and_then(|r| r.cigar) {
                    scratch.recycle(rc);
                }
            }
            rcur = rn;
            qcur = qn;
        }

        // Right extension: query tail beyond the last anchor.
        let mut ref_end = last.rpos as usize + 1;
        let mut q_end = last.qpos as usize + 1;
        if q_end < qlen {
            let tail = qlen - q_end;
            let win = (tail as f64 * self.opts.ext_factor) as usize + 32;
            let rseg = self.index.ref_window(chain.rid, ref_end, ref_end + win);
            let qseg = &qseq[q_end..qlen.min(q_end + self.opts.max_fill)];
            let e = extend_zdrop_with_scratch(
                &rseg,
                qseg,
                sc,
                self.opts.zdrop,
                cigar.is_some(),
                scratch,
            );
            align_score += e.score;
            ref_end += e.t_consumed;
            q_end += e.q_consumed;
            if let Some(c) = cigar.as_mut() {
                c.extend(&e.cigar);
                scratch.recycle(e.cigar);
            }
        }

        // Left extension: reversed prefix against reversed reference window.
        let mut ref_start = body_rs;
        let mut q_start = body_qs;
        if q_start > 0 {
            let head = q_start;
            let win = ((head as f64 * self.opts.ext_factor) as usize + 32).min(ref_start);
            let mut rseg = self.index.ref_window(chain.rid, ref_start - win, ref_start);
            rseg.reverse();
            let take = head.min(self.opts.max_fill);
            let mut qseg: Vec<u8> = qseq[q_start - take..q_start].to_vec();
            qseg.reverse();
            let e = extend_zdrop_with_scratch(
                &rseg,
                &qseg,
                sc,
                self.opts.zdrop,
                cigar.is_some(),
                scratch,
            );
            align_score += e.score;
            ref_start -= e.t_consumed;
            q_start -= e.q_consumed;
            if let Some(c) = cigar.as_mut() {
                let mut left = e.cigar;
                left.reverse();
                let body = std::mem::take(c);
                left.extend(&body);
                scratch.recycle(body);
                *c = left;
            }
        }

        debug_assert!(ref_end <= rseq_len);

        // Matches / block length from the CIGAR when available, otherwise
        // estimated from the interval.
        let (matches, block_len) = match &cigar {
            Some(c) => {
                debug_assert_eq!(c.target_len() as usize, ref_end - ref_start);
                debug_assert_eq!(c.query_len() as usize, q_end - q_start);
                let m: u64 = c.match_len();
                let b: u64 = c.runs().iter().map(|&(_, l)| l as u64).sum();
                (m as u32, b as u32)
            }
            None => {
                let span = (ref_end - ref_start).min(q_end - q_start) as u32;
                (span, (ref_end - ref_start).max(q_end - q_start) as u32)
            }
        };

        // Convert query coordinates back to the original read orientation.
        let (oq_start, oq_end) = if chain.rev {
            ((qlen - q_end) as u32, (qlen - q_start) as u32)
        } else {
            (q_start as u32, q_end as u32)
        };

        Some(Mapping {
            rid: chain.rid,
            ref_start: ref_start as u32,
            ref_end: ref_end as u32,
            q_start: oq_start,
            q_end: oq_end,
            rev: chain.rev,
            primary,
            mapq,
            chain_score: chain.score,
            align_score,
            matches,
            block_len,
            cigar,
        })
    }
}

/// Score a gap-free segment pair of equal length.
fn score_segment(t: &[u8], q: &[u8], sc: &mmm_align::Scoring) -> i32 {
    debug_assert_eq!(t.len(), q.len());
    t.iter().zip(q).map(|(&a, &b)| sc.subst(a, b)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmm_index::{IdxOpts, MinimizerIndex};
    use mmm_seq::{nt4_decode, SeqRecord};
    use mmm_simreads::{generate_genome, simulate_reads, GenomeOpts, Platform, SimOpts};

    fn build_index(genome: &[u8], opts: &IdxOpts) -> MinimizerIndex {
        MinimizerIndex::build(&[SeqRecord::new("chr1", nt4_decode(genome))], opts).unwrap()
    }

    #[test]
    fn exact_read_maps_exactly() {
        let g = generate_genome(&GenomeOpts {
            len: 100_000,
            repeat_frac: 0.0,
            ..Default::default()
        });
        let idx = build_index(&g, &IdxOpts::MAP_ONT);
        let mapper = Mapper::new(&idx, crate::opts::MapOpts::map_ont());
        let read = g[20_000..24_000].to_vec();
        let ms = mapper.map_read(&read);
        assert!(!ms.is_empty());
        let m = &ms[0];
        assert!(m.primary);
        assert!(!m.rev);
        assert_eq!(m.ref_start, 20_000);
        assert_eq!(m.ref_end, 24_000);
        assert_eq!(m.q_start, 0);
        assert_eq!(m.q_end, 4_000);
        assert_eq!(m.cigar.as_ref().unwrap().to_string(), "4000M");
        assert_eq!(m.matches, 4_000);
    }

    #[test]
    fn reverse_complement_read_maps_reverse() {
        let g = generate_genome(&GenomeOpts {
            len: 100_000,
            repeat_frac: 0.0,
            seed: 3,
            ..Default::default()
        });
        let idx = build_index(&g, &IdxOpts::MAP_ONT);
        let mapper = Mapper::new(&idx, crate::opts::MapOpts::map_ont());
        let read = revcomp4(&g[50_000..53_000]);
        let ms = mapper.map_read(&read);
        assert!(!ms.is_empty());
        let m = &ms[0];
        assert!(m.rev);
        assert_eq!(m.ref_start, 50_000);
        assert_eq!(m.ref_end, 53_000);
        assert_eq!((m.q_start, m.q_end), (0, 3_000));
    }

    #[test]
    fn noisy_pacbio_read_maps_to_true_interval() {
        let g = generate_genome(&GenomeOpts {
            len: 200_000,
            repeat_frac: 0.0,
            seed: 9,
            ..Default::default()
        });
        let idx = build_index(&g, &IdxOpts::MAP_PB);
        let mapper = Mapper::new(&idx, crate::opts::MapOpts::map_pb());
        let reads = simulate_reads(
            &g,
            &SimOpts {
                platform: Platform::PacBio,
                num_reads: 20,
                seed: 1,
            },
        );
        let mut mapped = 0;
        let mut correct = 0;
        for r in &reads {
            let ms = mapper.map_read(&r.seq);
            if let Some(m) = ms.first() {
                mapped += 1;
                let inter = m
                    .ref_end
                    .min(r.origin.end)
                    .saturating_sub(m.ref_start.max(r.origin.start));
                if m.rev == r.origin.rev && inter * 2 > (r.origin.end - r.origin.start) {
                    correct += 1;
                }
            }
        }
        assert!(mapped >= 18, "mapped={mapped}/20");
        assert!(correct >= 17, "correct={correct}/{mapped}");
    }

    #[test]
    fn cigar_lengths_always_match_intervals() {
        let g = generate_genome(&GenomeOpts {
            len: 150_000,
            repeat_frac: 0.05,
            seed: 4,
            ..Default::default()
        });
        let idx = build_index(&g, &IdxOpts::MAP_ONT);
        let mapper = Mapper::new(&idx, crate::opts::MapOpts::map_ont());
        let reads = simulate_reads(
            &g,
            &SimOpts {
                platform: Platform::Nanopore,
                num_reads: 15,
                seed: 2,
            },
        );
        for r in &reads {
            for m in mapper.map_read(&r.seq) {
                let c = m.cigar.as_ref().unwrap();
                assert_eq!(c.target_len(), (m.ref_end - m.ref_start) as u64);
                assert_eq!(c.query_len(), (m.q_end - m.q_start) as u64);
                assert!(m.matches <= m.block_len);
            }
        }
    }

    #[test]
    fn score_only_mode_produces_no_cigars() {
        let g = generate_genome(&GenomeOpts {
            len: 80_000,
            repeat_frac: 0.0,
            seed: 5,
            ..Default::default()
        });
        let idx = build_index(&g, &IdxOpts::MAP_ONT);
        let mapper = Mapper::new(&idx, crate::opts::MapOpts::map_ont().cigar(false));
        let read = g[10_000..13_000].to_vec();
        let ms = mapper.map_read(&read);
        assert!(!ms.is_empty());
        assert!(ms.iter().all(|m| m.cigar.is_none()));
    }

    #[test]
    fn unmappable_read_returns_empty() {
        let g = generate_genome(&GenomeOpts {
            len: 60_000,
            repeat_frac: 0.0,
            seed: 6,
            ..Default::default()
        });
        let idx = build_index(&g, &IdxOpts::MAP_ONT);
        let mapper = Mapper::new(&idx, crate::opts::MapOpts::map_ont());
        // A read from a different random genome.
        let other = generate_genome(&GenomeOpts {
            len: 10_000,
            repeat_frac: 0.0,
            seed: 999,
            ..Default::default()
        });
        let ms = mapper.map_read(&other[..3_000]);
        assert!(ms.is_empty());
    }

    #[test]
    fn planned_backend_path_matches_monolithic() {
        use mmm_exec::{prepare, BackendKind, BackendOptions};
        let g = generate_genome(&GenomeOpts {
            len: 150_000,
            repeat_frac: 0.05,
            seed: 11,
            ..Default::default()
        });
        let idx = build_index(&g, &IdxOpts::MAP_ONT);
        let reads = simulate_reads(
            &g,
            &SimOpts {
                platform: Platform::Nanopore,
                num_reads: 12,
                seed: 5,
            },
        );
        for with_cigar in [true, false] {
            let mopts = crate::opts::MapOpts::map_ont().cigar(with_cigar);
            let mapper = Mapper::new(&idx, mopts);
            let mut bopts = BackendOptions::new(mapper.opts.scoring);
            bopts.engine = mapper.opts.engine;
            bopts.threads = 2;
            for kind in [BackendKind::Cpu, BackendKind::GpuSim] {
                let backend = prepare(kind, &bopts).unwrap();
                let mut scratch = AlignScratch::new();
                let mut planned_fills = 0usize;
                for r in &reads {
                    let gold = mapper
                        .try_map_read_with_scratch(&r.seq, &mut scratch)
                        .unwrap();
                    let plan = mapper.plan_read(&r.seq).unwrap();
                    planned_fills += plan.jobs.len();
                    let (results, _stats) = backend.submit(plan.jobs.clone()).unwrap();
                    let got =
                        mapper.finalize_read_with_scratch(&r.seq, &plan, &results, &mut scratch);
                    assert_eq!(gold, got, "{} cigar={with_cigar}", backend.label());
                }
                assert!(
                    planned_fills > 0,
                    "workload must exercise deferred gap fills"
                );
            }
        }
    }

    #[test]
    fn plan_read_rejects_same_conditions_as_try_map() {
        let g = generate_genome(&GenomeOpts {
            len: 60_000,
            repeat_frac: 0.0,
            seed: 13,
            ..Default::default()
        });
        let idx = build_index(&g, &IdxOpts::MAP_ONT);
        let mut opts = crate::opts::MapOpts::map_ont();
        opts.max_read_len = 1_000;
        let mapper = Mapper::new(&idx, opts);
        let long = g[..2_000].to_vec();
        assert!(matches!(
            mapper.plan_read(&long),
            Err(MapReadError::ReadTooLong { len: 2_000, .. })
        ));
        // An unmappable read plans to zero jobs and finalizes to nothing.
        let other = generate_genome(&GenomeOpts {
            len: 5_000,
            repeat_frac: 0.0,
            seed: 777,
            ..Default::default()
        });
        let plan = mapper.plan_read(&other[..800]).unwrap();
        assert!(plan.jobs.is_empty());
        let ms =
            mapper.finalize_read_with_scratch(&other[..800], &plan, &[], &mut AlignScratch::new());
        assert!(ms.is_empty());
    }

    /// A read that seeds real anchors but is random noise everywhere else:
    /// keep short exact stretches of the genome in register and corrupt
    /// every other base, so chains form yet every anchored Hamming window
    /// samples ~100% mismatch.
    fn decoy_read(g: &[u8], start: usize, len: usize) -> Vec<u8> {
        g[start..start + len]
            .iter()
            .enumerate()
            .map(|(i, &b)| if i % 40 < 16 { b } else { (b + 1) % 4 })
            .collect()
    }

    #[test]
    fn prefilter_rejects_decoy_chains_and_counts_them() {
        let g = generate_genome(&GenomeOpts {
            len: 100_000,
            repeat_frac: 0.0,
            seed: 21,
            ..Default::default()
        });
        let idx = build_index(&g, &IdxOpts::MAP_ONT);
        let decoy = decoy_read(&g, 30_000, 4_000);

        let off = Mapper::new(&idx, crate::opts::MapOpts::map_ont());
        let chained = off.seed_chain(&decoy);
        assert!(chained.num_chains() > 0, "decoy must still chain");
        assert_eq!(chained.prefilter_rejected(), 0);

        let safe = Mapper::new(
            &idx,
            crate::opts::MapOpts::map_ont().with_prefilter(mmm_exec::PrefilterMode::Safe),
        );
        let filtered = safe.seed_chain(&decoy);
        assert_eq!(filtered.num_chains(), 0, "noise windows must reject");
        assert!(filtered.prefilter_rejected() > 0);

        // An exact read passes untouched even under the aggressive knob.
        let real = g[30_000..34_000].to_vec();
        let aggr = Mapper::new(
            &idx,
            crate::opts::MapOpts::map_ont().with_prefilter(mmm_exec::PrefilterMode::Aggressive),
        );
        let kept = aggr.seed_chain(&real);
        assert!(kept.num_chains() > 0);
        assert_eq!(kept.prefilter_rejected(), 0);
    }

    #[test]
    fn prefilter_keeps_noisy_but_real_reads() {
        // Simulated platform error rates sit far below the safe cut, so
        // `safe` must not change any honest read's output. `aggressive`
        // openly trades recall, but it must never drop a primary mapping.
        let g = generate_genome(&GenomeOpts {
            len: 150_000,
            repeat_frac: 0.0,
            seed: 22,
            ..Default::default()
        });
        let idx = build_index(&g, &IdxOpts::MAP_PB);
        let reads = simulate_reads(
            &g,
            &SimOpts {
                platform: Platform::PacBio,
                num_reads: 15,
                seed: 6,
            },
        );
        let off = Mapper::new(&idx, crate::opts::MapOpts::map_pb());
        let safe = Mapper::new(
            &idx,
            crate::opts::MapOpts::map_pb().with_prefilter(mmm_exec::PrefilterMode::Safe),
        );
        let aggr = Mapper::new(
            &idx,
            crate::opts::MapOpts::map_pb().with_prefilter(mmm_exec::PrefilterMode::Aggressive),
        );
        for r in &reads {
            let a = off.map_read(&r.seq);
            let b = safe.map_read(&r.seq);
            assert_eq!(a, b, "safe prefilter changed an honest read");
            let c = aggr.map_read(&r.seq);
            assert_eq!(
                a.iter().filter(|m| m.primary).count(),
                c.iter().filter(|m| m.primary).count(),
                "aggressive prefilter dropped a primary mapping"
            );
        }
    }

    #[test]
    fn planned_path_matches_monolithic_with_prefilter_enabled() {
        use mmm_exec::{prepare, BackendKind, BackendOptions, PrefilterMode};
        let g = generate_genome(&GenomeOpts {
            len: 120_000,
            repeat_frac: 0.05,
            seed: 23,
            ..Default::default()
        });
        let idx = build_index(&g, &IdxOpts::MAP_ONT);
        let reads = simulate_reads(
            &g,
            &SimOpts {
                platform: Platform::Nanopore,
                num_reads: 8,
                seed: 7,
            },
        );
        let mopts = crate::opts::MapOpts::map_ont().with_prefilter(PrefilterMode::Safe);
        let mapper = Mapper::new(&idx, mopts);
        let mut bopts = BackendOptions::new(mopts.scoring);
        bopts.engine = mopts.engine;
        bopts.threads = 2;
        let backend = prepare(BackendKind::GpuSim, &bopts).unwrap();
        let mut scratch = AlignScratch::new();
        for r in &reads {
            let gold = mapper
                .try_map_read_with_scratch(&r.seq, &mut scratch)
                .unwrap();
            let plan = mapper.plan_read(&r.seq).unwrap();
            let (results, _stats) = backend.submit(plan.jobs.clone()).unwrap();
            let got = mapper.finalize_read_with_scratch(&r.seq, &plan, &results, &mut scratch);
            assert_eq!(gold, got);
        }
    }

    #[test]
    fn engines_produce_identical_mappings() {
        use mmm_align::{Engine, Layout, Width};
        let g = generate_genome(&GenomeOpts {
            len: 100_000,
            repeat_frac: 0.0,
            seed: 7,
            ..Default::default()
        });
        let idx = build_index(&g, &IdxOpts::MAP_PB);
        let reads = simulate_reads(
            &g,
            &SimOpts {
                platform: Platform::PacBio,
                num_reads: 5,
                seed: 3,
            },
        );
        let base = Mapper::new(
            &idx,
            crate::opts::MapOpts::map_pb().with_engine(Engine::new(Layout::Manymap, Width::Scalar)),
        );
        for e in Engine::all().into_iter().filter(|e| e.is_available()) {
            let m2 = Mapper::new(&idx, crate::opts::MapOpts::map_pb().with_engine(e));
            for r in &reads {
                let a = base.map_read(&r.seq);
                let b = m2.map_read(&r.seq);
                assert_eq!(a.len(), b.len(), "{}", e.label());
                for (x, y) in a.iter().zip(&b) {
                    assert_eq!(x.align_score, y.align_score, "{}", e.label());
                    assert_eq!(x.cigar, y.cigar, "{}", e.label());
                }
            }
        }
    }
}
