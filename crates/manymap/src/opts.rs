//! Mapping presets (minimap2's `-ax map-pb` / `-ax map-ont`).

use mmm_align::{best_engine, Engine, Scoring};
use mmm_chain::{ChainOpts, SelectOpts};
use mmm_exec::{PrefilterMode, MAX_PLAN_SEGMENT};
use mmm_index::IdxOpts;

/// All knobs of one mapping run.
#[derive(Clone, Copy, Debug)]
pub struct MapOpts {
    pub idx: IdxOpts,
    pub chain: ChainOpts,
    pub select: SelectOpts,
    pub scoring: Scoring,
    /// Which base-level kernel to use.
    pub engine: Engine,
    /// Produce CIGARs (the paper's "alignment with complete path") or scores
    /// only.
    pub with_cigar: bool,
    /// Maximum reference window for end extension, as a multiple of the
    /// unaligned query tail.
    pub ext_factor: f64,
    /// Hard cap on any single base-level alignment problem (guards the
    /// quadratic with-path memory, §4.5.2's "fall back" case).
    pub max_fill: usize,
    /// Z-drop threshold for end extension (minimap2 `-z`).
    pub zdrop: i32,
    /// Reads longer than this are rejected per-read (degraded to unmapped)
    /// rather than aligned; guards worker memory against pathological input.
    pub max_read_len: usize,
    /// Pre-alignment candidate filter (`--prefilter`): reject chains whose
    /// anchored Hamming windows look like random noise before any DP is
    /// planned for them. `Off` by default so baseline output is unchanged.
    pub prefilter: PrefilterMode,
}

impl MapOpts {
    /// PacBio preset: `-ax map-pb` (k=19, PacBio scoring).
    pub fn map_pb() -> Self {
        MapOpts {
            idx: IdxOpts::MAP_PB,
            chain: ChainOpts::default(),
            select: SelectOpts::default(),
            scoring: Scoring::MAP_PB,
            engine: best_engine(),
            with_cigar: true,
            ext_factor: 1.5,
            // The one shared plan-time size limit: keeping this equal to the
            // executor's constant guarantees no planned job is rejected at
            // submit time for being oversized (see `mmm_exec::job`).
            max_fill: MAX_PLAN_SEGMENT,
            zdrop: mmm_align::DEFAULT_ZDROP,
            max_read_len: 100_000_000,
            prefilter: PrefilterMode::Off,
        }
    }

    /// Nanopore preset: `-ax map-ont` (k=15, ONT scoring).
    pub fn map_ont() -> Self {
        MapOpts {
            idx: IdxOpts::MAP_ONT,
            scoring: Scoring::MAP_ONT,
            ..Self::map_pb()
        }
    }

    /// Use a specific kernel variant.
    pub fn with_engine(mut self, engine: Engine) -> Self {
        self.engine = engine;
        self
    }

    /// Toggle CIGAR production.
    pub fn cigar(mut self, on: bool) -> Self {
        self.with_cigar = on;
        self
    }

    /// Select a pre-alignment filter mode.
    pub fn with_prefilter(mut self, mode: PrefilterMode) -> Self {
        self.prefilter = mode;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_differ_in_k_and_scoring() {
        let pb = MapOpts::map_pb();
        let ont = MapOpts::map_ont();
        assert_eq!(pb.idx.k, 19);
        assert_eq!(ont.idx.k, 15);
        assert_eq!(pb.scoring.b, 5);
        assert_eq!(ont.scoring.b, 4);
    }

    #[test]
    fn builders_apply() {
        let o = MapOpts::map_ont()
            .cigar(false)
            .with_prefilter(PrefilterMode::Safe);
        assert!(!o.with_cigar);
        assert_eq!(o.prefilter, PrefilterMode::Safe);
        assert_eq!(MapOpts::map_pb().prefilter, PrefilterMode::Off);
    }

    #[test]
    fn plan_size_limit_is_reconciled_with_the_executor() {
        // Plan-time `max_fill` and the executor's submit-time limit must be
        // the same constant, or the mapper could plan jobs the device path
        // would reject (or under-use the budget it is allowed).
        assert_eq!(MapOpts::map_pb().max_fill, MAX_PLAN_SEGMENT);
        assert_eq!(MapOpts::map_ont().max_fill, MAX_PLAN_SEGMENT);
    }
}
