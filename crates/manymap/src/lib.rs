//! `manymap` — accelerated long-read alignment (the paper's system).
//!
//! A complete minimap2-class seed–chain–extend aligner whose base-level
//! alignment step runs on interchangeable kernels: minimap2's Eq. 3 layout
//! or manymap's dependency-free Eq. 4 layout, at scalar/SSE/AVX2/AVX-512
//! widths (see [`mmm_align`]), on the real CPU or on the simulated GPU and
//! Knights Landing platforms (see [`mmm_gpu`], [`mmm_knl`]).
//!
//! # Quickstart
//!
//! ```
//! use manymap::{MapOpts, Mapper};
//! use mmm_index::{IdxOpts, MinimizerIndex};
//! use mmm_seq::SeqRecord;
//!
//! // Index a reference (fails loudly if the set exceeds the packed-hit
//! // bit budget: 2^24 sequences of up to 2^39 bases).
//! let reference = SeqRecord::new("chr1", b"ACGTACGTAGGCTAGCTAGGACTGACTGATCGATCGTACG".repeat(200));
//! let index = MinimizerIndex::build(&[reference], &IdxOpts::MAP_ONT).unwrap();
//!
//! // Map a read.
//! let mapper = Mapper::new(&index, MapOpts::map_ont());
//! let read = index.seqs[0].seq.slice(100, 1100);
//! let mappings = mapper.map_read(&read);
//! assert!(!mappings.is_empty());
//! ```

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod baselines;
pub mod error;
pub mod mapper;
pub mod opts;
pub mod paf;
pub mod profile;
pub mod sam;
pub mod serve;

pub use error::MapError;
pub use mapper::{MapReadError, Mapper, Mapping, ReadPlan};
pub use opts::MapOpts;
pub use paf::{paf_line, paf_unmapped, write_paf};
pub use profile::{profile_run, ProfileConfig, ProfileResult};

// Re-export the substrate crates so downstream users need one dependency.
pub use mmm_align as align;
pub use mmm_chain as chain;
pub use mmm_gpu as gpu;
pub use mmm_index as index;
pub use mmm_io as io;
pub use mmm_knl as knl;
pub use mmm_pipeline as pipeline;
pub use mmm_seq as seq;
