//! Homopolymer-compressed seeding through the whole mapper: the map-pb
//! preset (HPC on) must anchor insertion-heavy PacBio reads at least as
//! well as plain seeding, and mapping results must stay coordinate-correct.

use manymap::{MapOpts, Mapper};
use mmm_index::{IdxOpts, MinimizerIndex};
use mmm_seq::{nt4_decode, SeqRecord};
use mmm_simreads::{generate_genome, simulate_reads, GenomeOpts, Platform, SimOpts};

fn genome() -> Vec<u8> {
    generate_genome(&GenomeOpts {
        len: 250_000,
        repeat_frac: 0.0,
        seed: 55,
        ..Default::default()
    })
}

#[test]
fn map_pb_preset_uses_hpc_and_maps_pacbio_reads() {
    let g = genome();
    let opts = MapOpts::map_pb();
    assert!(opts.idx.hpc, "map-pb must enable HPC, like minimap2 -H");
    let index =
        MinimizerIndex::build(&[SeqRecord::new("chr1", nt4_decode(&g))], &opts.idx).unwrap();
    assert!(index.hpc);
    let mapper = Mapper::new(&index, opts);
    let reads = simulate_reads(
        &g,
        &SimOpts {
            platform: Platform::PacBio,
            num_reads: 30,
            seed: 9,
        },
    );
    let mut correct = 0;
    for r in &reads {
        if let Some(m) = mapper.map_read(&r.seq).into_iter().find(|m| m.primary) {
            let inter = m
                .ref_end
                .min(r.origin.end)
                .saturating_sub(m.ref_start.max(r.origin.start));
            if m.rev == r.origin.rev && 2 * inter > r.origin.end - r.origin.start {
                correct += 1;
            }
        }
    }
    assert!(correct >= 26, "correct={correct}/30");
}

#[test]
fn hpc_seeding_anchors_at_least_as_many_pacbio_reads() {
    let g = genome();
    let rec = SeqRecord::new("chr1", nt4_decode(&g));
    let plain = MinimizerIndex::build(
        std::slice::from_ref(&rec),
        &IdxOpts {
            k: 19,
            w: 10,
            occ_frac: 2e-4,
            hpc: false,
        },
    )
    .unwrap();
    let hpc = MinimizerIndex::build(
        &[rec],
        &IdxOpts {
            k: 19,
            w: 10,
            occ_frac: 2e-4,
            hpc: true,
        },
    )
    .unwrap();
    let reads = simulate_reads(
        &g,
        &SimOpts {
            platform: Platform::PacBio,
            num_reads: 40,
            seed: 4,
        },
    );
    let (mut plain_anchors, mut hpc_anchors) = (0usize, 0usize);
    for r in &reads {
        plain_anchors += plain.collect_anchors(&r.seq).len();
        hpc_anchors += hpc.collect_anchors(&r.seq).len();
    }
    // PacBio CLR errors are dominated by 1-base insertions, many of which
    // extend homopolymers — invisible to compressed k-mers. HPC must
    // recover a clearly larger anchor yield at the same k.
    assert!(
        hpc_anchors as f64 > 1.2 * plain_anchors as f64,
        "hpc {hpc_anchors} vs plain {plain_anchors}"
    );
}

#[test]
fn hpc_mappings_are_coordinate_exact_on_clean_reads() {
    let g = genome();
    let opts = MapOpts::map_pb();
    let index =
        MinimizerIndex::build(&[SeqRecord::new("chr1", nt4_decode(&g))], &opts.idx).unwrap();
    let mapper = Mapper::new(&index, opts);
    // Error-free extracts, forward and reverse-complement.
    let fwd = g[60_000..66_000].to_vec();
    let rev = mmm_seq::revcomp4(&g[120_000..126_000]);
    let mf = &mapper.map_read(&fwd)[0];
    assert_eq!((mf.ref_start, mf.ref_end), (60_000, 66_000));
    assert_eq!(mf.cigar.as_ref().unwrap().to_string(), "6000M");
    let mr = &mapper.map_read(&rev)[0];
    assert!(mr.rev);
    assert_eq!((mr.ref_start, mr.ref_end), (120_000, 126_000));
}

#[test]
fn hpc_flag_survives_serialization_and_affects_queries() {
    let g = genome();
    let opts = MapOpts::map_pb();
    let index =
        MinimizerIndex::build(&[SeqRecord::new("chr1", nt4_decode(&g))], &opts.idx).unwrap();
    let p = std::env::temp_dir().join(format!("hpc-idx-{}.mmx", std::process::id()));
    mmm_index::save_index(&index, &p).unwrap();
    let (back, _) = mmm_index::load_index_mmap(&p).unwrap();
    std::fs::remove_file(&p).unwrap();
    assert!(back.hpc);
    let read = g[10_000..14_000].to_vec();
    assert_eq!(index.collect_anchors(&read), back.collect_anchors(&read));
}
