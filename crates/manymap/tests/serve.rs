//! End-to-end acceptance for the `mmm-serve` daemon (DESIGN.md §12).
//!
//! The bar: N tenants interleaved through one daemon must each receive
//! output byte-identical to a solo `manymap map` run of the same reads —
//! including under an injected backend fault plan — a slow consumer must
//! not wedge the other tenants, and a drain must flush every accepted
//! read before the daemon exits.

use std::io::Write as _;
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Output, Stdio};
use std::time::{Duration, Instant};

use manymap::serve::{encode_read, read_frame, serve, write_frame, Frame, Op, ServeOpts};
use manymap::MapOpts;
use mmm_exec::{BackendOptions, BufferSink};
use mmm_index::{save_index, IdxOpts, MinimizerIndex};
use mmm_seq::{nt4_decode, write_fasta, SeqRecord};
use mmm_simreads::{generate_genome, simulate_reads, GenomeOpts, Platform, SimOpts};

struct Fixture {
    dir: PathBuf,
    index: PathBuf,
    reads: PathBuf,
    records: Vec<SeqRecord>,
    genome: Vec<u8>,
}

impl Drop for Fixture {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

impl Fixture {
    fn socket(&self) -> PathBuf {
        self.dir.join("daemon.sock")
    }
}

/// Same genome/read recipe as the backend CLI suite: noisy nanopore reads
/// so the mapper emits real gap-fill jobs for the backend.
fn fixture(tag: &str, num_reads: usize) -> Fixture {
    let dir = std::env::temp_dir().join(format!("mmm-serve-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();

    let genome = generate_genome(&GenomeOpts {
        len: 80_000,
        repeat_frac: 0.0,
        seed: 17,
        ..Default::default()
    });
    let idx = MinimizerIndex::build(
        &[SeqRecord::new("chr1", nt4_decode(&genome))],
        &IdxOpts::MAP_ONT,
    )
    .unwrap();
    let index = dir.join("ref.mmx");
    save_index(&idx, &index).unwrap();

    let sims = simulate_reads(
        &genome,
        &SimOpts {
            platform: Platform::Nanopore,
            num_reads,
            seed: 23,
        },
    );
    let records: Vec<SeqRecord> = sims
        .iter()
        .map(|r| SeqRecord::new(r.name.clone(), nt4_decode(&r.seq)))
        .collect();
    let mut fasta = Vec::new();
    write_fasta(&mut fasta, &records, 0).unwrap();
    let reads = dir.join("reads.fa");
    std::fs::write(&reads, &fasta).unwrap();

    Fixture {
        dir,
        index,
        reads,
        records,
        genome,
    }
}

/// Solo CLI run — the byte-identity reference.
fn run_cli(index: &Path, reads: &Path, envs: &[(&str, &str)]) -> Output {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_manymap"));
    cmd.arg("map")
        .arg(index)
        .arg(reads)
        .args(["--threads", "2", "--backend", "cpu"]);
    for (k, v) in envs {
        cmd.env(k, v);
    }
    let out = cmd.output().expect("spawn manymap");
    assert!(
        out.status.success(),
        "solo CLI failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    out
}

fn serve_bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_mmm-serve"))
}

/// Spawn the daemon and wait until its socket accepts connections.
fn spawn_daemon(fx: &Fixture, extra: &[&str]) -> Child {
    let child = serve_bin()
        .arg("daemon")
        .arg(&fx.index)
        .arg("--socket")
        .arg(fx.socket())
        .args(["--threads", "2", "--backend", "cpu"])
        .args(extra)
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn mmm-serve daemon");
    wait_for_socket(&fx.socket());
    child
}

fn wait_for_socket(path: &Path) {
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        if UnixStream::connect(path).is_ok() {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "daemon socket {path:?} never came up"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

fn run_client(socket: &Path, tenant: &str, reads: &Path) -> Output {
    serve_bin()
        .arg("client")
        .arg(socket)
        .arg(tenant)
        .arg(reads)
        .output()
        .expect("spawn mmm-serve client")
}

/// Issue `mmm-serve drain` and wait for the daemon to exit cleanly,
/// returning its stderr.
fn drain_and_join(fx: &Fixture, daemon: Child) -> String {
    let out = serve_bin()
        .arg("drain")
        .arg(fx.socket())
        .output()
        .expect("spawn mmm-serve drain");
    assert!(
        out.status.success(),
        "drain failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let out = daemon.wait_with_output().expect("join daemon");
    assert!(
        out.status.success(),
        "daemon exited non-zero: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8_lossy(&out.stderr).into_owned()
}

// --- raw-protocol helpers (in-process tests) ----------------------------

fn hello(stream: &mut UnixStream, tenant: &str) {
    write_frame(stream, Op::Hello, tenant.as_bytes()).unwrap();
    let f = read_frame(stream).unwrap().expect("HELLO reply");
    assert_eq!(f.op, Op::Ok, "HELLO rejected: {}", f.text());
}

fn send_read(stream: &mut UnixStream, rec: &SeqRecord) {
    let payload = encode_read(&rec.name, &rec.seq, b"");
    write_frame(stream, Op::Read, &payload).unwrap();
}

/// Read frames until DONE, returning the REC payloads and the DONE text.
fn collect_records(stream: &mut UnixStream) -> (Vec<Vec<u8>>, String) {
    let mut recs = Vec::new();
    loop {
        match read_frame(stream).unwrap().expect("stream closed pre-DONE") {
            Frame {
                op: Op::Rec,
                payload,
            } => recs.push(payload),
            Frame {
                op: Op::Done,
                payload,
            } => return (recs, String::from_utf8_lossy(&payload).into_owned()),
            f => panic!("unexpected frame {:?}: {}", f.op, f.text()),
        }
    }
}

fn admin(socket: &Path, op: Op) -> Frame {
    let mut s = UnixStream::connect(socket).unwrap();
    write_frame(&mut s, op, b"").unwrap();
    read_frame(&mut s).unwrap().expect("admin reply")
}

/// In-process daemon handle: `serve` runs on a scoped thread against a
/// `BufferSink`, so tests can drive raw sockets and then inspect the
/// final report.
fn serve_opts(fx: &Fixture) -> ServeOpts {
    let map = MapOpts::map_ont();
    let mut bopts = BackendOptions::new(map.scoring);
    bopts.engine = map.engine;
    bopts.threads = 2;
    let mut opts = ServeOpts::new(fx.socket(), map, bopts);
    opts.threads = 2;
    opts
}

// --- tests --------------------------------------------------------------

/// Four tenants interleaved through one daemon: every tenant's stdout is
/// byte-identical to the solo CLI, the stats endpoint accounts for all of
/// them, and the drain leaves a full report on stderr.
#[test]
fn four_tenants_are_byte_identical_to_solo_cli() {
    let fx = fixture("parity", 8);
    let solo = run_cli(&fx.index, &fx.reads, &[]);
    assert!(!solo.stdout.is_empty(), "solo CLI produced no records");

    let daemon = spawn_daemon(&fx, &[]);
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let (socket, reads) = (fx.socket(), fx.reads.clone());
                s.spawn(move || (i, run_client(&socket, &format!("t{i}"), &reads)))
            })
            .collect();
        for h in handles {
            let (i, out) = h.join().unwrap();
            assert!(
                out.status.success(),
                "client t{i} failed: {}",
                String::from_utf8_lossy(&out.stderr)
            );
            assert_eq!(
                out.stdout, solo.stdout,
                "tenant t{i} diverged from the solo CLI"
            );
            let stderr = String::from_utf8_lossy(&out.stderr);
            assert!(
                stderr.contains(&format!("tenant t{i}: 8 accepted, 8 sent")),
                "t{i} DONE summary wrong: {stderr}"
            );
        }
    });

    let stats = serve_bin()
        .arg("stats")
        .arg(fx.socket())
        .output()
        .expect("spawn mmm-serve stats");
    assert!(stats.status.success());
    let report = String::from_utf8_lossy(&stats.stdout);
    for i in 0..4 {
        assert!(
            report.contains(&format!("tenant t{i}:")),
            "stats endpoint missing t{i}: {report}"
        );
    }
    assert!(
        report.contains("32 read(s) accepted"),
        "stats totals wrong: {report}"
    );

    let stderr = drain_and_join(&fx, daemon);
    assert!(
        stderr.contains("[mmm-serve] up ") && stderr.contains("tenant t0:"),
        "final report missing from daemon stderr: {stderr}"
    );
}

/// The chaos bar: a fault plan that quarantines every job must produce the
/// same bytes through the daemon as through the solo CLI, with per-tenant
/// quarantine accounting and no cross-tenant corruption.
#[test]
fn injected_faults_stay_byte_identical_and_accounted() {
    let fx = fixture("chaos", 8);
    let envs = [
        ("MMM_FAULT_PLAN", "launch-fail"),
        ("MMM_BACKEND_RETRIES", "1"),
    ];
    let solo = run_cli(&fx.index, &fx.reads, &envs);
    let solo_text = String::from_utf8_lossy(&solo.stdout);
    assert!(
        solo_text.lines().all(|l| l.contains("tp:A:U")),
        "fault plan did not quarantine the solo run: {solo_text}"
    );

    let daemon = spawn_daemon(
        &fx,
        &[
            "--inject-backend-fault",
            "launch-fail",
            "--backend-retries",
            "1",
        ],
    );
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..2)
            .map(|i| {
                let (socket, reads) = (fx.socket(), fx.reads.clone());
                s.spawn(move || (i, run_client(&socket, &format!("c{i}"), &reads)))
            })
            .collect();
        for h in handles {
            let (i, out) = h.join().unwrap();
            assert!(
                out.status.success(),
                "client c{i} failed under faults: {}",
                String::from_utf8_lossy(&out.stderr)
            );
            assert_eq!(
                out.stdout, solo.stdout,
                "tenant c{i} diverged from the solo CLI under faults"
            );
            let stderr = String::from_utf8_lossy(&out.stderr);
            assert!(
                stderr.contains("8 quarantined"),
                "c{i} summary must account for quarantined reads: {stderr}"
            );
        }
    });
    let stderr = drain_and_join(&fx, daemon);
    assert!(stderr.contains("8 quarantined"), "daemon report: {stderr}");
}

/// Backpressure: a tenant that stops reading its socket is throttled by
/// its own bounded queues (in-flight never exceeds the output-queue cap)
/// while another tenant runs to completion — then the stalled tenant
/// resumes and still receives every record, in submission order.
#[test]
fn slow_consumer_is_throttled_without_wedging_others() {
    let fx = fixture("slow", 8);
    let mut opts = serve_opts(&fx);
    opts.inq_reads = 8;
    opts.outq_records = 4;
    let idx = MinimizerIndex::build(
        &[SeqRecord::new("chr1", nt4_decode(&fx.genome))],
        &IdxOpts::MAP_ONT,
    )
    .unwrap();
    let sink = BufferSink::default();

    std::thread::scope(|s| {
        let daemon = s.spawn(|| serve(&idx, &opts, &sink));
        wait_for_socket(&fx.socket());

        // Tenant "slow" ships every read but never reads a reply.
        let mut slow = UnixStream::connect(fx.socket()).unwrap();
        hello(&mut slow, "slow");
        for rec in &fx.records {
            send_read(&mut slow, rec);
        }

        // Tenant "live" runs a complete session while "slow" is stalled.
        let mut live = UnixStream::connect(fx.socket()).unwrap();
        hello(&mut live, "live");
        for rec in &fx.records {
            send_read(&mut live, rec);
        }
        write_frame(&mut live, Op::End, b"").unwrap();
        live.flush().unwrap();
        let (recs, done) = collect_records(&mut live);
        assert_eq!(recs.len(), fx.records.len(), "live tenant lost records");
        assert!(done.contains("8 accepted, 8 sent"), "live DONE: {done}");

        // The credit gate: "slow" may never hold more than outq_records
        // in flight, no matter how far behind its reader is.
        let f = admin(&fx.socket(), Op::Stats);
        assert_eq!(f.op, Op::StatsReply);
        let report = f.text();
        let in_flight = report
            .lines()
            .find(|l| l.contains("tenant slow:"))
            .and_then(|l| l.split(" sent, ").nth(1))
            .and_then(|rest| rest.split(" in flight").next())
            .and_then(|n| n.trim().parse::<u64>().ok())
            .unwrap_or_else(|| panic!("no in-flight figure for slow tenant: {report}"));
        assert!(
            in_flight <= opts.outq_records as u64,
            "slow tenant in-flight {in_flight} exceeds the outq cap: {report}"
        );

        // The stalled tenant resumes: every record arrives, in order.
        write_frame(&mut slow, Op::End, b"").unwrap();
        slow.flush().unwrap();
        let (recs, done) = collect_records(&mut slow);
        assert_eq!(recs.len(), fx.records.len(), "slow tenant lost records");
        assert!(done.contains("8 accepted, 8 sent"), "slow DONE: {done}");
        for (rec, payload) in fx.records.iter().zip(&recs) {
            let text = String::from_utf8_lossy(payload);
            assert!(
                text.starts_with(&format!("{}\t", rec.name)),
                "records out of submission order: expected {}, got {}",
                rec.name,
                text.lines().next().unwrap_or("")
            );
        }

        let f = admin(&fx.socket(), Op::Drain);
        assert_eq!(f.op, Op::Ok);
        daemon.join().unwrap().unwrap();
    });

    let reports = sink.reports();
    assert_eq!(reports.len(), 1, "exactly one final report");
    assert!(
        reports[0].contains("tenant slow:") && reports[0].contains("tenant live:"),
        "final report incomplete: {}",
        reports[0]
    );
}

/// The drain contract: reads accepted before the drain are all flushed —
/// the session ends as if the client had sent END, every record is
/// delivered, and the daemon exits cleanly.
#[test]
fn drain_flushes_accepted_reads_before_exit() {
    let fx = fixture("drain", 6);
    let opts = serve_opts(&fx);
    let idx = MinimizerIndex::build(
        &[SeqRecord::new("chr1", nt4_decode(&fx.genome))],
        &IdxOpts::MAP_ONT,
    )
    .unwrap();
    let sink = BufferSink::default();

    std::thread::scope(|s| {
        let daemon = s.spawn(|| serve(&idx, &opts, &sink));
        wait_for_socket(&fx.socket());

        // An open-ended session: reads in flight, END never sent.
        let mut client = UnixStream::connect(fx.socket()).unwrap();
        hello(&mut client, "mid-stream");
        for rec in &fx.records {
            send_read(&mut client, rec);
        }
        client.flush().unwrap();

        let f = admin(&fx.socket(), Op::Drain);
        assert_eq!(f.op, Op::Ok);

        // The drain must deliver all six reads' records, then DONE.
        let (recs, done) = collect_records(&mut client);
        assert_eq!(
            recs.len(),
            fx.records.len(),
            "drain dropped accepted reads: {done}"
        );
        assert!(done.contains("6 accepted, 6 sent"), "DONE: {done}");

        daemon.join().unwrap().unwrap();
    });
    assert!(
        !fx.socket().exists(),
        "drained daemon left its socket behind"
    );
    assert!(sink.reports()[0].contains("tenant mid-stream:"));
}

/// SIGTERM is a live drain, not a kill: reads accepted before the signal
/// are flushed to their client (RECs then DONE), the daemon exits 0, and
/// the final report lands on stderr.
#[test]
fn sigterm_drains_like_the_drain_opcode() {
    let fx = fixture("sigterm", 5);
    let daemon = spawn_daemon(&fx, &[]);
    let pid = daemon.id();

    let mut client = UnixStream::connect(fx.socket()).unwrap();
    hello(&mut client, "sig");
    for rec in &fx.records {
        send_read(&mut client, rec);
    }
    client.flush().unwrap();

    // Wait until every read is *accepted* (reads still in the socket
    // buffer when the drain flag flips are dropped by design).
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        let f = admin(&fx.socket(), Op::Stats);
        if f.text().contains("tenant sig: 5 accepted") {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "reads never accepted: {}",
            f.text()
        );
        std::thread::sleep(Duration::from_millis(20));
    }

    let kill = Command::new("kill")
        .args(["-TERM", &pid.to_string()])
        .status()
        .expect("spawn kill");
    assert!(kill.success());

    let (recs, done) = collect_records(&mut client);
    assert_eq!(recs.len(), 5, "SIGTERM dropped accepted reads: {done}");
    assert!(done.contains("5 accepted, 5 sent"), "DONE: {done}");

    let out = daemon.wait_with_output().expect("join daemon");
    assert!(
        out.status.success(),
        "SIGTERM drain must exit 0: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("tenant sig:"), "final report: {stderr}");
}

/// SIGTERM while the input queue is admission-capped: with a one-slot
/// input queue and a two-record output queue, the session reader spends
/// the whole run blocked pushing into a full queue (output credit only
/// recovers at mapping pace, ~2 reads per pipeline cycle). A drain signal
/// landed in that state must still flush every *accepted* read — RECs then
/// a balanced DONE — while reads still queued in the socket buffer are
/// dropped by design, never half-processed.
#[test]
fn sigterm_while_admission_capped_flushes_accepted_reads() {
    let fx = fixture("sigfull", 32);
    let daemon = spawn_daemon(&fx, &["--inq-reads", "1", "--outq-records", "2"]);
    let pid = daemon.id();

    let mut client = UnixStream::connect(fx.socket()).unwrap();
    hello(&mut client, "capped");
    for rec in &fx.records {
        send_read(&mut client, rec);
    }
    client.flush().unwrap();

    // Wait for the mid-acceptance window: some reads accepted, the rest
    // wedged behind the one-slot queue. Killing here exercises the
    // reader-blocked-in-push drain path.
    let deadline = Instant::now() + Duration::from_secs(30);
    let accepted_at_kill = loop {
        let f = admin(&fx.socket(), Op::Stats);
        let report = f.text();
        let accepted = report
            .lines()
            .find(|l| l.contains("tenant capped:"))
            .and_then(|l| l.split("capped: ").nth(1))
            .and_then(|rest| rest.split(" accepted").next())
            .and_then(|n| n.trim().parse::<u64>().ok())
            .unwrap_or(0);
        if (1..=24).contains(&accepted) {
            break accepted;
        }
        assert!(
            accepted <= 24,
            "acceptance outran the poll loop (observed {accepted}/32): {report}"
        );
        assert!(Instant::now() < deadline, "no read ever accepted: {report}");
        std::thread::sleep(Duration::from_millis(2));
    };

    let kill = Command::new("kill")
        .args(["-TERM", &pid.to_string()])
        .status()
        .expect("spawn kill");
    assert!(kill.success());

    // The reader may legitimately finish the push it was blocked in (and a
    // few more already racing through the queue), but whatever was
    // accepted must come back in full, and nothing beyond it.
    let (recs, done) = collect_records(&mut client);
    let accepted = recs.len() as u64;
    assert!(
        accepted >= accepted_at_kill,
        "flushed {accepted} < the {accepted_at_kill} reads accepted before \
         the signal: {done}"
    );
    assert!(
        accepted < 32,
        "signal was supposed to land mid-acceptance, but all 32 reads got \
         in: {done}"
    );
    assert!(
        done.contains(&format!("{accepted} accepted, {accepted} sent")),
        "accepted/sent must balance after a queue-full drain ({accepted} \
         REC frames): {done}"
    );

    let out = daemon.wait_with_output().expect("join daemon");
    assert!(
        out.status.success(),
        "queue-full SIGTERM drain must exit 0: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("tenant capped:"), "final report: {stderr}");
}

/// Admission control: the tenant cap refuses the N+1th live session with a
/// protocol-level ERR, and a finished session frees its slot.
#[test]
fn admission_cap_refuses_then_recovers() {
    let fx = fixture("admit", 2);
    let mut opts = serve_opts(&fx);
    opts.max_tenants = 1;
    let idx = MinimizerIndex::build(
        &[SeqRecord::new("chr1", nt4_decode(&fx.genome))],
        &IdxOpts::MAP_ONT,
    )
    .unwrap();
    let sink = BufferSink::default();

    std::thread::scope(|s| {
        let daemon = s.spawn(|| serve(&idx, &opts, &sink));
        wait_for_socket(&fx.socket());

        let mut first = UnixStream::connect(fx.socket()).unwrap();
        hello(&mut first, "only");

        let mut second = UnixStream::connect(fx.socket()).unwrap();
        write_frame(&mut second, Op::Hello, b"crowded").unwrap();
        let f = read_frame(&mut second).unwrap().expect("HELLO reply");
        assert_eq!(f.op, Op::Err, "cap must refuse the second tenant");
        assert!(f.text().contains("admission denied"), "{}", f.text());

        // End the first session; its slot frees up.
        write_frame(&mut first, Op::End, b"").unwrap();
        let (_, done) = collect_records(&mut first);
        assert!(done.contains("0 accepted"), "DONE: {done}");

        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            let mut third = UnixStream::connect(fx.socket()).unwrap();
            write_frame(&mut third, Op::Hello, b"next").unwrap();
            let f = read_frame(&mut third).unwrap().expect("HELLO reply");
            if f.op == Op::Ok {
                write_frame(&mut third, Op::End, b"").unwrap();
                let _ = collect_records(&mut third);
                break;
            }
            assert!(
                Instant::now() < deadline,
                "slot never freed after the first session ended"
            );
            std::thread::sleep(Duration::from_millis(20));
        }

        let f = admin(&fx.socket(), Op::Drain);
        assert_eq!(f.op, Op::Ok);
        daemon.join().unwrap().unwrap();
    });
}
