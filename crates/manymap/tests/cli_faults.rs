//! End-to-end fault behavior of the `manymap` binary.
//!
//! Fatal faults (corrupt index, truncated read file) must exit nonzero with
//! a diagnostic on stderr — regression cover for the old reader closure that
//! converted mid-file errors into silent EOF (truncated output, exit 0).
//! Per-read faults (`--inject-panic`, oversized reads) must degrade to
//! unmapped records, exit 0, and be counted on stderr.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

use mmm_index::{save_index, IdxOpts, MinimizerIndex};
use mmm_seq::{nt4_decode, write_fasta, SeqRecord};
use mmm_simreads::{generate_genome, simulate_reads, GenomeOpts, Platform, SimOpts};

struct Fixture {
    dir: PathBuf,
    index: PathBuf,
    reads: PathBuf,
    read_names: Vec<String>,
}

impl Drop for Fixture {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

/// Build a genome, an index file, and a FASTA of simulated reads.
fn fixture(tag: &str) -> Fixture {
    let dir = std::env::temp_dir().join(format!("manymap-cli-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();

    let g = generate_genome(&GenomeOpts {
        len: 60_000,
        repeat_frac: 0.0,
        seed: 7,
        ..Default::default()
    });
    let idx = MinimizerIndex::build(&[SeqRecord::new("chr1", nt4_decode(&g))], &IdxOpts::MAP_ONT)
        .unwrap();
    let index = dir.join("ref.mmx");
    save_index(&idx, &index).unwrap();

    let sims = simulate_reads(
        &g,
        &SimOpts {
            platform: Platform::Nanopore,
            num_reads: 6,
            seed: 11,
        },
    );
    let recs: Vec<SeqRecord> = sims
        .iter()
        .map(|r| SeqRecord::new(r.name.clone(), nt4_decode(&r.seq)))
        .collect();
    let mut fasta = Vec::new();
    write_fasta(&mut fasta, &recs, 0).unwrap();
    let reads = dir.join("reads.fa");
    std::fs::write(&reads, &fasta).unwrap();

    Fixture {
        dir,
        index,
        reads,
        read_names: sims.iter().map(|r| r.name.clone()).collect(),
    }
}

fn run_map(index: &Path, reads: &Path, extra: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_manymap"))
        .arg("map")
        .arg(index)
        .arg(reads)
        .args(["--threads", "2"])
        .args(extra)
        .output()
        .expect("spawn manymap")
}

#[test]
fn healthy_run_exits_zero_and_maps() {
    let fx = fixture("healthy");
    let out = run_map(&fx.index, &fx.reads, &[]);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "stderr: {stderr}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(!stdout.is_empty(), "no PAF produced");
    assert!(stderr.contains("mapped 6 reads"), "stderr: {stderr}");
    assert!(!stderr.contains("degraded"), "stderr: {stderr}");
}

#[test]
fn truncated_index_exits_nonzero_with_message() {
    let fx = fixture("truncidx");
    let bytes = std::fs::read(&fx.index).unwrap();
    let bad = fx.dir.join("bad.mmx");
    std::fs::write(&bad, &bytes[..bytes.len() / 2]).unwrap();

    let out = run_map(&bad, &fx.reads, &[]);
    assert!(!out.status.success(), "truncated index must be fatal");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("manymap:") && stderr.contains("bad.mmx"),
        "stderr: {stderr}"
    );
    assert!(stderr.contains("corrupt"), "stderr: {stderr}");
    assert!(out.stdout.is_empty(), "no output on a fatal index error");
}

#[test]
fn garbage_index_exits_nonzero_with_message() {
    let fx = fixture("badmagic");
    let bad = fx.dir.join("garbage.mmx");
    std::fs::write(&bad, b"this is not an index file at all").unwrap();

    let out = run_map(&bad, &fx.reads, &[]);
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("garbage.mmx"), "stderr: {stderr}");
}

/// Regression: the old reader closure used `.ok()?`, so a read file dying
/// mid-stream looked like EOF — truncated output, exit 0. A FASTQ record cut
/// off mid-way must now be a fatal, named error.
#[test]
fn truncated_reads_file_exits_nonzero() {
    let fx = fixture("truncreads");
    let bad = fx.dir.join("cut.fq");
    std::fs::write(&bad, b"@r1\nACGTACGTACGT\n+\n").unwrap(); // quality line missing

    let out = run_map(&fx.index, &bad, &[]);
    assert!(!out.status.success(), "mid-record truncation must be fatal");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("manymap:") && stderr.contains("cut.fq"),
        "stderr: {stderr}"
    );
}

#[test]
fn missing_files_exit_nonzero() {
    let fx = fixture("missing");
    let out = run_map(Path::new("/nonexistent/ref.mmx"), &fx.reads, &[]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("/nonexistent/ref.mmx"));

    let out = run_map(&fx.index, Path::new("/nonexistent/reads.fa"), &[]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("/nonexistent/reads.fa"));
}

/// A worker panic on one read degrades that read and completes the run.
#[test]
fn injected_panic_degrades_single_read() {
    let fx = fixture("panic");
    let victim = fx.read_names[2].clone();
    let out = run_map(&fx.index, &fx.reads, &["--inject-panic", &victim]);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        out.status.success(),
        "degradation must not be fatal: {stderr}"
    );

    let stdout = String::from_utf8_lossy(&out.stdout);
    let unmapped: Vec<&str> = stdout.lines().filter(|l| l.contains("\ttp:A:U")).collect();
    assert_eq!(unmapped.len(), 1, "stdout: {stdout}");
    assert!(unmapped[0].starts_with(&victim), "line: {}", unmapped[0]);

    assert!(
        stderr.contains(&format!("worker panicked on read '{victim}'")),
        "stderr: {stderr}"
    );
    assert!(
        stderr.contains("1 read(s) degraded to unmapped") && stderr.contains("1 worker panic"),
        "stderr: {stderr}"
    );
    assert!(stderr.contains("mapped 6 reads"), "stderr: {stderr}");
}

/// Reads over `--max-read-len` are rejected per-read, not fatally.
#[test]
fn oversized_reads_degrade_with_count() {
    let fx = fixture("toolong");
    let out = run_map(&fx.index, &fx.reads, &["--max-read-len", "50"]);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "stderr: {stderr}");

    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(
        stdout.lines().filter(|l| l.contains("\ttp:A:U")).count(),
        6,
        "every read exceeds 50 bp and must degrade: {stdout}"
    );
    assert!(
        stderr.contains("6 read(s) degraded to unmapped")
            && stderr.contains("6 over the length limit"),
        "stderr: {stderr}"
    );
}
