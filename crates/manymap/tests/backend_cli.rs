//! End-to-end backend parity of the `manymap` binary.
//!
//! The acceptance bar for the backend abstraction: `--backend gpu-sim`
//! must produce byte-identical stdout (PAF and SAM) to `--backend cpu`,
//! including when a shrunken simulated device forces oversized pairs
//! through the CPU-fallback path, and the stderr summary must account for
//! the backend's work.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

use mmm_index::{save_index, IdxOpts, MinimizerIndex};
use mmm_seq::{nt4_decode, write_fasta, SeqRecord};
use mmm_simreads::{generate_genome, simulate_reads, GenomeOpts, Platform, SimOpts};

struct Fixture {
    dir: PathBuf,
    index: PathBuf,
    reads: PathBuf,
}

impl Drop for Fixture {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

/// A genome, an index file, and a FASTA of noisy simulated reads (noise
/// guarantees the mapper emits deferred gap-fill jobs).
fn fixture(tag: &str) -> Fixture {
    let dir = std::env::temp_dir().join(format!("manymap-backend-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();

    let g = generate_genome(&GenomeOpts {
        len: 80_000,
        repeat_frac: 0.0,
        seed: 17,
        ..Default::default()
    });
    let idx = MinimizerIndex::build(&[SeqRecord::new("chr1", nt4_decode(&g))], &IdxOpts::MAP_ONT);
    let index = dir.join("ref.mmx");
    save_index(&idx, &index).unwrap();

    let sims = simulate_reads(
        &g,
        &SimOpts {
            platform: Platform::Nanopore,
            num_reads: 8,
            seed: 23,
        },
    );
    let recs: Vec<SeqRecord> = sims
        .iter()
        .map(|r| SeqRecord::new(r.name.clone(), nt4_decode(&r.seq)))
        .collect();
    let mut fasta = Vec::new();
    write_fasta(&mut fasta, &recs, 0).unwrap();
    let reads = dir.join("reads.fa");
    std::fs::write(&reads, &fasta).unwrap();

    Fixture { dir, index, reads }
}

fn run_map(index: &Path, reads: &Path, extra: &[&str], envs: &[(&str, &str)]) -> Output {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_manymap"));
    cmd.arg("map")
        .arg(index)
        .arg(reads)
        .args(["--threads", "2"])
        .args(extra);
    for (k, v) in envs {
        cmd.env(k, v);
    }
    cmd.output().expect("spawn manymap")
}

/// Fallback count from the stderr summary line
/// (`... N cpu-fallbacks, ...`).
fn fallbacks_in(stderr: &str) -> u64 {
    let line = stderr
        .lines()
        .find(|l| l.contains("cpu-fallbacks"))
        .unwrap_or_else(|| panic!("no backend summary in stderr: {stderr}"));
    let head = line.split(" cpu-fallbacks").next().unwrap();
    head.rsplit(' ').next().unwrap().parse().unwrap()
}

#[test]
fn gpu_sim_stdout_is_byte_identical_to_cpu() {
    let fx = fixture("parity");
    for format in [&[][..], &["--sam"][..]] {
        let cpu = run_map(
            &fx.index,
            &fx.reads,
            &[&["--backend", "cpu"], format].concat(),
            &[],
        );
        let gpu = run_map(
            &fx.index,
            &fx.reads,
            &[&["--backend", "gpu-sim"], format].concat(),
            &[],
        );
        assert!(cpu.status.success());
        assert!(gpu.status.success());
        assert!(!cpu.stdout.is_empty(), "no records produced");
        assert_eq!(
            cpu.stdout, gpu.stdout,
            "backend choice must never change output ({format:?})"
        );
        let stderr = String::from_utf8_lossy(&gpu.stderr);
        assert!(stderr.contains("backend gpu-sim:"), "stderr: {stderr}");
        let cpu_err = String::from_utf8_lossy(&cpu.stderr);
        assert!(cpu_err.contains("backend cpu:"), "stderr: {cpu_err}");
    }
}

#[test]
fn shrunken_device_forces_fallbacks_but_not_divergence() {
    let fx = fixture("fallback");
    let cpu = run_map(&fx.index, &fx.reads, &["--backend", "cpu"], &[]);
    // 16 KB of simulated device memory: any nontrivial with-path gap fill
    // overflows it and must be routed to the CPU executor.
    let gpu = run_map(
        &fx.index,
        &fx.reads,
        &["--backend", "gpu-sim"],
        &[("MMM_GPU_MEM", "16384")],
    );
    assert!(gpu.status.success());
    assert_eq!(
        cpu.stdout, gpu.stdout,
        "fallback path must stay bit-identical"
    );
    let stderr = String::from_utf8_lossy(&gpu.stderr);
    assert!(
        fallbacks_in(&stderr) >= 1,
        "shrunken device must exercise the fallback path: {stderr}"
    );
}

#[test]
fn backend_env_var_selects_backend() {
    let fx = fixture("env");
    let out = run_map(&fx.index, &fx.reads, &[], &[("MMM_BACKEND", "gpu-sim")]);
    assert!(out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("backend gpu-sim:"), "stderr: {stderr}");
}

#[test]
fn unknown_backend_is_a_usage_error() {
    let fx = fixture("unknown");
    let out = run_map(&fx.index, &fx.reads, &["--backend", "tpu"], &[]);
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown backend"), "stderr: {stderr}");
}
