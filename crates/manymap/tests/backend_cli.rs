//! End-to-end backend parity of the `manymap` binary.
//!
//! The acceptance bar for the backend abstraction: `--backend gpu-sim`
//! must produce byte-identical stdout (PAF and SAM) to `--backend cpu`,
//! including when a shrunken simulated device forces oversized pairs
//! through the CPU-fallback path, and the stderr summary must account for
//! the backend's work.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

use mmm_index::{save_index, IdxOpts, MinimizerIndex};
use mmm_seq::{nt4_decode, write_fasta, SeqRecord};
use mmm_simreads::{generate_genome, simulate_reads, GenomeOpts, Platform, SimOpts};

struct Fixture {
    dir: PathBuf,
    index: PathBuf,
    reads: PathBuf,
}

impl Drop for Fixture {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

/// A genome, an index file, and a FASTA of noisy simulated reads (noise
/// guarantees the mapper emits deferred gap-fill jobs).
fn fixture(tag: &str) -> Fixture {
    let dir = std::env::temp_dir().join(format!("manymap-backend-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();

    let g = generate_genome(&GenomeOpts {
        len: 80_000,
        repeat_frac: 0.0,
        seed: 17,
        ..Default::default()
    });
    let idx = MinimizerIndex::build(&[SeqRecord::new("chr1", nt4_decode(&g))], &IdxOpts::MAP_ONT)
        .unwrap();
    let index = dir.join("ref.mmx");
    save_index(&idx, &index).unwrap();

    let sims = simulate_reads(
        &g,
        &SimOpts {
            platform: Platform::Nanopore,
            num_reads: 8,
            seed: 23,
        },
    );
    let recs: Vec<SeqRecord> = sims
        .iter()
        .map(|r| SeqRecord::new(r.name.clone(), nt4_decode(&r.seq)))
        .collect();
    let mut fasta = Vec::new();
    write_fasta(&mut fasta, &recs, 0).unwrap();
    let reads = dir.join("reads.fa");
    std::fs::write(&reads, &fasta).unwrap();

    Fixture { dir, index, reads }
}

fn run_map(index: &Path, reads: &Path, extra: &[&str], envs: &[(&str, &str)]) -> Output {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_manymap"));
    cmd.arg("map")
        .arg(index)
        .arg(reads)
        .args(["--threads", "2"])
        .args(extra);
    for (k, v) in envs {
        cmd.env(k, v);
    }
    cmd.output().expect("spawn manymap")
}

/// Fallback count from the stderr summary line
/// (`... N cpu-fallbacks, ...`).
fn fallbacks_in(stderr: &str) -> u64 {
    let line = stderr
        .lines()
        .find(|l| l.contains("cpu-fallbacks"))
        .unwrap_or_else(|| panic!("no backend summary in stderr: {stderr}"));
    let head = line.split(" cpu-fallbacks").next().unwrap();
    head.rsplit(' ').next().unwrap().parse().unwrap()
}

#[test]
fn gpu_sim_stdout_is_byte_identical_to_cpu() {
    let fx = fixture("parity");
    for format in [&[][..], &["--sam"][..]] {
        let cpu = run_map(
            &fx.index,
            &fx.reads,
            &[&["--backend", "cpu"], format].concat(),
            &[],
        );
        let gpu = run_map(
            &fx.index,
            &fx.reads,
            &[&["--backend", "gpu-sim"], format].concat(),
            &[],
        );
        assert!(cpu.status.success());
        assert!(gpu.status.success());
        assert!(!cpu.stdout.is_empty(), "no records produced");
        assert_eq!(
            cpu.stdout, gpu.stdout,
            "backend choice must never change output ({format:?})"
        );
        let stderr = String::from_utf8_lossy(&gpu.stderr);
        assert!(stderr.contains("backend gpu-sim:"), "stderr: {stderr}");
        let cpu_err = String::from_utf8_lossy(&cpu.stderr);
        assert!(cpu_err.contains("backend cpu:"), "stderr: {cpu_err}");
    }
}

#[test]
fn shrunken_device_forces_fallbacks_but_not_divergence() {
    let fx = fixture("fallback");
    let cpu = run_map(&fx.index, &fx.reads, &["--backend", "cpu"], &[]);
    // 16 KB of simulated device memory: any nontrivial with-path gap fill
    // overflows it and must be routed to the CPU executor. Pin fifo
    // dispatch: the in-submit fallback counter this test asserts on is
    // exactly what the binned scheduler eliminates (oversized jobs are
    // host-routed pre-batch), so an inherited MMM_SCHED=bins would
    // legitimately report zero fallbacks.
    let gpu = run_map(
        &fx.index,
        &fx.reads,
        &["--backend", "gpu-sim"],
        &[("MMM_GPU_MEM", "16384"), ("MMM_SCHED", "fifo")],
    );
    assert!(gpu.status.success());
    assert_eq!(
        cpu.stdout, gpu.stdout,
        "fallback path must stay bit-identical"
    );
    let stderr = String::from_utf8_lossy(&gpu.stderr);
    assert!(
        fallbacks_in(&stderr) >= 1,
        "shrunken device must exercise the fallback path: {stderr}"
    );
}

#[test]
fn backend_env_var_selects_backend() {
    let fx = fixture("env");
    let out = run_map(&fx.index, &fx.reads, &[], &[("MMM_BACKEND", "gpu-sim")]);
    assert!(out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("backend gpu-sim:"), "stderr: {stderr}");
}

#[test]
fn unknown_backend_is_a_usage_error() {
    let fx = fixture("unknown");
    let out = run_map(&fx.index, &fx.reads, &["--backend", "tpu"], &[]);
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown backend"), "stderr: {stderr}");
}

// --- supervised execution (DESIGN.md §10) -------------------------------

/// The tentpole acceptance bar: a fault plan that fails *every* gpu-sim
/// submit must not change stdout by a byte. The supervisor retries, trips
/// the breaker, reroutes everything to the standby CPU backend, and the
/// stderr supervisor line accounts for it.
#[test]
fn total_gpu_failure_is_invisible_in_stdout() {
    let fx = fixture("chaos-total");
    let clean = run_map(&fx.index, &fx.reads, &["--backend", "cpu"], &[]);
    assert!(clean.status.success());
    let chaos = run_map(
        &fx.index,
        &fx.reads,
        &[
            "--backend",
            "gpu-sim",
            "--inject-backend-fault",
            "launch-fail",
        ],
        &[],
    );
    assert!(
        chaos.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&chaos.stderr)
    );
    assert_eq!(
        clean.stdout, chaos.stdout,
        "a fully failing primary must reroute, not corrupt output"
    );
    let stderr = String::from_utf8_lossy(&chaos.stderr);
    assert!(
        stderr.contains("supervisor gpu-sim:"),
        "supervisor summary missing: {stderr}"
    );
    assert!(
        stderr.contains("breaker-trips") && !stderr.contains("0 breaker-trips"),
        "breaker must trip under a 100%-failing plan: {stderr}"
    );
    assert!(stderr.contains("rerouted"), "stderr: {stderr}");
}

/// A hung primary submit must be abandoned at the batch deadline and the
/// batch rerouted — the run completes instead of wedging.
#[test]
fn hung_batch_is_killed_at_the_deadline() {
    let fx = fixture("chaos-hang");
    let clean = run_map(&fx.index, &fx.reads, &["--backend", "cpu"], &[]);
    let start = std::time::Instant::now();
    let out = run_map(
        &fx.index,
        &fx.reads,
        &[
            "--backend",
            "gpu-sim",
            "--inject-backend-fault",
            "hang:ms=30000:batches=0..1",
            "--batch-deadline-ms",
            "250",
        ],
        &[],
    );
    let wall = start.elapsed();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        wall < std::time::Duration::from_secs(20),
        "watchdog failed to cut the 30s hang short (wall={wall:?})"
    );
    assert_eq!(clean.stdout, out.stdout, "deadline reroute changed output");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("deadline-kills") && !stderr.contains("0 deadline-kills"),
        "stderr: {stderr}"
    );
}

/// With a CPU primary there is no standby: a plan that fails every submit
/// exhausts the ladder and every read degrades to a PR-2-style unmapped
/// record (`tp:A:U`) instead of aborting the run.
#[test]
fn exhausted_ladder_quarantines_reads_as_unmapped() {
    let fx = fixture("chaos-quar");
    let out = run_map(
        &fx.index,
        &fx.reads,
        &["--backend", "cpu"],
        &[
            ("MMM_FAULT_PLAN", "launch-fail"),
            ("MMM_BACKEND_RETRIES", "1"),
        ],
    );
    assert!(
        out.status.success(),
        "quarantine must keep the run alive: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(!stdout.is_empty());
    for line in stdout.lines() {
        assert!(
            line.contains("tp:A:U"),
            "quarantined read not degraded to unmapped: {line}"
        );
    }
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("backend-quarantined"),
        "stderr must account for quarantined reads: {stderr}"
    );
}

/// `--fail-fast` turns the first backend quarantine into a fatal pipeline
/// error for debugging sessions.
#[test]
fn fail_fast_aborts_on_first_quarantine() {
    let fx = fixture("chaos-fatal");
    let out = run_map(
        &fx.index,
        &fx.reads,
        &[
            "--backend",
            "cpu",
            "--inject-backend-fault",
            "launch-fail",
            "--fail-fast",
        ],
        &[],
    );
    assert!(!out.status.success(), "--fail-fast must abort the run");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("injected fault launch-fail"),
        "stderr: {stderr}"
    );
}

// --- length-binned scheduling + prefiltering (DESIGN.md §11) ------------

/// The scheduler acceptance bar: `--sched bins` must be byte-invisible in
/// stdout (PAF and SAM), including on a shrunken device where it routes
/// oversized jobs to the host pre-batch, and the stderr summary must
/// account for the binned batches.
#[test]
fn scheduled_dispatch_is_byte_identical_to_fifo() {
    let fx = fixture("sched");
    for format in [&[][..], &["--sam"][..]] {
        let inline_cpu = run_map(
            &fx.index,
            &fx.reads,
            &[&["--backend", "cpu"], format].concat(),
            &[],
        );
        assert!(inline_cpu.status.success());
        for envs in [&[][..], &[("MMM_GPU_MEM", "16384")][..]] {
            let sched = run_map(
                &fx.index,
                &fx.reads,
                &[&["--backend", "gpu-sim", "--sched", "bins"], format].concat(),
                envs,
            );
            assert!(
                sched.status.success(),
                "stderr: {}",
                String::from_utf8_lossy(&sched.stderr)
            );
            assert_eq!(
                inline_cpu.stdout, sched.stdout,
                "scheduling must never change output ({format:?}, {envs:?})"
            );
            let stderr = String::from_utf8_lossy(&sched.stderr);
            assert!(
                stderr.contains("binned batch(es)"),
                "scheduler summary missing: {stderr}"
            );
            if !envs.is_empty() {
                // The tiny device must show pre-batch host routing.
                assert!(
                    stderr.contains("host-routed job(s)") && !stderr.contains("0 host-routed"),
                    "tiny device produced no host routing: {stderr}"
                );
            }
        }
    }
}

/// `MMM_SCHED=bins` selects the scheduler without the flag; an unknown
/// mode is a usage error.
#[test]
fn sched_env_var_and_validation() {
    let fx = fixture("sched-env");
    let out = run_map(
        &fx.index,
        &fx.reads,
        &["--backend", "gpu-sim"],
        &[("MMM_SCHED", "bins")],
    );
    assert!(out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("binned batch(es)"), "stderr: {stderr}");

    let bad = run_map(&fx.index, &fx.reads, &["--sched", "zigzag"], &[]);
    assert!(!bad.status.success());
    let stderr = String::from_utf8_lossy(&bad.stderr);
    assert!(
        stderr.contains("unknown scheduler mode"),
        "stderr: {stderr}"
    );
}

/// The scheduler under a fault plan: supervision still absorbs the faults
/// and stdout stays identical to a clean CPU run.
#[test]
fn scheduled_dispatch_survives_chaos() {
    let fx = fixture("sched-chaos");
    let clean = run_map(&fx.index, &fx.reads, &["--backend", "cpu"], &[]);
    let chaos = run_map(
        &fx.index,
        &fx.reads,
        &[
            "--backend",
            "gpu-sim",
            "--sched",
            "bins",
            "--inject-backend-fault",
            "launch-fail:every=2",
        ],
        &[],
    );
    assert!(
        chaos.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&chaos.stderr)
    );
    assert_eq!(
        clean.stdout, chaos.stdout,
        "faults under the scheduler must not reach stdout"
    );
    let stderr = String::from_utf8_lossy(&chaos.stderr);
    assert!(stderr.contains("binned batch(es)"), "stderr: {stderr}");
    assert!(stderr.contains("supervisor gpu-sim:"), "stderr: {stderr}");
}

/// `--prefilter safe` leaves honest simulated reads untouched (stdout
/// identical, nothing rejected); an unknown mode is a usage error.
#[test]
fn prefilter_flag_smoke() {
    let fx = fixture("prefilter");
    let off = run_map(&fx.index, &fx.reads, &["--backend", "cpu"], &[]);
    let safe = run_map(
        &fx.index,
        &fx.reads,
        &["--backend", "cpu", "--prefilter", "safe"],
        &[],
    );
    assert!(safe.status.success());
    assert_eq!(
        off.stdout, safe.stdout,
        "safe prefilter changed honest reads"
    );

    let env = run_map(
        &fx.index,
        &fx.reads,
        &["--backend", "cpu"],
        &[("MMM_PREFILTER", "safe")],
    );
    assert!(env.status.success());
    assert_eq!(off.stdout, env.stdout);

    let bad = run_map(&fx.index, &fx.reads, &["--prefilter", "psychic"], &[]);
    assert!(!bad.status.success());
    let stderr = String::from_utf8_lossy(&bad.stderr);
    assert!(
        stderr.contains("unknown prefilter mode"),
        "stderr: {stderr}"
    );
}

/// A malformed fault plan is a usage error, reported before any mapping.
#[test]
fn malformed_fault_plan_is_a_usage_error() {
    let fx = fixture("chaos-usage");
    let out = run_map(
        &fx.index,
        &fx.reads,
        &["--inject-backend-fault", "segfault:when=never"],
        &[],
    );
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("fault"), "stderr: {stderr}");
}
