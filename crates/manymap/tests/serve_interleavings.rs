//! Model-checked interleavings of the serve layer's two scheduling
//! protocols (`serve/sched.rs`, `serve/signal.rs`), explored with the
//! vendored `loom-lite` scheduler. Every schedule also runs under the
//! happens-before race detector and the lock-order detector.
//!
//! Two protocols are modelled:
//!
//! * **DRR output-credit gating** — the deficit-round-robin scheduler
//!   forwards a tenant's reads into the shared pipeline only while
//!   `credit = outq_capacity - in_flight` is positive, where
//!   `in_flight = scheduled - sent`. The property: the shared pipeline
//!   writer delivers into per-tenant output queues with a non-blocking
//!   `try_push` that **never fails** — a slow (here: completely stalled)
//!   consumer caps its own tenant at `outq_capacity` in-flight reads and
//!   never wedges the writer or starves the fast tenant.
//!
//! * **signal-drain flush** — SIGTERM flips an atomic drain flag; session
//!   readers stop accepting new frames, but every read already accepted
//!   into a tenant input queue must still be forwarded before the
//!   scheduler shuts the pipeline down, on every interleaving of reader,
//!   signal, and scheduler.
//!
//! Broken variants keep the checker honest: a creditless scheduler that
//! wedges the writer, and a drain handler that abandons queued reads.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::Duration;

use loom_lite::sync::atomic::{AtomicBool, AtomicUsize};
use loom_lite::sync::{Condvar, Mutex};
use loom_lite::{model, thread, Builder};

/// Trimmed model port of `mmm_pipeline::queue::BoundedQueue<usize>` —
/// the same two-condvar protocol, with the non-blocking `try_push` the
/// pipeline writer uses for tenant output queues.
struct ModelQueue {
    inner: Mutex<(VecDeque<usize>, bool)>,
    items_cv: Condvar,
    space_cv: Condvar,
    capacity: usize,
}

impl ModelQueue {
    fn new(capacity: usize) -> Self {
        ModelQueue {
            inner: Mutex::new((VecDeque::new(), false)),
            items_cv: Condvar::new(),
            space_cv: Condvar::new(),
            capacity,
        }
    }

    fn push(&self, item: usize) -> Result<(), usize> {
        let mut g = self.inner.lock();
        loop {
            if g.1 {
                return Err(item);
            }
            if g.0.len() < self.capacity {
                g.0.push_back(item);
                drop(g);
                self.items_cv.notify_one();
                return Ok(());
            }
            g = self.space_cv.wait(g);
        }
    }

    /// `BoundedQueue::try_push`: the writer-side call under test — must
    /// never block, and under credit gating must never find the queue full.
    fn try_push(&self, item: usize) -> Result<(), usize> {
        let mut g = self.inner.lock();
        if g.1 || g.0.len() >= self.capacity {
            return Err(item);
        }
        g.0.push_back(item);
        drop(g);
        self.items_cv.notify_one();
        Ok(())
    }

    fn try_pop(&self) -> Option<usize> {
        let mut g = self.inner.lock();
        let item = g.0.pop_front();
        if item.is_some() {
            drop(g);
            self.space_cv.notify_one();
        }
        item
    }

    fn pop(&self) -> Option<usize> {
        let mut g = self.inner.lock();
        loop {
            if let Some(item) = g.0.pop_front() {
                drop(g);
                self.space_cv.notify_one();
                return Some(item);
            }
            if g.1 {
                return None;
            }
            g = self.items_cv.wait(g);
        }
    }

    /// `BoundedQueue::pop_timeout`, one abstract timeout per call. In the
    /// model the timeout fires only at quiescence, which is exactly the
    /// real scheduler's poll-again-after-sleep idle loop.
    fn pop_timed(&self) -> Option<usize> {
        let mut g = self.inner.lock();
        loop {
            if let Some(item) = g.0.pop_front() {
                drop(g);
                self.space_cv.notify_one();
                return Some(item);
            }
            if g.1 {
                return None;
            }
            let (g2, timed_out) = self.items_cv.wait_timeout(g, Duration::from_millis(1));
            g = g2;
            if timed_out {
                return None;
            }
        }
    }

    fn is_empty(&self) -> bool {
        self.inner.lock().0.is_empty()
    }

    fn close(&self) {
        self.inner.lock().1 = true;
        self.items_cv.notify_all();
        self.space_cv.notify_all();
    }
}

/// One tenant of the DRR model: an input backlog, a bounded output queue,
/// and the `scheduled`/`sent` counters the credit gate reads
/// (`TenantState::in_flight` in `serve/tenant.rs`).
struct Tenant {
    inq: ModelQueue,
    outq: ModelQueue,
    scheduled: AtomicUsize,
    sent: AtomicUsize,
}

impl Tenant {
    fn new(inq_backlog: &[usize], outq_capacity: usize) -> Self {
        let t = Tenant {
            inq: ModelQueue::new(inq_backlog.len().max(1)),
            outq: ModelQueue::new(outq_capacity),
            scheduled: AtomicUsize::new(0),
            sent: AtomicUsize::new(0),
        };
        for &r in inq_backlog {
            t.inq.push(r).expect("backlog fits by construction");
        }
        t
    }

    /// `DrrScheduler::credit`: output capacity minus in-flight reads.
    fn credit(&self) -> usize {
        let in_flight = self.scheduled.load() - self.sent.load();
        self.outq.capacity.saturating_sub(in_flight)
    }
}

/// Reads are tagged with their tenant in the high bit so the single
/// shared writer can route them, as the real pipeline does by read id.
const SLOW_TAG: usize = 0x100;

/// One explored execution of the DRR credit protocol. `gate_on_credit`
/// selects the real scheduler (`true`) or the broken creditless variant
/// that forwards the whole backlog regardless of output-queue space.
fn drr_execution(gate_on_credit: bool) {
    // Fast tenant: backlog 2, output capacity 2, a live consumer.
    // Slow tenant: backlog 2, output capacity 1, consumer stalled forever.
    let fast = Arc::new(Tenant::new(&[0, 1], 2));
    let slow = Arc::new(Tenant::new(&[SLOW_TAG, SLOW_TAG | 1], 1));
    // The shared pipeline hand-off; sized so the scheduler never blocks.
    let pipe = Arc::new(ModelQueue::new(4));

    // The single shared pipeline writer: routes each read to its tenant's
    // output queue with a non-blocking push. Credit gating is exactly the
    // guarantee that this push always finds space.
    let writer = {
        let (fast, slow, pipe) = (Arc::clone(&fast), Arc::clone(&slow), Arc::clone(&pipe));
        thread::spawn(move || {
            while let Some(r) = pipe.pop() {
                let tenant = if r & SLOW_TAG != 0 { &slow } else { &fast };
                assert!(
                    tenant.outq.try_push(r).is_ok(),
                    "a stalled consumer wedged the shared writer (outq full for read {r:#x})"
                );
            }
            fast.outq.close();
            slow.outq.close();
        })
    };

    // The fast tenant's consumer: drains its output queue as results land,
    // crediting the tenant back via `sent` (the real flow through
    // `TenantState::sent` and the per-session writer).
    let consumer = {
        let fast = Arc::clone(&fast);
        thread::spawn(move || {
            while fast.outq.pop().is_some() {
                fast.sent.fetch_add(1);
            }
        })
    };

    // The DRR scheduler (two rounds is enough to fully serve the fast
    // tenant and prove the slow tenant is capped, on every schedule).
    for _round in 0..2 {
        for tenant in [&fast, &slow] {
            while (if gate_on_credit { tenant.credit() } else { 1 }) > 0 {
                match tenant.inq.try_pop() {
                    Some(r) => {
                        tenant.scheduled.fetch_add(1);
                        pipe.push(r).expect("pipe closes only after the rounds");
                    }
                    None => break,
                }
            }
        }
    }
    pipe.close();

    writer.join();
    consumer.join();

    // The slow tenant is capped at its output capacity, not starved and
    // not over-scheduled; its unscheduled backlog is intact.
    assert_eq!(slow.scheduled.load(), 1, "credit gate missed");
    assert!(!slow.inq.is_empty(), "over-scheduled past the credit cap");
    // The fast tenant is fully served despite sharing the writer with a
    // stalled neighbour.
    assert_eq!(fast.scheduled.load(), 2, "fast tenant starved");
    assert_eq!(fast.sent.load(), 2, "fast tenant lost a result");
}

/// The real credit-gated scheduler: explored with a CHESS preemption
/// bound (three threads, but many scheduling points per thread).
#[test]
fn drr_credit_gate_never_wedges_the_writer() {
    let report = Builder {
        max_preemptions: Some(2),
        ..Builder::default()
    }
    .check(|| drr_execution(true));
    assert!(report.complete, "exploration truncated: {report:?}");
    assert!(report.schedules > 10, "{report:?}");
}

/// Canary: the creditless scheduler must be caught — it forwards both
/// slow-tenant reads and the writer's non-blocking push finds the
/// 1-capacity output queue full.
#[test]
fn canary_creditless_scheduler_is_caught() {
    let result = catch_unwind(AssertUnwindSafe(|| {
        Builder {
            max_preemptions: Some(2),
            ..Builder::default()
        }
        .check(|| drr_execution(false));
    }));
    let msg = match result {
        Ok(_) => panic!("the creditless scheduler explored clean"),
        Err(p) => p.downcast_ref::<String>().cloned().unwrap_or_default(),
    };
    assert!(
        msg.contains("wedged the shared writer"),
        "unexpected failure: {msg}"
    );
}

/// One explored execution of the signal-drain protocol. `flush_backlog`
/// selects the real shutdown (`true`: drain the input queue before
/// stopping) or the broken variant that stops the moment the flag flips.
fn drain_execution(flush_backlog: bool) {
    let inq = Arc::new(ModelQueue::new(2));
    let drain = Arc::new(AtomicBool::new(false));
    let ended = Arc::new(AtomicBool::new(false));
    let accepted = Arc::new(AtomicUsize::new(0));

    // Session reader: accepts frames until the drain flag is observed,
    // then ends the session. A push already past the drain check is an
    // *accepted* read — the flush guarantee covers it.
    let reader = {
        let (inq, drain, ended, accepted) = (
            Arc::clone(&inq),
            Arc::clone(&drain),
            Arc::clone(&ended),
            Arc::clone(&accepted),
        );
        thread::spawn(move || {
            for r in 0..2 {
                if drain.load() {
                    break;
                }
                inq.push(r).expect("inq never closes");
                accepted.fetch_add(1);
            }
            ended.store(true);
        })
    };

    // The SIGTERM handler: flips the flag at an arbitrary point relative
    // to every reader/scheduler step.
    let signal = {
        let drain = Arc::clone(&drain);
        thread::spawn(move || {
            drain.store(true);
        })
    };

    // The scheduler loop (`DrrScheduler::run`): poll the tenant queue;
    // on an idle poll, stop only once draining, the session has ended,
    // and — the property under test — the input queue is empty.
    let mut forwarded = 0usize;
    loop {
        if !flush_backlog && drain.load() {
            // Broken variant: stop the moment the flag is observed,
            // abandoning whatever the reader already queued.
            break;
        }
        match inq.pop_timed() {
            Some(_r) => forwarded += 1,
            None => {
                if drain.load() && ended.load() && inq.is_empty() {
                    break;
                }
            }
        }
    }

    reader.join();
    signal.join();
    assert_eq!(
        forwarded,
        accepted.load(),
        "accepted reads were dropped on drain"
    );
}

/// Every accepted read survives a SIGTERM that lands at any point in the
/// reader/scheduler interleaving; the scheduler never shuts down early
/// and never hangs (the timed pop's quiescence timeout models the real
/// poll loop). CHESS preemption bound 2 — the unbounded space exceeds
/// the schedule budget.
#[test]
fn drain_flag_flushes_every_accepted_read() {
    let report = Builder {
        max_preemptions: Some(2),
        ..Builder::default()
    }
    .check(|| drain_execution(true));
    assert!(report.complete, "exploration truncated: {report:?}");
    assert!(report.schedules > 10, "{report:?}");
}

/// Canary: the stop-on-flag-alone shutdown must be caught on the
/// schedules where the reader queued reads before the signal landed.
#[test]
fn canary_drain_without_flush_is_caught() {
    let result = catch_unwind(AssertUnwindSafe(|| {
        model(|| drain_execution(false));
    }));
    let msg = match result {
        Ok(_) => panic!("the flush-skipping shutdown explored clean"),
        Err(p) => p.downcast_ref::<String>().cloned().unwrap_or_default(),
    };
    assert!(
        msg.contains("dropped on drain"),
        "unexpected failure: {msg}"
    );
}
