//! `mmm-index` — minimizer sketching and the reference index.
//!
//! The seeding substrate of the aligner (§3.1): references are sketched with
//! `(k, w)` minimizers (Roberts et al.), stored 2-bit packed alongside a
//! hash table from minimizer hash to reference positions. Queries are
//! sketched with the same function and each shared minimizer becomes an
//! anchor for chaining.
//!
//! The index serializes to a binary format modeled on minimap2's `.mmi` and
//! can be loaded through either I/O path of [`mmm_io`]: fragmented buffered
//! reads (minimap2's loader) or a single memory map (manymap's §4.4.2
//! optimization) — the two sides of the index-loading experiments.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod error;
pub mod index;
pub mod minimizer;
pub mod serialize;

pub use error::IndexError;
pub use index::{check_hit_budget, IdxOpts, MinimizerIndex, RefSeq, MAX_REF_LEN, MAX_REF_SEQS};
pub use minimizer::{hash64, minimizers, Minimizer};
pub use serialize::{load_index, load_index_mmap, parse_index, save_index, LoadStats};
