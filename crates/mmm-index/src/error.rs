//! Typed errors for index loading and parsing.
//!
//! The deserializer distinguishes three failure classes so callers can
//! report them precisely: the file could not be opened at all, the byte
//! stream died mid-parse (a device-level fault), or the bytes arrived fine
//! but do not describe a valid index (corruption/truncation). The latter two
//! carry the byte offset where parsing stopped, so a truncated or
//! bit-flipped `.mmx` file is reported as "corrupt index at byte N", never
//! as a panic or an out-of-memory abort.

use std::fmt;
use std::io;
use std::path::PathBuf;

/// Errors from [`crate::load_index`] / [`crate::load_index_mmap`] /
/// [`crate::parse_index`].
#[derive(Debug)]
pub enum IndexError {
    /// The index file could not be opened or mapped.
    Open { path: PathBuf, source: io::Error },
    /// The underlying byte source failed mid-parse (I/O fault, not bad
    /// bytes). `offset` is the stream position where the fault surfaced,
    /// when the source tracks one.
    Io {
        offset: Option<u64>,
        source: io::Error,
    },
    /// The bytes were delivered but do not form a valid index: bad magic,
    /// truncation, or a length prefix that contradicts the file size.
    Corrupt { offset: Option<u64>, what: String },
    /// The reference set exceeds the packed-hit bit budget
    /// (`rid << 40 | pos << 1 | strand`: 2^24 sequences of up to 2^39
    /// bases). Packing such hits would silently wrap them into the wrong
    /// reference or strand, so [`crate::MinimizerIndex::build`] refuses the
    /// set instead of mismapping.
    HitBudget { what: String },
}

impl IndexError {
    /// Classify an `io::Error` raised while parsing at `offset`.
    ///
    /// `InvalidData` and `UnexpectedEof` mean the bytes themselves are wrong
    /// (hostile length prefix, truncated file) — that is corruption, not an
    /// I/O fault.
    pub(crate) fn from_parse(offset: Option<u64>, e: io::Error) -> Self {
        match e.kind() {
            io::ErrorKind::InvalidData | io::ErrorKind::UnexpectedEof => IndexError::Corrupt {
                offset,
                what: e.to_string(),
            },
            _ => IndexError::Io { offset, source: e },
        }
    }

    /// True when the error indicates a malformed/truncated index rather
    /// than a device fault.
    pub fn is_corrupt(&self) -> bool {
        matches!(self, IndexError::Corrupt { .. })
    }
}

fn write_at(f: &mut fmt::Formatter<'_>, offset: &Option<u64>) -> fmt::Result {
    match offset {
        Some(o) => write!(f, " at byte {o}"),
        None => Ok(()),
    }
}

impl fmt::Display for IndexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IndexError::Open { path, source } => {
                write!(f, "cannot open index {}: {source}", path.display())
            }
            IndexError::Io { offset, source } => {
                write!(f, "index read failed")?;
                write_at(f, offset)?;
                write!(f, ": {source}")
            }
            IndexError::Corrupt { offset, what } => {
                write!(f, "corrupt index")?;
                write_at(f, offset)?;
                write!(f, ": {what}")
            }
            IndexError::HitBudget { what } => {
                write!(f, "reference set over the packed-hit budget: {what}")
            }
        }
    }
}

impl std::error::Error for IndexError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IndexError::Open { source, .. } | IndexError::Io { source, .. } => Some(source),
            IndexError::Corrupt { .. } | IndexError::HitBudget { .. } => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification() {
        let e = IndexError::from_parse(
            Some(20),
            io::Error::new(io::ErrorKind::InvalidData, "length prefix 999 exceeds file"),
        );
        assert!(e.is_corrupt());
        let s = e.to_string();
        assert!(s.contains("corrupt index at byte 20"), "{s}");
        assert!(s.contains("length prefix"), "{s}");

        let e = IndexError::from_parse(Some(4), io::Error::other("disk on fire"));
        assert!(!e.is_corrupt());
        assert!(e.to_string().contains("index read failed at byte 4"));

        let e = IndexError::Open {
            path: PathBuf::from("/no/such.mmx"),
            source: io::Error::from(io::ErrorKind::NotFound),
        };
        assert!(e.to_string().contains("/no/such.mmx"));
    }
}
