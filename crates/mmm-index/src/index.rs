//! The minimizer index: hash table + packed reference sequences.

use std::collections::HashMap;

use mmm_chain::Anchor;
use mmm_seq::{PackedSeq, SeqRecord};

use crate::error::IndexError;
use crate::minimizer::{minimizers, minimizers_hpc, Minimizer};

/// Index construction parameters.
#[derive(Clone, Copy, Debug)]
pub struct IdxOpts {
    /// k-mer size (`-k`; 19 for map-pb, 15 for map-ont).
    pub k: usize,
    /// Minimizer window (`-w`, 10).
    pub w: usize,
    /// Fraction of most-frequent minimizers to ignore during seeding
    /// (`-f`, 2e-4).
    pub occ_frac: f64,
    /// Homopolymer-compressed k-mers (`-H`; on for map-pb, matching
    /// PacBio CLR's indel-dominant errors).
    pub hpc: bool,
}

impl IdxOpts {
    /// minimap2's `map-pb` preset (`-H -k19`).
    pub const MAP_PB: IdxOpts = IdxOpts {
        k: 19,
        w: 10,
        occ_frac: 2e-4,
        hpc: true,
    };
    /// minimap2's `map-ont` preset (`-k15`).
    pub const MAP_ONT: IdxOpts = IdxOpts {
        k: 15,
        w: 10,
        occ_frac: 2e-4,
        hpc: false,
    };
}

impl Default for IdxOpts {
    fn default() -> Self {
        IdxOpts::MAP_ONT
    }
}

/// One indexed reference sequence.
#[derive(Clone, Debug)]
pub struct RefSeq {
    pub name: String,
    pub seq: PackedSeq,
}

/// Packed-hit bit budget: a hit is `rid << 40 | pos << 1 | strand`, so the
/// reference id gets the top 24 bits and the position the middle 39. At
/// most this many reference sequences fit in one index.
pub const MAX_REF_SEQS: usize = 1 << 24;
/// Packed-hit bit budget: longest addressable reference sequence (bases).
/// Positions are minimizer starts, so the last base must still pack.
pub const MAX_REF_LEN: usize = 1 << 39;

/// Packed reference hit: `rid << 40 | pos << 1 | strand`.
///
/// Out-of-budget inputs (`rid >= 2^24`, `pos >= 2^39`) would silently
/// corrupt the hit into another reference/strand; [`MinimizerIndex::build`]
/// rejects such reference sets up front, so this can only fire on an
/// internal invariant violation.
#[inline]
pub(crate) fn pack_hit(rid: u32, pos: u32, rev: bool) -> u64 {
    debug_assert!(
        (rid as usize) < MAX_REF_SEQS,
        "pack_hit: rid {rid} exceeds the 24-bit budget"
    );
    debug_assert!(
        (pos as usize) < MAX_REF_LEN,
        "pack_hit: pos {pos} exceeds the 39-bit budget"
    );
    ((rid as u64) << 40) | ((pos as u64) << 1) | rev as u64
}

#[inline]
pub(crate) fn unpack_hit(h: u64) -> (u32, u32, bool) {
    (
        (h >> 40) as u32,
        ((h >> 1) & 0x7F_FFFF_FFFF) as u32,
        h & 1 == 1,
    )
}

/// The minimizer hash index (minimap2's `mm_idx_t`).
pub struct MinimizerIndex {
    pub k: usize,
    pub w: usize,
    /// Homopolymer-compressed sketching (queries must match).
    pub hpc: bool,
    pub seqs: Vec<RefSeq>,
    /// minimizer hash → (offset, count) into `positions`.
    pub(crate) map: HashMap<u64, (u64, u32)>,
    /// Flat array of packed hits, grouped by minimizer.
    pub(crate) positions: Vec<u64>,
    /// Seeding ignores minimizers with more occurrences than this.
    pub max_occ: u32,
}

impl MinimizerIndex {
    /// Build the index over a set of reference records.
    ///
    /// Fails with [`IndexError::HitBudget`] when the reference set exceeds
    /// the packed-hit representation ([`MAX_REF_SEQS`] sequences of up to
    /// [`MAX_REF_LEN`] bases): packing such hits would silently wrap them
    /// into the wrong reference or strand and mismap every read that seeds
    /// there, so over-budget inputs must fail loudly at build time.
    pub fn build(refs: &[SeqRecord], opts: &IdxOpts) -> Result<Self, IndexError> {
        check_hit_budget(refs.len(), refs.iter().map(|r| (r.name.as_str(), r.len())))?;
        // Collect (hash, packed hit) pairs across all references.
        let mut pairs: Vec<(u64, u64)> = Vec::new();
        let mut seqs = Vec::with_capacity(refs.len());
        for (rid, r) in refs.iter().enumerate() {
            let nt4 = r.nt4();
            for m in sketch(&nt4, opts.k, opts.w, opts.hpc) {
                pairs.push((m.hash, pack_hit(rid as u32, m.pos, m.rev)));
            }
            seqs.push(RefSeq {
                name: r.name.clone(),
                seq: PackedSeq::from_nt4_lossy(&nt4),
            });
        }
        pairs.sort_unstable();

        let mut map = HashMap::with_capacity(pairs.len() / 2 + 1);
        let mut positions = Vec::with_capacity(pairs.len());
        let mut i = 0;
        while i < pairs.len() {
            let h = pairs[i].0;
            let start = positions.len() as u64;
            let mut j = i;
            while j < pairs.len() && pairs[j].0 == h {
                positions.push(pairs[j].1);
                j += 1;
            }
            map.insert(h, (start, (j - i) as u32));
            i = j;
        }

        let max_occ = occurrence_cutoff(map.values().map(|&(_, c)| c), opts.occ_frac);
        Ok(MinimizerIndex {
            k: opts.k,
            w: opts.w,
            hpc: opts.hpc,
            seqs,
            map,
            positions,
            max_occ,
        })
    }

    /// Hits for one minimizer hash, or an empty slice.
    pub fn lookup(&self, hash: u64) -> &[u64] {
        match self.map.get(&hash) {
            Some(&(off, cnt)) => &self.positions[off as usize..off as usize + cnt as usize],
            None => &[],
        }
    }

    /// Number of distinct minimizers.
    pub fn num_minimizers(&self) -> usize {
        self.map.len()
    }

    /// Total stored hits.
    pub fn num_positions(&self) -> usize {
        self.positions.len()
    }

    /// Collect chaining anchors for a query (nt4, forward strand).
    ///
    /// Seeds whose minimizer occurs more than `max_occ` times on the
    /// reference are skipped (the repeat filter, minimap2 `-f`).
    pub fn collect_anchors(&self, query: &[u8]) -> Vec<Anchor> {
        let qlen = query.len() as u32;
        let mut anchors = Vec::new();
        for m in sketch(query, self.k, self.w, self.hpc) {
            let hits = self.lookup(m.hash);
            if hits.is_empty() || hits.len() as u32 > self.max_occ {
                continue;
            }
            for &h in hits {
                let (rid, rpos, rrev) = unpack_hit(h);
                let span = if self.hpc {
                    m.span.max(self.k as u8)
                } else {
                    self.k as u8
                };
                if rrev == m.rev {
                    anchors.push(Anchor {
                        rid,
                        rpos,
                        qpos: m.pos,
                        rev: false,
                        span,
                    });
                } else {
                    // Match on the opposite strand: express the query
                    // position in reverse-complement coordinates (the
                    // k-mer's original start flips to its rc end).
                    anchors.push(Anchor {
                        rid,
                        rpos,
                        qpos: qlen - 1 - (m.pos + 1 - span as u32),
                        rev: true,
                        span,
                    });
                }
            }
        }
        anchors
    }

    /// Approximate in-memory footprint in bytes (the paper's "Index Size"
    /// column of Table 5).
    pub fn heap_bytes(&self) -> usize {
        let seq_bytes: usize = self
            .seqs
            .iter()
            .map(|s| s.seq.heap_bytes() + s.name.capacity())
            .sum();
        // HashMap entry ≈ key + value + bucket overhead.
        seq_bytes + self.map.len() * 24 + self.positions.len() * 8
    }

    /// Extract a forward-strand window `[start, end)` of reference `rid`.
    pub fn ref_window(&self, rid: u32, start: usize, end: usize) -> Vec<u8> {
        let s = &self.seqs[rid as usize].seq;
        s.slice(start.min(s.len()), end.min(s.len()))
    }
}

/// Validate a reference set against the packed-hit bit budget
/// (`rid << 40 | pos << 1 | strand`): at most [`MAX_REF_SEQS`] sequences,
/// each at most [`MAX_REF_LEN`] bases. `lens` yields `(name, len)` per
/// sequence; the count is checked first so an over-wide set fails before
/// any per-sequence work.
pub fn check_hit_budget<'a>(
    count: usize,
    lens: impl Iterator<Item = (&'a str, usize)>,
) -> Result<(), IndexError> {
    if count > MAX_REF_SEQS {
        return Err(IndexError::HitBudget {
            what: format!(
                "{count} reference sequences exceed the packed-hit rid budget \
                 of {MAX_REF_SEQS} (24 bits); split the reference set"
            ),
        });
    }
    for (rid, (name, len)) in lens.enumerate() {
        if len > MAX_REF_LEN {
            return Err(IndexError::HitBudget {
                what: format!(
                    "reference #{rid} ('{name}') is {len} bases, over the \
                     packed-hit position budget of {MAX_REF_LEN} (39 bits); \
                     split the sequence"
                ),
            });
        }
    }
    Ok(())
}

/// Sketch with or without homopolymer compression.
#[inline]
fn sketch(seq: &[u8], k: usize, w: usize, hpc: bool) -> Vec<Minimizer> {
    if hpc {
        minimizers_hpc(seq, k, w)
    } else {
        minimizers(seq, k, w)
    }
}

/// Occurrence threshold: the `1 - frac` quantile of per-minimizer counts
/// (minimap2's `mm_idx_cal_max_occ`), at least 10.
pub(crate) fn occurrence_cutoff(counts: impl Iterator<Item = u32>, frac: f64) -> u32 {
    let mut v: Vec<u32> = counts.collect();
    if v.is_empty() || frac <= 0.0 {
        return u32::MAX;
    }
    if v.len() == 1 {
        return v[0].max(10);
    }
    v.sort_unstable();
    // Drop (at least) the top `frac` fraction of keys: the cutoff is the
    // largest kept count.
    let drop = ((frac * v.len() as f64).ceil() as usize).clamp(1, v.len() - 1);
    v[v.len() - 1 - drop].max(10)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmm_seq::nt4_decode;

    fn random_genome(len: usize, seed: u64) -> Vec<u8> {
        let mut state = seed;
        (0..len)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                ((state >> 33) % 4) as u8
            })
            .collect()
    }

    fn build_one(genome: &[u8], opts: &IdxOpts) -> MinimizerIndex {
        let rec = SeqRecord::new("chr1", nt4_decode(genome));
        MinimizerIndex::build(&[rec], opts).unwrap()
    }

    #[test]
    fn build_and_lookup_round_trip() {
        let g = random_genome(20_000, 11);
        let idx = build_one(&g, &IdxOpts::MAP_ONT);
        assert!(idx.num_minimizers() > 1000);
        // Every stored minimizer must be findable.
        let ms = minimizers(&g, idx.k, idx.w);
        for m in ms.iter().take(50) {
            assert!(!idx.lookup(m.hash).is_empty());
        }
    }

    #[test]
    fn exact_substring_produces_diagonal_anchors() {
        let g = random_genome(50_000, 5);
        let idx = build_one(&g, &IdxOpts::MAP_ONT);
        let query = g[10_000..12_000].to_vec();
        let anchors = idx.collect_anchors(&query);
        assert!(!anchors.is_empty());
        // Most anchors must be forward and lie on the diagonal
        // rpos - qpos = 10_000.
        let on_diag = anchors
            .iter()
            .filter(|a| !a.rev && a.rpos - a.qpos == 10_000)
            .count();
        assert!(
            on_diag as f64 > 0.9 * anchors.len() as f64,
            "{on_diag}/{}",
            anchors.len()
        );
    }

    #[test]
    fn reverse_complement_query_produces_rev_anchors() {
        let g = random_genome(50_000, 6);
        let idx = build_one(&g, &IdxOpts::MAP_ONT);
        let query = mmm_seq::revcomp4(&g[10_000..12_000]);
        let anchors = idx.collect_anchors(&query);
        assert!(!anchors.is_empty());
        let rev = anchors.iter().filter(|a| a.rev).count();
        assert!(rev as f64 > 0.9 * anchors.len() as f64);
    }

    #[test]
    fn rev_anchor_coordinates_are_consistent() {
        // For a reverse match, aligning revcomp(query) against the
        // reference must make (rpos - qpos) constant along the chain.
        let g = random_genome(30_000, 7);
        let idx = build_one(&g, &IdxOpts::MAP_ONT);
        let query = mmm_seq::revcomp4(&g[5_000..7_000]);
        let mut diag: Vec<i64> = idx
            .collect_anchors(&query)
            .iter()
            .filter(|a| a.rev)
            .map(|a| a.rpos as i64 - a.qpos as i64)
            .collect();
        diag.sort_unstable();
        let mid = diag[diag.len() / 2];
        let near = diag.iter().filter(|&&d| (d - mid).abs() < 10).count();
        assert!(near as f64 > 0.9 * diag.len() as f64);
    }

    #[test]
    fn pack_unpack_round_trip() {
        for (rid, pos, rev) in [
            (0u32, 0u32, false),
            (3, 123_456, true),
            (1000, 1 << 30, false),
            // The exact corners of the bit budget must survive.
            ((MAX_REF_SEQS - 1) as u32, u32::MAX, true),
            ((MAX_REF_SEQS - 1) as u32, 0, false),
        ] {
            assert_eq!(unpack_hit(pack_hit(rid, pos, rev)), (rid, pos, rev));
        }
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "24-bit budget")]
    fn pack_hit_asserts_rid_budget() {
        pack_hit(MAX_REF_SEQS as u32, 0, false);
    }

    #[test]
    fn hit_budget_check_rejects_over_wide_and_over_long_sets() {
        assert!(check_hit_budget(2, [("a", 100), ("b", 100)].into_iter()).is_ok());
        let e =
            check_hit_budget(MAX_REF_SEQS + 1, std::iter::empty::<(&str, usize)>()).unwrap_err();
        assert!(matches!(e, IndexError::HitBudget { .. }));
        assert!(e.to_string().contains("rid budget"), "{e}");
        let e =
            check_hit_budget(2, [("a", 100), ("chrBig", MAX_REF_LEN + 1)].into_iter()).unwrap_err();
        let s = e.to_string();
        assert!(s.contains("chrBig") && s.contains("position budget"), "{s}");
    }

    #[test]
    fn occurrence_cutoff_quantile() {
        // 999 singletons and one 1000-count repeat: cutoff at f=1e-3 keeps
        // the quantile below the repeat.
        let counts = std::iter::repeat_n(1u32, 999).chain(std::iter::once(1000));
        let cut = occurrence_cutoff(counts, 1e-3);
        assert!(cut < 1000);
        assert!(cut >= 10);
    }

    #[test]
    fn repeat_filter_drops_high_occurrence_seeds() {
        // Genome = 60 copies of the same 500 bp unit: every minimizer is
        // highly repetitive, so with a tiny cutoff no anchors survive.
        let unit = random_genome(500, 8);
        let mut g = Vec::new();
        for _ in 0..60 {
            g.extend_from_slice(&unit);
        }
        let mut idx = build_one(&g, &IdxOpts::MAP_ONT);
        idx.max_occ = 10;
        let anchors = idx.collect_anchors(&unit);
        assert!(anchors.is_empty());
    }

    #[test]
    fn ref_window_matches_source() {
        let g = random_genome(1000, 9);
        let idx = build_one(&g, &IdxOpts::MAP_ONT);
        assert_eq!(idx.ref_window(0, 100, 150), g[100..150].to_vec());
        // Clamped at the end.
        assert_eq!(idx.ref_window(0, 990, 2000), g[990..].to_vec());
    }
}
