//! Minimizer sketching (Roberts et al. 2004, as used by minimap2).
//!
//! A `(w, k)` minimizer is the k-mer with the smallest hash among the `w`
//! consecutive k-mers of a window. Hashing uses minimap2's invertible
//! 64-bit mix so that low-complexity k-mers (poly-A etc.) do not dominate;
//! each k-mer is taken on its canonical strand (the lexicographically
//! smaller of forward/reverse-complement encodings); strand-symmetric
//! k-mers are skipped, and windows containing ambiguous bases produce no
//! minimizers.

/// One minimizer: hash value, position of the k-mer's *last* base, the
/// strand whose encoding was canonical, and the number of original bases
/// the k-mer covers (= k, or more under homopolymer compression).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Minimizer {
    pub hash: u64,
    /// 0-based position of the last base of the k-mer (original
    /// coordinates).
    pub pos: u32,
    /// True when the reverse-complement encoding was canonical.
    pub rev: bool,
    /// Original bases spanned (saturated at 255).
    pub span: u8,
}

/// minimap2's invertible integer hash (Thomas Wang's 64-bit mix), masked to
/// `2k` bits.
#[inline]
pub fn hash64(key: u64, mask: u64) -> u64 {
    let mut k = key;
    k = (!k).wrapping_add(k << 21) & mask;
    k ^= k >> 24;
    k = (k.wrapping_add(k << 3)).wrapping_add(k << 8) & mask;
    k ^= k >> 14;
    k = (k.wrapping_add(k << 2)).wrapping_add(k << 4) & mask;
    k ^= k >> 28;
    k = k.wrapping_add(k << 31) & mask;
    k
}

/// Sketch `seq` (nt4 codes) with `(k, w)` minimizers.
///
/// Consecutive windows sharing the same minimizer emit it once, matching
/// minimap2's output density (~`2/(w+1)` of positions).
///
/// ```
/// use mmm_index::minimizers;
/// let seq = mmm_seq::to_nt4(b"ACGTTGCAACGGTCATACGTTGCA");
/// let ms = minimizers(&seq, 11, 5);
/// assert!(!ms.is_empty());
/// // positions are the k-mer end coordinates, strictly increasing
/// assert!(ms.windows(2).all(|p| p[0].pos < p[1].pos));
/// ```
pub fn minimizers(seq: &[u8], k: usize, w: usize) -> Vec<Minimizer> {
    minimizers_impl(seq, k, w, false)
}

/// Sketch with homopolymer compression (minimap2's `-H`, the `map-pb`
/// default): runs of identical bases collapse to one before k-mer
/// extraction, which suits PacBio CLR's indel-dominant error profile.
/// Positions and spans are reported in *original* coordinates.
pub fn minimizers_hpc(seq: &[u8], k: usize, w: usize) -> Vec<Minimizer> {
    minimizers_impl(seq, k, w, true)
}

fn minimizers_impl(seq: &[u8], k: usize, w: usize, hpc: bool) -> Vec<Minimizer> {
    assert!((4..=28).contains(&k), "k must be in [4, 28]");
    assert!((1..256).contains(&w), "w must be in [1, 255]");
    let mut out = Vec::with_capacity(seq.len() / (w + 1) * 2 + 16);
    if seq.len() < k {
        return out;
    }
    let mask: u64 = (1 << (2 * k)) - 1;
    let shift = 2 * (k - 1);
    let (mut fwd, mut rc) = (0u64, 0u64);
    let mut l = 0usize; // (compressed) bases since the last ambiguous base

    // Per-candidate (hash, original end pos, rev, original span);
    // u64::MAX marks "no k-mer". Under HPC one candidate is produced per
    // *compressed* position (the last original base of its run).
    let mut cands: Vec<Minimizer> = Vec::with_capacity(seq.len());
    // Original start positions of the last k compressed symbols.
    let mut starts: std::collections::VecDeque<u32> =
        std::collections::VecDeque::with_capacity(k + 1);
    let mut i = 0usize;
    while i < seq.len() {
        let c = seq[i];
        // With HPC, consume the whole run of identical bases.
        let run_start = i;
        let mut run_end = i + 1;
        if hpc && c < 4 {
            while run_end < seq.len() && seq[run_end] == c {
                run_end += 1;
            }
        }
        if c < 4 {
            fwd = ((fwd << 2) | c as u64) & mask;
            rc = (rc >> 2) | ((3 - c as u64) << shift);
            l += 1;
            starts.push_back(run_start as u32);
            if starts.len() > k {
                starts.pop_front();
            }
        } else {
            l = 0;
            starts.clear();
        }
        let end = run_end - 1;
        // `l >= k` guarantees `starts` holds k tracked symbol starts; the
        // match keeps that invariant panic-free even if it ever broke.
        let m = match starts.front() {
            Some(&start) if l >= k && fwd != rc => {
                let (key, rev) = if fwd < rc { (fwd, false) } else { (rc, true) };
                Minimizer {
                    hash: hash64(key, mask),
                    pos: end as u32,
                    rev,
                    span: (end - start as usize + 1).min(255) as u8,
                }
            }
            _ => Minimizer {
                hash: u64::MAX,
                pos: end as u32,
                rev: false,
                span: 0,
            },
        };
        cands.push(m);
        i = run_end;
    }

    // Sliding-window minimum with a monotonic deque over candidate hashes.
    // The deque keeps indices with non-decreasing hash; ties keep the
    // earliest (leftmost) k-mer, like minimap2's default.
    let mut deque: std::collections::VecDeque<usize> = std::collections::VecDeque::new();
    let mut last_emitted: Option<(u64, u32)> = None;
    for i in 0..cands.len() {
        while let Some(&b) = deque.back() {
            if cands[b].hash > cands[i].hash {
                deque.pop_back();
            } else {
                break;
            }
        }
        deque.push_back(i);
        while let Some(&f) = deque.front() {
            if f + w <= i {
                deque.pop_front();
            } else {
                break;
            }
        }
        // First full window ends at index k-1+w-1; emit from there on. The
        // deque is never empty here (index i was just pushed).
        if i + 1 >= k + w - 1 {
            if let Some(&front) = deque.front() {
                let best = cands[front];
                if best.hash != u64::MAX && last_emitted != Some((best.hash, best.pos)) {
                    out.push(best);
                    last_emitted = Some((best.hash, best.pos));
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmm_seq::{revcomp4, to_nt4};

    #[test]
    fn hash_is_invertible_shaped() {
        // Different keys must give different hashes (invertibility implies
        // injectivity within the mask).
        let mask = (1u64 << 30) - 1;
        let a = hash64(12345, mask);
        let b = hash64(12346, mask);
        assert_ne!(a, b);
        assert!(a <= mask && b <= mask);
    }

    #[test]
    fn short_sequence_has_no_minimizers() {
        assert!(minimizers(&to_nt4(b"ACGTACGT"), 15, 5).is_empty());
    }

    #[test]
    fn w1_emits_every_distinct_kmer_position() {
        let seq = to_nt4(b"ACGTTGCAACGGTCAT");
        let ms = minimizers(&seq, 5, 1);
        // Every position from k-1 on yields a k-mer (none are palindromic
        // here); all must be emitted with w = 1.
        assert_eq!(ms.len(), seq.len() - 5 + 1);
        assert!(ms.windows(2).all(|p| p[0].pos < p[1].pos));
        assert!(ms.iter().all(|m| m.span == 5));
    }

    #[test]
    fn hpc_collapses_homopolymers() {
        // AAACCCGGGAATT compresses to ACGAT; with k=4, w=1 the compressed
        // k-mers are ACGA (original span 0..=10) and CGAT (3..=12).
        // (ACGT-style palindromic k-mers would be strand-ambiguous and
        // skipped, so the example avoids them.)
        let seq = to_nt4(b"AAACCCGGGAATT");
        let ms = minimizers_hpc(&seq, 4, 1);
        assert_eq!(ms.len(), 2);
        assert_eq!(ms[0].pos, 10); // last A of the AA run
        assert_eq!(ms[0].span, 11);
        assert_eq!(ms[1].pos, 12); // last T
        assert_eq!(ms[1].span, 10);
    }

    #[test]
    fn hpc_is_insensitive_to_homopolymer_length_errors() {
        // The hallmark property: expanding a homopolymer run does not
        // change the compressed k-mer stream (hash sequence).
        let a = to_nt4(b"ACGGTCATTACGGACTTACGGTACGATCAG");
        let mut b = a.clone();
        b.insert(3, 2); // extend the GG run
        b.insert(9, 3); // extend a T run
        let ha: Vec<u64> = minimizers_hpc(&a, 7, 3).iter().map(|m| m.hash).collect();
        let hb: Vec<u64> = minimizers_hpc(&b, 7, 3).iter().map(|m| m.hash).collect();
        assert_eq!(ha, hb);
        // Plain sketching *is* disturbed by the same edits.
        let pa: Vec<u64> = minimizers(&a, 7, 3).iter().map(|m| m.hash).collect();
        let pb: Vec<u64> = minimizers(&b, 7, 3).iter().map(|m| m.hash).collect();
        assert_ne!(pa, pb);
    }

    #[test]
    fn density_is_roughly_two_over_w_plus_one() {
        // Pseudo-random 20 kb sequence.
        let mut state = 7u64;
        let seq: Vec<u8> = (0..20_000)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                ((state >> 33) % 4) as u8
            })
            .collect();
        let (k, w) = (15, 10);
        let ms = minimizers(&seq, k, w);
        let density = ms.len() as f64 / seq.len() as f64;
        let expect = 2.0 / (w as f64 + 1.0);
        assert!(
            (density - expect).abs() < expect * 0.25,
            "density {density:.4} vs expected {expect:.4}"
        );
    }

    #[test]
    fn strand_symmetry() {
        // The sketch of the reverse complement contains the same hash set.
        let mut state = 99u64;
        let seq: Vec<u8> = (0..2_000)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                ((state >> 33) % 4) as u8
            })
            .collect();
        let fwd: std::collections::HashSet<u64> = minimizers(&seq, 15, 10)
            .into_iter()
            .map(|m| m.hash)
            .collect();
        let rev: std::collections::HashSet<u64> = minimizers(&revcomp4(&seq), 15, 10)
            .into_iter()
            .map(|m| m.hash)
            .collect();
        let inter = fwd.intersection(&rev).count();
        // Windows shift slightly between strands; most hashes must survive.
        assert!(
            inter as f64 >= 0.8 * fwd.len() as f64,
            "{inter} of {}",
            fwd.len()
        );
    }

    #[test]
    fn ambiguous_bases_suppress_spanning_kmers() {
        let clean = to_nt4(b"ACGTTGCAACGGTCATACGTTGCAACGGTCAT");
        let mut dirty = clean.clone();
        dirty[16] = 4; // N in the middle
        let mc = minimizers(&clean, 9, 3);
        let md = minimizers(&dirty, 9, 3);
        // No minimizer in the dirty sketch spans position 16.
        assert!(md.iter().all(|m| {
            let start = m.pos as usize + 1 - 9;
            !(start..=m.pos as usize).contains(&16)
        }));
        assert!(md.len() < mc.len());
    }

    #[test]
    fn deterministic() {
        let seq = to_nt4(b"ACGTTGCAACGGTCATACGTTGCAACGGTCATGGCCTTAA");
        assert_eq!(minimizers(&seq, 11, 5), minimizers(&seq, 11, 5));
    }
}
