//! Index serialization and the two loading paths of §4.4.2.
//!
//! The on-disk format mirrors minimap2's `.mmi` in spirit: a magic header,
//! per-sequence metadata and packed bases, then the minimizer table as
//! three flat arrays. Crucially the *format* is identical for both loaders;
//! only the I/O mechanism differs:
//!
//! * [`load_index`] replays minimap2's fragmented loader — one small
//!   `read` per field through a [`mmm_io::ChunkedReader`];
//! * [`load_index_mmap`] is manymap's path: `mmap(2)` the file once and
//!   parse in place with zero-copy bulk array reads.

use std::collections::HashMap;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::time::Instant;

use mmm_io::{ByteSource, ChunkedReader, Mmap, SliceSource};
use mmm_seq::PackedSeq;

use crate::error::IndexError;
use crate::index::{MinimizerIndex, RefSeq};

const MAGIC: &[u8; 4] = b"MMX\x01";

/// Timing and syscall statistics from a load, consumed by the Table 2 /
/// Figure 11 harnesses.
#[derive(Clone, Copy, Debug, Default)]
pub struct LoadStats {
    pub seconds: f64,
    pub read_calls: u64,
    pub bytes: u64,
}

/// Write the index to `path`.
pub fn save_index(idx: &MinimizerIndex, path: &Path) -> io::Result<()> {
    let f = std::fs::File::create(path)?;
    let mut w = BufWriter::with_capacity(1 << 20, f);
    w.write_all(MAGIC)?;
    w.write_all(&(idx.k as u32).to_le_bytes())?;
    w.write_all(&(idx.w as u32).to_le_bytes())?;
    w.write_all(&(idx.hpc as u32).to_le_bytes())?;
    w.write_all(&idx.max_occ.to_le_bytes())?;
    w.write_all(&(idx.seqs.len() as u64).to_le_bytes())?;
    for s in &idx.seqs {
        w.write_all(&(s.name.len() as u64).to_le_bytes())?;
        w.write_all(s.name.as_bytes())?;
        w.write_all(&(s.seq.len() as u64).to_le_bytes())?;
        w.write_all(&(s.seq.words().len() as u64).to_le_bytes())?;
        for &word in s.seq.words() {
            w.write_all(&word.to_le_bytes())?;
        }
    }
    // Minimizer table: keys sorted for determinism, then (offset, count),
    // then the positions array.
    let mut keys: Vec<u64> = idx.map.keys().copied().collect();
    keys.sort_unstable();
    w.write_all(&(keys.len() as u64).to_le_bytes())?;
    for &k in &keys {
        w.write_all(&k.to_le_bytes())?;
    }
    for &k in &keys {
        let (off, cnt) = idx.map[&k];
        w.write_all(&off.to_le_bytes())?;
        w.write_all(&(cnt as u64).to_le_bytes())?;
    }
    w.write_all(&(idx.positions.len() as u64).to_le_bytes())?;
    for &p in &idx.positions {
        w.write_all(&p.to_le_bytes())?;
    }
    w.flush()
}

/// Read a `u64` element count and sanity-check it against the bytes left in
/// the source. Every counted element occupies at least `min_bytes_each`
/// bytes on disk, so a count that claims more data than remains is corrupt —
/// rejecting it here turns a hostile/bit-flipped prefix into `InvalidData`
/// instead of a multi-gigabyte allocation.
fn bounded_count<S: ByteSource>(src: &mut S, min_bytes_each: u64, what: &str) -> io::Result<usize> {
    let n = src.take_u64()?;
    if let Some(rem) = src.remaining_hint() {
        match n.checked_mul(min_bytes_each) {
            Some(need) if need <= rem => {}
            _ => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("{what} count {n} exceeds the {rem} bytes remaining"),
                ))
            }
        }
    }
    usize::try_from(n).map_err(|_| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("{what} count {n} does not fit in memory"),
        )
    })
}

fn parse_index_inner<S: ByteSource>(src: &mut S) -> io::Result<MinimizerIndex> {
    let mut magic = [0u8; 4];
    src.take_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "bad index magic",
        ));
    }
    let k = src.take_u32()? as usize;
    let w = src.take_u32()? as usize;
    let hpc = src.take_u32()? != 0;
    let max_occ = src.take_u32()?;
    // Each sequence record is at least 24 bytes (three u64 length fields).
    let n_seqs = bounded_count(src, 24, "sequence")?;
    let mut seqs = Vec::with_capacity(n_seqs);
    for _ in 0..n_seqs {
        let name = String::from_utf8_lossy(&src.take_bytes()?).into_owned();
        let len = src.take_u64()? as usize;
        let words = src.take_u32_vec()?;
        // `PackedSeq::from_raw` asserts this invariant; a corrupt image must
        // surface as a typed error, not a panic.
        if words.len() != len.div_ceil(16) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "sequence '{name}': {} packed words cannot hold {len} bases",
                    words.len()
                ),
            ));
        }
        seqs.push(RefSeq {
            name,
            seq: PackedSeq::from_raw(words, len),
        });
    }
    // Each key contributes 8 bytes to the key array and 16 to (off, cnt).
    let n_keys = bounded_count(src, 24, "minimizer key")?;
    let keys = {
        let mut v = Vec::with_capacity(n_keys);
        for _ in 0..n_keys {
            v.push(src.take_u64()?);
        }
        v
    };
    let mut map = HashMap::with_capacity(n_keys);
    for &key in &keys {
        let off = src.take_u64()?;
        let cnt = src.take_u64()? as u32;
        map.insert(key, (off, cnt));
    }
    let positions = src.take_u64_vec()?;
    // The same bit-budget contract `MinimizerIndex::build` enforces: every
    // packed hit's rid is used as a direct index into the sequence table, so
    // a corrupt or hostile image carrying an out-of-range rid must surface
    // as typed corruption here, not as a panic (or silent mismap) at seeding
    // time.
    for (i, &p) in positions.iter().enumerate() {
        let (rid, _, _) = crate::index::unpack_hit(p);
        if rid as usize >= seqs.len() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "packed hit {i} names reference {rid}, but only {} sequence(s) exist",
                    seqs.len()
                ),
            ));
        }
    }
    Ok(MinimizerIndex {
        k,
        w,
        hpc,
        seqs,
        map,
        positions,
        max_occ,
    })
}

/// Parse an index image from any [`ByteSource`].
///
/// All failures are typed: a malformed or truncated image yields
/// [`IndexError::Corrupt`] with the byte offset where parsing stopped, a
/// device fault yields [`IndexError::Io`]. This never panics and never
/// allocates more than the source can actually deliver.
pub fn parse_index<S: ByteSource>(src: &mut S) -> Result<MinimizerIndex, IndexError> {
    parse_index_inner(src).map_err(|e| IndexError::from_parse(src.stream_position(), e))
}

/// minimap2's loading path: fragmented buffered reads.
pub fn load_index(path: &Path) -> Result<(MinimizerIndex, LoadStats), IndexError> {
    let start = Instant::now();
    let mut r = ChunkedReader::open(path, 16 * 1024).map_err(|e| IndexError::Open {
        path: path.to_path_buf(),
        source: e,
    })?;
    let idx = parse_index(&mut r)?;
    Ok((
        idx,
        LoadStats {
            seconds: start.elapsed().as_secs_f64(),
            read_calls: r.read_calls(),
            bytes: r.bytes_read(),
        },
    ))
}

/// manymap's loading path: one `mmap`, zero-copy parse (§4.4.2).
pub fn load_index_mmap(path: &Path) -> Result<(MinimizerIndex, LoadStats), IndexError> {
    let start = Instant::now();
    let map = Mmap::open(path).map_err(|e| IndexError::Open {
        path: path.to_path_buf(),
        source: e,
    })?;
    let mut src = SliceSource::new(&map);
    let idx = parse_index(&mut src)?;
    let bytes = src.position() as u64;
    Ok((
        idx,
        LoadStats {
            seconds: start.elapsed().as_secs_f64(),
            read_calls: 1,
            bytes,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::IdxOpts;
    use mmm_seq::{nt4_decode, SeqRecord};

    fn sample_index() -> MinimizerIndex {
        let mut state = 31u64;
        let g: Vec<u8> = (0..30_000)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                ((state >> 33) % 4) as u8
            })
            .collect();
        let recs = vec![
            SeqRecord::new("chrA", nt4_decode(&g[..20_000])),
            SeqRecord::new("chrB", nt4_decode(&g[20_000..])),
        ];
        MinimizerIndex::build(&recs, &IdxOpts::MAP_ONT).unwrap()
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("mmm-index-{name}-{}", std::process::id()))
    }

    fn assert_same(a: &MinimizerIndex, b: &MinimizerIndex) {
        assert_eq!(a.k, b.k);
        assert_eq!(a.w, b.w);
        assert_eq!(a.hpc, b.hpc);
        assert_eq!(a.max_occ, b.max_occ);
        assert_eq!(a.seqs.len(), b.seqs.len());
        for (x, y) in a.seqs.iter().zip(&b.seqs) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.seq, y.seq);
        }
        assert_eq!(a.num_minimizers(), b.num_minimizers());
        assert_eq!(a.num_positions(), b.num_positions());
        // Spot-check lookups agree.
        for (&k, _) in a.map.iter().take(100) {
            assert_eq!(a.lookup(k), b.lookup(k));
        }
    }

    #[test]
    fn round_trip_buffered() {
        let idx = sample_index();
        let p = tmp("buffered");
        save_index(&idx, &p).unwrap();
        let (back, stats) = load_index(&p).unwrap();
        assert_same(&idx, &back);
        // The fragmented loader issues many reads — that is the point.
        assert!(stats.read_calls > 1000, "read_calls={}", stats.read_calls);
        std::fs::remove_file(&p).unwrap();
    }

    #[test]
    fn round_trip_mmap() {
        let idx = sample_index();
        let p = tmp("mmap");
        save_index(&idx, &p).unwrap();
        let (back, stats) = load_index_mmap(&p).unwrap();
        assert_same(&idx, &back);
        assert_eq!(stats.read_calls, 1);
        std::fs::remove_file(&p).unwrap();
    }

    #[test]
    fn both_loaders_agree() {
        let idx = sample_index();
        let p = tmp("agree");
        save_index(&idx, &p).unwrap();
        let (a, _) = load_index(&p).unwrap();
        let (b, _) = load_index_mmap(&p).unwrap();
        assert_same(&a, &b);
        std::fs::remove_file(&p).unwrap();
    }

    #[test]
    fn queries_survive_round_trip() {
        let idx = sample_index();
        let p = tmp("query");
        save_index(&idx, &p).unwrap();
        let (back, _) = load_index_mmap(&p).unwrap();
        let q = back.seqs[0].seq.slice(5_000, 6_000);
        let a1 = idx.collect_anchors(&q);
        let a2 = back.collect_anchors(&q);
        assert_eq!(a1, a2);
        assert!(!a1.is_empty());
        std::fs::remove_file(&p).unwrap();
    }

    #[test]
    fn corrupt_magic_rejected() {
        let p = tmp("corrupt");
        std::fs::write(&p, b"NOPE").unwrap();
        assert!(load_index(&p).is_err());
        assert!(load_index_mmap(&p).is_err());
        std::fs::remove_file(&p).unwrap();
    }
}
