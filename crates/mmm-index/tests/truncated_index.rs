//! Hostile-input suite for the index deserializer.
//!
//! Property: no byte stream — truncated, bit-flipped, or length-patched —
//! may make [`parse_index`] panic or allocate unboundedly. Every failure
//! must surface as a typed [`IndexError`], and a clean mid-stream I/O error
//! must be distinguishable from corruption.

use mmm_index::{parse_index, save_index, IdxOpts, IndexError, MinimizerIndex};
use mmm_io::{ByteSource, FaultMode, FaultSource, SliceSource};
use mmm_seq::SeqRecord;
use proptest::prelude::*;

/// `expect_err` needs `Debug` on the success type; `MinimizerIndex` has
/// none, so unwrap the error by hand.
fn must_fail(r: Result<MinimizerIndex, IndexError>, ctx: &str) -> IndexError {
    match r {
        Ok(_) => panic!("{ctx}: hostile input parsed as a full index"),
        Err(e) => e,
    }
}

/// Build a small two-sequence index and return its on-disk bytes.
fn serialized_index() -> Vec<u8> {
    let refs = vec![
        SeqRecord::new(
            "chrA",
            b"ACGTACGTAGGCTAGCTAGGACTGACTGATCGATCGTACG".repeat(40),
        ),
        SeqRecord::new(
            "chrB",
            b"TTGACCAGTTGACCAGCCGGAATTCCGGTTAACCGGTTAA".repeat(25),
        ),
    ];
    let idx = MinimizerIndex::build(&refs, &IdxOpts::MAP_ONT).unwrap();
    let path = std::env::temp_dir().join(format!(
        "mmm-truncated-index-{}-{:?}.mmx",
        std::process::id(),
        std::thread::current().id()
    ));
    save_index(&idx, &path).unwrap();
    let bytes = std::fs::read(&path).unwrap();
    std::fs::remove_file(&path).unwrap();
    bytes
}

#[test]
fn full_file_round_trips() {
    let bytes = serialized_index();
    let idx = parse_index(&mut SliceSource::new(&bytes)).unwrap();
    assert_eq!(idx.seqs.len(), 2);
    assert!(idx.num_minimizers() > 0);
}

/// Exhaustive: every strict prefix of a valid index must yield a typed
/// error — never a panic, never an `Ok`.
#[test]
fn every_strict_prefix_is_a_typed_error() {
    let bytes = serialized_index();
    for len in 0..bytes.len() {
        let mut src = SliceSource::new(&bytes[..len]);
        match parse_index(&mut src) {
            Ok(_) => panic!(
                "prefix of {len}/{} bytes parsed as a full index",
                bytes.len()
            ),
            Err(e) => {
                // Truncation is corruption (UnexpectedEof), and the message
                // must carry a byte offset for the operator.
                assert!(e.is_corrupt(), "prefix {len}: unexpected kind: {e}");
                assert!(e.to_string().contains("byte"), "prefix {len}: {e}");
            }
        }
    }
}

/// Length prefixes patched to hostile values must be rejected as corrupt
/// before any allocation is attempted, not passed to `Vec::with_capacity`.
#[test]
fn hostile_length_prefixes_are_rejected_without_allocating() {
    let bytes = serialized_index();
    // Offset 20: the u64 sequence count (after magic + k/w/hpc/max_occ).
    // Offset 28: the u64 name-length prefix of the first sequence.
    for offset in [20usize, 28] {
        for patch in [u64::MAX, u64::MAX / 8, 1 << 40, (bytes.len() as u64) + 1] {
            let mut evil = bytes.clone();
            evil[offset..offset + 8].copy_from_slice(&patch.to_le_bytes());
            let err = must_fail(
                parse_index(&mut SliceSource::new(&evil)),
                "patched length prefix",
            );
            assert!(err.is_corrupt(), "offset {offset} patch {patch:#x}: {err}");
        }
    }
}

/// Blast every aligned u64 of the file with 0xFF: the parser may accept or
/// reject, but must never panic and never balloon allocation.
/// A position word patched to name a reference past the sequence table must
/// be rejected as corruption at load time: unpacked rids are direct indices
/// into `seqs`, so letting one through would panic (or mismap) at seeding.
#[test]
fn out_of_range_packed_rid_is_corruption() {
    let bytes = serialized_index();
    // The positions array is the last section: [u64 count][u64 words...].
    // Patch the final word to a hit with rid = 2^24 - 1 (far past 2 seqs).
    let mut patched = bytes.clone();
    let n = patched.len();
    let hostile: u64 = ((1u64 << 24) - 1) << 40;
    patched[n - 8..].copy_from_slice(&hostile.to_le_bytes());
    let e = must_fail(
        parse_index(&mut SliceSource::new(&patched)),
        "out-of-range rid",
    );
    assert!(e.is_corrupt(), "{e}");
    assert!(e.to_string().contains("names reference"), "{e}");
}

#[test]
fn corruption_sweep_never_panics() {
    let bytes = serialized_index();
    for offset in (0..bytes.len().saturating_sub(8)).step_by(8) {
        let mut evil = bytes.clone();
        for b in &mut evil[offset..offset + 8] {
            *b ^= 0xFF;
        }
        let _ = parse_index(&mut SliceSource::new(&evil));
    }
}

/// A device error mid-stream must surface as an I/O error (retryable), not
/// be misreported as file corruption.
#[test]
fn mid_stream_fault_is_io_not_corruption() {
    let bytes = serialized_index();
    let cut = bytes.len() as u64 / 2;

    let mut src = FaultSource::new(SliceSource::new(&bytes), cut, FaultMode::Error);
    let err = must_fail(parse_index(&mut src), "device fault");
    assert!(!err.is_corrupt(), "device fault misclassified: {err}");
    assert!(matches!(err, IndexError::Io { .. }));
    assert!(err.to_string().contains("injected"), "{err}");

    // The same cut point as a truncation is corruption.
    let mut src = FaultSource::new(SliceSource::new(&bytes), cut, FaultMode::Truncate);
    let err = must_fail(parse_index(&mut src), "truncation");
    assert!(err.is_corrupt(), "truncation misclassified: {err}");
}

proptest! {
    /// Randomized variant of the sweep: arbitrary 8-byte patches at
    /// arbitrary offsets never panic the parser.
    #[test]
    fn random_patches_never_panic(offset in 0usize..4096, patch in 0u64..u64::MAX) {
        let bytes = serialized_index();
        let offset = offset % bytes.len().saturating_sub(8).max(1);
        let mut evil = bytes.clone();
        let patch = patch.to_le_bytes();
        let end = (offset + 8).min(evil.len());
        evil[offset..end].copy_from_slice(&patch[..end - offset]);
        let _ = parse_index(&mut SliceSource::new(&evil));
    }

    /// Random fault points: the parse always terminates with a typed error
    /// whose offset never exceeds the number of bytes actually delivered.
    #[test]
    fn random_fault_points_yield_typed_errors(cut in 0u64..8192) {
        let bytes = serialized_index();
        let cut = cut % bytes.len() as u64;
        let mut src = FaultSource::new(SliceSource::new(&bytes), cut, FaultMode::Error);
        let err = must_fail(parse_index(&mut src), "strict-prefix fault");
        prop_assert!(src.stream_position().unwrap_or(0) <= cut);
        prop_assert!(!err.to_string().is_empty());
    }
}
