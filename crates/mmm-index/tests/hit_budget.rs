//! Regression tests for the packed-hit bit budget.
//!
//! A hit is packed as `rid << 40 | pos << 1 | strand`, so reference ids have
//! 24 bits and positions 39. The old code packed whatever it was handed:
//! reference #2^24 silently wrapped into reference #0's hits and mismapped
//! every read seeding there. `MinimizerIndex::build` must refuse such sets
//! with a typed error instead.

use mmm_index::{check_hit_budget, IdxOpts, IndexError, MinimizerIndex, MAX_REF_SEQS};
use mmm_seq::SeqRecord;

/// A crafted reference set one past the 24-bit rid budget must fail loudly
/// at build time. The records are empty (no allocation per record), so the
/// only cost is the 2^24-entry vector itself; the count check runs before
/// any sketching, so the failure is immediate.
#[test]
fn over_budget_reference_set_fails_loudly() {
    let refs = vec![SeqRecord::new(String::new(), Vec::new()); MAX_REF_SEQS + 1];
    let err = match MinimizerIndex::build(&refs, &IdxOpts::MAP_ONT) {
        Ok(_) => panic!("over-budget reference set built without error"),
        Err(e) => e,
    };
    assert!(matches!(err, IndexError::HitBudget { .. }), "{err}");
    let msg = err.to_string();
    assert!(
        msg.contains("packed-hit") && msg.contains("rid budget"),
        "error must name the budget: {msg}"
    );
}

/// The largest set that still fits must build.
#[test]
fn budget_boundary_is_exact() {
    assert!(check_hit_budget(
        MAX_REF_SEQS,
        std::iter::repeat_n(("r", 1usize), MAX_REF_SEQS)
    )
    .is_ok());
    assert!(check_hit_budget(
        MAX_REF_SEQS + 1,
        std::iter::repeat_n(("r", 1usize), MAX_REF_SEQS + 1)
    )
    .is_err());
}

/// An in-budget multi-reference build still works and anchors resolve to
/// the correct reference (the behaviour the budget check protects).
#[test]
fn in_budget_multi_reference_build_maps_to_right_rid() {
    let mut state = 99u64;
    let mut genome = |n: usize| -> Vec<u8> {
        (0..n)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                ((state >> 33) % 4) as u8
            })
            .collect()
    };
    let g0 = genome(20_000);
    let g1 = genome(20_000);
    let refs = vec![
        SeqRecord::new("chrA", mmm_seq::nt4_decode(&g0)),
        SeqRecord::new("chrB", mmm_seq::nt4_decode(&g1)),
    ];
    let idx = MinimizerIndex::build(&refs, &IdxOpts::MAP_ONT).unwrap();
    let anchors = idx.collect_anchors(&g1[5_000..7_000]);
    assert!(!anchors.is_empty());
    let on_b = anchors.iter().filter(|a| a.rid == 1).count();
    assert!(
        on_b as f64 > 0.9 * anchors.len() as f64,
        "{on_b}/{} anchors on chrB",
        anchors.len()
    );
}
