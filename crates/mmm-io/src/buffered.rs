//! The baseline loading path: many small buffered reads.
//!
//! minimap2's index loader (`mm_idx_load`) performs one `fread` per field —
//! bucket sizes, then each bucket's key/value arrays, then the packed
//! sequence — i.e. a highly fragmented read pattern. [`ChunkedReader`]
//! reproduces that behaviour: every `read_exact` call goes through a small
//! intermediate buffer, and the per-call overhead can be made explicit for
//! the KNL model (where single-thread I/O syscall cost dominates, §4.4.2).

use std::fs::File;
use std::io::{self, BufReader, Read};
use std::path::Path;

/// Buffered file reader issuing small reads, with syscall-count accounting.
pub struct ChunkedReader {
    inner: BufReader<File>,
    reads: u64,
    bytes: u64,
    /// File length at open time, when the filesystem reports one; lets the
    /// [`crate::ByteSource`] impl bound length-prefixed reads.
    len: Option<u64>,
}

impl ChunkedReader {
    /// Open `path` with a given buffer capacity. minimap2 uses stdio's
    /// default (4–64 KiB depending on libc); 16 KiB is representative.
    pub fn open(path: &Path, buf_capacity: usize) -> io::Result<Self> {
        let f = File::open(path)?;
        let len = f.metadata().ok().map(|m| m.len());
        Ok(ChunkedReader {
            inner: BufReader::with_capacity(buf_capacity.max(16), f),
            reads: 0,
            bytes: 0,
            len,
        })
    }

    /// Number of `read` calls issued so far.
    pub fn read_calls(&self) -> u64 {
        self.reads
    }

    /// Total bytes delivered so far.
    pub fn bytes_read(&self) -> u64 {
        self.bytes
    }

    /// Bytes left before end of file, when the length is known.
    pub fn remaining(&self) -> Option<u64> {
        self.len.map(|l| l.saturating_sub(self.bytes))
    }

    /// Read exactly `buf.len()` bytes. Byte accounting reflects completed
    /// reads only, so [`bytes_read`](Self::bytes_read) doubles as the error
    /// offset after a failure.
    pub fn read_exact(&mut self, buf: &mut [u8]) -> io::Result<()> {
        self.reads += 1;
        self.inner.read_exact(buf)?;
        self.bytes += buf.len() as u64;
        Ok(())
    }

    /// Read a little-endian u64 (the index format's scalar fields).
    pub fn read_u64(&mut self) -> io::Result<u64> {
        let mut b = [0u8; 8];
        self.read_exact(&mut b)?;
        Ok(u64::from_le_bytes(b))
    }

    /// Read a little-endian u32.
    pub fn read_u32(&mut self) -> io::Result<u32> {
        let mut b = [0u8; 4];
        self.read_exact(&mut b)?;
        Ok(u32::from_le_bytes(b))
    }

    /// Drain the remainder of the file.
    pub fn read_to_end(&mut self, out: &mut Vec<u8>) -> io::Result<usize> {
        self.reads += 1;
        let n = self.inner.read_to_end(out)?;
        self.bytes += n as u64;
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn tmpfile(name: &str, contents: &[u8]) -> std::path::PathBuf {
        let p = std::env::temp_dir().join(format!("mmm-io-chunked-{name}-{}", std::process::id()));
        let mut f = File::create(&p).unwrap();
        f.write_all(contents).unwrap();
        p
    }

    #[test]
    fn scalar_reads() {
        let mut data = Vec::new();
        data.extend_from_slice(&42u64.to_le_bytes());
        data.extend_from_slice(&7u32.to_le_bytes());
        data.extend_from_slice(b"tail");
        let p = tmpfile("scalars", &data);
        let mut r = ChunkedReader::open(&p, 4096).unwrap();
        assert_eq!(r.read_u64().unwrap(), 42);
        assert_eq!(r.read_u32().unwrap(), 7);
        let mut rest = Vec::new();
        r.read_to_end(&mut rest).unwrap();
        assert_eq!(rest, b"tail");
        assert_eq!(r.read_calls(), 3);
        assert_eq!(r.bytes_read(), data.len() as u64);
        std::fs::remove_file(&p).unwrap();
    }

    #[test]
    fn short_file_errors() {
        let p = tmpfile("short", b"abc");
        let mut r = ChunkedReader::open(&p, 64).unwrap();
        assert!(r.read_u64().is_err());
        std::fs::remove_file(&p).unwrap();
    }
}
