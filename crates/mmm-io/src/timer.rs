//! Stage timing, the measurement backbone of Table 2 and Figure 11.
//!
//! The paper breaks execution into five stages: *Load Index*, *Load Query*,
//! *Seed & Chain*, *Align*, *Output*. [`StageTimer`] accumulates wall time
//! (or externally supplied simulated time) per stage and renders the
//! percentage breakdown the paper reports.

use std::time::{Duration, Instant};

/// The pipeline stages of the paper's breakdown tables.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Stage {
    LoadIndex,
    LoadQuery,
    SeedChain,
    Align,
    Output,
}

impl Stage {
    /// All stages in the paper's row order.
    pub const ALL: [Stage; 5] = [
        Stage::LoadIndex,
        Stage::LoadQuery,
        Stage::SeedChain,
        Stage::Align,
        Stage::Output,
    ];

    /// Row label as printed in Table 2.
    pub fn label(self) -> &'static str {
        match self {
            Stage::LoadIndex => "Load Index",
            Stage::LoadQuery => "Load Query",
            Stage::SeedChain => "Seed & Chain",
            Stage::Align => "Align",
            Stage::Output => "Output",
        }
    }

    fn idx(self) -> usize {
        match self {
            Stage::LoadIndex => 0,
            Stage::LoadQuery => 1,
            Stage::SeedChain => 2,
            Stage::Align => 3,
            Stage::Output => 4,
        }
    }
}

/// Accumulates per-stage durations. Thread-safe accumulation is done by
/// merging per-thread timers ([`StageTimer::merge`]).
#[derive(Clone, Debug, Default)]
pub struct StageTimer {
    acc: [Duration; 5],
}

impl StageTimer {
    /// Fresh timer with all stages at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Time a closure and charge it to `stage`.
    pub fn time<T>(&mut self, stage: Stage, f: impl FnOnce() -> T) -> T {
        let start = Instant::now();
        let out = f();
        self.acc[stage.idx()] += start.elapsed();
        out
    }

    /// Charge an externally measured (e.g. simulated) duration.
    pub fn add(&mut self, stage: Stage, d: Duration) {
        self.acc[stage.idx()] += d;
    }

    /// Charge simulated seconds.
    pub fn add_secs(&mut self, stage: Stage, secs: f64) {
        self.acc[stage.idx()] += Duration::from_secs_f64(secs.max(0.0));
    }

    /// Accumulated time for one stage.
    pub fn get(&self, stage: Stage) -> Duration {
        self.acc[stage.idx()]
    }

    /// Sum over all stages.
    pub fn total(&self) -> Duration {
        self.acc.iter().sum()
    }

    /// Merge another timer (e.g. from a worker thread) into this one.
    pub fn merge(&mut self, other: &StageTimer) {
        for i in 0..5 {
            self.acc[i] += other.acc[i];
        }
    }

    /// `(label, seconds, percentage)` rows in Table 2 order.
    pub fn breakdown(&self) -> Vec<(&'static str, f64, f64)> {
        let total = self.total().as_secs_f64();
        Stage::ALL
            .iter()
            .map(|&s| {
                let t = self.get(s).as_secs_f64();
                (
                    s.label(),
                    t,
                    if total > 0.0 { 100.0 * t / total } else { 0.0 },
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_and_totals() {
        let mut t = StageTimer::new();
        t.add(Stage::Align, Duration::from_millis(300));
        t.add(Stage::Align, Duration::from_millis(200));
        t.add(Stage::Output, Duration::from_millis(500));
        assert_eq!(t.get(Stage::Align), Duration::from_millis(500));
        assert_eq!(t.total(), Duration::from_secs(1));
    }

    #[test]
    fn breakdown_percentages_sum_to_100() {
        let mut t = StageTimer::new();
        for (i, s) in Stage::ALL.iter().enumerate() {
            t.add(*s, Duration::from_millis(100 * (i as u64 + 1)));
        }
        let pct: f64 = t.breakdown().iter().map(|r| r.2).sum();
        assert!((pct - 100.0).abs() < 1e-9);
    }

    #[test]
    fn time_closure_returns_value() {
        let mut t = StageTimer::new();
        let v = t.time(Stage::SeedChain, || 41 + 1);
        assert_eq!(v, 42);
        let _ = t.get(Stage::SeedChain); // may be ~0; reading back must not panic
    }

    #[test]
    fn merge_adds_componentwise() {
        let mut a = StageTimer::new();
        a.add(Stage::LoadIndex, Duration::from_secs(1));
        let mut b = StageTimer::new();
        b.add(Stage::LoadIndex, Duration::from_secs(2));
        b.add(Stage::Align, Duration::from_secs(3));
        a.merge(&b);
        assert_eq!(a.get(Stage::LoadIndex), Duration::from_secs(3));
        assert_eq!(a.get(Stage::Align), Duration::from_secs(3));
    }

    #[test]
    fn empty_breakdown_is_zero_percent() {
        let rows = StageTimer::new().breakdown();
        assert!(rows.iter().all(|r| r.2 == 0.0));
    }
}
