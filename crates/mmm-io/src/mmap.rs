//! Read-only memory mapping of files.
//!
//! This is the substrate behind the paper's §4.4.2 optimization: the on-disk
//! index is mapped into the address space and parsed in place, turning the
//! original fragmented read pattern into sequential page-fault-driven reads.
//! Only `mmap`, `munmap` and `madvise` are used, declared directly against
//! the platform C library — the build environment has no registry access, so
//! we do not depend on the `libc` crate for three symbols.

use std::ffi::{c_int, c_void};
use std::fs::File;
use std::io;
use std::os::unix::io::AsRawFd;
use std::path::Path;
use std::ptr;
use std::slice;

mod sys {
    use std::ffi::{c_int, c_void};

    // Values from the Linux UAPI headers; stable ABI on every Linux target.
    pub const PROT_READ: c_int = 0x1;
    pub const MAP_PRIVATE: c_int = 0x02;
    pub const MADV_SEQUENTIAL: c_int = 2;
    pub const MAP_FAILED: *mut c_void = usize::MAX as *mut c_void;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> c_int;
        pub fn madvise(addr: *mut c_void, len: usize, advice: c_int) -> c_int;
    }
}

/// A read-only memory-mapped file.
///
/// Dereferences to `&[u8]` covering the whole file. The mapping is unmapped
/// on drop. Zero-length files are handled without calling `mmap` (POSIX
/// forbids zero-length mappings).
pub struct Mmap {
    ptr: *mut c_void,
    len: usize,
}

// SAFETY: the mapping is read-only and owned; sharing references across
// threads is no different from sharing a `&[u8]`.
unsafe impl Send for Mmap {}
unsafe impl Sync for Mmap {}

impl Mmap {
    /// Map `path` read-only and advise the kernel of sequential access.
    pub fn open(path: &Path) -> io::Result<Self> {
        let file = File::open(path)?;
        let len = file.metadata()?.len() as usize;
        if len == 0 {
            return Ok(Mmap {
                ptr: ptr::null_mut(),
                len: 0,
            });
        }
        // SAFETY: fd is valid for the duration of the call; we request a
        // fresh private read-only mapping and check the result.
        let p = unsafe {
            sys::mmap(
                ptr::null_mut(),
                len,
                sys::PROT_READ,
                sys::MAP_PRIVATE,
                file.as_raw_fd() as c_int,
                0,
            )
        };
        if p == sys::MAP_FAILED {
            return Err(io::Error::last_os_error());
        }
        // Sequential advice matches the index parser's access pattern; best
        // effort, failure is harmless.
        // SAFETY: p/len describe the mapping we just created.
        unsafe {
            sys::madvise(p, len, sys::MADV_SEQUENTIAL);
        }
        Ok(Mmap { ptr: p, len })
    }

    /// The mapped bytes.
    #[inline]
    pub fn as_slice(&self) -> &[u8] {
        if self.len == 0 {
            &[]
        } else {
            // SAFETY: ptr/len describe a live PROT_READ mapping owned by self.
            unsafe { slice::from_raw_parts(self.ptr as *const u8, self.len) }
        }
    }

    /// Length of the mapping in bytes.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True for an empty mapping.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl std::ops::Deref for Mmap {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Drop for Mmap {
    fn drop(&mut self) {
        if !self.ptr.is_null() {
            // SAFETY: ptr/len came from a successful mmap and are unmapped
            // exactly once.
            unsafe {
                sys::munmap(self.ptr, self.len);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn tmpfile(name: &str, contents: &[u8]) -> std::path::PathBuf {
        let p = std::env::temp_dir().join(format!("mmm-io-test-{name}-{}", std::process::id()));
        let mut f = File::create(&p).unwrap();
        f.write_all(contents).unwrap();
        p
    }

    #[test]
    fn maps_file_contents() {
        let p = tmpfile("basic", b"hello mmap world");
        let m = Mmap::open(&p).unwrap();
        assert_eq!(&*m, b"hello mmap world");
        assert_eq!(m.len(), 16);
        drop(m);
        std::fs::remove_file(&p).unwrap();
    }

    #[test]
    fn zero_length_file() {
        let p = tmpfile("empty", b"");
        let m = Mmap::open(&p).unwrap();
        assert!(m.is_empty());
        assert_eq!(m.as_slice(), b"");
        std::fs::remove_file(&p).unwrap();
    }

    #[test]
    fn large_file_round_trip() {
        let data: Vec<u8> = (0..1_000_000u32).map(|i| (i % 251) as u8).collect();
        let p = tmpfile("large", &data);
        let m = Mmap::open(&p).unwrap();
        assert_eq!(&*m, &data[..]);
        std::fs::remove_file(&p).unwrap();
    }

    #[test]
    fn missing_file_errors() {
        assert!(Mmap::open(Path::new("/nonexistent/never/file")).is_err());
    }
}
