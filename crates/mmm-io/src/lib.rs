//! `mmm-io` — byte-source substrate for manymap.
//!
//! Section 4.4.2 of the paper replaces minimap2's fragmented, small-read
//! index loading with memory-mapped I/O, halving the index load time on KNL.
//! This crate provides both sides of that comparison:
//!
//! * [`mmap::Mmap`] — a real `mmap(2)` wrapper (read-only, with
//!   `madvise(MADV_SEQUENTIAL)`), used by the fast index-loading path;
//! * [`buffered::ChunkedReader`] — a deliberately minimap2-like buffered
//!   reader that issues many small reads, used by the baseline path;
//! * [`source::ByteSource`] — the common cursor abstraction the index
//!   deserializer is written against, so the two paths share one parser;
//! * [`timer`] — stage timers used by every breakdown experiment
//!   (Table 2, Figure 11);
//! * [`fault`] — fault-injection wrappers used by the robustness suite.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod buffered;
pub mod fault;
pub mod mmap;
pub mod source;
pub mod timer;

pub use buffered::ChunkedReader;
pub use fault::{FaultMode, FaultSource};
pub use mmap::Mmap;
pub use source::{ByteSource, SliceSource};
pub use timer::{Stage, StageTimer};
