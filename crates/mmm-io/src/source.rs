//! The cursor abstraction shared by the two index-loading paths.
//!
//! The index deserializer is written once against [`ByteSource`]; plugging in
//! a [`SliceSource`] over an [`crate::Mmap`] gives the manymap path, plugging
//! in a [`crate::ChunkedReader`] gives the minimap2 path. This mirrors how
//! the paper changes *only* the I/O mechanism while keeping the format fixed.

use std::io;

/// Initial capacity granted to length-prefixed reads whose source cannot
/// bound its remaining bytes: growth past this point is paid for by actual
/// delivered bytes, so a hostile prefix hits `UnexpectedEof` before it can
/// drive an out-of-memory abort.
const UNBOUNDED_PREALLOC: usize = 1 << 16;

fn corrupt(offset: Option<u64>, msg: impl std::fmt::Display) -> io::Error {
    let at = match offset {
        Some(o) => format!(" at byte {o}"),
        None => String::new(),
    };
    io::Error::new(io::ErrorKind::InvalidData, format!("{msg}{at}"))
}

/// A forward-only cursor over bytes.
pub trait ByteSource {
    /// Fill `buf` completely or fail.
    fn take_exact(&mut self, buf: &mut [u8]) -> io::Result<()>;

    /// Borrow the next `n` bytes zero-copy if the source supports it
    /// (the mmap path does; streaming sources return `None`).
    fn borrow_exact(&mut self, _n: usize) -> Option<&[u8]> {
        None
    }

    /// Bytes consumed so far, when the source tracks it (used to locate
    /// corruption in error messages).
    fn stream_position(&self) -> Option<u64> {
        None
    }

    /// Upper bound on the bytes still available, when cheaply knowable.
    /// Length-prefixed reads validate their prefix against this bound, so a
    /// corrupt or hostile prefix is a typed [`io::ErrorKind::InvalidData`]
    /// instead of a multi-gigabyte allocation.
    fn remaining_hint(&self) -> Option<u64> {
        None
    }

    /// Little-endian u64.
    fn take_u64(&mut self) -> io::Result<u64> {
        let mut b = [0u8; 8];
        self.take_exact(&mut b)?;
        Ok(u64::from_le_bytes(b))
    }

    /// Little-endian u32.
    fn take_u32(&mut self) -> io::Result<u32> {
        let mut b = [0u8; 4];
        self.take_exact(&mut b)?;
        Ok(u32::from_le_bytes(b))
    }

    /// Little-endian i32.
    fn take_i32(&mut self) -> io::Result<i32> {
        Ok(self.take_u32()? as i32)
    }

    /// Read a `u64` element-count prefix for elements of `elem_size` bytes,
    /// validating it against [`remaining_hint`](Self::remaining_hint) and
    /// rejecting byte-size overflow.
    fn take_len_prefix(&mut self, elem_size: u64) -> io::Result<usize> {
        let at = self.stream_position();
        let n = self.take_u64()?;
        let bytes = n.checked_mul(elem_size).ok_or_else(|| {
            corrupt(
                at,
                format!("length prefix {n} (x{elem_size} bytes) overflows"),
            )
        })?;
        if let Some(rem) = self.remaining_hint() {
            if bytes > rem {
                return Err(corrupt(
                    at,
                    format!("length prefix {n} ({bytes} bytes) exceeds the {rem} bytes remaining"),
                ));
            }
        }
        usize::try_from(n)
            .map_err(|_| corrupt(at, format!("length prefix {n} exceeds the address space")))
    }

    /// A `u64`-prefixed byte string.
    fn take_bytes(&mut self) -> io::Result<Vec<u8>> {
        let n = self.take_len_prefix(1)?;
        if let Some(raw) = self.borrow_exact(n) {
            return Ok(raw.to_vec());
        }
        if self.remaining_hint().is_some() {
            // The prefix was validated against the remaining length above.
            let mut v = vec![0u8; n];
            self.take_exact(&mut v)?;
            return Ok(v);
        }
        // Unbounded source: grow with delivered bytes instead of trusting
        // the prefix up front.
        let mut v = Vec::with_capacity(n.min(UNBOUNDED_PREALLOC));
        let mut left = n;
        while left > 0 {
            let take = left.min(UNBOUNDED_PREALLOC);
            let old = v.len();
            v.resize(old + take, 0);
            self.take_exact(&mut v[old..])?;
            left -= take;
        }
        Ok(v)
    }

    /// A `u64`-prefixed vector of little-endian u64s. Uses the zero-copy path
    /// when available (single large copy instead of per-element reads).
    fn take_u64_vec(&mut self) -> io::Result<Vec<u64>> {
        let n = self.take_len_prefix(8)?;
        if let Some(raw) = self.borrow_exact(n * 8) {
            let mut v = Vec::with_capacity(n);
            for c in raw.chunks_exact(8) {
                let mut b = [0u8; 8];
                b.copy_from_slice(c);
                v.push(u64::from_le_bytes(b));
            }
            return Ok(v);
        }
        let bounded = self.remaining_hint().is_some();
        let mut v = Vec::with_capacity(if bounded {
            n
        } else {
            n.min(UNBOUNDED_PREALLOC / 8)
        });
        for _ in 0..n {
            v.push(self.take_u64()?);
        }
        Ok(v)
    }

    /// A `u64`-prefixed vector of little-endian u32s.
    fn take_u32_vec(&mut self) -> io::Result<Vec<u32>> {
        let n = self.take_len_prefix(4)?;
        if let Some(raw) = self.borrow_exact(n * 4) {
            let mut v = Vec::with_capacity(n);
            for c in raw.chunks_exact(4) {
                let mut b = [0u8; 4];
                b.copy_from_slice(c);
                v.push(u32::from_le_bytes(b));
            }
            return Ok(v);
        }
        let bounded = self.remaining_hint().is_some();
        let mut v = Vec::with_capacity(if bounded {
            n
        } else {
            n.min(UNBOUNDED_PREALLOC / 4)
        });
        for _ in 0..n {
            v.push(self.take_u32()?);
        }
        Ok(v)
    }
}

/// In-memory source over a byte slice (the mmap path).
pub struct SliceSource<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> SliceSource<'a> {
    /// Cursor starting at the beginning of `data`.
    pub fn new(data: &'a [u8]) -> Self {
        SliceSource { data, pos: 0 }
    }

    /// Current offset.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Bytes left.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }
}

impl ByteSource for SliceSource<'_> {
    fn take_exact(&mut self, buf: &mut [u8]) -> io::Result<()> {
        if self.remaining() < buf.len() {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                format!(
                    "slice source exhausted at byte {} ({} wanted, {} left)",
                    self.pos,
                    buf.len(),
                    self.remaining()
                ),
            ));
        }
        buf.copy_from_slice(&self.data[self.pos..self.pos + buf.len()]);
        self.pos += buf.len();
        Ok(())
    }

    fn borrow_exact(&mut self, n: usize) -> Option<&[u8]> {
        if self.remaining() < n {
            return None;
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Some(s)
    }

    fn stream_position(&self) -> Option<u64> {
        Some(self.pos as u64)
    }

    fn remaining_hint(&self) -> Option<u64> {
        Some(self.remaining() as u64)
    }
}

impl ByteSource for crate::ChunkedReader {
    fn take_exact(&mut self, buf: &mut [u8]) -> io::Result<()> {
        self.read_exact(buf)
    }

    fn stream_position(&self) -> Option<u64> {
        Some(self.bytes_read())
    }

    fn remaining_hint(&self) -> Option<u64> {
        self.remaining()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<u8> {
        let mut d = Vec::new();
        d.extend_from_slice(&3u64.to_le_bytes());
        for x in [10u64, 20, 30] {
            d.extend_from_slice(&x.to_le_bytes());
        }
        d.extend_from_slice(&2u64.to_le_bytes());
        d.extend_from_slice(b"hi");
        d
    }

    #[test]
    fn slice_source_vectors_and_bytes() {
        let d = sample();
        let mut s = SliceSource::new(&d);
        assert_eq!(s.take_u64_vec().unwrap(), vec![10, 20, 30]);
        assert_eq!(s.take_bytes().unwrap(), b"hi");
        assert_eq!(s.remaining(), 0);
    }

    #[test]
    fn slice_source_eof() {
        let mut s = SliceSource::new(b"abc");
        assert!(s.take_u64().is_err());
    }

    #[test]
    fn chunked_reader_source_parses_same_format() {
        use std::io::Write;
        let d = sample();
        let p = std::env::temp_dir().join(format!("mmm-io-src-{}", std::process::id()));
        std::fs::File::create(&p).unwrap().write_all(&d).unwrap();
        let mut r = crate::ChunkedReader::open(&p, 4096).unwrap();
        assert_eq!(r.take_u64_vec().unwrap(), vec![10, 20, 30]);
        assert_eq!(r.take_bytes().unwrap(), b"hi");
        // Streaming path issues one read per element: 1 (len) + 3 + 1 (len) + 1.
        assert_eq!(r.read_calls(), 6);
        std::fs::remove_file(&p).unwrap();
    }

    #[test]
    fn u32_vec_round_trip() {
        let mut d = Vec::new();
        d.extend_from_slice(&2u64.to_le_bytes());
        d.extend_from_slice(&1u32.to_le_bytes());
        d.extend_from_slice(&2u32.to_le_bytes());
        let mut s = SliceSource::new(&d);
        assert_eq!(s.take_u32_vec().unwrap(), vec![1, 2]);
    }

    /// A hostile length prefix must yield `InvalidData`, not an allocation
    /// of the claimed size (which would abort the process).
    #[test]
    fn hostile_length_prefix_is_invalid_data() {
        for n in [u64::MAX, u64::MAX / 8 + 1, 1 << 60, 1 << 40] {
            let mut d = Vec::new();
            d.extend_from_slice(&n.to_le_bytes());
            d.extend_from_slice(b"tiny");
            let mut s = SliceSource::new(&d);
            let e = s.take_bytes().unwrap_err();
            assert_eq!(e.kind(), io::ErrorKind::InvalidData, "n={n}");
            let mut s = SliceSource::new(&d);
            let e = s.take_u64_vec().unwrap_err();
            assert_eq!(e.kind(), io::ErrorKind::InvalidData, "n={n}");
            let mut s = SliceSource::new(&d);
            let e = s.take_u32_vec().unwrap_err();
            assert_eq!(e.kind(), io::ErrorKind::InvalidData, "n={n}");
        }
    }

    #[test]
    fn hostile_length_prefix_on_file_source() {
        use std::io::Write;
        let mut d = Vec::new();
        d.extend_from_slice(&(1u64 << 59).to_le_bytes());
        d.extend_from_slice(b"tail");
        let p = std::env::temp_dir().join(format!("mmm-io-hostile-{}", std::process::id()));
        std::fs::File::create(&p).unwrap().write_all(&d).unwrap();
        let mut r = crate::ChunkedReader::open(&p, 4096).unwrap();
        let e = r.take_u64_vec().unwrap_err();
        assert_eq!(e.kind(), io::ErrorKind::InvalidData);
        std::fs::remove_file(&p).unwrap();
    }

    /// Errors from bounded reads name the offending offset.
    #[test]
    fn bound_error_names_offset() {
        let mut d = Vec::new();
        d.extend_from_slice(&7u64.to_le_bytes()); // 7 bytes claimed, 2 present
        d.extend_from_slice(b"hi");
        let mut s = SliceSource::new(&d);
        let e = s.take_bytes().unwrap_err();
        assert!(e.to_string().contains("at byte 0"), "{e}");
    }

    /// A source with no remaining bound still fails with EOF (not OOM) on a
    /// large-but-plausible prefix: growth is paid for by delivered bytes.
    #[test]
    fn unbounded_source_hits_eof_not_oom() {
        struct Unhinted<'a>(SliceSource<'a>);
        impl ByteSource for Unhinted<'_> {
            fn take_exact(&mut self, buf: &mut [u8]) -> io::Result<()> {
                self.0.take_exact(buf)
            }
        }
        let mut d = Vec::new();
        d.extend_from_slice(&(1u64 << 33).to_le_bytes()); // 8 GiB claimed
        d.extend_from_slice(&[0u8; 64]);
        let mut s = Unhinted(SliceSource::new(&d));
        let e = s.take_bytes().unwrap_err();
        assert_eq!(e.kind(), io::ErrorKind::UnexpectedEof);
    }
}
