//! The cursor abstraction shared by the two index-loading paths.
//!
//! The index deserializer is written once against [`ByteSource`]; plugging in
//! a [`SliceSource`] over an [`crate::Mmap`] gives the manymap path, plugging
//! in a [`crate::ChunkedReader`] gives the minimap2 path. This mirrors how
//! the paper changes *only* the I/O mechanism while keeping the format fixed.

use std::io;

/// A forward-only cursor over bytes.
pub trait ByteSource {
    /// Fill `buf` completely or fail.
    fn take_exact(&mut self, buf: &mut [u8]) -> io::Result<()>;

    /// Borrow the next `n` bytes zero-copy if the source supports it
    /// (the mmap path does; streaming sources return `None`).
    fn borrow_exact(&mut self, _n: usize) -> Option<&[u8]> {
        None
    }

    /// Little-endian u64.
    fn take_u64(&mut self) -> io::Result<u64> {
        let mut b = [0u8; 8];
        self.take_exact(&mut b)?;
        Ok(u64::from_le_bytes(b))
    }

    /// Little-endian u32.
    fn take_u32(&mut self) -> io::Result<u32> {
        let mut b = [0u8; 4];
        self.take_exact(&mut b)?;
        Ok(u32::from_le_bytes(b))
    }

    /// Little-endian i32.
    fn take_i32(&mut self) -> io::Result<i32> {
        Ok(self.take_u32()? as i32)
    }

    /// A `u64`-prefixed byte string.
    fn take_bytes(&mut self) -> io::Result<Vec<u8>> {
        let n = self.take_u64()? as usize;
        let mut v = vec![0u8; n];
        self.take_exact(&mut v)?;
        Ok(v)
    }

    /// A `u64`-prefixed vector of little-endian u64s. Uses the zero-copy path
    /// when available (single large copy instead of per-element reads).
    fn take_u64_vec(&mut self) -> io::Result<Vec<u64>> {
        let n = self.take_u64()? as usize;
        if let Some(raw) = self.borrow_exact(n * 8) {
            let mut v = Vec::with_capacity(n);
            for c in raw.chunks_exact(8) {
                v.push(u64::from_le_bytes(c.try_into().unwrap()));
            }
            return Ok(v);
        }
        let mut v = Vec::with_capacity(n);
        for _ in 0..n {
            v.push(self.take_u64()?);
        }
        Ok(v)
    }

    /// A `u64`-prefixed vector of little-endian u32s.
    fn take_u32_vec(&mut self) -> io::Result<Vec<u32>> {
        let n = self.take_u64()? as usize;
        if let Some(raw) = self.borrow_exact(n * 4) {
            let mut v = Vec::with_capacity(n);
            for c in raw.chunks_exact(4) {
                v.push(u32::from_le_bytes(c.try_into().unwrap()));
            }
            return Ok(v);
        }
        let mut v = Vec::with_capacity(n);
        for _ in 0..n {
            v.push(self.take_u32()?);
        }
        Ok(v)
    }
}

/// In-memory source over a byte slice (the mmap path).
pub struct SliceSource<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> SliceSource<'a> {
    /// Cursor starting at the beginning of `data`.
    pub fn new(data: &'a [u8]) -> Self {
        SliceSource { data, pos: 0 }
    }

    /// Current offset.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Bytes left.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }
}

impl ByteSource for SliceSource<'_> {
    fn take_exact(&mut self, buf: &mut [u8]) -> io::Result<()> {
        if self.remaining() < buf.len() {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "slice source exhausted",
            ));
        }
        buf.copy_from_slice(&self.data[self.pos..self.pos + buf.len()]);
        self.pos += buf.len();
        Ok(())
    }

    fn borrow_exact(&mut self, n: usize) -> Option<&[u8]> {
        if self.remaining() < n {
            return None;
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Some(s)
    }
}

impl ByteSource for crate::ChunkedReader {
    fn take_exact(&mut self, buf: &mut [u8]) -> io::Result<()> {
        self.read_exact(buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<u8> {
        let mut d = Vec::new();
        d.extend_from_slice(&3u64.to_le_bytes());
        for x in [10u64, 20, 30] {
            d.extend_from_slice(&x.to_le_bytes());
        }
        d.extend_from_slice(&2u64.to_le_bytes());
        d.extend_from_slice(b"hi");
        d
    }

    #[test]
    fn slice_source_vectors_and_bytes() {
        let d = sample();
        let mut s = SliceSource::new(&d);
        assert_eq!(s.take_u64_vec().unwrap(), vec![10, 20, 30]);
        assert_eq!(s.take_bytes().unwrap(), b"hi");
        assert_eq!(s.remaining(), 0);
    }

    #[test]
    fn slice_source_eof() {
        let mut s = SliceSource::new(b"abc");
        assert!(s.take_u64().is_err());
    }

    #[test]
    fn chunked_reader_source_parses_same_format() {
        use std::io::Write;
        let d = sample();
        let p = std::env::temp_dir().join(format!("mmm-io-src-{}", std::process::id()));
        std::fs::File::create(&p).unwrap().write_all(&d).unwrap();
        let mut r = crate::ChunkedReader::open(&p, 4096).unwrap();
        assert_eq!(r.take_u64_vec().unwrap(), vec![10, 20, 30]);
        assert_eq!(r.take_bytes().unwrap(), b"hi");
        // Streaming path issues one read per element: 1 (len) + 3 + 1 (len) + 1.
        assert_eq!(r.read_calls(), 6);
        std::fs::remove_file(&p).unwrap();
    }

    #[test]
    fn u32_vec_round_trip() {
        let mut d = Vec::new();
        d.extend_from_slice(&2u64.to_le_bytes());
        d.extend_from_slice(&1u32.to_le_bytes());
        d.extend_from_slice(&2u32.to_le_bytes());
        let mut s = SliceSource::new(&d);
        assert_eq!(s.take_u32_vec().unwrap(), vec![1, 2]);
    }
}
